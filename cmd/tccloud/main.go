// Command tccloud runs the untrusted infrastructure of the trusted-cells
// architecture as a standalone TCP server: an encrypted-blob store plus
// mailboxes for cell-to-cell messages. Cells (cmd/tccell) and applications
// connect to it with trustedcells.DialCloud.
//
// By default the store is in-memory. With -data-dir it becomes the durable
// disk-backed store: every acknowledged write is covered by a group-committed
// write-ahead log, and restarting the server replays the log and rebuilds its
// LSM runs — clients observe the same wire protocol either way:
//
//	tccloud -addr :7070 -data-dir /var/lib/tccloud
//
// The server — in-memory or durable — can be started with an adversarial
// behaviour to demonstrate that cells detect integrity, rollback and fork
// attacks (the adversary is a wrapper over whichever backend is selected):
//
//	tccloud -addr :7070 -data-dir /var/lib/tccloud -adversary rollback -rate 1
//
// With -member the server becomes the coordinator of a replicated fleet: its
// own store (in-memory or durable) is member 0, each -member address is
// dialed as a further member, and clients are served the replication layer —
// quorum writes, quorum reads with read repair, hinted handoff for members
// that go dark, and a periodic anti-entropy pass:
//
//	tccloud -addr :7070 -data-dir /var/lib/tccloud \
//	    -member host-b:7070 -member host-c:7070 -quorum-w 2 -quorum-r 2
//
// With -framed-addr the server additionally opens the fleet-scale front
// door: the connection-multiplexed framed protocol (trustedcells.DialFramed)
// with admission control — when more than -max-inflight weighted mutations
// are executing, further ones are shed immediately with a typed retry-after
// error instead of queuing — and optional per-tenant namespaces and quotas:
//
//	tccloud -addr :7070 -framed-addr :7071 -data-dir /var/lib/tccloud \
//	    -max-inflight 1024 \
//	    -tenant acme:1073741824:500 -tenant globex
//
// Each -tenant is name[:maxBytes[:opsPerSec]]; omitted budgets are
// unlimited. A framed connection binds to its tenant with a hello frame and
// then sees only its own namespace. The classic line-protocol listener keeps
// serving the backend directly, so existing clients are unaffected.
//
// The mailboxes double as the distributed shared commons' query plane
// (DESIGN.md §13): a community coordinator scatters sealed query specs into
// per-cell mailboxes on this server and gathers secret-shared answers back
// through them, with no server-side support beyond Send/Receive — the
// server only ever relays sealed envelopes it cannot open. Try it against a
// running server with `tccell -cloud <addr> -commons 100`.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"trustedcells/internal/cloud"
)

// memberList collects repeated -member flags.
type memberList []string

func (m *memberList) String() string { return strings.Join(*m, ",") }

func (m *memberList) Set(v string) error {
	for _, part := range strings.Split(v, ",") {
		if part = strings.TrimSpace(part); part != "" {
			*m = append(*m, part)
		}
	}
	return nil
}

// tenantList collects repeated -tenant flags of the form
// name[:maxBytes[:opsPerSec]].
type tenantList []tenantSpec

type tenantSpec struct {
	name  string
	quota cloud.TenantQuota
}

func (t *tenantList) String() string {
	names := make([]string, len(*t))
	for i, s := range *t {
		names[i] = s.name
	}
	return strings.Join(names, ",")
}

func (t *tenantList) Set(v string) error {
	parts := strings.Split(v, ":")
	spec := tenantSpec{name: parts[0]}
	if len(parts) > 3 || spec.name == "" {
		return fmt.Errorf("tenant spec %q: want name[:maxBytes[:opsPerSec]]", v)
	}
	if len(parts) > 1 && parts[1] != "" {
		n, err := strconv.ParseInt(parts[1], 10, 64)
		if err != nil || n < 0 {
			return fmt.Errorf("tenant spec %q: bad maxBytes %q", v, parts[1])
		}
		spec.quota.MaxBytes = n
	}
	if len(parts) > 2 && parts[2] != "" {
		f, err := strconv.ParseFloat(parts[2], 64)
		if err != nil || f < 0 {
			return fmt.Errorf("tenant spec %q: bad opsPerSec %q", v, parts[2])
		}
		spec.quota.OpsPerSec = f
	}
	*t = append(*t, spec)
	return nil
}

func enabledWord(on bool) string {
	if on {
		return "enabled"
	}
	return "disabled"
}

// pct is a safe percentage (0 when the denominator is zero).
func pct(part, total int64) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(part) / float64(total)
}

// logEngineStats periodically logs the read fast-path counters so fleet
// operators can see bloom skip and cache hit rates — aggregate and per shard
// (shards with no run lookups yet are omitted). It runs for the life of the
// process; the final counters are visible in the last tick before shutdown.
func logEngineStats(d *cloud.Durable, every time.Duration) {
	for range time.Tick(every) {
		es := d.EngineStats()
		hits, misses, resident := d.CacheStats()
		consults := es.BloomSkips + es.CacheHits + es.RunReads
		log.Printf("tccloud: engine: %d runs, %d gets, bloom skipped %d/%d run lookups (%.1f%%), cache %d hits / %d misses (%.1f%%, %d KiB resident), %d device reads",
			es.Runs, es.Gets, es.BloomSkips, consults, pct(es.BloomSkips, consults),
			hits, misses, pct(hits, hits+misses), resident>>10, es.RunReads)
		var b strings.Builder
		for i, st := range d.ShardStats() {
			c := st.BloomSkips + st.CacheHits + st.RunReads
			if c == 0 {
				continue
			}
			fmt.Fprintf(&b, " %d:%.0f/%.0f", i,
				pct(st.BloomSkips, c), pct(st.CacheHits, st.CacheHits+st.CacheMisses))
		}
		if b.Len() > 0 {
			log.Printf("tccloud: per-shard bloom-skip%%/cache-hit%%:%s", b.String())
		}
	}
}

func main() {
	var members memberList
	var tenants tenantList
	var (
		addr       = flag.String("addr", "127.0.0.1:7070", "address to listen on")
		framedAddr = flag.String("framed-addr", "", "address for the multiplexed framed front door (empty = disabled)")
		maxInFly   = flag.Int64("max-inflight", 1024, "with -framed-addr: weighted in-flight mutation budget before shedding")
		retryAfter = flag.Duration("retry-after", 25*time.Millisecond, "with -framed-addr: backoff hint attached to shed requests")
		dataDir    = flag.String("data-dir", "", "directory for the durable disk-backed store (empty = in-memory)")
		shards     = flag.Int("shards", cloud.DefaultShards, "shard count (fixed at first open for a durable store)")
		adversary  = flag.String("adversary", "honest", "adversary mode: honest, curious, tampering, replaying, dropping, rollback, fork (wraps any backend)")
		rate       = flag.Float64("rate", 0.01, "misbehaviour probability for tampering/replaying/dropping/rollback modes")
		seed       = flag.Int64("seed", 1, "adversary random seed")
		quorumW    = flag.Int("quorum-w", 0, "with -member: write quorum W (default majority of the fleet)")
		quorumR    = flag.Int("quorum-r", 0, "with -member: read quorum R (default majority of the fleet)")
		syncEvery  = flag.Duration("sync-every", 30*time.Second, "with -member: anti-entropy interval (0 disables the background pass)")
		statsEvery = flag.Duration("stats-every", time.Minute, "with -data-dir: interval for logging per-shard cache/bloom hit rates (0 disables)")
	)
	flag.Var(&members, "member", "address of a further fleet member to dial (repeatable or comma-separated); the local store is member 0")
	flag.Var(&tenants, "tenant", "with -framed-addr: provision a tenant as name[:maxBytes[:opsPerSec]] (repeatable)")
	flag.Parse()

	cfg := cloud.AdversaryConfig{Seed: *seed}
	switch strings.ToLower(*adversary) {
	case "honest":
		cfg.Mode = cloud.Honest
	case "curious", "honest-but-curious":
		cfg.Mode = cloud.HonestButCurious
	case "tampering":
		cfg.Mode = cloud.Tampering
		cfg.TamperRate = *rate
	case "replaying":
		cfg.Mode = cloud.Replaying
		cfg.ReplayRate = *rate
	case "dropping":
		cfg.Mode = cloud.Dropping
		cfg.DropRate = *rate
	case "rollback":
		cfg.Mode = cloud.Rollback
		cfg.RollbackRate = *rate
	case "fork":
		cfg.Mode = cloud.Fork
	default:
		fmt.Fprintf(os.Stderr, "unknown adversary mode %q\n", *adversary)
		os.Exit(2)
	}

	var svc cloud.Service
	var durable *cloud.Durable
	if *dataDir != "" {
		opts := cloud.DefaultDurableOptions()
		opts.Shards = *shards
		d, err := cloud.OpenDurable(*dataDir, opts)
		if err != nil {
			log.Fatalf("tccloud: open durable store: %v", err)
		}
		rec := d.RecoveryStats()
		log.Printf("tccloud: recovered %s in %v: %d shards, %d runs, %d WAL records (%d ops) replayed, %d pending messages",
			*dataDir, rec.Elapsed.Round(0), rec.Shards, rec.RecoveredRuns,
			rec.ReplayedRecords, rec.ReplayedOps, rec.PendingMessages)
		if rec.DiscardedWALBytes > 0 || rec.DiscardedRunBytes > 0 {
			log.Printf("tccloud: truncated torn tails: %d WAL bytes, %d run bytes",
				rec.DiscardedWALBytes, rec.DiscardedRunBytes)
		}
		log.Printf("tccloud: read fast path: %d MiB block cache, bloom filters %s, compaction slots %d",
			opts.CacheBytes>>20, enabledWord(opts.BloomBitsPerKey >= 0), opts.CompactionConcurrency)
		if *statsEvery > 0 {
			go logEngineStats(d, *statsEvery)
		}
		svc, durable = d, d
	} else {
		svc = cloud.NewMemory()
	}
	if cfg.Mode != cloud.Honest {
		// The adversary is a backend-agnostic wrapper, so the durable store
		// misbehaves exactly like the in-memory one — and as member 0 of a
		// replicated fleet below, it is the Byzantine member the quarantine
		// machinery detects and routes around.
		svc = cloud.NewAdversary(svc, cfg)
	}

	// Dial-out mode: the local store is member 0 of a replicated fleet and
	// clients are served the replication layer instead of the bare store.
	var replicated *cloud.Replicated
	if len(members) > 0 {
		// Members are wrapped in a Redialer rather than dialed once: a member
		// that restarts gets a fresh connection on its next probe, so the
		// hint drain can bring it back (a plain Client would pin the dead
		// connection for the life of the coordinator). A member that is not
		// up yet is fine too — it is marked down until its first probe lands.
		fleet := []cloud.Service{svc}
		for _, maddr := range members {
			client := cloud.NewRedialer(maddr)
			defer client.Close()
			fleet = append(fleet, client)
		}
		r, err := cloud.NewReplicated(fleet, cloud.ReplicatedOptions{
			WriteQuorum: *quorumW,
			ReadQuorum:  *quorumR,
		})
		if err != nil {
			log.Fatalf("tccloud: replication: %v", err)
		}
		if *syncEvery > 0 {
			r.StartAntiEntropy(*syncEvery)
		}
		w, rq := r.Quorums()
		log.Printf("tccloud: replicating over %d members (local + %d dialed), W=%d R=%d, anti-entropy every %v",
			r.MemberCount(), len(members), w, rq, *syncEvery)
		svc, replicated = r, r
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("tccloud: listen: %v", err)
	}
	backend := "memory"
	if durable != nil {
		backend = "durable"
	}
	if replicated != nil {
		backend = "replicated/" + backend
	}
	log.Printf("tccloud: serving the untrusted infrastructure on %s (backend=%s adversary=%s)",
		ln.Addr(), backend, cfg.Mode)
	srv := cloud.NewServer(svc)

	// The framed front door: admission control around the backend, tenant
	// namespaces on top, the multiplexed protocol in front. The classic line
	// listener keeps serving the raw backend for old clients.
	var framedSrv *cloud.FrameServer
	framedErr := make(chan error, 1)
	if *framedAddr != "" {
		adm := cloud.NewAdmission(svc, cloud.AdmissionOptions{
			MaxInFlight: *maxInFly,
			RetryAfter:  *retryAfter,
		})
		reg := cloud.NewTenants(adm)
		for _, spec := range tenants {
			if err := reg.Define(spec.name, spec.quota); err != nil {
				log.Fatalf("tccloud: %v", err)
			}
		}
		fln, err := net.Listen("tcp", *framedAddr)
		if err != nil {
			log.Fatalf("tccloud: listen framed: %v", err)
		}
		framedSrv = cloud.NewFrameServer(adm, cloud.FrameServerOptions{Tenants: reg})
		go func() { framedErr <- framedSrv.Serve(fln) }()
		log.Printf("tccloud: framed front door on %s (max-inflight=%d retry-after=%v tenants=%s)",
			fln.Addr(), *maxInFly, *retryAfter, tenants.String())
	}

	// A durable store wants a graceful shutdown: checkpoint the memtables and
	// close the WALs so the next start replays nothing. (A kill -9 is also
	// fine — that is the point — it just pays the WAL replay.)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		log.Printf("tccloud: %v: shutting down", s)
		if framedSrv != nil {
			_ = framedSrv.Close()
		}
		_ = srv.Close() // closes the listener; Serve returns nil once drained
	}()

	err = srv.Serve(ln)
	if framedSrv != nil {
		if ferr := <-framedErr; ferr != nil && err == nil {
			err = ferr
		}
	}
	if replicated != nil {
		// Stop the anti-entropy loop and give departing writes their last
		// hint drain before the members close under us.
		_ = replicated.Close()
		replicated.DrainHints()
	}
	if durable != nil {
		if cerr := durable.Close(); cerr != nil {
			log.Fatalf("tccloud: close durable store: %v", cerr)
		}
		log.Printf("tccloud: durable store checkpointed")
	}
	if err != nil {
		log.Fatalf("tccloud: %v", err)
	}
}
