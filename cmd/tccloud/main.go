// Command tccloud runs the untrusted infrastructure of the trusted-cells
// architecture as a standalone TCP server: an encrypted-blob store plus
// mailboxes for cell-to-cell messages. Cells (cmd/tccell) and applications
// connect to it with trustedcells.DialCloud.
//
// The server can be started with an adversarial behaviour to demonstrate that
// cells detect integrity attacks:
//
//	tccloud -addr :7070 -adversary tampering -rate 0.01
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strings"

	"trustedcells/internal/cloud"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7070", "address to listen on")
		adversary = flag.String("adversary", "honest", "adversary mode: honest, curious, tampering, replaying, dropping")
		rate      = flag.Float64("rate", 0.01, "misbehaviour probability for tampering/replaying/dropping modes")
		seed      = flag.Int64("seed", 1, "adversary random seed")
	)
	flag.Parse()

	cfg := cloud.AdversaryConfig{Seed: *seed}
	switch strings.ToLower(*adversary) {
	case "honest":
		cfg.Mode = cloud.Honest
	case "curious", "honest-but-curious":
		cfg.Mode = cloud.HonestButCurious
	case "tampering":
		cfg.Mode = cloud.Tampering
		cfg.TamperRate = *rate
	case "replaying":
		cfg.Mode = cloud.Replaying
		cfg.ReplayRate = *rate
	case "dropping":
		cfg.Mode = cloud.Dropping
		cfg.DropRate = *rate
	default:
		fmt.Fprintf(os.Stderr, "unknown adversary mode %q\n", *adversary)
		os.Exit(2)
	}

	svc := cloud.NewMemoryWithAdversary(cfg)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("tccloud: listen: %v", err)
	}
	log.Printf("tccloud: serving the untrusted infrastructure on %s (adversary=%s)", ln.Addr(), cfg.Mode)
	srv := cloud.NewServer(svc)
	if err := srv.Serve(ln); err != nil {
		log.Fatalf("tccloud: %v", err)
	}
}
