// Command tccloud runs the untrusted infrastructure of the trusted-cells
// architecture as a standalone TCP server: an encrypted-blob store plus
// mailboxes for cell-to-cell messages. Cells (cmd/tccell) and applications
// connect to it with trustedcells.DialCloud.
//
// By default the store is in-memory. With -data-dir it becomes the durable
// disk-backed store: every acknowledged write is covered by a group-committed
// write-ahead log, and restarting the server replays the log and rebuilds its
// LSM runs — clients observe the same wire protocol either way:
//
//	tccloud -addr :7070 -data-dir /var/lib/tccloud
//
// The in-memory server can be started with an adversarial behaviour to
// demonstrate that cells detect integrity attacks:
//
//	tccloud -addr :7070 -adversary tampering -rate 0.01
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"trustedcells/internal/cloud"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7070", "address to listen on")
		dataDir   = flag.String("data-dir", "", "directory for the durable disk-backed store (empty = in-memory)")
		shards    = flag.Int("shards", cloud.DefaultShards, "shard count (fixed at first open for a durable store)")
		adversary = flag.String("adversary", "honest", "adversary mode: honest, curious, tampering, replaying, dropping (in-memory only)")
		rate      = flag.Float64("rate", 0.01, "misbehaviour probability for tampering/replaying/dropping modes")
		seed      = flag.Int64("seed", 1, "adversary random seed")
	)
	flag.Parse()

	cfg := cloud.AdversaryConfig{Seed: *seed}
	switch strings.ToLower(*adversary) {
	case "honest":
		cfg.Mode = cloud.Honest
	case "curious", "honest-but-curious":
		cfg.Mode = cloud.HonestButCurious
	case "tampering":
		cfg.Mode = cloud.Tampering
		cfg.TamperRate = *rate
	case "replaying":
		cfg.Mode = cloud.Replaying
		cfg.ReplayRate = *rate
	case "dropping":
		cfg.Mode = cloud.Dropping
		cfg.DropRate = *rate
	default:
		fmt.Fprintf(os.Stderr, "unknown adversary mode %q\n", *adversary)
		os.Exit(2)
	}

	var svc cloud.Service
	var durable *cloud.Durable
	if *dataDir != "" {
		if cfg.Mode != cloud.Honest {
			fmt.Fprintln(os.Stderr, "adversary injection is an in-memory feature; -data-dir requires -adversary honest")
			os.Exit(2)
		}
		opts := cloud.DefaultDurableOptions()
		opts.Shards = *shards
		d, err := cloud.OpenDurable(*dataDir, opts)
		if err != nil {
			log.Fatalf("tccloud: open durable store: %v", err)
		}
		rec := d.RecoveryStats()
		log.Printf("tccloud: recovered %s in %v: %d shards, %d runs, %d WAL records (%d ops) replayed, %d pending messages",
			*dataDir, rec.Elapsed.Round(0), rec.Shards, rec.RecoveredRuns,
			rec.ReplayedRecords, rec.ReplayedOps, rec.PendingMessages)
		if rec.DiscardedWALBytes > 0 || rec.DiscardedRunBytes > 0 {
			log.Printf("tccloud: truncated torn tails: %d WAL bytes, %d run bytes",
				rec.DiscardedWALBytes, rec.DiscardedRunBytes)
		}
		svc, durable = d, d
	} else {
		svc = cloud.NewMemoryWithAdversary(cfg)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("tccloud: listen: %v", err)
	}
	backend := "memory"
	if durable != nil {
		backend = "durable"
	}
	log.Printf("tccloud: serving the untrusted infrastructure on %s (backend=%s adversary=%s)",
		ln.Addr(), backend, cfg.Mode)
	srv := cloud.NewServer(svc)

	// A durable store wants a graceful shutdown: checkpoint the memtables and
	// close the WALs so the next start replays nothing. (A kill -9 is also
	// fine — that is the point — it just pays the WAL replay.)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		log.Printf("tccloud: %v: shutting down", s)
		_ = srv.Close() // closes the listener; Serve returns nil once drained
	}()

	err = srv.Serve(ln)
	if durable != nil {
		if cerr := durable.Close(); cerr != nil {
			log.Fatalf("tccloud: close durable store: %v", cerr)
		}
		log.Printf("tccloud: durable store checkpointed")
	}
	if err != nil {
		log.Fatalf("tccloud: %v", err)
	}
}
