// Command tccell runs a trusted cell against a tccloud server and walks
// through the core personal-data-service workflow from the command line:
// ingest a document, list the catalog, read it back through the reference
// monitor, and synchronize the encrypted vault with the cloud.
//
//	tccloud -addr 127.0.0.1:7070 &
//	tccell -id alice-gw -cloud 127.0.0.1:7070 -ingest ./payslip.pdf -type pay-slip
//	tccell -id alice-gw -cloud 127.0.0.1:7070 -list
//
// With -commons N it instead demonstrates the distributed shared commons
// (DESIGN.md §13): N responder cells, a three-member aggregator committee
// and a census coordinator run one scatter/gather aggregate query over the
// configured cloud's mailboxes — in-process by default, or across a live
// tccloud server with -cloud:
//
//	tccell -cloud 127.0.0.1:7070 -commons 100
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"time"

	"trustedcells"
)

// commonsValue is demo cell i's deterministic contribution (one day's
// consumption in watt-hours), so the expected sum over any contributor set
// can be recomputed and the integrity property is visible from the shell.
func commonsValue(i int) uint64 { return uint64(50 + (i*37)%450) }

// runCommons demonstrates the distributed commons query plane over svc: n
// responder cells with deterministic consumption values, a three-member
// aggregator committee, and one k=10, eps=1.0 sum query released with
// honest accounting. The exact sum recomputed over the claimed
// contributors is printed alongside: on a lossy provider coverage shrinks,
// but the two sums must still match.
func runCommons(svc trustedcells.CloudService, n int) error {
	key, err := trustedcells.NewCommonsKey()
	if err != nil {
		return err
	}
	community := trustedcells.NewCommonsCommunity("tccell-demo", key)

	responders := make([]*trustedcells.CommonsResponder, n)
	for i := range responders {
		v := commonsValue(i)
		responders[i] = trustedcells.NewCommonsResponder(fmt.Sprintf("cell-%04d", i), community, svc,
			func(*trustedcells.CommonsSpec) (uint64, bool, error) { return v, true, nil })
	}
	aggIDs := []string{"agg-0", "agg-1", "agg-2"}
	aggs := make([]*trustedcells.CommonsAggregator, len(aggIDs))
	for i, id := range aggIDs {
		aggs[i] = trustedcells.NewCommonsAggregator(id, community, svc)
	}
	co, err := trustedcells.NewCommonsCoordinator(trustedcells.CommonsCoordinatorConfig{
		ID: "census", Community: community, Cloud: svc,
	})
	if err != nil {
		return err
	}
	start := time.Now()
	res, err := co.Query(trustedcells.CommonsSpec{
		ID:              "daily-consumption",
		Filter:          trustedcells.CommonsFilter{Type: "power-series"},
		Granularity:     trustedcells.GranularityDay,
		Kind:            trustedcells.AggregateSum,
		K:               10,
		Epsilon:         1.0,
		MaxContribution: 1_000,
		Deadline:        30 * time.Second,
		Aggregators:     aggIDs,
	}, responders, aggs)
	if err != nil {
		return err
	}
	var want uint64
	for _, id := range res.Contributors {
		idx, err := strconv.Atoi(id[len("cell-"):])
		if err != nil {
			return fmt.Errorf("bad contributor id %q: %v", id, err)
		}
		want += commonsValue(idx)
	}
	fmt.Printf("commons query over %d cells in %s:\n", n, time.Since(start).Round(time.Millisecond))
	fmt.Printf("  released=%v responded=%d/%d suppressed=%d\n",
		res.Released, res.Responded, res.Total, res.Suppressed)
	fmt.Printf("  exact sum=%d (expected over %d contributors: %d) noisy sum=%.1f (eps=%.1f, k=%d)\n",
		res.Sum, len(res.Contributors), want, res.NoisySum, res.Epsilon, res.K)
	fmt.Printf("  traffic: %d B scattered, %d B gathered, %d messages\n",
		res.BytesScattered, res.BytesGathered, res.Messages)
	return nil
}

func main() {
	var (
		id       = flag.String("id", "demo-cell", "cell identifier")
		cloudTCP = flag.String("cloud", "", "tccloud address (empty = in-process memory cloud)")
		seed     = flag.String("seed", "", "deterministic provisioning seed (defaults to the cell id)")
		ingest   = flag.String("ingest", "", "path of a file to ingest")
		docType  = flag.String("type", "document", "document type used for -ingest")
		list     = flag.Bool("list", false, "list the catalog after restoring the vault")
		read     = flag.String("read", "", "document ID to read back (as the owner)")
		commons  = flag.Int("commons", 0, "run a distributed commons query demo over N responder cells")
	)
	flag.Parse()

	var svc trustedcells.CloudService
	if *cloudTCP == "" {
		svc = trustedcells.NewMemoryCloud()
		log.Printf("tccell: using an in-process memory cloud (pass -cloud to use tccloud)")
	} else {
		var err error
		svc, err = trustedcells.DialCloud(*cloudTCP)
		if err != nil {
			log.Fatalf("tccell: %v", err)
		}
	}

	if *commons > 0 {
		if err := runCommons(svc, *commons); err != nil {
			log.Fatalf("tccell: commons demo: %v", err)
		}
		return
	}

	provisionSeed := *seed
	if provisionSeed == "" {
		provisionSeed = *id
	}
	cell, err := trustedcells.NewCell(trustedcells.CellConfig{
		ID:    *id,
		Class: trustedcells.ClassHomeGateway,
		Cloud: svc,
		Seed:  []byte(provisionSeed),
	})
	if err != nil {
		log.Fatalf("tccell: %v", err)
	}
	// The owner can always read through the reference monitor.
	if err := cell.AddRule(trustedcells.Rule{
		ID: "owner-read", Effect: trustedcells.EffectAllow,
		SubjectIDs: []string{*id + "-owner"},
		Actions:    []trustedcells.Action{trustedcells.ActionRead, trustedcells.ActionAggregate},
	}); err != nil {
		log.Fatalf("tccell: %v", err)
	}

	// Try to restore an existing vault; a missing vault is fine for a new cell.
	if version, err := cell.RestoreVault(); err == nil {
		log.Printf("tccell: restored vault version %d with %d documents", version, cell.Catalog().Len())
	}

	if *ingest != "" {
		payload, err := os.ReadFile(*ingest)
		if err != nil {
			log.Fatalf("tccell: reading %s: %v", *ingest, err)
		}
		doc, err := cell.Ingest(payload, trustedcells.IngestOptions{
			Class: trustedcells.ClassAuthored,
			Type:  *docType,
			Title: *ingest,
		})
		if err != nil {
			log.Fatalf("tccell: ingest: %v", err)
		}
		version, err := cell.SyncVault()
		if err != nil {
			log.Fatalf("tccell: sync vault: %v", err)
		}
		fmt.Printf("ingested %s as %s (%d bytes), vault version %d\n", *ingest, doc.ID, doc.Size, version)
	}

	if *list {
		docs, err := cell.Search(trustedcells.Query{})
		if err != nil {
			log.Fatalf("tccell: search: %v", err)
		}
		fmt.Printf("%d document(s) in the personal data space of %s:\n", len(docs), *id)
		for _, d := range docs {
			fmt.Printf("  %s  %-12s  %-8s  %6d B  %s\n", d.ID, d.Type, d.Class, d.Size, d.Title)
		}
	}

	if *read != "" {
		payload, err := cell.Read(*id+"-owner", *read, trustedcells.AccessContext{})
		if err != nil {
			log.Fatalf("tccell: read: %v", err)
		}
		if _, err := os.Stdout.Write(payload); err != nil {
			log.Fatalf("tccell: %v", err)
		}
	}

	if *ingest == "" && !*list && *read == "" {
		fmt.Println("tccell: nothing to do; pass -ingest, -list, -read or -commons (see -h)")
	}
}
