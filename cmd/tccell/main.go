// Command tccell runs a trusted cell against a tccloud server and walks
// through the core personal-data-service workflow from the command line:
// ingest a document, list the catalog, read it back through the reference
// monitor, and synchronize the encrypted vault with the cloud.
//
//	tccloud -addr 127.0.0.1:7070 &
//	tccell -id alice-gw -cloud 127.0.0.1:7070 -ingest ./payslip.pdf -type pay-slip
//	tccell -id alice-gw -cloud 127.0.0.1:7070 -list
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"trustedcells"
)

func main() {
	var (
		id       = flag.String("id", "demo-cell", "cell identifier")
		cloudTCP = flag.String("cloud", "", "tccloud address (empty = in-process memory cloud)")
		seed     = flag.String("seed", "", "deterministic provisioning seed (defaults to the cell id)")
		ingest   = flag.String("ingest", "", "path of a file to ingest")
		docType  = flag.String("type", "document", "document type used for -ingest")
		list     = flag.Bool("list", false, "list the catalog after restoring the vault")
		read     = flag.String("read", "", "document ID to read back (as the owner)")
	)
	flag.Parse()

	var svc trustedcells.CloudService
	if *cloudTCP == "" {
		svc = trustedcells.NewMemoryCloud()
		log.Printf("tccell: using an in-process memory cloud (pass -cloud to use tccloud)")
	} else {
		var err error
		svc, err = trustedcells.DialCloud(*cloudTCP)
		if err != nil {
			log.Fatalf("tccell: %v", err)
		}
	}
	provisionSeed := *seed
	if provisionSeed == "" {
		provisionSeed = *id
	}
	cell, err := trustedcells.NewCell(trustedcells.CellConfig{
		ID:    *id,
		Class: trustedcells.ClassHomeGateway,
		Cloud: svc,
		Seed:  []byte(provisionSeed),
	})
	if err != nil {
		log.Fatalf("tccell: %v", err)
	}
	// The owner can always read through the reference monitor.
	if err := cell.AddRule(trustedcells.Rule{
		ID: "owner-read", Effect: trustedcells.EffectAllow,
		SubjectIDs: []string{*id + "-owner"},
		Actions:    []trustedcells.Action{trustedcells.ActionRead, trustedcells.ActionAggregate},
	}); err != nil {
		log.Fatalf("tccell: %v", err)
	}

	// Try to restore an existing vault; a missing vault is fine for a new cell.
	if version, err := cell.RestoreVault(); err == nil {
		log.Printf("tccell: restored vault version %d with %d documents", version, cell.Catalog().Len())
	}

	if *ingest != "" {
		payload, err := os.ReadFile(*ingest)
		if err != nil {
			log.Fatalf("tccell: reading %s: %v", *ingest, err)
		}
		doc, err := cell.Ingest(payload, trustedcells.IngestOptions{
			Class: trustedcells.ClassAuthored,
			Type:  *docType,
			Title: *ingest,
		})
		if err != nil {
			log.Fatalf("tccell: ingest: %v", err)
		}
		version, err := cell.SyncVault()
		if err != nil {
			log.Fatalf("tccell: sync vault: %v", err)
		}
		fmt.Printf("ingested %s as %s (%d bytes), vault version %d\n", *ingest, doc.ID, doc.Size, version)
	}

	if *list {
		docs, err := cell.Search(trustedcells.Query{})
		if err != nil {
			log.Fatalf("tccell: search: %v", err)
		}
		fmt.Printf("%d document(s) in the personal data space of %s:\n", len(docs), *id)
		for _, d := range docs {
			fmt.Printf("  %s  %-12s  %-8s  %6d B  %s\n", d.ID, d.Type, d.Class, d.Size, d.Title)
		}
	}

	if *read != "" {
		payload, err := cell.Read(*id+"-owner", *read, trustedcells.AccessContext{})
		if err != nil {
			log.Fatalf("tccell: read: %v", err)
		}
		if _, err := os.Stdout.Write(payload); err != nil {
			log.Fatalf("tccell: %v", err)
		}
	}

	if *ingest == "" && !*list && *read == "" {
		fmt.Println("tccell: nothing to do; pass -ingest, -list or -read (see -h)")
	}
}
