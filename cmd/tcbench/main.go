// Command tcbench regenerates the evaluation suite defined in DESIGN.md: one
// table per experiment (E1–E10) plus the Figure 1 architecture walk-through.
//
//	tcbench -experiment all          # run everything
//	tcbench -experiment e4           # one experiment
//	tcbench -run e10                 # filter flag: just the query pipeline
//	tcbench -run e9,e10              # comma-separated filter
//	tcbench -experiment fig1 -out report.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"trustedcells/internal/sim"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id (e1..e10, fig1) or 'all'")
		run        = flag.String("run", "", "comma-separated experiment filter (e.g. 'e10' or 'e9,e10'); overrides -experiment")
		out        = flag.String("out", "", "write the report to this file instead of stdout")
	)
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("tcbench: %v", err)
		}
		defer f.Close()
		w = f
	}

	ids, err := selectExperiments(*experiment, *run)
	if err != nil {
		log.Fatalf("tcbench: %v", err)
	}
	for _, id := range ids {
		table, err := sim.Run(id)
		if err != nil {
			log.Fatalf("tcbench: experiment %s: %v", id, err)
		}
		if err := table.Render(w); err != nil {
			log.Fatalf("tcbench: rendering %s: %v", id, err)
		}
	}
	if *out != "" {
		fmt.Printf("tcbench: wrote %d experiment(s) to %s\n", len(ids), *out)
	}
}

// selectExperiments resolves the -experiment / -run flags into the list of
// experiment IDs to regenerate. -run wins when both are given, so a single
// experiment can be rendered without running the whole suite.
func selectExperiments(experiment, run string) ([]string, error) {
	known := make(map[string]bool)
	for _, id := range sim.ExperimentIDs() {
		known[id] = true
	}
	pick := func(raw string) ([]string, error) {
		var ids []string
		for _, part := range strings.Split(raw, ",") {
			id := strings.ToLower(strings.TrimSpace(part))
			if id == "" {
				continue
			}
			if !known[id] {
				return nil, fmt.Errorf("unknown experiment %q (have %s)", id, strings.Join(sim.ExperimentIDs(), ", "))
			}
			ids = append(ids, id)
		}
		if len(ids) == 0 {
			return nil, fmt.Errorf("empty experiment filter")
		}
		return ids, nil
	}
	if run != "" {
		return pick(run)
	}
	if strings.ToLower(experiment) == "all" {
		return sim.ExperimentIDs(), nil
	}
	return pick(experiment)
}
