// Command tcbench regenerates the evaluation suite defined in DESIGN.md: one
// table per experiment (E1–E9) plus the Figure 1 architecture walk-through.
//
//	tcbench -experiment all          # run everything
//	tcbench -experiment e4           # one experiment
//	tcbench -experiment e9           # fleet throughput, sequential vs sharded/batched
//	tcbench -experiment fig1 -out report.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"trustedcells/internal/sim"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id (e1..e9, fig1) or 'all'")
		out        = flag.String("out", "", "write the report to this file instead of stdout")
	)
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("tcbench: %v", err)
		}
		defer f.Close()
		w = f
	}

	ids := []string{strings.ToLower(*experiment)}
	if *experiment == "all" {
		ids = sim.ExperimentIDs()
	}
	for _, id := range ids {
		table, err := sim.Run(id)
		if err != nil {
			log.Fatalf("tcbench: experiment %s: %v", id, err)
		}
		if err := table.Render(w); err != nil {
			log.Fatalf("tcbench: rendering %s: %v", id, err)
		}
	}
	if *out != "" {
		fmt.Printf("tcbench: wrote %d experiment(s) to %s\n", len(ids), *out)
	}
}
