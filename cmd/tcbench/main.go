// Command tcbench regenerates the evaluation suite defined in DESIGN.md: one
// table per experiment (E1–E12) plus the Figure 1 architecture walk-through.
//
//	tcbench -experiment all              # run everything
//	tcbench -experiment e4               # one experiment
//	tcbench -run e12                     # filter flag: just the fast-path study
//	tcbench -run e9,e10,e11,e12 -quick   # CI-sized configurations
//	tcbench -run e9,e10,e11,e12 -quick -json -out BENCH_E12.json
//	tcbench -gate ci/bench_baseline.json -in BENCH_E12.json
//	tcbench -experiment fig1 -out report.txt
//
// The -json flag emits the same tables machine-readably, including each
// experiment's headline Metrics; CI and humans consume the same output path.
// The -gate mode compares a previously emitted JSON report against a
// committed baseline of metric floors and exits non-zero when any metric
// regresses beyond the baseline's tolerance — the bench-trend gate CI runs on
// every pull request.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strings"

	"trustedcells/internal/sim"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id (e1..e12, fig1) or 'all'")
		run        = flag.String("run", "", "comma-separated experiment filter (e.g. 'e11' or 'e9,e10,e11'); overrides -experiment")
		out        = flag.String("out", "", "write the report to this file instead of stdout")
		jsonOut    = flag.Bool("json", false, "emit JSON (tables + metrics) instead of rendered text")
		quick      = flag.Bool("quick", false, "CI-sized configurations (headline scale point only)")
		gate       = flag.String("gate", "", "baseline file: compare a -json report (see -in) against committed metric floors and fail on regression")
		in         = flag.String("in", "", "with -gate: the -json report to check (default: run the experiments fresh)")
	)
	flag.Parse()

	if *gate != "" {
		if err := runGate(*gate, *in, *run, *quick); err != nil {
			log.Fatalf("tcbench: %v", err)
		}
		return
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("tcbench: %v", err)
		}
		defer f.Close()
		w = f
	}

	tables, err := runExperiments(*experiment, *run, *quick)
	if err != nil {
		log.Fatalf("tcbench: %v", err)
	}
	if *jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(tables); err != nil {
			log.Fatalf("tcbench: encoding JSON: %v", err)
		}
	} else {
		for _, table := range tables {
			if err := table.Render(w); err != nil {
				log.Fatalf("tcbench: rendering %s: %v", table.ID, err)
			}
		}
	}
	if *out != "" {
		fmt.Printf("tcbench: wrote %d experiment(s) to %s\n", len(tables), *out)
	}
}

// runExperiments resolves the selection flags and runs every selected
// experiment, quick-sized when asked.
func runExperiments(experiment, run string, quick bool) ([]*sim.Table, error) {
	ids, err := selectExperiments(experiment, run)
	if err != nil {
		return nil, err
	}
	tables := make([]*sim.Table, 0, len(ids))
	for _, id := range ids {
		var table *sim.Table
		if quick {
			table, err = sim.RunQuick(id)
		} else {
			table, err = sim.Run(id)
		}
		if err != nil {
			return nil, fmt.Errorf("experiment %s: %w", id, err)
		}
		tables = append(tables, table)
	}
	return tables, nil
}

// selectExperiments resolves the -experiment / -run flags into the list of
// experiment IDs to regenerate. -run wins when both are given, so a single
// experiment can be rendered without running the whole suite.
func selectExperiments(experiment, run string) ([]string, error) {
	known := make(map[string]bool)
	for _, id := range sim.ExperimentIDs() {
		known[id] = true
	}
	pick := func(raw string) ([]string, error) {
		var ids []string
		for _, part := range strings.Split(raw, ",") {
			id := strings.ToLower(strings.TrimSpace(part))
			if id == "" {
				continue
			}
			if !known[id] {
				return nil, fmt.Errorf("unknown experiment %q (have %s)", id, strings.Join(sim.ExperimentIDs(), ", "))
			}
			ids = append(ids, id)
		}
		if len(ids) == 0 {
			return nil, fmt.Errorf("empty experiment filter")
		}
		return ids, nil
	}
	if run != "" {
		return pick(run)
	}
	if strings.ToLower(experiment) == "all" {
		return sim.ExperimentIDs(), nil
	}
	return pick(experiment)
}

// baseline is the committed bench-trend floor file. Floors are deliberately
// conservative — they exist to catch order-of-magnitude regressions on shared
// CI runners, not to benchmark the runner — and a metric fails the gate when
// it drops more than Tolerance below its floor.
type baseline struct {
	// Tolerance is the fraction a metric may fall below its floor before the
	// gate fails (0.25 = fail when regressed >25% against the baseline).
	Tolerance float64 `json:"tolerance"`
	// Metrics maps "<experiment>.<metric>" (e.g. "e11.bytes_ratio") to its
	// floor. All gated metrics are higher-is-better.
	Metrics map[string]float64 `json:"metrics"`
}

// runGate loads the baseline and a JSON report (from -in, or freshly run) and
// fails on any gated metric regressing beyond the tolerance.
func runGate(gateFile, inFile, run string, quick bool) error {
	raw, err := os.ReadFile(gateFile)
	if err != nil {
		return fmt.Errorf("gate: %w", err)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("gate: parsing %s: %w", gateFile, err)
	}
	if base.Tolerance <= 0 || base.Tolerance >= 1 {
		return fmt.Errorf("gate: %s: tolerance %v out of (0,1)", gateFile, base.Tolerance)
	}

	var tables []*sim.Table
	if inFile != "" {
		data, err := os.ReadFile(inFile)
		if err != nil {
			return fmt.Errorf("gate: %w", err)
		}
		if err := json.Unmarshal(data, &tables); err != nil {
			return fmt.Errorf("gate: parsing %s: %w", inFile, err)
		}
	} else {
		if run == "" {
			run = "e9,e10,e11,e12"
		}
		if tables, err = runExperiments("", run, quick); err != nil {
			return fmt.Errorf("gate: %w", err)
		}
	}
	current := make(map[string]float64)
	for _, t := range tables {
		for name, v := range t.Metrics {
			current[strings.ToLower(t.ID)+"."+name] = v
		}
	}

	keys := make([]string, 0, len(base.Metrics))
	for k := range base.Metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	failed := 0
	for _, key := range keys {
		floor := base.Metrics[key]
		got, ok := current[key]
		switch {
		case !ok:
			failed++
			fmt.Printf("FAIL %-28s missing from report (floor %.2f)\n", key, floor)
		case got < floor*(1-base.Tolerance):
			failed++
			fmt.Printf("FAIL %-28s %.2f < %.2f (floor %.2f - %.0f%%)\n",
				key, got, floor*(1-base.Tolerance), floor, base.Tolerance*100)
		default:
			fmt.Printf("ok   %-28s %.2f (floor %.2f, tolerance %.0f%%)\n",
				key, got, floor, base.Tolerance*100)
		}
	}
	if failed > 0 {
		return fmt.Errorf("bench-trend gate: %d metric(s) regressed >%.0f%% against %s",
			failed, base.Tolerance*100, gateFile)
	}
	fmt.Printf("bench-trend gate: %d metric(s) within tolerance\n", len(keys))
	return nil
}
