// Command tcbench regenerates the evaluation suite defined in DESIGN.md: one
// table per experiment (E1–E18) plus the Figure 1 architecture walk-through.
//
//	tcbench -experiment all                  # run everything
//	tcbench -experiment e4                   # one experiment
//	tcbench -run e15                         # filter flag: just the availability drill
//	tcbench -run e14                         # fleet-scale tail latency at the front door
//	tcbench -run e17                         # the Byzantine-provider drill
//	tcbench -run e18                         # the durable read fast path
//	tcbench -run e9,e10,e11,e12,e13,e14,e15,e16,e17,e18 -quick   # CI-sized configurations
//	tcbench -run e14 -quick -json -out BENCH_E14.json
//	tcbench -run e17 -quick -json -out BENCH_E17.json
//	tcbench -gate ci/bench_baseline.json -in BENCH_E15.json
//	tcbench -gate ci/bench_baseline.json -in BENCH_E13.json,BENCH_E17.json
//	tcbench -experiment fig1 -out report.txt
//
// The -json flag emits the same tables machine-readably, including each
// experiment's headline Metrics; CI and humans consume the same output path.
// The -gate mode compares previously emitted JSON reports (-in accepts a
// comma-separated list, merged) against a committed baseline and exits
// non-zero on regression — the bench-trend gate CI runs on every pull
// request. The baseline carries two kinds of bounds: "metrics" are floors for
// higher-is-better numbers (throughput, speedups), "ceilings" are upper
// bounds for lower-is-better numbers (durability overhead, recovery time) —
// each in a tolerant flavour for timing-dependent numbers and a strict,
// no-tolerance flavour for deterministic ones (recovery percentages,
// acknowledged-write loss, allocation counts).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strings"

	"trustedcells/internal/sim"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id (e1..e18, fig1) or 'all'")
		run        = flag.String("run", "", "comma-separated experiment filter (e.g. 'e11' or 'e9,e10,e11'); overrides -experiment")
		out        = flag.String("out", "", "write the report to this file instead of stdout")
		jsonOut    = flag.Bool("json", false, "emit JSON (tables + metrics) instead of rendered text")
		quick      = flag.Bool("quick", false, "CI-sized configurations (headline scale point only)")
		gate       = flag.String("gate", "", "baseline file: compare -json reports (see -in) against committed metric floors/ceilings and fail on regression")
		in         = flag.String("in", "", "with -gate: comma-separated -json report(s) to check, merged (default: run the experiments fresh)")
	)
	flag.Parse()

	if *gate != "" {
		if err := runGate(*gate, *in, *run, *quick); err != nil {
			log.Fatalf("tcbench: %v", err)
		}
		return
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("tcbench: %v", err)
		}
		defer f.Close()
		w = f
	}

	tables, err := runExperiments(*experiment, *run, *quick)
	if err != nil {
		log.Fatalf("tcbench: %v", err)
	}
	if *jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(tables); err != nil {
			log.Fatalf("tcbench: encoding JSON: %v", err)
		}
	} else {
		for _, table := range tables {
			if err := table.Render(w); err != nil {
				log.Fatalf("tcbench: rendering %s: %v", table.ID, err)
			}
		}
	}
	if *out != "" {
		fmt.Printf("tcbench: wrote %d experiment(s) to %s\n", len(tables), *out)
	}
}

// runExperiments resolves the selection flags and runs every selected
// experiment, quick-sized when asked.
func runExperiments(experiment, run string, quick bool) ([]*sim.Table, error) {
	ids, err := selectExperiments(experiment, run)
	if err != nil {
		return nil, err
	}
	tables := make([]*sim.Table, 0, len(ids))
	for _, id := range ids {
		var table *sim.Table
		if quick {
			table, err = sim.RunQuick(id)
		} else {
			table, err = sim.Run(id)
		}
		if err != nil {
			return nil, fmt.Errorf("experiment %s: %w", id, err)
		}
		tables = append(tables, table)
	}
	return tables, nil
}

// selectExperiments resolves the -experiment / -run flags into the list of
// experiment IDs to regenerate. -run wins when both are given, so a single
// experiment can be rendered without running the whole suite.
func selectExperiments(experiment, run string) ([]string, error) {
	known := make(map[string]bool)
	for _, id := range sim.ExperimentIDs() {
		known[id] = true
	}
	pick := func(raw string) ([]string, error) {
		var ids []string
		for _, part := range strings.Split(raw, ",") {
			id := strings.ToLower(strings.TrimSpace(part))
			if id == "" {
				continue
			}
			if !known[id] {
				return nil, fmt.Errorf("unknown experiment %q (have %s)", id, strings.Join(sim.ExperimentIDs(), ", "))
			}
			ids = append(ids, id)
		}
		if len(ids) == 0 {
			return nil, fmt.Errorf("empty experiment filter")
		}
		return ids, nil
	}
	if run != "" {
		return pick(run)
	}
	if strings.ToLower(experiment) == "all" {
		return sim.ExperimentIDs(), nil
	}
	return pick(experiment)
}

// baseline is the committed bench-trend bounds file. Bounds are deliberately
// conservative — they exist to catch order-of-magnitude regressions on shared
// CI runners, not to benchmark the runner. A floored metric fails when it
// drops more than Tolerance below its floor; a ceilinged metric fails when it
// rises more than Tolerance above its ceiling.
type baseline struct {
	// Tolerance is the fraction a metric may cross its bound before the gate
	// fails (0.25 = fail when regressed >25% against the baseline).
	Tolerance float64 `json:"tolerance"`
	// Metrics maps "<experiment>.<metric>" (e.g. "e11.bytes_ratio") to its
	// floor; these metrics are higher-is-better.
	Metrics map[string]float64 `json:"metrics"`
	// Ceilings maps "<experiment>.<metric>" (e.g. "e13.durable_overhead") to
	// its upper bound; these metrics are lower-is-better.
	Ceilings map[string]float64 `json:"ceilings,omitempty"`
	// StrictMetrics are floors with NO tolerance, for metrics that are
	// deterministic rather than timing-dependent (allocation counts,
	// recovery percentages): any value below the floor fails.
	StrictMetrics map[string]float64 `json:"strict_metrics,omitempty"`
	// StrictCeilings are upper bounds with NO tolerance, for lower-is-better
	// metrics that must be exact (e.g. "e15.acked_loss": 0 — the kill drill
	// may never lose an acknowledged write).
	StrictCeilings map[string]float64 `json:"strict_ceilings,omitempty"`
}

// loadReports reads and merges one or more -json report files (a
// comma-separated -in list), so the gate can check metrics produced by
// separate tcbench invocations — e.g. the main suite and the durability
// suite — in one pass.
func loadReports(inFiles string) ([]*sim.Table, error) {
	var tables []*sim.Table
	for _, file := range strings.Split(inFiles, ",") {
		file = strings.TrimSpace(file)
		if file == "" {
			continue
		}
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		var part []*sim.Table
		if err := json.Unmarshal(data, &part); err != nil {
			return nil, fmt.Errorf("parsing %s: %w", file, err)
		}
		tables = append(tables, part...)
	}
	return tables, nil
}

// runGate loads the baseline and the JSON reports (from -in, or freshly run)
// and fails on any gated metric crossing its bound beyond the tolerance.
func runGate(gateFile, inFiles, run string, quick bool) error {
	raw, err := os.ReadFile(gateFile)
	if err != nil {
		return fmt.Errorf("gate: %w", err)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("gate: parsing %s: %w", gateFile, err)
	}
	if base.Tolerance <= 0 || base.Tolerance >= 1 {
		return fmt.Errorf("gate: %s: tolerance %v out of (0,1)", gateFile, base.Tolerance)
	}

	var tables []*sim.Table
	if inFiles != "" {
		if tables, err = loadReports(inFiles); err != nil {
			return fmt.Errorf("gate: %w", err)
		}
	} else {
		if run == "" {
			run = "e9,e10,e11,e12,e13,e14,e15,e16,e17,e18"
		}
		if tables, err = runExperiments("", run, quick); err != nil {
			return fmt.Errorf("gate: %w", err)
		}
	}
	current := make(map[string]float64)
	for _, t := range tables {
		for name, v := range t.Metrics {
			current[strings.ToLower(t.ID)+"."+name] = v
		}
	}

	failed := 0
	check := func(key, kind string, bound, tolerance float64) {
		got, ok := current[key]
		limit := bound * (1 - tolerance)
		breached := func() bool { return got < limit }
		cmp := "<"
		if strings.HasSuffix(kind, "ceiling") {
			limit = bound * (1 + tolerance)
			breached = func() bool { return got > limit }
			cmp = ">"
		}
		switch {
		case !ok:
			failed++
			fmt.Printf("FAIL %-28s missing from report (%s %.2f)\n", key, kind, bound)
		case breached():
			failed++
			fmt.Printf("FAIL %-28s %.2f %s %.2f (%s %.2f ± %.0f%%)\n",
				key, got, cmp, limit, kind, bound, tolerance*100)
		default:
			fmt.Printf("ok   %-28s %.2f (%s %.2f, tolerance %.0f%%)\n",
				key, got, kind, bound, tolerance*100)
		}
	}
	for _, key := range sortedKeys(base.Metrics) {
		check(key, "floor", base.Metrics[key], base.Tolerance)
	}
	for _, key := range sortedKeys(base.Ceilings) {
		check(key, "ceiling", base.Ceilings[key], base.Tolerance)
	}
	for _, key := range sortedKeys(base.StrictMetrics) {
		check(key, "strict floor", base.StrictMetrics[key], 0)
	}
	for _, key := range sortedKeys(base.StrictCeilings) {
		check(key, "strict ceiling", base.StrictCeilings[key], 0)
	}
	total := len(base.Metrics) + len(base.Ceilings) + len(base.StrictMetrics) + len(base.StrictCeilings)
	if failed > 0 {
		return fmt.Errorf("bench-trend gate: %d of %d metric(s) regressed >%.0f%% against %s",
			failed, total, base.Tolerance*100, gateFile)
	}
	fmt.Printf("bench-trend gate: %d metric(s) within tolerance\n", total)
	return nil
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
