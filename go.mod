module trustedcells

go 1.22
