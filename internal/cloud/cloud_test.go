package cloud

import (
	"bytes"
	"fmt"
	"testing"
	"time"
)

func TestPutGetDeleteBlob(t *testing.T) {
	m := NewMemory()
	v, err := m.PutBlob("alice/vault/doc-1", []byte("ciphertext"))
	if err != nil || v != 1 {
		t.Fatalf("PutBlob: v=%d err=%v", v, err)
	}
	b, err := m.GetBlob("alice/vault/doc-1")
	if err != nil {
		t.Fatalf("GetBlob: %v", err)
	}
	if !bytes.Equal(b.Data, []byte("ciphertext")) || b.Version != 1 {
		t.Fatalf("blob %+v", b)
	}
	// Update bumps version.
	v, _ = m.PutBlob("alice/vault/doc-1", []byte("ciphertext-v2"))
	if v != 2 {
		t.Fatalf("second version = %d", v)
	}
	if err := m.DeleteBlob("alice/vault/doc-1"); err != nil {
		t.Fatalf("DeleteBlob: %v", err)
	}
	if _, err := m.GetBlob("alice/vault/doc-1"); err != ErrBlobNotFound {
		t.Fatalf("after delete: %v", err)
	}
	if err := m.DeleteBlob("never-existed"); err != nil {
		t.Fatalf("delete idempotency: %v", err)
	}
}

func TestGetBlobReturnsCopy(t *testing.T) {
	m := NewMemory()
	_, _ = m.PutBlob("b", []byte("data"))
	b, _ := m.GetBlob("b")
	b.Data[0] = 'X'
	again, _ := m.GetBlob("b")
	if again.Data[0] == 'X' {
		t.Fatal("GetBlob exposes shared storage")
	}
}

func TestListBlobs(t *testing.T) {
	m := NewMemory()
	for i := 0; i < 5; i++ {
		_, _ = m.PutBlob(fmt.Sprintf("alice/doc-%d", i), []byte("x"))
	}
	_, _ = m.PutBlob("bob/doc-0", []byte("x"))
	names, err := m.ListBlobs("alice/")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 5 {
		t.Fatalf("ListBlobs = %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatal("names not sorted")
		}
	}
	all, _ := m.ListBlobs("")
	if len(all) != 6 {
		t.Fatalf("all blobs = %d", len(all))
	}
}

func TestMailboxes(t *testing.T) {
	m := NewMemory()
	for i := 0; i < 3; i++ {
		err := m.Send(Message{From: "alice", To: "bob", Kind: "share-offer", Body: []byte(fmt.Sprintf("m%d", i))})
		if err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	// FIFO order, bounded receive.
	msgs, err := m.Receive("bob", 2)
	if err != nil || len(msgs) != 2 {
		t.Fatalf("Receive: %d %v", len(msgs), err)
	}
	if string(msgs[0].Body) != "m0" || string(msgs[1].Body) != "m1" {
		t.Fatalf("wrong order: %q %q", msgs[0].Body, msgs[1].Body)
	}
	if msgs[0].ID == "" || msgs[0].Sent.IsZero() {
		t.Fatal("message metadata not filled")
	}
	msgs, _ = m.Receive("bob", 0)
	if len(msgs) != 1 {
		t.Fatalf("remaining = %d", len(msgs))
	}
	msgs, _ = m.Receive("bob", 10)
	if len(msgs) != 0 {
		t.Fatal("mailbox should be empty")
	}
	msgs, _ = m.Receive("nobody", 10)
	if len(msgs) != 0 {
		t.Fatal("unknown recipient should have empty mailbox")
	}
}

func TestStatsCounters(t *testing.T) {
	m := NewMemory()
	_, _ = m.PutBlob("a", []byte("12345"))
	_, _ = m.GetBlob("a")
	_, _ = m.ListBlobs("")
	_ = m.DeleteBlob("a")
	_ = m.Send(Message{To: "x"})
	_, _ = m.Receive("x", 1)
	st := m.Stats()
	if st.Puts != 1 || st.Gets != 1 || st.Lists != 1 || st.Deletes != 1 || st.Sends != 1 || st.Receives != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.BytesStored != 5 {
		t.Fatalf("BytesStored = %d", st.BytesStored)
	}
}

func TestOutage(t *testing.T) {
	m := NewMemory()
	fixed := time.Date(2013, 5, 1, 0, 0, 0, 0, time.UTC)
	m.SetClock(func() time.Time { return fixed })
	m.SetOutage(fixed.Add(time.Hour))
	if _, err := m.PutBlob("a", []byte("x")); err != ErrUnavailable {
		t.Fatalf("put during outage: %v", err)
	}
	if _, err := m.GetBlob("a"); err != ErrUnavailable {
		t.Fatalf("get during outage: %v", err)
	}
	if err := m.Send(Message{To: "x"}); err != ErrUnavailable {
		t.Fatalf("send during outage: %v", err)
	}
	// After the outage window the service recovers.
	m.SetClock(func() time.Time { return fixed.Add(2 * time.Hour) })
	if _, err := m.PutBlob("a", []byte("x")); err != nil {
		t.Fatalf("put after outage: %v", err)
	}
}

func TestTamperingAdversary(t *testing.T) {
	m := NewAdversary(NewMemory(), AdversaryConfig{Mode: Tampering, TamperRate: 1.0, Seed: 7})
	original := []byte("sealed envelope bytes")
	_, _ = m.PutBlob("victim", original)
	b, err := m.GetBlob("victim")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(b.Data, original) {
		t.Fatal("tampering adversary did not modify the blob")
	}
	if m.Stats().TamperedBlobs != 1 {
		t.Fatalf("TamperedBlobs = %d", m.Stats().TamperedBlobs)
	}
}

func TestReplayingAdversary(t *testing.T) {
	m := NewAdversary(NewMemory(), AdversaryConfig{Mode: Replaying, ReplayRate: 1.0, Seed: 7})
	_, _ = m.PutBlob("doc", []byte("version-1"))
	_, _ = m.PutBlob("doc", []byte("version-2"))
	b, err := m.GetBlob("doc")
	if err != nil {
		t.Fatal(err)
	}
	if string(b.Data) != "version-1" {
		t.Fatalf("expected replayed stale version, got %q", b.Data)
	}
	if m.Stats().ReplayedBlobs != 1 {
		t.Fatalf("ReplayedBlobs = %d", m.Stats().ReplayedBlobs)
	}
	// Before any update there is nothing to replay.
	m2 := NewAdversary(NewMemory(), AdversaryConfig{Mode: Replaying, ReplayRate: 1.0, Seed: 7})
	_, _ = m2.PutBlob("doc", []byte("only"))
	b, _ = m2.GetBlob("doc")
	if string(b.Data) != "only" {
		t.Fatal("replay with no history should return current version")
	}
}

func TestDroppingAdversary(t *testing.T) {
	m := NewAdversary(NewMemory(), AdversaryConfig{Mode: Dropping, DropRate: 1.0, Seed: 7})
	if _, err := m.PutBlob("doc", []byte("x")); err != nil {
		t.Fatalf("drop adversary should pretend success: %v", err)
	}
	if _, err := m.GetBlob("doc"); err != ErrBlobNotFound {
		t.Fatalf("dropped blob should be missing: %v", err)
	}
	_ = m.Send(Message{To: "bob", Body: []byte("x")})
	msgs, _ := m.Receive("bob", 10)
	if len(msgs) != 0 {
		t.Fatal("dropped message delivered")
	}
	st := m.Stats()
	if st.DroppedBlobs != 1 || st.DroppedMessages != 1 {
		t.Fatalf("drop stats %+v", st)
	}
}

func TestHonestButCuriousObservations(t *testing.T) {
	m := NewAdversary(NewMemory(), AdversaryConfig{Mode: HonestButCurious, Seed: 7})
	payload := []byte("sealed bytes the provider can stare at")
	_, _ = m.PutBlob("doc", payload)
	obs := m.Observations()
	if len(obs) != 1 || !bytes.Equal(obs[0], payload) {
		t.Fatalf("observations %v", obs)
	}
	// Mutating the returned observation must not affect the stored one.
	obs[0][0] = 'X'
	if bytes.Equal(m.Observations()[0], obs[0]) {
		t.Fatal("Observations exposes internal state")
	}
	if m.Stats().ObservedBlobs != 1 {
		t.Fatalf("ObservedBlobs = %d", m.Stats().ObservedBlobs)
	}
}

func TestAdversaryModeString(t *testing.T) {
	modes := []AdversaryMode{Honest, HonestButCurious, Tampering, Replaying, Dropping, Rollback, Fork}
	seen := map[string]bool{}
	for _, mode := range modes {
		s := mode.String()
		if s == "" || seen[s] {
			t.Fatalf("bad or duplicate name %q", s)
		}
		seen[s] = true
	}
	if AdversaryMode(42).String() == "" {
		t.Fatal("unknown mode should render")
	}
}
