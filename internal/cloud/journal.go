package cloud

// The commit journal is why a durable batch costs ONE disk barrier instead of
// one per shard. Before it, every batched write fanned out to up to Shards
// WAL fsyncs in parallel — and parallel fsyncs to different files mostly
// serialize in the filesystem journal, so a 256-blob PutBlobs over 32 shards
// paid ~5x the latency of a single barrier and E13 measured durability at
// ~2x the throughput of the in-memory provider. With the journal, the shard
// engines run with their own WAL fsyncs disabled and the whole cross-shard
// batch is made durable by a single fsync'd record here: acknowledged means
// "in the fsync'd journal", and recovery replays the journal into the shard
// engines. The shard engines run with their WALs disabled outright — journal
// replay restores everything since the last checkpoint, so a per-shard log
// would just write every value a second time.
//
// The barrier itself is kept cheap two ways. First, the journal file is
// zero-filled to its full limit and fsync'd when opened, and re-zeroed after
// every reset — so at commit time the blocks are allocated, the size is
// stable, and there are no dirty runway pages: the barrier is a pure data
// sync of the record just written (measurably about half the cost of an
// fsync on a growing file). Zeroing on reset also means every byte past the
// replayable prefix is zero unless a record was genuinely torn mid-append,
// which keeps recovery's torn-tail accounting exact. Second, the fsync is
// group committed: concurrent committers whose records were covered by a
// predecessor's barrier skip their own.
//
// Record payload (one per acknowledged write, CRC-framed by AppendLog):
//
//	[uvarint ngroups] then per group:
//	  [uvarint shard] [uvarint shardSeq] [uvarint nops]
//	  per op: [1 flags(bit0=delete)] [uvarint klen] key [uvarint vlen] value
//
// shardSeq is a per-shard counter assigned under the shard write mutex — the
// same critical section that assigns blob versions and applies the ops to the
// shard engine — so sorting replayed groups by (shard, shardSeq) reconstructs
// exactly the order the live store applied them, even though concurrent
// batches may append their records to the journal out of that order. Values
// are journaled fully encoded (versions already assigned), so replay is a
// blind idempotent rewrite: replaying a group the shard already holds changes
// nothing, and the highest-seq group wins per key either way.
//
// Truncation: the journal is reset whenever every shard has been flushed
// (its memtable checkpointed into fsync'd runs) — on clean Close, at the end
// of recovery, and when a commit notices the journal has outgrown its
// threshold. Committers hold the RLock, a checkpoint holds the Lock, so a
// reset can never race an append.

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"trustedcells/internal/storage"
)

const journalFileName = "journal.wal"

// defaultJournalBytes is the size at which a commit triggers a checkpoint
// (flush all shards, reset the journal). Large enough that steady writing
// rarely pays the checkpoint's run-flush fan-out, small enough to bound
// recovery replay to a fraction of a second of sequential reading.
const defaultJournalBytes = 32 << 20

// journalPreallocChunk is how far ahead of the append head the journal file
// is zero-filled. Writes into already-allocated blocks of an unchanged-size
// file let the commit barrier use a pure data sync.
const journalPreallocChunk = 4 << 20

// journalGroup is one shard's slice of a committed write: the unit of both
// journaling and replay ordering.
type journalGroup struct {
	shard int
	seq   uint64 // per-shard commit sequence, assigned under the shard wmu
	ops   []storage.Op
}

// commitJournal is the cross-shard write-ahead journal. commit() appends one
// record for a whole batch and group-commits the fsync: concurrent committers
// queue on syncMu and skip their fsync when a predecessor's barrier already
// covered their record.
type commitJournal struct {
	dev   *storage.FileDevice
	log   *storage.AppendLog
	limit int64
	// nosync skips the commit barrier (the ablation knob): records are still
	// appended so recovery stays uniform, but acknowledged writes survive a
	// crash only if the OS flushed them.
	nosync bool

	syncMu sync.Mutex
	synced int64 // journal offset covered by the last barrier

	preMu    sync.Mutex
	prealloc int64 // file extent already zero-filled ahead of the head
}

// openJournal opens (creating if needed) the journal file under dir.
func openJournal(dir string, limit int64, nosync bool) (*commitJournal, error) {
	path := filepath.Join(dir, journalFileName)
	_, statErr := os.Stat(path)
	dev, err := storage.OpenFileDevice(path)
	if err != nil {
		return nil, fmt.Errorf("cloud: open journal: %w", err)
	}
	if os.IsNotExist(statErr) {
		// First open created the file: make its directory entry durable
		// before any commit is acknowledged against it.
		if d, err := os.Open(dir); err == nil {
			_ = d.Sync()
			_ = d.Close()
		}
	}
	if limit <= 0 {
		limit = defaultJournalBytes
	}
	j := &commitJournal{
		dev:      dev,
		log:      storage.NewAppendLog(dev),
		limit:    limit,
		nosync:   nosync,
		prealloc: dev.Size(),
	}
	// Preallocate the full extent up front (see the file comment): flushing
	// the zeros here, off the commit path, is what lets every commit barrier
	// be a pure data sync.
	if err := j.fill(dev.Size()); err != nil {
		return nil, fmt.Errorf("cloud: preallocate journal: %w", err)
	}
	return j, nil
}

// fill zero-fills the file from `from` to the journal limit and flushes the
// zeros, leaving the extent allocated, size-stable and clean.
func (j *commitJournal) fill(from int64) error {
	if from >= j.limit {
		return nil
	}
	zeros := make([]byte, journalPreallocChunk)
	for off := from; off < j.limit; off += int64(len(zeros)) {
		chunk := zeros
		if rem := j.limit - off; rem < int64(len(chunk)) {
			chunk = chunk[:rem]
		}
		if _, err := j.dev.WriteAt(chunk, off); err != nil {
			return err
		}
	}
	if err := j.dev.Sync(); err != nil {
		return err
	}
	j.preMu.Lock()
	if j.limit > j.prealloc {
		j.prealloc = j.limit
	}
	j.preMu.Unlock()
	return nil
}

// ensurePrealloc extends the zero-filled runway when a record would land past
// the preallocated extent — only possible once the journal has outgrown its
// limit and a checkpoint is already due, so the slower in-band extension is
// rare.
func (j *commitJournal) ensurePrealloc(recordLen int) error {
	j.preMu.Lock()
	defer j.preMu.Unlock()
	need := j.log.Head() + int64(recordLen) + 8
	for j.prealloc < need {
		zeros := make([]byte, journalPreallocChunk)
		if _, err := j.dev.WriteAt(zeros, j.prealloc); err != nil {
			return err
		}
		j.prealloc += journalPreallocChunk
	}
	return nil
}

// append writes one record for the batch and waits until a barrier covers it.
// Returns true when the journal has outgrown its limit and the caller should
// checkpoint. Callers hold the Durable journal RLock.
func (j *commitJournal) append(groups []journalGroup) (checkpoint bool, err error) {
	record := encodeJournalRecord(groups)
	if err := j.ensurePrealloc(len(record)); err != nil {
		return false, err
	}
	if _, err := j.log.Append(record); err != nil {
		return false, err
	}
	head := j.log.Head()
	if !j.nosync {
		j.syncMu.Lock()
		if j.synced < head {
			// Everything appended before this point is covered by one barrier;
			// committers queued behind us find synced already past their
			// record and return without a barrier of their own. The barrier is
			// a data-only sync: preallocation keeps the file's size and block
			// map stable, so there is no metadata to flush.
			covered := j.log.Head()
			if err := j.dev.Datasync(); err != nil {
				j.syncMu.Unlock()
				return false, err
			}
			j.synced = covered
		}
		j.syncMu.Unlock()
	}
	return head > j.limit, nil
}

// reset discards every record after the caller has made all shards durable,
// then restores the clean zero-filled extent so subsequent commit barriers
// stay data-only. Callers hold the Durable journal Lock (no commit is in
// flight).
func (j *commitJournal) reset() error {
	if err := j.log.Reset(); err != nil {
		return err
	}
	if err := j.dev.Sync(); err != nil {
		return err
	}
	j.syncMu.Lock()
	j.synced = 0
	j.syncMu.Unlock()
	j.preMu.Lock()
	j.prealloc = 0
	j.preMu.Unlock()
	return j.fill(0)
}

// retire truncates the journal without re-preallocating — the clean-shutdown
// variant of reset, for a store that is closing and will re-preallocate on
// its next open.
func (j *commitJournal) retire() error {
	if err := j.log.Reset(); err != nil {
		return err
	}
	return j.dev.Sync()
}

func (j *commitJournal) close() error { return j.dev.Close() }

// scan reads every intact record from the start of the journal, stopping —
// like any WAL recovery — at the first torn or corrupt record, which can only
// be an unacknowledged tail (commit fsyncs before acknowledging). It returns
// the replayable groups, the offset where the valid prefix ends (the correct
// resume point for the append head), and the number of torn bytes after it;
// the zero-filled preallocation region past the last written byte is not data
// and is not counted.
func (j *commitJournal) scan() (groups []journalGroup, records int, end, discarded int64, err error) {
	size := j.dev.Size()
	var off int64
	for off < size {
		payload, rerr := j.log.ReadAt(off)
		if rerr != nil {
			break
		}
		gs, derr := decodeJournalRecord(payload)
		if derr != nil {
			break
		}
		groups = append(groups, gs...)
		records++
		off += int64(len(payload)) + 8
	}
	return groups, records, off, j.tornTail(off, size), nil
}

// tornTail measures how much non-zero data sits past the valid record prefix:
// the extent of a record that was mid-append at the crash. Trailing zeros are
// the preallocated runway, not torn data.
func (j *commitJournal) tornTail(off, size int64) int64 {
	end := off
	buf := make([]byte, 256<<10)
	for pos := off; pos < size; {
		chunk := buf
		if rem := size - pos; rem < int64(len(chunk)) {
			chunk = chunk[:rem]
		}
		n, err := j.dev.ReadAt(chunk, pos)
		for i := n - 1; i >= 0; i-- {
			if chunk[i] != 0 {
				end = pos + int64(i) + 1
				break
			}
		}
		if err != nil || n == 0 {
			break
		}
		pos += int64(n)
	}
	return end - off
}

// sortForReplay orders groups exactly as the live store applied them.
func sortForReplay(groups []journalGroup) {
	sort.Slice(groups, func(a, b int) bool {
		if groups[a].shard != groups[b].shard {
			return groups[a].shard < groups[b].shard
		}
		return groups[a].seq < groups[b].seq
	})
}

func encodeJournalRecord(groups []journalGroup) []byte {
	size := binary.MaxVarintLen64
	for _, g := range groups {
		size += 3 * binary.MaxVarintLen64
		for _, op := range g.ops {
			size += 1 + 2*binary.MaxVarintLen64 + len(op.Key) + len(op.Value)
		}
	}
	buf := make([]byte, 0, size)
	var tmp [binary.MaxVarintLen64]byte
	uv := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		buf = append(buf, tmp[:n]...)
	}
	uv(uint64(len(groups)))
	for _, g := range groups {
		uv(uint64(g.shard))
		uv(g.seq)
		uv(uint64(len(g.ops)))
		for _, op := range g.ops {
			var flags byte
			if op.Delete {
				flags |= 1
			}
			buf = append(buf, flags)
			uv(uint64(len(op.Key)))
			buf = append(buf, op.Key...)
			uv(uint64(len(op.Value)))
			buf = append(buf, op.Value...)
		}
	}
	return buf
}

func decodeJournalRecord(b []byte) ([]journalGroup, error) {
	uv := func() (uint64, bool) {
		v, n := binary.Uvarint(b)
		if n <= 0 {
			return 0, false
		}
		b = b[n:]
		return v, true
	}
	take := func(n uint64) ([]byte, bool) {
		if uint64(len(b)) < n {
			return nil, false
		}
		out := b[:n]
		b = b[n:]
		return out, true
	}
	ngroups, ok := uv()
	if !ok {
		return nil, storage.ErrCorrupt
	}
	groups := make([]journalGroup, 0, ngroups)
	for gi := uint64(0); gi < ngroups; gi++ {
		shard, ok1 := uv()
		seq, ok2 := uv()
		nops, ok3 := uv()
		if !ok1 || !ok2 || !ok3 {
			return nil, storage.ErrCorrupt
		}
		g := journalGroup{shard: int(shard), seq: seq, ops: make([]storage.Op, 0, nops)}
		for oi := uint64(0); oi < nops; oi++ {
			if len(b) < 1 {
				return nil, storage.ErrCorrupt
			}
			flags := b[0]
			b = b[1:]
			klen, ok4 := uv()
			key, ok5 := take(klen)
			if !ok4 || !ok5 {
				return nil, storage.ErrCorrupt
			}
			vlen, ok6 := uv()
			val, ok7 := take(vlen)
			if !ok6 || !ok7 {
				return nil, storage.ErrCorrupt
			}
			g.ops = append(g.ops, storage.Op{
				Key:    append([]byte(nil), key...),
				Value:  append([]byte(nil), val...),
				Delete: flags&1 != 0,
			})
		}
		groups = append(groups, g)
	}
	if len(b) != 0 {
		return nil, storage.ErrCorrupt
	}
	return groups, nil
}
