package cloud

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// TestQuarantineExcludesFromReads proves a quarantined member cannot serve
// reads: its (possibly rolled-back) copy is invisible to GetBlob even when
// it answers first, while writes keep fanning to it so it can converge.
func TestQuarantineExcludesFromReads(t *testing.T) {
	m0, m1, m2 := NewMemory(), NewMemory(), NewMemory()
	r, err := NewReplicated([]Service{m0, m1, m2}, ReplicatedOptions{WriteQuorum: 2, ReadQuorum: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	if _, err := r.PutBlob("doc", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	// Member 0 turns Byzantine: it serves stale bytes under the real version.
	if _, err := m0.PutBlob("doc", []byte("rolled-back")); err != nil {
		t.Fatal(err)
	}
	r.Quarantine(0)
	if !r.IsQuarantined(0) {
		t.Fatal("IsQuarantined(0) = false after Quarantine(0)")
	}
	if got := r.ReplicationStats().MembersQuarantined; got != 1 {
		t.Fatalf("MembersQuarantined = %d, want 1", got)
	}

	for i := 0; i < 20; i++ {
		b, err := r.GetBlob("doc")
		if err != nil {
			t.Fatalf("GetBlob during quarantine: %v", err)
		}
		if string(b.Data) == "rolled-back" {
			t.Fatal("read served the quarantined member's copy")
		}
	}

	// Writes still fan to the quarantined member.
	if _, err := r.PutBlob("doc2", []byte("fanned")); err != nil {
		t.Fatal(err)
	}
	if b, err := m0.GetBlob("doc2"); err != nil || string(b.Data) != "fanned" {
		t.Fatalf("quarantined member missed the write: %+v %v", b, err)
	}
}

// TestQuarantineAcksDoNotCountTowardW proves write quorums are counted over
// trusted members only: with one of three members quarantined W=2 still
// succeeds (two trusted acks exist), but quarantining a second member leaves
// one trusted member and the write must fail with ErrQuorumFailed even
// though three healthy backends would happily acknowledge.
func TestQuarantineAcksDoNotCountTowardW(t *testing.T) {
	r, err := NewReplicated([]Service{NewMemory(), NewMemory(), NewMemory()},
		ReplicatedOptions{WriteQuorum: 2, ReadQuorum: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	r.Quarantine(0)
	if _, err := r.PutBlob("doc", []byte("x")); err != nil {
		t.Fatalf("PutBlob with one quarantined member: %v", err)
	}
	if _, err := r.PutBlobs([]BlobPut{{Name: "batch", Data: []byte("y")}}); err != nil {
		t.Fatalf("PutBlobs with one quarantined member: %v", err)
	}

	r.Quarantine(1)
	if _, err := r.PutBlob("doc", []byte("z")); !errors.Is(err, ErrQuorumFailed) {
		t.Fatalf("PutBlob with two quarantined members: err=%v, want ErrQuorumFailed", err)
	}
	if err := r.DeleteBlob("doc"); !errors.Is(err, ErrQuorumFailed) {
		t.Fatalf("DeleteBlob with two quarantined members: err=%v, want ErrQuorumFailed", err)
	}
	if err := r.Send(Message{To: "bob", From: "alice", Body: []byte("hi")}); !errors.Is(err, ErrQuorumFailed) {
		t.Fatalf("Send with two quarantined members: err=%v, want ErrQuorumFailed", err)
	}
}

// TestQuarantineReadQuorumShrinks proves quarantine reduces read capacity:
// with R=2 and two of three members quarantined, reads fail rather than
// consult a convicted member.
func TestQuarantineReadQuorumShrinks(t *testing.T) {
	r, err := NewReplicated([]Service{NewMemory(), NewMemory(), NewMemory()},
		ReplicatedOptions{WriteQuorum: 2, ReadQuorum: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.PutBlob("doc", []byte("x")); err != nil {
		t.Fatal(err)
	}
	r.Quarantine(0)
	r.Quarantine(1)
	if _, err := r.GetBlob("doc"); !errors.Is(err, ErrQuorumFailed) {
		t.Fatalf("GetBlob with two quarantined members: err=%v, want ErrQuorumFailed", err)
	}
	if _, err := r.ListBlobs(""); !errors.Is(err, ErrQuorumFailed) {
		t.Fatalf("ListBlobs with two quarantined members: err=%v, want ErrQuorumFailed", err)
	}
}

// TestQuarantineReadmission is the full drill: a member diverges, is
// quarantined, anti-entropy rewrites its copies from the trusted fleet and
// re-admits it once every blob byte-matches the trusted view.
func TestQuarantineReadmission(t *testing.T) {
	m0, m1, m2 := NewMemory(), NewMemory(), NewMemory()
	r, err := NewReplicated([]Service{m0, m1, m2}, ReplicatedOptions{WriteQuorum: 3, ReadQuorum: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("doc-%d", i)
		if _, err := r.PutBlob(name, []byte("good-"+name)); err != nil {
			t.Fatal(err)
		}
	}
	// Member 0 silently dropped half the acknowledged writes (the Dropping
	// adversary's signature): the blobs are simply absent from its store.
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("doc-%d", i)
		if err := m0.DeleteBlob(name); err != nil {
			t.Fatal(err)
		}
	}
	r.Quarantine(0)

	report, err := r.AntiEntropy()
	if err != nil {
		t.Fatalf("AntiEntropy: %v", err)
	}
	if report.QuarantineRepairs == 0 {
		t.Fatalf("QuarantineRepairs = 0, want > 0 (report %+v)", report)
	}
	if report.Readmitted != 1 {
		t.Fatalf("Readmitted = %d, want 1 (report %+v)", report.Readmitted, report)
	}
	if r.IsQuarantined(0) {
		t.Fatal("member still quarantined after clean re-admission probe")
	}
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("doc-%d", i)
		b, err := m0.GetBlob(name)
		if err != nil {
			t.Fatalf("readmitted member missing %s: %v", name, err)
		}
		want := []byte("good-" + name)
		if !bytes.Equal(b.Data, want) {
			t.Fatalf("readmitted member holds %q for %s, want %q", b.Data, name, want)
		}
	}
	if got := r.ReplicationStats().MembersQuarantined; got != 0 {
		t.Fatalf("MembersQuarantined = %d after re-admission, want 0", got)
	}
}

// TestQuarantineStaysWhileVerifierRejects proves re-admission is gated on
// the installed Verifier vouching for the trusted winners: while it rejects,
// repairs still run but the quarantine flag never clears.
func TestQuarantineStaysWhileVerifierRejects(t *testing.T) {
	m0, m1, m2 := NewMemory(), NewMemory(), NewMemory()
	reject := true
	r, err := NewReplicated([]Service{m0, m1, m2}, ReplicatedOptions{
		WriteQuorum: 3, ReadQuorum: 2,
		Verifier: func(name string, data []byte) error {
			if reject {
				return fmt.Errorf("catalog audit failed for %s", name)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	if _, err := r.PutBlob("doc", []byte("good")); err != nil {
		t.Fatal(err)
	}
	if err := m0.DeleteBlob("doc"); err != nil {
		t.Fatal(err)
	}
	r.Quarantine(0)

	if _, err := r.AntiEntropy(); err != nil {
		t.Fatalf("AntiEntropy: %v", err)
	}
	if !r.IsQuarantined(0) {
		t.Fatal("member readmitted while the verifier rejected the winners")
	}
	// The repair itself still happened: the member's bytes converged.
	if b, err := m0.GetBlob("doc"); err != nil || string(b.Data) != "good" {
		t.Fatalf("quarantined member not repaired: %+v %v", b, err)
	}

	reject = false
	report, err := r.AntiEntropy()
	if err != nil {
		t.Fatalf("AntiEntropy after verifier accepts: %v", err)
	}
	if report.Readmitted != 1 || r.IsQuarantined(0) {
		t.Fatalf("member not readmitted once the verifier accepts (report %+v)", report)
	}
}

// TestQuarantineVersionInflatedStaysQuarantined covers the unrepairable
// case: a member whose version counter was pushed past the trusted winner's
// (blob versions only ever rise, so repair cannot lower it) serves divergent
// bytes the probe keeps rejecting. The member stays quarantined forever —
// SwapMember is the operator path out.
func TestQuarantineVersionInflatedStaysQuarantined(t *testing.T) {
	m0, m1, m2 := NewMemory(), NewMemory(), NewMemory()
	r, err := NewReplicated([]Service{m0, m1, m2}, ReplicatedOptions{WriteQuorum: 3, ReadQuorum: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	if _, err := r.PutBlob("doc", []byte("good")); err != nil {
		t.Fatal(err)
	}
	// Direct overwrite bumps member 0 to version 2 while the trusted winner
	// stays at version 1 — repair cannot win that race.
	if _, err := m0.PutBlob("doc", []byte("tampered")); err != nil {
		t.Fatal(err)
	}
	r.Quarantine(0)

	for round := 0; round < 3; round++ {
		report, err := r.AntiEntropy()
		if err != nil {
			t.Fatalf("AntiEntropy round %d: %v", round, err)
		}
		if report.Readmitted != 0 {
			t.Fatalf("round %d readmitted a divergent member (report %+v)", round, report)
		}
	}
	if !r.IsQuarantined(0) {
		t.Fatal("version-inflated divergent member was readmitted")
	}
	// The honest majority keeps serving the good bytes throughout.
	if b, err := r.GetBlob("doc"); err != nil || string(b.Data) != "good" {
		t.Fatalf("fleet read during permanent quarantine: %+v %v", b, err)
	}
}

// TestQuarantineHonestFleetUnaffected is the false-positive guard at the
// replication layer: with nobody quarantined the new counting changes
// nothing — W acks suffice, reads succeed, anti-entropy reports no
// quarantine work.
func TestQuarantineHonestFleetUnaffected(t *testing.T) {
	r, err := NewReplicated([]Service{NewMemory(), NewMemory(), NewMemory()},
		ReplicatedOptions{WriteQuorum: 2, ReadQuorum: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.PutBlob("doc", []byte("x")); err != nil {
		t.Fatal(err)
	}
	report, err := r.AntiEntropy()
	if err != nil {
		t.Fatal(err)
	}
	if report.QuarantineRepairs != 0 || report.Readmitted != 0 {
		t.Fatalf("honest fleet reported quarantine work: %+v", report)
	}
	if got := r.ReplicationStats().MembersQuarantined; got != 0 {
		t.Fatalf("MembersQuarantined = %d, want 0", got)
	}
}
