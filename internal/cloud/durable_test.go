package cloud

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

// The cross-backend conformance battery that used to open this file moved to
// conformance_test.go, where one table now drives memory, durable, tcp and
// replicated alike. This file keeps the Durable-specific machinery tests.

// TestDurableConcurrentStress is the disk-backed twin of the sharded memory
// stress test: every operation hammered from many goroutines, run under
// -race in CI.
func TestDurableConcurrentStress(t *testing.T) {
	d, err := OpenDurable(t.TempDir(), DurableOptions{Shards: 8, MemtableBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	const (
		workers      = 8
		blobsPerWork = 24 // divisible by 4 and 8 so the modulo counters add up
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			prefix := fmt.Sprintf("cell-%02d", w)
			for i := 0; i < blobsPerWork; i++ {
				name := fmt.Sprintf("%s/vault/doc-%03d", prefix, i)
				if _, err := d.PutBlob(name, []byte(name)); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				if i%4 == 0 {
					puts := []BlobPut{
						{Name: name, Data: []byte("v2")},
						{Name: name + "-side", Data: []byte("side")},
					}
					if _, err := d.PutBlobs(puts); err != nil {
						t.Errorf("batch put: %v", err)
						return
					}
				}
				if _, err := d.GetBlob(name); err != nil {
					t.Errorf("get: %v", err)
					return
				}
				if _, err := d.GetBlobs([]string{name, "nope"}); err != nil {
					t.Errorf("batch get: %v", err)
					return
				}
				if err := d.Send(Message{From: prefix, To: fmt.Sprintf("cell-%02d", (w+1)%workers), Body: []byte("ping")}); err != nil {
					t.Errorf("send: %v", err)
					return
				}
				if _, err := d.Receive(prefix, 4); err != nil {
					t.Errorf("receive: %v", err)
					return
				}
				if i%8 == 0 {
					if _, err := d.ListBlobs(prefix); err != nil {
						t.Errorf("list: %v", err)
						return
					}
					if err := d.DeleteBlob(name + "-gone"); err != nil {
						t.Errorf("delete: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	st := d.Stats()
	wantPuts := int64(workers * (blobsPerWork + 2*(blobsPerWork/4)))
	if st.Puts != wantPuts {
		t.Fatalf("Puts = %d, want %d", st.Puts, wantPuts)
	}
	names, err := d.ListBlobs("")
	if err != nil {
		t.Fatal(err)
	}
	want := workers * (blobsPerWork + blobsPerWork/4)
	if len(names) != want {
		t.Fatalf("final blob count = %d, want %d", len(names), want)
	}
}

// TestDurableSurvivesCrash writes through every state-bearing path, simulates
// a kill, and verifies a reopened store serves the exact acknowledged state.
func TestDurableSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, DurableOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := d.PutBlob(fmt.Sprintf("vault/doc-%03d", i), []byte(fmt.Sprintf("sealed-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrites bump versions; deletes tombstone.
	if v, _ := d.PutBlob("vault/doc-000", []byte("sealed-v2")); v != 2 {
		t.Fatalf("version = %d", v)
	}
	if err := d.DeleteBlob("vault/doc-001"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := d.Send(Message{From: "a", To: "bob", Body: []byte(fmt.Sprintf("m%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	if msgs, err := d.Receive("bob", 2); err != nil || len(msgs) != 2 {
		t.Fatalf("receive before crash: %d %v", len(msgs), err)
	}
	d.Crash()

	d2, err := OpenDurable(dir, DurableOptions{Shards: 4})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer d2.Close()
	rec := d2.RecoveryStats()
	if rec.Shards != 4 || rec.ReplayedRecords == 0 {
		t.Fatalf("recovery stats: %+v", rec)
	}
	names, err := d2.ListBlobs("")
	if err != nil || len(names) != 49 {
		t.Fatalf("recovered %d blobs (%v)", len(names), err)
	}
	b, err := d2.GetBlob("vault/doc-000")
	if err != nil || b.Version != 2 || string(b.Data) != "sealed-v2" {
		t.Fatalf("recovered overwrite: %+v %v", b, err)
	}
	if _, err := d2.GetBlob("vault/doc-001"); err != ErrBlobNotFound {
		t.Fatalf("recovered delete: %v", err)
	}
	// The popped messages stay popped; the pending three survive in order.
	msgs, err := d2.Receive("bob", 10)
	if err != nil || len(msgs) != 3 {
		t.Fatalf("recovered mailbox: %d %v", len(msgs), err)
	}
	if string(msgs[0].Body) != "m2" || string(msgs[2].Body) != "m4" {
		t.Fatalf("mailbox order after recovery: %q %q", msgs[0].Body, msgs[2].Body)
	}
	// New sends must sort after recovered ones (sequence restored).
	if err := d2.Send(Message{From: "a", To: "carol", Body: []byte("new")}); err != nil {
		t.Fatal(err)
	}
	if got, _ := d2.Receive("carol", 1); len(got) != 1 || got[0].Seq <= msgs[2].Seq {
		t.Fatalf("sequence did not resume: %+v after %d", got, msgs[2].Seq)
	}
}

// TestDurableReopenAfterClose exercises the graceful path: Close checkpoints,
// so reopening replays runs, not WAL records.
func TestDurableReopenAfterClose(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, DurableOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.PutBlobs([]BlobPut{
		{Name: "a", Data: []byte("1")},
		{Name: "b", Data: []byte("2")},
		{Name: "c", Data: []byte("3")},
	}); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDurable(dir, DurableOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	rec := d2.RecoveryStats()
	if rec.ReplayedRecords != 0 || rec.RecoveredRuns == 0 {
		t.Fatalf("graceful close should recover from runs: %+v", rec)
	}
	blobs, err := d2.GetBlobs([]string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"1", "2", "3"} {
		if string(blobs[i].Data) != want {
			t.Fatalf("blob %d = %+v", i, blobs[i])
		}
	}
}

// TestDurableShardCountPinned proves reopening with a different Shards option
// still routes keys correctly: the committed META.json wins.
func TestDurableShardCountPinned(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, DurableOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := d.PutBlob(fmt.Sprintf("doc-%03d", i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDurable(dir, DurableOptions{Shards: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.ShardCount() != 4 {
		t.Fatalf("shard count drifted to %d", d2.ShardCount())
	}
	for i := 0; i < 40; i++ {
		if _, err := d2.GetBlob(fmt.Sprintf("doc-%03d", i)); err != nil {
			t.Fatalf("doc-%03d unroutable after reopen: %v", i, err)
		}
	}
}

// TestDurableCompactionBoundsRuns drives enough flushes to trigger background
// compaction and verifies the store stays correct through and after it.
func TestDurableCompactionBoundsRuns(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, DurableOptions{Shards: 2, MemtableBytes: 2 << 10, MaxRuns: 2})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("p"), 256)
	for i := 0; i < 120; i++ {
		if _, err := d.PutBlob(fmt.Sprintf("doc-%04d", i), payload); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for d.EngineStats().Compactions == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no compaction: %+v", d.EngineStats())
		}
		time.Sleep(10 * time.Millisecond)
	}
	names, err := d.ListBlobs("")
	if err != nil || len(names) != 120 {
		t.Fatalf("blobs after compaction: %d %v", len(names), err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDurable(dir, DurableOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if names, _ := d2.ListBlobs(""); len(names) != 120 {
		t.Fatalf("blobs after reopen: %d", len(names))
	}
}

// TestDurableClockOverride keeps experiments deterministic.
func TestDurableClockOverride(t *testing.T) {
	d, err := OpenDurable(t.TempDir(), DurableOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	fixed := time.Date(2013, 1, 7, 0, 0, 0, 0, time.UTC)
	d.SetClock(func() time.Time { return fixed })
	if _, err := d.PutBlob("doc", []byte("x")); err != nil {
		t.Fatal(err)
	}
	b, err := d.GetBlob("doc")
	if err != nil || !b.Stored.Equal(fixed) {
		t.Fatalf("Stored = %v, want %v (%v)", b.Stored, fixed, err)
	}
}
