package cloud

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

// serviceUnderTest builds each backend the conformance battery runs against.
// Durable gets a small shard count so the per-shard paths (and the META.json
// shard pinning) are exercised without 32 directories per test.
func serviceBackends(t *testing.T) map[string]func(t *testing.T) Service {
	return map[string]func(t *testing.T) Service{
		"memory": func(t *testing.T) Service { return NewMemory() },
		"durable": func(t *testing.T) Service {
			d, err := OpenDurable(t.TempDir(), DurableOptions{Shards: 4})
			if err != nil {
				t.Fatalf("OpenDurable: %v", err)
			}
			t.Cleanup(func() { _ = d.Close() })
			return d
		},
	}
}

// TestServiceConformance runs the same behavioural battery over every backend:
// the contracts of Service, BatchService and ConditionalBatchService must be
// indistinguishable between the RAM store and the disk store.
func TestServiceConformance(t *testing.T) {
	for name, mk := range serviceBackends(t) {
		t.Run(name, func(t *testing.T) {
			svc := mk(t)

			// Blob lifecycle: versioning, round trip, delete idempotency.
			v, err := svc.PutBlob("alice/vault/doc-1", []byte("ciphertext"))
			if err != nil || v != 1 {
				t.Fatalf("PutBlob: v=%d err=%v", v, err)
			}
			b, err := svc.GetBlob("alice/vault/doc-1")
			if err != nil || !bytes.Equal(b.Data, []byte("ciphertext")) || b.Version != 1 {
				t.Fatalf("GetBlob: %+v %v", b, err)
			}
			if b.Stored.IsZero() {
				t.Fatal("Stored timestamp not set")
			}
			if v, _ = svc.PutBlob("alice/vault/doc-1", []byte("v2")); v != 2 {
				t.Fatalf("second version = %d", v)
			}
			// Returned data must be a private copy.
			b, _ = svc.GetBlob("alice/vault/doc-1")
			b.Data[0] = 'X'
			again, _ := svc.GetBlob("alice/vault/doc-1")
			if again.Data[0] == 'X' {
				t.Fatal("GetBlob exposes shared storage")
			}
			if err := svc.DeleteBlob("alice/vault/doc-1"); err != nil {
				t.Fatalf("DeleteBlob: %v", err)
			}
			if _, err := svc.GetBlob("alice/vault/doc-1"); err != ErrBlobNotFound {
				t.Fatalf("after delete: %v", err)
			}
			if err := svc.DeleteBlob("never-existed"); err != nil {
				t.Fatalf("delete idempotency: %v", err)
			}

			// Listing: prefix filter, sorted output.
			for i := 0; i < 5; i++ {
				_, _ = svc.PutBlob(fmt.Sprintf("alice/doc-%d", i), []byte("x"))
			}
			_, _ = svc.PutBlob("bob/doc-0", []byte("x"))
			names, err := svc.ListBlobs("alice/")
			if err != nil || len(names) != 5 {
				t.Fatalf("ListBlobs = %v, %v", names, err)
			}
			for i := 1; i < len(names); i++ {
				if names[i-1] >= names[i] {
					t.Fatal("names not sorted")
				}
			}
			if all, _ := svc.ListBlobs(""); len(all) != 6 {
				t.Fatalf("all blobs = %d", len(all))
			}

			// Mailboxes: FIFO, bounded receive, metadata fill-in.
			for i := 0; i < 3; i++ {
				err := svc.Send(Message{From: "alice", To: "bob", Kind: "share-offer",
					Body: []byte(fmt.Sprintf("m%d", i))})
				if err != nil {
					t.Fatalf("Send: %v", err)
				}
			}
			msgs, err := svc.Receive("bob", 2)
			if err != nil || len(msgs) != 2 {
				t.Fatalf("Receive: %d %v", len(msgs), err)
			}
			if string(msgs[0].Body) != "m0" || string(msgs[1].Body) != "m1" {
				t.Fatalf("wrong order: %q %q", msgs[0].Body, msgs[1].Body)
			}
			if msgs[0].ID == "" || msgs[0].Sent.IsZero() || msgs[0].From != "alice" || msgs[0].Kind != "share-offer" {
				t.Fatalf("message metadata not preserved: %+v", msgs[0])
			}
			if msgs, _ = svc.Receive("bob", 0); len(msgs) != 1 {
				t.Fatalf("remaining = %d", len(msgs))
			}
			if msgs, _ = svc.Receive("bob", 10); len(msgs) != 0 {
				t.Fatal("mailbox should be empty")
			}
			if msgs, _ = svc.Receive("nobody", 10); len(msgs) != 0 {
				t.Fatal("unknown recipient should have empty mailbox")
			}

			// Batch put/get: versions in argument order, missing names zero.
			versions, err := PutBlobsVia(svc, []BlobPut{
				{Name: "batch/a", Data: []byte("aa")},
				{Name: "bob/doc-0", Data: []byte("v2")},
				{Name: "batch/b", Data: []byte("bb")},
			})
			if err != nil || len(versions) != 3 || versions[0] != 1 || versions[1] != 2 || versions[2] != 1 {
				t.Fatalf("PutBlobs versions = %v, %v", versions, err)
			}
			blobs, err := GetBlobsVia(svc, []string{"missing", "batch/a", "batch/b"})
			if err != nil {
				t.Fatalf("GetBlobs: %v", err)
			}
			if blobs[0].Version != 0 || string(blobs[1].Data) != "aa" || string(blobs[2].Data) != "bb" {
				t.Fatalf("GetBlobs: %+v", blobs)
			}

			// Conditional fetch: unadvanced versions ship no data.
			got, err := GetBlobsIfVia(svc, []CondGet{
				{Name: "batch/a", IfNewer: 1},   // current 1: not advanced
				{Name: "bob/doc-0", IfNewer: 1}, // current 2: advanced
				{Name: "missing", IfNewer: 0},
			})
			if err != nil {
				t.Fatalf("GetBlobsIf: %v", err)
			}
			if got[0].Version != 1 || got[0].Data != nil {
				t.Fatalf("unadvanced blob should ship version only: %+v", got[0])
			}
			if got[1].Version != 2 || string(got[1].Data) != "v2" {
				t.Fatalf("advanced blob should ship data: %+v", got[1])
			}
			if got[2].Version != 0 {
				t.Fatalf("missing blob should be zero: %+v", got[2])
			}

			// Counters add up per blob, not per call.
			st := svc.Stats()
			if st.Puts < 9 || st.Sends != 3 || st.Receives < 2 {
				t.Fatalf("stats %+v", st)
			}
		})
	}
}

// TestDurableConcurrentStress is the disk-backed twin of the sharded memory
// stress test: every operation hammered from many goroutines, run under
// -race in CI.
func TestDurableConcurrentStress(t *testing.T) {
	d, err := OpenDurable(t.TempDir(), DurableOptions{Shards: 8, MemtableBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	const (
		workers      = 8
		blobsPerWork = 24 // divisible by 4 and 8 so the modulo counters add up
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			prefix := fmt.Sprintf("cell-%02d", w)
			for i := 0; i < blobsPerWork; i++ {
				name := fmt.Sprintf("%s/vault/doc-%03d", prefix, i)
				if _, err := d.PutBlob(name, []byte(name)); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				if i%4 == 0 {
					puts := []BlobPut{
						{Name: name, Data: []byte("v2")},
						{Name: name + "-side", Data: []byte("side")},
					}
					if _, err := d.PutBlobs(puts); err != nil {
						t.Errorf("batch put: %v", err)
						return
					}
				}
				if _, err := d.GetBlob(name); err != nil {
					t.Errorf("get: %v", err)
					return
				}
				if _, err := d.GetBlobs([]string{name, "nope"}); err != nil {
					t.Errorf("batch get: %v", err)
					return
				}
				if err := d.Send(Message{From: prefix, To: fmt.Sprintf("cell-%02d", (w+1)%workers), Body: []byte("ping")}); err != nil {
					t.Errorf("send: %v", err)
					return
				}
				if _, err := d.Receive(prefix, 4); err != nil {
					t.Errorf("receive: %v", err)
					return
				}
				if i%8 == 0 {
					if _, err := d.ListBlobs(prefix); err != nil {
						t.Errorf("list: %v", err)
						return
					}
					if err := d.DeleteBlob(name + "-gone"); err != nil {
						t.Errorf("delete: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	st := d.Stats()
	wantPuts := int64(workers * (blobsPerWork + 2*(blobsPerWork/4)))
	if st.Puts != wantPuts {
		t.Fatalf("Puts = %d, want %d", st.Puts, wantPuts)
	}
	names, err := d.ListBlobs("")
	if err != nil {
		t.Fatal(err)
	}
	want := workers * (blobsPerWork + blobsPerWork/4)
	if len(names) != want {
		t.Fatalf("final blob count = %d, want %d", len(names), want)
	}
}

// TestDurableSurvivesCrash writes through every state-bearing path, simulates
// a kill, and verifies a reopened store serves the exact acknowledged state.
func TestDurableSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, DurableOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := d.PutBlob(fmt.Sprintf("vault/doc-%03d", i), []byte(fmt.Sprintf("sealed-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrites bump versions; deletes tombstone.
	if v, _ := d.PutBlob("vault/doc-000", []byte("sealed-v2")); v != 2 {
		t.Fatalf("version = %d", v)
	}
	if err := d.DeleteBlob("vault/doc-001"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := d.Send(Message{From: "a", To: "bob", Body: []byte(fmt.Sprintf("m%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	if msgs, err := d.Receive("bob", 2); err != nil || len(msgs) != 2 {
		t.Fatalf("receive before crash: %d %v", len(msgs), err)
	}
	d.Crash()

	d2, err := OpenDurable(dir, DurableOptions{Shards: 4})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer d2.Close()
	rec := d2.RecoveryStats()
	if rec.Shards != 4 || rec.ReplayedRecords == 0 {
		t.Fatalf("recovery stats: %+v", rec)
	}
	names, err := d2.ListBlobs("")
	if err != nil || len(names) != 49 {
		t.Fatalf("recovered %d blobs (%v)", len(names), err)
	}
	b, err := d2.GetBlob("vault/doc-000")
	if err != nil || b.Version != 2 || string(b.Data) != "sealed-v2" {
		t.Fatalf("recovered overwrite: %+v %v", b, err)
	}
	if _, err := d2.GetBlob("vault/doc-001"); err != ErrBlobNotFound {
		t.Fatalf("recovered delete: %v", err)
	}
	// The popped messages stay popped; the pending three survive in order.
	msgs, err := d2.Receive("bob", 10)
	if err != nil || len(msgs) != 3 {
		t.Fatalf("recovered mailbox: %d %v", len(msgs), err)
	}
	if string(msgs[0].Body) != "m2" || string(msgs[2].Body) != "m4" {
		t.Fatalf("mailbox order after recovery: %q %q", msgs[0].Body, msgs[2].Body)
	}
	// New sends must sort after recovered ones (sequence restored).
	if err := d2.Send(Message{From: "a", To: "carol", Body: []byte("new")}); err != nil {
		t.Fatal(err)
	}
	if got, _ := d2.Receive("carol", 1); len(got) != 1 || got[0].Seq <= msgs[2].Seq {
		t.Fatalf("sequence did not resume: %+v after %d", got, msgs[2].Seq)
	}
}

// TestDurableReopenAfterClose exercises the graceful path: Close checkpoints,
// so reopening replays runs, not WAL records.
func TestDurableReopenAfterClose(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, DurableOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.PutBlobs([]BlobPut{
		{Name: "a", Data: []byte("1")},
		{Name: "b", Data: []byte("2")},
		{Name: "c", Data: []byte("3")},
	}); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDurable(dir, DurableOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	rec := d2.RecoveryStats()
	if rec.ReplayedRecords != 0 || rec.RecoveredRuns == 0 {
		t.Fatalf("graceful close should recover from runs: %+v", rec)
	}
	blobs, err := d2.GetBlobs([]string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"1", "2", "3"} {
		if string(blobs[i].Data) != want {
			t.Fatalf("blob %d = %+v", i, blobs[i])
		}
	}
}

// TestDurableShardCountPinned proves reopening with a different Shards option
// still routes keys correctly: the committed META.json wins.
func TestDurableShardCountPinned(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, DurableOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := d.PutBlob(fmt.Sprintf("doc-%03d", i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDurable(dir, DurableOptions{Shards: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.ShardCount() != 4 {
		t.Fatalf("shard count drifted to %d", d2.ShardCount())
	}
	for i := 0; i < 40; i++ {
		if _, err := d2.GetBlob(fmt.Sprintf("doc-%03d", i)); err != nil {
			t.Fatalf("doc-%03d unroutable after reopen: %v", i, err)
		}
	}
}

// TestDurableCompactionBoundsRuns drives enough flushes to trigger background
// compaction and verifies the store stays correct through and after it.
func TestDurableCompactionBoundsRuns(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, DurableOptions{Shards: 2, MemtableBytes: 2 << 10, MaxRuns: 2})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("p"), 256)
	for i := 0; i < 120; i++ {
		if _, err := d.PutBlob(fmt.Sprintf("doc-%04d", i), payload); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for d.EngineStats().Compactions == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no compaction: %+v", d.EngineStats())
		}
		time.Sleep(10 * time.Millisecond)
	}
	names, err := d.ListBlobs("")
	if err != nil || len(names) != 120 {
		t.Fatalf("blobs after compaction: %d %v", len(names), err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDurable(dir, DurableOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if names, _ := d2.ListBlobs(""); len(names) != 120 {
		t.Fatalf("blobs after reopen: %d", len(names))
	}
}

// TestDurableClockOverride keeps experiments deterministic.
func TestDurableClockOverride(t *testing.T) {
	d, err := OpenDurable(t.TempDir(), DurableOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	fixed := time.Date(2013, 1, 7, 0, 0, 0, 0, time.UTC)
	d.SetClock(func() time.Time { return fixed })
	if _, err := d.PutBlob("doc", []byte("x")); err != nil {
		t.Fatal(err)
	}
	b, err := d.GetBlob("doc")
	if err != nil || !b.Stored.Equal(fixed) {
		t.Fatalf("Stored = %v, want %v (%v)", b.Stored, fixed, err)
	}
}
