package cloud

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultShards is the shard count of a Memory built by NewMemory. It is a
// compromise between lock granularity and per-shard bookkeeping; experiment
// E9 shows where the curve flattens.
const DefaultShards = 32

// shard is one lock-striped partition of the store. Blobs and mailboxes are
// assigned to shards by FNV-1a hash of the blob name / recipient, so two
// cells working on different vault prefixes almost never contend.
type shard struct {
	mu        sync.RWMutex
	blobs     map[string]Blob
	mailboxes map[string][]Message
}

// counters is the atomic backing of Stats, so that hot-path operations on
// different shards never share a lock just to count themselves.
type counters struct {
	puts, gets, deletes, lists atomic.Int64
	sends, receives            atomic.Int64
	bytesStored                atomic.Int64
}

func (c *counters) snapshot() Stats {
	return Stats{
		Puts: c.puts.Load(), Gets: c.gets.Load(), Deletes: c.deletes.Load(), Lists: c.lists.Load(),
		Sends: c.sends.Load(), Receives: c.receives.Load(),
		BytesStored: c.bytesStored.Load(),
	}
}

// Memory is an honest in-process implementation of Service. It is the
// substrate for simulations; the TCP server in this package exposes the same
// behaviour over the network, and adversarial behaviour is injected by
// wrapping any backend — this one included — in an Adversary.
//
// The store is sharded: blob names and mailbox recipients are hashed onto
// DefaultShards (or the count given to NewMemoryShards) independent
// partitions, each behind its own RWMutex, and the service counters are
// atomics. A single-shard Memory reproduces the original single-mutex
// behaviour and serves as the sequential baseline in experiment E9.
//
// Memory also implements BatchService: PutBlobs and GetBlobs group their
// arguments by shard and take each shard lock once, and pay the simulated
// network latency (SetLatency) once per call instead of once per blob.
type Memory struct {
	shards []*shard
	stats  counters

	nextMsg atomic.Uint64

	// cfgMu guards the clock, the outage window and the simulated latency.
	cfgMu            sync.RWMutex
	unavailableUntil time.Time
	now              func() time.Time
	latency          time.Duration
}

// NewMemory creates an honest in-memory cloud service with DefaultShards
// shards.
func NewMemory() *Memory {
	return NewMemoryShards(DefaultShards)
}

// NewMemoryShards creates an honest service with the given shard count.
// shards < 1 is clamped to 1; a single shard reproduces the historical
// one-big-lock store.
func NewMemoryShards(shards int) *Memory {
	if shards < 1 {
		shards = 1
	}
	m := &Memory{
		shards: make([]*shard, shards),
		now:    time.Now,
	}
	for i := range m.shards {
		m.shards[i] = &shard{
			blobs:     make(map[string]Blob),
			mailboxes: make(map[string][]Message),
		}
	}
	return m
}

// ShardCount returns the number of shards of the store.
func (m *Memory) ShardCount() int { return len(m.shards) }

// shardIndexOf maps a blob name or mailbox recipient onto one of shards
// partitions by FNV-1a hash. It is the striping function shared by every
// sharded backend (Memory, Durable): identical hashing means a workload's
// contention profile is a property of its key set, not of the backend.
func shardIndexOf(key string, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return int(h.Sum32() % uint32(shards))
}

// shardIndex maps a blob name or mailbox recipient onto a shard index.
func (m *Memory) shardIndex(key string) int {
	return shardIndexOf(key, len(m.shards))
}

// shardFor maps a blob name or mailbox recipient onto its shard.
func (m *Memory) shardFor(key string) *shard {
	return m.shards[m.shardIndex(key)]
}

// SetClock overrides the service clock (used by simulations).
func (m *Memory) SetClock(now func() time.Time) {
	m.cfgMu.Lock()
	m.now = now
	m.cfgMu.Unlock()
}

// SetOutage makes the service return ErrUnavailable until t.
func (m *Memory) SetOutage(until time.Time) {
	m.cfgMu.Lock()
	m.unavailableUntil = until
	m.cfgMu.Unlock()
}

// SetLatency attaches a simulated network round-trip to every service call.
// Each Service method sleeps once per invocation — so a batch call pays one
// round-trip for its whole argument list, which is precisely the economics
// that make BatchService worthwhile for a fleet of edge cells talking to a
// remote provider. Zero disables the simulation (the default).
func (m *Memory) SetLatency(d time.Duration) {
	m.cfgMu.Lock()
	m.latency = d
	m.cfgMu.Unlock()
}

// checkIn applies the simulated round-trip latency and the outage window.
// It is called once at the start of every service call, outside any shard
// lock, and returns ErrUnavailable while an outage is in effect.
func (m *Memory) checkIn() error {
	m.cfgMu.RLock()
	latency := m.latency
	until := m.unavailableUntil
	now := m.now
	m.cfgMu.RUnlock()
	if latency > 0 {
		time.Sleep(latency)
	}
	if !until.IsZero() && now().Before(until) {
		return ErrUnavailable
	}
	return nil
}

// clock returns the current service time.
func (m *Memory) clock() time.Time {
	m.cfgMu.RLock()
	now := m.now
	m.cfgMu.RUnlock()
	return now()
}

// PutBlob stores data under name.
func (m *Memory) PutBlob(name string, data []byte) (int, error) {
	if err := m.checkIn(); err != nil {
		return 0, err
	}
	s := m.shardFor(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	return m.putLocked(s, name, data)
}

// putLocked applies one put on a shard whose write lock is held.
func (m *Memory) putLocked(s *shard, name string, data []byte) (int, error) {
	m.stats.puts.Add(1)
	m.stats.bytesStored.Add(int64(len(data)))

	old := s.blobs[name]
	b := Blob{Name: name, Version: old.Version + 1, Data: append([]byte(nil), data...), Stored: m.clock()}
	s.blobs[name] = b
	return b.Version, nil
}

// GetBlob returns the latest version of the blob.
func (m *Memory) GetBlob(name string) (Blob, error) {
	if err := m.checkIn(); err != nil {
		return Blob{}, err
	}
	s := m.shardFor(name)
	s.mu.RLock()
	defer s.mu.RUnlock()
	return m.getLocked(s, name)
}

// getLocked serves one read on a shard whose read lock is held.
func (m *Memory) getLocked(s *shard, name string) (Blob, error) {
	m.stats.gets.Add(1)
	b, ok := s.blobs[name]
	if !ok {
		return Blob{}, ErrBlobNotFound
	}
	return cloneBlob(b), nil
}

func cloneBlob(b Blob) Blob {
	c := b
	c.Data = append([]byte(nil), b.Data...)
	return c
}

// DeleteBlob removes a blob (idempotent).
func (m *Memory) DeleteBlob(name string) error {
	if err := m.checkIn(); err != nil {
		return err
	}
	s := m.shardFor(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	m.stats.deletes.Add(1)
	delete(s.blobs, name)
	return nil
}

// ListBlobs returns the stored blob names with the given prefix.
func (m *Memory) ListBlobs(prefix string) ([]string, error) {
	if err := m.checkIn(); err != nil {
		return nil, err
	}
	m.stats.lists.Add(1)
	var names []string
	for _, s := range m.shards {
		s.mu.RLock()
		for n := range s.blobs {
			if strings.HasPrefix(n, prefix) {
				names = append(names, n)
			}
		}
		s.mu.RUnlock()
	}
	sort.Strings(names)
	return names, nil
}

// Send delivers a message to the recipient's mailbox.
func (m *Memory) Send(msg Message) error {
	if err := m.checkIn(); err != nil {
		return err
	}
	s := m.shardFor(msg.To)
	s.mu.Lock()
	defer s.mu.Unlock()
	m.stats.sends.Add(1)
	seq := m.nextMsg.Add(1)
	msg.Seq = seq
	if msg.ID == "" {
		msg.ID = fmt.Sprintf("msg-%08d", seq)
	}
	if msg.Sent.IsZero() {
		msg.Sent = m.clock()
	}
	msg.Body = append([]byte(nil), msg.Body...)
	s.mailboxes[msg.To] = append(s.mailboxes[msg.To], msg)
	return nil
}

// Receive pops up to max messages from the recipient's mailbox in FIFO order.
func (m *Memory) Receive(recipient string, max int) ([]Message, error) {
	if err := m.checkIn(); err != nil {
		return nil, err
	}
	s := m.shardFor(recipient)
	s.mu.Lock()
	defer s.mu.Unlock()
	m.stats.receives.Add(1)
	box := s.mailboxes[recipient]
	if len(box) == 0 {
		return nil, nil
	}
	if max <= 0 || max > len(box) {
		max = len(box)
	}
	out := make([]Message, max)
	copy(out, box[:max])
	s.mailboxes[recipient] = box[max:]
	return out, nil
}

// Stats returns a snapshot of the service counters.
func (m *Memory) Stats() Stats {
	return m.stats.snapshot()
}

// PutBlobs implements BatchService: it stores every blob, grouping the writes
// by shard so each shard lock is taken at most once, and returns the new
// version of each blob in argument order. The simulated network latency is
// paid once for the whole batch.
func (m *Memory) PutBlobs(puts []BlobPut) ([]int, error) {
	if err := m.checkIn(); err != nil {
		return nil, err
	}
	versions := make([]int, len(puts))
	for _, group := range m.groupByShard(len(puts), func(i int) string { return puts[i].Name }) {
		s := m.shards[group.shard]
		s.mu.Lock()
		for _, i := range group.indices {
			v, err := m.putLocked(s, puts[i].Name, puts[i].Data)
			if err != nil {
				s.mu.Unlock()
				return nil, err
			}
			versions[i] = v
		}
		s.mu.Unlock()
	}
	return versions, nil
}

// GetBlobs implements BatchService: it returns the latest version of each
// named blob in argument order. A missing name yields a zero Blob (Version
// 0) at its position rather than failing the whole batch; only service-level
// failures (outages) return an error.
func (m *Memory) GetBlobs(names []string) ([]Blob, error) {
	if err := m.checkIn(); err != nil {
		return nil, err
	}
	blobs := make([]Blob, len(names))
	for _, group := range m.groupByShard(len(names), func(i int) string { return names[i] }) {
		s := m.shards[group.shard]
		s.mu.RLock()
		for _, i := range group.indices {
			if b, err := m.getLocked(s, names[i]); err == nil {
				blobs[i] = b
			}
		}
		s.mu.RUnlock()
	}
	return blobs, nil
}

// GetBlobsIf implements ConditionalBatchService: blobs whose stored version is
// still <= the requested IfNewer come back with their current Version but no
// data, so a synchronizing replica pays only for the shards that advanced.
func (m *Memory) GetBlobsIf(gets []CondGet) ([]Blob, error) {
	if err := m.checkIn(); err != nil {
		return nil, err
	}
	blobs := make([]Blob, len(gets))
	for _, group := range m.groupByShard(len(gets), func(i int) string { return gets[i].Name }) {
		s := m.shards[group.shard]
		s.mu.RLock()
		for _, i := range group.indices {
			cur, ok := s.blobs[gets[i].Name]
			if !ok {
				continue
			}
			if cur.Version <= gets[i].IfNewer {
				m.stats.gets.Add(1)
				blobs[i] = Blob{Name: cur.Name, Version: cur.Version, Stored: cur.Stored}
				continue
			}
			if b, err := m.getLocked(s, gets[i].Name); err == nil {
				blobs[i] = b
			}
		}
		s.mu.RUnlock()
	}
	return blobs, nil
}

// shardGroup lists the argument indices that landed on one shard.
type shardGroup struct {
	shard   int
	indices []int
}

// groupByShard buckets n argument indices by the shard of their key, so batch
// operations lock each shard once.
func (m *Memory) groupByShard(n int, key func(int) string) []shardGroup {
	return groupKeysByShard(n, len(m.shards), key)
}

// groupKeysByShard buckets n argument indices by the shard of their key; it
// backs the batch operations of every sharded backend.
func groupKeysByShard(n, shards int, key func(int) string) []shardGroup {
	buckets := make(map[int]*shardGroup)
	var order []*shardGroup
	for i := 0; i < n; i++ {
		idx := shardIndexOf(key(i), shards)
		g, ok := buckets[idx]
		if !ok {
			g = &shardGroup{shard: idx}
			buckets[idx] = g
			order = append(order, g)
		}
		g.indices = append(g.indices, i)
	}
	out := make([]shardGroup, len(order))
	for i, g := range order {
		out[i] = *g
	}
	return out
}
