package cloud

// This file adds multi-tenancy on top of any single Service: one provider
// process serves many isolated customers ("tenants"), each seeing its own
// blob and mailbox namespace and each held to a byte and an operation
// budget. Isolation is by name rewriting — a tenant's blob "vault/1" is
// stored as "t/<tenant>/vault/1", its mailboxes likewise — so every backend
// (memory, durable, replicated) is multi-tenant for free and the FNV shard
// routing keeps spreading tenants across shards. DESIGN.md §11.3 documents
// the model; the quota policy is:
//
//   - bytes: a cumulative written-byte budget. Charged on every PutBlob /
//     PutBlobs / Send; never refunded on delete. This is an accounting
//     quota, not a live-usage quota: it avoids a read-before-write on the
//     hot path and matches how providers bill ingress. Exhaustion is
//     permanent until the tenant is re-provisioned.
//   - ops: a token bucket refilled at OpsPerSec with capacity Burst,
//     charging one token per operation and len(batch) per batch.
//     Exhaustion is transient; the QuotaError's RetryAfter says when the
//     bucket will cover the rejected request again.
//
// Both rejections happen before the inner Service is touched, so a tenant
// over budget costs the provider almost nothing.

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// TenantQuota is the budget a tenant is provisioned with. Zero fields mean
// unlimited.
type TenantQuota struct {
	// MaxBytes caps the cumulative bytes written (blob payloads and message
	// bodies). Deletes do not refund the budget; see the package notes on
	// accounting quotas.
	MaxBytes int64
	// OpsPerSec is the sustained operation rate; a batch of N blobs counts
	// as N operations.
	OpsPerSec float64
	// Burst is the token-bucket capacity. Zero defaults to one second of
	// OpsPerSec (minimum 1), allowing short bursts at line rate.
	Burst int
}

// Tenants is a registry of tenant namespaces sharing one inner Service. It
// is safe for concurrent use: Define and View may race with in-flight
// tenant operations. The registry holds only quota state — per-tenant data
// lives in the inner Service under the "t/<tenant>/" prefix.
type Tenants struct {
	inner Service
	now   func() time.Time

	mu      sync.Mutex
	tenants map[string]*tenantState
}

// tenantState is the mutable budget of one tenant.
type tenantState struct {
	name  string
	quota TenantQuota

	mu           sync.Mutex
	bytesWritten int64
	tokens       float64
	last         time.Time
	admitted     int64
	rejected     int64
}

// TenantUsage is a point-in-time snapshot of one tenant's consumption.
type TenantUsage struct {
	// BytesWritten is the cumulative bytes charged against MaxBytes.
	BytesWritten int64
	// Admitted and Rejected count operations (batch items count
	// individually) that passed or failed the quota check.
	Admitted, Rejected int64
}

// NewTenants builds a registry multiplexing inner across tenant namespaces.
func NewTenants(inner Service) *Tenants {
	return &Tenants{
		inner:   inner,
		now:     time.Now,
		tenants: make(map[string]*tenantState),
	}
}

// Define provisions (or re-provisions) a tenant with the given quota.
// Re-defining an existing tenant replaces its quota but keeps its usage
// counters, so operators can raise a budget without resetting accounting.
// Tenant names must not contain '/', which delimits the namespace prefix.
func (t *Tenants) Define(name string, quota TenantQuota) error {
	if name == "" || strings.Contains(name, "/") {
		return fmt.Errorf("cloud: invalid tenant name %q", name)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if st, ok := t.tenants[name]; ok {
		st.mu.Lock()
		st.quota = quota
		st.mu.Unlock()
		return nil
	}
	t.tenants[name] = &tenantState{name: name, quota: quota}
	return nil
}

// View returns the tenant's namespaced Service. The view implements
// BatchService and ConditionalBatchService and is safe for concurrent use;
// any number of connections may share one view.
func (t *Tenants) View(name string) (*TenantView, error) {
	t.mu.Lock()
	st, ok := t.tenants[name]
	t.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("cloud: unknown tenant %q", name)
	}
	return &TenantView{reg: t, st: st}, nil
}

// Names returns the defined tenant names, sorted.
func (t *Tenants) Names() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	names := make([]string, 0, len(t.tenants))
	for name := range t.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Usage returns the tenant's consumption snapshot; ok is false for unknown
// tenants.
func (t *Tenants) Usage(name string) (TenantUsage, bool) {
	t.mu.Lock()
	st, ok := t.tenants[name]
	t.mu.Unlock()
	if !ok {
		return TenantUsage{}, false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return TenantUsage{
		BytesWritten: st.bytesWritten,
		Admitted:     st.admitted,
		Rejected:     st.rejected,
	}, true
}

// admit charges ops tokens and bytes against the budget atomically: either
// both are charged or neither. now is injected for tests.
func (st *tenantState) admit(ops int, bytes int64, now time.Time) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	q := st.quota
	if q.MaxBytes > 0 && st.bytesWritten+bytes > q.MaxBytes {
		st.rejected += int64(ops)
		return &QuotaError{Tenant: st.name, Resource: "bytes"}
	}
	if q.OpsPerSec > 0 {
		burst := q.Burst
		if burst <= 0 {
			burst = int(q.OpsPerSec)
			if burst < 1 {
				burst = 1
			}
		}
		if st.last.IsZero() {
			st.last = now
			st.tokens = float64(burst)
		}
		if elapsed := now.Sub(st.last).Seconds(); elapsed > 0 {
			st.tokens = min(float64(burst), st.tokens+elapsed*q.OpsPerSec)
			st.last = now
		}
		if st.tokens < float64(ops) {
			st.rejected += int64(ops)
			wait := (float64(ops) - st.tokens) / q.OpsPerSec
			return &QuotaError{
				Tenant:     st.name,
				Resource:   "ops",
				RetryAfter: time.Duration(wait * float64(time.Second)),
			}
		}
		st.tokens -= float64(ops)
	}
	st.bytesWritten += bytes
	st.admitted += int64(ops)
	return nil
}

// TenantView is one tenant's window onto the shared provider: a Service
// whose names live under "t/<tenant>/" and whose writes are charged against
// the tenant's quota. Views are stateless handles over the registry's
// shared tenant record — concurrent use, including across connections, is
// safe, and quota accounting stays coherent because it lives in the record,
// not the view.
type TenantView struct {
	reg *Tenants
	st  *tenantState
}

// Tenant returns the tenant name the view is bound to.
func (v *TenantView) Tenant() string { return v.st.name }

func (v *TenantView) prefix() string { return "t/" + v.st.name + "/" }

// PutBlob implements Service, charging 1 op and len(data) bytes.
func (v *TenantView) PutBlob(name string, data []byte) (int, error) {
	if err := v.st.admit(1, int64(len(data)), v.reg.now()); err != nil {
		return 0, err
	}
	return v.reg.inner.PutBlob(v.prefix()+name, data)
}

// GetBlob implements Service; reads charge 1 op and no bytes.
func (v *TenantView) GetBlob(name string) (Blob, error) {
	if err := v.st.admit(1, 0, v.reg.now()); err != nil {
		return Blob{}, err
	}
	b, err := v.reg.inner.GetBlob(v.prefix() + name)
	if err != nil {
		return Blob{}, err
	}
	b.Name = strings.TrimPrefix(b.Name, v.prefix())
	return b, nil
}

// DeleteBlob implements Service. Deleting does not refund the byte budget.
func (v *TenantView) DeleteBlob(name string) error {
	if err := v.st.admit(1, 0, v.reg.now()); err != nil {
		return err
	}
	return v.reg.inner.DeleteBlob(v.prefix() + name)
}

// ListBlobs implements Service, listing only this tenant's names (returned
// without the namespace prefix).
func (v *TenantView) ListBlobs(prefix string) ([]string, error) {
	if err := v.st.admit(1, 0, v.reg.now()); err != nil {
		return nil, err
	}
	names, err := v.reg.inner.ListBlobs(v.prefix() + prefix)
	if err != nil {
		return nil, err
	}
	for i := range names {
		names[i] = strings.TrimPrefix(names[i], v.prefix())
	}
	return names, nil
}

// Send implements Service, delivering to the recipient's mailbox inside the
// tenant namespace and charging len(body) bytes.
func (v *TenantView) Send(msg Message) error {
	if err := v.st.admit(1, int64(len(msg.Body)), v.reg.now()); err != nil {
		return err
	}
	msg.To = v.prefix() + msg.To
	return v.reg.inner.Send(msg)
}

// Receive implements Service, popping from the tenant's namespaced mailbox.
func (v *TenantView) Receive(recipient string, max int) ([]Message, error) {
	if err := v.st.admit(1, 0, v.reg.now()); err != nil {
		return nil, err
	}
	msgs, err := v.reg.inner.Receive(v.prefix()+recipient, max)
	if err != nil {
		return nil, err
	}
	for i := range msgs {
		msgs[i].To = strings.TrimPrefix(msgs[i].To, v.prefix())
	}
	return msgs, nil
}

// Stats implements Service. Counters are provider-global, not per-tenant —
// use Tenants.Usage for per-tenant accounting.
func (v *TenantView) Stats() Stats { return v.reg.inner.Stats() }

// PutBlobs implements BatchService: the batch charges len(puts) ops plus
// the summed payload bytes up front, then rides the inner batch fast path.
func (v *TenantView) PutBlobs(puts []BlobPut) ([]int, error) {
	var bytes int64
	for _, p := range puts {
		bytes += int64(len(p.Data))
	}
	if err := v.st.admit(max(1, len(puts)), bytes, v.reg.now()); err != nil {
		return nil, err
	}
	renamed := make([]BlobPut, len(puts))
	for i, p := range puts {
		renamed[i] = BlobPut{Name: v.prefix() + p.Name, Data: p.Data}
	}
	return PutBlobsVia(v.reg.inner, renamed)
}

// GetBlobs implements BatchService, charging len(names) ops.
func (v *TenantView) GetBlobs(names []string) ([]Blob, error) {
	if err := v.st.admit(max(1, len(names)), 0, v.reg.now()); err != nil {
		return nil, err
	}
	renamed := make([]string, len(names))
	for i, name := range names {
		renamed[i] = v.prefix() + name
	}
	blobs, err := GetBlobsVia(v.reg.inner, renamed)
	if err != nil {
		return nil, err
	}
	for i := range blobs {
		blobs[i].Name = strings.TrimPrefix(blobs[i].Name, v.prefix())
	}
	return blobs, nil
}

// GetBlobsIf implements ConditionalBatchService, charging len(gets) ops.
func (v *TenantView) GetBlobsIf(gets []CondGet) ([]Blob, error) {
	if err := v.st.admit(max(1, len(gets)), 0, v.reg.now()); err != nil {
		return nil, err
	}
	renamed := make([]CondGet, len(gets))
	for i, g := range gets {
		renamed[i] = CondGet{Name: v.prefix() + g.Name, IfNewer: g.IfNewer}
	}
	blobs, err := GetBlobsIfVia(v.reg.inner, renamed)
	if err != nil {
		return nil, err
	}
	for i := range blobs {
		blobs[i].Name = strings.TrimPrefix(blobs[i].Name, v.prefix())
	}
	return blobs, nil
}
