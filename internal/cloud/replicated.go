package cloud

// This file implements cloud.Replicated, the client-side replication layer
// that turns N independent providers — any mix of Memory, Durable and remote
// TCP clients — into one Service that keeps answering while members fail.
// E13 proved one durable provider recovers fast; Replicated is the next step
// of the availability story: the fleet never stops, because no single
// provider is load-bearing.
//
// Protocol (DESIGN.md §9):
//
//   - Quorum writes: every write fans out to all live members and is
//     acknowledged once W members accepted it. The returned version is the
//     maximum version the acknowledging members assigned.
//   - Quorum reads: a read needs R error-free member responses ("blob not
//     found" counts as a response at version 0) — fewer than R fails with
//     ErrQuorumFailed; the winner is the response with the maximum version.
//     With W+R > N every acknowledged write intersects every quorum read, so
//     acknowledged data is always readable.
//   - Read repair: members that answered a read with a stale version (or
//     conflicting bytes at the winning version) are rewritten with the
//     winning blob until their version catches up to the winner's.
//   - Hinted handoff: a write that a member misses — it is down, it holds
//     queued hints, or its call failed — is queued as a hint in a bounded
//     per-member FIFO and replayed in order when the member recovers. A
//     member with a non-empty hint queue takes no direct calls: every write
//     it would have received is appended behind the writes it missed, so
//     replay preserves per-name order and an old put or delete can never be
//     replayed over newer directly-written data. Hints are queued only after
//     an operation passes its quorum check — an operation that fails fast
//     queues nothing, so a write the caller was told failed cannot
//     materialize later out of a hint queue. The queue drops its oldest hint
//     on overflow (counted); anti-entropy repairs whatever overflow loses.
//   - Anti-entropy: a periodic pass drains hint queues, then walks the union
//     of blob names grouped by the same package-level FNV sharding that
//     stripes Memory and Durable (shardIndexOf / groupKeysByShard), compares
//     members shard by shard, and rewrites stale copies.
//
// Membership and health: a member that fails FailThreshold consecutive calls
// is marked down; while down it receives hints instead of calls. Every member
// call is bounded by CallTimeout, so a member that hangs rather than errors
// costs any one operation at most one timeout before it is treated as failed
// (and, failing repeatedly, marked down). Every ProbeEvery-th operation
// retries a down or hint-holding member by draining its hints; drains are
// serialized per member, and the member is marked up only once its hint queue
// is empty, so recovered members observe the missed writes in their original
// order before new writes reach them directly.
//
// Mailboxes replicate too: Send assigns a layer-wide monotonic message ID and
// timestamp, then fans out under the same W-of-N rule; Receive drains every
// live member, deduplicates by message ID (popped messages are remembered in
// a bounded window), orders by (Sent, ID) and serves from a local pending
// queue — FIFO order survives any tolerated minority of member failures.

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Replication errors.
var (
	// ErrQuorumFailed means fewer than W members acknowledged a write (or
	// fewer than R answered a read). The operation may have partially applied
	// on some members; anti-entropy reconciles them.
	ErrQuorumFailed = errors.New("cloud: quorum not reached")
)

// ReplicatedOptions configure the replication layer. The zero value derives
// majority quorums from the member count.
type ReplicatedOptions struct {
	// WriteQuorum (W) is the number of member acknowledgements required
	// before a write succeeds. Defaults to a majority (N/2+1). Must be in
	// [1, N].
	WriteQuorum int
	// ReadQuorum (R) is the number of member responses required before a
	// read succeeds. Defaults to a majority (N/2+1). Must be in [1, N].
	// Choose W+R > N for read-your-writes.
	ReadQuorum int
	// HintCapacity bounds each member's hinted-handoff queue. On overflow
	// the oldest hint is dropped (and counted); anti-entropy repairs the
	// loss. Defaults to 1024.
	HintCapacity int
	// FailThreshold is the number of consecutive call failures after which a
	// member is marked down and bypassed (writes turn into hints). Defaults
	// to 3.
	FailThreshold int
	// ProbeEvery is the number of layer operations between recovery probes
	// of a down member. Defaults to 16.
	ProbeEvery int
	// SyncShards is the FNV shard count of the anti-entropy pass. Defaults
	// to 16.
	SyncShards int
	// CallTimeout bounds every call the layer makes to a member (fan-outs,
	// hint replay, anti-entropy scans). A member that has not answered by the
	// deadline counts as failed for that operation: the operation proceeds
	// with the answers it has, and the member earns a failure mark plus — on
	// write paths — a hint. One hung provider therefore stalls an operation
	// by at most CallTimeout instead of blocking it forever. The abandoned
	// call keeps running in its goroutine (Service has no cancellation) and
	// may still apply later; DESIGN.md §9.5 lists the consequences. Defaults
	// to 5s; negative disables the bound.
	CallTimeout time.Duration
	// Verifier, when set, authenticates blob contents during the quarantine
	// re-admission probe: a quarantined member is only re-admitted after its
	// copies byte-match the trusted fleet state AND every checked winner blob
	// passes this hook. The replication layer holds no keys, so the trusted
	// side installs a closure (typically over sync.Replica.CheckShardBlob)
	// that verifies the sealed payload's signed freshness evidence. A nil
	// Verifier re-admits on byte-equality alone.
	Verifier func(name string, data []byte) error
}

func (o ReplicatedOptions) withDefaults(n int) ReplicatedOptions {
	if o.WriteQuorum == 0 {
		o.WriteQuorum = n/2 + 1
	}
	if o.ReadQuorum == 0 {
		o.ReadQuorum = n/2 + 1
	}
	if o.HintCapacity == 0 {
		o.HintCapacity = 1024
	}
	if o.FailThreshold == 0 {
		o.FailThreshold = 3
	}
	if o.ProbeEvery == 0 {
		o.ProbeEvery = 16
	}
	if o.SyncShards == 0 {
		o.SyncShards = 16
	}
	if o.CallTimeout == 0 {
		o.CallTimeout = 5 * time.Second
	}
	if o.CallTimeout < 0 {
		o.CallTimeout = 0 // explicit "no bound"
	}
	return o
}

// hintKind is the operation class of one queued hint.
type hintKind int

const (
	hintPut hintKind = iota
	hintDelete
	hintSend
)

// hint is one write a member missed, queued for replay on its recovery.
type hint struct {
	kind hintKind
	name string
	data []byte // private copy: the caller's buffer is recycled after the put
	msg  Message
}

// member is one replicated backend with its health state and hint queue.
type member struct {
	// svcMu guards svc so SwapMember can replace a backend (e.g. a durable
	// member reopened after a process restart) without racing in-flight ops.
	svcMu sync.RWMutex
	svc   Service

	// mu guards the health state and the hint queue together: a member is
	// marked up only under an empty queue, and a hint is enqueued only under
	// a re-check of that state, so drained hints and new direct writes can
	// never reorder.
	mu          sync.Mutex
	down        bool
	draining    bool // a drain is replaying the queue; at most one at a time
	consecFails int
	hints       []hint
	dropped     int64 // hints lost to queue overflow
	drained     int64 // hints successfully replayed
	// quarantined marks a member convicted of Byzantine behaviour (rollback,
	// fork, dropped acknowledged writes — see Quarantine). It is orthogonal
	// to down: a quarantined member is excluded from read quorums and its
	// write acknowledgements stop counting toward W, but writes still fan to
	// it (or queue as hints) so an honest-again member converges. Only the
	// anti-entropy re-admission probe clears the flag.
	quarantined bool
}

// ReplicationStats counts the layer's own activity (the logical operations a
// caller performed, plus the repair machinery's work). Member services keep
// their own Stats.
type ReplicationStats struct {
	// Service counters, mirroring Stats semantics: per blob for puts/gets,
	// per call for lists/receives.
	Puts, Gets, Deletes, Lists int64
	Sends, Receives            int64

	QuorumFailures int64 // operations that could not reach quorum
	HintsQueued    int64 // writes queued for an unreachable member
	HintsDropped   int64 // hints lost to queue overflow (all members)
	HintsDrained   int64 // hints replayed to recovered members
	ReadRepairs    int64 // stale member copies rewritten during reads
	MembersDown    int64 // members currently marked down
	// MembersQuarantined counts members currently excluded for Byzantine
	// behaviour (see Quarantine).
	MembersQuarantined int64
}

// RepairReport summarises one anti-entropy pass.
type RepairReport struct {
	HintsDrained      int   // hints replayed before the scan
	Shards            int   // FNV shard groups scanned
	Names             int   // distinct blob names compared
	StalePuts         int   // stale member copies rewritten
	BytesMoved        int64 // payload bytes rewritten to stale members
	QuarantineRepairs int   // repair puts issued to quarantined members
	Readmitted        int   // quarantined members re-admitted after verifying clean
}

// Replicated stripes the full Service, BatchService and
// ConditionalBatchService contracts over N member backends with quorum
// writes, quorum reads, read repair, hinted handoff and anti-entropy. All
// methods are safe for concurrent use.
type Replicated struct {
	members []*member
	opts    ReplicatedOptions

	ops     atomic.Int64 // operation counter driving recovery probes
	nextMsg atomic.Uint64

	// nameMu stripes serialize write fan-out per blob name, so members see
	// the same apply order for a name while the layer is the only writer.
	nameMu [64]sync.Mutex

	// mailMu stripes serialize mailbox operations per recipient.
	mailMu [64]sync.Mutex

	// boxMu guards the client-side mailbox merge state.
	boxMu      sync.Mutex
	pending    map[string][]Message // popped from members, not yet delivered
	delivered  map[string]struct{}  // recently delivered IDs (dedup window)
	deliverLog []string             // FIFO eviction order for delivered

	cfgMu sync.RWMutex
	now   func() time.Time

	stats struct {
		puts, gets, deletes, lists atomic.Int64
		sends, receives            atomic.Int64
		quorumFailures             atomic.Int64
		hintsQueued                atomic.Int64
		readRepairs                atomic.Int64
	}

	loopMu   sync.Mutex
	loopStop chan struct{}
	loopDone chan struct{}
}

// deliveredWindow bounds the Receive dedup window. A member lagging by more
// than this many popped messages may re-deliver (at-least-once, never loss).
const deliveredWindow = 8192

// NewReplicated builds a replication layer over the given members.
// Construction fails on an empty member list or a quorum outside [1, N] —
// a W of N+1 can never be satisfied and a W of 0 would acknowledge writes
// nobody stored.
func NewReplicated(members []Service, opts ReplicatedOptions) (*Replicated, error) {
	n := len(members)
	if n == 0 {
		return nil, errors.New("cloud: replicated: no members")
	}
	opts = opts.withDefaults(n)
	if opts.WriteQuorum < 1 || opts.WriteQuorum > n {
		return nil, fmt.Errorf("cloud: replicated: write quorum %d outside [1, %d]", opts.WriteQuorum, n)
	}
	if opts.ReadQuorum < 1 || opts.ReadQuorum > n {
		return nil, fmt.Errorf("cloud: replicated: read quorum %d outside [1, %d]", opts.ReadQuorum, n)
	}
	if opts.HintCapacity < 1 {
		return nil, fmt.Errorf("cloud: replicated: hint capacity %d < 1", opts.HintCapacity)
	}
	r := &Replicated{
		members:   make([]*member, n),
		opts:      opts,
		pending:   make(map[string][]Message),
		delivered: make(map[string]struct{}),
		now:       time.Now,
	}
	for i, svc := range members {
		if svc == nil {
			return nil, fmt.Errorf("cloud: replicated: member %d is nil", i)
		}
		r.members[i] = &member{svc: svc}
	}
	return r, nil
}

// MemberCount returns the number of members.
func (r *Replicated) MemberCount() int { return len(r.members) }

// Quorums returns the configured (W, R).
func (r *Replicated) Quorums() (w, r_ int) { return r.opts.WriteQuorum, r.opts.ReadQuorum }

// Member returns member i's backend service.
func (r *Replicated) Member(i int) Service {
	m := r.members[i]
	m.svcMu.RLock()
	defer m.svcMu.RUnlock()
	return m.svc
}

// SwapMember replaces member i's backend — the recovery path for a member
// whose process restarted (e.g. a Durable reopened from its data directory,
// or a TCP client re-dialed). The member is marked down; the next probe,
// DrainHints or AntiEntropy pass brings it back up to date and back online.
func (r *Replicated) SwapMember(i int, svc Service) {
	m := r.members[i]
	m.svcMu.Lock()
	m.svc = svc
	m.svcMu.Unlock()
	m.mu.Lock()
	m.down = true
	m.consecFails = 0
	m.mu.Unlock()
}

// MemberDown reports whether member i is currently marked down.
func (r *Replicated) MemberDown(i int) bool {
	m := r.members[i]
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.down
}

// Quarantine excludes member i for Byzantine behaviour: a provider caught
// rolling back, forking or dropping acknowledged state by the trusted side's
// audit (e.g. sync.Replica.CheckShardBlob). A quarantined member serves no
// reads and its write acknowledgements stop counting toward the write quorum,
// so poisoned copies cannot shadow honest ones — but writes keep fanning to
// it, so a member that starts behaving again converges instead of drifting
// further. Re-admission is earned, not declared: the next AntiEntropy pass
// repairs the member against the trusted fleet state and clears the flag only
// once every copy byte-matches the winners (and the configured Verifier, if
// any, accepts them).
func (r *Replicated) Quarantine(i int) {
	m := r.members[i]
	m.mu.Lock()
	m.quarantined = true
	m.mu.Unlock()
}

// IsQuarantined reports whether member i is currently quarantined.
func (r *Replicated) IsQuarantined(i int) bool {
	m := r.members[i]
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.quarantined
}

// SetClock overrides the layer clock used to stamp outgoing messages.
func (r *Replicated) SetClock(now func() time.Time) {
	r.cfgMu.Lock()
	r.now = now
	r.cfgMu.Unlock()
}

func (r *Replicated) clock() time.Time {
	r.cfgMu.RLock()
	now := r.now
	r.cfgMu.RUnlock()
	return now()
}

// ReplicationStats returns a snapshot of the layer's counters.
func (r *Replicated) ReplicationStats() ReplicationStats {
	var dropped, drained, down, quarantined int64
	for _, m := range r.members {
		m.mu.Lock()
		dropped += m.dropped
		drained += m.drained
		if m.down {
			down++
		}
		if m.quarantined {
			quarantined++
		}
		m.mu.Unlock()
	}
	return ReplicationStats{
		Puts: r.stats.puts.Load(), Gets: r.stats.gets.Load(),
		Deletes: r.stats.deletes.Load(), Lists: r.stats.lists.Load(),
		Sends: r.stats.sends.Load(), Receives: r.stats.receives.Load(),
		QuorumFailures:     r.stats.quorumFailures.Load(),
		HintsQueued:        r.stats.hintsQueued.Load(),
		HintsDropped:       dropped,
		HintsDrained:       drained,
		ReadRepairs:        r.stats.readRepairs.Load(),
		MembersDown:        down,
		MembersQuarantined: quarantined,
	}
}

// Stats implements Service with the layer's own logical-operation counters;
// per-member counters are available through Member(i).Stats().
func (r *Replicated) Stats() Stats {
	return Stats{
		Puts: r.stats.puts.Load(), Gets: r.stats.gets.Load(),
		Deletes: r.stats.deletes.Load(), Lists: r.stats.lists.Load(),
		Sends: r.stats.sends.Load(), Receives: r.stats.receives.Load(),
	}
}

// --- member health and hinted handoff ---------------------------------------

// markFailure records a failed call; crossing FailThreshold marks the member
// down.
func (r *Replicated) markFailure(m *member) {
	m.mu.Lock()
	m.consecFails++
	if m.consecFails >= r.opts.FailThreshold {
		m.down = true
	}
	m.mu.Unlock()
}

// markSuccess records a successful call.
func (r *Replicated) markSuccess(m *member) {
	m.mu.Lock()
	m.consecFails = 0
	m.mu.Unlock()
}

// enqueueLocked appends h to m's queue, dropping the oldest hint when the
// queue is full. The caller holds m.mu.
func (r *Replicated) enqueueLocked(m *member, h hint) {
	if len(m.hints) >= r.opts.HintCapacity {
		drop := len(m.hints) - r.opts.HintCapacity + 1
		m.hints = append(m.hints[:0], m.hints[drop:]...)
		m.dropped += int64(drop)
	}
	m.hints = append(m.hints, h)
	r.stats.hintsQueued.Add(1)
}

// hintIfPending queues hs for member i only while the member is still
// ineligible for direct calls (down, or holding queued hints). The check and
// the enqueue are one critical section with drainMember's mark-up: either the
// hints land on a queue a drain must empty before the member comes up, or the
// member is already back and the hints are skipped — read repair and
// anti-entropy recover the miss — so a drain can never be raced into
// accepting a hint it would replay out of order.
func (r *Replicated) hintIfPending(i int, hs ...hint) {
	m := r.members[i]
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.down && len(m.hints) == 0 {
		return
	}
	for _, h := range hs {
		r.enqueueLocked(m, h)
	}
}

// hintSkipped queues hs on every member the fan-out skipped (not in live).
// Callers invoke it only after their quorum check passed: an operation that
// fails fast queues nothing.
func (r *Replicated) hintSkipped(live []int, hs ...hint) {
	inLive := make(map[int]bool, len(live))
	for _, i := range live {
		inLive[i] = true
	}
	for i := range r.members {
		if !inLive[i] {
			r.hintIfPending(i, hs...)
		}
	}
}

// hintFailed queues hs after member i failed a direct call it was fanned: the
// member missed this write, and because live() excludes members with queued
// hints it takes no further direct calls until a drain replays the queue —
// replay order stays total even when the member never crosses FailThreshold.
func (r *Replicated) hintFailed(i int, hs ...hint) {
	m := r.members[i]
	m.mu.Lock()
	for _, h := range hs {
		r.enqueueLocked(m, h)
	}
	m.mu.Unlock()
}

// applyHint replays one hint against a member's backend.
func applyHint(svc Service, h hint) error {
	switch h.kind {
	case hintPut:
		_, err := svc.PutBlob(h.name, h.data)
		return err
	case hintDelete:
		return svc.DeleteBlob(h.name)
	case hintSend:
		return svc.Send(h.msg)
	}
	return fmt.Errorf("cloud: replicated: unknown hint kind %d", h.kind)
}

// drainMember replays member i's hint queue in FIFO order. At most one drain
// per member runs at a time (the draining flag): two concurrent drains could
// both replay the head and then both pop, discarding a hint that was never
// applied — with no tombstones, a lost delete hint resurrects a blob. New
// writes keep hinting to the tail while the drain runs, so replay order is
// total; the member is marked up only in the same critical section that
// observes an empty queue. Returns the number of hints replayed and whether
// the member ended the drain marked up (false also when another drain was
// already running).
func (r *Replicated) drainMember(i int) (int, bool) {
	m := r.members[i]
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return 0, false
	}
	m.draining = true
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		m.draining = false
		m.mu.Unlock()
	}()

	svc := r.Member(i)
	replayed := 0
	for {
		m.mu.Lock()
		if len(m.hints) == 0 {
			m.down = false
			m.consecFails = 0
			m.mu.Unlock()
			return replayed, true
		}
		h := m.hints[0]
		m.mu.Unlock()

		// Bounded like every member call: a member that answers neither
		// success nor error must not wedge the probe path. A replay that
		// timed out may still apply later; the head is not popped, so the
		// next drain replays it again — puts and deletes are idempotent to
		// re-apply, and duplicate sends are absorbed by Receive's dedup
		// window.
		if _, err := boundedCall(r.opts.CallTimeout, func() (struct{}, error) {
			return struct{}{}, applyHint(svc, h)
		}); err != nil {
			m.mu.Lock()
			m.down = true
			m.mu.Unlock()
			return replayed, false
		}

		m.mu.Lock()
		// Single drainer (the draining flag), so the head is still h.
		m.hints = m.hints[1:]
		m.drained++
		m.mu.Unlock()
		replayed++
	}
}

// DrainHints replays every member's hint queue (recovered members come back
// up). It returns the total number of hints replayed.
func (r *Replicated) DrainHints() int {
	total := 0
	for i, m := range r.members {
		m.mu.Lock()
		pending := len(m.hints) > 0 || m.down
		m.mu.Unlock()
		if pending {
			n, _ := r.drainMember(i)
			total += n
		}
	}
	return total
}

// maybeProbe retries down or hint-holding members every ProbeEvery-th layer
// operation by attempting a hint drain; a member whose queue drains dry comes
// back up (and back into fan-outs).
func (r *Replicated) maybeProbe() {
	if r.ops.Add(1)%int64(r.opts.ProbeEvery) != 0 {
		return
	}
	for i, m := range r.members {
		m.mu.Lock()
		pending := m.down || len(m.hints) > 0
		m.mu.Unlock()
		if pending {
			r.drainMember(i)
		}
	}
}

// live returns the indices of members eligible for direct calls: not marked
// down and holding no queued hints. A member with a non-empty queue must
// replay it before taking direct calls again — otherwise a later drain would
// reapply an old hint over newer directly-written data — so it keeps taking
// hints until a drain empties the queue.
func (r *Replicated) live() []int {
	idx := make([]int, 0, len(r.members))
	for i, m := range r.members {
		m.mu.Lock()
		ok := !m.down && len(m.hints) == 0
		m.mu.Unlock()
		if ok {
			idx = append(idx, i)
		}
	}
	return idx
}

// readEligible returns the members eligible to answer reads: live and not
// quarantined. A quarantined member's copies are suspect by conviction, so
// they must not reach callers or become repair sources.
func (r *Replicated) readEligible() []int {
	idx := make([]int, 0, len(r.members))
	for i, m := range r.members {
		m.mu.Lock()
		ok := !m.down && len(m.hints) == 0 && !m.quarantined
		m.mu.Unlock()
		if ok {
			idx = append(idx, i)
		}
	}
	return idx
}

// quarantinedSet snapshots which of the given members are quarantined. Write
// paths use it to fan writes to quarantined members (keeping them
// convergeable) while refusing to count their acknowledgements toward the
// write quorum — a convicted member's "stored" means nothing.
func (r *Replicated) quarantinedSet(idxs []int) map[int]bool {
	var set map[int]bool
	for _, i := range idxs {
		m := r.members[i]
		m.mu.Lock()
		q := m.quarantined
		m.mu.Unlock()
		if q {
			if set == nil {
				set = make(map[int]bool)
			}
			set[i] = true
		}
	}
	return set
}

// --- fan-out helper ---------------------------------------------------------

// fanResult is one member's answer to a fanned-out call.
type fanResult struct {
	idx     int
	version int
	blob    Blob
	blobs   []Blob
	vers    []int
	names   []string
	msgs    []Message
	err     error
}

// errCallTimeout marks a member call that outlived CallTimeout. The abandoned
// call keeps running in its goroutine (Service has no cancellation); its
// eventual result is discarded.
var errCallTimeout = errors.New("cloud: replicated: member call timed out")

// boundedCall runs f, waiting at most d for it to return; d <= 0 waits
// forever. On timeout the zero value and errCallTimeout are returned while f
// keeps running detached — callers must not let f write to memory they keep
// reading.
func boundedCall[T any](d time.Duration, f func() (T, error)) (T, error) {
	if d <= 0 {
		return f()
	}
	type result struct {
		v   T
		err error
	}
	ch := make(chan result, 1)
	go func() {
		v, err := f()
		ch <- result{v, err}
	}()
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case res := <-ch:
		return res.v, res.err
	case <-timer.C:
		var zero T
		return zero, errCallTimeout
	}
}

// fanout calls fn concurrently for every listed member — each call bounded by
// CallTimeout — and returns once need members succeeded or every call came
// back: a hung member can stall an operation by at most the timeout, never
// forever. A failed (or timed-out) call records a failure mark and, when
// onFail is non-nil, runs it with the member index before the result is
// delivered — write paths queue their hint there, so the hint is on the queue
// before the operation's stripe lock releases. onDone, when non-nil, runs
// after every (bounded) member call has returned; write paths use it to hold
// their stripe lock for the full fan-out, so repairs never interleave with a
// straggling write.
func (r *Replicated) fanout(idxs []int, need int, fn func(i int, svc Service) fanResult, onFail func(i int), onDone func()) []fanResult {
	ch := make(chan fanResult, len(idxs))
	var wg sync.WaitGroup
	for _, i := range idxs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			svc := r.Member(i)
			res, err := boundedCall(r.opts.CallTimeout, func() (fanResult, error) {
				res := fn(i, svc)
				return res, res.err
			})
			res.idx, res.err = i, err
			if err != nil {
				r.markFailure(r.members[i])
				if onFail != nil {
					onFail(i)
				}
			} else {
				r.markSuccess(r.members[i])
			}
			ch <- res
		}(i)
	}
	if onDone != nil {
		go func() {
			wg.Wait()
			onDone()
		}()
	}
	out := make([]fanResult, 0, len(idxs))
	succ := 0
	for range idxs {
		res := <-ch
		out = append(out, res)
		if res.err == nil {
			succ++
		}
		if succ >= need {
			break
		}
	}
	return out
}

func (r *Replicated) stripe(key string) *sync.Mutex {
	return &r.nameMu[shardIndexOf(key, len(r.nameMu))]
}

func (r *Replicated) mailStripe(key string) *sync.Mutex {
	return &r.mailMu[shardIndexOf(key, len(r.mailMu))]
}

// --- Service: blobs ---------------------------------------------------------

// PutBlob stores data on a write quorum of members and returns the maximum
// version the acknowledging members assigned. Members that are down or whose
// call failed receive a hint. The data is copied before fan-out, so the
// caller may recycle its buffer the moment the call returns even while a
// slow member's write is still in flight.
func (r *Replicated) PutBlob(name string, data []byte) (int, error) {
	r.maybeProbe()
	stored := append([]byte(nil), data...)

	// The stripe stays locked until every member call has returned (not just
	// the quorum this call waits for): a repair that cannot take the stripe
	// knows a write is still propagating and backs off, so a straggler can
	// never race a repair put and inflate versions.
	mu := r.stripe(name)
	mu.Lock()

	live := r.live()
	quar := r.quarantinedSet(live)
	if len(live)-len(quar) < r.opts.WriteQuorum {
		mu.Unlock()
		r.stats.quorumFailures.Add(1)
		return 0, fmt.Errorf("%w: %d of %d trusted members reachable, need %d",
			ErrQuorumFailed, len(live)-len(quar), len(r.members), r.opts.WriteQuorum)
	}
	h := hint{kind: hintPut, name: name, data: stored}
	r.hintSkipped(live, h)
	// need counts quarantined members on top of W: their acks arrive but do
	// not count, so the early exit must wait for W trusted acks even when
	// every quarantined member answers first.
	results := r.fanout(live, r.opts.WriteQuorum+len(quar), func(i int, svc Service) fanResult {
		v, err := svc.PutBlob(name, stored)
		return fanResult{version: v, err: err}
	}, func(i int) { r.hintFailed(i, h) }, mu.Unlock)
	maxV, acks := 0, 0
	for _, res := range results {
		if res.err == nil && !quar[res.idx] {
			acks++
			if res.version > maxV {
				maxV = res.version
			}
		}
	}
	if acks < r.opts.WriteQuorum {
		r.stats.quorumFailures.Add(1)
		return 0, fmt.Errorf("%w: %d of %d write acks", ErrQuorumFailed, acks, r.opts.WriteQuorum)
	}
	r.stats.puts.Add(1)
	return maxV, nil
}

// GetBlob reads from a read quorum of members and returns the
// maximum-version response, repairing stale members on the way out. A
// member's "not found" counts as a response at version 0; the read fails
// with ErrBlobNotFound only when the whole quorum agrees the blob is gone,
// and with ErrQuorumFailed when fewer than R members answered error-free —
// a minority answer must never shadow an acknowledged write.
func (r *Replicated) GetBlob(name string) (Blob, error) {
	r.maybeProbe()
	live := r.readEligible()
	if len(live) < r.opts.ReadQuorum {
		r.stats.quorumFailures.Add(1)
		return Blob{}, fmt.Errorf("%w: %d of %d members readable, need %d",
			ErrQuorumFailed, len(live), len(r.members), r.opts.ReadQuorum)
	}
	results := r.fanout(live, r.opts.ReadQuorum, func(i int, svc Service) fanResult {
		b, err := svc.GetBlob(name)
		if err == ErrBlobNotFound {
			return fanResult{blob: Blob{}}
		}
		return fanResult{blob: b, err: err}
	}, nil, nil)
	winner, responders, ok := mergeBlobResponses(results, r.opts.ReadQuorum)
	if !ok {
		r.stats.quorumFailures.Add(1)
		return Blob{}, fmt.Errorf("%w: %d of %d read responses", ErrQuorumFailed, len(responders), r.opts.ReadQuorum)
	}
	r.stats.gets.Add(1)
	if winner.Version == 0 {
		return Blob{}, ErrBlobNotFound
	}
	r.readRepair(name, winner, responders)
	winner.Name = name
	return winner, nil
}

// blobResponse is one member's (possibly zero) copy of a blob.
type blobResponse struct {
	idx  int
	blob Blob
}

// mergeBlobResponses picks the maximum-version response (ties break toward
// the lowest member index, making conflict resolution deterministic) and
// returns the full responder list for read repair. ok is false when fewer
// than need responses arrived error-free — the read quorum was not met, and
// serving the partial answer could miss an acknowledged write.
func mergeBlobResponses(results []fanResult, need int) (Blob, []blobResponse, bool) {
	var responders []blobResponse
	for _, res := range results {
		if res.err != nil {
			continue
		}
		responders = append(responders, blobResponse{idx: res.idx, blob: res.blob})
	}
	if len(responders) < need {
		return Blob{}, responders, false
	}
	sort.Slice(responders, func(a, b int) bool { return responders[a].idx < responders[b].idx })
	winner := responders[0].blob
	for _, resp := range responders[1:] {
		if resp.blob.Version > winner.Version {
			winner = resp.blob
		}
	}
	return winner, responders, true
}

// readRepair rewrites the winning blob to every responder whose snapshot was
// stale: an older version, or different bytes at the winning version (a
// conflict, resolved deterministically toward the merge winner).
func (r *Replicated) readRepair(name string, winner Blob, responders []blobResponse) {
	targets := make([]int, 0, len(responders))
	for _, resp := range responders {
		stale := resp.blob.Version < winner.Version ||
			(resp.blob.Version == winner.Version && !bytes.Equal(resp.blob.Data, winner.Data))
		if stale {
			targets = append(targets, resp.idx)
		}
	}
	r.stats.readRepairs.Add(int64(r.repairName(name, winner, targets)))
}

// repairName lifts the listed members to the winning blob. It only acts when
// it can take the name's stripe without waiting: write fan-outs hold the
// stripe until every member call returns, so owning it proves no write is in
// flight — and the member state re-read under the lock is current, never a
// stale snapshot a straggler already advanced past. When the stripe is busy a
// write is still propagating; repairing then would race it and inflate
// versions, so the repair is skipped and the next read or anti-entropy pass
// retries. Repair puts until the member's version reaches the winner's, so
// converged members agree on versions, not just bytes; a conflicting copy at
// the winning version gets one extra put, making its member the new maximum
// carrying the winning data, and the next pass lifts the rest. Returns the
// number of repair puts issued.
func (r *Replicated) repairName(name string, winner Blob, targets []int) int {
	if winner.Version == 0 || len(targets) == 0 {
		return 0
	}
	mu := r.stripe(name)
	if !mu.TryLock() {
		return 0
	}
	defer mu.Unlock()
	puts := 0
	for _, i := range targets {
		svc := r.Member(i)
		cur, err := boundedCall(r.opts.CallTimeout, func() (Blob, error) {
			return svc.GetBlob(name)
		})
		if err != nil && err != ErrBlobNotFound {
			continue
		}
		stale := cur.Version < winner.Version ||
			(cur.Version == winner.Version && !bytes.Equal(cur.Data, winner.Data))
		if !stale {
			continue
		}
		repairPut := func() (int, error) {
			return boundedCall(r.opts.CallTimeout, func() (int, error) {
				return svc.PutBlob(name, winner.Data)
			})
		}
		for v := cur.Version; v < winner.Version; {
			nv, err := repairPut()
			if err != nil || nv <= v {
				break
			}
			v = nv
			puts++
		}
		if cur.Version == winner.Version {
			if _, err := repairPut(); err == nil {
				puts++
			}
		}
	}
	return puts
}

// DeleteBlob deletes on a write quorum of members; members that miss the
// delete receive a hint. Deletion is not tombstoned: a member that misses
// both the delete and its hint can resurrect the blob through anti-entropy
// (the failure matrix in DESIGN.md §9 spells this out).
func (r *Replicated) DeleteBlob(name string) error {
	r.maybeProbe()
	mu := r.stripe(name)
	mu.Lock()

	live := r.live()
	quar := r.quarantinedSet(live)
	if len(live)-len(quar) < r.opts.WriteQuorum {
		mu.Unlock()
		r.stats.quorumFailures.Add(1)
		return fmt.Errorf("%w: %d of %d trusted members reachable, need %d",
			ErrQuorumFailed, len(live)-len(quar), len(r.members), r.opts.WriteQuorum)
	}
	h := hint{kind: hintDelete, name: name}
	r.hintSkipped(live, h)
	// Deletes wait for every live member, not just W: with no tombstones, a
	// straggling member could otherwise serve (or resurrect via repair) the
	// blob to a read that follows the acknowledged delete. Each member call
	// is bounded by CallTimeout, so a member that hangs rather than errors
	// delays the delete by at most the timeout and then gets a hint.
	results := r.fanout(live, len(live), func(i int, svc Service) fanResult {
		return fanResult{err: svc.DeleteBlob(name)}
	}, func(i int) { r.hintFailed(i, h) }, mu.Unlock)
	acks := 0
	for _, res := range results {
		if res.err == nil && !quar[res.idx] {
			acks++
		}
	}
	if acks < r.opts.WriteQuorum {
		r.stats.quorumFailures.Add(1)
		return fmt.Errorf("%w: %d of %d delete acks", ErrQuorumFailed, acks, r.opts.WriteQuorum)
	}
	r.stats.deletes.Add(1)
	return nil
}

// ListBlobs returns the union of the names a read quorum of members store.
func (r *Replicated) ListBlobs(prefix string) ([]string, error) {
	r.maybeProbe()
	live := r.readEligible()
	if len(live) < r.opts.ReadQuorum {
		r.stats.quorumFailures.Add(1)
		return nil, fmt.Errorf("%w: %d of %d members readable, need %d",
			ErrQuorumFailed, len(live), len(r.members), r.opts.ReadQuorum)
	}
	results := r.fanout(live, r.opts.ReadQuorum, func(i int, svc Service) fanResult {
		names, err := svc.ListBlobs(prefix)
		return fanResult{names: names, err: err}
	}, nil, nil)
	seen := make(map[string]bool)
	succ := 0
	for _, res := range results {
		if res.err != nil {
			continue
		}
		succ++
		for _, n := range res.names {
			seen[n] = true
		}
	}
	if succ < r.opts.ReadQuorum {
		r.stats.quorumFailures.Add(1)
		return nil, fmt.Errorf("%w: %d of %d list responses", ErrQuorumFailed, succ, r.opts.ReadQuorum)
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	r.stats.lists.Add(1)
	return names, nil
}

// --- Service: mailboxes -----------------------------------------------------

// Send replicates the message to a write quorum of the members' mailboxes.
// The layer assigns the message ID (when empty) and timestamp before fan-out,
// so every member stores an identical message and Receive can deduplicate.
func (r *Replicated) Send(msg Message) error {
	r.maybeProbe()
	seq := r.nextMsg.Add(1)
	if msg.ID == "" {
		msg.ID = fmt.Sprintf("rmsg-%016x", seq)
	}
	if msg.Sent.IsZero() {
		msg.Sent = r.clock()
	}
	msg.Body = append([]byte(nil), msg.Body...)

	mu := r.mailStripe(msg.To)
	mu.Lock()
	defer mu.Unlock()

	live := r.live()
	quar := r.quarantinedSet(live)
	if len(live)-len(quar) < r.opts.WriteQuorum {
		r.stats.quorumFailures.Add(1)
		return fmt.Errorf("%w: %d of %d trusted members reachable, need %d",
			ErrQuorumFailed, len(live)-len(quar), len(r.members), r.opts.WriteQuorum)
	}
	h := hint{kind: hintSend, msg: msg}
	r.hintSkipped(live, h)
	results := r.fanout(live, r.opts.WriteQuorum+len(quar), func(i int, svc Service) fanResult {
		return fanResult{err: svc.Send(msg)}
	}, func(i int) { r.hintFailed(i, h) }, nil)
	acks := 0
	for _, res := range results {
		if res.err == nil && !quar[res.idx] {
			acks++
		}
	}
	if acks < r.opts.WriteQuorum {
		r.stats.quorumFailures.Add(1)
		return fmt.Errorf("%w: %d of %d send acks", ErrQuorumFailed, acks, r.opts.WriteQuorum)
	}
	r.stats.sends.Add(1)
	return nil
}

// Receive pops up to max pending messages for the recipient in FIFO order.
// Every live member's mailbox is drained; messages are deduplicated by ID
// against a bounded window of already-delivered messages, ordered by
// (Sent, ID) — both assigned by Send before fan-out — and served from a
// local pending queue, so a bounded Receive never loses the messages it
// popped but did not return. At least one member must respond.
func (r *Replicated) Receive(recipient string, max int) ([]Message, error) {
	r.maybeProbe()
	mu := r.mailStripe(recipient)
	mu.Lock()
	defer mu.Unlock()

	live := r.readEligible()
	if len(live) == 0 {
		r.stats.quorumFailures.Add(1)
		return nil, ErrUnavailable
	}
	results := r.fanout(live, len(live), func(i int, svc Service) fanResult {
		msgs, err := svc.Receive(recipient, 0)
		return fanResult{err: err, msgs: msgs}
	}, nil, nil)
	succ := 0
	var fresh []Message
	r.boxMu.Lock()
	inPending := make(map[string]bool)
	for _, m := range r.pending[recipient] {
		inPending[m.ID] = true
	}
	for _, res := range results {
		if res.err != nil {
			continue
		}
		succ++
		for _, m := range res.msgs {
			if _, dup := r.delivered[m.ID]; dup || inPending[m.ID] {
				continue
			}
			inPending[m.ID] = true
			fresh = append(fresh, m)
			r.rememberDelivered(m.ID)
		}
	}
	if succ == 0 {
		r.boxMu.Unlock()
		r.stats.quorumFailures.Add(1)
		return nil, ErrUnavailable
	}
	box := append(r.pending[recipient], fresh...)
	sort.SliceStable(box, func(a, b int) bool {
		if !box[a].Sent.Equal(box[b].Sent) {
			return box[a].Sent.Before(box[b].Sent)
		}
		return box[a].ID < box[b].ID
	})
	if max <= 0 || max > len(box) {
		max = len(box)
	}
	out := make([]Message, max)
	copy(out, box[:max])
	rest := box[max:]
	if len(rest) == 0 {
		delete(r.pending, recipient)
	} else {
		r.pending[recipient] = append([]Message(nil), rest...)
	}
	r.boxMu.Unlock()
	r.stats.receives.Add(1)
	if len(out) == 0 {
		return nil, nil
	}
	return out, nil
}

// rememberDelivered records a popped message ID in the bounded dedup window.
// Caller holds boxMu.
func (r *Replicated) rememberDelivered(id string) {
	r.delivered[id] = struct{}{}
	r.deliverLog = append(r.deliverLog, id)
	for len(r.deliverLog) > deliveredWindow {
		delete(r.delivered, r.deliverLog[0])
		r.deliverLog = r.deliverLog[1:]
	}
}

// --- BatchService -----------------------------------------------------------

// fanBatch fans a whole batch to each live member: one member call per
// member, W acks required, hints per element for the members that missed it.
func (r *Replicated) lockStripes(keys []string) func() {
	idx := make([]int, 0, len(keys))
	seen := make(map[int]bool)
	for _, k := range keys {
		i := shardIndexOf(k, len(r.nameMu))
		if !seen[i] {
			seen[i] = true
			idx = append(idx, i)
		}
	}
	sort.Ints(idx)
	for _, i := range idx {
		r.nameMu[i].Lock()
	}
	return func() {
		for j := len(idx) - 1; j >= 0; j-- {
			r.nameMu[idx[j]].Unlock()
		}
	}
}

// PutBlobs stores the whole batch on a write quorum of members — each member
// sees the batch as one call, so a durable member still pays one WAL record
// per shard it touches — and returns the element-wise maximum versions the
// acknowledging members assigned.
func (r *Replicated) PutBlobs(puts []BlobPut) ([]int, error) {
	r.maybeProbe()
	if len(puts) == 0 {
		return nil, nil
	}
	// Private copies: members and hint queues may outlive the caller's
	// buffers (see the PutBlob contract in cloud.go).
	copied := make([]BlobPut, len(puts))
	for i, p := range puts {
		copied[i] = BlobPut{Name: p.Name, Data: append([]byte(nil), p.Data...)}
	}
	names := make([]string, len(copied))
	for i, p := range copied {
		names[i] = p.Name
	}
	// As in PutBlob, the stripes stay locked until every member call has
	// returned, so repairs cannot interleave with a straggling batch write.
	unlock := r.lockStripes(names)

	live := r.live()
	quar := r.quarantinedSet(live)
	if len(live)-len(quar) < r.opts.WriteQuorum {
		unlock()
		r.stats.quorumFailures.Add(1)
		return nil, fmt.Errorf("%w: %d of %d trusted members reachable, need %d",
			ErrQuorumFailed, len(live)-len(quar), len(r.members), r.opts.WriteQuorum)
	}
	hs := make([]hint, len(copied))
	for i, p := range copied {
		hs[i] = hint{kind: hintPut, name: p.Name, data: p.Data}
	}
	r.hintSkipped(live, hs...)
	results := r.fanout(live, r.opts.WriteQuorum+len(quar), func(i int, svc Service) fanResult {
		vers, err := PutBlobsVia(svc, copied)
		return fanResult{vers: vers, err: err}
	}, func(i int) { r.hintFailed(i, hs...) }, unlock)
	versions := make([]int, len(copied))
	acks := 0
	for _, res := range results {
		if res.err != nil || len(res.vers) != len(copied) || quar[res.idx] {
			continue
		}
		acks++
		for i, v := range res.vers {
			if v > versions[i] {
				versions[i] = v
			}
		}
	}
	if acks < r.opts.WriteQuorum {
		r.stats.quorumFailures.Add(1)
		return nil, fmt.Errorf("%w: %d of %d batch-put acks", ErrQuorumFailed, acks, r.opts.WriteQuorum)
	}
	r.stats.puts.Add(int64(len(copied)))
	return versions, nil
}

// GetBlobs reads the whole batch from a read quorum of members and merges
// element-wise by maximum version, repairing stale members on the way out.
// Missing names yield a zero Blob at their position.
func (r *Replicated) GetBlobs(names []string) ([]Blob, error) {
	r.maybeProbe()
	if len(names) == 0 {
		return nil, nil
	}
	live := r.readEligible()
	if len(live) < r.opts.ReadQuorum {
		r.stats.quorumFailures.Add(1)
		return nil, fmt.Errorf("%w: %d of %d members readable, need %d",
			ErrQuorumFailed, len(live), len(r.members), r.opts.ReadQuorum)
	}
	results := r.fanout(live, r.opts.ReadQuorum, func(i int, svc Service) fanResult {
		blobs, err := GetBlobsVia(svc, names)
		if err == nil && len(blobs) != len(names) {
			err = fmt.Errorf("cloud: replicated: member %d returned %d blobs for %d names", i, len(blobs), len(names))
		}
		return fanResult{blobs: blobs, err: err}
	}, nil, nil)
	merged, err := r.mergeBatch(names, results)
	if err != nil {
		return nil, err
	}
	r.stats.gets.Add(int64(len(names)))
	return merged, nil
}

// mergeBatch merges per-member batch reads element-wise by maximum version
// and repairs stale members.
func (r *Replicated) mergeBatch(names []string, results []fanResult) ([]Blob, error) {
	var ok []fanResult
	for _, res := range results {
		if res.err == nil {
			ok = append(ok, res)
		}
	}
	if len(ok) < r.opts.ReadQuorum {
		r.stats.quorumFailures.Add(1)
		return nil, fmt.Errorf("%w: %d of %d batch-read responses", ErrQuorumFailed, len(ok), r.opts.ReadQuorum)
	}
	sort.Slice(ok, func(a, b int) bool { return ok[a].idx < ok[b].idx })
	merged := make([]Blob, len(names))
	for pos, name := range names {
		responders := make([]blobResponse, 0, len(ok))
		for _, res := range ok {
			responders = append(responders, blobResponse{idx: res.idx, blob: res.blobs[pos]})
		}
		winner := responders[0].blob
		for _, resp := range responders[1:] {
			if resp.blob.Version > winner.Version {
				winner = resp.blob
			}
		}
		if winner.Version > 0 {
			r.readRepair(name, winner, responders)
			winner.Name = name
		}
		merged[pos] = winner
	}
	return merged, nil
}

// GetBlobsIf implements ConditionalBatchService: the element-wise
// maximum-version merge of a read quorum, shipping data only past the
// caller's version. The conditional path does not read-repair — it is the
// hot path of delta sync — so repairs ride on GetBlob/GetBlobs and the
// anti-entropy pass.
func (r *Replicated) GetBlobsIf(gets []CondGet) ([]Blob, error) {
	r.maybeProbe()
	if len(gets) == 0 {
		return nil, nil
	}
	live := r.readEligible()
	if len(live) < r.opts.ReadQuorum {
		r.stats.quorumFailures.Add(1)
		return nil, fmt.Errorf("%w: %d of %d members readable, need %d",
			ErrQuorumFailed, len(live), len(r.members), r.opts.ReadQuorum)
	}
	results := r.fanout(live, r.opts.ReadQuorum, func(i int, svc Service) fanResult {
		blobs, err := GetBlobsIfVia(svc, gets)
		if err == nil && len(blobs) != len(gets) {
			err = fmt.Errorf("cloud: replicated: member %d returned %d blobs for %d gets", i, len(blobs), len(gets))
		}
		return fanResult{blobs: blobs, err: err}
	}, nil, nil)
	var ok []fanResult
	for _, res := range results {
		if res.err == nil {
			ok = append(ok, res)
		}
	}
	if len(ok) < r.opts.ReadQuorum {
		r.stats.quorumFailures.Add(1)
		return nil, fmt.Errorf("%w: %d of %d conditional-read responses", ErrQuorumFailed, len(ok), r.opts.ReadQuorum)
	}
	sort.Slice(ok, func(a, b int) bool { return ok[a].idx < ok[b].idx })
	merged := make([]Blob, len(gets))
	for pos, g := range gets {
		winner := ok[0].blobs[pos]
		for _, res := range ok[1:] {
			if res.blobs[pos].Version > winner.Version {
				winner = res.blobs[pos]
			}
		}
		if winner.Version > 0 {
			winner.Name = g.Name
			if winner.Version <= g.IfNewer {
				winner.Data = nil
			}
		}
		merged[pos] = winner
	}
	r.stats.gets.Add(int64(len(gets)))
	return merged, nil
}

// --- anti-entropy -----------------------------------------------------------

// AntiEntropy drains every hint queue, then scans the union of blob names —
// grouped by the same package-level FNV sharding that stripes Memory and
// Durable — comparing members shard by shard and rewriting stale copies with
// the winning blob. One pass converges every reachable member to the
// element-wise maximum state (including writes lost to hint-queue overflow).
//
// Quarantined members never contribute names or winning blobs — a convicted
// provider must not be able to launder rolled-back or forked state through
// repair. Instead a dedicated pass (repairQuarantined) overwrites their
// divergent copies with trusted winners and re-admits them once every blob
// byte-matches the trusted view and, when a Verifier is installed, the
// winners themselves pass verification.
func (r *Replicated) AntiEntropy() (RepairReport, error) {
	var report RepairReport
	report.HintsDrained = r.DrainHints()

	live := r.readEligible()
	if len(live) == 0 {
		return report, ErrUnavailable
	}
	seen := make(map[string]bool)
	reachable := make([]int, 0, len(live))
	for _, i := range live {
		svc := r.Member(i)
		names, err := boundedCall(r.opts.CallTimeout, func() ([]string, error) {
			return svc.ListBlobs("")
		})
		if err != nil {
			r.markFailure(r.members[i])
			continue
		}
		r.markSuccess(r.members[i])
		reachable = append(reachable, i)
		for _, n := range names {
			seen[n] = true
		}
	}
	if len(reachable) == 0 {
		return report, ErrUnavailable
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	report.Names = len(names)

	groups := groupKeysByShard(len(names), r.opts.SyncShards, func(i int) string { return names[i] })
	report.Shards = len(groups)
	for _, g := range groups {
		shardNames := make([]string, len(g.indices))
		for j, i := range g.indices {
			shardNames[j] = names[i]
		}
		if err := r.repairShard(shardNames, reachable, &report); err != nil {
			return report, err
		}
	}
	r.repairQuarantined(names, reachable, &report)
	return report, nil
}

// repairQuarantined is the probe-based re-admission path for members under
// Byzantine quarantine. For each live quarantined member with a drained hint
// queue it (1) builds the trusted fleet's winning view of every blob, (2)
// verifies the winners with the installed Verifier (if any), (3) overwrites
// every copy the member holds that differs byte-for-byte from the winner and
// (4) re-fetches everything; only a member whose entire store then matches
// the trusted view is re-admitted to read quorums. A member that still
// diverges — e.g. one whose version counters were inflated by a fork —
// stays quarantined until SwapMember replaces it.
func (r *Replicated) repairQuarantined(names []string, sources []int, report *RepairReport) {
	var quarantined []int
	for i := range r.members {
		m := r.members[i]
		m.mu.Lock()
		candidate := m.quarantined && !m.down && len(m.hints) == 0
		m.mu.Unlock()
		if candidate {
			quarantined = append(quarantined, i)
		}
	}
	if len(quarantined) == 0 || len(sources) == 0 {
		return
	}

	// Trusted winners: element-wise max-version view across the trusted
	// sources (the same rule repairShard uses, restricted to trusted members).
	winners := make([]Blob, len(names))
	for _, si := range sources {
		svc := r.Member(si)
		blobs, err := boundedCall(r.opts.CallTimeout, func() ([]Blob, error) {
			return GetBlobsVia(svc, names)
		})
		if err != nil || len(blobs) != len(names) {
			r.markFailure(r.members[si])
			continue
		}
		for pos, b := range blobs {
			if b.Version > winners[pos].Version {
				winners[pos] = b
			}
		}
	}

	// Re-admission requires the trusted winners themselves to verify: if the
	// catalog audit cannot vouch for the bytes we are about to declare
	// canonical, repairs still run but the quarantine flag stays set.
	verified := true
	if r.opts.Verifier != nil {
		for pos, w := range winners {
			if w.Version == 0 || len(w.Data) == 0 {
				continue
			}
			if err := r.opts.Verifier(names[pos], w.Data); err != nil {
				verified = false
				break
			}
		}
	}

	for _, qi := range quarantined {
		svc := r.Member(qi)
		held, err := boundedCall(r.opts.CallTimeout, func() ([]Blob, error) {
			return GetBlobsVia(svc, names)
		})
		if err != nil || len(held) != len(names) {
			r.markFailure(r.members[qi])
			continue
		}
		for pos, w := range winners {
			if w.Version == 0 {
				continue
			}
			if !bytes.Equal(held[pos].Data, w.Data) {
				puts := r.repairName(names[pos], w, []int{qi})
				report.QuarantineRepairs += puts
				report.BytesMoved += int64(puts * len(w.Data))
			}
		}
		// Probe: re-fetch everything and compare bytes. Any residual
		// divergence (including a version counter the adversary inflated past
		// the trusted winner, which repairName cannot lower) keeps the member
		// out of read quorums.
		after, err := boundedCall(r.opts.CallTimeout, func() ([]Blob, error) {
			return GetBlobsVia(svc, names)
		})
		if err != nil || len(after) != len(names) {
			r.markFailure(r.members[qi])
			continue
		}
		clean := true
		for pos, w := range winners {
			if w.Version == 0 {
				continue
			}
			if !bytes.Equal(after[pos].Data, w.Data) {
				clean = false
				break
			}
		}
		if clean && verified {
			m := r.members[qi]
			m.mu.Lock()
			m.quarantined = false
			m.mu.Unlock()
			report.Readmitted++
		}
	}
}

// repairShard compares one shard's blobs across members and rewrites stale
// copies.
func (r *Replicated) repairShard(names []string, memberIdx []int, report *RepairReport) error {
	type view struct {
		idx   int
		blobs []Blob
	}
	views := make([]view, 0, len(memberIdx))
	for _, i := range memberIdx {
		svc := r.Member(i)
		blobs, err := boundedCall(r.opts.CallTimeout, func() ([]Blob, error) {
			return GetBlobsVia(svc, names)
		})
		if err != nil || len(blobs) != len(names) {
			r.markFailure(r.members[i])
			continue
		}
		views = append(views, view{idx: i, blobs: blobs})
	}
	if len(views) == 0 {
		return ErrUnavailable
	}
	for pos, name := range names {
		winner := views[0].blobs[pos]
		for _, v := range views[1:] {
			if v.blobs[pos].Version > winner.Version {
				winner = v.blobs[pos]
			}
		}
		if winner.Version == 0 {
			continue
		}
		targets := make([]int, 0, len(views))
		for _, v := range views {
			b := v.blobs[pos]
			stale := b.Version < winner.Version ||
				(b.Version == winner.Version && !bytes.Equal(b.Data, winner.Data))
			if stale {
				targets = append(targets, v.idx)
			}
		}
		puts := r.repairName(name, winner, targets)
		report.StalePuts += puts
		report.BytesMoved += int64(puts * len(winner.Data))
	}
	return nil
}

// StartAntiEntropy launches a background loop that runs DrainHints and
// AntiEntropy every interval until Close. It is idempotent: a second call
// replaces the previous loop.
func (r *Replicated) StartAntiEntropy(interval time.Duration) {
	r.loopMu.Lock()
	defer r.loopMu.Unlock()
	r.stopLoopLocked()
	stop := make(chan struct{})
	done := make(chan struct{})
	r.loopStop, r.loopDone = stop, done
	go func() {
		defer close(done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				_, _ = r.AntiEntropy()
			}
		}
	}()
}

// Close stops the background anti-entropy loop (members are not closed; the
// caller owns their lifecycles).
func (r *Replicated) Close() error {
	r.loopMu.Lock()
	defer r.loopMu.Unlock()
	r.stopLoopLocked()
	return nil
}

func (r *Replicated) stopLoopLocked() {
	if r.loopStop != nil {
		close(r.loopStop)
		<-r.loopDone
		r.loopStop, r.loopDone = nil, nil
	}
}

// String names the layer for logs.
func (r *Replicated) String() string {
	return fmt.Sprintf("replicated(%d members, W=%d, R=%d)", len(r.members), r.opts.WriteQuorum, r.opts.ReadQuorum)
}

// interface conformance
var (
	_ Service                 = (*Replicated)(nil)
	_ BatchService            = (*Replicated)(nil)
	_ ConditionalBatchService = (*Replicated)(nil)
	_ fmt.Stringer            = (*Replicated)(nil)
)
