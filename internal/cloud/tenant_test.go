package cloud

import (
	"errors"
	"testing"
	"time"
)

// TestTenantIsolation checks that two tenants sharing one backend cannot
// see each other's blobs or mailboxes, and that names round-trip without
// the namespace prefix leaking.
func TestTenantIsolation(t *testing.T) {
	mem := NewMemory()
	tenants := NewTenants(mem)
	for _, name := range []string{"acme", "globex"} {
		if err := tenants.Define(name, TenantQuota{}); err != nil {
			t.Fatalf("Define(%s): %v", name, err)
		}
	}
	acme, err := tenants.View("acme")
	if err != nil {
		t.Fatalf("View: %v", err)
	}
	globex, err := tenants.View("globex")
	if err != nil {
		t.Fatalf("View: %v", err)
	}

	if _, err := acme.PutBlob("vault/doc", []byte("acme-secret")); err != nil {
		t.Fatalf("put: %v", err)
	}
	if _, err := globex.GetBlob("vault/doc"); err != ErrBlobNotFound {
		t.Fatalf("cross-tenant read: %v, want ErrBlobNotFound", err)
	}
	b, err := acme.GetBlob("vault/doc")
	if err != nil || b.Name != "vault/doc" {
		t.Fatalf("own read: %+v %v (prefix must not leak)", b, err)
	}
	names, err := acme.ListBlobs("")
	if err != nil || len(names) != 1 || names[0] != "vault/doc" {
		t.Fatalf("list: %v %v", names, err)
	}
	if names, _ := globex.ListBlobs(""); len(names) != 0 {
		t.Fatalf("globex sees acme blobs: %v", names)
	}

	if err := acme.Send(Message{From: "a", To: "inbox", Body: []byte("hi")}); err != nil {
		t.Fatalf("send: %v", err)
	}
	if msgs, _ := globex.Receive("inbox", 10); len(msgs) != 0 {
		t.Fatalf("globex drained acme mailbox: %v", msgs)
	}
	msgs, err := acme.Receive("inbox", 10)
	if err != nil || len(msgs) != 1 || msgs[0].To != "inbox" {
		t.Fatalf("receive: %v %v (prefix must not leak)", msgs, err)
	}

	// The backend actually stores everything namespaced.
	raw, _ := mem.ListBlobs("")
	if len(raw) != 1 || raw[0] != "t/acme/vault/doc" {
		t.Fatalf("backend names = %v", raw)
	}
}

// TestTenantUnknownAndInvalid covers registry edge cases: views of unknown
// tenants fail, names containing the namespace delimiter are rejected, and
// re-defining keeps usage counters.
func TestTenantUnknownAndInvalid(t *testing.T) {
	tenants := NewTenants(NewMemory())
	if _, err := tenants.View("nobody"); err == nil {
		t.Fatal("View of unknown tenant succeeded")
	}
	if err := tenants.Define("a/b", TenantQuota{}); err == nil {
		t.Fatal("tenant name with '/' accepted")
	}
	if err := tenants.Define("", TenantQuota{}); err == nil {
		t.Fatal("empty tenant name accepted")
	}
	if err := tenants.Define("acme", TenantQuota{MaxBytes: 10}); err != nil {
		t.Fatalf("Define: %v", err)
	}
	v, _ := tenants.View("acme")
	if _, err := v.PutBlob("d", []byte("12345")); err != nil {
		t.Fatalf("put: %v", err)
	}
	// Re-provision with a larger budget: usage must carry over.
	if err := tenants.Define("acme", TenantQuota{MaxBytes: 100}); err != nil {
		t.Fatalf("redefine: %v", err)
	}
	u, ok := tenants.Usage("acme")
	if !ok || u.BytesWritten != 5 {
		t.Fatalf("usage after redefine = %+v %v", u, ok)
	}
}

// TestTenantByteQuotaExhaustion fills a byte budget and checks the typed
// rejection: writes past the budget fail with a QuotaError naming the
// tenant and the "bytes" resource, before touching the backend; reads and
// deletes still work.
func TestTenantByteQuotaExhaustion(t *testing.T) {
	mem := NewMemory()
	tenants := NewTenants(mem)
	if err := tenants.Define("capped", TenantQuota{MaxBytes: 100}); err != nil {
		t.Fatalf("Define: %v", err)
	}
	v, _ := tenants.View("capped")

	if _, err := v.PutBlob("a", make([]byte, 60)); err != nil {
		t.Fatalf("first put: %v", err)
	}
	putsBefore := mem.Stats().Puts
	_, err := v.PutBlob("b", make([]byte, 60)) // 120 > 100
	var qe *QuotaError
	if !errors.Is(err, ErrQuotaExceeded) || !errors.As(err, &qe) {
		t.Fatalf("over-budget put: %v", err)
	}
	if qe.Tenant != "capped" || qe.Resource != "bytes" {
		t.Fatalf("wrong quota error: %+v", qe)
	}
	if mem.Stats().Puts != putsBefore {
		t.Fatal("rejected put reached the backend")
	}
	// Batches are charged as a unit: a batch that would cross fails whole.
	_, err = v.PutBlobs([]BlobPut{
		{Name: "c", Data: make([]byte, 30)},
		{Name: "d", Data: make([]byte, 30)},
	})
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("over-budget batch: %v", err)
	}
	// Still room for a small write, and reads are free.
	if _, err := v.PutBlob("e", make([]byte, 30)); err != nil {
		t.Fatalf("in-budget put after rejection: %v", err)
	}
	if _, err := v.GetBlob("a"); err != nil {
		t.Fatalf("read under byte exhaustion: %v", err)
	}
	// Deletes never refund: after deleting everything the budget stays spent.
	if err := v.DeleteBlob("a"); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if _, err := v.PutBlob("f", make([]byte, 60)); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("delete refunded the byte budget: %v", err)
	}
	u, _ := tenants.Usage("capped")
	if u.BytesWritten != 90 || u.Rejected == 0 {
		t.Fatalf("usage = %+v", u)
	}
}

// TestTenantOpsQuotaExhaustion drives an ops/sec token bucket dry with a
// fake clock and checks the retry-after hint: rejected at t, admitted again
// once the bucket refills.
func TestTenantOpsQuotaExhaustion(t *testing.T) {
	tenants := NewTenants(NewMemory())
	if err := tenants.Define("ratey", TenantQuota{OpsPerSec: 10, Burst: 5}); err != nil {
		t.Fatalf("Define: %v", err)
	}
	now := time.Unix(1000, 0)
	tenants.now = func() time.Time { return now }
	v, _ := tenants.View("ratey")

	for i := 0; i < 5; i++ { // drain the burst
		if _, err := v.PutBlob("d", []byte("x")); err != nil {
			t.Fatalf("burst put %d: %v", i, err)
		}
	}
	_, err := v.PutBlob("d", []byte("x"))
	var qe *QuotaError
	if !errors.As(err, &qe) || qe.Resource != "ops" {
		t.Fatalf("dry bucket: %v", err)
	}
	if qe.RetryAfter <= 0 || qe.RetryAfter > 200*time.Millisecond {
		t.Fatalf("retry-after = %v, want ~100ms for 1 token at 10/s", qe.RetryAfter)
	}
	// Waiting the hinted time makes the same request admissible.
	now = now.Add(qe.RetryAfter)
	if _, err := v.PutBlob("d", []byte("x")); err != nil {
		t.Fatalf("put after hinted wait: %v", err)
	}
	// A batch larger than the bucket can ever hold is charged as its length
	// and rejected in one piece.
	now = now.Add(10 * time.Second)
	big := make([]BlobPut, 50)
	for i := range big {
		big[i] = BlobPut{Name: "b", Data: []byte("x")}
	}
	if _, err := v.PutBlobs(big); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("oversized batch: %v", err)
	}
}
