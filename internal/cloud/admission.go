package cloud

// This file is the provider's backpressure valve. The durable backend's
// write path funnels every mutation through the commit journal's group
// committer (journal.go): one goroutine batches appends and pays one fsync
// per batch. That design gives group commit its throughput, but it also
// means that past the fsync budget the only thing an unprotected server can
// do is queue — latency grows without bound while every client keeps
// waiting. Admission caps the damage: it tracks the weighted number of
// in-flight mutations and, when a new one would exceed the budget, sheds it
// immediately with a typed OverloadError carrying a retry-after hint. A
// shed request costs microseconds instead of a queue slot, so the requests
// that are admitted keep their latency, and clients get an explicit signal
// to back off instead of a timeout. DESIGN.md §11.4 documents the policy;
// experiment E14 measures it under open-loop overload.

import (
	"sync/atomic"
	"time"
)

// AdmissionOptions tunes the controller. The zero value gets sensible
// defaults from NewAdmission.
type AdmissionOptions struct {
	// MaxInFlight is the weighted budget of concurrently executing
	// mutations: a single put, delete, send or receive weighs 1, a batch
	// weighs its length. Default 1024.
	MaxInFlight int64
	// RetryAfter is the backoff hint attached to shed requests.
	// Default 25ms — about the time a saturated group committer needs to
	// drain one fsync batch.
	RetryAfter time.Duration
}

// Admission wraps a Service with load shedding on the mutation path. Reads
// (GetBlob, ListBlobs, batched and conditional gets, Stats) pass through
// unthrottled — the durable read path runs outside the journal. Admission
// implements BatchService and ConditionalBatchService and is safe for
// concurrent use; wrap it around the backend once and share it between all
// connections. cmd/tccloud wires backend → Admission → Tenants, keeping the
// controller global — overload protection is about the provider's health,
// not any one tenant's budget — while quota checks run first, so an
// over-quota tenant cannot consume admission slots.
type Admission struct {
	inner      Service
	maxInFly   int64
	retryAfter time.Duration

	inFlight atomic.Int64
	admitted atomic.Int64
	shed     atomic.Int64
}

// AdmissionStats is a point-in-time snapshot of the controller.
type AdmissionStats struct {
	// Admitted and Shed count weighted mutation units (batch items count
	// individually) accepted or rejected since construction.
	Admitted, Shed int64
	// InFlight is the weighted mutation load currently executing.
	InFlight int64
}

// NewAdmission wraps inner with an admission controller.
func NewAdmission(inner Service, opts AdmissionOptions) *Admission {
	if opts.MaxInFlight <= 0 {
		opts.MaxInFlight = 1024
	}
	if opts.RetryAfter <= 0 {
		opts.RetryAfter = 25 * time.Millisecond
	}
	return &Admission{inner: inner, maxInFly: opts.MaxInFlight, retryAfter: opts.RetryAfter}
}

// AdmissionStats returns the controller's counters.
func (a *Admission) AdmissionStats() AdmissionStats {
	return AdmissionStats{
		Admitted: a.admitted.Load(),
		Shed:     a.shed.Load(),
		InFlight: a.inFlight.Load(),
	}
}

// acquire reserves weight w of the in-flight budget, or sheds. It never
// blocks: a request that does not fit right now is rejected, not queued.
func (a *Admission) acquire(w int64) error {
	for {
		cur := a.inFlight.Load()
		if cur+w > a.maxInFly {
			a.shed.Add(w)
			return &OverloadError{RetryAfter: a.retryAfter}
		}
		if a.inFlight.CompareAndSwap(cur, cur+w) {
			a.admitted.Add(w)
			return nil
		}
	}
}

func (a *Admission) release(w int64) { a.inFlight.Add(-w) }

// PutBlob implements Service with weight 1.
func (a *Admission) PutBlob(name string, data []byte) (int, error) {
	if err := a.acquire(1); err != nil {
		return 0, err
	}
	defer a.release(1)
	return a.inner.PutBlob(name, data)
}

// GetBlob implements Service; reads are never shed.
func (a *Admission) GetBlob(name string) (Blob, error) { return a.inner.GetBlob(name) }

// DeleteBlob implements Service with weight 1.
func (a *Admission) DeleteBlob(name string) error {
	if err := a.acquire(1); err != nil {
		return err
	}
	defer a.release(1)
	return a.inner.DeleteBlob(name)
}

// ListBlobs implements Service; reads are never shed.
func (a *Admission) ListBlobs(prefix string) ([]string, error) { return a.inner.ListBlobs(prefix) }

// Send implements Service with weight 1 (mailbox appends ride the journal).
func (a *Admission) Send(msg Message) error {
	if err := a.acquire(1); err != nil {
		return err
	}
	defer a.release(1)
	return a.inner.Send(msg)
}

// Receive implements Service with weight 1: popping messages mutates the
// mailbox and commits through the journal like any write.
func (a *Admission) Receive(recipient string, max int) ([]Message, error) {
	if err := a.acquire(1); err != nil {
		return nil, err
	}
	defer a.release(1)
	return a.inner.Receive(recipient, max)
}

// Stats implements Service; pass-through.
func (a *Admission) Stats() Stats { return a.inner.Stats() }

// PutBlobs implements BatchService with weight len(puts), so one huge batch
// cannot slip under a budget that N singles would have tripped.
func (a *Admission) PutBlobs(puts []BlobPut) ([]int, error) {
	w := int64(len(puts))
	if w == 0 {
		w = 1
	}
	if err := a.acquire(w); err != nil {
		return nil, err
	}
	defer a.release(w)
	return PutBlobsVia(a.inner, puts)
}

// GetBlobs implements BatchService; reads are never shed.
func (a *Admission) GetBlobs(names []string) ([]Blob, error) {
	return GetBlobsVia(a.inner, names)
}

// GetBlobsIf implements ConditionalBatchService; reads are never shed.
func (a *Admission) GetBlobsIf(gets []CondGet) ([]Blob, error) {
	return GetBlobsIfVia(a.inner, gets)
}
