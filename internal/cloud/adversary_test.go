package cloud

import (
	"bytes"
	"testing"
)

// adversaryBackends are the honest substrates the wrapper is exercised over:
// the whole point of lifting the adversary out of Memory is that the durable
// store faces the same attacks.
func adversaryBackends(t *testing.T) map[string]func(t *testing.T) Service {
	return map[string]func(t *testing.T) Service{
		"memory": func(t *testing.T) Service { return NewMemory() },
		"durable": func(t *testing.T) Service {
			d, err := OpenDurable(t.TempDir(), DurableOptions{Shards: 2})
			if err != nil {
				t.Fatalf("OpenDurable: %v", err)
			}
			t.Cleanup(func() { _ = d.Close() })
			return d
		},
	}
}

func TestRollbackAdversary(t *testing.T) {
	for name, mk := range adversaryBackends(t) {
		t.Run(name, func(t *testing.T) {
			a := NewAdversary(mk(t), AdversaryConfig{Mode: Rollback, RollbackRate: 1.0, Seed: 7})
			if _, err := a.PutBlob("doc", []byte("version-1")); err != nil {
				t.Fatal(err)
			}
			if _, err := a.PutBlob("doc", []byte("version-2")); err != nil {
				t.Fatal(err)
			}
			b, err := a.GetBlob("doc")
			if err != nil {
				t.Fatal(err)
			}
			// The defining property of the rollback attack: stale bytes under
			// the current version number, so version checks cannot catch it.
			if b.Version != 2 {
				t.Fatalf("rollback must keep the current version, got %d", b.Version)
			}
			if string(b.Data) != "version-1" {
				t.Fatalf("expected rolled-back contents, got %q", b.Data)
			}
			if a.Stats().RolledBackBlobs == 0 {
				t.Fatal("RolledBackBlobs not counted")
			}
			// The conditional read path is attacked identically.
			blobs, err := a.GetBlobsIf([]CondGet{{Name: "doc", IfNewer: 0}})
			if err != nil {
				t.Fatal(err)
			}
			if blobs[0].Version != 2 || string(blobs[0].Data) != "version-1" {
				t.Fatalf("conditional read not rolled back: %+v", blobs[0])
			}
			// A blob with no history cannot be rolled back.
			if _, err := a.PutBlob("fresh", []byte("only")); err != nil {
				t.Fatal(err)
			}
			if b, _ := a.GetBlob("fresh"); string(b.Data) != "only" {
				t.Fatalf("no-history blob mangled: %q", b.Data)
			}
		})
	}
}

func TestForkAdversary(t *testing.T) {
	for name, mk := range adversaryBackends(t) {
		t.Run(name, func(t *testing.T) {
			a := NewAdversary(mk(t), AdversaryConfig{Mode: Honest, Seed: 7})
			if _, err := a.PutBlob("doc", []byte("base")); err != nil {
				t.Fatal(err)
			}
			a.SetMode(Fork)
			va, vb := a.ClientView("alice"), a.ClientView("bob")

			// Alice writes on her branch; Bob still sees the fork point.
			v, err := va.PutBlob("doc", []byte("alice-1"))
			if err != nil || v != 2 {
				t.Fatalf("alice put: v=%d err=%v", v, err)
			}
			if b, _ := vb.GetBlob("doc"); string(b.Data) != "base" || b.Version != 1 {
				t.Fatalf("bob crossed into alice's branch: %+v", b)
			}
			// Bob writes too: both branches now claim version 2 of doc, the
			// equivocation an authenticated catalog convicts.
			if v, _ := vb.PutBlob("doc", []byte("bob-1")); v != 2 {
				t.Fatalf("bob's branch version = %d", v)
			}
			if b, _ := va.GetBlob("doc"); string(b.Data) != "alice-1" {
				t.Fatalf("alice's view polluted: %q", b.Data)
			}
			if b, _ := vb.GetBlob("doc"); string(b.Data) != "bob-1" {
				t.Fatalf("bob's view polluted: %q", b.Data)
			}
			// The backend froze at the fork point.
			if b, _ := a.Inner().GetBlob("doc"); string(b.Data) != "base" {
				t.Fatalf("backend advanced during fork: %q", b.Data)
			}
			// Conditional reads honour the branch's own version numbering.
			blobs, err := vb.GetBlobsIf([]CondGet{{Name: "doc", IfNewer: 2}})
			if err != nil {
				t.Fatal(err)
			}
			if blobs[0].Version != 2 || blobs[0].Data != nil {
				t.Fatalf("unadvanced conditional read shipped data: %+v", blobs[0])
			}
			if a.Stats().ForkedBlobs == 0 {
				t.Fatal("ForkedBlobs not counted")
			}

			// Healing the fork flushes the winner and drops every branch:
			// Bob's acknowledged write vanished from history, which is exactly
			// the view-crossing the sync layer's freshness audit detects.
			if err := a.EndFork("alice"); err != nil {
				t.Fatal(err)
			}
			if a.Mode() != Honest {
				t.Fatalf("mode after EndFork = %v", a.Mode())
			}
			if b, _ := a.Inner().GetBlob("doc"); string(b.Data) != "alice-1" {
				t.Fatalf("winner branch not flushed: %q", b.Data)
			}
			if b, _ := vb.GetBlob("doc"); string(b.Data) != "alice-1" {
				t.Fatalf("bob still sees his dead branch: %q", b.Data)
			}
		})
	}
}

func TestDroppingAdversaryOverDurable(t *testing.T) {
	d, err := OpenDurable(t.TempDir(), DurableOptions{Shards: 2})
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	t.Cleanup(func() { _ = d.Close() })
	a := NewAdversary(d, AdversaryConfig{Mode: Dropping, DropRate: 1.0, Seed: 7})
	v, err := a.PutBlob("doc", []byte("x"))
	if err != nil || v != 1 {
		t.Fatalf("drop adversary should pretend success: v=%d err=%v", v, err)
	}
	if _, err := a.GetBlob("doc"); err != ErrBlobNotFound {
		t.Fatalf("dropped blob should be missing from the durable store: %v", err)
	}
	if a.Stats().DroppedBlobs != 1 {
		t.Fatalf("DroppedBlobs = %d", a.Stats().DroppedBlobs)
	}
}

func TestAdversaryDroppedVersionsStayPlausible(t *testing.T) {
	// The invented acknowledgements continue the real version sequence, so a
	// client comparing acks to later reads sees a regression only because the
	// data is missing — not because the numbers are absurd.
	m := NewMemory()
	if _, err := m.PutBlob("doc", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	a := NewAdversary(m, AdversaryConfig{Mode: Dropping, DropRate: 1.0, Seed: 7})
	if v, _ := a.PutBlob("doc", []byte("v2")); v != 2 {
		t.Fatalf("first dropped ack = %d, want 2", v)
	}
	if v, _ := a.PutBlob("doc", []byte("v3")); v != 3 {
		t.Fatalf("second dropped ack = %d, want 3", v)
	}
	if b, _ := a.GetBlob("doc"); b.Version != 1 || string(b.Data) != "v1" {
		t.Fatalf("backend should still hold v1: %+v", b)
	}
}

func TestAdversaryStatsMergeAndBatches(t *testing.T) {
	a := NewAdversary(NewMemory(), AdversaryConfig{Mode: Honest, Seed: 1})
	puts := []BlobPut{{Name: "a", Data: []byte("1")}, {Name: "b", Data: []byte("2")}}
	versions, err := a.PutBlobs(puts)
	if err != nil || versions[0] != 1 || versions[1] != 1 {
		t.Fatalf("PutBlobs: %v %v", versions, err)
	}
	blobs, err := a.GetBlobs([]string{"a", "b", "missing"})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blobs[0].Data, []byte("1")) || !bytes.Equal(blobs[1].Data, []byte("2")) || blobs[2].Version != 0 {
		t.Fatalf("GetBlobs: %+v", blobs)
	}
	st := a.Stats()
	if st.Puts != 2 || st.BytesStored != 2 {
		t.Fatalf("inner counters not merged: %+v", st)
	}
}
