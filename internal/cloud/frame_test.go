package cloud

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// startFrameServer runs a FrameServer over svc on a loopback socket and
// returns its address.
func startFrameServer(t *testing.T, svc Service, opts FrameServerOptions) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := NewFrameServer(svc, opts)
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { _ = srv.Close() })
	return ln.Addr().String()
}

// blockingService stalls PutBlob until released, so tests can hold requests
// in flight deliberately.
type blockingService struct {
	Service
	release chan struct{}
	entered chan string
}

func (b *blockingService) PutBlob(name string, data []byte) (int, error) {
	b.entered <- name
	<-b.release
	return b.Service.PutBlob(name, data)
}

// TestFrameInterleavedResponses proves the multiplexing claim: a slow
// request issued first must not block a fast request issued second on the
// same connection — the fast response overtakes it.
func TestFrameInterleavedResponses(t *testing.T) {
	blocker := &blockingService{
		Service: NewMemory(),
		release: make(chan struct{}),
		entered: make(chan string, 1),
	}
	addr := startFrameServer(t, blocker, FrameServerOptions{})
	c, err := DialFramed(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	slowDone := make(chan error, 1)
	go func() {
		_, err := c.PutBlob("slow", []byte("x"))
		slowDone <- err
	}()
	<-blocker.entered // the slow put is parked inside the backend

	// A read on the same connection must complete while the put is parked.
	fastDone := make(chan error, 1)
	go func() {
		_, err := c.ListBlobs("")
		fastDone <- err
	}()
	select {
	case err := <-fastDone:
		if err != nil {
			t.Fatalf("fast request failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("fast request blocked behind slow request: no interleaving")
	}
	select {
	case err := <-slowDone:
		t.Fatalf("slow request finished early: %v", err)
	default:
	}
	close(blocker.release)
	if err := <-slowDone; err != nil {
		t.Fatalf("slow request failed: %v", err)
	}
}

// TestFrameConcurrentClients hammers one connection from many goroutines:
// every response must route back to its own caller by request id.
func TestFrameConcurrentClients(t *testing.T) {
	addr := startFrameServer(t, NewMemory(), FrameServerOptions{})
	c, err := DialFramed(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	const goroutines = 16
	const perG = 25
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				name := fmt.Sprintf("g%d/doc-%d", g, i)
				if _, err := c.PutBlob(name, []byte(name)); err != nil {
					t.Errorf("put %s: %v", name, err)
					return
				}
				b, err := c.GetBlob(name)
				if err != nil {
					t.Errorf("get %s: %v", name, err)
					return
				}
				if string(b.Data) != name {
					t.Errorf("get %s returned %q: response routed to wrong caller", name, b.Data)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestFrameTornFrame feeds the server a truncated frame and verifies the
// connection is dropped without wedging the server: a fresh client on a new
// connection still gets served.
func TestFrameTornFrame(t *testing.T) {
	addr := startFrameServer(t, NewMemory(), FrameServerOptions{})

	for _, torn := range [][]byte{
		{0x00, 0x00},             // half a length prefix
		{0x00, 0x00, 0x00, 0x20}, // length promising 32 bytes, none sent
		{0x00, 0x00, 0x00, 0x20, 0, 0, 0, 0, 0, 0, 0, 1, 'h', 'a'}, // id + 2 of 24 payload bytes
		{0x00, 0x00, 0x00, 0x03},                                   // malformed: length below the 8-byte id
	} {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatalf("dial raw: %v", err)
		}
		if _, err := conn.Write(torn); err != nil {
			t.Fatalf("write torn frame: %v", err)
		}
		_ = conn.Close()
	}

	// The server must still be healthy.
	c, err := DialFramed(addr)
	if err != nil {
		t.Fatalf("dial after torn frames: %v", err)
	}
	defer c.Close()
	if _, err := c.PutBlob("alive", []byte("x")); err != nil {
		t.Fatalf("server wedged by torn frames: %v", err)
	}

	// Client side of the same coin: a server that dies mid-frame must fail
	// the in-flight call with a transport error, not hang it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		// Read the request frame, answer with half a response frame, die.
		if _, _, err := readFrame(conn, DefaultMaxFrameBytes); err == nil {
			_, _ = conn.Write([]byte{0x00, 0x00, 0x01, 0x00, 0x00})
		}
		_ = conn.Close()
		_ = ln.Close()
	}()
	tc, err := DialFramed(ln.Addr().String())
	if err != nil {
		t.Fatalf("dial torn server: %v", err)
	}
	defer tc.Close()
	errCh := make(chan error, 1)
	go func() {
		_, err := tc.PutBlob("doomed", []byte("x"))
		errCh <- err
	}()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("call over torn connection reported success")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("call over torn connection hung instead of failing")
	}
}

// TestFrameOversizedRejected sends a frame above MaxFrameBytes and checks
// the typed rejection: the server answers the request id with an explicit
// error frame, then closes the connection.
func TestFrameOversizedRejected(t *testing.T) {
	addr := startFrameServer(t, NewMemory(), FrameServerOptions{MaxFrameBytes: 4096})

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial raw: %v", err)
	}
	defer conn.Close()
	var hdr [frameHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[:4], 8+64<<10) // declares 64 KiB payload
	binary.BigEndian.PutUint64(hdr[4:12], 77)
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatalf("write header: %v", err)
	}

	id, payload, err := readFrame(conn, DefaultMaxFrameBytes)
	if err != nil {
		t.Fatalf("read rejection frame: %v", err)
	}
	if id != 77 {
		t.Fatalf("rejection answered id %d, want 77", id)
	}
	var resp rpcResponse
	if err := json.Unmarshal(payload, &resp); err != nil {
		t.Fatalf("decode rejection: %v", err)
	}
	if resp.Err != errFrameTooLarge {
		t.Fatalf("rejection error = %q, want %q", resp.Err, errFrameTooLarge)
	}

	// The stream cannot be resynchronized past an unread payload, so the
	// server must have closed the connection.
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, _, err := readFrame(conn, DefaultMaxFrameBytes); err == nil {
		t.Fatal("connection still open after oversized frame")
	}

	// And a well-behaved client on a fresh connection is unaffected.
	c, err := DialFramed(addr)
	if err != nil {
		t.Fatalf("dial after oversize: %v", err)
	}
	defer c.Close()
	if _, err := c.PutBlob("ok", make([]byte, 1024)); err != nil {
		t.Fatalf("normal put after oversize: %v", err)
	}
}

// TestFrameTypedErrorsCrossWire proves OverloadError and QuotaError survive
// the framed protocol: errors.Is and errors.As work on the client side and
// the retry-after hint round-trips.
func TestFrameTypedErrorsCrossWire(t *testing.T) {
	// MaxInFlight 0 is invalid, so use a saturating wrapper: a backend that
	// always sheds with a known hint.
	shed := shedService{inner: NewMemory(), retry: 40 * time.Millisecond}
	tenants := NewTenants(shed)
	if err := tenants.Define("tiny", TenantQuota{MaxBytes: 4}); err != nil {
		t.Fatalf("Define: %v", err)
	}
	addr := startFrameServer(t, shed, FrameServerOptions{Tenants: tenants})
	c, err := DialFramed(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	_, err = c.PutBlob("x", []byte("y"))
	var oe *OverloadError
	if !errors.Is(err, ErrOverloaded) || !errors.As(err, &oe) {
		t.Fatalf("overload did not cross the wire typed: %v", err)
	}
	if oe.RetryAfter != 40*time.Millisecond {
		t.Fatalf("retry-after hint = %v, want 40ms", oe.RetryAfter)
	}

	tc, err := DialFramed(addr)
	if err != nil {
		t.Fatalf("dial tenant: %v", err)
	}
	defer tc.Close()
	if err := tc.Hello("tiny"); err != nil {
		t.Fatalf("hello: %v", err)
	}
	_, err = tc.PutBlob("big", []byte("way past four bytes"))
	var qe *QuotaError
	if !errors.Is(err, ErrQuotaExceeded) || !errors.As(err, &qe) {
		t.Fatalf("quota error did not cross the wire typed: %v", err)
	}
	if qe.Tenant != "tiny" || qe.Resource != "bytes" {
		t.Fatalf("quota error lost fields: %+v", qe)
	}
}

// TestFrameHelloUnknownTenant checks that a hello for an undefined tenant
// fails without killing the connection, which stays on the default backend.
func TestFrameHelloUnknownTenant(t *testing.T) {
	tenants := NewTenants(NewMemory())
	addr := startFrameServer(t, NewMemory(), FrameServerOptions{Tenants: tenants})
	c, err := DialFramed(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if err := c.Hello("ghost"); err == nil {
		t.Fatal("hello for unknown tenant succeeded")
	}
	if _, err := c.PutBlob("still-works", []byte("x")); err != nil {
		t.Fatalf("connection unusable after failed hello: %v", err)
	}
}

// shedService rejects every mutation with a typed OverloadError.
type shedService struct {
	inner Service
	retry time.Duration
}

func (s shedService) PutBlob(string, []byte) (int, error) {
	return 0, &OverloadError{RetryAfter: s.retry}
}
func (s shedService) GetBlob(name string) (Blob, error)    { return s.inner.GetBlob(name) }
func (s shedService) DeleteBlob(string) error              { return &OverloadError{RetryAfter: s.retry} }
func (s shedService) ListBlobs(p string) ([]string, error) { return s.inner.ListBlobs(p) }
func (s shedService) Send(Message) error                   { return &OverloadError{RetryAfter: s.retry} }
func (s shedService) Receive(string, int) ([]Message, error) {
	return nil, &OverloadError{RetryAfter: s.retry}
}
func (s shedService) Stats() Stats { return s.inner.Stats() }
