package cloud

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"
)

// This file exposes a Service over TCP with a small JSON line protocol, so a
// cell binary (cmd/tccell) can talk to a cloud binary (cmd/tccloud) exactly
// as Figure 1 sketches. Each request is one JSON object on a line; each
// response is one JSON object on a line.

// rpcRequest is the wire format of a request.
type rpcRequest struct {
	Op        string    `json:"op"`
	Name      string    `json:"name,omitempty"`
	Data      []byte    `json:"data,omitempty"`
	Prefix    string    `json:"prefix,omitempty"`
	Recipient string    `json:"recipient,omitempty"`
	Max       int       `json:"max,omitempty"`
	Message   Message   `json:"message,omitempty"`
	Puts      []BlobPut `json:"puts,omitempty"`
	Names     []string  `json:"names,omitempty"`
	Gets      []CondGet `json:"gets,omitempty"`
}

// rpcResponse is the wire format of a response. RetryAfterMs carries the
// backoff hint of typed overload/quota rejections so respError can
// reconstruct them client-side.
type rpcResponse struct {
	Err          string    `json:"err,omitempty"`
	RetryAfterMs int64     `json:"retry_after_ms,omitempty"`
	Version      int       `json:"version,omitempty"`
	Blob         *Blob     `json:"blob,omitempty"`
	Names        []string  `json:"names,omitempty"`
	Messages     []Message `json:"messages,omitempty"`
	Stats        *Stats    `json:"stats,omitempty"`
	Versions     []int     `json:"versions,omitempty"`
	Blobs        []Blob    `json:"blobs,omitempty"`
}

// Server serves a Service over a listener.
type Server struct {
	svc Service
	ln  net.Listener
	wg  sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// NewServer wraps svc; call Serve to start accepting connections.
func NewServer(svc Service) *Server { return &Server{svc: svc} }

// Serve accepts connections on ln until Close is called. It returns after the
// listener is closed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				s.wg.Wait()
				return nil
			}
			return fmt.Errorf("cloud: accept: %w", err)
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Close stops the server.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	if s.ln != nil {
		return s.ln.Close()
	}
	return nil
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	for {
		var req rpcRequest
		if err := dec.Decode(&req); err != nil {
			return
		}
		resp := dispatch(s.svc, req)
		if err := enc.Encode(&resp); err != nil {
			return
		}
	}
}

// dispatch executes one wire request against svc. It is shared by the JSON
// line Server and the framed FrameServer, which speak the same request and
// response payloads and differ only in framing and concurrency.
func dispatch(svc Service, req rpcRequest) rpcResponse {
	var resp rpcResponse
	var err error
	switch req.Op {
	case "put":
		resp.Version, err = svc.PutBlob(req.Name, req.Data)
	case "get":
		var b Blob
		b, err = svc.GetBlob(req.Name)
		if err == nil {
			resp.Blob = &b
		}
	case "delete":
		err = svc.DeleteBlob(req.Name)
	case "list":
		resp.Names, err = svc.ListBlobs(req.Prefix)
	case "putb":
		resp.Versions, err = PutBlobsVia(svc, req.Puts)
	case "getb":
		resp.Blobs, err = GetBlobsVia(svc, req.Names)
	case "getc":
		resp.Blobs, err = GetBlobsIfVia(svc, req.Gets)
	case "send":
		err = svc.Send(req.Message)
	case "receive":
		resp.Messages, err = svc.Receive(req.Recipient, req.Max)
	case "stats":
		st := svc.Stats()
		resp.Stats = &st
	default:
		resp.Err = fmt.Sprintf("cloud: unknown op %q", req.Op)
		return resp
	}
	applyRespError(&resp, err)
	return resp
}

// applyRespError serializes err into resp, preserving the retry-after hint
// of typed overload/quota rejections so the client can rebuild them.
func applyRespError(resp *rpcResponse, err error) {
	if err == nil {
		return
	}
	resp.Err = err.Error()
	var retry time.Duration
	var oe *OverloadError
	var qe *QuotaError
	switch {
	case errors.As(err, &oe):
		retry = oe.RetryAfter
	case errors.As(err, &qe):
		retry = qe.RetryAfter
	default:
		return
	}
	resp.RetryAfterMs = retry.Milliseconds()
	if resp.RetryAfterMs == 0 && retry > 0 {
		resp.RetryAfterMs = 1 // round sub-millisecond hints up, not to zero
	}
}

// Client is a Service implementation that talks to a remote Server.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	dec  *json.Decoder
	enc  *json.Encoder
}

// Dial connects to a cloud server at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cloud: dial: %w", err)
	}
	return &Client{
		conn: conn,
		dec:  json.NewDecoder(bufio.NewReader(conn)),
		enc:  json.NewEncoder(conn),
	}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) call(req rpcRequest) (rpcResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(&req); err != nil {
		return rpcResponse{}, fmt.Errorf("cloud: rpc send: %w", err)
	}
	var resp rpcResponse
	if err := c.dec.Decode(&resp); err != nil {
		return rpcResponse{}, fmt.Errorf("cloud: rpc receive: %w", err)
	}
	return resp, nil
}

// pipeline writes every request before reading the first response, so the
// whole slice shares the connection's round-trip instead of paying one per
// request. The server handles a connection sequentially, which guarantees
// responses come back in request order.
func (c *Client) pipeline(reqs []rpcRequest) ([]rpcResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range reqs {
		if err := c.enc.Encode(&reqs[i]); err != nil {
			return nil, fmt.Errorf("cloud: rpc pipeline send: %w", err)
		}
	}
	resps := make([]rpcResponse, len(reqs))
	for i := range resps {
		if err := c.dec.Decode(&resps[i]); err != nil {
			return nil, fmt.Errorf("cloud: rpc pipeline receive: %w", err)
		}
	}
	return resps, nil
}

// unknownOp reports whether a response error means the server predates the
// requested operation, in which case the client degrades to pipelined
// single-blob requests.
func unknownOp(resp rpcResponse) bool {
	return strings.Contains(resp.Err, "unknown op")
}

// respError turns a wire response back into the error the server-side
// Service returned, reconstructing the typed sentinels and the retry-after
// carrying OverloadError/QuotaError so errors.Is/As work across the wire.
func respError(resp rpcResponse) error {
	switch resp.Err {
	case "":
		return nil
	case ErrBlobNotFound.Error():
		return ErrBlobNotFound
	case ErrUnavailable.Error():
		return ErrUnavailable
	case ErrMailboxEmpty.Error():
		return ErrMailboxEmpty
	}
	retry := time.Duration(resp.RetryAfterMs) * time.Millisecond
	if strings.HasPrefix(resp.Err, "cloud: overloaded") {
		return &OverloadError{RetryAfter: retry}
	}
	var tenant, resource string
	if _, err := fmt.Sscanf(resp.Err, "cloud: tenant %q over %s quota", &tenant, &resource); err == nil {
		return &QuotaError{Tenant: tenant, Resource: resource, RetryAfter: retry}
	}
	return errors.New(resp.Err)
}

// PutBlob implements Service.
func (c *Client) PutBlob(name string, data []byte) (int, error) {
	resp, err := c.call(rpcRequest{Op: "put", Name: name, Data: data})
	if err != nil {
		return 0, err
	}
	return resp.Version, respError(resp)
}

// GetBlob implements Service.
func (c *Client) GetBlob(name string) (Blob, error) {
	resp, err := c.call(rpcRequest{Op: "get", Name: name})
	if err != nil {
		return Blob{}, err
	}
	if err := respError(resp); err != nil {
		return Blob{}, err
	}
	if resp.Blob == nil {
		return Blob{}, ErrBlobNotFound
	}
	return *resp.Blob, nil
}

// DeleteBlob implements Service.
func (c *Client) DeleteBlob(name string) error {
	resp, err := c.call(rpcRequest{Op: "delete", Name: name})
	if err != nil {
		return err
	}
	return respError(resp)
}

// ListBlobs implements Service.
func (c *Client) ListBlobs(prefix string) ([]string, error) {
	resp, err := c.call(rpcRequest{Op: "list", Prefix: prefix})
	if err != nil {
		return nil, err
	}
	return resp.Names, respError(resp)
}

// PutBlobs implements BatchService over the wire: the whole batch is one
// request/response exchange. If the server predates the batch protocol, the
// client falls back to pipelining one request per blob over the persistent
// connection, which still collapses N round-trips into one.
func (c *Client) PutBlobs(puts []BlobPut) ([]int, error) {
	resp, err := c.call(rpcRequest{Op: "putb", Puts: puts})
	if err != nil {
		return nil, err
	}
	if !unknownOp(resp) {
		if err := respError(resp); err != nil {
			return nil, err
		}
		// The provider is untrusted: never hand positional callers a slice
		// whose length the server chose.
		if len(resp.Versions) != len(puts) {
			return nil, fmt.Errorf("cloud: batch put: server returned %d versions for %d blobs", len(resp.Versions), len(puts))
		}
		return resp.Versions, nil
	}
	reqs := make([]rpcRequest, len(puts))
	for i, p := range puts {
		reqs[i] = rpcRequest{Op: "put", Name: p.Name, Data: p.Data}
	}
	resps, err := c.pipeline(reqs)
	if err != nil {
		return nil, err
	}
	versions := make([]int, len(resps))
	for i, r := range resps {
		if err := respError(r); err != nil {
			return nil, err
		}
		versions[i] = r.Version
	}
	return versions, nil
}

// GetBlobs implements BatchService over the wire, with the same pipelined
// fallback as PutBlobs. Missing blobs yield a zero Blob at their position.
func (c *Client) GetBlobs(names []string) ([]Blob, error) {
	resp, err := c.call(rpcRequest{Op: "getb", Names: names})
	if err != nil {
		return nil, err
	}
	if !unknownOp(resp) {
		if err := respError(resp); err != nil {
			return nil, err
		}
		if len(resp.Blobs) != len(names) {
			return nil, fmt.Errorf("cloud: batch get: server returned %d blobs for %d names", len(resp.Blobs), len(names))
		}
		return resp.Blobs, nil
	}
	reqs := make([]rpcRequest, len(names))
	for i, name := range names {
		reqs[i] = rpcRequest{Op: "get", Name: name}
	}
	resps, err := c.pipeline(reqs)
	if err != nil {
		return nil, err
	}
	blobs := make([]Blob, len(resps))
	for i, r := range resps {
		err := respError(r)
		if err == ErrBlobNotFound {
			continue
		}
		if err != nil {
			return nil, err
		}
		if r.Blob != nil {
			blobs[i] = *r.Blob
		}
	}
	return blobs, nil
}

// GetBlobsIf implements ConditionalBatchService over the wire: the whole
// conditional batch is one request/response exchange, and the server only
// ships data for the blobs that advanced past the requested versions. If the
// server predates the conditional protocol, the client falls back to an
// unconditional GetBlobs and filters locally — correct, without the
// bandwidth savings.
func (c *Client) GetBlobsIf(gets []CondGet) ([]Blob, error) {
	resp, err := c.call(rpcRequest{Op: "getc", Gets: gets})
	if err != nil {
		return nil, err
	}
	if unknownOp(resp) {
		names := make([]string, len(gets))
		for i, g := range gets {
			names[i] = g.Name
		}
		blobs, err := c.GetBlobs(names)
		if err != nil {
			return nil, err
		}
		for i := range blobs {
			if blobs[i].Version <= gets[i].IfNewer {
				blobs[i].Data = nil
			}
		}
		return blobs, nil
	}
	if err := respError(resp); err != nil {
		return nil, err
	}
	if len(resp.Blobs) != len(gets) {
		return nil, fmt.Errorf("cloud: conditional batch get: server returned %d blobs for %d requests", len(resp.Blobs), len(gets))
	}
	return resp.Blobs, nil
}

// Send implements Service.
func (c *Client) Send(msg Message) error {
	resp, err := c.call(rpcRequest{Op: "send", Message: msg})
	if err != nil {
		return err
	}
	return respError(resp)
}

// Receive implements Service.
func (c *Client) Receive(recipient string, max int) ([]Message, error) {
	resp, err := c.call(rpcRequest{Op: "receive", Recipient: recipient, Max: max})
	if err != nil {
		return nil, err
	}
	return resp.Messages, respError(resp)
}

// Stats implements Service.
func (c *Client) Stats() Stats {
	resp, err := c.call(rpcRequest{Op: "stats"})
	if err != nil || resp.Stats == nil {
		return Stats{}
	}
	return *resp.Stats
}
