package cloud

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
)

// This file exposes a Service over TCP with a small JSON line protocol, so a
// cell binary (cmd/tccell) can talk to a cloud binary (cmd/tccloud) exactly
// as Figure 1 sketches. Each request is one JSON object on a line; each
// response is one JSON object on a line.

// rpcRequest is the wire format of a request.
type rpcRequest struct {
	Op        string  `json:"op"`
	Name      string  `json:"name,omitempty"`
	Data      []byte  `json:"data,omitempty"`
	Prefix    string  `json:"prefix,omitempty"`
	Recipient string  `json:"recipient,omitempty"`
	Max       int     `json:"max,omitempty"`
	Message   Message `json:"message,omitempty"`
}

// rpcResponse is the wire format of a response.
type rpcResponse struct {
	Err      string    `json:"err,omitempty"`
	Version  int       `json:"version,omitempty"`
	Blob     *Blob     `json:"blob,omitempty"`
	Names    []string  `json:"names,omitempty"`
	Messages []Message `json:"messages,omitempty"`
	Stats    *Stats    `json:"stats,omitempty"`
}

// Server serves a Service over a listener.
type Server struct {
	svc Service
	ln  net.Listener
	wg  sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// NewServer wraps svc; call Serve to start accepting connections.
func NewServer(svc Service) *Server { return &Server{svc: svc} }

// Serve accepts connections on ln until Close is called. It returns after the
// listener is closed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				s.wg.Wait()
				return nil
			}
			return fmt.Errorf("cloud: accept: %w", err)
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Close stops the server.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	if s.ln != nil {
		return s.ln.Close()
	}
	return nil
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	for {
		var req rpcRequest
		if err := dec.Decode(&req); err != nil {
			return
		}
		resp := s.dispatch(req)
		if err := enc.Encode(&resp); err != nil {
			return
		}
	}
}

func (s *Server) dispatch(req rpcRequest) rpcResponse {
	var resp rpcResponse
	switch req.Op {
	case "put":
		v, err := s.svc.PutBlob(req.Name, req.Data)
		resp.Version = v
		resp.Err = errString(err)
	case "get":
		b, err := s.svc.GetBlob(req.Name)
		if err == nil {
			resp.Blob = &b
		}
		resp.Err = errString(err)
	case "delete":
		resp.Err = errString(s.svc.DeleteBlob(req.Name))
	case "list":
		names, err := s.svc.ListBlobs(req.Prefix)
		resp.Names = names
		resp.Err = errString(err)
	case "send":
		resp.Err = errString(s.svc.Send(req.Message))
	case "receive":
		msgs, err := s.svc.Receive(req.Recipient, req.Max)
		resp.Messages = msgs
		resp.Err = errString(err)
	case "stats":
		st := s.svc.Stats()
		resp.Stats = &st
	default:
		resp.Err = fmt.Sprintf("cloud: unknown op %q", req.Op)
	}
	return resp
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// Client is a Service implementation that talks to a remote Server.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	dec  *json.Decoder
	enc  *json.Encoder
}

// Dial connects to a cloud server at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cloud: dial: %w", err)
	}
	return &Client{
		conn: conn,
		dec:  json.NewDecoder(bufio.NewReader(conn)),
		enc:  json.NewEncoder(conn),
	}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) call(req rpcRequest) (rpcResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(&req); err != nil {
		return rpcResponse{}, fmt.Errorf("cloud: rpc send: %w", err)
	}
	var resp rpcResponse
	if err := c.dec.Decode(&resp); err != nil {
		return rpcResponse{}, fmt.Errorf("cloud: rpc receive: %w", err)
	}
	return resp, nil
}

func respError(resp rpcResponse) error {
	switch resp.Err {
	case "":
		return nil
	case ErrBlobNotFound.Error():
		return ErrBlobNotFound
	case ErrUnavailable.Error():
		return ErrUnavailable
	default:
		return errors.New(resp.Err)
	}
}

// PutBlob implements Service.
func (c *Client) PutBlob(name string, data []byte) (int, error) {
	resp, err := c.call(rpcRequest{Op: "put", Name: name, Data: data})
	if err != nil {
		return 0, err
	}
	return resp.Version, respError(resp)
}

// GetBlob implements Service.
func (c *Client) GetBlob(name string) (Blob, error) {
	resp, err := c.call(rpcRequest{Op: "get", Name: name})
	if err != nil {
		return Blob{}, err
	}
	if err := respError(resp); err != nil {
		return Blob{}, err
	}
	if resp.Blob == nil {
		return Blob{}, ErrBlobNotFound
	}
	return *resp.Blob, nil
}

// DeleteBlob implements Service.
func (c *Client) DeleteBlob(name string) error {
	resp, err := c.call(rpcRequest{Op: "delete", Name: name})
	if err != nil {
		return err
	}
	return respError(resp)
}

// ListBlobs implements Service.
func (c *Client) ListBlobs(prefix string) ([]string, error) {
	resp, err := c.call(rpcRequest{Op: "list", Prefix: prefix})
	if err != nil {
		return nil, err
	}
	return resp.Names, respError(resp)
}

// Send implements Service.
func (c *Client) Send(msg Message) error {
	resp, err := c.call(rpcRequest{Op: "send", Message: msg})
	if err != nil {
		return err
	}
	return respError(resp)
}

// Receive implements Service.
func (c *Client) Receive(recipient string, max int) ([]Message, error) {
	resp, err := c.call(rpcRequest{Op: "receive", Recipient: recipient, Max: max})
	if err != nil {
		return nil, err
	}
	return resp.Messages, respError(resp)
}

// Stats implements Service.
func (c *Client) Stats() Stats {
	resp, err := c.call(rpcRequest{Op: "stats"})
	if err != nil || resp.Stats == nil {
		return Stats{}
	}
	return *resp.Stats
}
