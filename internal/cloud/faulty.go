package cloud

// This file implements cloud.Faulty, a fault-injection wrapper around any
// Service. The replicated provider (see replicated.go) exists to survive
// member failures; Faulty exists so those failures can be produced on demand
// and *deterministically* — a seeded error rate, an op-counter-driven flap
// schedule, a full-outage switch and a partition mask — instead of being
// observed by luck. Every experiment and test that drills availability
// (E15, the quorum edge-case tables, the conformance battery's degraded
// variant) builds its failure scenario out of this wrapper.
//
// Determinism: random decisions come from a seeded generator behind a mutex,
// and the flap schedule is driven by an atomic operation counter, not by wall
// clock. A single-goroutine workload therefore sees exactly the same fault
// sequence on every run; concurrent workloads see the same fault *density*.

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the error returned for faults drawn from the seeded
// error-rate generator, so tests can tell injected failures from organic ones.
var ErrInjected = errors.New("cloud: injected fault")

// OpClass partitions the Service surface for the partition mask: a masked
// class fails with ErrUnavailable as if a network partition separated the
// caller from that capability.
type OpClass int

// Operation classes of the partition mask. Combine with bitwise or.
const (
	// MaskWrites covers PutBlob, PutBlobs and DeleteBlob.
	MaskWrites OpClass = 1 << iota
	// MaskReads covers GetBlob, GetBlobs, GetBlobsIf and ListBlobs.
	MaskReads
	// MaskMail covers Send and Receive.
	MaskMail
)

// FaultyOptions parameterise the injected misbehaviour. The zero value
// injects nothing: a Faulty built from it is a transparent pass-through until
// SetDown / SetFlap / SetMask flip it at runtime.
type FaultyOptions struct {
	// Seed makes the error-rate draws deterministic.
	Seed int64
	// ErrorRate is the per-operation probability of failing with ErrInjected
	// before the inner service is consulted.
	ErrorRate float64
	// Latency is added to every operation (one sleep per call, batch calls
	// included — the same economics as Memory.SetLatency).
	Latency time.Duration
	// SpikeRate is the per-operation probability of a latency spike of
	// SpikeLatency on top of Latency.
	SpikeRate    float64
	SpikeLatency time.Duration
	// CorruptRate is the per-blob probability that a read returns the stored
	// bytes with one seeded bit flipped — the silent-corruption adversary
	// (disk rot, a provider truncating or patching ciphertext). The flip is
	// applied to a copy; the inner store is never mutated. Sealed blobs fail
	// closed at the AEAD layer, which is exactly what the corruption drills
	// assert.
	CorruptRate float64
}

// FaultStats counts what the wrapper injected, so tests can assert the fault
// schedule actually fired (and at the expected rate).
type FaultStats struct {
	Ops           int64 // operations that entered the wrapper
	Injected      int64 // failures from the seeded error rate
	OutageRejects int64 // failures while SetDown(true) was in effect
	FlapRejects   int64 // failures from the flap schedule
	MaskRejects   int64 // failures from the partition mask
	LatencySpikes int64 // operations that paid SpikeLatency
	PassedThrough int64 // operations forwarded to the inner service
	Corrupted     int64 // blobs served with a flipped bit
}

// Faulty wraps a Service (and its batch extensions) with deterministic fault
// injection. All methods are safe for concurrent use.
type Faulty struct {
	inner Service
	opts  FaultyOptions

	ops  atomic.Int64
	down atomic.Bool
	mask atomic.Int32
	// flap packs the schedule as period<<32|downFor; zero disables it.
	flap atomic.Uint64
	// corrupt holds math.Float64bits of the live corruption rate, so
	// SetCorrupt can flip it mid-run like the other switches.
	corrupt atomic.Uint64

	rngMu sync.Mutex
	rng   *rand.Rand

	injected      atomic.Int64
	outageRejects atomic.Int64
	flapRejects   atomic.Int64
	maskRejects   atomic.Int64
	spikes        atomic.Int64
	passed        atomic.Int64
	corrupted     atomic.Int64
}

// NewFaulty wraps inner with the given fault schedule.
func NewFaulty(inner Service, opts FaultyOptions) *Faulty {
	f := &Faulty{
		inner: inner,
		opts:  opts,
		rng:   rand.New(rand.NewSource(opts.Seed)),
	}
	f.corrupt.Store(math.Float64bits(opts.CorruptRate))
	return f
}

// Inner returns the wrapped service (tests inspect member state through it).
func (f *Faulty) Inner() Service { return f.inner }

// SetDown switches the full outage on or off: while down, every operation
// fails with ErrUnavailable without reaching the inner service. This is the
// "kill -9 the provider" switch of the availability drills.
func (f *Faulty) SetDown(down bool) { f.down.Store(down) }

// Down reports whether the full outage is in effect.
func (f *Faulty) Down() bool { return f.down.Load() }

// SetFlap installs an op-counter-driven flap schedule: within every window of
// period operations, the first downFor fail with ErrUnavailable. period <= 0
// disables flapping. The schedule is deterministic in the operation count, so
// a sequential workload always hits the same ops.
func (f *Faulty) SetFlap(period, downFor int) {
	if period <= 0 || downFor <= 0 {
		f.flap.Store(0)
		return
	}
	if downFor > period {
		downFor = period
	}
	f.flap.Store(uint64(period)<<32 | uint64(downFor))
}

// SetMask installs a partition mask: operations in the masked classes fail
// with ErrUnavailable. Zero clears the mask.
func (f *Faulty) SetMask(mask OpClass) { f.mask.Store(int32(mask)) }

// SetCorrupt sets the live per-blob corruption rate (see
// FaultyOptions.CorruptRate); zero turns silent corruption off.
func (f *Faulty) SetCorrupt(rate float64) { f.corrupt.Store(math.Float64bits(rate)) }

// FaultStats returns a snapshot of the injection counters.
func (f *Faulty) FaultStats() FaultStats {
	return FaultStats{
		Ops:           f.ops.Load(),
		Injected:      f.injected.Load(),
		OutageRejects: f.outageRejects.Load(),
		FlapRejects:   f.flapRejects.Load(),
		MaskRejects:   f.maskRejects.Load(),
		LatencySpikes: f.spikes.Load(),
		PassedThrough: f.passed.Load(),
		Corrupted:     f.corrupted.Load(),
	}
}

// corruptBlob applies the seeded bit-flip schedule to one served blob. The
// flip lands on a copy — the inner store keeps the true bytes, exactly like a
// provider whose disk rots under an object it still holds.
func (f *Faulty) corruptBlob(b Blob) Blob {
	rate := math.Float64frombits(f.corrupt.Load())
	if rate <= 0 || len(b.Data) == 0 || !f.chance(rate) {
		return b
	}
	data := make([]byte, len(b.Data))
	copy(data, b.Data)
	f.rngMu.Lock()
	bit := f.rng.Intn(len(data) * 8)
	f.rngMu.Unlock()
	data[bit/8] ^= 1 << (bit % 8)
	b.Data = data
	f.corrupted.Add(1)
	return b
}

// chance draws a seeded coin.
func (f *Faulty) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	f.rngMu.Lock()
	ok := f.rng.Float64() < p
	f.rngMu.Unlock()
	return ok
}

// checkIn runs the fault schedule for one operation of the given class. The
// order is fixed — latency, outage, flap, mask, error rate — so schedules
// compose predictably.
func (f *Faulty) checkIn(class OpClass) error {
	n := f.ops.Add(1)
	if f.opts.Latency > 0 {
		time.Sleep(f.opts.Latency)
	}
	if f.opts.SpikeLatency > 0 && f.chance(f.opts.SpikeRate) {
		f.spikes.Add(1)
		time.Sleep(f.opts.SpikeLatency)
	}
	if f.down.Load() {
		f.outageRejects.Add(1)
		return ErrUnavailable
	}
	if packed := f.flap.Load(); packed != 0 {
		period, downFor := int64(packed>>32), int64(packed&0xFFFFFFFF)
		if (n-1)%period < downFor {
			f.flapRejects.Add(1)
			return ErrUnavailable
		}
	}
	if OpClass(f.mask.Load())&class != 0 {
		f.maskRejects.Add(1)
		return ErrUnavailable
	}
	if f.chance(f.opts.ErrorRate) {
		f.injected.Add(1)
		return ErrInjected
	}
	f.passed.Add(1)
	return nil
}

// PutBlob implements Service.
func (f *Faulty) PutBlob(name string, data []byte) (int, error) {
	if err := f.checkIn(MaskWrites); err != nil {
		return 0, err
	}
	return f.inner.PutBlob(name, data)
}

// GetBlob implements Service.
func (f *Faulty) GetBlob(name string) (Blob, error) {
	if err := f.checkIn(MaskReads); err != nil {
		return Blob{}, err
	}
	b, err := f.inner.GetBlob(name)
	if err != nil {
		return b, err
	}
	return f.corruptBlob(b), nil
}

// DeleteBlob implements Service.
func (f *Faulty) DeleteBlob(name string) error {
	if err := f.checkIn(MaskWrites); err != nil {
		return err
	}
	return f.inner.DeleteBlob(name)
}

// ListBlobs implements Service.
func (f *Faulty) ListBlobs(prefix string) ([]string, error) {
	if err := f.checkIn(MaskReads); err != nil {
		return nil, err
	}
	return f.inner.ListBlobs(prefix)
}

// Send implements Service.
func (f *Faulty) Send(msg Message) error {
	if err := f.checkIn(MaskMail); err != nil {
		return err
	}
	return f.inner.Send(msg)
}

// Receive implements Service.
func (f *Faulty) Receive(recipient string, max int) ([]Message, error) {
	if err := f.checkIn(MaskMail); err != nil {
		return nil, err
	}
	return f.inner.Receive(recipient, max)
}

// Stats implements Service by delegating to the inner service; FaultStats
// holds the wrapper's own counters.
func (f *Faulty) Stats() Stats { return f.inner.Stats() }

// PutBlobs implements BatchService: the whole batch is one fault decision,
// matching the one-round-trip economics the batch API models.
func (f *Faulty) PutBlobs(puts []BlobPut) ([]int, error) {
	if err := f.checkIn(MaskWrites); err != nil {
		return nil, err
	}
	return PutBlobsVia(f.inner, puts)
}

// GetBlobs implements BatchService with one fault decision per batch; the
// corruption schedule still draws per blob, since bit rot strikes objects,
// not round trips.
func (f *Faulty) GetBlobs(names []string) ([]Blob, error) {
	if err := f.checkIn(MaskReads); err != nil {
		return nil, err
	}
	blobs, err := GetBlobsVia(f.inner, names)
	if err != nil {
		return blobs, err
	}
	for i := range blobs {
		blobs[i] = f.corruptBlob(blobs[i])
	}
	return blobs, nil
}

// GetBlobsIf implements ConditionalBatchService with one fault decision per
// batch and per-blob corruption draws.
func (f *Faulty) GetBlobsIf(gets []CondGet) ([]Blob, error) {
	if err := f.checkIn(MaskReads); err != nil {
		return nil, err
	}
	blobs, err := GetBlobsIfVia(f.inner, gets)
	if err != nil {
		return blobs, err
	}
	for i := range blobs {
		blobs[i] = f.corruptBlob(blobs[i])
	}
	return blobs, nil
}

// interface conformance
var (
	_ Service                 = (*Faulty)(nil)
	_ BatchService            = (*Faulty)(nil)
	_ ConditionalBatchService = (*Faulty)(nil)
)
