package cloud

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// trackingListener records accepted connections so a test can sever them,
// simulating a process kill (Server.Close alone drains gracefully, which
// would wait forever on a client that keeps its connection open).
type trackingListener struct {
	net.Listener
	mu    sync.Mutex
	conns []net.Conn
}

func (l *trackingListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err == nil {
		l.mu.Lock()
		l.conns = append(l.conns, c)
		l.mu.Unlock()
	}
	return c, err
}

func (l *trackingListener) killConns() {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, c := range l.conns {
		_ = c.Close()
	}
	l.conns = nil
}

// serveAt serves svc on addr ("127.0.0.1:0" for any port) and returns the
// bound address plus a kill function that drops the listener and every open
// connection, the way a dead process would.
func serveAt(addr string, svc Service) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	tl := &trackingListener{Listener: ln}
	srv := NewServer(svc)
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(tl)
	}()
	return ln.Addr().String(), func() {
		_ = srv.Close()
		tl.killConns()
		<-done
	}, nil
}

// reserveAt rebinds addr, retrying while the previous listener's port is
// released.
func reserveAt(t *testing.T, addr string, svc Service) func() {
	t.Helper()
	for i := 0; i < 100; i++ {
		_, stop, err := serveAt(addr, svc)
		if err == nil {
			return stop
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("rebind %s: port never came back", addr)
	return nil
}

// TestRedialerSurvivesServerRestart kills the server under a Redialer and
// checks the next call after the restart re-dials and succeeds — with the
// server's state intact when the backing store survives (as a Durable member
// or a restarted tccloud process would).
func TestRedialerSurvivesServerRestart(t *testing.T) {
	store := NewMemory()
	addr, stop, err := serveAt("127.0.0.1:0", store)
	if err != nil {
		t.Fatal(err)
	}

	r := NewRedialer(addr)
	defer r.Close()
	if _, err := r.PutBlob("k", []byte("v1")); err != nil {
		t.Fatalf("put before restart: %v", err)
	}

	stop()
	if _, err := r.GetBlob("k"); err == nil {
		t.Fatal("expected a transport error while the server is down")
	}

	// Rebind the same port; the store (and its versions) survive, as they
	// would for a durable member restarted over the same data directory.
	stop2 := reserveAt(t, addr, store)
	defer stop2()

	b, err := r.GetBlob("k")
	if err != nil {
		t.Fatalf("get after restart: %v", err)
	}
	if string(b.Data) != "v1" || b.Version != 1 {
		t.Fatalf("blob after restart = %q v%d, want v1/1", b.Data, b.Version)
	}
	if _, err := r.PutBlob("k", []byte("v2")); err != nil {
		t.Fatalf("put after restart: %v", err)
	}
}

// TestReplicatedTCPMemberRestart runs the availability drill over a real
// wire: a 3-member fleet where one member is a TCP server reached through a
// Redialer. The member's process dies mid-workload, writes continue at
// quorum, the process comes back over the same store, and the hint drain
// converges it.
func TestReplicatedTCPMemberRestart(t *testing.T) {
	remoteStore := NewMemory()
	addr, stop, err := serveAt("127.0.0.1:0", remoteStore)
	if err != nil {
		t.Fatal(err)
	}

	remote := NewRedialer(addr)
	defer remote.Close()
	r, err := NewReplicated([]Service{NewMemory(), NewMemory(), remote}, ReplicatedOptions{
		WriteQuorum:   2,
		ReadQuorum:    2,
		FailThreshold: 1,
		ProbeEvery:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	put := func(lo, hi int) {
		t.Helper()
		for i := lo; i < hi; i++ {
			name := fmt.Sprintf("tcp/doc-%03d", i)
			if _, err := r.PutBlob(name, []byte(name)); err != nil {
				t.Fatalf("put %s: %v", name, err)
			}
		}
	}
	put(0, 20)

	// The member's process dies; the fleet keeps acknowledging at W=2. The
	// down mark lands when the member's queued calls fail, which may trail
	// the quorum acks (calls serialize on the member's connection).
	stop()
	put(20, 40)
	deadline := time.Now().Add(5 * time.Second)
	for !r.MemberDown(2) {
		if time.Now().After(deadline) {
			t.Fatal("TCP member should be marked down after its process died")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The process returns over the same store; probes re-dial, the hint
	// drain replays what it missed, anti-entropy mops up anything dropped.
	stop2 := reserveAt(t, addr, remoteStore)
	defer stop2()

	if n := r.DrainHints(); n == 0 {
		t.Fatal("expected hints to drain into the restarted member")
	}
	if _, err := r.AntiEntropy(); err != nil {
		t.Fatalf("anti-entropy: %v", err)
	}
	for i := 0; i < 40; i++ {
		name := fmt.Sprintf("tcp/doc-%03d", i)
		b, err := remoteStore.GetBlob(name)
		if err != nil {
			t.Fatalf("restarted member missing %s: %v", name, err)
		}
		if string(b.Data) != name {
			t.Fatalf("restarted member has wrong data for %s", name)
		}
	}
}
