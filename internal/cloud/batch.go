package cloud

// This file defines the optional batch extension of Service. A fleet of edge
// cells talking to a shared remote provider is dominated by round-trips, not
// by bytes: uploading a vault one blob at a time costs one RTT per blob. The
// batch API lets a cell hand the provider many blobs in a single exchange;
// implementations that can exploit it (the sharded Memory, the pipelined TCP
// client) advertise it by implementing BatchService, and the PutBlobsVia /
// GetBlobsVia helpers degrade gracefully to per-blob calls on any other
// Service.

// BlobPut is one named payload of a batched upload.
type BlobPut struct {
	Name string `json:"name"`
	Data []byte `json:"data"`
}

// BatchService is the optional batch extension of Service. Callers should not
// type-assert it themselves; PutBlobsVia and GetBlobsVia pick the fast path
// when it exists.
type BatchService interface {
	// PutBlobs stores every blob and returns the new version of each, in
	// argument order. The whole batch shares one round-trip.
	PutBlobs(puts []BlobPut) ([]int, error)
	// GetBlobs returns the latest version of each named blob in argument
	// order. Missing names yield a zero Blob (Version 0) at their position;
	// only service-level failures return an error.
	GetBlobs(names []string) ([]Blob, error)
}

// CondGet names one blob of a conditional batched fetch: the blob's data is
// wanted only if its stored version is strictly greater than IfNewer. Passing
// IfNewer 0 fetches unconditionally.
type CondGet struct {
	Name    string `json:"name"`
	IfNewer int    `json:"if_newer"`
}

// ConditionalBatchService is the optional conditional-fetch extension of
// Service. It is what makes delta synchronization cheap: a replica lists every
// shard it replicates together with the last version it merged, and the
// provider ships payload bytes only for the shards that actually advanced —
// the HTTP analogy is a batched If-None-Match. Callers should not type-assert
// it themselves; GetBlobsIfVia picks the fast path when it exists.
type ConditionalBatchService interface {
	// GetBlobsIf returns one Blob per request, in argument order. A blob whose
	// stored version is still <= IfNewer comes back with its current Version
	// but nil Data; a missing name yields a zero Blob (Version 0). The whole
	// batch shares one round-trip.
	GetBlobsIf(gets []CondGet) ([]Blob, error)
}

// PutBlobsVia uploads a batch of blobs through svc, using the BatchService
// fast path when svc implements it and falling back to sequential PutBlob
// calls otherwise. The fallback stops at the first error.
func PutBlobsVia(svc Service, puts []BlobPut) ([]int, error) {
	if bs, ok := svc.(BatchService); ok {
		return bs.PutBlobs(puts)
	}
	versions := make([]int, len(puts))
	for i, p := range puts {
		v, err := svc.PutBlob(p.Name, p.Data)
		if err != nil {
			return nil, err
		}
		versions[i] = v
	}
	return versions, nil
}

// GetBlobsVia fetches a batch of blobs through svc, using the BatchService
// fast path when svc implements it and falling back to sequential GetBlob
// calls otherwise. In the fallback, a missing blob yields a zero Blob at its
// position, matching BatchService semantics; other errors abort the batch.
func GetBlobsVia(svc Service, names []string) ([]Blob, error) {
	if bs, ok := svc.(BatchService); ok {
		return bs.GetBlobs(names)
	}
	blobs := make([]Blob, len(names))
	for i, name := range names {
		b, err := svc.GetBlob(name)
		if err == ErrBlobNotFound {
			continue
		}
		if err != nil {
			return nil, err
		}
		blobs[i] = b
	}
	return blobs, nil
}

// GetBlobsIfVia fetches a batch of blobs conditionally through svc, using the
// ConditionalBatchService fast path when svc implements it. On any other
// Service it degrades to a plain batched fetch and discards the data of blobs
// that did not advance client-side — correct, but without the bandwidth
// savings the conditional protocol exists for.
func GetBlobsIfVia(svc Service, gets []CondGet) ([]Blob, error) {
	if cs, ok := svc.(ConditionalBatchService); ok {
		return cs.GetBlobsIf(gets)
	}
	names := make([]string, len(gets))
	for i, g := range gets {
		names[i] = g.Name
	}
	blobs, err := GetBlobsVia(svc, names)
	if err != nil {
		return nil, err
	}
	for i := range blobs {
		if blobs[i].Version <= gets[i].IfNewer {
			blobs[i].Data = nil
		}
	}
	return blobs, nil
}
