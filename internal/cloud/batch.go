package cloud

// This file defines the optional batch extension of Service. A fleet of edge
// cells talking to a shared remote provider is dominated by round-trips, not
// by bytes: uploading a vault one blob at a time costs one RTT per blob. The
// batch API lets a cell hand the provider many blobs in a single exchange;
// implementations that can exploit it (the sharded Memory, the pipelined TCP
// client) advertise it by implementing BatchService, and the PutBlobsVia /
// GetBlobsVia helpers degrade gracefully to per-blob calls on any other
// Service.

// BlobPut is one named payload of a batched upload.
type BlobPut struct {
	Name string `json:"name"`
	Data []byte `json:"data"`
}

// BatchService is the optional batch extension of Service. Callers should not
// type-assert it themselves; PutBlobsVia and GetBlobsVia pick the fast path
// when it exists.
type BatchService interface {
	// PutBlobs stores every blob and returns the new version of each, in
	// argument order. The whole batch shares one round-trip.
	PutBlobs(puts []BlobPut) ([]int, error)
	// GetBlobs returns the latest version of each named blob in argument
	// order. Missing names yield a zero Blob (Version 0) at their position;
	// only service-level failures return an error.
	GetBlobs(names []string) ([]Blob, error)
}

// PutBlobsVia uploads a batch of blobs through svc, using the BatchService
// fast path when svc implements it and falling back to sequential PutBlob
// calls otherwise. The fallback stops at the first error.
func PutBlobsVia(svc Service, puts []BlobPut) ([]int, error) {
	if bs, ok := svc.(BatchService); ok {
		return bs.PutBlobs(puts)
	}
	versions := make([]int, len(puts))
	for i, p := range puts {
		v, err := svc.PutBlob(p.Name, p.Data)
		if err != nil {
			return nil, err
		}
		versions[i] = v
	}
	return versions, nil
}

// GetBlobsVia fetches a batch of blobs through svc, using the BatchService
// fast path when svc implements it and falling back to sequential GetBlob
// calls otherwise. In the fallback, a missing blob yields a zero Blob at its
// position, matching BatchService semantics; other errors abort the batch.
func GetBlobsVia(svc Service, names []string) ([]Blob, error) {
	if bs, ok := svc.(BatchService); ok {
		return bs.GetBlobs(names)
	}
	blobs := make([]Blob, len(names))
	for i, name := range names {
		b, err := svc.GetBlob(name)
		if err == ErrBlobNotFound {
			continue
		}
		if err != nil {
			return nil, err
		}
		blobs[i] = b
	}
	return blobs, nil
}
