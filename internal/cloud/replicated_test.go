package cloud

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestReplicatedConstruction is the quorum edge-case table: configurations
// that could never acknowledge safely must be rejected at construction, not
// discovered at the first write.
func TestReplicatedConstruction(t *testing.T) {
	three := func() []Service { return []Service{NewMemory(), NewMemory(), NewMemory()} }
	cases := []struct {
		name    string
		members []Service
		opts    ReplicatedOptions
		wantErr bool
	}{
		{"defaults", three(), ReplicatedOptions{}, false},
		{"explicit majority", three(), ReplicatedOptions{WriteQuorum: 2, ReadQuorum: 2}, false},
		{"W equals N", three(), ReplicatedOptions{WriteQuorum: 3, ReadQuorum: 1}, false},
		{"single member", []Service{NewMemory()}, ReplicatedOptions{}, false},
		{"no members", nil, ReplicatedOptions{}, true},
		{"nil member", []Service{NewMemory(), nil}, ReplicatedOptions{}, true},
		{"W greater than N", three(), ReplicatedOptions{WriteQuorum: 4}, true},
		{"R greater than N", three(), ReplicatedOptions{ReadQuorum: 4}, true},
		{"negative W", three(), ReplicatedOptions{WriteQuorum: -1}, true},
		{"negative R", three(), ReplicatedOptions{ReadQuorum: -1}, true},
		{"negative hint capacity", three(), ReplicatedOptions{HintCapacity: -5}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r, err := NewReplicated(tc.members, tc.opts)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("construction succeeded, want error")
				}
				return
			}
			if err != nil {
				t.Fatalf("construction failed: %v", err)
			}
			defer r.Close()
			if _, err := r.PutBlob("smoke", []byte("x")); err != nil {
				t.Fatalf("smoke put: %v", err)
			}
			if b, err := r.GetBlob("smoke"); err != nil || string(b.Data) != "x" {
				t.Fatalf("smoke get: %+v %v", b, err)
			}
		})
	}
}

// hungService blocks PutBlob until released — the "slowest member" of the
// quorum tests.
type hungService struct {
	*Memory
	release chan struct{}
}

func (h *hungService) PutBlob(name string, data []byte) (int, error) {
	<-h.release
	return h.Memory.PutBlob(name, data)
}

// TestReplicatedExactlyWAcksWithHungMember proves a write returns as soon as
// W members acknowledged: a member that hangs forever must not stall the
// caller, and must still receive the write once it wakes up.
func TestReplicatedExactlyWAcksWithHungMember(t *testing.T) {
	hung := &hungService{Memory: NewMemory(), release: make(chan struct{})}
	r, err := NewReplicated([]Service{NewMemory(), NewMemory(), hung},
		ReplicatedOptions{WriteQuorum: 2, ReadQuorum: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		v, err := r.PutBlob("doc", []byte("payload"))
		if err != nil || v != 1 {
			t.Errorf("PutBlob with hung member: v=%d err=%v", v, err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("PutBlob blocked on the hung member instead of returning at W acks")
	}
	// Release the hung member; its in-flight write completes eventually.
	close(hung.release)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if b, err := hung.Memory.GetBlob("doc"); err == nil && string(b.Data) == "payload" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("hung member never received the write after release")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestReplicatedReadRepair seeds members with diverged histories and checks a
// quorum read reconciles to the maximum version — and rewrites the stale
// member so the next read finds the fleet converged.
func TestReplicatedReadRepair(t *testing.T) {
	m0, m1 := NewMemory(), NewMemory()
	r, err := NewReplicated([]Service{m0, m1}, ReplicatedOptions{WriteQuorum: 2, ReadQuorum: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Diverge behind the layer's back: m0 saw one write, m1 saw two.
	if _, err := m0.PutBlob("doc", []byte("old")); err != nil {
		t.Fatal(err)
	}
	if _, err := m1.PutBlob("doc", []byte("old")); err != nil {
		t.Fatal(err)
	}
	if _, err := m1.PutBlob("doc", []byte("new")); err != nil {
		t.Fatal(err)
	}

	b, err := r.GetBlob("doc")
	if err != nil || b.Version != 2 || string(b.Data) != "new" {
		t.Fatalf("read did not reconcile to max: %+v %v", b, err)
	}
	got, err := m0.GetBlob("doc")
	if err != nil || got.Version != 2 || string(got.Data) != "new" {
		t.Fatalf("stale member not repaired: %+v %v", got, err)
	}
	if st := r.ReplicationStats(); st.ReadRepairs == 0 {
		t.Fatalf("repair not accounted: %+v", st)
	}
}

// TestReplicatedConflictSameVersion: two members at the same version with
// different bytes must converge deterministically (toward the lowest member
// index) within a bounded number of reads, without oscillating.
func TestReplicatedConflictSameVersion(t *testing.T) {
	m0, m1 := NewMemory(), NewMemory()
	r, err := NewReplicated([]Service{m0, m1}, ReplicatedOptions{WriteQuorum: 2, ReadQuorum: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	if _, err := m0.PutBlob("doc", []byte("aaa")); err != nil {
		t.Fatal(err)
	}
	if _, err := m1.PutBlob("doc", []byte("bbb")); err != nil {
		t.Fatal(err)
	}
	// Two reads: the first lifts the loser past the conflict, the second
	// settles the remaining member. Both must agree afterwards.
	for i := 0; i < 2; i++ {
		if _, err := r.GetBlob("doc"); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
	b0, _ := m0.GetBlob("doc")
	b1, _ := m1.GetBlob("doc")
	if !bytes.Equal(b0.Data, b1.Data) || b0.Version != b1.Version {
		t.Fatalf("members did not converge: m0=%+v m1=%+v", b0, b1)
	}
	if string(b0.Data) != "aaa" {
		t.Fatalf("conflict resolved away from the deterministic winner: %q", b0.Data)
	}
}

// TestReplicatedHintOverflow drives more writes at a down member than its
// hint queue holds: the overflow must be counted, the drain must replay what
// survived, and anti-entropy must repair the writes the overflow dropped.
func TestReplicatedHintOverflow(t *testing.T) {
	faulty := NewFaulty(NewMemory(), FaultyOptions{})
	r, err := NewReplicated([]Service{NewMemory(), NewMemory(), faulty},
		ReplicatedOptions{WriteQuorum: 2, ReadQuorum: 2, HintCapacity: 4, FailThreshold: 1, ProbeEvery: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	faulty.SetDown(true)
	const writes = 12
	for i := 0; i < writes; i++ {
		if _, err := r.PutBlob(fmt.Sprintf("doc-%03d", i), []byte(fmt.Sprintf("v-%03d", i))); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	st := r.ReplicationStats()
	if st.HintsDropped == 0 {
		t.Fatalf("overflow never dropped a hint: %+v", st)
	}
	if st.MembersDown != 1 {
		t.Fatalf("faulty member not marked down: %+v", st)
	}

	faulty.SetDown(false)
	drained := r.DrainHints()
	if drained == 0 || drained > 4 {
		t.Fatalf("drained %d hints, want 1..4 (capacity)", drained)
	}
	if r.MemberDown(2) {
		t.Fatal("member still down after drain")
	}

	// The dropped hints left holes; one anti-entropy pass must fill them.
	report, err := r.AntiEntropy()
	if err != nil {
		t.Fatalf("AntiEntropy: %v", err)
	}
	if report.StalePuts == 0 {
		t.Fatalf("anti-entropy repaired nothing: %+v", report)
	}
	inner := faulty.Inner()
	for i := 0; i < writes; i++ {
		name := fmt.Sprintf("doc-%03d", i)
		b, err := inner.GetBlob(name)
		if err != nil || string(b.Data) != fmt.Sprintf("v-%03d", i) {
			t.Fatalf("member missing %s after anti-entropy: %+v %v", name, b, err)
		}
	}
}

// TestReplicatedQuorumLoss: with more members down than the quorum tolerates,
// reads and writes must fail fast with ErrQuorumFailed — and recover once a
// member returns.
func TestReplicatedQuorumLoss(t *testing.T) {
	f1 := NewFaulty(NewMemory(), FaultyOptions{})
	f2 := NewFaulty(NewMemory(), FaultyOptions{})
	r, err := NewReplicated([]Service{NewMemory(), f1, f2},
		ReplicatedOptions{WriteQuorum: 2, ReadQuorum: 2, FailThreshold: 1, ProbeEvery: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	if _, err := r.PutBlob("doc", []byte("x")); err != nil {
		t.Fatal(err)
	}
	f1.SetDown(true)
	f2.SetDown(true)
	if _, err := r.PutBlob("doc", []byte("y")); !errors.Is(err, ErrQuorumFailed) {
		t.Fatalf("write without quorum: %v", err)
	}
	if _, err := r.GetBlob("doc"); !errors.Is(err, ErrQuorumFailed) {
		t.Fatalf("read without quorum: %v", err)
	}

	f1.SetDown(false)
	r.DrainHints()
	if _, err := r.PutBlob("doc", []byte("z")); err != nil {
		t.Fatalf("write after one member returned: %v", err)
	}
	if b, err := r.GetBlob("doc"); err != nil || string(b.Data) != "z" {
		t.Fatalf("read after recovery: %+v %v", b, err)
	}
}

// TestReplicatedKillDrill is the acceptance drill behind experiment E15: one
// of three providers is killed mid-workload; every acknowledged write must
// stay readable at quorum while the member is dead, and the returning member
// must converge through the hinted-handoff drain.
func TestReplicatedKillDrill(t *testing.T) {
	members := make([]*Faulty, 3)
	services := make([]Service, 3)
	for i := range members {
		members[i] = NewFaulty(NewMemory(), FaultyOptions{})
		services[i] = members[i]
	}
	r, err := NewReplicated(services, ReplicatedOptions{WriteQuorum: 2, ReadQuorum: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	const (
		total  = 200
		killAt = 100
		victim = 2
	)
	type acked struct {
		name    string
		payload string
		version int
	}
	var log []acked
	for i := 0; i < total; i++ {
		if i == killAt {
			members[victim].SetDown(true) // kill -9 mid-workload
		}
		name := fmt.Sprintf("cell/doc-%04d", i)
		payload := fmt.Sprintf("sealed-%04d", i)
		v, err := r.PutBlob(name, []byte(payload))
		if err != nil {
			t.Fatalf("write %d failed during drill: %v", i, err)
		}
		log = append(log, acked{name, payload, v})
		// Sprinkle batched writes through the drill as well.
		if i%20 == 10 {
			batch := []BlobPut{
				{Name: name + "-b0", Data: []byte(payload + "-b0")},
				{Name: name + "-b1", Data: []byte(payload + "-b1")},
			}
			vers, err := r.PutBlobs(batch)
			if err != nil {
				t.Fatalf("batch write %d failed during drill: %v", i, err)
			}
			for j, p := range batch {
				log = append(log, acked{p.Name, string(p.Data), vers[j]})
			}
		}
	}

	// Phase 1: victim still dead — every acked write must be readable at
	// quorum with at least the acked version. Zero tolerance.
	lost := 0
	for _, a := range log {
		b, err := r.GetBlob(a.name)
		if err != nil || string(b.Data) != a.payload || b.Version < a.version {
			lost++
			t.Errorf("acked write lost while member down: %s (%+v, %v)", a.name, b, err)
		}
	}
	if lost != 0 {
		t.Fatalf("acked_loss = %d, want 0", lost)
	}
	if !r.MemberDown(victim) {
		t.Fatal("victim should be marked down during the drill")
	}

	// Phase 2: the member returns; the hint drain must converge its own
	// store — every write it missed, replayed, at the quorum version.
	members[victim].SetDown(false)
	drained := r.DrainHints()
	if drained == 0 {
		t.Fatal("no hints drained for the returning member")
	}
	if r.MemberDown(victim) {
		t.Fatal("victim still marked down after drain")
	}
	inner := members[victim].Inner()
	for _, a := range log {
		b, err := inner.GetBlob(a.name)
		if err != nil || string(b.Data) != a.payload {
			t.Fatalf("returning member missing %s after drain: %+v %v", a.name, b, err)
		}
	}
	st := r.ReplicationStats()
	if st.HintsQueued == 0 || st.HintsDrained == 0 {
		t.Fatalf("handoff accounting: %+v", st)
	}
}

// TestReplicatedMailboxWithDownMember: the mailbox contract must hold while a
// member is dead and after it returns — no losses, no duplicates, FIFO.
func TestReplicatedMailboxWithDownMember(t *testing.T) {
	faulty := NewFaulty(NewMemory(), FaultyOptions{})
	r, err := NewReplicated([]Service{NewMemory(), NewMemory(), faulty},
		ReplicatedOptions{WriteQuorum: 2, ReadQuorum: 2, FailThreshold: 1, ProbeEvery: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	for i := 0; i < 3; i++ {
		if err := r.Send(Message{From: "a", To: "bob", Body: []byte(fmt.Sprintf("m%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	faulty.SetDown(true)
	for i := 3; i < 6; i++ {
		if err := r.Send(Message{From: "a", To: "bob", Body: []byte(fmt.Sprintf("m%d", i))}); err != nil {
			t.Fatalf("send %d with down member: %v", i, err)
		}
	}
	msgs, err := r.Receive("bob", 4)
	if err != nil || len(msgs) != 4 {
		t.Fatalf("Receive: %d %v", len(msgs), err)
	}
	faulty.SetDown(false)
	r.DrainHints()
	rest, err := r.Receive("bob", 0)
	if err != nil || len(rest) != 2 {
		t.Fatalf("Receive after recovery: %d %v", len(rest), err)
	}
	all := append(msgs, rest...)
	for i, m := range all {
		if want := fmt.Sprintf("m%d", i); string(m.Body) != want {
			t.Fatalf("position %d = %q, want %q", i, m.Body, want)
		}
	}
	if extra, _ := r.Receive("bob", 0); len(extra) != 0 {
		t.Fatalf("duplicates after recovery: %d", len(extra))
	}
}

// TestReplicatedSwapMemberRecovery models a member whose process died and was
// restarted: a crashed Durable is reopened from its directory and swapped
// back in; the drain plus anti-entropy must bring it current.
func TestReplicatedSwapMemberRecovery(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, DurableOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReplicated([]Service{NewMemory(), NewMemory(), d},
		ReplicatedOptions{WriteQuorum: 2, ReadQuorum: 2, FailThreshold: 1, ProbeEvery: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	for i := 0; i < 10; i++ {
		if _, err := r.PutBlob(fmt.Sprintf("doc-%02d", i), []byte("pre")); err != nil {
			t.Fatal(err)
		}
	}
	d.Crash()
	for i := 10; i < 20; i++ {
		if _, err := r.PutBlob(fmt.Sprintf("doc-%02d", i), []byte("post")); err != nil {
			t.Fatalf("write %d after member crash: %v", i, err)
		}
	}

	d2, err := OpenDurable(dir, DurableOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	r.SwapMember(2, d2)
	if !r.MemberDown(2) {
		t.Fatal("swapped member should start down")
	}
	r.DrainHints()
	if _, err := r.AntiEntropy(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		name := fmt.Sprintf("doc-%02d", i)
		if _, err := d2.GetBlob(name); err != nil {
			t.Fatalf("reopened member missing %s: %v", name, err)
		}
	}
}

// TestReplicatedGetBlobReadQuorum: a read that gathers fewer error-free
// responses than R must fail with ErrQuorumFailed, never serve the minority
// answer — with R=2 and one member erroring on reads, a single "not found"
// response must not shadow an acknowledged write. (Regression: the merge
// accepted any nonzero number of responses.)
func TestReplicatedGetBlobReadQuorum(t *testing.T) {
	faulty := NewFaulty(NewMemory(), FaultyOptions{})
	r, err := NewReplicated([]Service{NewMemory(), faulty},
		ReplicatedOptions{WriteQuorum: 2, ReadQuorum: 2, FailThreshold: 1 << 30, ProbeEvery: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	if _, err := r.PutBlob("doc", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// The member stays in the live set (reads queue no hints and the fail
	// threshold is out of reach), but every read against it errors: only one
	// of the two required responses can arrive.
	faulty.SetMask(MaskReads)
	if _, err := r.GetBlob("doc"); !errors.Is(err, ErrQuorumFailed) {
		t.Fatalf("read with 1 of R=2 responses = %v, want ErrQuorumFailed", err)
	}
	faulty.SetMask(0)
	if b, err := r.GetBlob("doc"); err != nil || string(b.Data) != "x" {
		t.Fatalf("read after mask cleared: %+v %v", b, err)
	}
}

// TestReplicatedConcurrentDrains races many drains of the same member: every
// hint must be replayed exactly once. (Regression: two unserialized drains
// could both replay the head and then both pop it, discarding the next hint
// without ever applying it.)
func TestReplicatedConcurrentDrains(t *testing.T) {
	faulty := NewFaulty(NewMemory(), FaultyOptions{})
	r, err := NewReplicated([]Service{NewMemory(), NewMemory(), faulty},
		ReplicatedOptions{WriteQuorum: 2, ReadQuorum: 2, FailThreshold: 1, ProbeEvery: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	faulty.SetDown(true)
	const writes = 200
	for i := 0; i < writes; i++ {
		if _, err := r.PutBlob(fmt.Sprintf("doc-%03d", i), []byte(fmt.Sprintf("v-%03d", i))); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	faulty.SetDown(false)

	var drained atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			drained.Add(int64(r.DrainHints()))
		}()
	}
	wg.Wait()
	if drained.Load() != writes {
		t.Fatalf("concurrent drains replayed %d hints, want exactly %d", drained.Load(), writes)
	}
	if st := r.ReplicationStats(); st.HintsDrained != writes {
		t.Fatalf("drain accounting: %+v", st)
	}
	if r.MemberDown(2) {
		t.Fatal("member still down after drains")
	}
	inner := faulty.Inner()
	for i := 0; i < writes; i++ {
		name := fmt.Sprintf("doc-%03d", i)
		b, err := inner.GetBlob(name)
		if err != nil || string(b.Data) != fmt.Sprintf("v-%03d", i) {
			t.Fatalf("member missing %s after concurrent drains: %+v %v", name, b, err)
		}
	}
}

// TestReplicatedQuorumFailureQueuesNothing: an operation that fails its
// quorum check fast must leave no trace — no hint may later materialize a
// write the caller was told failed. (Regression: hints for down members were
// queued before the quorum check.)
func TestReplicatedQuorumFailureQueuesNothing(t *testing.T) {
	f1 := NewFaulty(NewMemory(), FaultyOptions{})
	f2 := NewFaulty(NewMemory(), FaultyOptions{})
	r, err := NewReplicated([]Service{NewMemory(), f1, f2},
		ReplicatedOptions{WriteQuorum: 2, ReadQuorum: 2, FailThreshold: 1, ProbeEvery: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	f1.SetDown(true)
	f2.SetDown(true)
	// This write trips both members down. It fails quorum after fanning out,
	// so its call-failure hints are the documented partial-application path.
	if _, err := r.PutBlob("trip", []byte("x")); !errors.Is(err, ErrQuorumFailed) {
		t.Fatalf("tripping write: %v", err)
	}

	before := r.ReplicationStats().HintsQueued
	if _, err := r.PutBlob("ghost", []byte("boo")); !errors.Is(err, ErrQuorumFailed) {
		t.Fatalf("put without quorum: %v", err)
	}
	if err := r.DeleteBlob("ghost"); !errors.Is(err, ErrQuorumFailed) {
		t.Fatalf("delete without quorum: %v", err)
	}
	if err := r.Send(Message{From: "a", To: "bob", Body: []byte("hi")}); !errors.Is(err, ErrQuorumFailed) {
		t.Fatalf("send without quorum: %v", err)
	}
	if _, err := r.PutBlobs([]BlobPut{{Name: "ghost-b", Data: []byte("boo")}}); !errors.Is(err, ErrQuorumFailed) {
		t.Fatalf("batch put without quorum: %v", err)
	}
	if after := r.ReplicationStats().HintsQueued; after != before {
		t.Fatalf("fast-failed operations queued %d hints", after-before)
	}

	f1.SetDown(false)
	f2.SetDown(false)
	r.DrainHints()
	for i, m := range []*Faulty{f1, f2} {
		if _, err := m.Inner().GetBlob("ghost"); err != ErrBlobNotFound {
			t.Fatalf("failed write materialized on member %d: %v", i+1, err)
		}
	}
}

// hungDeleteService blocks DeleteBlob until released — the hung (not
// erroring) provider of the delete path, which waits for every live member.
type hungDeleteService struct {
	*Memory
	release chan struct{}
}

func (h *hungDeleteService) DeleteBlob(name string) error {
	<-h.release
	return h.Memory.DeleteBlob(name)
}

// TestReplicatedDeleteWithHungMember: DeleteBlob waits for all live members
// (no tombstones), so a member that hangs rather than errors must be cut
// loose by CallTimeout instead of blocking deletes forever — and must still
// converge through its hint once it wakes up. (Regression: a hung call never
// counted as a failure, so one hung provider blocked every delete.)
func TestReplicatedDeleteWithHungMember(t *testing.T) {
	hung := &hungDeleteService{Memory: NewMemory(), release: make(chan struct{})}
	r, err := NewReplicated([]Service{NewMemory(), NewMemory(), hung},
		ReplicatedOptions{WriteQuorum: 2, ReadQuorum: 2, CallTimeout: 50 * time.Millisecond, ProbeEvery: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	if _, err := r.PutBlob("doc", []byte("x")); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- r.DeleteBlob("doc") }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("delete with hung member: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("DeleteBlob blocked on the hung member past CallTimeout")
	}

	// The timed-out member earned a delete hint; once it wakes up, the drain
	// (or its own dangling call) removes the blob it still holds.
	close(hung.release)
	r.DrainHints()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := hung.Memory.GetBlob("doc"); err == ErrBlobNotFound {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("hung member never applied the delete after release")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestReplicatedConcurrentStress hammers the layer from many goroutines while
// a member flaps — run under -race in the CI availability job.
func TestReplicatedConcurrentStress(t *testing.T) {
	faulty := NewFaulty(NewMemory(), FaultyOptions{Seed: 3, ErrorRate: 0.1})
	faulty.SetFlap(20, 5)
	r, err := NewReplicated([]Service{NewMemory(), NewMemory(), faulty},
		ReplicatedOptions{WriteQuorum: 2, ReadQuorum: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	const (
		workers = 8
		rounds  = 40
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				name := fmt.Sprintf("w%d/doc-%03d", w, i)
				if _, err := r.PutBlob(name, []byte(name)); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				if b, err := r.GetBlob(name); err != nil || string(b.Data) != name {
					t.Errorf("get %s: %+v %v", name, b, err)
					return
				}
				if i%4 == 0 {
					if _, err := r.PutBlobs([]BlobPut{
						{Name: name + "-b", Data: []byte("b")},
					}); err != nil {
						t.Errorf("batch put: %v", err)
						return
					}
				}
				if i%8 == 0 {
					if err := r.Send(Message{From: name, To: fmt.Sprintf("w%d", w), Body: []byte("ping")}); err != nil {
						t.Errorf("send: %v", err)
						return
					}
					if _, err := r.Receive(fmt.Sprintf("w%d", w), 4); err != nil {
						t.Errorf("receive: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	faulty.SetFlap(0, 0)
	if _, err := r.AntiEntropy(); err != nil {
		t.Fatal(err)
	}
	names, err := r.ListBlobs("")
	if err != nil {
		t.Fatal(err)
	}
	want := workers * (rounds + rounds/4)
	if len(names) != want {
		t.Fatalf("final blob count = %d, want %d", len(names), want)
	}
}
