package cloud

import (
	"strings"
	"sync"
)

// Redialer is a Service over a remote server that re-dials its address when
// the underlying connection dies. A plain Client is pinned to one TCP
// connection, so a fleet member that restarts would stay unreachable for the
// life of the coordinator; wrapped in a Redialer, the member's next probe
// after it comes back up establishes a fresh connection and the hinted
// handoff drain can bring it current (DESIGN.md §9.3). Remote semantic
// errors (ErrBlobNotFound, ErrMailboxEmpty, ErrUnavailable, quorum errors)
// pass through without touching the connection; only transport failures —
// dial, send, receive — discard it.
type Redialer struct {
	addr string

	mu     sync.Mutex
	client *Client
}

// NewRedialer returns a Redialer for addr. No connection is established
// until the first call, so a Redialer can be created for a member that is
// not up yet.
func NewRedialer(addr string) *Redialer {
	return &Redialer{addr: addr}
}

// Addr returns the address the Redialer (re-)dials.
func (r *Redialer) Addr() string { return r.addr }

// Close closes the current connection, if any. The next call re-dials.
func (r *Redialer) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.client == nil {
		return nil
	}
	err := r.client.Close()
	r.client = nil
	return err
}

// get returns the current client, dialing if necessary.
func (r *Redialer) get() (*Client, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.client == nil {
		c, err := Dial(r.addr)
		if err != nil {
			return nil, err
		}
		r.client = c
	}
	return r.client, nil
}

// transportError reports whether err means the connection itself is broken
// (as opposed to a semantic error relayed from the remote store).
func transportError(err error) bool {
	if err == nil || err == ErrBlobNotFound || err == ErrMailboxEmpty || err == ErrUnavailable {
		return false
	}
	msg := err.Error()
	return strings.Contains(msg, "cloud: dial") ||
		strings.Contains(msg, "cloud: rpc")
}

// drop discards the connection so the next call re-dials, but only if it is
// still the one that failed (a concurrent caller may have re-dialed already).
func (r *Redialer) drop(c *Client) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.client == c {
		_ = c.Close()
		r.client = nil
	}
}

// do runs fn against the current connection, discarding it on a transport
// failure so the next call starts fresh. The failed call itself is not
// retried: the caller is the replication layer, which already treats a
// member error as "hint and move on" — retrying here would double-apply
// operations whose response was lost in flight.
func (r *Redialer) do(fn func(c *Client) error) error {
	c, err := r.get()
	if err != nil {
		return err
	}
	err = fn(c)
	if transportError(err) {
		r.drop(c)
	}
	return err
}

// PutBlob implements Service.
func (r *Redialer) PutBlob(name string, data []byte) (version int, err error) {
	err = r.do(func(c *Client) error {
		version, err = c.PutBlob(name, data)
		return err
	})
	return version, err
}

// GetBlob implements Service.
func (r *Redialer) GetBlob(name string) (blob Blob, err error) {
	err = r.do(func(c *Client) error {
		blob, err = c.GetBlob(name)
		return err
	})
	return blob, err
}

// DeleteBlob implements Service.
func (r *Redialer) DeleteBlob(name string) error {
	return r.do(func(c *Client) error { return c.DeleteBlob(name) })
}

// ListBlobs implements Service.
func (r *Redialer) ListBlobs(prefix string) (names []string, err error) {
	err = r.do(func(c *Client) error {
		names, err = c.ListBlobs(prefix)
		return err
	})
	return names, err
}

// Send implements Service.
func (r *Redialer) Send(msg Message) error {
	return r.do(func(c *Client) error { return c.Send(msg) })
}

// Receive implements Service.
func (r *Redialer) Receive(recipient string, max int) (msgs []Message, err error) {
	err = r.do(func(c *Client) error {
		msgs, err = c.Receive(recipient, max)
		return err
	})
	return msgs, err
}

// Stats implements Service.
func (r *Redialer) Stats() Stats {
	c, err := r.get()
	if err != nil {
		return Stats{}
	}
	return c.Stats()
}

// PutBlobs implements BatchService.
func (r *Redialer) PutBlobs(puts []BlobPut) (versions []int, err error) {
	err = r.do(func(c *Client) error {
		versions, err = c.PutBlobs(puts)
		return err
	})
	return versions, err
}

// GetBlobs implements BatchService.
func (r *Redialer) GetBlobs(names []string) (blobs []Blob, err error) {
	err = r.do(func(c *Client) error {
		blobs, err = c.GetBlobs(names)
		return err
	})
	return blobs, err
}

// GetBlobsIf implements ConditionalBatchService.
func (r *Redialer) GetBlobsIf(gets []CondGet) (blobs []Blob, err error) {
	err = r.do(func(c *Client) error {
		blobs, err = c.GetBlobsIf(gets)
		return err
	})
	return blobs, err
}

// String names the wrapper for logs.
func (r *Redialer) String() string { return "redial(" + r.addr + ")" }

// interface conformance
var (
	_ Service                 = (*Redialer)(nil)
	_ BatchService            = (*Redialer)(nil)
	_ ConditionalBatchService = (*Redialer)(nil)
)
