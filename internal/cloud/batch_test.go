package cloud

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func TestPutBlobsVersionsInOrder(t *testing.T) {
	m := NewMemory()
	if _, err := m.PutBlob("warm", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	puts := []BlobPut{
		{Name: "a", Data: []byte("aa")},
		{Name: "warm", Data: []byte("v2")},
		{Name: "b", Data: []byte("bb")},
	}
	versions, err := m.PutBlobs(puts)
	if err != nil {
		t.Fatalf("PutBlobs: %v", err)
	}
	if len(versions) != 3 || versions[0] != 1 || versions[1] != 2 || versions[2] != 1 {
		t.Fatalf("versions = %v", versions)
	}
	b, err := m.GetBlob("warm")
	if err != nil || string(b.Data) != "v2" {
		t.Fatalf("after batch put: %v %v", b, err)
	}
}

func TestGetBlobsMissingYieldZeroBlob(t *testing.T) {
	m := NewMemory()
	_, _ = m.PutBlob("present", []byte("here"))
	blobs, err := m.GetBlobs([]string{"missing", "present", "also-missing"})
	if err != nil {
		t.Fatalf("GetBlobs: %v", err)
	}
	if len(blobs) != 3 {
		t.Fatalf("blobs = %d", len(blobs))
	}
	if blobs[0].Version != 0 || blobs[2].Version != 0 {
		t.Fatalf("missing blobs should be zero: %+v", blobs)
	}
	if blobs[1].Version != 1 || !bytes.Equal(blobs[1].Data, []byte("here")) {
		t.Fatalf("present blob: %+v", blobs[1])
	}
}

func TestBatchAcrossManyShards(t *testing.T) {
	m := NewMemoryShards(8)
	n := 200
	puts := make([]BlobPut, n)
	names := make([]string, n)
	for i := range puts {
		names[i] = fmt.Sprintf("vault/blob-%04d", i)
		puts[i] = BlobPut{Name: names[i], Data: []byte(names[i])}
	}
	if _, err := m.PutBlobs(puts); err != nil {
		t.Fatal(err)
	}
	blobs, err := m.GetBlobs(names)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range blobs {
		if !bytes.Equal(b.Data, []byte(names[i])) {
			t.Fatalf("blob %d round-trip: %q", i, b.Data)
		}
	}
	st := m.Stats()
	if st.Puts != int64(n) || st.Gets != int64(n) {
		t.Fatalf("batch ops must count per blob: %+v", st)
	}
}

// fullService hides Memory's BatchService implementation so the Via helpers
// exercise their sequential fallback.
type fullService struct{ inner *Memory }

func (f fullService) PutBlob(name string, data []byte) (int, error) {
	return f.inner.PutBlob(name, data)
}
func (f fullService) GetBlob(name string) (Blob, error)            { return f.inner.GetBlob(name) }
func (f fullService) DeleteBlob(name string) error                 { return f.inner.DeleteBlob(name) }
func (f fullService) ListBlobs(prefix string) ([]string, error)    { return f.inner.ListBlobs(prefix) }
func (f fullService) Send(msg Message) error                       { return f.inner.Send(msg) }
func (f fullService) Receive(r string, max int) ([]Message, error) { return f.inner.Receive(r, max) }
func (f fullService) Stats() Stats                                 { return f.inner.Stats() }

func TestViaHelpersFallBackWithoutBatchService(t *testing.T) {
	svc := fullService{inner: NewMemory()}
	if _, ok := Service(svc).(BatchService); ok {
		t.Fatal("test double must not implement BatchService")
	}
	versions, err := PutBlobsVia(svc, []BlobPut{{Name: "x", Data: []byte("1")}, {Name: "x", Data: []byte("2")}})
	if err != nil || len(versions) != 2 || versions[1] != 2 {
		t.Fatalf("PutBlobsVia fallback: %v %v", versions, err)
	}
	blobs, err := GetBlobsVia(svc, []string{"x", "missing"})
	if err != nil {
		t.Fatalf("GetBlobsVia fallback: %v", err)
	}
	if string(blobs[0].Data) != "2" || blobs[1].Version != 0 {
		t.Fatalf("fallback blobs: %+v", blobs)
	}
}

func TestGetBlobsIfSkipsUnadvanced(t *testing.T) {
	m := NewMemoryShards(4)
	_, _ = m.PutBlob("shard/0", []byte("v1-0"))
	_, _ = m.PutBlob("shard/1", []byte("v1-1"))
	v2, _ := m.PutBlob("shard/1", []byte("v2-1"))
	blobs, err := m.GetBlobsIf([]CondGet{
		{Name: "shard/0", IfNewer: 1}, // current version 1: not advanced
		{Name: "shard/1", IfNewer: 1}, // current version 2: advanced
		{Name: "missing", IfNewer: 0},
	})
	if err != nil {
		t.Fatalf("GetBlobsIf: %v", err)
	}
	if blobs[0].Version != 1 || blobs[0].Data != nil {
		t.Fatalf("unadvanced blob should ship version only: %+v", blobs[0])
	}
	if blobs[1].Version != v2 || string(blobs[1].Data) != "v2-1" {
		t.Fatalf("advanced blob should ship data: %+v", blobs[1])
	}
	if blobs[2].Version != 0 {
		t.Fatalf("missing blob should be zero: %+v", blobs[2])
	}
	// IfNewer 0 fetches unconditionally.
	blobs, err = m.GetBlobsIf([]CondGet{{Name: "shard/0"}})
	if err != nil || string(blobs[0].Data) != "v1-0" {
		t.Fatalf("unconditional fetch: %+v %v", blobs, err)
	}
}

func TestGetBlobsIfViaFallsBackWithoutConditionalService(t *testing.T) {
	svc := fullService{inner: NewMemory()}
	if _, ok := Service(svc).(ConditionalBatchService); ok {
		t.Fatal("test double must not implement ConditionalBatchService")
	}
	_, _ = svc.PutBlob("x", []byte("1"))
	_, _ = svc.PutBlob("y", []byte("1"))
	_, _ = svc.PutBlob("y", []byte("2"))
	blobs, err := GetBlobsIfVia(svc, []CondGet{{Name: "x", IfNewer: 1}, {Name: "y", IfNewer: 1}})
	if err != nil {
		t.Fatalf("GetBlobsIfVia fallback: %v", err)
	}
	if blobs[0].Version != 1 || blobs[0].Data != nil {
		t.Fatalf("fallback should strip unadvanced data: %+v", blobs[0])
	}
	if blobs[1].Version != 2 || string(blobs[1].Data) != "2" {
		t.Fatalf("fallback should keep advanced data: %+v", blobs[1])
	}
}

// TestShardedMemoryConcurrentStress hammers every operation of the sharded
// store from many goroutines. Run under -race (the CI does) it is the
// regression test for the lock-striping refactor; without -race it still
// verifies the final state and counters add up.
func TestShardedMemoryConcurrentStress(t *testing.T) {
	m := NewMemory()
	const (
		workers      = 16
		blobsPerWork = 40
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			prefix := fmt.Sprintf("cell-%02d", w)
			for i := 0; i < blobsPerWork; i++ {
				name := fmt.Sprintf("%s/vault/doc-%03d", prefix, i)
				if _, err := m.PutBlob(name, []byte(name)); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				if i%4 == 0 {
					puts := []BlobPut{
						{Name: name, Data: []byte("v2")},
						{Name: name + "-side", Data: []byte("side")},
					}
					if _, err := m.PutBlobs(puts); err != nil {
						t.Errorf("batch put: %v", err)
						return
					}
				}
				if _, err := m.GetBlob(name); err != nil {
					t.Errorf("get: %v", err)
					return
				}
				if _, err := m.GetBlobs([]string{name, "nope"}); err != nil {
					t.Errorf("batch get: %v", err)
					return
				}
				if err := m.Send(Message{From: prefix, To: fmt.Sprintf("cell-%02d", (w+1)%workers), Body: []byte("ping")}); err != nil {
					t.Errorf("send: %v", err)
					return
				}
				if _, err := m.Receive(prefix, 4); err != nil {
					t.Errorf("receive: %v", err)
					return
				}
				if i%8 == 0 {
					if _, err := m.ListBlobs(prefix); err != nil {
						t.Errorf("list: %v", err)
						return
					}
					if err := m.DeleteBlob(name + "-gone"); err != nil {
						t.Errorf("delete: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	st := m.Stats()
	wantPuts := int64(workers * (blobsPerWork + 2*(blobsPerWork/4)))
	if st.Puts != wantPuts {
		t.Fatalf("Puts = %d, want %d", st.Puts, wantPuts)
	}
	if st.Sends != int64(workers*blobsPerWork) {
		t.Fatalf("Sends = %d", st.Sends)
	}
	names, err := m.ListBlobs("")
	if err != nil {
		t.Fatal(err)
	}
	// Every worker left blobsPerWork main blobs plus blobsPerWork/4 side blobs.
	want := workers * (blobsPerWork + blobsPerWork/4)
	if len(names) != want {
		t.Fatalf("final blob count = %d, want %d", len(names), want)
	}
}

func TestSingleShardMatchesDefault(t *testing.T) {
	for _, shards := range []int{1, 4, DefaultShards} {
		m := NewMemoryShards(shards)
		if m.ShardCount() != shards {
			t.Fatalf("ShardCount = %d, want %d", m.ShardCount(), shards)
		}
		for i := 0; i < 50; i++ {
			name := fmt.Sprintf("doc-%02d", i)
			if _, err := m.PutBlob(name, []byte(name)); err != nil {
				t.Fatal(err)
			}
		}
		names, err := m.ListBlobs("")
		if err != nil || len(names) != 50 {
			t.Fatalf("shards=%d: list %d %v", shards, len(names), err)
		}
		for i := 1; i < len(names); i++ {
			if names[i-1] >= names[i] {
				t.Fatalf("shards=%d: names not sorted", shards)
			}
		}
	}
}
