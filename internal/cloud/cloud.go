// Package cloud simulates the untrusted infrastructure of the trusted-cells
// architecture: a highly available blob store holding the encrypted personal
// vaults, and mailboxes providing asynchronous communication between cells.
//
// By definition the infrastructure "does not benefit from the hardware
// security of the trusted cell and is therefore considered untrusted"; the
// threat model is a weakly-malicious adversary that may try to read, tamper
// with, replay or drop data as long as it cannot be convicted. The package
// therefore lets tests and experiments inject adversarial behaviours and
// verifies that cells detect every integrity violation.
package cloud

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"
)

// Errors returned by the service.
var (
	ErrBlobNotFound = errors.New("cloud: blob not found")
	ErrUnavailable  = errors.New("cloud: service temporarily unavailable")
	ErrMailboxEmpty = errors.New("cloud: mailbox empty")
)

// Blob is a named, versioned, opaque byte string. Cells only ever upload
// sealed envelopes, so the cloud sees ciphertext.
type Blob struct {
	Name    string
	Version int
	Data    []byte
	Stored  time.Time
}

// Message is one mailbox item exchanged between cells through the cloud.
type Message struct {
	ID   string
	From string
	To   string
	Kind string
	Body []byte
	Sent time.Time
	Seq  uint64
}

// Service is the API the untrusted infrastructure offers to cells.
type Service interface {
	// PutBlob stores data under name and returns the new version.
	PutBlob(name string, data []byte) (int, error)
	// GetBlob returns the latest version of the blob.
	GetBlob(name string) (Blob, error)
	// DeleteBlob removes a blob.
	DeleteBlob(name string) error
	// ListBlobs returns the names with the given prefix, sorted.
	ListBlobs(prefix string) ([]string, error)
	// Send delivers a message to the recipient's mailbox.
	Send(msg Message) error
	// Receive pops up to max pending messages for the recipient.
	Receive(recipient string, max int) ([]Message, error)
	// Stats returns service-side counters.
	Stats() Stats
}

// Stats counts the operations the infrastructure served, plus the adversarial
// actions it silently performed. Experiments use it to report detection
// rates.
type Stats struct {
	Puts, Gets, Deletes, Lists int64
	Sends, Receives            int64
	BytesStored                int64
	TamperedBlobs              int64
	ReplayedBlobs              int64
	DroppedBlobs               int64
	DroppedMessages            int64
	ObservedBlobs              int64
}

// AdversaryMode selects how the infrastructure misbehaves.
type AdversaryMode int

// Adversary modes.
const (
	// Honest follows the protocol exactly.
	Honest AdversaryMode = iota
	// HonestButCurious follows the protocol but records everything it sees
	// (the confidentiality experiments check that what it sees is sealed).
	HonestButCurious
	// Tampering flips bytes in stored blobs with probability TamperRate.
	Tampering
	// Replaying returns stale versions of updated blobs with probability
	// ReplayRate.
	Replaying
	// Dropping silently loses blobs and messages with probability DropRate.
	Dropping
)

// String names the mode.
func (m AdversaryMode) String() string {
	switch m {
	case Honest:
		return "honest"
	case HonestButCurious:
		return "honest-but-curious"
	case Tampering:
		return "tampering"
	case Replaying:
		return "replaying"
	case Dropping:
		return "dropping"
	default:
		return fmt.Sprintf("adversary(%d)", int(m))
	}
}

// AdversaryConfig parameterises the misbehaviour.
type AdversaryConfig struct {
	Mode       AdversaryMode
	TamperRate float64
	ReplayRate float64
	DropRate   float64
	// Seed makes the adversary deterministic for reproducible experiments.
	Seed int64
}

// Memory is an in-process implementation of Service with adversary
// injection. It is the substrate for simulations; the TCP server in this
// package exposes the same behaviour over the network.
type Memory struct {
	mu        sync.Mutex
	blobs     map[string]Blob
	history   map[string][]Blob // previous versions, used by the replaying adversary
	mailboxes map[string][]Message
	nextMsg   uint64
	stats     Stats
	adv       AdversaryConfig
	rng       *rand.Rand
	// observations collected by an honest-but-curious adversary.
	observations [][]byte
	// unavailableUntil simulates outages.
	unavailableUntil time.Time
	now              func() time.Time
}

// NewMemory creates an honest in-memory cloud service.
func NewMemory() *Memory {
	return NewMemoryWithAdversary(AdversaryConfig{Mode: Honest, Seed: 1})
}

// NewMemoryWithAdversary creates a service with the given adversarial
// behaviour.
func NewMemoryWithAdversary(cfg AdversaryConfig) *Memory {
	return &Memory{
		blobs:     make(map[string]Blob),
		history:   make(map[string][]Blob),
		mailboxes: make(map[string][]Message),
		adv:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		now:       time.Now,
	}
}

// SetClock overrides the service clock (used by simulations).
func (m *Memory) SetClock(now func() time.Time) {
	m.mu.Lock()
	m.now = now
	m.mu.Unlock()
}

// SetOutage makes the service return ErrUnavailable until t.
func (m *Memory) SetOutage(until time.Time) {
	m.mu.Lock()
	m.unavailableUntil = until
	m.mu.Unlock()
}

func (m *Memory) availableLocked() error {
	if !m.unavailableUntil.IsZero() && m.now().Before(m.unavailableUntil) {
		return ErrUnavailable
	}
	return nil
}

// PutBlob stores data under name.
func (m *Memory) PutBlob(name string, data []byte) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.availableLocked(); err != nil {
		return 0, err
	}
	m.stats.Puts++
	m.stats.BytesStored += int64(len(data))

	if m.adv.Mode == Dropping && m.rng.Float64() < m.adv.DropRate {
		// Pretend success but do not store: a silently lossy provider.
		m.stats.DroppedBlobs++
		old := m.blobs[name]
		return old.Version + 1, nil
	}

	stored := append([]byte(nil), data...)
	if m.adv.Mode == Tampering && m.rng.Float64() < m.adv.TamperRate && len(stored) > 0 {
		stored[m.rng.Intn(len(stored))] ^= 0xFF
		m.stats.TamperedBlobs++
	}
	if m.adv.Mode == HonestButCurious {
		m.observations = append(m.observations, append([]byte(nil), data...))
		m.stats.ObservedBlobs++
	}

	old, exists := m.blobs[name]
	if exists {
		m.history[name] = append(m.history[name], old)
	}
	b := Blob{Name: name, Version: old.Version + 1, Data: stored, Stored: m.now()}
	m.blobs[name] = b
	return b.Version, nil
}

// GetBlob returns the latest (or, for a replaying adversary, possibly a
// stale) version of the blob.
func (m *Memory) GetBlob(name string) (Blob, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.availableLocked(); err != nil {
		return Blob{}, err
	}
	m.stats.Gets++
	b, ok := m.blobs[name]
	if !ok {
		return Blob{}, ErrBlobNotFound
	}
	if m.adv.Mode == Replaying && len(m.history[name]) > 0 && m.rng.Float64() < m.adv.ReplayRate {
		m.stats.ReplayedBlobs++
		old := m.history[name][m.rng.Intn(len(m.history[name]))]
		return cloneBlob(old), nil
	}
	return cloneBlob(b), nil
}

func cloneBlob(b Blob) Blob {
	c := b
	c.Data = append([]byte(nil), b.Data...)
	return c
}

// DeleteBlob removes a blob (idempotent).
func (m *Memory) DeleteBlob(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.availableLocked(); err != nil {
		return err
	}
	m.stats.Deletes++
	delete(m.blobs, name)
	delete(m.history, name)
	return nil
}

// ListBlobs returns the stored blob names with the given prefix.
func (m *Memory) ListBlobs(prefix string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.availableLocked(); err != nil {
		return nil, err
	}
	m.stats.Lists++
	var names []string
	for n := range m.blobs {
		if strings.HasPrefix(n, prefix) {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names, nil
}

// Send delivers a message to the recipient's mailbox.
func (m *Memory) Send(msg Message) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.availableLocked(); err != nil {
		return err
	}
	m.stats.Sends++
	if m.adv.Mode == Dropping && m.rng.Float64() < m.adv.DropRate {
		m.stats.DroppedMessages++
		return nil
	}
	m.nextMsg++
	msg.Seq = m.nextMsg
	if msg.ID == "" {
		msg.ID = fmt.Sprintf("msg-%08d", m.nextMsg)
	}
	if msg.Sent.IsZero() {
		msg.Sent = m.now()
	}
	msg.Body = append([]byte(nil), msg.Body...)
	m.mailboxes[msg.To] = append(m.mailboxes[msg.To], msg)
	return nil
}

// Receive pops up to max messages from the recipient's mailbox in FIFO order.
func (m *Memory) Receive(recipient string, max int) ([]Message, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.availableLocked(); err != nil {
		return nil, err
	}
	m.stats.Receives++
	box := m.mailboxes[recipient]
	if len(box) == 0 {
		return nil, nil
	}
	if max <= 0 || max > len(box) {
		max = len(box)
	}
	out := make([]Message, max)
	copy(out, box[:max])
	m.mailboxes[recipient] = box[max:]
	return out, nil
}

// Stats returns a snapshot of the service counters.
func (m *Memory) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Observations returns what an honest-but-curious provider captured. The
// confidentiality tests assert that none of it is plaintext.
func (m *Memory) Observations() [][]byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([][]byte, len(m.observations))
	for i, o := range m.observations {
		out[i] = append([]byte(nil), o...)
	}
	return out
}
