// Package cloud simulates the untrusted infrastructure of the trusted-cells
// architecture: a highly available blob store holding the encrypted personal
// vaults, and mailboxes providing asynchronous communication between cells.
//
// By definition the infrastructure "does not benefit from the hardware
// security of the trusted cell and is therefore considered untrusted"; the
// threat model is a weakly-malicious adversary that may try to read, tamper
// with, replay or drop data as long as it cannot be convicted. The package
// therefore lets tests and experiments inject adversarial behaviours and
// verifies that cells detect every integrity violation.
//
// The in-memory implementation is sharded (see Memory) so that a fleet of
// concurrent cells does not serialize behind a single lock, and exposes a
// batch API (see BatchService) that amortizes one network round-trip over
// many blobs. DESIGN.md documents both; experiment E9 measures them.
//
// Beyond the single providers (Memory in RAM, Durable on disk, Client over
// TCP), Replicated stripes the same contracts over N member backends with
// quorum writes, read repair, hinted handoff and anti-entropy, so the fleet
// keeps answering while providers fail (DESIGN.md §9, experiment E15); and
// Faulty wraps any provider with deterministic fault injection — seeded
// error rates, latency spikes, outage/flap schedules, partition masks — so
// that failure handling is tested on demand rather than observed by luck.
package cloud

import (
	"errors"
	"fmt"
	"time"
)

// Errors returned by the service.
var (
	// ErrBlobNotFound reports that no blob is stored under the requested name.
	ErrBlobNotFound = errors.New("cloud: blob not found")
	// ErrUnavailable reports a transient service failure; the caller may retry.
	ErrUnavailable = errors.New("cloud: service temporarily unavailable")
	// ErrMailboxEmpty reports that a mailbox has no pending messages.
	ErrMailboxEmpty = errors.New("cloud: mailbox empty")
	// ErrOverloaded is the sentinel behind OverloadError: the front door shed
	// the request instead of queuing it. Match with errors.Is and back off for
	// the OverloadError's RetryAfter before retrying.
	ErrOverloaded = errors.New("cloud: overloaded")
	// ErrQuotaExceeded is the sentinel behind QuotaError: a tenant crossed its
	// byte or operation budget. Match with errors.Is.
	ErrQuotaExceeded = errors.New("cloud: tenant quota exceeded")
)

// OverloadError is the typed shedding error of the admission controller (see
// Admission): the provider's write path — in practice the commit journal's
// group committer — is saturated, and rather than queuing the request
// unboundedly the front door rejected it immediately. RetryAfter is the
// server's backoff hint. It unwraps to ErrOverloaded and travels across the
// framed wire protocol intact (see respError).
type OverloadError struct {
	// RetryAfter is how long the client should wait before retrying.
	RetryAfter time.Duration
}

// Error implements error.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("cloud: overloaded; retry after %v", e.RetryAfter)
}

// Unwrap makes errors.Is(err, ErrOverloaded) true.
func (e *OverloadError) Unwrap() error { return ErrOverloaded }

// QuotaError is the typed rejection a TenantView returns when an operation
// would cross the tenant's quota. Resource names the exhausted budget:
// "bytes" (the cumulative written-byte budget — not retryable, the tenant
// must delete data or be re-provisioned) or "ops" (the sustained
// operations/sec token bucket — retryable after RetryAfter). It unwraps to
// ErrQuotaExceeded and travels across the framed wire protocol intact.
type QuotaError struct {
	// Tenant is the tenant whose budget was exhausted.
	Tenant string
	// Resource is the exhausted budget: "bytes" or "ops".
	Resource string
	// RetryAfter is the backoff after which an "ops" rejection would admit
	// the same request; zero for "bytes" rejections.
	RetryAfter time.Duration
}

// Error implements error in the fixed format the wire codec parses back.
func (e *QuotaError) Error() string {
	return fmt.Sprintf("cloud: tenant %q over %s quota", e.Tenant, e.Resource)
}

// Unwrap makes errors.Is(err, ErrQuotaExceeded) true.
func (e *QuotaError) Unwrap() error { return ErrQuotaExceeded }

// Blob is a named, versioned, opaque byte string. Cells only ever upload
// sealed envelopes, so the cloud sees ciphertext.
type Blob struct {
	Name    string
	Version int
	Data    []byte
	Stored  time.Time
}

// Message is one mailbox item exchanged between cells through the cloud.
type Message struct {
	ID   string
	From string
	To   string
	Kind string
	Body []byte
	Sent time.Time
	Seq  uint64
}

// Service is the API the untrusted infrastructure offers to cells.
type Service interface {
	// PutBlob stores data under name and returns the new version.
	//
	// Implementations must not retain data past the call: callers recycle
	// the sealed buffers through pools the moment a put returns (the
	// in-memory store copies, the TCP client writes to the socket
	// synchronously — see DESIGN.md §7.2). The same contract applies to the
	// batched PutBlobs of BatchService.
	PutBlob(name string, data []byte) (int, error)
	// GetBlob returns the latest version of the blob.
	GetBlob(name string) (Blob, error)
	// DeleteBlob removes a blob.
	DeleteBlob(name string) error
	// ListBlobs returns the names with the given prefix, sorted.
	ListBlobs(prefix string) ([]string, error)
	// Send delivers a message to the recipient's mailbox.
	Send(msg Message) error
	// Receive pops up to max pending messages for the recipient.
	Receive(recipient string, max int) ([]Message, error)
	// Stats returns service-side counters.
	Stats() Stats
}

// Stats counts the operations the infrastructure served, plus the adversarial
// actions it silently performed. Experiments use it to report detection
// rates.
type Stats struct {
	Puts, Gets, Deletes, Lists int64
	Sends, Receives            int64
	BytesStored                int64
	TamperedBlobs              int64
	ReplayedBlobs              int64
	DroppedBlobs               int64
	DroppedMessages            int64
	ObservedBlobs              int64
	RolledBackBlobs            int64
	ForkedBlobs                int64
}

// AdversaryMode selects how the infrastructure misbehaves.
type AdversaryMode int

// Adversary modes.
const (
	// Honest follows the protocol exactly.
	Honest AdversaryMode = iota
	// HonestButCurious follows the protocol but records everything it sees
	// (the confidentiality experiments check that what it sees is sealed).
	HonestButCurious
	// Tampering flips bytes in stored blobs with probability TamperRate.
	Tampering
	// Replaying returns stale versions of updated blobs with probability
	// ReplayRate.
	Replaying
	// Dropping silently loses blobs and messages with probability DropRate.
	Dropping
	// Rollback serves stale blob contents under the *current* version number
	// with probability RollbackRate, so plain version checks pass and only an
	// authenticated freshness protocol (signed Merkle roots + monotonic
	// epochs, see the sync package) can convict the provider.
	Rollback
	// Fork serves divergent states to different clients: once active, writes
	// are diverted into per-client branches (see Adversary.ClientView) and
	// every client observes only its own branch — the equivocation attack of
	// fork-consistency literature. Clients without a branch of their own are
	// pinned to the fork-point state.
	Fork
)

// String names the mode.
func (m AdversaryMode) String() string {
	switch m {
	case Honest:
		return "honest"
	case HonestButCurious:
		return "honest-but-curious"
	case Tampering:
		return "tampering"
	case Replaying:
		return "replaying"
	case Dropping:
		return "dropping"
	case Rollback:
		return "rollback"
	case Fork:
		return "fork"
	default:
		return fmt.Sprintf("adversary(%d)", int(m))
	}
}

// AdversaryConfig parameterises the misbehaviour.
type AdversaryConfig struct {
	Mode       AdversaryMode
	TamperRate float64
	ReplayRate float64
	DropRate   float64
	// RollbackRate is the probability that a read of an updated blob is
	// answered with stale contents under the current version number.
	RollbackRate float64
	// Seed makes the adversary deterministic for reproducible experiments.
	Seed int64
}
