package cloud

// This file implements the disk-backed provider: cloud.Durable offers the
// exact same Service / BatchService / ConditionalBatchService contracts as
// the in-memory store, but every acknowledged write survives a process kill.
// The paper's supporting server is "untrusted but highly available" — PRs 1–4
// modelled the untrusted half (adversary injection lives in Memory); Durable
// models the availability half: a provider that restarts without losing the
// sealed vaults entrusted to it.
//
// Layout: the store is FNV-striped over the same shardIndexOf hash as Memory,
// one storage.PersistentKV per shard rooted at <dir>/shard-NNN. Blobs and
// mailbox messages share each shard's run files under distinct key prefixes:
//
//	b:<name>                    blob   → uvarint version, 8B stored-unixnano, data
//	m:<recipient>\x00<seq hex>  mailbox→ binary Message (FIFO by zero-padded seq)
//
// Batched operations group their arguments by shard exactly like Memory and
// apply the per-shard groups in parallel goroutines. Durability comes from
// the cross-shard commit journal (journal.go): the shard engines run without
// WALs, and a whole batch is acknowledged after ONE fsync'd journal record —
// not one barrier per shard — which is what holds E13's durability overhead
// near the memory provider. Clients — including
// the TCP server, which serves any Service — cannot tell the two backends
// apart except by killing the process. DESIGN.md §8 documents the format and
// the recovery protocol; experiment E13 measures the durability overhead and
// the recovery time.

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"trustedcells/internal/storage"
)

// DurableOptions configure a disk-backed provider. The zero value is usable:
// every field falls back to a default, and commits are fsync'd.
type DurableOptions struct {
	// Shards is the FNV stripe count (and on-disk shard-directory count). It
	// is fixed at first open and recorded in META.json; reopening an existing
	// store always uses the recorded value. Defaults to DefaultShards.
	Shards int
	// MemtableBytes bounds each shard's RAM write buffer before it is
	// checkpointed into a run. Defaults to 512 KiB.
	MemtableBytes int
	// MaxRuns bounds each shard's run count before background compaction.
	// Defaults to 8; negative disables automatic compaction.
	MaxRuns int
	// NoSync skips the commit journal's fsync — the ablation knob separating
	// encoding cost from the disk barrier itself. Journal records are still
	// written, so recovery behaves identically; acknowledged writes merely
	// depend on the OS having flushed them.
	NoSync bool
	// JournalBytes is the commit-journal size that triggers a checkpoint
	// (flush every shard, reset the journal). Zero uses the default (32 MiB).
	JournalBytes int64
	// CacheBytes is the capacity of the block cache shared by every shard:
	// run segments are kept in RAM after a read so hot point lookups never
	// touch the device. Zero uses the default (16 MiB); negative disables the
	// cache — the ablation knob of experiment E18.
	CacheBytes int64
	// BloomBitsPerKey sizes the per-run bloom filters that let negative
	// lookups skip runs without a device read. Zero uses the storage-layer
	// default (~10 bits/key); negative disables the filters.
	BloomBitsPerKey int
	// CompactionConcurrency bounds how many shards may compact at once. Zero
	// uses the default (2); negative removes the bound.
	CompactionConcurrency int
	// CompactionBytesPerSec caps the combined compaction read+write bandwidth
	// across all shards, smoothing foreground p99 during maintenance. Zero
	// (the default) leaves the bandwidth unmetered.
	CompactionBytesPerSec int64
}

// DefaultDurableOptions are sized for a provider shard serving a cell fleet.
func DefaultDurableOptions() DurableOptions {
	return DurableOptions{
		Shards:                DefaultShards,
		MemtableBytes:         512 << 10,
		MaxRuns:               8,
		CacheBytes:            16 << 20,
		CompactionConcurrency: 2,
	}
}

// DurableRecovery aggregates what OpenDurable had to replay and repair across
// all shards to restore the store.
type DurableRecovery struct {
	// Shards is the shard count recovered (from META.json).
	Shards int
	// RecoveredRuns counts the run descriptors rebuilt by re-parsing the runs
	// devices.
	RecoveredRuns int
	// ReplayedRecords / ReplayedOps count the log records and the individual
	// operations re-applied to memtables — commit-journal records (the
	// store's own log) plus any legacy per-shard WAL records found on disk.
	ReplayedRecords int
	ReplayedOps     int
	// DuplicateRecords counts WAL records skipped because their sequence had
	// already been applied.
	DuplicateRecords int
	// DiscardedWALBytes / DiscardedRunBytes are the torn tails truncated
	// during recovery (unacknowledged appends, mid-flush crashes).
	DiscardedWALBytes int64
	DiscardedRunBytes int64
	// JournalRecords / JournalOps count the commit-journal records replayed
	// into the shard engines (the cross-shard durability log; each record is
	// one acknowledged write batch). DiscardedJournalBytes is the journal's
	// torn unacknowledged tail.
	JournalRecords        int
	JournalOps            int
	DiscardedJournalBytes int64
	// PendingMessages is the number of undelivered mailbox messages found.
	PendingMessages int
	// Elapsed is the wall-clock duration of OpenDurable, including all shard
	// recoveries (which run in parallel).
	Elapsed time.Duration
}

// durableShard is one stripe of the store. The write mutex serializes
// read-modify-write sequences (version assignment, mailbox pops) per shard;
// it is released before the journal commit so concurrent writers on the same
// shard share the commit barrier. seq is the per-shard commit sequence: it is
// assigned in the same critical section that applies the ops, so sorting
// journal groups by (shard, seq) at replay reconstructs apply order.
type durableShard struct {
	wmu sync.Mutex
	kv  *storage.PersistentKV
	seq uint64
}

// Durable is the disk-backed implementation of Service, BatchService and
// ConditionalBatchService. All methods are safe for concurrent use.
type Durable struct {
	dir    string
	shards []*durableShard
	stats  counters

	// cache and limiter are shared across every shard: one RAM budget for
	// hot read segments, one maintenance-bandwidth budget for compactions.
	cache   *storage.BlockCache
	limiter *storage.CompactionLimiter

	// journal is the cross-shard commit log — the store's actual durability
	// barrier (see journal.go). Commits hold jmu for reading; a checkpoint
	// (flush all shards, reset the journal) holds it exclusively.
	jmu     sync.RWMutex
	journal *commitJournal

	// nextMsg is the global message sequence; restoreMessageSeq re-seeds it
	// from the surviving mailbox keys on open.
	nextMsg atomic.Uint64

	cfgMu sync.RWMutex
	now   func() time.Time

	recovery DurableRecovery
}

// durableMeta is persisted as META.json at first open so the shard count —
// which determines where every key lives — can never drift across restarts.
type durableMeta struct {
	Version int `json:"version"`
	Shards  int `json:"shards"`
}

const durableMetaFile = "META.json"

// Key prefixes inside each shard's keyspace.
const (
	blobKeyPrefix = "b:"
	msgKeyPrefix  = "m:"
)

// OpenDurable opens (creating if needed) a disk-backed provider rooted at
// dir, recovering every shard in parallel: runs are re-parsed, torn tails
// truncated, and the commit journal replayed, so the store resumes with
// exactly the state covered by the last acknowledged commit.
func OpenDurable(dir string, opts DurableOptions) (*Durable, error) {
	start := time.Now()
	def := DefaultDurableOptions()
	if opts.Shards <= 0 {
		opts.Shards = def.Shards
	}
	if opts.MemtableBytes <= 0 {
		opts.MemtableBytes = def.MemtableBytes
	}
	if opts.MaxRuns == 0 {
		opts.MaxRuns = def.MaxRuns
	}
	if opts.CacheBytes == 0 {
		opts.CacheBytes = def.CacheBytes
	}
	if opts.CompactionConcurrency == 0 {
		opts.CompactionConcurrency = def.CompactionConcurrency
	}
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, fmt.Errorf("cloud: open durable store: %w", err)
	}
	shards, err := loadOrInitMeta(dir, opts.Shards)
	if err != nil {
		return nil, err
	}

	d := &Durable{
		dir:     dir,
		shards:  make([]*durableShard, shards),
		now:     time.Now,
		cache:   storage.NewBlockCache(opts.CacheBytes),
		limiter: storage.NewCompactionLimiter(opts.CompactionBytesPerSec, opts.CompactionConcurrency),
	}
	popts := storage.PersistentOptions{
		MemtableBytes:   opts.MemtableBytes,
		MaxRuns:         opts.MaxRuns,
		BloomBitsPerKey: opts.BloomBitsPerKey,
		Cache:           d.cache,
		Limiter:         d.limiter,
		// The shard engines run without WALs: the cross-shard commit journal
		// is the durability barrier (one fsync per batch instead of one per
		// shard) AND the replay log (recoverJournal re-applies everything
		// since the last checkpoint). A per-shard WAL would write every
		// value a second time for no additional safety.
		DisableWAL: true,
	}
	errs := make([]error, shards)
	var wg sync.WaitGroup
	for i := range d.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			kv, err := storage.OpenPersistentKV(filepath.Join(dir, fmt.Sprintf("shard-%03d", i)), popts)
			if err != nil {
				errs[i] = fmt.Errorf("cloud: shard %d: %w", i, err)
				return
			}
			d.shards[i] = &durableShard{kv: kv}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			for _, s := range d.shards {
				if s != nil {
					_ = s.kv.Close()
				}
			}
			return nil, err
		}
	}

	d.recovery.Shards = shards
	for _, s := range d.shards {
		rec := s.kv.Recovery()
		d.recovery.RecoveredRuns += rec.RecoveredRuns
		d.recovery.ReplayedRecords += rec.WALRecords
		d.recovery.ReplayedOps += rec.WALOps
		d.recovery.DuplicateRecords += rec.WALDuplicates
		d.recovery.DiscardedWALBytes += rec.DiscardedWALBytes
		d.recovery.DiscardedRunBytes += rec.DiscardedRunBytes
	}
	if err := d.recoverJournal(dir, opts); err != nil {
		_ = d.Close()
		return nil, err
	}
	if err := d.restoreMessageSeq(); err != nil {
		_ = d.Close()
		return nil, err
	}
	d.recovery.Elapsed = time.Since(start)
	return d, nil
}

// recoverJournal replays the commit journal into the shard engines and leaves
// it empty. Replay is a blind idempotent rewrite in (shard, seq) order — the
// order the live store applied the ops — so re-applying ops that an early
// memtable flush already checkpointed into runs changes nothing, and the
// journal alone restores every acknowledged write since the last checkpoint.
// Afterwards every shard is flushed so the replayed state lives in fsync'd
// runs, and the journal is reset.
func (d *Durable) recoverJournal(dir string, opts DurableOptions) error {
	j, err := openJournal(dir, opts.JournalBytes, opts.NoSync)
	if err != nil {
		return err
	}
	d.journal = j
	groups, records, end, discarded, err := j.scan()
	if err != nil {
		return err
	}
	j.log.SeekHead(end)
	d.recovery.JournalRecords = records
	d.recovery.DiscardedJournalBytes = discarded
	if records == 0 && discarded == 0 {
		return nil // clean journal: nothing to replay, the extent is all zeros
	}
	sortForReplay(groups)
	for _, g := range groups {
		if g.shard < 0 || g.shard >= len(d.shards) {
			return fmt.Errorf("cloud: journal group for shard %d of %d: %w",
				g.shard, len(d.shards), storage.ErrCorrupt)
		}
		if _, err := d.shards[g.shard].kv.ApplyNoSync(g.ops); err != nil {
			return fmt.Errorf("cloud: journal replay shard %d: %w", g.shard, err)
		}
		d.recovery.JournalOps += len(g.ops)
	}
	d.recovery.ReplayedRecords += records
	d.recovery.ReplayedOps += d.recovery.JournalOps
	if err := d.flushShards(); err != nil {
		return err
	}
	return j.reset()
}

// commit makes one write batch durable: a single journal record, a single
// (group-committed) fsync. Callers have already applied the ops to the shard
// engines under their write mutexes; the groups carry the per-shard sequence
// numbers assigned there. When the journal outgrows its threshold the
// committer checkpoints: every shard's memtable is flushed into fsync'd runs
// and the journal is reset, bounding both journal size and replay time.
func (d *Durable) commit(groups []journalGroup) error {
	if len(groups) == 0 {
		return nil
	}
	d.jmu.RLock()
	checkpoint, err := d.journal.append(groups)
	d.jmu.RUnlock()
	if err != nil {
		return err
	}
	if checkpoint {
		return d.checkpoint(false)
	}
	return nil
}

// checkpoint flushes every shard and resets the journal. It holds the
// journal lock exclusively, so no commit is mid-append: every record that
// survives the reset was appended after, and any write applied to a memtable
// but not yet journaled is captured by the shard flush — either way each
// acknowledged write stays durable. force skips the size re-check (used by
// Flush; threshold-triggered commits re-check because a racing committer may
// have already checkpointed).
func (d *Durable) checkpoint(force bool) error {
	d.jmu.Lock()
	defer d.jmu.Unlock()
	if !force && d.journal.log.Head() <= d.journal.limit {
		return nil
	}
	if err := d.flushShards(); err != nil {
		return err
	}
	return d.journal.reset()
}

// loadOrInitMeta reads the committed shard count, writing it on first open.
func loadOrInitMeta(dir string, shards int) (int, error) {
	path := filepath.Join(dir, durableMetaFile)
	raw, err := os.ReadFile(path)
	if err == nil {
		var meta durableMeta
		if err := json.Unmarshal(raw, &meta); err != nil || meta.Shards < 1 {
			return 0, fmt.Errorf("cloud: corrupt %s: %v", path, err)
		}
		return meta.Shards, nil
	}
	if !os.IsNotExist(err) {
		return 0, fmt.Errorf("cloud: read %s: %w", path, err)
	}
	raw, _ = json.Marshal(durableMeta{Version: 1, Shards: shards})
	if err := os.WriteFile(path, raw, 0o600); err != nil {
		return 0, fmt.Errorf("cloud: write %s: %w", path, err)
	}
	// The pinned shard count decides where every key lives — make its
	// directory entry durable before any shard accepts writes.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return shards, nil
}

// restoreMessageSeq rescans the mailbox keyspace for the highest delivered
// sequence number, so new sends keep sorting after (and never colliding with)
// messages that were pending at the crash.
func (d *Durable) restoreMessageSeq() error {
	var maxSeq uint64
	for i, s := range d.shards {
		err := s.kv.Scan([]byte(msgKeyPrefix), keyUpperBound([]byte(msgKeyPrefix)), func(k, _ []byte) bool {
			if seq, ok := msgSeqFromKey(k); ok && seq > maxSeq {
				maxSeq = seq
			}
			d.recovery.PendingMessages++
			return true
		})
		if err != nil {
			return fmt.Errorf("cloud: shard %d mailbox scan: %w", i, err)
		}
	}
	d.nextMsg.Store(maxSeq)
	return nil
}

// RecoveryStats reports what the last OpenDurable replayed and repaired.
func (d *Durable) RecoveryStats() DurableRecovery { return d.recovery }

// ShardCount returns the number of shards of the store.
func (d *Durable) ShardCount() int { return len(d.shards) }

// Dir returns the store's root directory.
func (d *Durable) Dir() string { return d.dir }

// SetClock overrides the service clock (used by simulations).
func (d *Durable) SetClock(now func() time.Time) {
	d.cfgMu.Lock()
	d.now = now
	d.cfgMu.Unlock()
}

func (d *Durable) clock() time.Time {
	d.cfgMu.RLock()
	now := d.now
	d.cfgMu.RUnlock()
	return now()
}

func (d *Durable) shardFor(key string) *durableShard {
	return d.shards[shardIndexOf(key, len(d.shards))]
}

// Close flushes every shard, retires the commit journal and closes the
// underlying files.
func (d *Durable) Close() error {
	d.jmu.Lock()
	defer d.jmu.Unlock()
	var err error
	for _, s := range d.shards {
		if s == nil {
			continue
		}
		if e := s.kv.Close(); err == nil && e != nil {
			err = e
		}
	}
	if d.journal != nil {
		// Every shard just flushed, so the journal's records are all covered
		// by fsync'd runs: truncate it so the next open replays nothing (and
		// re-preallocates its extent then).
		if e := d.journal.retire(); err == nil && e != nil {
			err = e
		}
		if e := d.journal.close(); err == nil && e != nil {
			err = e
		}
	}
	return err
}

// Crash simulates a process kill for recovery tests and experiments: the
// journal and all shards are abandoned without flushes or final fsyncs,
// leaving the on-disk state exactly as the workload's own commits wrote it.
func (d *Durable) Crash() {
	for _, s := range d.shards {
		s.kv.Crash()
	}
	if d.journal != nil {
		_ = d.journal.close()
	}
}

// Compact forces a full compaction of every shard (normally compaction runs
// in the background when a shard exceeds MaxRuns). Shards compact in
// parallel goroutines; the shared CompactionLimiter bounds how many actually
// run at once and holds their combined I/O to the configured bytes/sec
// budget, so even a store-wide compaction cannot starve foreground traffic.
func (d *Durable) Compact() error {
	errs := make([]error, len(d.shards))
	var wg sync.WaitGroup
	for i := range d.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := d.shards[i].kv.Compact(); err != nil {
				errs[i] = fmt.Errorf("cloud: compact shard %d: %w", i, err)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Flush checkpoints every shard's memtable into a run and resets the commit
// journal (used by experiments that want subsequent reads to exercise the
// on-disk read path).
func (d *Durable) Flush() error {
	return d.checkpoint(true)
}

// flushShards checkpoints every shard's memtable into fsync'd runs, in
// parallel: each flush pays its own run write and device sync, and serializing
// 32 of them would put the whole fan-out back on the commit path whenever a
// checkpoint triggers.
func (d *Durable) flushShards() error {
	errs := make([]error, len(d.shards))
	var wg sync.WaitGroup
	for i := range d.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := d.shards[i].kv.Flush(); err != nil {
				errs[i] = fmt.Errorf("cloud: flush shard %d: %w", i, err)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// EngineStats sums the storage-engine counters across shards (flushes,
// compactions, resident runs, bloom skips, block-cache hits and misses) —
// the observability hook for E13/E18 and tests.
func (d *Durable) EngineStats() storage.Stats {
	var total storage.Stats
	for _, s := range d.shards {
		st := s.kv.Stats()
		total.Puts += st.Puts
		total.Gets += st.Gets
		total.Deletes += st.Deletes
		total.Flushes += st.Flushes
		total.Compactions += st.Compactions
		total.BloomSkips += st.BloomSkips
		total.CacheHits += st.CacheHits
		total.CacheMisses += st.CacheMisses
		total.RunReads += st.RunReads
		total.Runs += st.Runs
		total.MemtableLen += st.MemtableLen
		total.MemtableB += st.MemtableB
	}
	return total
}

// ShardStats returns each shard's storage-engine counters (index = shard
// number): the per-shard view of EngineStats, for operators watching cache
// hit and bloom skip rates shard by shard.
func (d *Durable) ShardStats() []storage.Stats {
	out := make([]storage.Stats, len(d.shards))
	for i, s := range d.shards {
		out[i] = s.kv.Stats()
	}
	return out
}

// CacheStats reports the shared block cache's cumulative hits and misses and
// its resident bytes (zeros when the cache is disabled).
func (d *Durable) CacheStats() (hits, misses, bytes int64) {
	hits, misses = d.cache.Stats()
	return hits, misses, d.cache.Bytes()
}

// --- key and value codecs ---------------------------------------------------

func blobKey(name string) []byte {
	return append([]byte(blobKeyPrefix), name...)
}

// msgKey orders a recipient's mailbox by zero-padded sequence number, so a
// prefix scan pops messages in FIFO order.
func msgKey(recipient string, seq uint64) []byte {
	return []byte(fmt.Sprintf("%s%s\x00%016x", msgKeyPrefix, recipient, seq))
}

func msgPrefix(recipient string) []byte {
	return []byte(msgKeyPrefix + recipient + "\x00")
}

// msgSeqFromKey parses the sequence number back out of a mailbox key.
func msgSeqFromKey(k []byte) (uint64, bool) {
	if len(k) < 17 {
		return 0, false
	}
	var seq uint64
	if _, err := fmt.Sscanf(string(k[len(k)-16:]), "%016x", &seq); err != nil {
		return 0, false
	}
	return seq, true
}

// keyUpperBound returns the smallest key greater than every key with the
// given prefix (nil when the prefix is all 0xFF), for use as a Scan end.
func keyUpperBound(prefix []byte) []byte {
	end := append([]byte(nil), prefix...)
	for i := len(end) - 1; i >= 0; i-- {
		if end[i] < 0xFF {
			end[i]++
			return end[:i+1]
		}
	}
	return nil
}

// encodeBlobValue serializes a blob's shard record: uvarint version, 8-byte
// stored-time unixnano, payload bytes.
func encodeBlobValue(version int, stored time.Time, data []byte) []byte {
	buf := make([]byte, 0, binary.MaxVarintLen64+8+len(data))
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(version))
	buf = append(buf, tmp[:n]...)
	var ts [8]byte
	binary.BigEndian.PutUint64(ts[:], uint64(stored.UnixNano()))
	buf = append(buf, ts[:]...)
	return append(buf, data...)
}

func decodeBlobValue(b []byte) (version int, stored time.Time, data []byte, err error) {
	v, n := binary.Uvarint(b)
	if n <= 0 || len(b) < n+8 {
		return 0, time.Time{}, nil, storage.ErrCorrupt
	}
	ns := int64(binary.BigEndian.Uint64(b[n : n+8]))
	return int(v), time.Unix(0, ns).UTC(), b[n+8:], nil
}

// encodeMessage serializes a mailbox message: uvarint-length-prefixed ID,
// From, To, Kind and Body, then 8-byte sent-unixnano and 8-byte sequence.
func encodeMessage(m Message) []byte {
	size := 5*binary.MaxVarintLen64 + len(m.ID) + len(m.From) + len(m.To) + len(m.Kind) + len(m.Body) + 16
	buf := make([]byte, 0, size)
	var tmp [binary.MaxVarintLen64]byte
	appendField := func(b []byte) {
		n := binary.PutUvarint(tmp[:], uint64(len(b)))
		buf = append(buf, tmp[:n]...)
		buf = append(buf, b...)
	}
	appendField([]byte(m.ID))
	appendField([]byte(m.From))
	appendField([]byte(m.To))
	appendField([]byte(m.Kind))
	appendField(m.Body)
	var fixed [16]byte
	binary.BigEndian.PutUint64(fixed[:8], uint64(m.Sent.UnixNano()))
	binary.BigEndian.PutUint64(fixed[8:], m.Seq)
	return append(buf, fixed[:]...)
}

func decodeMessage(b []byte) (Message, error) {
	var m Message
	field := func() ([]byte, bool) {
		l, n := binary.Uvarint(b)
		if n <= 0 || uint64(len(b)-n) < l {
			return nil, false
		}
		out := b[n : n+int(l)]
		b = b[n+int(l):]
		return out, true
	}
	id, ok1 := field()
	from, ok2 := field()
	to, ok3 := field()
	kind, ok4 := field()
	body, ok5 := field()
	if !ok1 || !ok2 || !ok3 || !ok4 || !ok5 || len(b) != 16 {
		return Message{}, storage.ErrCorrupt
	}
	m.ID, m.From, m.To, m.Kind = string(id), string(from), string(to), string(kind)
	m.Body = append([]byte(nil), body...)
	m.Sent = time.Unix(0, int64(binary.BigEndian.Uint64(b[:8]))).UTC()
	m.Seq = binary.BigEndian.Uint64(b[8:])
	return m, nil
}

// --- Service ----------------------------------------------------------------

// currentVersion reads a blob's stored version under the shard write mutex.
func (s *durableShard) currentVersion(name string) (int, error) {
	raw, err := s.kv.Get(blobKey(name))
	if err == storage.ErrNotFound {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	v, _, _, err := decodeBlobValue(raw)
	return v, err
}

// applyShard runs ops against one shard under its write mutex and returns
// the journal group to commit: the per-shard sequence is assigned in the same
// critical section that applies the ops, so replay order equals apply order.
func (d *Durable) applyShard(si int, ops []storage.Op) (journalGroup, error) {
	s := d.shards[si]
	s.wmu.Lock()
	defer s.wmu.Unlock()
	return d.applyShardLocked(si, ops)
}

func (d *Durable) applyShardLocked(si int, ops []storage.Op) (journalGroup, error) {
	s := d.shards[si]
	g := journalGroup{shard: si, seq: s.seq, ops: ops}
	s.seq++
	if _, err := s.kv.ApplyNoSync(ops); err != nil {
		return journalGroup{}, err
	}
	return g, nil
}

// PutBlob stores data under name durably and returns the new version. The
// write is acknowledged only after its journal record is part of an fsync'd
// group commit.
func (d *Durable) PutBlob(name string, data []byte) (int, error) {
	si := shardIndexOf(name, len(d.shards))
	s := d.shards[si]
	s.wmu.Lock()
	cur, err := s.currentVersion(name)
	if err != nil {
		s.wmu.Unlock()
		return 0, err
	}
	version := cur + 1
	g, err := d.applyShardLocked(si, []storage.Op{{
		Key:   blobKey(name),
		Value: encodeBlobValue(version, d.clock(), data),
	}})
	s.wmu.Unlock()
	if err != nil {
		return 0, err
	}
	if err := d.commit([]journalGroup{g}); err != nil {
		return 0, err
	}
	d.stats.puts.Add(1)
	d.stats.bytesStored.Add(int64(len(data)))
	return version, nil
}

// GetBlob returns the latest version of the blob.
func (d *Durable) GetBlob(name string) (Blob, error) {
	d.stats.gets.Add(1)
	raw, err := d.shardFor(name).kv.Get(blobKey(name))
	if err == storage.ErrNotFound {
		return Blob{}, ErrBlobNotFound
	}
	if err != nil {
		return Blob{}, err
	}
	version, stored, data, err := decodeBlobValue(raw)
	if err != nil {
		return Blob{}, err
	}
	return Blob{Name: name, Version: version, Data: data, Stored: stored}, nil
}

// DeleteBlob removes a blob (idempotent).
func (d *Durable) DeleteBlob(name string) error {
	si := shardIndexOf(name, len(d.shards))
	g, err := d.applyShard(si, []storage.Op{{Key: blobKey(name), Delete: true}})
	if err != nil {
		return err
	}
	if err := d.commit([]journalGroup{g}); err != nil {
		return err
	}
	d.stats.deletes.Add(1)
	return nil
}

// ListBlobs returns the stored blob names with the given prefix, sorted.
func (d *Durable) ListBlobs(prefix string) ([]string, error) {
	d.stats.lists.Add(1)
	start := []byte(blobKeyPrefix + prefix)
	end := keyUpperBound(start)
	var names []string
	for i, s := range d.shards {
		err := s.kv.Scan(start, end, func(k, _ []byte) bool {
			names = append(names, string(k[len(blobKeyPrefix):]))
			return true
		})
		if err != nil {
			return nil, fmt.Errorf("cloud: shard %d list: %w", i, err)
		}
	}
	sort.Strings(names)
	return names, nil
}

// Send delivers a message to the recipient's durable mailbox.
func (d *Durable) Send(msg Message) error {
	si := shardIndexOf(msg.To, len(d.shards))
	s := d.shards[si]
	s.wmu.Lock()
	seq := d.nextMsg.Add(1)
	msg.Seq = seq
	if msg.ID == "" {
		msg.ID = fmt.Sprintf("msg-%08d", seq)
	}
	if msg.Sent.IsZero() {
		msg.Sent = d.clock()
	}
	g, err := d.applyShardLocked(si, []storage.Op{{Key: msgKey(msg.To, seq), Value: encodeMessage(msg)}})
	s.wmu.Unlock()
	if err != nil {
		return err
	}
	if err := d.commit([]journalGroup{g}); err != nil {
		return err
	}
	d.stats.sends.Add(1)
	return nil
}

// Receive pops up to max messages from the recipient's mailbox in FIFO
// order. The pop is durable: a provider restart after Receive returns will
// not re-deliver the popped messages.
func (d *Durable) Receive(recipient string, max int) ([]Message, error) {
	d.stats.receives.Add(1)
	si := shardIndexOf(recipient, len(d.shards))
	s := d.shards[si]
	s.wmu.Lock()
	prefix := msgPrefix(recipient)
	var msgs []Message
	var dels []storage.Op
	var decodeErr error
	err := s.kv.Scan(prefix, keyUpperBound(prefix), func(k, v []byte) bool {
		m, err := decodeMessage(v)
		if err != nil {
			decodeErr = fmt.Errorf("cloud: mailbox %s: %w", recipient, err)
			return false
		}
		msgs = append(msgs, m)
		dels = append(dels, storage.Op{Key: append([]byte(nil), k...), Delete: true})
		return max <= 0 || len(msgs) < max
	})
	if err == nil {
		err = decodeErr
	}
	if err != nil {
		s.wmu.Unlock()
		return nil, err
	}
	if len(dels) == 0 {
		s.wmu.Unlock()
		return nil, nil
	}
	g, err := d.applyShardLocked(si, dels)
	s.wmu.Unlock()
	if err != nil {
		return nil, err
	}
	if err := d.commit([]journalGroup{g}); err != nil {
		// The pop is already applied to the live store; swallowing the
		// messages now would lose them outright. Hand them to the caller
		// with the error: delivery succeeded, only the durability of the
		// pop is in doubt (a crash before the next successful commit may
		// re-deliver them — at-least-once, never silent loss).
		return msgs, err
	}
	return msgs, nil
}

// Stats returns a snapshot of the service counters. Counters are in-RAM
// operational telemetry and reset on restart; the data itself is durable.
func (d *Durable) Stats() Stats {
	return d.stats.snapshot()
}

// --- BatchService -----------------------------------------------------------

// PutBlobs stores every blob durably and returns the new version of each in
// argument order. Writes are grouped by shard and applied to the shard
// engines in parallel goroutines (version assignment and memtable insert,
// no I/O barrier), then the WHOLE batch is acknowledged by one fsync'd
// commit-journal record — the single disk barrier of the call.
func (d *Durable) PutBlobs(puts []BlobPut) ([]int, error) {
	versions := make([]int, len(puts))
	groups := groupKeysByShard(len(puts), len(d.shards), func(i int) string { return puts[i].Name })
	jgs := make([]journalGroup, len(groups))
	errs := make([]error, len(groups))
	var wg sync.WaitGroup
	for gi := range groups {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			jgs[gi], errs[gi] = d.putGroup(groups[gi], puts, versions)
		}(gi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := d.commit(jgs); err != nil {
		return nil, err
	}
	var bytes int64
	for _, p := range puts {
		bytes += int64(len(p.Data))
	}
	d.stats.puts.Add(int64(len(puts)))
	d.stats.bytesStored.Add(bytes)
	return versions, nil
}

// putGroup applies one shard's slice of a batched upload and returns its
// journal group; the caller commits all groups as one record.
func (d *Durable) putGroup(g shardGroup, puts []BlobPut, versions []int) (journalGroup, error) {
	s := d.shards[g.shard]
	now := d.clock()
	s.wmu.Lock()
	defer s.wmu.Unlock()
	ops := make([]storage.Op, 0, len(g.indices))
	// A batch may put the same name twice; track intra-batch versions so the
	// second occurrence sees the first.
	batchVersions := make(map[string]int)
	for _, i := range g.indices {
		name := puts[i].Name
		cur, seen := batchVersions[name]
		if !seen {
			var err error
			if cur, err = s.currentVersion(name); err != nil {
				return journalGroup{}, err
			}
		}
		version := cur + 1
		batchVersions[name] = version
		versions[i] = version
		ops = append(ops, storage.Op{
			Key:   blobKey(name),
			Value: encodeBlobValue(version, now, puts[i].Data),
		})
	}
	return d.applyShardLocked(g.shard, ops)
}

// GetBlobs returns the latest version of each named blob in argument order;
// missing names yield a zero Blob at their position.
func (d *Durable) GetBlobs(names []string) ([]Blob, error) {
	blobs := make([]Blob, len(names))
	for i, name := range names {
		b, err := d.GetBlob(name)
		if err == ErrBlobNotFound {
			continue
		}
		if err != nil {
			return nil, err
		}
		blobs[i] = b
	}
	return blobs, nil
}

// GetBlobsIf implements ConditionalBatchService: blobs whose stored version
// is still <= the requested IfNewer come back with their current Version but
// no data, exactly like the in-memory store.
func (d *Durable) GetBlobsIf(gets []CondGet) ([]Blob, error) {
	blobs := make([]Blob, len(gets))
	for i, g := range gets {
		d.stats.gets.Add(1)
		raw, err := d.shardFor(g.Name).kv.Get(blobKey(g.Name))
		if err == storage.ErrNotFound {
			continue
		}
		if err != nil {
			return nil, err
		}
		version, stored, data, err := decodeBlobValue(raw)
		if err != nil {
			return nil, err
		}
		if version <= g.IfNewer {
			blobs[i] = Blob{Name: g.Name, Version: version, Stored: stored}
			continue
		}
		blobs[i] = Blob{Name: g.Name, Version: version, Data: data, Stored: stored}
	}
	return blobs, nil
}

// interface conformance
var (
	_ Service                 = (*Durable)(nil)
	_ BatchService            = (*Durable)(nil)
	_ ConditionalBatchService = (*Durable)(nil)
)

// sanity check: prefixes must be distinct and ordered so blob scans never
// wander into mailbox keys.
var _ = func() struct{} {
	if !(strings.Compare(blobKeyPrefix, msgKeyPrefix) < 0) {
		panic("cloud: blob prefix must sort before mailbox prefix")
	}
	return struct{}{}
}()
