package cloud

import (
	"testing"

	"trustedcells/internal/storage"
)

func TestJournalRecordRoundTrip(t *testing.T) {
	in := []journalGroup{
		{shard: 0, seq: 7, ops: []storage.Op{
			{Key: []byte("b:alpha"), Value: []byte("v1")},
			{Key: []byte("b:beta"), Delete: true},
		}},
		{shard: 31, seq: 0, ops: []storage.Op{
			{Key: []byte("m:cell\x00001"), Value: make([]byte, 1024)},
		}},
	}
	out, err := decodeJournalRecord(encodeJournalRecord(in))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("groups = %d, want %d", len(out), len(in))
	}
	for gi := range in {
		if out[gi].shard != in[gi].shard || out[gi].seq != in[gi].seq || len(out[gi].ops) != len(in[gi].ops) {
			t.Fatalf("group %d = %+v, want %+v", gi, out[gi], in[gi])
		}
		for oi := range in[gi].ops {
			got, want := out[gi].ops[oi], in[gi].ops[oi]
			if string(got.Key) != string(want.Key) || string(got.Value) != string(want.Value) || got.Delete != want.Delete {
				t.Fatalf("group %d op %d = %+v, want %+v", gi, oi, got, want)
			}
		}
	}
}

func TestJournalDecodeRejectsCorruptRecords(t *testing.T) {
	valid := encodeJournalRecord([]journalGroup{
		{shard: 1, seq: 2, ops: []storage.Op{{Key: []byte("k"), Value: []byte("v")}}},
	})
	for name, payload := range map[string][]byte{
		"empty":          {},
		"truncated":      valid[:len(valid)-3],
		"trailing bytes": append(append([]byte(nil), valid...), 0xFF),
	} {
		if _, err := decodeJournalRecord(payload); err == nil {
			t.Errorf("%s: decode accepted a corrupt record", name)
		}
	}
}

func TestSortForReplayReconstructsApplyOrder(t *testing.T) {
	// Concurrent batches append journal records out of per-shard order; the
	// (shard, seq) sort must restore the order the live store applied them.
	groups := []journalGroup{
		{shard: 1, seq: 1},
		{shard: 0, seq: 2},
		{shard: 1, seq: 0},
		{shard: 0, seq: 0},
		{shard: 0, seq: 1},
	}
	sortForReplay(groups)
	want := []struct {
		shard int
		seq   uint64
	}{{0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}}
	for i, w := range want {
		if groups[i].shard != w.shard || groups[i].seq != w.seq {
			t.Fatalf("pos %d = shard %d seq %d, want shard %d seq %d",
				i, groups[i].shard, groups[i].seq, w.shard, w.seq)
		}
	}
}

// openTestJournal opens a journal with a small limit so tests stay fast.
func openTestJournal(t *testing.T, dir string) *commitJournal {
	t.Helper()
	j, err := openJournal(dir, 1<<20, false)
	if err != nil {
		t.Fatalf("openJournal: %v", err)
	}
	return j
}

func TestJournalAppendScanRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j := openTestJournal(t, dir)
	for i := 0; i < 3; i++ {
		if _, err := j.append([]journalGroup{
			{shard: i, seq: uint64(i), ops: []storage.Op{{Key: []byte{byte('a' + i)}, Value: []byte("v")}}},
		}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := j.close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Reopen and scan: every appended group comes back, and the preallocated
	// zero runway past the records is not reported as a torn tail.
	j = openTestJournal(t, dir)
	groups, records, _, discarded, err := j.scan()
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if records != 3 || len(groups) != 3 {
		t.Fatalf("records = %d groups = %d, want 3 and 3", records, len(groups))
	}
	if discarded != 0 {
		t.Fatalf("discarded = %d, want 0 (zero runway is not torn data)", discarded)
	}
	for i, g := range groups {
		if g.shard != i || g.seq != uint64(i) {
			t.Fatalf("group %d = shard %d seq %d", i, g.shard, g.seq)
		}
	}
}

func TestJournalScanStopsAtTornRecord(t *testing.T) {
	dir := t.TempDir()
	j := openTestJournal(t, dir)
	for i := 0; i < 2; i++ {
		if _, err := j.append([]journalGroup{
			{shard: i, ops: []storage.Op{{Key: []byte("key"), Value: []byte("val")}}},
		}); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	torn := j.log.Head()
	// Simulate a crash mid-append: nonzero garbage after the valid prefix.
	if _, err := j.dev.WriteAt([]byte{0xDE, 0xAD, 0xBE, 0xEF}, torn+2); err != nil {
		t.Fatalf("write garbage: %v", err)
	}
	j.close()

	j = openTestJournal(t, dir)
	_, records, end, discarded, err := j.scan()
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if records != 2 {
		t.Fatalf("records = %d, want the 2 intact ones", records)
	}
	if end != torn {
		t.Fatalf("end = %d, want %d", end, torn)
	}
	if discarded != 6 {
		t.Fatalf("discarded = %d, want 6 (torn extent up to its last nonzero byte)", discarded)
	}
}

func TestJournalResetRestoresCleanExtent(t *testing.T) {
	dir := t.TempDir()
	j := openTestJournal(t, dir)
	if _, err := j.append([]journalGroup{
		{shard: 0, ops: []storage.Op{{Key: []byte("key"), Value: []byte("val")}}},
	}); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := j.reset(); err != nil {
		t.Fatalf("reset: %v", err)
	}
	if h := j.log.Head(); h != 0 {
		t.Fatalf("head after reset = %d", h)
	}
	groups, records, _, discarded, err := j.scan()
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if records != 0 || len(groups) != 0 || discarded != 0 {
		t.Fatalf("after reset: records=%d groups=%d discarded=%d, want all zero",
			records, len(groups), discarded)
	}
	// The extent must still be preallocated (reset re-zeroes, it does not
	// shrink) so subsequent commit barriers stay data-only syncs.
	if got := j.dev.Size(); got < j.limit {
		t.Fatalf("extent after reset = %d, want >= limit %d", got, j.limit)
	}
	j.close()
}

// TestDurableJournalRestoresUnflushedWrites is the point of the journal: the
// shard engines run without WALs, so after a crash that loses every memtable,
// acknowledged writes must come back from journal replay alone.
func TestDurableJournalRestoresUnflushedWrites(t *testing.T) {
	dir := t.TempDir()
	// Large memtables: nothing is flushed to runs before the crash, so the
	// journal is the only durable copy.
	opts := DurableOptions{Shards: 4, MemtableBytes: 8 << 20}
	d, err := OpenDurable(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	puts := make([]BlobPut, 64)
	for i := range puts {
		puts[i] = BlobPut{Name: blobName(i), Data: []byte{byte(i)}}
	}
	if _, err := d.PutBlobs(puts); err != nil {
		t.Fatal(err)
	}
	if _, err := d.PutBlob("solo", []byte("one")); err != nil {
		t.Fatal(err)
	}
	d.Crash()

	d, err = OpenDurable(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	rec := d.RecoveryStats()
	if rec.JournalRecords == 0 || rec.JournalOps != 65 {
		t.Fatalf("journal replay: records=%d ops=%d, want >0 and 65", rec.JournalRecords, rec.JournalOps)
	}
	if rec.ReplayedOps != rec.JournalOps {
		t.Fatalf("ReplayedOps = %d, want the %d journal ops (shards have no WAL)", rec.ReplayedOps, rec.JournalOps)
	}
	for i := range puts {
		b, err := d.GetBlob(blobName(i))
		if err != nil || len(b.Data) != 1 || b.Data[0] != byte(i) {
			t.Fatalf("blob %d after recovery: %v %v", i, b.Data, err)
		}
	}
	if b, err := d.GetBlob("solo"); err != nil || string(b.Data) != "one" {
		t.Fatalf("solo blob after recovery: %v %v", b.Data, err)
	}
}

// TestDurableJournalReplayOrdersOverwrites overwrites the same blob several
// times, crashes, and requires the LAST acknowledged version to win — which
// only happens if replay reconstructs per-shard apply order from the (shard,
// seq) sort.
func TestDurableJournalReplayOrdersOverwrites(t *testing.T) {
	dir := t.TempDir()
	opts := DurableOptions{Shards: 2, MemtableBytes: 8 << 20}
	d, err := OpenDurable(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	var lastVersion int
	for i := 0; i < 10; i++ {
		if lastVersion, err = d.PutBlob("hot", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	d.Crash()

	d, err = OpenDurable(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	b, err := d.GetBlob("hot")
	if err != nil {
		t.Fatal(err)
	}
	if b.Version != lastVersion || len(b.Data) != 1 || b.Data[0] != 9 {
		t.Fatalf("after replay: version=%d data=%v, want version %d data [9]", b.Version, b.Data, lastVersion)
	}
}

// TestDurableCheckpointThenCrash crashes after the journal has been reset by a
// checkpoint: the pre-checkpoint writes must come back from the fsync'd runs,
// the post-checkpoint writes from the journal.
func TestDurableCheckpointThenCrash(t *testing.T) {
	dir := t.TempDir()
	opts := DurableOptions{Shards: 2, MemtableBytes: 8 << 20, JournalBytes: 4 << 10}
	d, err := OpenDurable(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Each put is larger than JournalBytes, so every commit triggers a
	// checkpoint; the final put lands in a freshly reset journal.
	big := make([]byte, 8<<10)
	for i := 0; i < 3; i++ {
		if _, err := d.PutBlob(blobName(i), append(big, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.PutBlob("tail", []byte("after-checkpoint")); err != nil {
		t.Fatal(err)
	}
	d.Crash()

	d, err = OpenDurable(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for i := 0; i < 3; i++ {
		b, err := d.GetBlob(blobName(i))
		if err != nil || len(b.Data) != len(big)+1 || b.Data[len(big)] != byte(i) {
			t.Fatalf("checkpointed blob %d after crash: len=%d err=%v", i, len(b.Data), err)
		}
	}
	if b, err := d.GetBlob("tail"); err != nil || string(b.Data) != "after-checkpoint" {
		t.Fatalf("post-checkpoint blob: %v %v", b.Data, err)
	}
}

// TestDurableCrashBeforeAnyCommit covers the empty-journal recovery path.
func TestDurableCrashBeforeAnyCommit(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, DurableOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	d.Crash()
	d, err = OpenDurable(dir, DurableOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	rec := d.RecoveryStats()
	if rec.JournalRecords != 0 || rec.DiscardedJournalBytes != 0 {
		t.Fatalf("fresh store recovery: %+v", rec)
	}
}

func blobName(i int) string {
	return "blob-" + string(rune('a'+i/26)) + string(rune('a'+i%26))
}
