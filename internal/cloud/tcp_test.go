package cloud

import (
	"bytes"
	"fmt"
	"net"
	"testing"
)

// startServer starts a TCP cloud server on a random port and returns a
// connected client plus a cleanup function.
func startServer(t *testing.T, svc Service) *Client {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := NewServer(svc)
	done := make(chan struct{})
	go func() {
		_ = srv.Serve(ln)
		close(done)
	}()
	client, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() {
		client.Close()
		srv.Close()
		<-done
	})
	return client
}

func TestTCPBlobRoundTrip(t *testing.T) {
	mem := NewMemory()
	client := startServer(t, mem)

	v, err := client.PutBlob("alice/doc-1", []byte("sealed"))
	if err != nil || v != 1 {
		t.Fatalf("PutBlob over TCP: v=%d err=%v", v, err)
	}
	b, err := client.GetBlob("alice/doc-1")
	if err != nil {
		t.Fatalf("GetBlob over TCP: %v", err)
	}
	if !bytes.Equal(b.Data, []byte("sealed")) {
		t.Fatalf("blob data %q", b.Data)
	}
	names, err := client.ListBlobs("alice/")
	if err != nil || len(names) != 1 {
		t.Fatalf("ListBlobs: %v %v", names, err)
	}
	if err := client.DeleteBlob("alice/doc-1"); err != nil {
		t.Fatalf("DeleteBlob: %v", err)
	}
	if _, err := client.GetBlob("alice/doc-1"); err != ErrBlobNotFound {
		t.Fatalf("expected ErrBlobNotFound through the client, got %v", err)
	}
}

func TestTCPMailboxAndStats(t *testing.T) {
	mem := NewMemory()
	client := startServer(t, mem)

	if err := client.Send(Message{From: "alice", To: "bob", Kind: "share", Body: []byte("hi")}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	msgs, err := client.Receive("bob", 10)
	if err != nil || len(msgs) != 1 || string(msgs[0].Body) != "hi" {
		t.Fatalf("Receive: %v %v", msgs, err)
	}
	st := client.Stats()
	if st.Sends != 1 || st.Receives != 1 {
		t.Fatalf("stats over TCP: %+v", st)
	}
}

func TestTCPMultipleClients(t *testing.T) {
	mem := NewMemory()
	clientA := startServer(t, mem)
	// Second client to the same server (its own connection).
	clientB, err := Dial(clientA.conn.RemoteAddr().String())
	if err != nil {
		t.Fatalf("second dial: %v", err)
	}
	defer clientB.Close()

	if _, err := clientA.PutBlob("shared", []byte("from-a")); err != nil {
		t.Fatal(err)
	}
	b, err := clientB.GetBlob("shared")
	if err != nil || string(b.Data) != "from-a" {
		t.Fatalf("cross-client read: %v %v", b, err)
	}
}

func TestTCPBatchRoundTrip(t *testing.T) {
	mem := NewMemory()
	client := startServer(t, mem)

	puts := make([]BlobPut, 20)
	names := make([]string, 20)
	for i := range puts {
		names[i] = fmt.Sprintf("fleet/blob-%02d", i)
		puts[i] = BlobPut{Name: names[i], Data: []byte(names[i])}
	}
	versions, err := client.PutBlobs(puts)
	if err != nil {
		t.Fatalf("PutBlobs over TCP: %v", err)
	}
	for i, v := range versions {
		if v != 1 {
			t.Fatalf("version[%d] = %d", i, v)
		}
	}
	blobs, err := client.GetBlobs(append(names, "missing"))
	if err != nil {
		t.Fatalf("GetBlobs over TCP: %v", err)
	}
	for i := range names {
		if !bytes.Equal(blobs[i].Data, []byte(names[i])) {
			t.Fatalf("blob %d = %q", i, blobs[i].Data)
		}
	}
	if blobs[len(names)].Version != 0 {
		t.Fatalf("missing blob should be zero: %+v", blobs[len(names)])
	}
	if st := client.Stats(); st.Puts != 20 || st.Gets != 21 {
		t.Fatalf("server-side counters after batch: %+v", st)
	}
}

func TestTCPConditionalBatchGet(t *testing.T) {
	mem := NewMemory()
	client := startServer(t, mem)

	_, _ = client.PutBlob("sync/0", []byte("a1"))
	_, _ = client.PutBlob("sync/1", []byte("b1"))
	_, _ = client.PutBlob("sync/1", []byte("b2"))
	blobs, err := client.GetBlobsIf([]CondGet{
		{Name: "sync/0", IfNewer: 1},
		{Name: "sync/1", IfNewer: 1},
		{Name: "sync/2", IfNewer: 0},
	})
	if err != nil {
		t.Fatalf("GetBlobsIf over TCP: %v", err)
	}
	if blobs[0].Version != 1 || len(blobs[0].Data) != 0 {
		t.Fatalf("unadvanced blob should ship no data over the wire: %+v", blobs[0])
	}
	if blobs[1].Version != 2 || !bytes.Equal(blobs[1].Data, []byte("b2")) {
		t.Fatalf("advanced blob: %+v", blobs[1])
	}
	if blobs[2].Version != 0 {
		t.Fatalf("missing blob should be zero: %+v", blobs[2])
	}
}

func TestTCPPipelining(t *testing.T) {
	mem := NewMemory()
	client := startServer(t, mem)

	// Write the whole request train before reading any response — the raw
	// mechanism behind the batch fallback for pre-batch servers.
	reqs := make([]rpcRequest, 10)
	for i := range reqs {
		reqs[i] = rpcRequest{Op: "put", Name: fmt.Sprintf("p-%02d", i), Data: []byte("x")}
	}
	resps, err := client.pipeline(reqs)
	if err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	for i, r := range resps {
		if r.Err != "" || r.Version != 1 {
			t.Fatalf("pipelined response %d: %+v", i, r)
		}
	}
	// Responses must have come back in request order.
	names, _ := mem.ListBlobs("p-")
	if len(names) != 10 {
		t.Fatalf("pipelined puts stored %d blobs", len(names))
	}
}

func TestTCPUnknownOp(t *testing.T) {
	mem := NewMemory()
	client := startServer(t, mem)
	resp, err := client.call(rpcRequest{Op: "bogus"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Err == "" {
		t.Fatal("unknown op did not return an error")
	}
}
