package cloud

// Adversary wraps any Service with the Byzantine provider behaviours the
// threat model names: a weakly-malicious provider may observe, tamper with,
// replay, drop, roll back or fork the state it stores, as long as the attack
// is not trivially convictable. Historically the adversary lived inside the
// in-memory store; as a wrapper it composes with every backend — RAM, disk,
// wire, or one member of a Replicated fleet — so the durable paths face the
// same adversary the simulations do.
//
// The wrapper is deterministic for a fixed seed and call sequence. It keeps a
// bounded history of the payloads it forwarded per blob name; that history is
// the material the Replaying mode (stale version number and stale bytes) and
// the Rollback mode (stale bytes under the *current* version number, which
// defeats plain version checks) serve back. The Fork mode diverts writes into
// per-client branches obtained from ClientView, freezing the wrapped backend
// at the fork point — the equivocation attack of the fork-consistency
// literature. EndFork heals the split by flushing one branch's state to the
// backend, which is the moment a client of a losing branch can detect the
// equivocation (see the sync package's authenticated catalog).

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
)

// advHistoryCap bounds how many prior payloads the wrapper retains per blob
// name as replay/rollback material (oldest evicted first).
const advHistoryCap = 4

// forkBranch is one client's divergent state while Fork is active: the blobs
// the branch wrote since the fork point. Reads fall through to the frozen
// backend for everything the branch did not overwrite.
type forkBranch struct {
	blobs map[string]Blob
}

// Adversary is a Service/BatchService/ConditionalBatchService wrapper
// injecting adversarial behaviour in front of any backend.
type Adversary struct {
	inner Service

	// mu guards mode, rng, versions, history and branches. It is held across
	// calls into the wrapped backend: the adversary serializes, which keeps
	// its decisions deterministic under concurrency (and its code simple); it
	// is a test-and-drill harness, not a production proxy.
	mu       sync.Mutex
	mode     AdversaryMode
	cfg      AdversaryConfig
	rng      *rand.Rand
	versions map[string]int
	history  map[string][]Blob
	branches map[string]*forkBranch

	obsMu        sync.Mutex
	observations [][]byte

	tampered, replayed, rolledBack, forked atomic.Int64
	droppedBlobs, droppedMsgs, observed    atomic.Int64
}

// NewAdversary wraps svc with the adversarial behaviour selected by cfg. The
// wrapper implements the batch and conditional-batch contracts regardless of
// whether svc does (it degrades through the *Via helpers), so callers can use
// it wherever they used the backend.
func NewAdversary(svc Service, cfg AdversaryConfig) *Adversary {
	return &Adversary{
		inner:    svc,
		mode:     cfg.Mode,
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		versions: make(map[string]int),
		history:  make(map[string][]Blob),
		branches: make(map[string]*forkBranch),
	}
}

// Inner returns the wrapped backend, for drills that need to inspect the
// provider's true state behind the adversary's lies.
func (a *Adversary) Inner() Service { return a.inner }

// Mode returns the currently active adversary mode.
func (a *Adversary) Mode() AdversaryMode {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.mode
}

// SetMode switches the adversarial behaviour at runtime, so a drill can
// converge honestly and then turn the provider malicious. Switching away from
// Fork does not heal existing branches; use EndFork for that.
func (a *Adversary) SetMode(m AdversaryMode) {
	a.mu.Lock()
	a.mode = m
	a.mu.Unlock()
}

// chanceLocked draws an adversarial coin; the caller holds mu.
func (a *Adversary) chanceLocked(p float64) bool {
	if p <= 0 {
		return false
	}
	return a.rng.Float64() < p
}

// knownVersionLocked returns the highest version the wrapper has acknowledged
// or observed for name, consulting the backend once for names it has never
// seen. The caller holds mu.
func (a *Adversary) knownVersionLocked(name string) int {
	if v, ok := a.versions[name]; ok {
		return v
	}
	v := 0
	if b, err := a.inner.GetBlob(name); err == nil {
		v = b.Version
	}
	a.versions[name] = v
	return v
}

// noteVersionLocked records an acknowledged or observed version.
func (a *Adversary) noteVersionLocked(name string, v int) {
	if v > a.versions[name] {
		a.versions[name] = v
	}
}

// recordHistoryLocked retains a private copy of a forwarded payload as future
// replay/rollback material, bounded by advHistoryCap.
func (a *Adversary) recordHistoryLocked(name string, v int, data []byte) {
	h := append(a.history[name], Blob{Name: name, Version: v, Data: append([]byte(nil), data...)})
	if len(h) > advHistoryCap {
		h = h[len(h)-advHistoryCap:]
	}
	a.history[name] = h
}

// staleLocked returns the oldest retained payload strictly older than cur,
// or false when the wrapper has no rollback material for the name.
func (a *Adversary) staleLocked(name string, cur int) (Blob, bool) {
	for _, old := range a.history[name] {
		if old.Version < cur {
			return old, true
		}
	}
	return Blob{}, false
}

// branchLocked returns (creating on demand) the fork branch for a client id.
func (a *Adversary) branchLocked(id string) *forkBranch {
	br, ok := a.branches[id]
	if !ok {
		br = &forkBranch{blobs: make(map[string]Blob)}
		a.branches[id] = br
	}
	return br
}

// effectiveLocked resolves a name in a branch: the branch's own write if it
// has one, the frozen backend state otherwise. ok is false for names that
// exist nowhere.
func (a *Adversary) effectiveLocked(br *forkBranch, name string) (Blob, bool) {
	if b, ok := br.blobs[name]; ok {
		return b, true
	}
	if b, err := a.inner.GetBlob(name); err == nil {
		return b, true
	}
	return Blob{}, false
}

// EndFork heals a fork: the winner branch's writes are flushed to the backend
// in name order, every branch is dropped, and the mode returns to Honest.
// Clients of the losing branches now observe a history that excludes their
// acknowledged writes — the view-crossing moment an authenticated catalog
// detects.
func (a *Adversary) EndFork(winner string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	br := a.branches[winner]
	if br != nil {
		names := make([]string, 0, len(br.blobs))
		for n := range br.blobs {
			names = append(names, n)
		}
		sort.Strings(names)
		puts := make([]BlobPut, len(names))
		for i, n := range names {
			puts[i] = BlobPut{Name: n, Data: br.blobs[n].Data}
		}
		if _, err := PutBlobsVia(a.inner, puts); err != nil {
			return err
		}
	}
	a.branches = make(map[string]*forkBranch)
	a.versions = make(map[string]int)
	a.mode = Honest
	return nil
}

// putBatch applies one batch of writes on behalf of a client branch.
func (a *Adversary) putBatch(branch string, puts []BlobPut) ([]int, error) {
	a.mu.Lock()
	defer a.mu.Unlock()

	versions := make([]int, len(puts))
	if a.mode == Fork {
		// Divert every write into the caller's branch; the backend freezes at
		// the fork point. Version numbers continue the branch's own history,
		// so each client sees a self-consistent world.
		br := a.branchLocked(branch)
		for i, p := range puts {
			base := 0
			if cur, ok := a.effectiveLocked(br, p.Name); ok {
				base = cur.Version
			}
			b := Blob{Name: p.Name, Version: base + 1, Data: append([]byte(nil), p.Data...)}
			br.blobs[p.Name] = b
			versions[i] = b.Version
			a.forked.Add(1)
		}
		return versions, nil
	}

	fwd := make([]BlobPut, 0, len(puts))
	fwdIdx := make([]int, 0, len(puts))
	for i, p := range puts {
		if a.mode == Dropping && a.chanceLocked(a.cfg.DropRate) {
			// Pretend success but do not store: a silently lossy provider.
			// The invented version continues the acknowledged sequence, so
			// the lie is only visible to a client that audits freshness.
			v := a.knownVersionLocked(p.Name) + 1
			a.versions[p.Name] = v
			versions[i] = v
			a.droppedBlobs.Add(1)
			continue
		}
		data := append([]byte(nil), p.Data...)
		if a.mode == Tampering && len(data) > 0 && a.chanceLocked(a.cfg.TamperRate) {
			data[a.rng.Intn(len(data))] ^= 0xFF
			a.tampered.Add(1)
		}
		if a.mode == HonestButCurious {
			a.obsMu.Lock()
			a.observations = append(a.observations, append([]byte(nil), p.Data...))
			a.obsMu.Unlock()
			a.observed.Add(1)
		}
		fwd = append(fwd, BlobPut{Name: p.Name, Data: data})
		fwdIdx = append(fwdIdx, i)
	}
	if len(fwd) > 0 {
		vs, err := PutBlobsVia(a.inner, fwd)
		if err != nil {
			return nil, err
		}
		for j, v := range vs {
			i := fwdIdx[j]
			versions[i] = v
			a.noteVersionLocked(fwd[j].Name, v)
			a.recordHistoryLocked(fwd[j].Name, v, fwd[j].Data)
		}
	}
	return versions, nil
}

// serveLocked applies the read-path substitutions (replay, rollback) to one
// blob the backend shipped with data. The caller holds mu.
func (a *Adversary) serveLocked(b Blob) Blob {
	a.noteVersionLocked(b.Name, b.Version)
	switch a.mode {
	case Replaying:
		if olds := a.olderLocked(b.Name, b.Version); len(olds) > 0 && a.chanceLocked(a.cfg.ReplayRate) {
			a.replayed.Add(1)
			return cloneBlob(olds[a.rng.Intn(len(olds))])
		}
	case Rollback:
		if old, ok := a.staleLocked(b.Name, b.Version); ok && a.chanceLocked(a.cfg.RollbackRate) {
			a.rolledBack.Add(1)
			// Stale bytes under the current version number: version checks
			// pass, only authenticated freshness catches the lie.
			served := cloneBlob(old)
			served.Version = b.Version
			served.Stored = b.Stored
			return served
		}
	}
	return b
}

// olderLocked lists the retained payloads strictly older than cur.
func (a *Adversary) olderLocked(name string, cur int) []Blob {
	var out []Blob
	for _, old := range a.history[name] {
		if old.Version < cur {
			out = append(out, old)
		}
	}
	return out
}

// getBatch serves one unconditional batched read for a client branch.
func (a *Adversary) getBatch(branch string, names []string) ([]Blob, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.mode == Fork {
		br := a.branchLocked(branch)
		blobs := make([]Blob, len(names))
		for i, n := range names {
			if b, ok := a.effectiveLocked(br, n); ok {
				blobs[i] = cloneBlob(b)
			}
		}
		return blobs, nil
	}
	blobs, err := GetBlobsVia(a.inner, names)
	if err != nil {
		return nil, err
	}
	for i := range blobs {
		if blobs[i].Version > 0 && len(blobs[i].Data) > 0 {
			blobs[i] = a.serveLocked(blobs[i])
		}
	}
	return blobs, nil
}

// condBatch serves one conditional batched read for a client branch.
func (a *Adversary) condBatch(branch string, gets []CondGet) ([]Blob, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.mode == Fork {
		br := a.branchLocked(branch)
		blobs := make([]Blob, len(gets))
		for i, g := range gets {
			b, ok := a.effectiveLocked(br, g.Name)
			if !ok {
				continue
			}
			if b.Version <= g.IfNewer {
				blobs[i] = Blob{Name: b.Name, Version: b.Version, Stored: b.Stored}
				continue
			}
			blobs[i] = cloneBlob(b)
		}
		return blobs, nil
	}
	blobs, err := GetBlobsIfVia(a.inner, gets)
	if err != nil {
		return nil, err
	}
	for i := range blobs {
		if blobs[i].Version > 0 && len(blobs[i].Data) > 0 {
			blobs[i] = a.serveLocked(blobs[i])
		}
	}
	return blobs, nil
}

// PutBlob implements Service.
func (a *Adversary) PutBlob(name string, data []byte) (int, error) {
	vs, err := a.putBatch("", []BlobPut{{Name: name, Data: data}})
	if err != nil {
		return 0, err
	}
	return vs[0], nil
}

// GetBlob implements Service.
func (a *Adversary) GetBlob(name string) (Blob, error) {
	blobs, err := a.getBatch("", []string{name})
	if err != nil {
		return Blob{}, err
	}
	if blobs[0].Version == 0 {
		return Blob{}, ErrBlobNotFound
	}
	return blobs[0], nil
}

// DeleteBlob implements Service. Under Fork the delete lands in the caller's
// branch only (a divergent delete); otherwise it is forwarded.
func (a *Adversary) DeleteBlob(name string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.mode == Fork {
		delete(a.branchLocked("").blobs, name)
		return nil
	}
	delete(a.history, name)
	delete(a.versions, name)
	return a.inner.DeleteBlob(name)
}

// ListBlobs implements Service. Under Fork the listing is the union of the
// frozen backend and the caller's branch.
func (a *Adversary) ListBlobs(prefix string) ([]string, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	names, err := a.inner.ListBlobs(prefix)
	if err != nil {
		return nil, err
	}
	if a.mode != Fork {
		return names, nil
	}
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		seen[n] = true
	}
	for n := range a.branchLocked("").blobs {
		if len(n) >= len(prefix) && n[:len(prefix)] == prefix && !seen[n] {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names, nil
}

// Send implements Service; a Dropping adversary loses messages too.
func (a *Adversary) Send(msg Message) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.mode == Dropping && a.chanceLocked(a.cfg.DropRate) {
		a.droppedMsgs.Add(1)
		return nil
	}
	return a.inner.Send(msg)
}

// Receive implements Service.
func (a *Adversary) Receive(recipient string, max int) ([]Message, error) {
	return a.inner.Receive(recipient, max)
}

// Stats implements Service: the backend's counters plus the adversarial
// actions this wrapper performed.
func (a *Adversary) Stats() Stats {
	st := a.inner.Stats()
	st.TamperedBlobs += a.tampered.Load()
	st.ReplayedBlobs += a.replayed.Load()
	st.DroppedBlobs += a.droppedBlobs.Load()
	st.DroppedMessages += a.droppedMsgs.Load()
	st.ObservedBlobs += a.observed.Load()
	st.RolledBackBlobs += a.rolledBack.Load()
	st.ForkedBlobs += a.forked.Load()
	return st
}

// Observations returns what an honest-but-curious provider captured. The
// confidentiality tests assert that none of it is plaintext.
func (a *Adversary) Observations() [][]byte {
	a.obsMu.Lock()
	defer a.obsMu.Unlock()
	out := make([][]byte, len(a.observations))
	for i, o := range a.observations {
		out[i] = append([]byte(nil), o...)
	}
	return out
}

// PutBlobs implements BatchService.
func (a *Adversary) PutBlobs(puts []BlobPut) ([]int, error) { return a.putBatch("", puts) }

// GetBlobs implements BatchService.
func (a *Adversary) GetBlobs(names []string) ([]Blob, error) { return a.getBatch("", names) }

// GetBlobsIf implements ConditionalBatchService.
func (a *Adversary) GetBlobsIf(gets []CondGet) ([]Blob, error) { return a.condBatch("", gets) }

// ClientView returns the Service through which one client (a connection, a
// tenant, a replica) talks to the provider. Views are how the Fork mode keys
// its equivocation: each view reads and writes its own branch while the fork
// is active, and behaves identically to the parent otherwise.
func (a *Adversary) ClientView(id string) *AdversaryView {
	return &AdversaryView{a: a, id: id}
}

// AdversaryView is one client's handle onto a forking provider; see
// Adversary.ClientView.
type AdversaryView struct {
	a  *Adversary
	id string
}

// PutBlob implements Service.
func (v *AdversaryView) PutBlob(name string, data []byte) (int, error) {
	vs, err := v.a.putBatch(v.id, []BlobPut{{Name: name, Data: data}})
	if err != nil {
		return 0, err
	}
	return vs[0], nil
}

// GetBlob implements Service.
func (v *AdversaryView) GetBlob(name string) (Blob, error) {
	blobs, err := v.a.getBatch(v.id, []string{name})
	if err != nil {
		return Blob{}, err
	}
	if blobs[0].Version == 0 {
		return Blob{}, ErrBlobNotFound
	}
	return blobs[0], nil
}

// DeleteBlob implements Service.
func (v *AdversaryView) DeleteBlob(name string) error { return v.a.DeleteBlob(name) }

// ListBlobs implements Service.
func (v *AdversaryView) ListBlobs(prefix string) ([]string, error) { return v.a.ListBlobs(prefix) }

// Send implements Service.
func (v *AdversaryView) Send(msg Message) error { return v.a.Send(msg) }

// Receive implements Service.
func (v *AdversaryView) Receive(recipient string, max int) ([]Message, error) {
	return v.a.Receive(recipient, max)
}

// Stats implements Service.
func (v *AdversaryView) Stats() Stats { return v.a.Stats() }

// PutBlobs implements BatchService.
func (v *AdversaryView) PutBlobs(puts []BlobPut) ([]int, error) { return v.a.putBatch(v.id, puts) }

// GetBlobs implements BatchService.
func (v *AdversaryView) GetBlobs(names []string) ([]Blob, error) { return v.a.getBatch(v.id, names) }

// GetBlobsIf implements ConditionalBatchService.
func (v *AdversaryView) GetBlobsIf(gets []CondGet) ([]Blob, error) { return v.a.condBatch(v.id, gets) }
