package cloud

// The conformance battery: one behavioural table driving every backend the
// package ships — RAM, disk, wire, and the replicated layer (healthy and with
// a faulty member). A caller must not be able to tell the backends apart
// through the Service, BatchService or ConditionalBatchService contracts.

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
)

// serviceBackends builds each backend the conformance battery runs against.
//
//   - durable gets a small shard count so the per-shard paths (and the
//     META.json shard pinning) are exercised without 32 directories per test;
//   - tcp serves a Memory over a real loopback socket;
//   - replicated stripes a mixed fleet (RAM, disk, RAM) at W=2/R=2;
//   - replicated-faulty additionally wraps one member in cloud.Faulty at a
//     nonzero error rate — the battery must pass identically, because the
//     two healthy members always satisfy both quorums;
//   - framed serves a Memory through the multiplexed framed protocol;
//   - framed-tenant runs the full front-door stack — durable backend,
//     admission controller, tenant namespace, framed protocol — with
//     quotas generous enough to never trip, so the stack must be
//     behaviourally invisible.
func serviceBackends(t *testing.T) map[string]func(t *testing.T) Service {
	return map[string]func(t *testing.T) Service{
		"memory": func(t *testing.T) Service { return NewMemory() },
		// An honest Adversary must be behaviourally invisible: the wrapper is
		// only allowed to change semantics when a malicious mode is active.
		"adversary-honest": func(t *testing.T) Service {
			return NewAdversary(NewMemory(), AdversaryConfig{Mode: Honest, Seed: 1})
		},
		"durable": func(t *testing.T) Service {
			d, err := OpenDurable(t.TempDir(), DurableOptions{Shards: 4})
			if err != nil {
				t.Fatalf("OpenDurable: %v", err)
			}
			t.Cleanup(func() { _ = d.Close() })
			return d
		},
		"tcp": func(t *testing.T) Service {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatalf("listen: %v", err)
			}
			srv := NewServer(NewMemory())
			go func() { _ = srv.Serve(ln) }()
			t.Cleanup(func() { _ = srv.Close() })
			client, err := Dial(ln.Addr().String())
			if err != nil {
				t.Fatalf("dial: %v", err)
			}
			t.Cleanup(func() { _ = client.Close() })
			return client
		},
		"replicated": func(t *testing.T) Service {
			d, err := OpenDurable(t.TempDir(), DurableOptions{Shards: 2})
			if err != nil {
				t.Fatalf("OpenDurable: %v", err)
			}
			t.Cleanup(func() { _ = d.Close() })
			r, err := NewReplicated([]Service{NewMemory(), d, NewMemory()},
				ReplicatedOptions{WriteQuorum: 2, ReadQuorum: 2})
			if err != nil {
				t.Fatalf("NewReplicated: %v", err)
			}
			t.Cleanup(func() { _ = r.Close() })
			return r
		},
		"replicated-faulty": func(t *testing.T) Service {
			faulty := NewFaulty(NewMemory(), FaultyOptions{Seed: 42, ErrorRate: 0.15})
			r, err := NewReplicated([]Service{NewMemory(), faulty, NewMemory()},
				ReplicatedOptions{WriteQuorum: 2, ReadQuorum: 2})
			if err != nil {
				t.Fatalf("NewReplicated: %v", err)
			}
			t.Cleanup(func() { _ = r.Close() })
			return r
		},
		"framed": func(t *testing.T) Service {
			return dialTestFrameServer(t, NewMemory(), FrameServerOptions{}, "")
		},
		"framed-tenant": func(t *testing.T) Service {
			d, err := OpenDurable(t.TempDir(), DurableOptions{Shards: 4})
			if err != nil {
				t.Fatalf("OpenDurable: %v", err)
			}
			t.Cleanup(func() { _ = d.Close() })
			adm := NewAdmission(d, AdmissionOptions{})
			tenants := NewTenants(adm)
			if err := tenants.Define("acme", TenantQuota{}); err != nil {
				t.Fatalf("Define: %v", err)
			}
			return dialTestFrameServer(t, adm, FrameServerOptions{Tenants: tenants}, "acme")
		},
	}
}

// dialTestFrameServer starts a FrameServer over svc on a loopback socket and
// returns a connected FrameClient, bound to tenant when non-empty. Both are
// torn down with the test.
func dialTestFrameServer(t *testing.T, svc Service, opts FrameServerOptions, tenant string) *FrameClient {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := NewFrameServer(svc, opts)
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { _ = srv.Close() })
	client, err := DialFramed(ln.Addr().String())
	if err != nil {
		t.Fatalf("dial framed: %v", err)
	}
	t.Cleanup(func() { _ = client.Close() })
	if tenant != "" {
		if err := client.Hello(tenant); err != nil {
			t.Fatalf("hello: %v", err)
		}
	}
	return client
}

// TestServiceConformance runs the same behavioural battery over every backend:
// the contracts of Service, BatchService and ConditionalBatchService must be
// indistinguishable between the RAM store, the disk store, the wire client
// and the replicated layer.
func TestServiceConformance(t *testing.T) {
	for name, mk := range serviceBackends(t) {
		t.Run(name, func(t *testing.T) {
			svc := mk(t)

			// Blob lifecycle: versioning, round trip, delete idempotency.
			v, err := svc.PutBlob("alice/vault/doc-1", []byte("ciphertext"))
			if err != nil || v != 1 {
				t.Fatalf("PutBlob: v=%d err=%v", v, err)
			}
			b, err := svc.GetBlob("alice/vault/doc-1")
			if err != nil || !bytes.Equal(b.Data, []byte("ciphertext")) || b.Version != 1 {
				t.Fatalf("GetBlob: %+v %v", b, err)
			}
			if b.Stored.IsZero() {
				t.Fatal("Stored timestamp not set")
			}
			if v, _ = svc.PutBlob("alice/vault/doc-1", []byte("v2")); v != 2 {
				t.Fatalf("second version = %d", v)
			}
			// Returned data must be a private copy.
			b, _ = svc.GetBlob("alice/vault/doc-1")
			b.Data[0] = 'X'
			again, _ := svc.GetBlob("alice/vault/doc-1")
			if again.Data[0] == 'X' {
				t.Fatal("GetBlob exposes shared storage")
			}
			if err := svc.DeleteBlob("alice/vault/doc-1"); err != nil {
				t.Fatalf("DeleteBlob: %v", err)
			}
			if _, err := svc.GetBlob("alice/vault/doc-1"); err != ErrBlobNotFound {
				t.Fatalf("after delete: %v", err)
			}
			if err := svc.DeleteBlob("never-existed"); err != nil {
				t.Fatalf("delete idempotency: %v", err)
			}

			// Listing: prefix filter, sorted output.
			for i := 0; i < 5; i++ {
				_, _ = svc.PutBlob(fmt.Sprintf("alice/doc-%d", i), []byte("x"))
			}
			_, _ = svc.PutBlob("bob/doc-0", []byte("x"))
			names, err := svc.ListBlobs("alice/")
			if err != nil || len(names) != 5 {
				t.Fatalf("ListBlobs = %v, %v", names, err)
			}
			for i := 1; i < len(names); i++ {
				if names[i-1] >= names[i] {
					t.Fatal("names not sorted")
				}
			}
			if all, _ := svc.ListBlobs(""); len(all) != 6 {
				t.Fatalf("all blobs = %d", len(all))
			}

			// Mailboxes: FIFO, bounded receive, metadata fill-in.
			for i := 0; i < 3; i++ {
				err := svc.Send(Message{From: "alice", To: "bob", Kind: "share-offer",
					Body: []byte(fmt.Sprintf("m%d", i))})
				if err != nil {
					t.Fatalf("Send: %v", err)
				}
			}
			msgs, err := svc.Receive("bob", 2)
			if err != nil || len(msgs) != 2 {
				t.Fatalf("Receive: %d %v", len(msgs), err)
			}
			if string(msgs[0].Body) != "m0" || string(msgs[1].Body) != "m1" {
				t.Fatalf("wrong order: %q %q", msgs[0].Body, msgs[1].Body)
			}
			if msgs[0].ID == "" || msgs[0].Sent.IsZero() || msgs[0].From != "alice" || msgs[0].Kind != "share-offer" {
				t.Fatalf("message metadata not preserved: %+v", msgs[0])
			}
			if msgs, _ = svc.Receive("bob", 0); len(msgs) != 1 {
				t.Fatalf("remaining = %d", len(msgs))
			}
			if msgs, _ = svc.Receive("bob", 10); len(msgs) != 0 {
				t.Fatal("mailbox should be empty")
			}
			if msgs, _ = svc.Receive("nobody", 10); len(msgs) != 0 {
				t.Fatal("unknown recipient should have empty mailbox")
			}

			// Batch put/get: versions in argument order, missing names zero.
			versions, err := PutBlobsVia(svc, []BlobPut{
				{Name: "batch/a", Data: []byte("aa")},
				{Name: "bob/doc-0", Data: []byte("v2")},
				{Name: "batch/b", Data: []byte("bb")},
			})
			if err != nil || len(versions) != 3 || versions[0] != 1 || versions[1] != 2 || versions[2] != 1 {
				t.Fatalf("PutBlobs versions = %v, %v", versions, err)
			}
			blobs, err := GetBlobsVia(svc, []string{"missing", "batch/a", "batch/b"})
			if err != nil {
				t.Fatalf("GetBlobs: %v", err)
			}
			if blobs[0].Version != 0 || string(blobs[1].Data) != "aa" || string(blobs[2].Data) != "bb" {
				t.Fatalf("GetBlobs: %+v", blobs)
			}

			// Conditional fetch: unadvanced versions ship no data.
			got, err := GetBlobsIfVia(svc, []CondGet{
				{Name: "batch/a", IfNewer: 1},   // current 1: not advanced
				{Name: "bob/doc-0", IfNewer: 1}, // current 2: advanced
				{Name: "missing", IfNewer: 0},
			})
			if err != nil {
				t.Fatalf("GetBlobsIf: %v", err)
			}
			if got[0].Version != 1 || got[0].Data != nil {
				t.Fatalf("unadvanced blob should ship version only: %+v", got[0])
			}
			if got[1].Version != 2 || string(got[1].Data) != "v2" {
				t.Fatalf("advanced blob should ship data: %+v", got[1])
			}
			if got[2].Version != 0 {
				t.Fatalf("missing blob should be zero: %+v", got[2])
			}

			// Counters add up per blob, not per call.
			st := svc.Stats()
			if st.Puts < 9 || st.Sends != 3 || st.Receives < 2 {
				t.Fatalf("stats %+v", st)
			}
		})
	}
}

// TestConformanceMailboxFIFO drives a long mailbox through interleaved sends
// and bounded receives: every backend must deliver the exact global FIFO
// order, never duplicating and never losing a message across receive calls.
func TestConformanceMailboxFIFO(t *testing.T) {
	const total = 24
	for name, mk := range serviceBackends(t) {
		t.Run(name, func(t *testing.T) {
			svc := mk(t)
			next := 0
			send := func(n int) {
				for i := 0; i < n; i++ {
					if err := svc.Send(Message{From: "cell", To: "carol",
						Body: []byte(fmt.Sprintf("m%03d", next))}); err != nil {
						t.Fatalf("Send %d: %v", next, err)
					}
					next++
				}
			}
			var got []Message
			send(10)
			for _, chunk := range []int{3, 1, 4} {
				msgs, err := svc.Receive("carol", chunk)
				if err != nil || len(msgs) != chunk {
					t.Fatalf("Receive(%d): %d %v", chunk, len(msgs), err)
				}
				got = append(got, msgs...)
			}
			send(total - 10) // interleave: new sends land behind pending ones
			for len(got) < total {
				msgs, err := svc.Receive("carol", 5)
				if err != nil {
					t.Fatalf("Receive: %v", err)
				}
				if len(msgs) == 0 {
					t.Fatalf("mailbox dried up at %d of %d", len(got), total)
				}
				got = append(got, msgs...)
			}
			for i, m := range got {
				if want := fmt.Sprintf("m%03d", i); string(m.Body) != want {
					t.Fatalf("position %d = %q, want %q", i, m.Body, want)
				}
			}
			if msgs, _ := svc.Receive("carol", 10); len(msgs) != 0 {
				t.Fatalf("mailbox should be empty, got %d", len(msgs))
			}
		})
	}
}

// TestConformanceGetBlobsIfConcurrent hammers the conditional-fetch path with
// concurrent writers: readers must only ever observe monotonically increasing
// versions, data exactly when the version advanced past their floor, and
// payloads that some writer actually wrote.
func TestConformanceGetBlobsIfConcurrent(t *testing.T) {
	const (
		writers = 4
		rounds  = 25
		nNames  = 8
	)
	names := make([]string, nNames)
	for i := range names {
		names[i] = fmt.Sprintf("shared/doc-%d", i)
	}
	for backend, mk := range serviceBackends(t) {
		t.Run(backend, func(t *testing.T) {
			svc := mk(t)
			var writersWg sync.WaitGroup
			stop := make(chan struct{})
			readerDone := make(chan struct{})
			for w := 0; w < writers; w++ {
				writersWg.Add(1)
				go func(w int) {
					defer writersWg.Done()
					for round := 0; round < rounds; round++ {
						puts := make([]BlobPut, len(names))
						for i, n := range names {
							puts[i] = BlobPut{Name: n, Data: []byte(fmt.Sprintf("%s|w%d-r%d", n, w, round))}
						}
						if _, err := PutBlobsVia(svc, puts); err != nil {
							t.Errorf("writer %d: %v", w, err)
							return
						}
					}
				}(w)
			}
			go func() {
				defer close(readerDone)
				floor := make([]int, len(names))
				for {
					select {
					case <-stop:
						return
					default:
					}
					gets := make([]CondGet, len(names))
					for i, n := range names {
						gets[i] = CondGet{Name: n, IfNewer: floor[i]}
					}
					blobs, err := GetBlobsIfVia(svc, gets)
					if err != nil {
						t.Errorf("GetBlobsIf: %v", err)
						return
					}
					for i, b := range blobs {
						if b.Version == 0 {
							continue // not yet written
						}
						// Quorum backends may answer a later read from a
						// different member subset, so versions are not
						// monotonic across calls — but the data-shipping
						// rule must hold against whatever floor we sent.
						if b.Version <= gets[i].IfNewer && b.Data != nil {
							t.Errorf("%s: unadvanced version %d shipped data", names[i], b.Version)
							return
						}
						if b.Version > gets[i].IfNewer {
							if b.Data == nil {
								t.Errorf("%s: advanced version %d shipped no data", names[i], b.Version)
								return
							}
							if !bytes.HasPrefix(b.Data, []byte(names[i]+"|")) {
								t.Errorf("%s: foreign payload %q", names[i], b.Data)
								return
							}
						}
						if b.Version > floor[i] {
							floor[i] = b.Version
						}
					}
				}
			}()
			// Let the reader race the writers, then stop it once writes finish.
			writersWg.Wait()
			close(stop)
			<-readerDone

			// Quiesced: every name must sit at its final version with matching
			// payload visible through the plain batch read as well.
			blobs, err := GetBlobsVia(svc, names)
			if err != nil {
				t.Fatalf("final GetBlobs: %v", err)
			}
			for i, b := range blobs {
				if b.Version == 0 || !bytes.HasPrefix(b.Data, []byte(names[i]+"|")) {
					t.Fatalf("final state of %s: %+v", names[i], b)
				}
			}
		})
	}
}
