package cloud

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestAdmissionShedsAtSaturation parks MaxInFlight writes inside the
// backend and checks the controller's core promise: the next mutation is
// rejected immediately with a typed OverloadError carrying the retry-after
// hint — not queued behind the stuck ones — and the in-flight gauge never
// exceeds the budget. Once a slot frees, new writes are admitted again.
func TestAdmissionShedsAtSaturation(t *testing.T) {
	const budget = 4
	blocker := &blockingService{
		Service: NewMemory(),
		release: make(chan struct{}),
		entered: make(chan string, budget),
	}
	adm := NewAdmission(blocker, AdmissionOptions{MaxInFlight: budget, RetryAfter: 30 * time.Millisecond})

	var wg sync.WaitGroup
	errs := make([]error, budget)
	for i := 0; i < budget; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = adm.PutBlob("held", []byte("x"))
		}(i)
	}
	for i := 0; i < budget; i++ {
		<-blocker.entered // all budget slots are now genuinely in flight
	}
	if got := adm.AdmissionStats().InFlight; got != budget {
		t.Fatalf("in-flight = %d, want %d", got, budget)
	}

	// The budget is full: the next mutation must be shed, and fast.
	start := time.Now()
	_, err := adm.PutBlob("one-too-many", []byte("x"))
	var oe *OverloadError
	if !errors.Is(err, ErrOverloaded) || !errors.As(err, &oe) {
		t.Fatalf("saturated put: %v, want typed OverloadError", err)
	}
	if oe.RetryAfter != 30*time.Millisecond {
		t.Fatalf("retry-after = %v, want 30ms", oe.RetryAfter)
	}
	if waited := time.Since(start); waited > time.Second {
		t.Fatalf("shed took %v: request was queued, not rejected", waited)
	}
	// A batch must be shed by weight too: even a 1-item batch over budget.
	if _, err := adm.PutBlobs([]BlobPut{{Name: "b", Data: []byte("x")}}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("saturated batch: %v", err)
	}
	// Reads are never shed.
	if _, err := adm.ListBlobs(""); err != nil {
		t.Fatalf("read during saturation: %v", err)
	}

	st := adm.AdmissionStats()
	if st.Shed < 2 || st.InFlight != budget {
		t.Fatalf("stats during saturation: %+v", st)
	}

	close(blocker.release)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("admitted put %d failed: %v", i, err)
		}
	}
	if got := adm.AdmissionStats().InFlight; got != 0 {
		t.Fatalf("in-flight after drain = %d", got)
	}
	if _, err := adm.PutBlob("after", []byte("x")); err != nil {
		t.Fatalf("put after drain: %v", err)
	}
}

// TestAdmissionBatchWeight checks that a batch charges its length: a batch
// bigger than the whole budget is shed outright, and two half-budget
// batches cannot both be in flight.
func TestAdmissionBatchWeight(t *testing.T) {
	adm := NewAdmission(NewMemory(), AdmissionOptions{MaxInFlight: 8})
	big := make([]BlobPut, 9)
	for i := range big {
		big[i] = BlobPut{Name: "n", Data: []byte("x")}
	}
	if _, err := adm.PutBlobs(big); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-budget batch: %v", err)
	}
	ok := make([]BlobPut, 8)
	for i := range ok {
		ok[i] = BlobPut{Name: "n", Data: []byte("x")}
	}
	if _, err := adm.PutBlobs(ok); err != nil {
		t.Fatalf("exact-budget batch: %v", err)
	}
	st := adm.AdmissionStats()
	if st.Admitted != 8 || st.Shed != 9 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestAdmissionConcurrentBound races many writers against a small budget
// under the race detector: the in-flight gauge must never exceed the
// budget, and every request must either succeed or shed typed.
func TestAdmissionConcurrentBound(t *testing.T) {
	const budget = 3
	peak := &peakService{Service: NewMemory()}
	adm := NewAdmission(peak, AdmissionOptions{MaxInFlight: budget})
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_, err := adm.PutBlob("k", []byte("v"))
				if err != nil && !errors.Is(err, ErrOverloaded) {
					t.Errorf("unexpected error: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if p := peak.peak.Load(); p > budget {
		t.Fatalf("backend saw %d concurrent writes, budget %d", p, budget)
	}
	st := adm.AdmissionStats()
	if st.Admitted == 0 {
		t.Fatal("nothing admitted")
	}
	if st.Admitted+st.Shed != 16*50 {
		t.Fatalf("admitted %d + shed %d != 800", st.Admitted, st.Shed)
	}
}

// peakService records the highest concurrent PutBlob count it observes.
type peakService struct {
	Service
	cur  atomic.Int64
	peak atomic.Int64
}

func (p *peakService) PutBlob(name string, data []byte) (int, error) {
	n := p.cur.Add(1)
	for {
		old := p.peak.Load()
		if n <= old || p.peak.CompareAndSwap(old, n) {
			break
		}
	}
	defer p.cur.Add(-1)
	return p.Service.PutBlob(name, data)
}
