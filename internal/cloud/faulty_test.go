package cloud

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestFaultyDeterministicSchedule proves the same seed yields the same fault
// sequence: two wrappers over identical workloads must fail exactly the same
// operations.
func TestFaultyDeterministicSchedule(t *testing.T) {
	run := func() []bool {
		f := NewFaulty(NewMemory(), FaultyOptions{Seed: 7, ErrorRate: 0.3})
		outcomes := make([]bool, 200)
		for i := range outcomes {
			_, err := f.PutBlob(fmt.Sprintf("doc-%03d", i), []byte("x"))
			outcomes[i] = err == nil
		}
		return outcomes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d diverged between identical seeded runs", i)
		}
	}
	// A different seed must produce a different schedule (with 200 draws at
	// 30% the chance of coincidence is negligible).
	f := NewFaulty(NewMemory(), FaultyOptions{Seed: 8, ErrorRate: 0.3})
	diverged := false
	for i := range a {
		_, err := f.PutBlob(fmt.Sprintf("doc-%03d", i), []byte("x"))
		if (err == nil) != a[i] {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("seeds 7 and 8 produced identical schedules")
	}
}

// TestFaultyErrorRateAccounting checks the injection counters add up: every
// operation is either injected, rejected by a schedule, or passed through,
// and the injected fraction lands near the configured rate.
func TestFaultyErrorRateAccounting(t *testing.T) {
	const ops = 2000
	f := NewFaulty(NewMemory(), FaultyOptions{Seed: 1, ErrorRate: 0.25})
	for i := 0; i < ops; i++ {
		_, err := f.GetBlob("missing")
		if err != nil && err != ErrInjected && err != ErrBlobNotFound {
			t.Fatalf("unexpected error class: %v", err)
		}
	}
	st := f.FaultStats()
	if st.Ops != ops {
		t.Fatalf("Ops = %d, want %d", st.Ops, ops)
	}
	if st.Injected+st.PassedThrough != ops {
		t.Fatalf("counters leak: injected %d + passed %d != %d", st.Injected, st.PassedThrough, ops)
	}
	rate := float64(st.Injected) / ops
	if rate < 0.20 || rate > 0.30 {
		t.Fatalf("injected rate %.3f too far from 0.25", rate)
	}
}

// TestFaultyOutageAndMask exercises the runtime switches: a full outage
// rejects everything, a partition mask rejects exactly its classes, and both
// clear cleanly.
func TestFaultyOutageAndMask(t *testing.T) {
	f := NewFaulty(NewMemory(), FaultyOptions{})
	if _, err := f.PutBlob("a", []byte("1")); err != nil {
		t.Fatalf("healthy put: %v", err)
	}

	f.SetDown(true)
	if !f.Down() {
		t.Fatal("Down() should report the outage")
	}
	if _, err := f.PutBlob("b", []byte("2")); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("outage put: %v", err)
	}
	if _, err := f.GetBlob("a"); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("outage get: %v", err)
	}
	f.SetDown(false)
	if _, err := f.GetBlob("a"); err != nil {
		t.Fatalf("recovered get: %v", err)
	}

	// Mask writes: reads keep flowing, writes and batches fail.
	f.SetMask(MaskWrites)
	if _, err := f.PutBlob("c", []byte("3")); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("masked put: %v", err)
	}
	if _, err := f.PutBlobs([]BlobPut{{Name: "c", Data: []byte("3")}}); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("masked batch put: %v", err)
	}
	if _, err := f.GetBlob("a"); err != nil {
		t.Fatalf("read through write mask: %v", err)
	}
	if err := f.Send(Message{To: "bob"}); err != nil {
		t.Fatalf("mail through write mask: %v", err)
	}
	// Widen to mail as well.
	f.SetMask(MaskWrites | MaskMail)
	if err := f.Send(Message{To: "bob"}); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("masked send: %v", err)
	}
	f.SetMask(0)
	if _, err := f.PutBlob("c", []byte("3")); err != nil {
		t.Fatalf("cleared mask: %v", err)
	}

	st := f.FaultStats()
	if st.OutageRejects != 2 || st.MaskRejects != 3 {
		t.Fatalf("reject accounting: %+v", st)
	}
}

// TestFaultyFlapSchedule verifies the op-counter-driven flap: within every
// window of period operations the first downFor fail, deterministically.
func TestFaultyFlapSchedule(t *testing.T) {
	f := NewFaulty(NewMemory(), FaultyOptions{})
	f.SetFlap(10, 3)
	for i := 0; i < 40; i++ {
		_, err := f.GetBlob("missing")
		wantDown := i%10 < 3
		if wantDown && !errors.Is(err, ErrUnavailable) {
			t.Fatalf("op %d should be down, got %v", i, err)
		}
		if !wantDown && errors.Is(err, ErrUnavailable) {
			t.Fatalf("op %d should be up", i)
		}
	}
	if st := f.FaultStats(); st.FlapRejects != 12 {
		t.Fatalf("flap rejects = %d, want 12", st.FlapRejects)
	}
	f.SetFlap(0, 0)
	if _, err := f.GetBlob("missing"); errors.Is(err, ErrUnavailable) {
		t.Fatal("cleared flap still rejecting")
	}
}

// TestFaultyFlapRaceStress hammers a flapping wrapper from many goroutines
// doing batched puts — run under -race in the CI availability job. The
// assertion is bookkeeping integrity, not a specific schedule: every
// operation must be accounted to exactly one outcome.
func TestFaultyFlapRaceStress(t *testing.T) {
	f := NewFaulty(NewMemory(), FaultyOptions{Seed: 99, ErrorRate: 0.05})
	f.SetFlap(7, 2)
	const (
		workers = 8
		rounds  = 50
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				puts := []BlobPut{
					{Name: fmt.Sprintf("w%d/doc-%03d", w, i), Data: []byte("x")},
					{Name: fmt.Sprintf("w%d/side-%03d", w, i), Data: []byte("y")},
				}
				_, err := f.PutBlobs(puts)
				if err != nil && err != ErrInjected && !errors.Is(err, ErrUnavailable) {
					t.Errorf("unexpected error: %v", err)
					return
				}
				if i%5 == 0 {
					f.SetDown(i%10 == 0) // flip the outage under load
				}
				_, _ = f.GetBlobs([]string{fmt.Sprintf("w%d/doc-%03d", w, i)})
			}
		}(w)
	}
	wg.Wait()
	f.SetDown(false)
	st := f.FaultStats()
	want := st.Injected + st.OutageRejects + st.FlapRejects + st.MaskRejects + st.PassedThrough
	if st.Ops != want {
		t.Fatalf("ops %d != accounted %d (%+v)", st.Ops, want, st)
	}
	if st.FlapRejects == 0 || st.PassedThrough == 0 {
		t.Fatalf("stress never exercised both paths: %+v", st)
	}
}

// TestFaultyCorruptMode proves the silent-corruption schedule flips exactly
// one bit per served copy, never mutates the inner store, and is
// deterministic in the seed.
func TestFaultyCorruptMode(t *testing.T) {
	inner := NewMemory()
	f := NewFaulty(inner, FaultyOptions{Seed: 5, CorruptRate: 1})
	want := []byte("the true bytes of the blob")
	if _, err := f.PutBlob("doc", want); err != nil {
		t.Fatal(err)
	}

	diffBits := func(a, b []byte) int {
		if len(a) != len(b) {
			t.Fatalf("length changed: %d vs %d", len(a), len(b))
		}
		bits := 0
		for i := range a {
			for x := a[i] ^ b[i]; x != 0; x &= x - 1 {
				bits++
			}
		}
		return bits
	}
	got, err := f.GetBlob("doc")
	if err != nil {
		t.Fatal(err)
	}
	if diffBits(want, got.Data) != 1 {
		t.Fatalf("served copy differs by %d bits, want exactly 1", diffBits(want, got.Data))
	}
	// The inner store still holds the true bytes.
	if b, err := inner.GetBlob("doc"); err != nil || diffBits(want, b.Data) != 0 {
		t.Fatalf("inner store mutated: %q %v", b.Data, err)
	}
	// Batch reads draw per blob.
	blobs, err := f.GetBlobs([]string{"doc", "doc"})
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range blobs {
		if diffBits(want, b.Data) != 1 {
			t.Fatalf("batch blob %d differs by %d bits, want 1", i, diffBits(want, b.Data))
		}
	}
	if got := f.FaultStats().Corrupted; got != 3 {
		t.Fatalf("Corrupted = %d, want 3", got)
	}

	// Off means off, and the same seed replays the same flips.
	f.SetCorrupt(0)
	if b, _ := f.GetBlob("doc"); diffBits(want, b.Data) != 0 {
		t.Fatal("corruption fired while switched off")
	}
	replay := func() []byte {
		g := NewFaulty(NewMemory(), FaultyOptions{Seed: 5, CorruptRate: 1})
		if _, err := g.PutBlob("doc", want); err != nil {
			t.Fatal(err)
		}
		b, err := g.GetBlob("doc")
		if err != nil {
			t.Fatal(err)
		}
		return b.Data
	}
	if !bytes.Equal(replay(), replay()) {
		t.Fatal("identical seeds produced different flips")
	}
}
