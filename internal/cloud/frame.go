package cloud

// This file replaces the one-op-per-round-trip JSON line protocol (tcp.go)
// with a connection-multiplexed framed protocol for the fleet-scale front
// door. The line protocol serializes a connection: the server handles
// requests one at a time and responses come back in order, so a slow
// operation stalls everything queued behind it and a client needs one
// connection per concurrent request. The framed protocol instead tags every
// request with an id and lets responses return in completion order, so one
// TCP connection carries any number of concurrent operations — which is
// what lets tens of thousands of simulated cells share a handful of
// sockets in experiment E14.
//
// Frame layout (DESIGN.md §11.2):
//
//	[4B big-endian length][8B big-endian request id][payload]
//
// where length counts the id plus the payload (so length >= 8), and the
// payload is the same JSON rpcRequest/rpcResponse codec the line protocol
// speaks — multiplexing buys concurrency, not a new codec, and dispatch()
// is shared verbatim. Request ids are chosen by the client, must be unique
// among its in-flight requests, and are echoed on the response; nothing
// else is read into them. A frame whose declared length exceeds the
// server's MaxFrameBytes is answered with a typed error frame and the
// connection is closed (the remaining bytes are unread, so the stream
// cannot be resynchronized). A torn frame — the connection dying mid-frame
// — just closes the connection; the client fails all in-flight calls.
//
// An optional first frame with Op "hello" and Name <tenant> binds the
// connection to that tenant's namespaced view (see Tenants). Connections
// that skip the hello talk to the server's default backend, which keeps
// old clients working against a multi-tenant server.

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// DefaultMaxFrameBytes caps a frame's declared length (id + payload) unless
// FrameServerOptions overrides it. 16 MiB comfortably fits the largest
// batch the experiments ship while bounding a malicious client's ability to
// make the server allocate.
const DefaultMaxFrameBytes = 16 << 20

// frameHeaderSize is the fixed prefix: 4 bytes length + 8 bytes request id.
const frameHeaderSize = 12

// opHello is the reserved op binding a connection to a tenant.
const opHello = "hello"

// errFrameTooLarge is the wire message sent before closing a connection
// that declared an oversized frame.
const errFrameTooLarge = "cloud: frame exceeds size limit"

// writeFrame writes one length-prefixed frame. Callers serialize access to w.
func writeFrame(w io.Writer, id uint64, payload []byte) error {
	var hdr [frameHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(8+len(payload)))
	binary.BigEndian.PutUint64(hdr[4:12], id)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame, rejecting declared lengths above maxBytes with
// errTooLarge (after consuming the 8-byte id so the caller can answer it).
var errTooLarge = errors.New("cloud: frame too large")

func readFrame(r io.Reader, maxBytes int) (id uint64, payload []byte, err error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:4]); err != nil {
		return 0, nil, err
	}
	length := binary.BigEndian.Uint32(hdr[:4])
	if length < 8 {
		return 0, nil, fmt.Errorf("cloud: malformed frame length %d", length)
	}
	if int(length) > maxBytes {
		// Read the id so the peer can be told which request died, then
		// report; the unread payload makes the stream unrecoverable and the
		// caller must close the connection.
		if _, err := io.ReadFull(r, hdr[4:12]); err != nil {
			return 0, nil, err
		}
		return binary.BigEndian.Uint64(hdr[4:12]), nil, errTooLarge
	}
	if _, err := io.ReadFull(r, hdr[4:12]); err != nil {
		return 0, nil, err
	}
	id = binary.BigEndian.Uint64(hdr[4:12])
	payload = make([]byte, length-8)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return id, payload, nil
}

// FrameServerOptions tunes a FrameServer. The zero value gets defaults from
// NewFrameServer.
type FrameServerOptions struct {
	// MaxFrameBytes rejects frames declaring more than this many bytes
	// (id + payload). Default DefaultMaxFrameBytes.
	MaxFrameBytes int
	// PerConnWorkers bounds the requests one connection may have executing
	// concurrently; beyond it the read loop blocks, which is per-connection
	// flow control, not shedding (the Admission layer sheds). Default 32.
	PerConnWorkers int
	// Tenants, when set, lets connections bind to a tenant namespace with a
	// hello frame. Connections that never say hello use the default
	// backend.
	Tenants *Tenants
}

// FrameServer serves a Service over the framed multiplexed protocol. Each
// connection gets one reader goroutine plus up to PerConnWorkers dispatch
// goroutines; response frames are serialized by a per-connection write
// mutex, so responses from concurrent requests interleave at frame
// granularity, never mid-frame. Safe for concurrent use; Serve may be
// called once per listener.
type FrameServer struct {
	svc  Service
	opts FrameServerOptions
	wg   sync.WaitGroup

	mu     sync.Mutex
	ln     net.Listener
	closed bool
}

// NewFrameServer wraps svc; call Serve to start accepting connections.
func NewFrameServer(svc Service, opts FrameServerOptions) *FrameServer {
	if opts.MaxFrameBytes <= 0 {
		opts.MaxFrameBytes = DefaultMaxFrameBytes
	}
	if opts.PerConnWorkers <= 0 {
		opts.PerConnWorkers = 32
	}
	return &FrameServer{svc: svc, opts: opts}
}

// Serve accepts connections on ln until Close is called. It returns after
// the listener is closed and every connection handler has exited.
func (s *FrameServer) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				s.wg.Wait()
				return nil
			}
			return fmt.Errorf("cloud: accept: %w", err)
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Close stops the server; in-flight connections are abandoned when their
// sockets close.
func (s *FrameServer) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	if s.ln != nil {
		return s.ln.Close()
	}
	return nil
}

// frameConn is the per-connection server state: the bound service view and
// the serialized writer.
type frameConn struct {
	conn    net.Conn
	writeMu sync.Mutex
}

func (fc *frameConn) respond(id uint64, resp rpcResponse) error {
	payload, err := json.Marshal(&resp)
	if err != nil {
		payload, _ = json.Marshal(&rpcResponse{Err: "cloud: response encoding failed"})
	}
	fc.writeMu.Lock()
	defer fc.writeMu.Unlock()
	return writeFrame(fc.conn, id, payload)
}

func (s *FrameServer) handle(conn net.Conn) {
	defer conn.Close()
	fc := &frameConn{conn: conn}
	svc := s.svc
	sem := make(chan struct{}, s.opts.PerConnWorkers)
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		id, payload, err := readFrame(conn, s.opts.MaxFrameBytes)
		if err == errTooLarge {
			resp := rpcResponse{Err: errFrameTooLarge}
			_ = fc.respond(id, resp)
			return
		}
		if err != nil {
			return // torn frame, peer gone, or malformed length
		}
		var req rpcRequest
		if err := json.Unmarshal(payload, &req); err != nil {
			if fc.respond(id, rpcResponse{Err: "cloud: malformed frame payload"}) != nil {
				return
			}
			continue
		}
		if req.Op == opHello {
			// Tenant binding is handled in the read loop, synchronously, so
			// every later frame sees the bound view without locking.
			var resp rpcResponse
			view, err := s.bindTenant(req.Name)
			if err != nil {
				applyRespError(&resp, err)
			} else {
				svc = view
			}
			if fc.respond(id, resp) != nil {
				return
			}
			continue
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(svc Service, id uint64, req rpcRequest) {
			defer wg.Done()
			defer func() { <-sem }()
			_ = fc.respond(id, dispatch(svc, req))
		}(svc, id, req)
	}
}

func (s *FrameServer) bindTenant(name string) (Service, error) {
	if s.opts.Tenants == nil {
		return nil, errors.New("cloud: server has no tenants configured")
	}
	return s.opts.Tenants.View(name)
}

// FrameClient is a Service over one multiplexed framed connection. Any
// number of goroutines may issue calls concurrently; each call is tagged
// with a fresh id, and a single demux goroutine routes response frames back
// by id, so calls complete in the server's completion order without
// head-of-line blocking. Implements BatchService and
// ConditionalBatchService. When the connection dies, every in-flight and
// subsequent call fails with the transport error; the client does not
// redial.
type FrameClient struct {
	conn    net.Conn
	writeMu sync.Mutex
	nextID  atomic.Uint64

	mu      sync.Mutex
	pending map[uint64]chan rpcResponse
	err     error // terminal transport error, set once
}

// DialFramed connects to a FrameServer at addr.
func DialFramed(addr string) (*FrameClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cloud: dial framed: %w", err)
	}
	c := &FrameClient{conn: conn, pending: make(map[uint64]chan rpcResponse)}
	go c.readLoop()
	return c, nil
}

// Hello binds the connection to a tenant namespace. Call it once, before
// issuing operations; a failed hello leaves the connection on the default
// backend.
func (c *FrameClient) Hello(tenant string) error {
	resp, err := c.call(rpcRequest{Op: opHello, Name: tenant})
	if err != nil {
		return err
	}
	return respError(resp)
}

// Close closes the connection, failing all in-flight calls.
func (c *FrameClient) Close() error { return c.conn.Close() }

// readLoop is the demux goroutine: it routes each response frame to the
// waiting call by id and, on transport error, fails everything in flight.
func (c *FrameClient) readLoop() {
	for {
		id, payload, err := readFrame(c.conn, DefaultMaxFrameBytes)
		if err != nil {
			c.fail(fmt.Errorf("cloud: framed receive: %w", err))
			return
		}
		var resp rpcResponse
		if err := json.Unmarshal(payload, &resp); err != nil {
			c.fail(fmt.Errorf("cloud: framed receive: %w", err))
			return
		}
		c.mu.Lock()
		ch := c.pending[id]
		delete(c.pending, id)
		c.mu.Unlock()
		if ch != nil {
			ch <- resp
		}
	}
}

func (c *FrameClient) fail(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err == nil {
		c.err = err
	}
	for id, ch := range c.pending {
		close(ch)
		delete(c.pending, id)
	}
}

func (c *FrameClient) call(req rpcRequest) (rpcResponse, error) {
	payload, err := json.Marshal(&req)
	if err != nil {
		return rpcResponse{}, fmt.Errorf("cloud: framed send: %w", err)
	}
	id := c.nextID.Add(1)
	ch := make(chan rpcResponse, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return rpcResponse{}, err
	}
	c.pending[id] = ch
	c.mu.Unlock()

	c.writeMu.Lock()
	err = writeFrame(c.conn, id, payload)
	c.writeMu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return rpcResponse{}, fmt.Errorf("cloud: framed send: %w", err)
	}

	resp, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = errors.New("cloud: framed connection closed")
		}
		return rpcResponse{}, err
	}
	return resp, nil
}

// PutBlob implements Service.
func (c *FrameClient) PutBlob(name string, data []byte) (int, error) {
	resp, err := c.call(rpcRequest{Op: "put", Name: name, Data: data})
	if err != nil {
		return 0, err
	}
	return resp.Version, respError(resp)
}

// GetBlob implements Service.
func (c *FrameClient) GetBlob(name string) (Blob, error) {
	resp, err := c.call(rpcRequest{Op: "get", Name: name})
	if err != nil {
		return Blob{}, err
	}
	if err := respError(resp); err != nil {
		return Blob{}, err
	}
	if resp.Blob == nil {
		return Blob{}, ErrBlobNotFound
	}
	return *resp.Blob, nil
}

// DeleteBlob implements Service.
func (c *FrameClient) DeleteBlob(name string) error {
	resp, err := c.call(rpcRequest{Op: "delete", Name: name})
	if err != nil {
		return err
	}
	return respError(resp)
}

// ListBlobs implements Service.
func (c *FrameClient) ListBlobs(prefix string) ([]string, error) {
	resp, err := c.call(rpcRequest{Op: "list", Prefix: prefix})
	if err != nil {
		return nil, err
	}
	return resp.Names, respError(resp)
}

// Send implements Service.
func (c *FrameClient) Send(msg Message) error {
	resp, err := c.call(rpcRequest{Op: "send", Message: msg})
	if err != nil {
		return err
	}
	return respError(resp)
}

// Receive implements Service.
func (c *FrameClient) Receive(recipient string, max int) ([]Message, error) {
	resp, err := c.call(rpcRequest{Op: "receive", Recipient: recipient, Max: max})
	if err != nil {
		return nil, err
	}
	return resp.Messages, respError(resp)
}

// Stats implements Service.
func (c *FrameClient) Stats() Stats {
	resp, err := c.call(rpcRequest{Op: "stats"})
	if err != nil || resp.Stats == nil {
		return Stats{}
	}
	return *resp.Stats
}

// PutBlobs implements BatchService: one frame out, one frame back, and the
// connection stays available to other goroutines while the batch commits.
func (c *FrameClient) PutBlobs(puts []BlobPut) ([]int, error) {
	resp, err := c.call(rpcRequest{Op: "putb", Puts: puts})
	if err != nil {
		return nil, err
	}
	if err := respError(resp); err != nil {
		return nil, err
	}
	if len(resp.Versions) != len(puts) {
		return nil, fmt.Errorf("cloud: batch put: server returned %d versions for %d blobs", len(resp.Versions), len(puts))
	}
	return resp.Versions, nil
}

// GetBlobs implements BatchService.
func (c *FrameClient) GetBlobs(names []string) ([]Blob, error) {
	resp, err := c.call(rpcRequest{Op: "getb", Names: names})
	if err != nil {
		return nil, err
	}
	if err := respError(resp); err != nil {
		return nil, err
	}
	if len(resp.Blobs) != len(names) {
		return nil, fmt.Errorf("cloud: batch get: server returned %d blobs for %d names", len(resp.Blobs), len(names))
	}
	return resp.Blobs, nil
}

// GetBlobsIf implements ConditionalBatchService.
func (c *FrameClient) GetBlobsIf(gets []CondGet) ([]Blob, error) {
	resp, err := c.call(rpcRequest{Op: "getc", Gets: gets})
	if err != nil {
		return nil, err
	}
	if err := respError(resp); err != nil {
		return nil, err
	}
	if len(resp.Blobs) != len(gets) {
		return nil, fmt.Errorf("cloud: conditional batch get: server returned %d blobs for %d requests", len(resp.Blobs), len(gets))
	}
	return resp.Blobs, nil
}
