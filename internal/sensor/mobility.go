package sensor

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// This file simulates the paper's second trusted source: the GPS tracking box
// installed in a car for a pay-as-you-drive (PAYD) insurance or road-pricing
// application. The box delivers raw positions to the owner's cell and only
// the result of the pricing computation to the insurer or the local
// government ("the GPS tracker gives detailed turn-by-turn guidance, but
// hides those details, only delivering the result of road-pricing
// computations").

// Position is one GPS fix.
type Position struct {
	Time time.Time
	Lat  float64
	Lon  float64
	// RoadClass is 0 for local roads, 1 for arterial, 2 for highway; it
	// drives the per-kilometre price.
	RoadClass int
}

// Trip is one journey recorded by the tracking box.
type Trip struct {
	ID        string
	Positions []Position
}

// TripConfig parameterises the trip generator.
type TripConfig struct {
	Start        time.Time
	SampleEvery  time.Duration
	DurationMin  int
	AvgSpeedKmh  float64
	StartLat     float64
	StartLon     float64
	Seed         int64
	HighwayShare float64
}

// DefaultTripConfig returns a plausible commute.
func DefaultTripConfig(start time.Time, seed int64) TripConfig {
	return TripConfig{
		Start:        start,
		SampleEvery:  5 * time.Second,
		DurationMin:  35,
		AvgSpeedKmh:  45,
		StartLat:     48.80,
		StartLon:     2.13,
		Seed:         seed,
		HighwayShare: 0.4,
	}
}

// GenerateTrip produces a synthetic GPS trace.
func GenerateTrip(id string, cfg TripConfig) (*Trip, error) {
	if cfg.DurationMin <= 0 || cfg.SampleEvery <= 0 {
		return nil, fmt.Errorf("sensor: invalid trip configuration")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	samples := int(time.Duration(cfg.DurationMin) * time.Minute / cfg.SampleEvery)
	trip := &Trip{ID: id, Positions: make([]Position, 0, samples)}
	lat, lon := cfg.StartLat, cfg.StartLon
	heading := rng.Float64() * 2 * math.Pi
	for i := 0; i < samples; i++ {
		speed := cfg.AvgSpeedKmh * (0.7 + 0.6*rng.Float64())
		roadClass := 0
		switch {
		case rng.Float64() < cfg.HighwayShare:
			roadClass = 2
			speed *= 1.8
		case rng.Float64() < 0.5:
			roadClass = 1
			speed *= 1.2
		}
		distKm := speed * cfg.SampleEvery.Hours()
		heading += (rng.Float64() - 0.5) * 0.3
		lat += distKm / 111.0 * math.Cos(heading)
		lon += distKm / (111.0 * math.Cos(lat*math.Pi/180)) * math.Sin(heading)
		trip.Positions = append(trip.Positions, Position{
			Time:      cfg.Start.Add(time.Duration(i) * cfg.SampleEvery),
			Lat:       lat,
			Lon:       lon,
			RoadClass: roadClass,
		})
	}
	return trip, nil
}

// DistanceKm returns the total travelled distance of a trip using the
// haversine formula between consecutive fixes.
func (t *Trip) DistanceKm() float64 {
	var total float64
	for i := 1; i < len(t.Positions); i++ {
		total += haversineKm(t.Positions[i-1], t.Positions[i])
	}
	return total
}

func haversineKm(a, b Position) float64 {
	const r = 6371.0
	lat1 := a.Lat * math.Pi / 180
	lat2 := b.Lat * math.Pi / 180
	dLat := (b.Lat - a.Lat) * math.Pi / 180
	dLon := (b.Lon - a.Lon) * math.Pi / 180
	h := math.Sin(dLat/2)*math.Sin(dLat/2) + math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * r * math.Asin(math.Min(1, math.Sqrt(h)))
}

// PricingScheme maps road classes to a price per kilometre.
type PricingScheme struct {
	LocalPerKm    float64
	ArterialPerKm float64
	HighwayPerKm  float64
}

// DefaultPricing is a simple three-tier road-pricing scheme.
func DefaultPricing() PricingScheme {
	return PricingScheme{LocalPerKm: 0.02, ArterialPerKm: 0.04, HighwayPerKm: 0.08}
}

// RoadPricingSummary is the aggregate the cell externalizes to the insurer or
// road authority: a fee and coarse distance counters, but no positions.
type RoadPricingSummary struct {
	TripID      string
	TotalKm     float64
	HighwayKm   float64
	ArterialKm  float64
	LocalKm     float64
	Fee         float64
	PeakHourUse bool
}

// ComputeRoadPricing runs the pricing computation over the raw trace inside
// the cell and returns only the summary.
func ComputeRoadPricing(t *Trip, scheme PricingScheme) RoadPricingSummary {
	sum := RoadPricingSummary{TripID: t.ID}
	for i := 1; i < len(t.Positions); i++ {
		d := haversineKm(t.Positions[i-1], t.Positions[i])
		sum.TotalKm += d
		switch t.Positions[i].RoadClass {
		case 2:
			sum.HighwayKm += d
			sum.Fee += d * scheme.HighwayPerKm
		case 1:
			sum.ArterialKm += d
			sum.Fee += d * scheme.ArterialPerKm
		default:
			sum.LocalKm += d
			sum.Fee += d * scheme.LocalPerKm
		}
		h := t.Positions[i].Time.Hour()
		if h >= 7 && h < 10 || h >= 17 && h < 20 {
			sum.PeakHourUse = true
		}
	}
	return sum
}

// Receipt is a purchase record obtained by near-field communication — the
// paper's example of externally produced data.
type Receipt struct {
	ID       string
	Merchant string
	Category string
	Amount   float64
	Time     time.Time
}

// GenerateReceipts produces n synthetic receipts over the given period.
func GenerateReceipts(n int, start time.Time, seed int64) []Receipt {
	rng := rand.New(rand.NewSource(seed))
	merchants := []struct{ name, cat string }{
		{"SuperMart", "groceries"}, {"PharmaPlus", "health"}, {"CityTransit", "transport"},
		{"BookNook", "leisure"}, {"GreenGrocer", "groceries"}, {"ElectroShop", "electronics"},
	}
	out := make([]Receipt, 0, n)
	for i := 0; i < n; i++ {
		m := merchants[rng.Intn(len(merchants))]
		out = append(out, Receipt{
			ID:       fmt.Sprintf("rcpt-%05d", i),
			Merchant: m.name,
			Category: m.cat,
			Amount:   math.Round(rng.Float64()*15000) / 100,
			Time:     start.Add(time.Duration(rng.Intn(30*24)) * time.Hour),
		})
	}
	return out
}

// HealthRecord is a medical observation sent by a hospital or lab.
type HealthRecord struct {
	ID        string
	Condition string
	AgeBand   string
	ZIP3      string
	Diet      string
	Time      time.Time
}

// GenerateHealthRecords produces n synthetic epidemiological records; the
// shared-commons experiments (E8) anonymize and aggregate them.
func GenerateHealthRecords(n int, start time.Time, seed int64) []HealthRecord {
	rng := rand.New(rand.NewSource(seed))
	conditions := []string{"diabetes", "hypertension", "asthma", "none", "none", "none"}
	diets := []string{"omnivore", "vegetarian", "high-sugar", "mediterranean"}
	ageBands := []string{"18-30", "31-45", "46-60", "61-75", "76+"}
	out := make([]HealthRecord, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, HealthRecord{
			ID:        fmt.Sprintf("hr-%06d", i),
			Condition: conditions[rng.Intn(len(conditions))],
			AgeBand:   ageBands[rng.Intn(len(ageBands))],
			ZIP3:      fmt.Sprintf("%03d", 750+rng.Intn(20)),
			Diet:      diets[rng.Intn(len(diets))],
			Time:      start.Add(time.Duration(rng.Intn(365*24)) * time.Hour),
		})
	}
	return out
}
