package sensor

import (
	"testing"
	"time"

	"trustedcells/internal/timeseries"
)

var day = time.Date(2013, 1, 14, 0, 0, 0, 0, time.UTC)

func generateDay(t testing.TB, seed int64) *HouseholdTrace {
	t.Helper()
	trace, err := GenerateHousehold(DefaultHouseholdConfig(day, seed))
	if err != nil {
		t.Fatalf("GenerateHousehold: %v", err)
	}
	return trace
}

func TestGenerateHouseholdShape(t *testing.T) {
	trace := generateDay(t, 1)
	if trace.Power.Len() != 24*3600 {
		t.Fatalf("expected 86400 points, got %d", trace.Power.Len())
	}
	if len(trace.GroundTruth) == 0 {
		t.Fatal("no ground-truth activations")
	}
	st := trace.Power.Stats()
	if st.Min < 0 {
		t.Fatalf("negative power reading: %v", st.Min)
	}
	if st.Max < 2000 {
		t.Fatalf("no large appliance ever ran: max=%v", st.Max)
	}
	if st.Mean < trace.Baseload {
		t.Fatalf("mean %v below baseload %v", st.Mean, trace.Baseload)
	}
	// Ground truth sorted by start time.
	for i := 1; i < len(trace.GroundTruth); i++ {
		if trace.GroundTruth[i].Start.Before(trace.GroundTruth[i-1].Start) {
			t.Fatal("ground truth not sorted")
		}
	}
}

func TestGenerateHouseholdDeterministic(t *testing.T) {
	a := generateDay(t, 7)
	b := generateDay(t, 7)
	if a.Power.Len() != b.Power.Len() || len(a.GroundTruth) != len(b.GroundTruth) {
		t.Fatal("same seed produced different traces")
	}
	if a.Power.At(1000).Value != b.Power.At(1000).Value {
		t.Fatal("same seed produced different readings")
	}
	c := generateDay(t, 8)
	if a.Power.At(1000).Value == c.Power.At(1000).Value && len(a.GroundTruth) == len(c.GroundTruth) {
		t.Log("warning: different seeds produced suspiciously similar traces")
	}
}

func TestGenerateHouseholdValidation(t *testing.T) {
	cfg := DefaultHouseholdConfig(day, 1)
	cfg.Duration = 0
	if _, err := GenerateHousehold(cfg); err == nil {
		t.Fatal("zero duration accepted")
	}
	cfg = DefaultHouseholdConfig(day, 1)
	cfg.Appliances = nil
	cfg.Duration = time.Hour
	trace, err := GenerateHousehold(cfg)
	if err != nil {
		t.Fatalf("empty appliance list should fall back to defaults: %v", err)
	}
	if trace.Power.Len() != 3600 {
		t.Fatalf("one-hour trace has %d points", trace.Power.Len())
	}
}

func TestNILMDetectsAppliancesAtFullRate(t *testing.T) {
	trace := generateDay(t, 3)
	det := NewNILMDetector(DefaultAppliances())
	events := det.Detect(trace.Power)
	if len(events) == 0 {
		t.Fatal("no events detected on a 1 Hz trace")
	}
	score := Score(trace.GroundTruth, events)
	if score.F1 < 0.5 {
		t.Fatalf("F1 at 1 Hz = %.2f, expected reasonable detection", score.F1)
	}
}

func TestNILMDegradesWithGranularity(t *testing.T) {
	trace := generateDay(t, 3)
	det := NewNILMDetector(DefaultAppliances())

	fineEvents := det.Detect(trace.Power)
	fine := Score(trace.GroundTruth, fineEvents)

	coarseSeries, err := trace.Power.DownsampleSeries(timeseries.Granularity15Min, timeseries.AggregateMean)
	if err != nil {
		t.Fatal(err)
	}
	coarse := Score(trace.GroundTruth, det.Detect(coarseSeries))

	if coarse.F1 >= fine.F1 {
		t.Fatalf("detection did not degrade: 1Hz F1=%.2f, 15min F1=%.2f", fine.F1, coarse.F1)
	}
	if coarse.F1 > 0.3 {
		t.Fatalf("15-minute aggregates still reveal appliances: F1=%.2f", coarse.F1)
	}
}

func TestRoutineDetectabilitySurvivesCoarsening(t *testing.T) {
	trace := generateDay(t, 3)
	coarse, err := trace.Power.DownsampleSeries(timeseries.Granularity15Min, timeseries.AggregateMean)
	if err != nil {
		t.Fatal(err)
	}
	r := RoutineDetectability(coarse)
	if r <= 0 {
		t.Fatalf("routine detectability at 15 min = %v, expected > 0 (the paper: routines remain visible)", r)
	}
	if r > 1 {
		t.Fatalf("routine detectability out of range: %v", r)
	}
	if RoutineDetectability(timeseries.NewSeries("x", "W")) != 0 {
		t.Fatal("empty series should have zero detectability")
	}
}

func TestScoreEdgeCases(t *testing.T) {
	truth := []Activation{{Appliance: "kettle", Start: day, End: day.Add(3 * time.Minute)}}
	// Perfect detection.
	s := Score(truth, []DetectedEvent{{Appliance: "kettle", Start: day.Add(10 * time.Second), End: day.Add(2 * time.Minute)}})
	if s.TruePositives != 1 || s.F1 != 1 {
		t.Fatalf("perfect score %+v", s)
	}
	// Wrong appliance.
	s = Score(truth, []DetectedEvent{{Appliance: "oven", Start: day, End: day.Add(time.Minute)}})
	if s.TruePositives != 0 || s.FalsePositives != 1 || s.FalseNegatives != 1 {
		t.Fatalf("wrong appliance score %+v", s)
	}
	// No detections at all.
	s = Score(truth, nil)
	if s.F1 != 0 || s.FalseNegatives != 1 {
		t.Fatalf("empty detection score %+v", s)
	}
	// No truth: every detection is false.
	s = Score(nil, []DetectedEvent{{Appliance: "kettle", Start: day, End: day.Add(time.Minute)}})
	if s.FalsePositives != 1 || s.Recall != 0 {
		t.Fatalf("no-truth score %+v", s)
	}
}

func TestDetectorEmptySeries(t *testing.T) {
	det := NewNILMDetector(DefaultAppliances())
	if events := det.Detect(timeseries.NewSeries("x", "W")); len(events) != 0 {
		t.Fatal("events detected on empty series")
	}
}

func TestGenerateTripAndPricing(t *testing.T) {
	trip, err := GenerateTrip("commute-1", DefaultTripConfig(day.Add(8*time.Hour), 5))
	if err != nil {
		t.Fatalf("GenerateTrip: %v", err)
	}
	if len(trip.Positions) == 0 {
		t.Fatal("empty trip")
	}
	dist := trip.DistanceKm()
	if dist <= 0 || dist > 300 {
		t.Fatalf("implausible trip distance %v km", dist)
	}
	sum := ComputeRoadPricing(trip, DefaultPricing())
	if sum.Fee <= 0 {
		t.Fatalf("fee = %v", sum.Fee)
	}
	if sum.TotalKm <= 0 {
		t.Fatal("zero priced distance")
	}
	partsSum := sum.HighwayKm + sum.ArterialKm + sum.LocalKm
	if diff := partsSum - sum.TotalKm; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("class distances %.3f do not sum to total %.3f", partsSum, sum.TotalKm)
	}
	if !sum.PeakHourUse {
		t.Fatal("a trip at 8am should be flagged as peak-hour use")
	}
	// Validation.
	bad := DefaultTripConfig(day, 1)
	bad.DurationMin = 0
	if _, err := GenerateTrip("x", bad); err == nil {
		t.Fatal("invalid trip config accepted")
	}
}

func TestGenerateTripDeterministic(t *testing.T) {
	a, _ := GenerateTrip("t", DefaultTripConfig(day, 9))
	b, _ := GenerateTrip("t", DefaultTripConfig(day, 9))
	if a.DistanceKm() != b.DistanceKm() {
		t.Fatal("same seed produced different trips")
	}
}

func TestGenerateReceiptsAndHealthRecords(t *testing.T) {
	receipts := GenerateReceipts(50, day, 11)
	if len(receipts) != 50 {
		t.Fatalf("receipts = %d", len(receipts))
	}
	for _, r := range receipts {
		if r.Amount < 0 || r.Merchant == "" || r.Category == "" {
			t.Fatalf("bad receipt %+v", r)
		}
	}
	records := GenerateHealthRecords(100, day, 11)
	if len(records) != 100 {
		t.Fatalf("health records = %d", len(records))
	}
	conditions := map[string]int{}
	for _, h := range records {
		if h.AgeBand == "" || h.ZIP3 == "" {
			t.Fatalf("bad record %+v", h)
		}
		conditions[h.Condition]++
	}
	if len(conditions) < 2 {
		t.Fatal("health records lack condition diversity")
	}
}

func BenchmarkGenerateHouseholdDay(b *testing.B) {
	cfg := DefaultHouseholdConfig(day, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GenerateHousehold(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNILMDetect(b *testing.B) {
	trace := generateDay(b, 1)
	det := NewNILMDetector(DefaultAppliances())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.Detect(trace.Power)
	}
}
