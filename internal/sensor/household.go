// Package sensor simulates the trusted sources of the architecture: the
// smart power meter streaming 1 Hz readings with recognisable appliance
// signatures, the GPS tracking box of a pay-as-you-drive insurance contract,
// and the purchase/medical feeds of the motivation section. It also provides
// a NILM-style (non-intrusive load monitoring) detector used by experiment E1
// to quantify how much activity information leaks at each reporting
// granularity — the paper's core privacy argument ("at 1 Hz most electrical
// appliances have a distinctive energy signature ... at 15 minutes one cannot
// detect specific activities").
package sensor

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"trustedcells/internal/timeseries"
)

// Appliance describes one household device and its electrical signature.
type Appliance struct {
	// Name identifies the appliance ("kettle", "heat-pump", ...).
	Name string
	// PowerW is the active power drawn when on, in watts.
	PowerW float64
	// CycleMinutes is the typical duration of one activation.
	CycleMinutes int
	// DailyCycles is the expected number of activations per day.
	DailyCycles int
	// Jitter is the relative variation (0..1) applied to power and duration.
	Jitter float64
}

// DefaultAppliances returns a seven-appliance household modelled after the
// load-signature literature the paper cites: large distinctive loads (kettle,
// oven, EV charger), cyclic loads (fridge, heat pump) and small steady loads.
func DefaultAppliances() []Appliance {
	return []Appliance{
		{Name: "fridge", PowerW: 120, CycleMinutes: 20, DailyCycles: 30, Jitter: 0.1},
		{Name: "kettle", PowerW: 2200, CycleMinutes: 3, DailyCycles: 5, Jitter: 0.05},
		{Name: "oven", PowerW: 2800, CycleMinutes: 45, DailyCycles: 1, Jitter: 0.1},
		{Name: "washer", PowerW: 1600, CycleMinutes: 75, DailyCycles: 1, Jitter: 0.15},
		{Name: "heat-pump", PowerW: 900, CycleMinutes: 40, DailyCycles: 10, Jitter: 0.2},
		{Name: "ev-charger", PowerW: 3600, CycleMinutes: 180, DailyCycles: 1, Jitter: 0.05},
		{Name: "tv", PowerW: 150, CycleMinutes: 120, DailyCycles: 2, Jitter: 0.1},
	}
}

// Activation is one ground-truth appliance activation interval.
type Activation struct {
	Appliance string
	Start     time.Time
	End       time.Time
}

// HouseholdTrace is one simulated day (or any duration) of household load.
type HouseholdTrace struct {
	// Power is the 1 Hz aggregate power series in watts.
	Power *timeseries.Series
	// GroundTruth lists every appliance activation that produced the trace.
	GroundTruth []Activation
	// Baseload is the constant background consumption in watts.
	Baseload float64
}

// HouseholdConfig parameterises the generator.
type HouseholdConfig struct {
	Appliances []Appliance
	Start      time.Time
	Duration   time.Duration
	BaseloadW  float64
	// NoiseW is the standard deviation of measurement noise added per second.
	NoiseW float64
	Seed   int64
}

// DefaultHouseholdConfig returns a 24-hour trace configuration starting at
// the given instant.
func DefaultHouseholdConfig(start time.Time, seed int64) HouseholdConfig {
	return HouseholdConfig{
		Appliances: DefaultAppliances(),
		Start:      start,
		Duration:   24 * time.Hour,
		BaseloadW:  80,
		NoiseW:     6,
		Seed:       seed,
	}
}

// GenerateHousehold produces a synthetic household load trace at 1 Hz with
// ground-truth activations.
func GenerateHousehold(cfg HouseholdConfig) (*HouseholdTrace, error) {
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("sensor: non-positive duration")
	}
	if len(cfg.Appliances) == 0 {
		cfg.Appliances = DefaultAppliances()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	seconds := int(cfg.Duration / time.Second)
	load := make([]float64, seconds)
	for i := range load {
		load[i] = cfg.BaseloadW + rng.NormFloat64()*cfg.NoiseW
		if load[i] < 0 {
			load[i] = 0
		}
	}

	var truth []Activation
	dayFraction := cfg.Duration.Hours() / 24.0
	for _, app := range cfg.Appliances {
		cycles := int(math.Round(float64(app.DailyCycles) * dayFraction))
		if cycles == 0 && app.DailyCycles > 0 && rng.Float64() < float64(app.DailyCycles)*dayFraction {
			cycles = 1
		}
		for c := 0; c < cycles; c++ {
			durSec := int(float64(app.CycleMinutes*60) * (1 + app.Jitter*(rng.Float64()*2-1)))
			if durSec < 30 {
				durSec = 30
			}
			if durSec >= seconds {
				durSec = seconds / 2
			}
			start := rng.Intn(seconds - durSec)
			power := app.PowerW * (1 + app.Jitter*(rng.Float64()*2-1))
			for s := start; s < start+durSec; s++ {
				load[s] += power
			}
			truth = append(truth, Activation{
				Appliance: app.Name,
				Start:     cfg.Start.Add(time.Duration(start) * time.Second),
				End:       cfg.Start.Add(time.Duration(start+durSec) * time.Second),
			})
		}
	}
	sort.Slice(truth, func(i, j int) bool { return truth[i].Start.Before(truth[j].Start) })

	series := timeseries.NewSeries("household-power", "W")
	for i, v := range load {
		if err := series.AppendValue(cfg.Start.Add(time.Duration(i)*time.Second), v); err != nil {
			return nil, err
		}
	}
	return &HouseholdTrace{Power: series, GroundTruth: truth, Baseload: cfg.BaseloadW}, nil
}

// DetectedEvent is one appliance activation inferred by the NILM detector.
type DetectedEvent struct {
	Appliance string
	Start     time.Time
	End       time.Time
}

// NILMDetector infers appliance activity from a (possibly downsampled) power
// series by edge detection: a sustained rise close to an appliance's rated
// power marks an activation, the matching fall marks its end. The detector is
// deliberately simple — the point of E1 is not state-of-the-art NILM but the
// relative degradation of inference as granularity coarsens.
type NILMDetector struct {
	Appliances []Appliance
	// Tolerance is the relative error accepted when matching a power step to
	// an appliance rating (default 0.25).
	Tolerance float64
}

// NewNILMDetector builds a detector for the given appliance library.
func NewNILMDetector(apps []Appliance) *NILMDetector {
	return &NILMDetector{Appliances: apps, Tolerance: 0.25}
}

// Detect runs edge matching over the series and returns the inferred events.
func (d *NILMDetector) Detect(s *timeseries.Series) []DetectedEvent {
	pts := s.Points()
	if len(pts) < 2 {
		return nil
	}
	tol := d.Tolerance
	if tol <= 0 {
		tol = 0.25
	}
	// Track open activations per appliance (stack of start times).
	open := make(map[string][]time.Time)
	var events []DetectedEvent
	for i := 1; i < len(pts); i++ {
		delta := pts[i].Value - pts[i-1].Value
		mag := math.Abs(delta)
		if mag < 80 { // below the smallest interesting appliance step
			continue
		}
		app, ok := d.matchAppliance(mag, tol)
		if !ok {
			continue
		}
		if delta > 0 {
			open[app.Name] = append(open[app.Name], pts[i].Time)
			continue
		}
		starts := open[app.Name]
		if len(starts) == 0 {
			continue
		}
		start := starts[len(starts)-1]
		open[app.Name] = starts[:len(starts)-1]
		events = append(events, DetectedEvent{Appliance: app.Name, Start: start, End: pts[i].Time})
	}
	sort.Slice(events, func(i, j int) bool { return events[i].Start.Before(events[j].Start) })
	return events
}

func (d *NILMDetector) matchAppliance(stepW, tol float64) (Appliance, bool) {
	best := Appliance{}
	bestErr := math.Inf(1)
	for _, a := range d.Appliances {
		relErr := math.Abs(stepW-a.PowerW) / a.PowerW
		if relErr < tol && relErr < bestErr {
			best = a
			bestErr = relErr
		}
	}
	return best, !math.IsInf(bestErr, 1)
}

// DetectionScore summarises how well detected events match the ground truth.
type DetectionScore struct {
	TruePositives  int
	FalsePositives int
	FalseNegatives int
	Precision      float64
	Recall         float64
	F1             float64
}

// Score matches detections against ground truth: a detection is a true
// positive if an untaken ground-truth activation of the same appliance
// overlaps it in time.
func Score(truth []Activation, detected []DetectedEvent) DetectionScore {
	used := make([]bool, len(truth))
	var score DetectionScore
	for _, ev := range detected {
		matched := false
		for i, act := range truth {
			if used[i] || act.Appliance != ev.Appliance {
				continue
			}
			if overlaps(act.Start, act.End, ev.Start, ev.End) {
				used[i] = true
				matched = true
				break
			}
		}
		if matched {
			score.TruePositives++
		} else {
			score.FalsePositives++
		}
	}
	for i := range truth {
		if !used[i] {
			score.FalseNegatives++
		}
	}
	if score.TruePositives+score.FalsePositives > 0 {
		score.Precision = float64(score.TruePositives) / float64(score.TruePositives+score.FalsePositives)
	}
	if score.TruePositives+score.FalseNegatives > 0 {
		score.Recall = float64(score.TruePositives) / float64(score.TruePositives+score.FalseNegatives)
	}
	if score.Precision+score.Recall > 0 {
		score.F1 = 2 * score.Precision * score.Recall / (score.Precision + score.Recall)
	}
	return score
}

func overlaps(aStart, aEnd, bStart, bEnd time.Time) bool {
	return aStart.Before(bEnd) && bStart.Before(aEnd)
}

// RoutineDetectability estimates how much daily-routine information remains
// at a given granularity: the fraction of hours whose mean consumption
// deviates from the daily mean by more than 20% (occupied/active hours are
// distinguishable even in coarse aggregates). It is reported alongside the
// appliance F1 in E1 to show that coarse granularities still reveal routines
// ("at that granularity ... it is still possible to infer a daily routine").
func RoutineDetectability(s *timeseries.Series) float64 {
	buckets, err := s.Downsample(timeseries.GranularityHour)
	if err != nil || len(buckets) == 0 {
		return 0
	}
	var total float64
	for _, b := range buckets {
		total += b.Stats.Mean
	}
	mean := total / float64(len(buckets))
	if mean == 0 {
		return 0
	}
	distinct := 0
	for _, b := range buckets {
		if math.Abs(b.Stats.Mean-mean)/mean > 0.2 {
			distinct++
		}
	}
	return float64(distinct) / float64(len(buckets))
}
