package sync

// Authenticated catalog: rollback and fork detection for the sharded delta
// protocol. The AEAD envelope (codec.go, shardAD) already convicts a provider
// that *modifies* a shard blob — but a provider that re-serves an old, validly
// sealed blob (rollback), or shows different clients different histories
// (fork/equivocation), never breaks a seal. This file closes that gap.
//
// Every push stamps the outgoing shard state with an attestation: a Merkle
// root over the shard's documents, countersigned together with a monotonic
// per-shard epoch under a key the provider never holds. Replicas witness the
// attestations they merge and audit every fetched blob against that witness
// set:
//
//	rule 1 (freshness) — the provider serves a shard *below* the version it
//	    acknowledged for our own last push. On a single provider version
//	    numbers are monotonic per name, so this is guilt, classified as
//	    rollback or fork by whether the served history carries epochs newer
//	    than our witness set.
//	rule 2 (stale epochs) — the blob's version advanced past everything we
//	    merged, yet it carries no epoch newer than our witness set: old
//	    content re-served under a bumped version number.
//	rule 3 (equivocation) — one (replica, epoch) pair signed over two
//	    different roots. Signing keys live only in the cells, so this proves
//	    a forked history was joined back together.
//
// Rules 1 and 2 are sound against an honest *single* provider (Memory,
// Durable, a tccloud server) but not against a replicated quorum: quorum reads
// may legally regress below an acknowledged version when the write quorum and
// read quorum intersect only in members that have not yet drained their hints,
// and anti-entropy repairs can bump member version counters without new
// content. Replicas syncing over cloud.Replicated therefore run with
// SetStrictFreshness(false) — violations count as suspicions and re-dirty the
// shard (republishing heals benign races) — and Byzantine members are instead
// convicted per member via CheckShardBlob and quarantined by the replication
// layer (see cloud/replicated.go and experiment E17).

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"trustedcells/internal/cloud"
	"trustedcells/internal/crypto"
	"trustedcells/internal/datamodel"
)

// Errors the freshness audit convicts with. Both unwrap to ErrIntegrity, so
// existing callers that fail closed on integrity violations keep doing so.
var (
	// ErrRollbackDetected reports a provider serving stale catalog state
	// under a current (or advanced) version number.
	ErrRollbackDetected = errors.New("sync: provider rollback detected")
	// ErrForkDetected reports a provider showing this replica a history that
	// diverged from one it already acknowledged or served elsewhere.
	ErrForkDetected = errors.New("sync: provider fork detected")
)

// Attestation is one replica's signed commitment to a shard's content at one
// epoch: a Merkle root over the shard's documents plus a monotonic per-shard
// counter, HMAC-signed under a key derived from the user's master secret. The
// provider stores attestations inside the sealed blob and cannot forge, strip
// or replay them without tripping rule 2 or rule 3.
type Attestation struct {
	Epoch uint64 `json:"epoch"`
	Root  []byte `json:"root"`
	Sig   []byte `json:"sig"`
}

// RollbackError is the typed evidence behind ErrRollbackDetected.
type RollbackError struct {
	Shard int
	// Replica and the epochs identify the attestation whose staleness
	// convicted the provider (empty when conviction came from version
	// regression alone).
	Replica        string
	WitnessedEpoch uint64
	ServedEpoch    uint64
	// AckedVersion is the blob version the provider acknowledged for this
	// replica's own last push; ServedVersion is what it served instead.
	AckedVersion  int
	ServedVersion int
}

func (e *RollbackError) Error() string {
	return fmt.Sprintf("sync: provider rollback detected on shard %d (acked v%d, served v%d, witnessed epoch %d, served epoch %d)",
		e.Shard, e.AckedVersion, e.ServedVersion, e.WitnessedEpoch, e.ServedEpoch)
}

// Unwrap makes errors.Is(err, ErrRollbackDetected) and errors.Is(err,
// ErrIntegrity) both true: a rollback is an integrity violation with a name.
func (e *RollbackError) Unwrap() []error { return []error{ErrRollbackDetected, ErrIntegrity} }

// ForkError is the typed evidence behind ErrForkDetected.
type ForkError struct {
	Shard          int
	Replica        string
	WitnessedEpoch uint64
	ServedEpoch    uint64
	AckedVersion   int
	ServedVersion  int
}

func (e *ForkError) Error() string {
	return fmt.Sprintf("sync: provider fork detected on shard %d (replica %q epoch %d vs witnessed %d, acked v%d, served v%d)",
		e.Shard, e.Replica, e.ServedEpoch, e.WitnessedEpoch, e.AckedVersion, e.ServedVersion)
}

func (e *ForkError) Unwrap() []error { return []error{ErrForkDetected, ErrIntegrity} }

// divergenceError is the internal rule-1 verdict raised under the state mutex:
// guilt is established (the provider served a shard below our acknowledged
// version), but rollback-vs-fork classification needs a cloud refetch, so
// push/pull translate it outside the lock via classifyDivergence.
type divergenceError struct {
	shard  int
	acked  int
	served int
}

func (e *divergenceError) Error() string {
	return fmt.Sprintf("sync: shard %d served at v%d below acknowledged v%d", e.shard, e.served, e.acked)
}

// SetAttestation toggles shard attestation stamping (default on). With it off,
// pushes emit the unauthenticated v1 codec — experiment E17 uses the toggle to
// measure the proof-bytes overhead, and it is the escape hatch for mixed
// fleets with pre-attestation replicas.
func (r *Replica) SetAttestation(on bool) {
	r.mu.Lock()
	r.attest = on
	r.mu.Unlock()
}

// SetStrictFreshness selects what a freshness violation (rules 1 and 2) does:
// strict (default) returns a typed RollbackError/ForkError from the sync
// round; lenient counts a suspicion and re-dirties the shard so the next push
// republishes the newest state. Strict is sound against a single provider;
// replicas syncing over a replicated quorum must run lenient (see the package
// comment above).
func (r *Replica) SetStrictFreshness(on bool) {
	r.mu.Lock()
	r.strict = on
	r.mu.Unlock()
}

// SetEpochSource installs an external monotonic counter for attestation
// epochs, called once per attested shard push. Cells back it with the TEE's
// tamper-resistant counters (tamper.TEE.CounterIncrement), which survive
// restarts; without a source the replica uses an in-memory counter resuming
// past its own witnessed epochs.
func (r *Replica) SetEpochSource(fn func(shard int) (uint64, error)) {
	r.mu.Lock()
	r.epochSource = fn
	r.mu.Unlock()
}

// Suspicions returns how many freshness violations the replica absorbed in
// lenient mode (SetStrictFreshness(false)). Honest runs — even with benign
// quorum races — keep this at zero over Memory and Durable backends; over a
// replicated quorum a nonzero count is the signal to audit members.
func (r *Replica) Suspicions() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.suspicions
}

// attestMsg is the byte string a shard attestation signs: domain tag, user,
// shard layout, shard index, author replica, epoch and root. Binding the
// layout and index means an attestation cannot be transplanted across shards
// or across replicas configured with different shard counts.
func (r *Replica) attestMsg(si int, replica string, epoch uint64, root []byte) []byte {
	b := make([]byte, 0, 64+len(root))
	b = datamodel.AppendString(b, "sync-attest")
	b = datamodel.AppendString(b, r.userID)
	b = binary.AppendUvarint(b, uint64(len(r.shards)))
	b = binary.AppendUvarint(b, uint64(si))
	b = datamodel.AppendString(b, replica)
	b = binary.AppendUvarint(b, epoch)
	b = binary.AppendUvarint(b, uint64(len(root)))
	return append(b, root...)
}

// signAttest signs one attestation message under the replica's audit key.
func (r *Replica) signAttest(si int, replica string, epoch uint64, root []byte) []byte {
	return crypto.HMAC(r.authKey, r.attestMsg(si, replica, epoch, root))
}

// shardMerkleRoot commits to a shard's document set: one leaf per document
// (sorted by ID) covering the ID, winning revision, authoring replica and
// tombstone flag. Content bytes are already covered by the AEAD seal; the
// root pins *which versions* the shard holds, which is exactly what rollback
// and fork attacks manipulate.
func shardMerkleRoot(st shardState) []byte {
	ids := make([]string, 0, len(st.Docs))
	for id := range st.Docs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	leaves := make([][]byte, len(ids))
	for i, id := range ids {
		v := st.Docs[id]
		leaf := datamodel.AppendString(nil, id)
		leaf = binary.AppendUvarint(leaf, v.Revision)
		leaf = datamodel.AppendString(leaf, v.Replica)
		var flags byte
		if v.Deleted {
			flags |= shardFlagDeleted
		}
		leaves[i] = append(leaf, flags)
	}
	return crypto.NewMerkleTree(leaves).Root()
}

// nextEpochLocked issues the epoch for one outgoing attestation. The external
// source wins when installed; otherwise the in-memory counter continues past
// the replica's own witnessed epochs, so a replica rebuilt from replicated
// state (which pulls before its first push) does not reuse epochs it already
// published.
func (r *Replica) nextEpochLocked(si int) (uint64, error) {
	if r.epochSource != nil {
		return r.epochSource(si)
	}
	sh := r.shards[si]
	e := sh.epoch
	if own, ok := sh.attests[r.id]; ok && own.Epoch > e {
		e = own.Epoch
	}
	sh.epoch = e + 1
	return sh.epoch, nil
}

// attestSnapshotLocked stamps one outgoing shard snapshot: a fresh epoch and
// root signed by this replica, alongside the latest witnessed attestation of
// every other replica (so pullers learn the whole fleet's freshness frontier
// from any single push). The replica witnesses its own attestation
// immediately — an upload that then fails merely burns an epoch. With
// attestation off the snapshot is stripped to the v1 wire form. The caller
// holds the state mutex.
func (r *Replica) attestSnapshotLocked(si int, snap *shardState) error {
	if !r.attest {
		snap.Writer = ""
		snap.Attests = nil
		return nil
	}
	epoch, err := r.nextEpochLocked(si)
	if err != nil {
		return fmt.Errorf("sync: epoch source for shard %d: %w", si, err)
	}
	root := shardMerkleRoot(*snap)
	att := Attestation{Epoch: epoch, Root: root, Sig: r.signAttest(si, r.id, epoch, root)}
	sh := r.shards[si]
	sh.attests[r.id] = att
	snap.Writer = r.id
	snap.Attests = make(map[string]Attestation, len(sh.attests))
	for rep, a := range sh.attests {
		snap.Attests[rep] = a
	}
	return nil
}

// suspectLocked records a lenient-mode freshness violation and re-dirties the
// shard: republishing the newest local state is the anti-entropy move that
// heals a benign regression and re-asserts the truth over a malicious one.
func (r *Replica) suspectLocked(si int) {
	r.suspicions++
	r.shards[si].dirty = true
}

// auditFetchedLocked runs rules 2 and 3 over a fetched shard state whose blob
// version advanced past everything previously merged. It returns nil for
// legacy/unattested blobs (nothing to audit), a typed conviction for proven
// misbehaviour, and records a suspicion instead of convicting rule 2 in
// lenient mode. The caller holds the state mutex.
func (r *Replica) auditFetchedLocked(si int, st shardState, b cloud.Blob) error {
	if !r.attest || len(st.Attests) == 0 {
		return nil
	}
	sh := r.shards[si]
	fresh := false
	for rep, att := range st.Attests {
		// The AEAD seal already stops the provider from minting attestations,
		// so a bad signature here means key/layout confusion or a corrupted
		// replica — fail closed either way.
		if !crypto.VerifyHMAC(r.authKey, r.attestMsg(si, rep, att.Epoch, att.Root), att.Sig) {
			return ErrIntegrity
		}
		w, witnessed := sh.attests[rep]
		if witnessed && att.Epoch == w.Epoch && !bytes.Equal(att.Root, w.Root) {
			// Rule 3: one (replica, epoch) attesting two different roots.
			return &ForkError{
				Shard: si, Replica: rep,
				WitnessedEpoch: w.Epoch, ServedEpoch: att.Epoch,
				AckedVersion: sh.acked, ServedVersion: b.Version,
			}
		}
		if !witnessed || att.Epoch > w.Epoch {
			fresh = true
		}
	}
	if !fresh {
		// Rule 2: the version number advanced, the content frontier did not.
		if r.strict {
			rep := st.Writer
			var we, se uint64
			if att, ok := st.Attests[rep]; ok {
				se = att.Epoch
			}
			if w, ok := sh.attests[rep]; ok {
				we = w.Epoch
			}
			return &RollbackError{
				Shard: si, Replica: rep,
				WitnessedEpoch: we, ServedEpoch: se,
				AckedVersion: sh.acked, ServedVersion: b.Version,
			}
		}
		r.suspectLocked(si)
	}
	return nil
}

// witnessAttestsLocked advances the shard's witness set to the newest
// attestation seen per replica. Only the delta protocol calls it — the
// full-state blob is a separate channel whose contents never advance shard
// `seen` versions, so witnessing epochs from it would let an honest provider
// combination look like a rollback (rule 2's soundness argument needs
// "witnessed epoch e" to imply "merged the shard blob that carried e").
func witnessAttestsLocked(sh *replicaShard, attests map[string]Attestation) {
	for rep, att := range attests {
		if w, ok := sh.attests[rep]; !ok || att.Epoch > w.Epoch {
			sh.attests[rep] = att
		}
	}
}

// classifyDivergence turns rule-1 guilt into a rollback or fork conviction.
// Guilt is already established — the provider served shard si below the
// version it acknowledged — so every path returns an error; the refetch only
// decides which. A served history carrying epochs beyond our witness set means
// the provider kept advancing a *different* branch after acknowledging ours:
// a fork. A refetch that fails, or a history frozen at witnessed epochs, is a
// rollback.
func (r *Replica) classifyDivergence(d *divergenceError) error {
	rollback := &RollbackError{Shard: d.shard, AckedVersion: d.acked, ServedVersion: d.served}
	b, err := r.cloud.GetBlob(r.shardBlobName(d.shard))
	if err != nil || len(b.Data) == 0 {
		return rollback
	}
	st, err := r.decodeShard(d.shard, b.Data)
	if err != nil {
		return rollback
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	sh := r.shards[d.shard]
	for rep, att := range st.Attests {
		if w, ok := sh.attests[rep]; !ok || att.Epoch > w.Epoch {
			return &ForkError{
				Shard: d.shard, Replica: rep,
				WitnessedEpoch: w.Epoch, ServedEpoch: att.Epoch,
				AckedVersion: d.acked, ServedVersion: d.served,
			}
		}
	}
	return rollback
}

// finishDetection maps a divergenceError raised under the lock to its public
// conviction (or suspicion) and passes every other error through.
func (r *Replica) finishDetection(err error) error {
	var d *divergenceError
	if !errors.As(err, &d) {
		return err
	}
	return r.classifyDivergence(d)
}

// CheckShardBlob audits one shard blob without merging it: decode, verify
// every attestation signature, and run the equivocation and stale-epoch rules
// against the replica's current witness set. It never mutates replica state
// and never convicts on version numbers (member version counters are not
// comparable across a replicated fleet) — it answers "could this blob be an
// honest copy of shard si?" The replication layer's quarantine verifier is
// built from exactly this check (see cloud.ReplicatedOptions.Verifier).
func (r *Replica) CheckShardBlob(si int, data []byte) error {
	if si < 0 || si >= len(r.shards) {
		return fmt.Errorf("sync: shard index %d out of range", si)
	}
	if len(data) == 0 {
		return nil
	}
	st, err := r.decodeShard(si, data)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.attest || len(st.Attests) == 0 {
		return nil
	}
	sh := r.shards[si]
	fresh := false
	for rep, att := range st.Attests {
		if !crypto.VerifyHMAC(r.authKey, r.attestMsg(si, rep, att.Epoch, att.Root), att.Sig) {
			return ErrIntegrity
		}
		w, witnessed := sh.attests[rep]
		if witnessed && att.Epoch == w.Epoch && !bytes.Equal(att.Root, w.Root) {
			return &ForkError{Shard: si, Replica: rep, WitnessedEpoch: w.Epoch, ServedEpoch: att.Epoch}
		}
		if !witnessed || att.Epoch >= w.Epoch {
			fresh = true
		}
	}
	if !fresh {
		var we uint64
		if w, ok := sh.attests[st.Writer]; ok {
			we = w.Epoch
		}
		return &RollbackError{Shard: si, Replica: st.Writer, WitnessedEpoch: we}
	}
	return nil
}
