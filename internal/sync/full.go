package sync

// This file keeps the historical full-state protocol alive as the ablation
// baseline: every PushFull re-seals and re-uploads the entire catalog as one
// userID/syncstate blob, and every PullFull downloads all of it, so sync cost
// is O(catalog) per round regardless of how little changed. Experiment E11
// measures the delta protocol in delta.go against exactly this path.
//
// The full-state blob carries the same per-shard states the delta protocol
// replicates, so the two protocols can be mixed on one user: PushFull never
// clears the dirty flags (the full blob is a different channel than the
// shard blobs, so publishing there does not make the shard blobs current),
// and a merge from the full blob dirties every shard it taught something to,
// so the next delta Push re-publishes the learned state where delta-only
// peers can see it. Convergence across a mixed fleet therefore still needs
// at least one replica running delta rounds — the full blob itself is only
// read by full-protocol peers.

import (
	"encoding/json"
	"errors"
	"fmt"

	"trustedcells/internal/cloud"
	"trustedcells/internal/crypto"
)

// fullState is the wire form of the full-state protocol: every shard's
// replicated state in shard order.
type fullState struct {
	Shards []shardState `json:"shards"`
}

// fullBlobName is the cloud name of the full-state blob.
func (r *Replica) fullBlobName() string { return r.userID + "/syncstate" }

func (r *Replica) fullAD() []byte { return []byte("syncstate:" + r.userID) }

// PushFull uploads the replica's entire sealed state to the cloud after
// merging with the current remote state, exactly as the pre-delta
// synchronizer did. Cost is O(catalog) in bytes and sealing work.
func (r *Replica) PushFull() error {
	r.syncMu.Lock()
	defer r.syncMu.Unlock()
	if err := r.mergeRemoteFull(true); err != nil {
		return err
	}

	r.mu.Lock()
	if !r.connected {
		r.mu.Unlock()
		return ErrDisconnected
	}
	snap := fullState{Shards: make([]shardState, len(r.shards))}
	for si, s := range r.shards {
		snap.Shards[si] = snapshotShardLocked(s)
	}
	r.mu.Unlock()

	// Dirty flags are deliberately left untouched: they track what the
	// *shard blobs* may lack, and this upload goes to the full-state blob.
	payload, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("sync: encode state: %w", err)
	}
	sealed, err := crypto.Seal(r.key, payload, r.fullAD())
	if err != nil {
		return fmt.Errorf("sync: seal state: %w", err)
	}
	if _, err := r.cloud.PutBlob(r.fullBlobName(), sealed); err != nil {
		return mapCloudErr("push", err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pushes++
	r.bytesPushed += int64(len(sealed))
	r.shardsPushed++ // one blob shipped, however many shards it carries
	return nil
}

// PullFull downloads the sealed remote full state and merges it into the
// replica.
func (r *Replica) PullFull() error {
	r.syncMu.Lock()
	defer r.syncMu.Unlock()
	return r.mergeRemoteFull(false)
}

// SyncFull is PullFull followed by PushFull — one round of the O(catalog)
// baseline protocol.
func (r *Replica) SyncFull() error {
	if err := r.PullFull(); err != nil {
		return err
	}
	return r.PushFull()
}

// mergeRemoteFull fetches the full-state blob and merges it. forPush is true
// when called as the read half of PushFull's read-modify-write, in which case
// a missing remote blob is fine and nothing is counted as a pull.
func (r *Replica) mergeRemoteFull(forPush bool) error {
	r.mu.Lock()
	if !r.connected {
		r.mu.Unlock()
		return ErrDisconnected
	}
	r.mu.Unlock()

	blob, err := r.cloud.GetBlob(r.fullBlobName())
	if errors.Is(err, cloud.ErrBlobNotFound) {
		if !forPush {
			r.mu.Lock()
			r.pulls++
			r.mu.Unlock()
		}
		return nil // nothing pushed yet
	}
	if err != nil {
		op := "pull"
		if forPush {
			op = "push"
		}
		return mapCloudErr(op, err)
	}
	plain, ad, err := crypto.Open(r.key, blob.Data)
	if err != nil {
		return ErrIntegrity
	}
	if string(ad) != string(r.fullAD()) {
		return ErrIntegrity
	}
	var st fullState
	if err := json.Unmarshal(plain, &st); err != nil {
		return ErrIntegrity
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.connected {
		return ErrDisconnected
	}
	if len(st.Shards) != len(r.shards) {
		// Replicas of one user must agree on the shard count; a mismatched
		// layout cannot be merged positionally.
		return fmt.Errorf("%w: remote state has %d shards, replica has %d", ErrIntegrity, len(st.Shards), len(r.shards))
	}
	for si := range st.Shards {
		if r.mergeShardLocked(r.shards[si], st.Shards[si]) {
			// The full blob taught this shard something delta-only peers
			// cannot read there; dirty it so the next delta Push publishes
			// the learned state to the shard blobs too.
			r.shards[si].dirty = true
		}
	}
	r.bytesPulled += int64(len(blob.Data))
	if !forPush {
		r.pulls++
		r.shardsPulled++ // one blob fetched, however many shards it carries
	}
	return nil
}
