package sync

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"trustedcells/internal/datamodel"
)

func codecTestState() shardState {
	updated := time.Date(2013, 1, 7, 9, 0, 0, 0, time.UTC)
	return shardState{
		Docs: map[string]VersionedDoc{
			"doc-live": {
				Doc: &datamodel.Document{ID: "doc-live", Owner: "alice", Type: "note",
					Title: "live", Keywords: []string{"k1"}, Tags: map[string]string{"a": "b"},
					CreatedAt: updated, Class: datamodel.ClassAuthored},
				Revision: 3, Replica: "alice/gateway", Updated: updated,
			},
			"doc-tombstone": {Revision: 5, Replica: "alice/phone", Updated: updated, Deleted: true},
		},
		VV:        map[string]uint64{"alice/gateway": 7, "alice/phone": 2},
		Conflicts: map[string]bool{"doc-live@2:alice/phone": true},
	}
}

func statesEquivalent(t *testing.T, want, got shardState) {
	t.Helper()
	if len(want.Docs) != len(got.Docs) {
		t.Fatalf("doc count differs: %d != %d", len(want.Docs), len(got.Docs))
	}
	for id, wv := range want.Docs {
		gv, ok := got.Docs[id]
		if !ok {
			t.Fatalf("missing doc %s", id)
		}
		if wv.Revision != gv.Revision || wv.Replica != gv.Replica || wv.Deleted != gv.Deleted {
			t.Fatalf("doc %s metadata differs: %+v != %+v", id, wv, gv)
		}
		if !wv.Updated.Equal(gv.Updated) {
			t.Fatalf("doc %s updated differs: %v != %v", id, wv.Updated, gv.Updated)
		}
		if (wv.Doc == nil) != (gv.Doc == nil) {
			t.Fatalf("doc %s presence differs", id)
		}
		if wv.Doc != nil && (wv.Doc.ID != gv.Doc.ID || wv.Doc.Title != gv.Doc.Title) {
			t.Fatalf("doc %s content differs: %+v != %+v", id, wv.Doc, gv.Doc)
		}
	}
	if !reflect.DeepEqual(want.VV, got.VV) {
		t.Fatalf("version vectors differ: %v != %v", want.VV, got.VV)
	}
	if !reflect.DeepEqual(want.Conflicts, got.Conflicts) {
		t.Fatalf("conflict sets differ: %v != %v", want.Conflicts, got.Conflicts)
	}
}

func TestShardCodecRoundTrip(t *testing.T) {
	want := codecTestState()
	data, err := appendShardState(nil, want)
	if err != nil {
		t.Fatalf("appendShardState: %v", err)
	}
	got, err := decodeShardState(data)
	if err != nil {
		t.Fatalf("decodeShardState: %v", err)
	}
	statesEquivalent(t, want, got)
}

// TestShardCodecJSONFallback proves a shard blob pushed by an older (JSON)
// replica still decodes through the sniffing entry point, and that the binary
// form is smaller than its JSON twin.
func TestShardCodecJSONFallback(t *testing.T) {
	want := codecTestState()
	jsonBytes, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeShardState(jsonBytes)
	if err != nil {
		t.Fatalf("JSON fallback: %v", err)
	}
	statesEquivalent(t, want, got)

	binBytes, err := appendShardState(nil, want)
	if err != nil {
		t.Fatal(err)
	}
	if len(binBytes) >= len(jsonBytes) {
		t.Fatalf("binary shard (%d B) not smaller than JSON (%d B)", len(binBytes), len(jsonBytes))
	}
}

func TestShardCodecDeterministic(t *testing.T) {
	st := codecTestState()
	a, _ := appendShardState(nil, st)
	b, _ := appendShardState(nil, st)
	if string(a) != string(b) {
		t.Fatal("two encodings of the same state differ")
	}
}

func TestShardCodecRejectsTruncation(t *testing.T) {
	data, err := appendShardState(nil, codecTestState())
	if err != nil {
		t.Fatal(err)
	}
	for n := 2; n < len(data); n++ {
		if _, err := decodeShardState(data[:n]); err == nil {
			t.Fatalf("truncation at %d bytes accepted", n)
		}
	}
	if _, err := decodeShardState(append(data, 0x00)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}
