package sync

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"trustedcells/internal/cloud"
	"trustedcells/internal/crypto"
	"trustedcells/internal/datamodel"
)

var t0 = time.Date(2013, 7, 1, 0, 0, 0, 0, time.UTC)

func doc(i int) *datamodel.Document {
	return &datamodel.Document{
		ID:        fmt.Sprintf("doc-%04d", i),
		Owner:     "alice",
		Type:      "note",
		Class:     datamodel.ClassAuthored,
		CreatedAt: t0,
	}
}

func twoReplicas(svc cloud.Service) (*Replica, *Replica) {
	key, _ := crypto.NewSymmetricKey()
	a := NewReplica("alice/gateway", "alice", key, svc, func() time.Time { return t0 })
	b := NewReplica("alice/phone", "alice", key, svc, func() time.Time { return t0 })
	return a, b
}

func TestBasicConvergence(t *testing.T) {
	svc := cloud.NewMemory()
	a, b := twoReplicas(svc)
	for i := 0; i < 5; i++ {
		a.Upsert(doc(i))
	}
	for i := 5; i < 8; i++ {
		b.Upsert(doc(i))
	}
	if err := a.Sync(); err != nil {
		t.Fatalf("a.Sync: %v", err)
	}
	if err := b.Sync(); err != nil {
		t.Fatalf("b.Sync: %v", err)
	}
	if err := a.Sync(); err != nil {
		t.Fatalf("a.Sync 2: %v", err)
	}
	if !Equal(a, b) {
		t.Fatalf("replicas did not converge: %v vs %v", a.DocIDs(), b.DocIDs())
	}
	if a.LiveCount() != 8 {
		t.Fatalf("LiveCount = %d, want 8", a.LiveCount())
	}
	pushes, pulls := a.Traffic()
	if pushes == 0 || pulls == 0 {
		t.Fatal("traffic counters not updated")
	}
}

func TestDeleteReplication(t *testing.T) {
	svc := cloud.NewMemory()
	a, b := twoReplicas(svc)
	a.Upsert(doc(1))
	_ = a.Sync()
	_ = b.Sync()
	if _, ok := b.Get("doc-0001"); !ok {
		t.Fatal("document did not replicate")
	}
	b.Delete("doc-0001")
	_ = b.Sync()
	_ = a.Sync()
	if _, ok := a.Get("doc-0001"); ok {
		t.Fatal("deletion did not replicate")
	}
	if a.LiveCount() != 0 {
		t.Fatalf("LiveCount after delete = %d", a.LiveCount())
	}
}

func TestConflictResolutionDeterministic(t *testing.T) {
	svc := cloud.NewMemory()
	a, b := twoReplicas(svc)
	// Both replicas create the same document ID concurrently (revision 1 on
	// both sides) with different titles.
	d1 := doc(1)
	d1.Title = "from gateway"
	a.Upsert(d1)
	d2 := doc(1)
	d2.Title = "from phone"
	b.Upsert(d2)

	_ = a.Sync()
	_ = b.Sync()
	_ = a.Sync()

	if !Equal(a, b) {
		t.Fatal("replicas did not converge after conflict")
	}
	ga, _ := a.Get("doc-0001")
	gb, _ := b.Get("doc-0001")
	if ga.Title != gb.Title {
		t.Fatalf("conflict resolved differently: %q vs %q", ga.Title, gb.Title)
	}
	// "alice/phone" > "alice/gateway" lexicographically, so the phone wins.
	if ga.Title != "from phone" {
		t.Fatalf("unexpected winner %q", ga.Title)
	}
	if a.ConflictsResolved()+b.ConflictsResolved() == 0 {
		t.Fatal("conflict not counted")
	}
}

func TestDisconnectedReplicasCatchUp(t *testing.T) {
	svc := cloud.NewMemory()
	a, b := twoReplicas(svc)
	b.SetConnected(false)
	if b.Connected() {
		t.Fatal("SetConnected(false) ignored")
	}
	for i := 0; i < 10; i++ {
		a.Upsert(doc(i))
	}
	_ = a.Sync()
	if err := b.Sync(); err != ErrDisconnected {
		t.Fatalf("disconnected sync: %v", err)
	}
	if b.LiveCount() != 0 {
		t.Fatal("disconnected replica received data")
	}
	b.SetConnected(true)
	if err := b.Sync(); err != nil {
		t.Fatalf("reconnect sync: %v", err)
	}
	if b.LiveCount() != 10 {
		t.Fatalf("after reconnection LiveCount = %d", b.LiveCount())
	}
}

func TestCloudOutageMapsToDisconnected(t *testing.T) {
	svc := cloud.NewMemory()
	svc.SetClock(func() time.Time { return t0 })
	a, _ := twoReplicas(svc)
	a.Upsert(doc(1))
	svc.SetOutage(t0.Add(time.Hour))
	if err := a.Push(); err != ErrDisconnected {
		t.Fatalf("push during outage: %v", err)
	}
	if err := a.Pull(); err != ErrDisconnected {
		t.Fatalf("pull during outage: %v", err)
	}
}

func TestTamperedSyncStateDetected(t *testing.T) {
	svc := cloud.NewMemory()
	a, b := twoReplicas(svc)
	a.Upsert(doc(1))
	if err := a.Push(); err != nil {
		t.Fatal(err)
	}
	names, err := svc.ListBlobs("alice/syncshard/")
	if err != nil || len(names) == 0 {
		t.Fatalf("no shard blobs pushed: %v %v", names, err)
	}
	blob, _ := svc.GetBlob(names[0])
	blob.Data[len(blob.Data)-3] ^= 0x40
	_, _ = svc.PutBlob(names[0], blob.Data)
	if err := b.Pull(); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("tampered shard not detected: %v", err)
	}
}

func TestTamperedFullStateDetected(t *testing.T) {
	svc := cloud.NewMemory()
	a, b := twoReplicas(svc)
	a.Upsert(doc(1))
	if err := a.PushFull(); err != nil {
		t.Fatal(err)
	}
	blob, _ := svc.GetBlob("alice/syncstate")
	blob.Data[len(blob.Data)-3] ^= 0x40
	_, _ = svc.PutBlob("alice/syncstate", blob.Data)
	if err := b.PullFull(); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("tampered full state not detected: %v", err)
	}
}

// TestSpliceAcrossShardsDetected swaps two sealed shard blobs: the associated
// data binds each shard to its position, so the splice must fail verification.
func TestSpliceAcrossShardsDetected(t *testing.T) {
	svc := cloud.NewMemory()
	a, b := twoReplicas(svc)
	for i := 0; i < 40; i++ { // enough docs to populate several shards
		a.Upsert(doc(i))
	}
	if err := a.Push(); err != nil {
		t.Fatal(err)
	}
	names, err := svc.ListBlobs("alice/syncshard/")
	if err != nil || len(names) < 2 {
		t.Fatalf("want >=2 shard blobs, got %v (%v)", names, err)
	}
	b0, _ := svc.GetBlob(names[0])
	b1, _ := svc.GetBlob(names[1])
	_, _ = svc.PutBlob(names[0], b1.Data)
	_, _ = svc.PutBlob(names[1], b0.Data)
	if err := b.Pull(); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("spliced shards not detected: %v", err)
	}
}

// TestDeltaMovesOnlyDirtyShards is the point of the protocol: after a
// converged state, one updated document costs one shard blob in each
// direction, not the whole catalog.
func TestDeltaMovesOnlyDirtyShards(t *testing.T) {
	svc := cloud.NewMemory()
	a, b := twoReplicas(svc)
	for i := 0; i < 200; i++ {
		a.Upsert(doc(i))
	}
	if err := a.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := b.Sync(); err != nil {
		t.Fatal(err)
	}
	if !Equal(a, b) {
		t.Fatal("replicas did not converge")
	}
	before := a.TransferStats()
	a.Upsert(doc(3))
	if err := a.Push(); err != nil {
		t.Fatal(err)
	}
	after := a.TransferStats()
	if n := after.ShardsPushed - before.ShardsPushed; n != 1 {
		t.Fatalf("one update pushed %d shards, want 1", n)
	}
	// And the peer's pull fetches only that advanced shard.
	pb := b.TransferStats()
	if err := b.Pull(); err != nil {
		t.Fatal(err)
	}
	pa := b.TransferStats()
	if n := pa.ShardsPulled - pb.ShardsPulled; n != 1 {
		t.Fatalf("pull fetched %d shards, want 1", n)
	}
	if a.DirtyShards() != 0 {
		t.Fatalf("dirty shards after push = %d", a.DirtyShards())
	}
}

// TestPushNoopWhenClean verifies a clean replica performs no cloud I/O on
// Push.
func TestPushNoopWhenClean(t *testing.T) {
	svc := cloud.NewMemory()
	a, _ := twoReplicas(svc)
	a.Upsert(doc(1))
	if err := a.Push(); err != nil {
		t.Fatal(err)
	}
	gets := svc.Stats().Gets
	puts := svc.Stats().Puts
	if err := a.Push(); err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	if st.Gets != gets || st.Puts != puts {
		t.Fatalf("clean push performed cloud I/O: gets %d->%d puts %d->%d", gets, st.Gets, puts, st.Puts)
	}
}

// TestFullVsDeltaInterop mixes the two protocols on one user: state written
// by the full path must flow through a mixed-protocol replica to a
// delta-only peer, and local updates must survive a PushFull (the full blob
// is a different channel than the shard blobs, so PushFull must not clear
// the dirty flags).
func TestFullVsDeltaInterop(t *testing.T) {
	svc := cloud.NewMemory()
	key, _ := crypto.NewSymmetricKey()
	clock := func() time.Time { return t0 }
	a := NewReplica("alice/full-only", "alice", key, svc, clock)
	b := NewReplica("alice/mixed", "alice", key, svc, clock)
	c := NewReplica("alice/delta-only", "alice", key, svc, clock)

	a.Upsert(doc(1))
	if err := a.SyncFull(); err != nil {
		t.Fatal(err)
	}
	if err := b.PullFull(); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Get("doc-0001"); !ok {
		t.Fatal("full-state did not replicate")
	}
	// b learned doc-0001 from the full blob only; its delta Push must
	// publish it to the shard blobs so the delta-only peer can see it.
	if err := b.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("doc-0001"); !ok {
		t.Fatal("full-path state did not reach the delta-only replica")
	}
	// A local update followed by PushFull must still reach the shard blobs
	// via the next delta push.
	b.Upsert(doc(2))
	if err := b.PushFull(); err != nil {
		t.Fatal(err)
	}
	if b.DirtyShards() == 0 {
		t.Fatal("PushFull cleared dirty flags; delta peers would never see the update")
	}
	if err := b.Push(); err != nil {
		t.Fatal(err)
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("doc-0002"); !ok {
		t.Fatal("update pushed via PushFull never reached the delta-only replica")
	}
	// And delta-born state flows back to the full-only replica.
	c.Upsert(doc(3))
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := b.Sync(); err != nil { // mixed replica bridges delta -> full
		t.Fatal(err)
	}
	if err := b.PushFull(); err != nil {
		t.Fatal(err)
	}
	if err := a.PullFull(); err != nil {
		t.Fatal(err)
	}
	if _, ok := a.Get("doc-0003"); !ok {
		t.Fatal("delta update did not reach the full-only replica")
	}
	if !Equal(b, c) {
		t.Fatalf("mixed-protocol replicas did not converge: %v vs %v", b.DocIDs(), c.DocIDs())
	}
}

func TestRandomizedConvergenceUnderChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	svc := cloud.NewMemory()
	a, b := twoReplicas(svc)
	replicas := []*Replica{a, b}
	for step := 0; step < 400; step++ {
		r := replicas[rng.Intn(2)]
		switch rng.Intn(10) {
		case 0:
			r.SetConnected(false)
		case 1:
			r.SetConnected(true)
		case 2:
			r.Delete(fmt.Sprintf("doc-%04d", rng.Intn(50)))
		case 3, 4:
			_ = r.Sync() // may fail while disconnected; that is fine
		default:
			r.Upsert(doc(rng.Intn(50)))
		}
	}
	// Reconnect everything and run a few sync rounds: must converge.
	a.SetConnected(true)
	b.SetConnected(true)
	for i := 0; i < 3; i++ {
		if err := a.Sync(); err != nil {
			t.Fatalf("final a.Sync: %v", err)
		}
		if err := b.Sync(); err != nil {
			t.Fatalf("final b.Sync: %v", err)
		}
	}
	if !Equal(a, b) {
		t.Fatalf("replicas did not converge after churn:\n a=%v\n b=%v", a.DocIDs(), b.DocIDs())
	}
}

func TestGetMissingAndUnknownDelete(t *testing.T) {
	svc := cloud.NewMemory()
	a, _ := twoReplicas(svc)
	if _, ok := a.Get("missing"); ok {
		t.Fatal("missing document found")
	}
	// Deleting an unknown document creates a tombstone but no live doc.
	a.Delete("ghost")
	if a.LiveCount() != 0 {
		t.Fatal("tombstone counted as live")
	}
	// Pull with no remote state is a no-op.
	if err := a.Pull(); err != nil {
		t.Fatalf("pull with no remote state: %v", err)
	}
}
