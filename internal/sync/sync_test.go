package sync

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"trustedcells/internal/cloud"
	"trustedcells/internal/crypto"
	"trustedcells/internal/datamodel"
)

var t0 = time.Date(2013, 7, 1, 0, 0, 0, 0, time.UTC)

func doc(i int) *datamodel.Document {
	return &datamodel.Document{
		ID:        fmt.Sprintf("doc-%04d", i),
		Owner:     "alice",
		Type:      "note",
		Class:     datamodel.ClassAuthored,
		CreatedAt: t0,
	}
}

func twoReplicas(svc cloud.Service) (*Replica, *Replica) {
	key, _ := crypto.NewSymmetricKey()
	a := NewReplica("alice/gateway", "alice", key, svc, func() time.Time { return t0 })
	b := NewReplica("alice/phone", "alice", key, svc, func() time.Time { return t0 })
	return a, b
}

func TestBasicConvergence(t *testing.T) {
	svc := cloud.NewMemory()
	a, b := twoReplicas(svc)
	for i := 0; i < 5; i++ {
		a.Upsert(doc(i))
	}
	for i := 5; i < 8; i++ {
		b.Upsert(doc(i))
	}
	if err := a.Sync(); err != nil {
		t.Fatalf("a.Sync: %v", err)
	}
	if err := b.Sync(); err != nil {
		t.Fatalf("b.Sync: %v", err)
	}
	if err := a.Sync(); err != nil {
		t.Fatalf("a.Sync 2: %v", err)
	}
	if !Equal(a, b) {
		t.Fatalf("replicas did not converge: %v vs %v", a.DocIDs(), b.DocIDs())
	}
	if a.LiveCount() != 8 {
		t.Fatalf("LiveCount = %d, want 8", a.LiveCount())
	}
	pushes, pulls := a.Traffic()
	if pushes == 0 || pulls == 0 {
		t.Fatal("traffic counters not updated")
	}
}

func TestDeleteReplication(t *testing.T) {
	svc := cloud.NewMemory()
	a, b := twoReplicas(svc)
	a.Upsert(doc(1))
	_ = a.Sync()
	_ = b.Sync()
	if _, ok := b.Get("doc-0001"); !ok {
		t.Fatal("document did not replicate")
	}
	b.Delete("doc-0001")
	_ = b.Sync()
	_ = a.Sync()
	if _, ok := a.Get("doc-0001"); ok {
		t.Fatal("deletion did not replicate")
	}
	if a.LiveCount() != 0 {
		t.Fatalf("LiveCount after delete = %d", a.LiveCount())
	}
}

func TestConflictResolutionDeterministic(t *testing.T) {
	svc := cloud.NewMemory()
	a, b := twoReplicas(svc)
	// Both replicas create the same document ID concurrently (revision 1 on
	// both sides) with different titles.
	d1 := doc(1)
	d1.Title = "from gateway"
	a.Upsert(d1)
	d2 := doc(1)
	d2.Title = "from phone"
	b.Upsert(d2)

	_ = a.Sync()
	_ = b.Sync()
	_ = a.Sync()

	if !Equal(a, b) {
		t.Fatal("replicas did not converge after conflict")
	}
	ga, _ := a.Get("doc-0001")
	gb, _ := b.Get("doc-0001")
	if ga.Title != gb.Title {
		t.Fatalf("conflict resolved differently: %q vs %q", ga.Title, gb.Title)
	}
	// "alice/phone" > "alice/gateway" lexicographically, so the phone wins.
	if ga.Title != "from phone" {
		t.Fatalf("unexpected winner %q", ga.Title)
	}
	if a.ConflictsResolved()+b.ConflictsResolved() == 0 {
		t.Fatal("conflict not counted")
	}
}

func TestDisconnectedReplicasCatchUp(t *testing.T) {
	svc := cloud.NewMemory()
	a, b := twoReplicas(svc)
	b.SetConnected(false)
	if b.Connected() {
		t.Fatal("SetConnected(false) ignored")
	}
	for i := 0; i < 10; i++ {
		a.Upsert(doc(i))
	}
	_ = a.Sync()
	if err := b.Sync(); err != ErrDisconnected {
		t.Fatalf("disconnected sync: %v", err)
	}
	if b.LiveCount() != 0 {
		t.Fatal("disconnected replica received data")
	}
	b.SetConnected(true)
	if err := b.Sync(); err != nil {
		t.Fatalf("reconnect sync: %v", err)
	}
	if b.LiveCount() != 10 {
		t.Fatalf("after reconnection LiveCount = %d", b.LiveCount())
	}
}

func TestCloudOutageMapsToDisconnected(t *testing.T) {
	svc := cloud.NewMemory()
	svc.SetClock(func() time.Time { return t0 })
	a, _ := twoReplicas(svc)
	a.Upsert(doc(1))
	svc.SetOutage(t0.Add(time.Hour))
	if err := a.Push(); err != ErrDisconnected {
		t.Fatalf("push during outage: %v", err)
	}
	if err := a.Pull(); err != ErrDisconnected {
		t.Fatalf("pull during outage: %v", err)
	}
}

func TestTamperedSyncStateDetected(t *testing.T) {
	svc := cloud.NewMemory()
	a, b := twoReplicas(svc)
	a.Upsert(doc(1))
	if err := a.Push(); err != nil {
		t.Fatal(err)
	}
	blob, _ := svc.GetBlob("alice/syncstate")
	blob.Data[len(blob.Data)-3] ^= 0x40
	_, _ = svc.PutBlob("alice/syncstate", blob.Data)
	if err := b.Pull(); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("tampered sync state not detected: %v", err)
	}
}

func TestRandomizedConvergenceUnderChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	svc := cloud.NewMemory()
	a, b := twoReplicas(svc)
	replicas := []*Replica{a, b}
	for step := 0; step < 400; step++ {
		r := replicas[rng.Intn(2)]
		switch rng.Intn(10) {
		case 0:
			r.SetConnected(false)
		case 1:
			r.SetConnected(true)
		case 2:
			r.Delete(fmt.Sprintf("doc-%04d", rng.Intn(50)))
		case 3, 4:
			_ = r.Sync() // may fail while disconnected; that is fine
		default:
			r.Upsert(doc(rng.Intn(50)))
		}
	}
	// Reconnect everything and run a few sync rounds: must converge.
	a.SetConnected(true)
	b.SetConnected(true)
	for i := 0; i < 3; i++ {
		if err := a.Sync(); err != nil {
			t.Fatalf("final a.Sync: %v", err)
		}
		if err := b.Sync(); err != nil {
			t.Fatalf("final b.Sync: %v", err)
		}
	}
	if !Equal(a, b) {
		t.Fatalf("replicas did not converge after churn:\n a=%v\n b=%v", a.DocIDs(), b.DocIDs())
	}
}

func TestGetMissingAndUnknownDelete(t *testing.T) {
	svc := cloud.NewMemory()
	a, _ := twoReplicas(svc)
	if _, ok := a.Get("missing"); ok {
		t.Fatal("missing document found")
	}
	// Deleting an unknown document creates a tombstone but no live doc.
	a.Delete("ghost")
	if a.LiveCount() != 0 {
		t.Fatal("tombstone counted as live")
	}
	// Pull with no remote state is a no-op.
	if err := a.Pull(); err != nil {
		t.Fatalf("pull with no remote state: %v", err)
	}
}
