package sync

import (
	"fmt"
	"testing"
	"time"

	"trustedcells/internal/cloud"
	"trustedcells/internal/crypto"
)

// TestCorruptBlobFailsClosed is the end-to-end corruption drill against one
// provider: a blob with a single flipped bit must never decode into
// documents — the AEAD seal (or the signed attestation section in front of
// it) rejects the blob and the pull fails with an error, leaving the victim's
// catalog untouched.
func TestCorruptBlobFailsClosed(t *testing.T) {
	faulty := cloud.NewFaulty(cloud.NewMemory(), cloud.FaultyOptions{Seed: 11})
	a, b := authPair(faulty)
	for i := 0; i < 8; i++ {
		a.Upsert(doc(i))
	}
	if err := a.Sync(); err != nil {
		t.Fatalf("honest push: %v", err)
	}

	faulty.SetCorrupt(1)
	if err := b.Pull(); err == nil {
		t.Fatal("pull of a bit-flipped blob succeeded; corruption must fail closed")
	}
	if _, ok := b.Get("doc-0000"); ok {
		t.Fatal("corrupted blob materialised documents in the victim replica")
	}
	if got := faulty.FaultStats().Corrupted; got == 0 {
		t.Fatal("corruption schedule never fired")
	}

	// The read-only audit rejects the corrupted copy too — this is what the
	// replication layer's quarantine decision keys on.
	blob, err := faulty.GetBlob("alice/syncshard/0000")
	if err != nil {
		t.Fatalf("GetBlob: %v", err)
	}
	if err := b.CheckShardBlob(0, blob.Data); err == nil {
		t.Fatal("catalog audit accepted a corrupted shard blob")
	}

	// Honest service again: the same victim recovers with no residue.
	faulty.SetCorrupt(0)
	if err := b.Pull(); err != nil {
		t.Fatalf("pull after corruption cleared: %v", err)
	}
	if _, ok := b.Get("doc-0000"); !ok {
		t.Fatal("victim did not converge once served honest bytes")
	}
}

// TestCorruptMemberQuarantinedFleetRoutesAround drills silent corruption
// against the replicated fleet: while member 0 serves bit-flipped blobs the
// fleet's reads fail closed (deterministic tie-breaking prefers the lowest
// member index, so the rotten copy would win), the catalog audit convicts the
// member, and quarantining it restores full availability from the trusted
// majority.
func TestCorruptMemberQuarantinedFleetRoutesAround(t *testing.T) {
	faulty := cloud.NewFaulty(cloud.NewMemory(), cloud.FaultyOptions{Seed: 11})
	members := []cloud.Service{faulty, cloud.NewMemory(), cloud.NewMemory()}
	fleet, err := cloud.NewReplicated(members, cloud.ReplicatedOptions{WriteQuorum: 3, ReadQuorum: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	key, _ := crypto.NewSymmetricKey()
	clock := func() time.Time { return t0 }
	a := NewReplicaShards("alice/gateway", "alice", key, fleet, clock, 4)
	a.SetStrictFreshness(false)
	b := NewReplicaShards("alice/phone", "alice", key, fleet, clock, 4)
	b.SetStrictFreshness(false)
	for i := 0; i < 16; i++ {
		a.Upsert(doc(i))
	}
	if err := a.Sync(); err != nil {
		t.Fatalf("prefill: %v", err)
	}

	faulty.SetCorrupt(1)
	if err := b.Pull(); err == nil {
		t.Fatal("fleet served a corrupted member's bytes without failing closed")
	}

	// The audit sweep convicts member 0: every shard blob it serves flips a
	// bit and fails verification.
	convicted := false
	for si := 0; si < a.ShardCount(); si++ {
		blob, err := members[0].GetBlob(fmt.Sprintf("alice/syncshard/%04d", si))
		if err != nil {
			continue
		}
		if a.CheckShardBlob(si, blob.Data) != nil {
			convicted = true
			break
		}
	}
	if !convicted {
		t.Fatal("audit sweep did not convict the corrupting member")
	}
	fleet.Quarantine(0)

	// Quarantined, the rotten member no longer touches read quorums: the same
	// victim pulls the full catalog from the trusted majority.
	if err := b.Pull(); err != nil {
		t.Fatalf("pull during quarantine: %v", err)
	}
	for i := 0; i < 16; i++ {
		if _, ok := b.Get(fmt.Sprintf("doc-%04d", i)); !ok {
			t.Fatalf("doc-%04d unreadable during quarantine", i)
		}
	}
}
