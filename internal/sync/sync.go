// Package sync implements the synchronization of a user's personal digital
// space across her trusted cells (the fixed home gateway, the portable
// token, the smartphone) through the untrusted cloud, tolerating the weak and
// intermittent connectivity the paper lists among its challenges
// ("asynchrony problems must also be addressed").
//
// Each cell keeps a replica of the metadata catalog plus a per-document
// revision counter. Synchronization is push/pull of sealed deltas through the
// cloud; conflicts (the same document updated on two cells while
// disconnected) are resolved deterministically by highest revision, then
// lexicographically greatest replica ID, and are counted so experiments can
// report them.
package sync

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"trustedcells/internal/cloud"
	"trustedcells/internal/crypto"
	"trustedcells/internal/datamodel"
)

// Errors returned by the synchronizer.
var (
	ErrDisconnected = errors.New("sync: replica is disconnected")
	ErrIntegrity    = errors.New("sync: replicated state failed integrity verification")
)

// VersionedDoc is a document plus its replication metadata.
type VersionedDoc struct {
	Doc      *datamodel.Document `json:"doc"`
	Revision uint64              `json:"revision"`
	Replica  string              `json:"replica"`
	Updated  time.Time           `json:"updated"`
	Deleted  bool                `json:"deleted"`
}

// state is the replicated catalog state.
type state struct {
	Docs map[string]VersionedDoc `json:"docs"`
}

// Replica is one cell's view of the replicated personal space.
type Replica struct {
	mu sync.Mutex

	id        string
	userID    string
	key       crypto.SymmetricKey
	cloud     cloud.Service
	docs      map[string]VersionedDoc
	connected bool
	clock     func() time.Time

	conflictsResolved int
	pushes, pulls     int
}

// NewReplica creates a replica of userID's space named id (e.g.
// "alice/gateway"). All replicas of a user derive the same sealing key from
// the user's master secret, so the cloud only ever sees ciphertext.
func NewReplica(id, userID string, key crypto.SymmetricKey, svc cloud.Service, clock func() time.Time) *Replica {
	if clock == nil {
		clock = time.Now
	}
	return &Replica{
		id:        id,
		userID:    userID,
		key:       key,
		cloud:     svc,
		docs:      make(map[string]VersionedDoc),
		connected: true,
		clock:     clock,
	}
}

// ID returns the replica identifier.
func (r *Replica) ID() string { return r.id }

// SetConnected toggles connectivity (weakly connected trusted sources).
func (r *Replica) SetConnected(up bool) {
	r.mu.Lock()
	r.connected = up
	r.mu.Unlock()
}

// Connected reports the current connectivity.
func (r *Replica) Connected() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.connected
}

// Upsert records a local create/update of a document.
func (r *Replica) Upsert(doc *datamodel.Document) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := r.docs[doc.ID]
	r.docs[doc.ID] = VersionedDoc{
		Doc:      doc.Clone(),
		Revision: cur.Revision + 1,
		Replica:  r.id,
		Updated:  r.clock(),
	}
}

// Delete records a local deletion (kept as a tombstone for replication).
func (r *Replica) Delete(docID string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := r.docs[docID]
	r.docs[docID] = VersionedDoc{
		Doc:      cur.Doc,
		Revision: cur.Revision + 1,
		Replica:  r.id,
		Updated:  r.clock(),
		Deleted:  true,
	}
}

// Get returns the live document with the given ID, if present.
func (r *Replica) Get(docID string) (*datamodel.Document, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.docs[docID]
	if !ok || v.Deleted || v.Doc == nil {
		return nil, false
	}
	return v.Doc.Clone(), true
}

// LiveCount returns the number of live (non-deleted) documents.
func (r *Replica) LiveCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, v := range r.docs {
		if !v.Deleted {
			n++
		}
	}
	return n
}

// ConflictsResolved returns how many conflicting updates this replica has
// resolved so far.
func (r *Replica) ConflictsResolved() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.conflictsResolved
}

// Traffic returns the number of pushes and pulls performed.
func (r *Replica) Traffic() (pushes, pulls int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pushes, r.pulls
}

func (r *Replica) blobName() string { return r.userID + "/syncstate" }

// Push uploads the replica's sealed state to the cloud after merging with the
// current remote state (so pushes from different replicas do not clobber each
// other).
func (r *Replica) Push() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.connected {
		return ErrDisconnected
	}
	// Merge remote state first (read-modify-write).
	if remote, err := r.fetchRemoteLocked(); err == nil {
		r.mergeLocked(remote)
	} else if err != ErrIntegrity && !errors.Is(err, cloud.ErrBlobNotFound) {
		if errors.Is(err, cloud.ErrUnavailable) {
			return ErrDisconnected
		}
		return err
	} else if err == ErrIntegrity {
		return err
	}
	payload, err := json.Marshal(state{Docs: r.docs})
	if err != nil {
		return fmt.Errorf("sync: encode state: %w", err)
	}
	sealed, err := crypto.Seal(r.key, payload, []byte("syncstate:"+r.userID))
	if err != nil {
		return fmt.Errorf("sync: seal state: %w", err)
	}
	if _, err := r.cloud.PutBlob(r.blobName(), sealed); err != nil {
		if errors.Is(err, cloud.ErrUnavailable) {
			return ErrDisconnected
		}
		return fmt.Errorf("sync: push: %w", err)
	}
	r.pushes++
	return nil
}

// Pull downloads the sealed remote state and merges it into the replica.
func (r *Replica) Pull() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.connected {
		return ErrDisconnected
	}
	remote, err := r.fetchRemoteLocked()
	if err != nil {
		if errors.Is(err, cloud.ErrBlobNotFound) {
			return nil // nothing pushed yet
		}
		if errors.Is(err, cloud.ErrUnavailable) {
			return ErrDisconnected
		}
		return err
	}
	r.mergeLocked(remote)
	r.pulls++
	return nil
}

// Sync is Pull followed by Push.
func (r *Replica) Sync() error {
	if err := r.Pull(); err != nil {
		return err
	}
	return r.Push()
}

func (r *Replica) fetchRemoteLocked() (map[string]VersionedDoc, error) {
	blob, err := r.cloud.GetBlob(r.blobName())
	if err != nil {
		return nil, err
	}
	plain, ad, err := crypto.Open(r.key, blob.Data)
	if err != nil {
		return nil, ErrIntegrity
	}
	if string(ad) != "syncstate:"+r.userID {
		return nil, ErrIntegrity
	}
	var st state
	if err := json.Unmarshal(plain, &st); err != nil {
		return nil, ErrIntegrity
	}
	return st.Docs, nil
}

// mergeLocked merges remote entries into the local map, resolving conflicts
// deterministically.
func (r *Replica) mergeLocked(remote map[string]VersionedDoc) {
	for id, rv := range remote {
		lv, exists := r.docs[id]
		if !exists {
			r.docs[id] = rv
			continue
		}
		switch {
		case rv.Revision > lv.Revision:
			// Concurrent update we lost: count it as a conflict only if the
			// local entry was authored by this replica and not yet seen
			// remotely.
			if lv.Replica == r.id && rv.Replica != r.id {
				r.conflictsResolved++
			}
			r.docs[id] = rv
		case rv.Revision == lv.Revision && rv.Replica != lv.Replica:
			// True concurrent conflict: deterministic winner.
			r.conflictsResolved++
			if rv.Replica > lv.Replica {
				r.docs[id] = rv
			}
		}
	}
}

// DocIDs returns the sorted IDs of live documents (for convergence checks).
func (r *Replica) DocIDs() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var ids []string
	for id, v := range r.docs {
		if !v.Deleted {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

// Equal reports whether two replicas have converged to the same live state.
func Equal(a, b *Replica) bool {
	aIDs, bIDs := a.DocIDs(), b.DocIDs()
	if len(aIDs) != len(bIDs) {
		return false
	}
	for i := range aIDs {
		if aIDs[i] != bIDs[i] {
			return false
		}
	}
	return true
}
