// Package sync implements the synchronization of a user's personal digital
// space across her trusted cells (the fixed home gateway, the portable
// token, the smartphone) through the untrusted cloud, tolerating the weak and
// intermittent connectivity the paper lists among its challenges
// ("asynchrony problems must also be addressed").
//
// Each cell keeps a replica of the metadata catalog plus a per-document
// revision counter. The replica is partitioned into shards by FNV-1a hash of
// the document ID — the same striping the sharded cloud store uses — and each
// shard carries a version vector (replica ID → local update count). Push
// seals and uploads only the dirty shards in one batched exchange; Pull asks
// the provider for every shard conditionally (one conditional batched
// exchange) and receives bytes only for the shards whose remote version
// advanced. Sync cost is therefore O(changed shards), not O(catalog); the
// historical full-state protocol survives as SyncFull/PushFull/PullFull and
// is the ablation baseline experiment E11 measures the delta protocol
// against.
//
// Conflicts (the same document updated on two cells while disconnected) are
// resolved deterministically by highest revision, then lexicographically
// greatest replica ID. Every resolved conflict is recorded under a
// deterministic key in its shard's replicated conflict set, so once replicas
// converge they also agree on the number of conflicts resolved — the count is
// state, not a local observation.
package sync

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
	"time"

	"trustedcells/internal/cloud"
	"trustedcells/internal/crypto"
	"trustedcells/internal/datamodel"
)

// Errors returned by the synchronizer.
var (
	ErrDisconnected = errors.New("sync: replica is disconnected")
	ErrIntegrity    = errors.New("sync: replicated state failed integrity verification")
)

// DefaultShardCount is the number of replication shards of a replica built by
// NewReplica. More shards mean finer deltas (fewer bytes per sync when
// updates are localized) at the cost of more blobs; experiment E11 measures
// the trade-off at 10k-document catalogs.
const DefaultShardCount = 64

// VersionedDoc is a document plus its replication metadata.
type VersionedDoc struct {
	Doc      *datamodel.Document `json:"doc"`
	Revision uint64              `json:"revision"`
	Replica  string              `json:"replica"`
	Updated  time.Time           `json:"updated"`
	Deleted  bool                `json:"deleted"`
}

// shardState is the replicated state of one shard: its documents, its version
// vector (replica ID → count of local updates that replica applied to this
// shard), and the set of conflict-resolution records discovered on documents
// of the shard. All three merge commutatively, which is what lets concurrent
// pushes converge instead of clobbering.
type shardState struct {
	Docs      map[string]VersionedDoc `json:"docs"`
	VV        map[string]uint64       `json:"vv,omitempty"`
	Conflicts map[string]bool         `json:"conflicts,omitempty"`
	// Writer is the replica that pushed this state; Attests carries the
	// newest signed (epoch, Merkle root) commitment the writer held for each
	// replica — the freshness evidence the rollback/fork audit in auth.go
	// verifies. Both are empty on pre-attestation states.
	Writer  string                 `json:"writer,omitempty"`
	Attests map[string]Attestation `json:"attests,omitempty"`
}

// replicaShard is one in-memory partition of a replica, guarded by the
// replica's state mutex.
type replicaShard struct {
	docs      map[string]VersionedDoc
	vv        map[string]uint64
	conflicts map[string]bool
	// dirty marks local information the cloud copy may lack: local updates
	// since the last successful push, or a merge that found the remote state
	// behind this replica's version vector.
	dirty bool
	// seen is the cloud blob version last merged or written, so Pull can skip
	// shards that did not advance.
	seen int
	// acked is the blob version the provider acknowledged for this replica's
	// own last push. Unlike seen (which merges can advance), acked is set
	// only from our own write acknowledgements, so a later read below it is
	// provider guilt on any single-provider backend (freshness rule 1).
	acked int
	// attests is the witness set: the newest verified attestation per
	// replica, advanced only by delta shard merges and our own pushes (see
	// witnessAttestsLocked for why the full-state path must not touch it).
	attests map[string]Attestation
	// epoch backs the in-memory attestation counter when no external epoch
	// source is installed.
	epoch uint64
}

// Replica is one cell's view of the replicated personal space.
//
// Two mutexes split its concerns: mu guards the in-memory state and is never
// held across cloud I/O, so local Upsert/Get/Delete proceed at memory speed
// while a sync round waits on a slow or partitioned provider; syncMu
// serializes Push/Pull/Sync (and their full-state variants) against each
// other, so two overlapping sync rounds cannot interleave their
// read-merge-write cycles.
type Replica struct {
	mu     sync.Mutex
	syncMu sync.Mutex

	id        string
	userID    string
	key       crypto.SymmetricKey
	cloud     cloud.Service
	shards    []*replicaShard
	connected bool
	clock     func() time.Time

	// Authenticated-catalog state (auth.go): authKey signs shard roots,
	// attest toggles stamping, strict selects convict-vs-suspect on
	// freshness violations, epochSource optionally backs epochs with a
	// tamper-resistant counter, suspicions counts lenient-mode violations.
	authKey     crypto.SymmetricKey
	attest      bool
	strict      bool
	epochSource func(shard int) (uint64, error)
	suspicions  int

	pushes, pulls              int
	bytesPushed, bytesPulled   int64
	shardsPushed, shardsPulled int64

	// changed accumulates the IDs of documents rewritten by remote merges
	// since the last DrainChanges call, so an embedding cell can fold exactly
	// the replicated deltas into its catalog (see core.Cell.SyncCatalog).
	changed map[string]bool
}

// Change is one document-level change a merge applied from remote state.
type Change struct {
	DocID string
	// Doc is the document metadata (nil for a tombstone whose metadata this
	// replica never saw).
	Doc     *datamodel.Document
	Deleted bool
}

// Transfer is a snapshot of a replica's synchronization traffic counters.
type Transfer struct {
	Pushes, Pulls              int
	BytesPushed, BytesPulled   int64
	ShardsPushed, ShardsPulled int64
}

// Bytes returns the total sealed bytes the replica moved in both directions.
func (t Transfer) Bytes() int64 { return t.BytesPushed + t.BytesPulled }

// NewReplica creates a replica of userID's space named id (e.g.
// "alice/gateway") with DefaultShardCount replication shards. All replicas of
// a user derive the same sealing key from the user's master secret, so the
// cloud only ever sees ciphertext, and all replicas of a user must agree on
// the shard count (see NewReplicaShards).
func NewReplica(id, userID string, key crypto.SymmetricKey, svc cloud.Service, clock func() time.Time) *Replica {
	return NewReplicaShards(id, userID, key, svc, clock, DefaultShardCount)
}

// NewReplicaShards creates a replica with the given shard count. shards < 1
// is clamped to 1; a single shard reproduces full-state economics under the
// delta protocol. Every replica of one user must use the same count — the
// shard index is part of the cloud blob name and of the sealed associated
// data.
func NewReplicaShards(id, userID string, key crypto.SymmetricKey, svc cloud.Service, clock func() time.Time, shards int) *Replica {
	if clock == nil {
		clock = time.Now
	}
	if shards < 1 {
		shards = 1
	}
	r := &Replica{
		id:        id,
		userID:    userID,
		key:       key,
		cloud:     svc,
		shards:    make([]*replicaShard, shards),
		connected: true,
		clock:     clock,
		changed:   make(map[string]bool),
		authKey:   crypto.DeriveKey(key, "sync-root", userID),
		attest:    true,
		strict:    true,
	}
	for i := range r.shards {
		r.shards[i] = &replicaShard{
			docs:      make(map[string]VersionedDoc),
			vv:        make(map[string]uint64),
			conflicts: make(map[string]bool),
			attests:   make(map[string]Attestation),
		}
	}
	return r
}

// ID returns the replica identifier.
func (r *Replica) ID() string { return r.id }

// ShardCount returns the number of replication shards.
func (r *Replica) ShardCount() int { return len(r.shards) }

// shardIndex maps a document ID onto a shard, mirroring the FNV-1a striping
// of the sharded cloud store.
func (r *Replica) shardIndex(docID string) int {
	if len(r.shards) == 1 {
		return 0
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(docID))
	return int(h.Sum32() % uint32(len(r.shards)))
}

func (r *Replica) shardFor(docID string) *replicaShard {
	return r.shards[r.shardIndex(docID)]
}

// SetConnected toggles connectivity (weakly connected trusted sources).
func (r *Replica) SetConnected(up bool) {
	r.mu.Lock()
	r.connected = up
	r.mu.Unlock()
}

// Connected reports the current connectivity.
func (r *Replica) Connected() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.connected
}

// Upsert records a local create/update of a document.
func (r *Replica) Upsert(doc *datamodel.Document) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.shardFor(doc.ID)
	cur := s.docs[doc.ID]
	s.docs[doc.ID] = VersionedDoc{
		Doc:      doc.Clone(),
		Revision: cur.Revision + 1,
		Replica:  r.id,
		Updated:  r.clock(),
	}
	s.vv[r.id]++
	s.dirty = true
}

// Delete records a local deletion (kept as a tombstone for replication).
func (r *Replica) Delete(docID string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.shardFor(docID)
	cur := s.docs[docID]
	s.docs[docID] = VersionedDoc{
		Doc:      cur.Doc,
		Revision: cur.Revision + 1,
		Replica:  r.id,
		Updated:  r.clock(),
		Deleted:  true,
	}
	s.vv[r.id]++
	s.dirty = true
}

// Get returns the live document with the given ID, if present.
func (r *Replica) Get(docID string) (*datamodel.Document, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.shardFor(docID).docs[docID]
	if !ok || v.Deleted || v.Doc == nil {
		return nil, false
	}
	return v.Doc.Clone(), true
}

// LiveCount returns the number of live (non-deleted) documents.
func (r *Replica) LiveCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, s := range r.shards {
		for _, v := range s.docs {
			if !v.Deleted {
				n++
			}
		}
	}
	return n
}

// DirtyShards returns how many shards hold local information the cloud copy
// may lack.
func (r *Replica) DirtyShards() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, s := range r.shards {
		if s.dirty {
			n++
		}
	}
	return n
}

// ConflictsResolved returns how many conflicting updates have been resolved
// on documents this replica knows about. The count is part of the replicated
// state, so converged replicas report the same number.
func (r *Replica) ConflictsResolved() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, s := range r.shards {
		n += len(s.conflicts)
	}
	return n
}

// Traffic returns the number of pushes and pulls performed.
func (r *Replica) Traffic() (pushes, pulls int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pushes, r.pulls
}

// TransferStats returns a snapshot of all synchronization traffic counters,
// including the sealed bytes and shard blobs moved in each direction —
// experiment E11's primary metric.
func (r *Replica) TransferStats() Transfer {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Transfer{
		Pushes: r.pushes, Pulls: r.pulls,
		BytesPushed: r.bytesPushed, BytesPulled: r.bytesPulled,
		ShardsPushed: r.shardsPushed, ShardsPulled: r.shardsPulled,
	}
}

// noteChangedLocked records that a merge rewrote a document from remote
// state.
func (r *Replica) noteChangedLocked(docID string) {
	r.changed[docID] = true
}

// DrainChanges returns the documents rewritten by remote merges since the
// last call, with cloned metadata, and resets the set. Embedding layers use
// it to fold replicated deltas into their own indexes without rescanning the
// whole replica.
func (r *Replica) DrainChanges() []Change {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.changed) == 0 {
		return nil
	}
	out := make([]Change, 0, len(r.changed))
	for id := range r.changed {
		v, ok := r.shardFor(id).docs[id]
		if !ok {
			continue
		}
		ch := Change{DocID: id, Deleted: v.Deleted}
		if v.Doc != nil {
			ch.Doc = v.Doc.Clone()
		}
		out = append(out, ch)
	}
	r.changed = make(map[string]bool)
	return out
}

// RequeueChanges puts drained changes back into the pending set, so a caller
// that failed to apply some of them can return an error without losing the
// rest — the next DrainChanges will hand them out again (with the document's
// state as of that moment).
func (r *Replica) RequeueChanges(chs []Change) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, ch := range chs {
		r.changed[ch.DocID] = true
	}
}

// conflictKey is the deterministic identity of one resolved conflict: every
// replica that witnesses (or receives) the resolution records the same key,
// so conflict counts converge with the data.
func conflictKey(docID string, revision uint64, loser string) string {
	return docID + "@" + strconv.FormatUint(revision, 10) + ":" + loser
}

// recordConflictLocked adds a conflict record to the shard and marks it dirty
// so the record propagates to the other replicas.
func (r *Replica) recordConflictLocked(s *replicaShard, key string) {
	if s.conflicts[key] {
		return
	}
	s.conflicts[key] = true
	s.dirty = true
}

// mergeShardLocked merges a remote shard state into the local shard,
// resolving document conflicts deterministically (highest revision, then
// lexicographically greatest replica ID), unioning the conflict records, and
// joining the version vectors. If the local shard holds updates the remote
// state has not seen — its vector does not dominate ours — the shard is
// marked dirty so the next push re-publishes the merged state; this is the
// anti-entropy step that recovers from concurrent pushes overwriting each
// other at the blob store.
//
// The return value reports whether any remote document was applied locally;
// the full-state protocol uses it to dirty shards whose content it learned
// from the full blob (which delta-only peers never read), while the delta
// protocol ignores it (what it pulled is already in the shard blobs).
func (r *Replica) mergeShardLocked(s *replicaShard, remote shardState) bool {
	applied := false
	behind := false
	for k, v := range s.vv {
		if remote.VV[k] < v {
			behind = true
			break
		}
	}
	for id, rv := range remote.Docs {
		lv, exists := s.docs[id]
		if !exists {
			s.docs[id] = rv
			r.noteChangedLocked(id)
			applied = true
			continue
		}
		switch {
		case rv.Revision > lv.Revision:
			// A higher revision supersedes ours. Count it as a conflict only
			// when the overwritten entry was authored here and the remote
			// state's version vector lacks some of our updates to this shard
			// — evidence the remote side did not build on everything we
			// wrote. The vector is per-shard, not per-document, so an
			// unpushed local update to a *different* document in the shard
			// can make a causally-built overwrite look concurrent; the
			// approximation errs toward counting, is deterministic, and a
			// remote vector that dominates ours proves causality exactly.
			if lv.Replica == r.id && rv.Replica != r.id && remote.VV[r.id] < s.vv[r.id] {
				r.recordConflictLocked(s, conflictKey(id, rv.Revision, lv.Replica))
			}
			s.docs[id] = rv
			r.noteChangedLocked(id)
			applied = true
		case rv.Revision == lv.Revision && rv.Replica != lv.Replica:
			// True concurrent conflict: deterministic winner, recorded under a
			// key both sides derive identically.
			loser := lv.Replica
			if rv.Replica < lv.Replica {
				loser = rv.Replica
			}
			r.recordConflictLocked(s, conflictKey(id, rv.Revision, loser))
			if rv.Replica > lv.Replica {
				s.docs[id] = rv
				r.noteChangedLocked(id)
				applied = true
			}
		}
	}
	for key := range remote.Conflicts {
		if !s.conflicts[key] {
			s.conflicts[key] = true
		}
	}
	for k, v := range remote.VV {
		if s.vv[k] < v {
			s.vv[k] = v
		}
	}
	if behind {
		s.dirty = true
	}
	return applied
}

// snapshotShardLocked deep-copies a shard's replicated state for sealing
// outside the state mutex.
func snapshotShardLocked(s *replicaShard) shardState {
	out := shardState{
		Docs:      make(map[string]VersionedDoc, len(s.docs)),
		VV:        make(map[string]uint64, len(s.vv)),
		Conflicts: make(map[string]bool, len(s.conflicts)),
	}
	for id, v := range s.docs {
		out.Docs[id] = v
	}
	for k, v := range s.vv {
		out.VV[k] = v
	}
	for k := range s.conflicts {
		out.Conflicts[k] = true
	}
	if len(s.attests) > 0 {
		// Witnessed attestations ride along (the full-state protocol carries
		// them for completeness); the delta push replaces this copy with a
		// freshly stamped set in attestSnapshotLocked.
		out.Attests = make(map[string]Attestation, len(s.attests))
		for rep, a := range s.attests {
			out.Attests[rep] = a
		}
	}
	return out
}

// mapCloudErr folds provider unavailability into the replica's disconnected
// error, matching how a weakly connected cell experiences an outage.
func mapCloudErr(op string, err error) error {
	if errors.Is(err, cloud.ErrUnavailable) {
		return ErrDisconnected
	}
	return fmt.Errorf("sync: %s: %w", op, err)
}

// shardBufs recycles the scratch buffers of shard encode/decode: the binary
// payload and the sealed envelope on push, the decrypted plaintext on pull.
// Both stay within one call (the provider copies puts, the binary decoder
// copies strings out), so the pool keeps steady-state sync free of
// per-exchange buffer churn.
var shardBufs crypto.BufPool

// encodeShard seals one shard state for upload: binary-encode into a pooled
// scratch buffer, seal into a second pooled buffer in one pass. The caller
// owns the returned buffer and must hand it back to releaseShardBuf once the
// bytes have been shipped.
func (r *Replica) encodeShard(si int, st shardState) (*[]byte, error) {
	pb := shardBufs.Get()
	defer shardBufs.Put(pb)
	payload, err := appendShardState(*pb, st)
	if err != nil {
		return nil, fmt.Errorf("sync: encode shard %d: %w", si, err)
	}
	*pb = payload
	sb := shardBufs.Get()
	sealed, err := crypto.SealTo(*sb, r.key, payload, r.shardAD(si))
	if err != nil {
		shardBufs.Put(sb)
		return nil, fmt.Errorf("sync: seal shard %d: %w", si, err)
	}
	*sb = sealed
	return sb, nil
}

// releaseShardBufs recycles the sealed buffers of one push exchange.
func releaseShardBufs(bufs []*[]byte) {
	for _, b := range bufs {
		if b != nil {
			shardBufs.Put(b)
		}
	}
}

// decodeShard opens and verifies one sealed shard blob. The decrypted
// plaintext lives in a pooled buffer for the duration of the decode — the
// binary codec (and the JSON fallback) copy every field out.
func (r *Replica) decodeShard(si int, sealed []byte) (shardState, error) {
	pb := shardBufs.Get()
	defer shardBufs.Put(pb)
	plain, ad, err := crypto.OpenTo(*pb, r.key, sealed)
	if err != nil {
		return shardState{}, ErrIntegrity
	}
	*pb = plain
	if string(ad) != string(r.shardAD(si)) {
		return shardState{}, ErrIntegrity
	}
	st, err := decodeShardState(plain)
	if err != nil {
		return shardState{}, ErrIntegrity
	}
	return st, nil
}

// shardBlobName is the cloud name of one replication shard.
func (r *Replica) shardBlobName(si int) string {
	return r.userID + "/syncshard/" + fmt.Sprintf("%04d", si)
}

// shardAD binds a sealed shard to its user, the replica's shard count and the
// shard index: the untrusted provider can neither splice shards across users
// nor across positions, and a replica misconfigured with a different shard
// count fails loudly with ErrIntegrity instead of silently misrouting
// documents.
func (r *Replica) shardAD(si int) []byte {
	return []byte("syncshard:" + r.userID + ":" + strconv.Itoa(len(r.shards)) + ":" + strconv.Itoa(si))
}

// DocIDs returns the sorted IDs of live documents (for convergence checks).
func (r *Replica) DocIDs() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var ids []string
	for _, s := range r.shards {
		for id, v := range s.docs {
			if !v.Deleted {
				ids = append(ids, id)
			}
		}
	}
	sort.Strings(ids)
	return ids
}

// liveVersions returns one "<id>@<revision>:<replica>" entry per live
// document, sorted — the convergence fingerprint Equal compares.
func (r *Replica) liveVersions() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for _, s := range r.shards {
		for id, v := range s.docs {
			if !v.Deleted {
				out = append(out, conflictKey(id, v.Revision, v.Replica))
			}
		}
	}
	sort.Strings(out)
	return out
}

// Equal reports whether two replicas have converged to the same live state:
// the same documents at the same winning (revision, replica) versions.
// Comparing versions, not just IDs, matters for workloads that only update
// existing documents — ID sets would agree the whole time while the replicas
// still disagree on content.
func Equal(a, b *Replica) bool {
	av, bv := a.liveVersions(), b.liveVersions()
	if len(av) != len(bv) {
		return false
	}
	for i := range av {
		if av[i] != bv[i] {
			return false
		}
	}
	return true
}
