package sync

// This file implements the sharded delta protocol — the default Push/Pull —
// on top of the state and merge machinery in sync.go. The shape of every
// round trip:
//
//	Push:  one conditional batched fetch of the *dirty* shards (merge any
//	       that advanced remotely, read-modify-write), then one batched
//	       upload of their merged, sealed states.
//	Pull:  one conditional batched fetch over *all* shards; the provider
//	       ships bytes only for shards whose version advanced past what the
//	       replica last merged.
//
// Neither operation holds the state mutex across a cloud exchange: local
// Upsert/Get/Delete never wait on the network. A local update that lands
// between the snapshot and the upload simply re-marks its shard dirty, and
// the next push republishes it; a remote push that lands between our fetch
// and our upload is overwritten at the blob store, but its author detects
// the loss on its next sync (the fetched version vector no longer dominates
// its own) and republishes the merged state. Repeated rounds therefore
// converge — anti-entropy — without any cross-replica locking, which the
// intermittently connected cells of the paper could not provide anyway.

import "trustedcells/internal/cloud"

// Push uploads the replica's dirty shards to the cloud after merging the
// remote state of those shards (read-modify-write), all through batched
// exchanges. A replica with no dirty shards performs no cloud I/O at all.
func (r *Replica) Push() error {
	r.syncMu.Lock()
	defer r.syncMu.Unlock()
	return r.push()
}

// Pull fetches the shards whose remote version advanced since the last sync
// — one conditional batched exchange — and merges them into the replica.
func (r *Replica) Pull() error {
	r.syncMu.Lock()
	defer r.syncMu.Unlock()
	return r.pull()
}

// Sync is Pull followed by Push, as one serialized anti-entropy round.
func (r *Replica) Sync() error {
	r.syncMu.Lock()
	defer r.syncMu.Unlock()
	if err := r.pull(); err != nil {
		return err
	}
	return r.push()
}

// push implements Push; the caller holds syncMu.
func (r *Replica) push() error {
	r.mu.Lock()
	if !r.connected {
		r.mu.Unlock()
		return ErrDisconnected
	}
	dirty := r.dirtyShardIndexesLocked()
	if len(dirty) == 0 {
		r.mu.Unlock()
		return nil
	}
	gets := make([]cloud.CondGet, len(dirty))
	for i, si := range dirty {
		gets[i] = cloud.CondGet{Name: r.shardBlobName(si), IfNewer: r.shards[si].seen}
	}
	r.mu.Unlock()

	// Read-modify-write: learn what the cloud holds for the shards we are
	// about to overwrite. No state lock across the exchange.
	remote, err := cloud.GetBlobsIfVia(r.cloud, gets)
	if err != nil {
		return mapCloudErr("push", err)
	}

	r.mu.Lock()
	if !r.connected {
		r.mu.Unlock()
		return ErrDisconnected
	}
	for i, si := range dirty {
		if err := r.mergeFetchedLocked(si, remote[i]); err != nil {
			r.mu.Unlock()
			// A rule-1 freshness verdict needs a refetch to classify as
			// rollback or fork; other errors pass through unchanged.
			return r.finishDetection(err)
		}
	}
	// The merge (or a concurrent local update) may have dirtied more shards;
	// push everything dirty now. Attestations are stamped before any dirty
	// flag clears so an epoch-source failure loses nothing.
	dirty = r.dirtyShardIndexesLocked()
	snaps := make([]shardState, len(dirty))
	for i, si := range dirty {
		snaps[i] = snapshotShardLocked(r.shards[si])
		if err := r.attestSnapshotLocked(si, &snaps[i]); err != nil {
			r.mu.Unlock()
			return err
		}
	}
	// Clear the flags so updates arriving while the upload is in flight
	// re-mark their shard.
	for _, si := range dirty {
		r.shards[si].dirty = false
	}
	r.mu.Unlock()

	puts := make([]cloud.BlobPut, len(dirty))
	bufs := make([]*[]byte, len(dirty))
	for i, si := range dirty {
		sealed, err := r.encodeShard(si, snaps[i])
		if err != nil {
			releaseShardBufs(bufs)
			r.remarkDirty(dirty)
			return err
		}
		bufs[i] = sealed
		puts[i] = cloud.BlobPut{Name: r.shardBlobName(si), Data: *sealed}
	}
	versions, err := cloud.PutBlobsVia(r.cloud, puts)
	// The provider copied (or shipped) every blob; the sealed buffers can be
	// recycled. The traffic accounting below only reads slice-header lengths.
	releaseShardBufs(bufs)
	r.mu.Lock()
	defer r.mu.Unlock()
	if err != nil {
		for _, si := range dirty {
			r.shards[si].dirty = true
		}
		return mapCloudErr("push", err)
	}
	for i, si := range dirty {
		if versions[i] > r.shards[si].seen {
			r.shards[si].seen = versions[i]
		}
		if versions[i] > r.shards[si].acked {
			// The provider acknowledged this version for our own write; a
			// later read below it is the freshness audit's rule-1 evidence.
			r.shards[si].acked = versions[i]
		}
		r.bytesPushed += int64(len(puts[i].Data))
		r.shardsPushed++
	}
	r.pushes++
	return nil
}

// pull implements Pull; the caller holds syncMu.
func (r *Replica) pull() error {
	r.mu.Lock()
	if !r.connected {
		r.mu.Unlock()
		return ErrDisconnected
	}
	gets := make([]cloud.CondGet, len(r.shards))
	for si := range r.shards {
		gets[si] = cloud.CondGet{Name: r.shardBlobName(si), IfNewer: r.shards[si].seen}
	}
	r.mu.Unlock()

	blobs, err := cloud.GetBlobsIfVia(r.cloud, gets)
	if err != nil {
		return mapCloudErr("pull", err)
	}

	r.mu.Lock()
	if !r.connected {
		r.mu.Unlock()
		return ErrDisconnected
	}
	for si, b := range blobs {
		if err := r.mergeFetchedLocked(si, b); err != nil {
			r.mu.Unlock()
			return r.finishDetection(err)
		}
	}
	r.pulls++
	r.mu.Unlock()
	return nil
}

// mergeFetchedLocked folds one conditionally fetched shard blob into the
// replica — shared by push (read-modify-write half) and pull so the skip
// condition and traffic accounting cannot diverge. A blob that did not
// advance past the last merged version (or was never pushed) is a no-op —
// unless it fell below the version the provider acknowledged for our own
// push, which is the freshness audit's rule 1 (auth.go). A blob that did
// advance is audited for stale epochs and equivocation before it merges; a
// blob that fails to verify aborts with ErrIntegrity. The caller holds the
// state mutex.
func (r *Replica) mergeFetchedLocked(si int, b cloud.Blob) error {
	sh := r.shards[si]
	if b.Version == 0 {
		if sh.acked > 0 {
			// The provider acknowledged our push of this shard and now claims
			// the blob does not exist at all.
			if r.strict && r.attest {
				return &divergenceError{shard: si, acked: sh.acked, served: 0}
			}
			r.suspectLocked(si)
		}
		return nil
	}
	if b.Version <= sh.seen {
		if b.Version < sh.acked {
			if r.strict && r.attest {
				return &divergenceError{shard: si, acked: sh.acked, served: b.Version}
			}
			r.suspectLocked(si)
		}
		return nil
	}
	if len(b.Data) == 0 {
		// An advanced version must carry bytes on the conditional-get
		// contract; an empty advanced entry is provider misbehaviour.
		if r.strict && r.attest {
			return &RollbackError{Shard: si, AckedVersion: sh.acked, ServedVersion: b.Version}
		}
		r.suspectLocked(si)
		return nil
	}
	st, err := r.decodeShard(si, b.Data)
	if err != nil {
		return err
	}
	if err := r.auditFetchedLocked(si, st, b); err != nil {
		return err
	}
	r.mergeShardLocked(sh, st)
	witnessAttestsLocked(sh, st.Attests)
	sh.seen = b.Version
	r.bytesPulled += int64(len(b.Data))
	r.shardsPulled++
	return nil
}

// dirtyShardIndexesLocked lists the shards holding unpublished local state.
func (r *Replica) dirtyShardIndexesLocked() []int {
	var dirty []int
	for si, s := range r.shards {
		if s.dirty {
			dirty = append(dirty, si)
		}
	}
	return dirty
}

// remarkDirty restores the dirty flag of the given shards after a failed
// upload.
func (r *Replica) remarkDirty(indexes []int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, si := range indexes {
		r.shards[si].dirty = true
	}
}
