package sync

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"trustedcells/internal/cloud"
	"trustedcells/internal/crypto"
)

// fleet builds n replicas of one user sharing a cloud service.
func fleet(t *testing.T, svc cloud.Service, n int) []*Replica {
	t.Helper()
	key, err := crypto.NewSymmetricKey()
	if err != nil {
		t.Fatal(err)
	}
	replicas := make([]*Replica, n)
	for i := range replicas {
		replicas[i] = NewReplica(fmt.Sprintf("alice/cell-%02d", i), "alice", key, svc, func() time.Time { return t0 })
	}
	return replicas
}

// TestChurnConvergenceAndConflictAgreement drives a fleet of replicas through
// a seeded randomized partition schedule — connectivity flaps, concurrent
// updates and deletes, sync attempts that fail while disconnected — then
// reconnects everything and asserts that (a) every replica converges to the
// same live state and (b) every replica reports the same conflict count,
// because conflict resolutions are replicated state, not local observations.
func TestChurnConvergenceAndConflictAgreement(t *testing.T) {
	for _, seed := range []int64{7, 42, 1337} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			svc := cloud.NewMemory()
			replicas := fleet(t, svc, 4)
			for step := 0; step < 600; step++ {
				r := replicas[rng.Intn(len(replicas))]
				switch rng.Intn(12) {
				case 0:
					r.SetConnected(false)
				case 1:
					r.SetConnected(true)
				case 2:
					r.Delete(fmt.Sprintf("doc-%04d", rng.Intn(80)))
				case 3, 4:
					_ = r.Sync() // may fail while disconnected; that is the point
				case 5:
					_ = r.Pull()
				default:
					r.Upsert(doc(rng.Intn(80)))
				}
			}
			for _, r := range replicas {
				r.SetConnected(true)
			}
			// Conflict records discovered during the round that reaches
			// document convergence still need one more round to propagate,
			// so convergence here means: same live state AND same replicated
			// conflict count on every replica.
			converged := false
			for round := 0; round < 10 && !converged; round++ {
				for _, r := range replicas {
					if err := r.Sync(); err != nil {
						t.Fatalf("final sync: %v", err)
					}
				}
				converged = true
				for _, r := range replicas[1:] {
					if !Equal(replicas[0], r) || r.ConflictsResolved() != replicas[0].ConflictsResolved() {
						converged = false
						break
					}
				}
			}
			if !converged {
				for _, r := range replicas {
					t.Logf("%s: %d live docs, %d conflicts", r.ID(), r.LiveCount(), r.ConflictsResolved())
				}
				t.Fatal("replicas did not converge (state + conflict counts) after churn")
			}
			if replicas[0].ConflictsResolved() == 0 {
				t.Fatal("churn workload produced no conflicts; schedule too tame to test resolution")
			}
		})
	}
}

// TestConcurrentUpsertsDuringSync exercises the narrowed critical section
// under the race detector: local mutations and reads proceed while sync
// rounds are in flight, and everything still converges.
func TestConcurrentUpsertsDuringSync(t *testing.T) {
	svc := cloud.NewMemory()
	replicas := fleet(t, svc, 3)
	var wg sync.WaitGroup
	for ri, r := range replicas {
		wg.Add(2)
		go func(ri int, r *Replica) {
			defer wg.Done()
			for i := 0; i < 150; i++ {
				r.Upsert(doc(ri*1000 + i%60))
				if i%7 == 0 {
					r.Get(fmt.Sprintf("doc-%04d", i%60))
				}
			}
		}(ri, r)
		go func(r *Replica) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				_ = r.Sync()
			}
		}(r)
	}
	wg.Wait()
	for round := 0; round < 6; round++ {
		for _, r := range replicas {
			if err := r.Sync(); err != nil {
				t.Fatalf("final sync: %v", err)
			}
		}
	}
	for _, r := range replicas[1:] {
		if !Equal(replicas[0], r) {
			t.Fatalf("replicas did not converge: %d vs %d live docs",
				replicas[0].LiveCount(), r.LiveCount())
		}
	}
}

// TestLocalOpsDoNotBlockOnSlowCloud pins the Push-mutex bugfix: with a slow
// provider mid-push, Upsert and Get must complete at memory speed instead of
// queueing behind the cloud round-trip.
func TestLocalOpsDoNotBlockOnSlowCloud(t *testing.T) {
	svc := cloud.NewMemory()
	svc.SetLatency(250 * time.Millisecond)
	replicas := fleet(t, svc, 1)
	r := replicas[0]
	r.Upsert(doc(1))

	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		close(started)
		done <- r.Push() // pays >=2 simulated round-trips
	}()
	<-started
	time.Sleep(20 * time.Millisecond) // let Push reach the cloud exchange

	t0 := time.Now()
	r.Upsert(doc(2))
	r.Get("doc-0001")
	if elapsed := time.Since(t0); elapsed > 200*time.Millisecond {
		t.Fatalf("local ops blocked behind the cloud round-trip: %v", elapsed)
	}
	if err := <-done; err != nil {
		t.Fatalf("push: %v", err)
	}
}
