package sync

// Binary shard codec. Every dirty-shard push seals one shardState; the seed
// implementation paid json.Marshal/Unmarshal over the whole shard (hundreds
// of documents) per exchange. The length-prefixed binary form below embeds
// the datamodel binary document codec, roughly halving shard blob bytes and
// removing the reflection cost from the sync hot path. Decoding sniffs the
// first byte and falls back to JSON, so shard blobs pushed by older replicas
// keep merging cleanly.
//
// Wire format (integers are unsigned varints):
//
//	[1] magic 0xD6 — distinct from the document magic and from JSON
//	[1] codec version (currently 1)
//	docs:      count + per entry: key string, revision, replica string,
//	           updated (uvarint length + time.MarshalBinary), flags byte
//	           (bit0 deleted, bit1 metadata present), [binary document]
//	vv:        count + (replica string, counter) pairs
//	conflicts: count + strings
//
// Doc keys, vector keys and conflict keys are sorted, so equal states encode
// to equal bytes on every replica.

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"trustedcells/internal/datamodel"
)

const (
	shardCodecMagic   = 0xD6
	shardCodecVersion = 1
	// shardCodecVersionAuth appends the authenticated-catalog section
	// (writer + attestations, see auth.go) after the conflict set. States
	// without attestations still encode as version 1, so disabling
	// attestation reproduces the pre-auth wire format byte for byte.
	shardCodecVersionAuth = 2

	shardFlagDeleted = 1 << 0
	shardFlagHasDoc  = 1 << 1
)

func appendTime(dst []byte, t time.Time) ([]byte, error) {
	tb, err := t.MarshalBinary()
	if err != nil {
		return nil, err
	}
	dst = binary.AppendUvarint(dst, uint64(len(tb)))
	return append(dst, tb...), nil
}

// appendBytes writes a length-prefixed byte string.
func appendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// consumeBytes reads a length-prefixed byte string, copying it out of the
// (pooled, transient) decode buffer.
func consumeBytes(b []byte) ([]byte, []byte, error) {
	n, b, err := datamodel.ConsumeUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(b)) {
		return nil, nil, errShardCodec
	}
	return append([]byte(nil), b[:n]...), b[n:], nil
}

// appendShardState appends the binary encoding of st to dst.
func appendShardState(dst []byte, st shardState) ([]byte, error) {
	codecVersion := byte(shardCodecVersion)
	if st.Writer != "" || len(st.Attests) > 0 {
		codecVersion = shardCodecVersionAuth
	}
	dst = append(dst, shardCodecMagic, codecVersion)

	ids := make([]string, 0, len(st.Docs))
	for id := range st.Docs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	dst = binary.AppendUvarint(dst, uint64(len(ids)))
	for _, id := range ids {
		v := st.Docs[id]
		dst = datamodel.AppendString(dst, id)
		dst = binary.AppendUvarint(dst, v.Revision)
		dst = datamodel.AppendString(dst, v.Replica)
		var err error
		if dst, err = appendTime(dst, v.Updated); err != nil {
			return nil, fmt.Errorf("sync: encode doc %s: %w", id, err)
		}
		var flags byte
		if v.Deleted {
			flags |= shardFlagDeleted
		}
		if v.Doc != nil {
			flags |= shardFlagHasDoc
		}
		dst = append(dst, flags)
		if v.Doc != nil {
			if dst, err = v.Doc.AppendBinary(dst); err != nil {
				return nil, fmt.Errorf("sync: encode doc %s: %w", id, err)
			}
		}
	}

	vvKeys := make([]string, 0, len(st.VV))
	for k := range st.VV {
		vvKeys = append(vvKeys, k)
	}
	sort.Strings(vvKeys)
	dst = binary.AppendUvarint(dst, uint64(len(vvKeys)))
	for _, k := range vvKeys {
		dst = datamodel.AppendString(dst, k)
		dst = binary.AppendUvarint(dst, st.VV[k])
	}

	conflicts := make([]string, 0, len(st.Conflicts))
	for k := range st.Conflicts {
		conflicts = append(conflicts, k)
	}
	sort.Strings(conflicts)
	dst = binary.AppendUvarint(dst, uint64(len(conflicts)))
	for _, k := range conflicts {
		dst = datamodel.AppendString(dst, k)
	}

	if codecVersion == shardCodecVersionAuth {
		dst = datamodel.AppendString(dst, st.Writer)
		reps := make([]string, 0, len(st.Attests))
		for rep := range st.Attests {
			reps = append(reps, rep)
		}
		sort.Strings(reps)
		dst = binary.AppendUvarint(dst, uint64(len(reps)))
		for _, rep := range reps {
			a := st.Attests[rep]
			dst = datamodel.AppendString(dst, rep)
			dst = binary.AppendUvarint(dst, a.Epoch)
			dst = appendBytes(dst, a.Root)
			dst = appendBytes(dst, a.Sig)
		}
	}
	return dst, nil
}

var errShardCodec = fmt.Errorf("sync: malformed shard state")

// decodeShardState parses a shard blob in either codec: binary states (first
// byte shardCodecMagic) through the decoder below, anything else through the
// JSON fallback that older replicas pushed.
func decodeShardState(data []byte) (shardState, error) {
	if len(data) == 0 || data[0] != shardCodecMagic {
		var st shardState
		if err := json.Unmarshal(data, &st); err != nil {
			return shardState{}, fmt.Errorf("sync: decode shard state: %w", err)
		}
		return st, nil
	}
	if len(data) < 2 || (data[1] != shardCodecVersion && data[1] != shardCodecVersionAuth) {
		return shardState{}, errShardCodec
	}
	codecVersion := data[1]
	b := data[2:]

	nDocs, b, err := datamodel.ConsumeUvarint(b)
	if err != nil {
		return shardState{}, err
	}
	// Each entry costs several bytes on the wire; one byte is a safe lower
	// bound that keeps corrupted counts from forcing huge allocations.
	if nDocs > uint64(len(b)) {
		return shardState{}, errShardCodec
	}
	st := shardState{Docs: make(map[string]VersionedDoc, nDocs)}
	for i := uint64(0); i < nDocs; i++ {
		var id string
		if id, b, err = datamodel.ConsumeString(b); err != nil {
			return shardState{}, err
		}
		var v VersionedDoc
		if v.Revision, b, err = datamodel.ConsumeUvarint(b); err != nil {
			return shardState{}, err
		}
		if v.Replica, b, err = datamodel.ConsumeString(b); err != nil {
			return shardState{}, err
		}
		var tlen uint64
		if tlen, b, err = datamodel.ConsumeUvarint(b); err != nil {
			return shardState{}, err
		}
		if tlen > uint64(len(b)) {
			return shardState{}, errShardCodec
		}
		if err := v.Updated.UnmarshalBinary(b[:tlen]); err != nil {
			return shardState{}, fmt.Errorf("%w: updated: %v", errShardCodec, err)
		}
		b = b[tlen:]
		if len(b) < 1 {
			return shardState{}, errShardCodec
		}
		flags := b[0]
		b = b[1:]
		v.Deleted = flags&shardFlagDeleted != 0
		if flags&shardFlagHasDoc != 0 {
			var doc *datamodel.Document
			if doc, b, err = datamodel.DecodeDocumentPrefix(b); err != nil {
				return shardState{}, fmt.Errorf("%w: doc %s: %v", errShardCodec, id, err)
			}
			v.Doc = doc
		}
		st.Docs[id] = v
	}

	nVV, b, err := datamodel.ConsumeUvarint(b)
	if err != nil {
		return shardState{}, err
	}
	if nVV > uint64(len(b)) {
		return shardState{}, errShardCodec
	}
	if nVV > 0 {
		st.VV = make(map[string]uint64, nVV)
		for i := uint64(0); i < nVV; i++ {
			var k string
			if k, b, err = datamodel.ConsumeString(b); err != nil {
				return shardState{}, err
			}
			if st.VV[k], b, err = datamodel.ConsumeUvarint(b); err != nil {
				return shardState{}, err
			}
		}
	}

	nConflicts, b, err := datamodel.ConsumeUvarint(b)
	if err != nil {
		return shardState{}, err
	}
	if nConflicts > uint64(len(b)) {
		return shardState{}, errShardCodec
	}
	if nConflicts > 0 {
		st.Conflicts = make(map[string]bool, nConflicts)
		for i := uint64(0); i < nConflicts; i++ {
			var k string
			if k, b, err = datamodel.ConsumeString(b); err != nil {
				return shardState{}, err
			}
			st.Conflicts[k] = true
		}
	}

	if codecVersion == shardCodecVersionAuth {
		if st.Writer, b, err = datamodel.ConsumeString(b); err != nil {
			return shardState{}, err
		}
		var nAtt uint64
		if nAtt, b, err = datamodel.ConsumeUvarint(b); err != nil {
			return shardState{}, err
		}
		if nAtt > uint64(len(b)) {
			return shardState{}, errShardCodec
		}
		if nAtt > 0 {
			st.Attests = make(map[string]Attestation, nAtt)
			for i := uint64(0); i < nAtt; i++ {
				var rep string
				if rep, b, err = datamodel.ConsumeString(b); err != nil {
					return shardState{}, err
				}
				var a Attestation
				if a.Epoch, b, err = datamodel.ConsumeUvarint(b); err != nil {
					return shardState{}, err
				}
				if a.Root, b, err = consumeBytes(b); err != nil {
					return shardState{}, err
				}
				if a.Sig, b, err = consumeBytes(b); err != nil {
					return shardState{}, err
				}
				st.Attests[rep] = a
			}
		}
	}
	if len(b) != 0 {
		return shardState{}, errShardCodec
	}
	return st, nil
}
