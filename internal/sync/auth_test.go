package sync

import (
	"errors"
	"testing"
	"time"

	"trustedcells/internal/cloud"
	"trustedcells/internal/crypto"
)

// authPair builds two single-shard replicas of one user over the given
// service. One shard makes every drill deterministic: all documents land in
// shard 0 and every push/pull moves exactly one blob.
func authPair(svc cloud.Service) (*Replica, *Replica) {
	key, _ := crypto.NewSymmetricKey()
	clock := func() time.Time { return t0 }
	a := NewReplicaShards("alice/gateway", "alice", key, svc, clock, 1)
	b := NewReplicaShards("alice/phone", "alice", key, svc, clock, 1)
	return a, b
}

func TestHonestSyncHasNoFalsePositives(t *testing.T) {
	// Churny honest traffic — concurrent pushes, overwrite races, full-state
	// rounds mixed in — must never trip the freshness audit in strict mode.
	svc := cloud.NewAdversary(cloud.NewMemory(), cloud.AdversaryConfig{Mode: cloud.Honest, Seed: 3})
	a, b := authPair(svc)
	for i := 0; i < 20; i++ {
		a.Upsert(doc(i))
		b.Upsert(doc(100 + i))
		if err := a.Sync(); err != nil {
			t.Fatalf("a.Sync round %d: %v", i, err)
		}
		if err := b.Sync(); err != nil {
			t.Fatalf("b.Sync round %d: %v", i, err)
		}
		if i%5 == 0 {
			if err := a.SyncFull(); err != nil {
				t.Fatalf("a.SyncFull round %d: %v", i, err)
			}
		}
	}
	if err := a.Sync(); err != nil {
		t.Fatalf("final a.Sync: %v", err)
	}
	if !Equal(a, b) {
		t.Fatal("replicas did not converge")
	}
	if a.Suspicions() != 0 || b.Suspicions() != 0 {
		t.Fatalf("honest run raised suspicions: a=%d b=%d", a.Suspicions(), b.Suspicions())
	}
}

func TestRollbackDetectedInOneRound(t *testing.T) {
	// The provider re-serves an old sealed blob under the current version
	// number — AEAD-clean, version-check-clean — and the stale-epoch rule
	// convicts on the victim's first pull.
	adv := cloud.NewAdversary(cloud.NewMemory(), cloud.AdversaryConfig{Mode: cloud.Honest, Seed: 7, RollbackRate: 1, DropRate: 1})
	a, b := authPair(adv)
	a.Upsert(doc(1))
	if err := a.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := b.Sync(); err != nil { // b witnesses a's epoch 1
		t.Fatal(err)
	}
	a.Upsert(doc(2))
	if err := a.Sync(); err != nil { // epoch 2 now current at the provider
		t.Fatal(err)
	}
	adv.SetMode(cloud.Rollback)
	err := b.Pull()
	if !errors.Is(err, ErrRollbackDetected) {
		t.Fatalf("Pull = %v, want rollback detection", err)
	}
	if !errors.Is(err, ErrIntegrity) {
		t.Fatal("rollback must also satisfy errors.Is(err, ErrIntegrity)")
	}
	var re *RollbackError
	if !errors.As(err, &re) || re.Shard != 0 {
		t.Fatalf("evidence not attached: %v", err)
	}
}

func TestDroppedWriteDetectedInOneRound(t *testing.T) {
	// The provider acknowledges a push and discards it. The next pull serves
	// the shard below the acknowledged version: rule-1 guilt, classified as
	// rollback because the served history carries no fresh epochs.
	for name, mk := range map[string]func(t *testing.T) cloud.Service{
		"memory": func(t *testing.T) cloud.Service { return cloud.NewMemory() },
		"durable": func(t *testing.T) cloud.Service {
			d, err := cloud.OpenDurable(t.TempDir(), cloud.DurableOptions{Shards: 2})
			if err != nil {
				t.Fatalf("OpenDurable: %v", err)
			}
			t.Cleanup(func() { _ = d.Close() })
			return d
		},
	} {
		t.Run(name, func(t *testing.T) {
			adv := cloud.NewAdversary(mk(t), cloud.AdversaryConfig{Mode: cloud.Honest, Seed: 7, RollbackRate: 1, DropRate: 1})
			a, _ := authPair(adv)
			a.Upsert(doc(1))
			if err := a.Sync(); err != nil {
				t.Fatal(err)
			}
			adv.SetMode(cloud.Dropping)
			a.Upsert(doc(2))
			if err := a.Push(); err != nil { // acknowledged, discarded
				t.Fatalf("dropped push should look successful: %v", err)
			}
			adv.SetMode(cloud.Honest)
			err := a.Pull()
			if !errors.Is(err, ErrRollbackDetected) {
				t.Fatalf("Pull = %v, want rollback detection", err)
			}
			var re *RollbackError
			if !errors.As(err, &re) || re.AckedVersion <= re.ServedVersion {
				t.Fatalf("evidence not attached: %v", err)
			}
		})
	}
}

func TestForkDetectedWhenViewsRejoin(t *testing.T) {
	// The provider shows alice's gateway and phone divergent histories
	// (both acknowledged), then rejoins them on the gateway's branch. The
	// phone's next exchange serves the shard below its acknowledged version,
	// and the served history carries gateway epochs the phone never
	// witnessed: a fork, not a mere rollback.
	adv := cloud.NewAdversary(cloud.NewMemory(), cloud.AdversaryConfig{Mode: cloud.Honest, Seed: 7, RollbackRate: 1, DropRate: 1})
	key, _ := crypto.NewSymmetricKey()
	clock := func() time.Time { return t0 }
	a := NewReplicaShards("alice/gateway", "alice", key, adv.ClientView("gw"), clock, 1)
	b := NewReplicaShards("alice/phone", "alice", key, adv.ClientView("ph"), clock, 1)

	a.Upsert(doc(1))
	if err := a.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := b.Sync(); err != nil {
		t.Fatal(err)
	}
	adv.SetMode(cloud.Fork)
	a.Upsert(doc(2))
	if err := a.Sync(); err != nil { // gateway branch
		t.Fatal(err)
	}
	// The phone pushes twice on its branch, so its acknowledged version
	// outruns the branch the provider will keep.
	b.Upsert(doc(3))
	if err := b.Sync(); err != nil {
		t.Fatal(err)
	}
	b.Upsert(doc(4))
	if err := b.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := adv.EndFork("gw"); err != nil {
		t.Fatal(err)
	}
	err := b.Pull()
	if !errors.Is(err, ErrForkDetected) {
		t.Fatalf("Pull = %v, want fork detection", err)
	}
	var fe *ForkError
	if !errors.As(err, &fe) || fe.Replica != "alice/gateway" {
		t.Fatalf("fork evidence should name the diverged writer: %v", err)
	}
}

func TestLenientModeSuspectsAndHeals(t *testing.T) {
	// With strict freshness off (the replicated-quorum setting) a violation
	// is absorbed: counted, shard re-dirtied, and the republish re-asserts
	// the newest state once the provider behaves.
	adv := cloud.NewAdversary(cloud.NewMemory(), cloud.AdversaryConfig{Mode: cloud.Honest, Seed: 7, RollbackRate: 1, DropRate: 1})
	a, b := authPair(adv)
	b.SetStrictFreshness(false)
	a.Upsert(doc(1))
	if err := a.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := b.Sync(); err != nil {
		t.Fatal(err)
	}
	a.Upsert(doc(2))
	if err := a.Sync(); err != nil {
		t.Fatal(err)
	}
	adv.SetMode(cloud.Rollback)
	if err := b.Pull(); err != nil {
		t.Fatalf("lenient pull must absorb the violation: %v", err)
	}
	if b.Suspicions() == 0 {
		t.Fatal("violation not counted")
	}
	adv.SetMode(cloud.Honest)
	if err := b.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := a.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := b.Sync(); err != nil {
		t.Fatal(err)
	}
	if !Equal(a, b) {
		t.Fatal("replicas did not re-converge after the attack window")
	}
}

func TestAttestationDisabledInterop(t *testing.T) {
	// An attestation-off replica emits the v1 wire format and still
	// interoperates with an attesting peer; the attesting peer simply has
	// nothing to audit on the legacy blobs.
	svc := cloud.NewMemory()
	a, b := authPair(svc)
	a.SetAttestation(false)
	a.Upsert(doc(1))
	if err := a.Sync(); err != nil {
		t.Fatal(err)
	}
	blob, err := svc.GetBlob("alice/syncshard/0000")
	if err != nil {
		t.Fatal(err)
	}
	st, err := a.decodeShard(0, blob.Data)
	if err != nil {
		t.Fatal(err)
	}
	if st.Writer != "" || len(st.Attests) != 0 {
		t.Fatalf("attestation-off push carried auth section: %+v", st)
	}
	if err := b.Sync(); err != nil {
		t.Fatalf("attesting peer rejected legacy blob: %v", err)
	}
	b.Upsert(doc(2))
	if err := b.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := a.Sync(); err != nil {
		t.Fatalf("legacy replica rejected attested blob: %v", err)
	}
	if !Equal(a, b) {
		t.Fatal("mixed fleet did not converge")
	}
}

func TestCheckShardBlobAudit(t *testing.T) {
	// CheckShardBlob is the read-only audit the replication layer's
	// quarantine verifier wraps: a current blob passes, a stale copy of the
	// shard's history is convicted against the same witness set.
	svc := cloud.NewMemory()
	a, b := authPair(svc)
	a.Upsert(doc(1))
	if err := a.Sync(); err != nil {
		t.Fatal(err)
	}
	stale, err := svc.GetBlob("alice/syncshard/0000")
	if err != nil {
		t.Fatal(err)
	}
	a.Upsert(doc(2))
	if err := a.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := b.Sync(); err != nil { // witness both epochs
		t.Fatal(err)
	}
	current, err := svc.GetBlob("alice/syncshard/0000")
	if err != nil {
		t.Fatal(err)
	}
	if err := b.CheckShardBlob(0, current.Data); err != nil {
		t.Fatalf("current blob failed audit: %v", err)
	}
	if err := b.CheckShardBlob(0, stale.Data); !errors.Is(err, ErrRollbackDetected) {
		t.Fatalf("stale blob audit = %v, want rollback", err)
	}
	if err := b.CheckShardBlob(0, nil); err != nil {
		t.Fatalf("empty blob should pass (nothing to audit): %v", err)
	}
	if err := b.CheckShardBlob(99, current.Data); err == nil {
		t.Fatal("out-of-range shard index must error")
	}
}

func TestEpochsResumeAcrossRestart(t *testing.T) {
	// A replica rebuilt from replicated state pulls before pushing, resumes
	// past its own witnessed epochs, and therefore never reuses an epoch —
	// no false fork conviction at its peer.
	svc := cloud.NewMemory()
	key, _ := crypto.NewSymmetricKey()
	clock := func() time.Time { return t0 }
	a := NewReplicaShards("alice/gateway", "alice", key, svc, clock, 1)
	b := NewReplicaShards("alice/phone", "alice", key, svc, clock, 1)
	for i := 0; i < 3; i++ {
		a.Upsert(doc(i))
		if err := a.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Sync(); err != nil {
		t.Fatal(err)
	}
	// "Restart": a fresh instance under the same identity.
	a2 := NewReplicaShards("alice/gateway", "alice", key, svc, clock, 1)
	if err := a2.Sync(); err != nil {
		t.Fatalf("rebuilt replica first sync: %v", err)
	}
	a2.Upsert(doc(10))
	if err := a2.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := b.Sync(); err != nil {
		t.Fatalf("peer convicted an honest restart: %v", err)
	}
	if b.Suspicions() != 0 {
		t.Fatalf("suspicions after honest restart: %d", b.Suspicions())
	}
}

func TestCodecAuthSectionRoundTrip(t *testing.T) {
	st := shardState{
		Docs:   map[string]VersionedDoc{"d": {Revision: 3, Replica: "alice/gateway", Updated: t0}},
		VV:     map[string]uint64{"alice/gateway": 3},
		Writer: "alice/gateway",
		Attests: map[string]Attestation{
			"alice/gateway": {Epoch: 7, Root: []byte{1, 2, 3}, Sig: []byte{4, 5, 6, 7}},
			"alice/phone":   {Epoch: 2, Root: []byte{9}, Sig: []byte{8}},
		},
	}
	enc, err := appendShardState(nil, st)
	if err != nil {
		t.Fatal(err)
	}
	if enc[1] != shardCodecVersionAuth {
		t.Fatalf("codec version = %d, want %d", enc[1], shardCodecVersionAuth)
	}
	dec, err := decodeShardState(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Writer != st.Writer || len(dec.Attests) != 2 {
		t.Fatalf("auth section lost: %+v", dec)
	}
	got := dec.Attests["alice/gateway"]
	if got.Epoch != 7 || string(got.Root) != string([]byte{1, 2, 3}) || len(got.Sig) != 4 {
		t.Fatalf("attestation mangled: %+v", got)
	}
	// Truncated auth sections must fail closed, not decode partially.
	for cut := len(enc) - 1; cut > len(enc)-6; cut-- {
		if _, err := decodeShardState(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded", cut)
		}
	}
}
