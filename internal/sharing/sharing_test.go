package sharing

import (
	"testing"
	"time"

	"trustedcells/internal/crypto"
	"trustedcells/internal/datamodel"
	"trustedcells/internal/policy"
)

var now = time.Date(2013, 6, 1, 12, 0, 0, 0, time.UTC)

func fixture(t *testing.T) (*Offer, crypto.SymmetricKey, crypto.SymmetricKey, *crypto.SigningKey) {
	t.Helper()
	originator, _ := crypto.NewSigningKey()
	docKey, _ := crypto.NewSymmetricKey()
	pairKey, _ := crypto.NewSymmetricKey()
	doc := &datamodel.Document{
		ID: "doc-1", Owner: "alice", Type: "photo", Class: datamodel.ClassAuthored,
		ContentHash: "hash-1", BlobRef: "alice/vault/doc-1", CreatedAt: now, Size: 10,
	}
	sticky, err := policy.SealSticky(policy.StickyPolicy{
		DocumentID: "doc-1", ContentHash: "hash-1", OriginatorID: "alice",
		Access: policy.Set{Owner: "alice"},
	}, originator.Public(), func(m []byte) ([]byte, error) { return originator.Sign(m), nil })
	if err != nil {
		t.Fatal(err)
	}
	offer, err := BuildOffer("alice", "bob", doc, docKey, pairKey, sticky, now, originator.Public(),
		func(m []byte) ([]byte, error) { return originator.Sign(m), nil })
	if err != nil {
		t.Fatalf("BuildOffer: %v", err)
	}
	return offer, docKey, pairKey, originator
}

func TestOfferVerifyAndUnwrap(t *testing.T) {
	offer, docKey, pairKey, originator := fixture(t)
	if err := offer.Verify("bob", nil); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	pub := originator.Public()
	if err := offer.Verify("bob", &pub); err != nil {
		t.Fatalf("Verify with expected originator: %v", err)
	}
	got, err := offer.UnwrapKey(pairKey)
	if err != nil {
		t.Fatalf("UnwrapKey: %v", err)
	}
	if got != docKey {
		t.Fatal("unwrapped key differs")
	}
}

func TestOfferWrongRecipient(t *testing.T) {
	offer, _, _, _ := fixture(t)
	if err := offer.Verify("carol", nil); err != ErrWrongRecipient {
		t.Fatalf("expected ErrWrongRecipient, got %v", err)
	}
}

func TestOfferWrongOriginatorKey(t *testing.T) {
	offer, _, _, _ := fixture(t)
	other, _ := crypto.NewSigningKey()
	pub := other.Public()
	if err := offer.Verify("bob", &pub); err == nil {
		t.Fatal("offer accepted with unexpected originator key")
	}
}

func TestOfferTamperedDocumentRejected(t *testing.T) {
	offer, _, _, _ := fixture(t)
	offer.Document.BlobRef = "mallory/evil-blob"
	if err := offer.Verify("bob", nil); err == nil {
		t.Fatal("tampered offer accepted")
	}
}

func TestOfferStickyMismatchRejected(t *testing.T) {
	offer, _, _, originator := fixture(t)
	// Re-seal the sticky policy for a different document and splice it in.
	otherSticky, _ := policy.SealSticky(policy.StickyPolicy{
		DocumentID: "doc-2", ContentHash: "hash-1", OriginatorID: "alice",
	}, originator.Public(), func(m []byte) ([]byte, error) { return originator.Sign(m), nil })
	offer.Sticky = otherSticky
	if err := offer.Verify("bob", nil); err == nil {
		t.Fatal("offer with mismatched sticky policy accepted")
	}
}

func TestOfferUnwrapWithWrongPairingKey(t *testing.T) {
	offer, _, _, _ := fixture(t)
	wrong, _ := crypto.NewSymmetricKey()
	if _, err := offer.UnwrapKey(wrong); err == nil {
		t.Fatal("key unwrapped with wrong pairing key")
	}
}

func TestOfferEncodeDecode(t *testing.T) {
	offer, _, pairKey, _ := fixture(t)
	enc, err := offer.Encode()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeOffer(enc)
	if err != nil {
		t.Fatal(err)
	}
	if err := dec.Verify("bob", nil); err != nil {
		t.Fatalf("decoded offer does not verify: %v", err)
	}
	if _, err := dec.UnwrapKey(pairKey); err != nil {
		t.Fatalf("decoded offer key unwrap: %v", err)
	}
	if _, err := DecodeOffer([]byte("{bad")); err == nil {
		t.Fatal("bad offer JSON accepted")
	}
}

func TestOfferMissingPartsRejected(t *testing.T) {
	offer, _, _, _ := fixture(t)
	noDoc := *offer
	noDoc.Document = nil
	if err := noDoc.Verify("bob", nil); err == nil {
		t.Fatal("offer without document accepted")
	}
	noSticky := *offer
	noSticky.Sticky = nil
	if err := noSticky.Verify("bob", nil); err == nil {
		t.Fatal("offer without sticky policy accepted")
	}
}
