// Package sharing defines the secure-sharing protocol messages exchanged by
// trusted cells through the untrusted infrastructure. Sharing a document
// means sharing three things (per the paper): the metadata (so the recipient
// can locate the referenced data in the cloud), the cryptographic key (so the
// recipient cell can decrypt it) and the sticky policy (so the recipient cell
// enforces the expected access and usage control rules).
//
// The document key is wrapped under a pairing key shared by the two cells, so
// the infrastructure relaying the offer learns nothing, and the whole offer
// is signed by the originator cell so the recipient can check its
// legitimacy.
package sharing

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"trustedcells/internal/crypto"
	"trustedcells/internal/datamodel"
	"trustedcells/internal/policy"
)

// Errors returned when validating offers.
var (
	ErrBadOffer       = errors.New("sharing: offer verification failed")
	ErrWrongRecipient = errors.New("sharing: offer addressed to another cell")
)

// Offer is the share-offer message sent from the originator cell to the
// recipient cell (via the cloud mailbox).
type Offer struct {
	// From and To are the cell identifiers.
	From string `json:"from"`
	To   string `json:"to"`
	// Document is the shared document's metadata (including its BlobRef in
	// the cloud).
	Document *datamodel.Document `json:"document"`
	// WrappedKey is the document key wrapped under the pairing key of the two
	// cells.
	WrappedKey []byte `json:"wrapped_key"`
	// Sticky is the signed sticky policy the recipient must enforce.
	Sticky *policy.StickyPolicy `json:"sticky"`
	// CreatedAt timestamps the offer.
	CreatedAt time.Time `json:"created_at"`
	// OriginatorKey and Signature authenticate the offer itself.
	OriginatorKey []byte `json:"originator_key"`
	Signature     []byte `json:"signature"`
}

func (o *Offer) message() ([]byte, error) {
	clone := *o
	clone.Signature = nil
	return json.Marshal(&clone)
}

// BuildOffer wraps the document key and signs the offer.
func BuildOffer(from, to string, doc *datamodel.Document, docKey, pairingKey crypto.SymmetricKey,
	sticky *policy.StickyPolicy, createdAt time.Time, originatorKey crypto.VerifyKey,
	sign func([]byte) ([]byte, error)) (*Offer, error) {

	wrapped, err := crypto.WrapKey(pairingKey, docKey, "share:"+from+":"+to+":"+doc.ID)
	if err != nil {
		return nil, fmt.Errorf("sharing: wrapping key: %w", err)
	}
	o := &Offer{
		From:          from,
		To:            to,
		Document:      doc.Clone(),
		WrappedKey:    wrapped,
		Sticky:        sticky,
		CreatedAt:     createdAt,
		OriginatorKey: originatorKey.Bytes(),
	}
	msg, err := o.message()
	if err != nil {
		return nil, fmt.Errorf("sharing: encoding offer: %w", err)
	}
	sig, err := sign(msg)
	if err != nil {
		return nil, fmt.Errorf("sharing: signing offer: %w", err)
	}
	o.Signature = sig
	return o, nil
}

// Verify checks the offer: addressed to recipient, signed by the claimed
// originator, carrying a sticky policy bound to the document, and (when
// expectedOriginator is non-nil) signed with the expected originator key.
func (o *Offer) Verify(recipient string, expectedOriginator *crypto.VerifyKey) error {
	if o.To != recipient {
		return ErrWrongRecipient
	}
	if o.Document == nil || o.Sticky == nil {
		return fmt.Errorf("%w: missing document or sticky policy", ErrBadOffer)
	}
	vk, err := crypto.VerifyKeyFromBytes(o.OriginatorKey)
	if err != nil {
		return fmt.Errorf("%w: bad originator key", ErrBadOffer)
	}
	if expectedOriginator != nil && !vk.Equal(*expectedOriginator) {
		return fmt.Errorf("%w: unexpected originator key", ErrBadOffer)
	}
	msg, err := o.message()
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadOffer, err)
	}
	if err := vk.Verify(msg, o.Signature); err != nil {
		return fmt.Errorf("%w: bad signature", ErrBadOffer)
	}
	if err := o.Sticky.Verify(o.Document.ContentHash); err != nil {
		return fmt.Errorf("%w: %v", ErrBadOffer, err)
	}
	if o.Sticky.DocumentID != o.Document.ID {
		return fmt.Errorf("%w: sticky policy bound to a different document", ErrBadOffer)
	}
	return nil
}

// UnwrapKey recovers the document key using the pairing key shared with the
// originator.
func (o *Offer) UnwrapKey(pairingKey crypto.SymmetricKey) (crypto.SymmetricKey, error) {
	return crypto.UnwrapKey(pairingKey, o.WrappedKey, "share:"+o.From+":"+o.To+":"+o.Document.ID)
}

// Encode serialises the offer for the cloud mailbox.
func (o *Offer) Encode() ([]byte, error) { return json.Marshal(o) }

// DecodeOffer parses an offer.
func DecodeOffer(data []byte) (*Offer, error) {
	var o Offer
	if err := json.Unmarshal(data, &o); err != nil {
		return nil, fmt.Errorf("sharing: decode offer: %w", err)
	}
	return &o, nil
}
