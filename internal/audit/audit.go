// Package audit implements the accountability subsystem of a trusted cell:
// an append-only, hash-chained audit log of every access and usage decision,
// which can be encrypted and pushed to the cloud "to the destination of the
// originator trusted cell" so that data owners can verify how their shared
// data was used.
package audit

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"trustedcells/internal/crypto"
)

// Errors returned by the log.
var (
	ErrChainBroken = errors.New("audit: hash chain verification failed")
	ErrBadSegment  = errors.New("audit: exported segment is invalid")
)

// Outcome is the decision recorded for an audited event.
type Outcome string

// Outcomes.
const (
	OutcomeAllowed Outcome = "allowed"
	OutcomeDenied  Outcome = "denied"
	OutcomeError   Outcome = "error"
)

// Record is one audited event.
type Record struct {
	// Seq is the position in the log (assigned by Append).
	Seq uint64 `json:"seq"`
	// Time of the event.
	Time time.Time `json:"time"`
	// Actor is the subject that attempted the action.
	Actor string `json:"actor"`
	// Action names the attempted operation (read, share, aggregate, ...).
	Action string `json:"action"`
	// Resource identifies the data concerned.
	Resource string `json:"resource"`
	// Outcome of the reference-monitor decision.
	Outcome Outcome `json:"outcome"`
	// Reason explains the outcome (rule ID, error, ...).
	Reason string `json:"reason"`
	// Originator, when non-empty, identifies the cell that must receive a
	// copy of this record (accountability obligation of shared data).
	Originator string `json:"originator,omitempty"`
	// ChainHead is the hash-chain head after appending this record.
	ChainHead []byte `json:"chain_head"`
}

// Log is a hash-chained audit log. It is kept inside the cell; Export
// produces an encrypted segment for the cloud.
type Log struct {
	mu      sync.Mutex
	records []Record
	chain   *crypto.HashChain
}

// NewLog creates an empty audit log.
func NewLog() *Log {
	return &Log{chain: crypto.NewHashChain()}
}

// payload produces the canonical bytes that are chained for a record (the
// chain head itself is excluded).
func payload(r Record) []byte {
	clone := r
	clone.ChainHead = nil
	b, _ := json.Marshal(&clone)
	return b
}

// Append adds a record to the log, assigning its sequence number and chain
// head. It returns the stored record.
func (l *Log) Append(r Record) Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	r.Seq = uint64(len(l.records)) + 1
	r.ChainHead = l.chain.Append(payload(r))
	l.records = append(l.records, r)
	return r
}

// Len returns the number of records.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.records)
}

// Head returns the current chain head; storing it in tamper-resistant memory
// lets the cell detect truncation of an externalized log.
func (l *Log) Head() []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.chain.Head()
}

// Records returns a copy of all records (for queries and tests).
func (l *Log) Records() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Record, len(l.records))
	copy(out, l.records)
	return out
}

// Query returns the records matching the non-empty filters.
func (l *Log) Query(actor, resource string, outcome Outcome) []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Record
	for _, r := range l.records {
		if actor != "" && r.Actor != actor {
			continue
		}
		if resource != "" && r.Resource != resource {
			continue
		}
		if outcome != "" && r.Outcome != outcome {
			continue
		}
		out = append(out, r)
	}
	return out
}

// Verify recomputes the hash chain over all records and checks that it
// matches the stored heads and the current head. Any in-place modification,
// reordering or truncation of records is detected.
func (l *Log) Verify() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	chain := crypto.NewHashChain()
	for i, r := range l.records {
		head := chain.Append(payload(r))
		if string(head) != string(r.ChainHead) {
			return fmt.Errorf("%w: record %d", ErrChainBroken, i+1)
		}
	}
	if string(chain.Head()) != string(l.chain.Head()) {
		return ErrChainBroken
	}
	return nil
}

// Segment is an exported, encrypted slice of the audit log destined to an
// originator cell.
type Segment struct {
	// Originator identifies the intended recipient of the segment.
	Originator string `json:"originator"`
	// FromSeq/ToSeq delimit the exported records (inclusive).
	FromSeq uint64 `json:"from_seq"`
	ToSeq   uint64 `json:"to_seq"`
	// Sealed is the encrypted JSON array of records.
	Sealed []byte `json:"sealed"`
}

// Export extracts all records destined to originator (Record.Originator) and
// seals them under key. The segment can be pushed to the cloud mailbox of the
// originator.
func (l *Log) Export(originator string, key crypto.SymmetricKey) (*Segment, error) {
	l.mu.Lock()
	var selected []Record
	for _, r := range l.records {
		if r.Originator == originator {
			selected = append(selected, r)
		}
	}
	l.mu.Unlock()
	if len(selected) == 0 {
		return nil, fmt.Errorf("audit: no records destined to %q", originator)
	}
	plain, err := json.Marshal(selected)
	if err != nil {
		return nil, fmt.Errorf("audit: export: %w", err)
	}
	sealed, err := crypto.Seal(key, plain, []byte("audit-segment:"+originator))
	if err != nil {
		return nil, fmt.Errorf("audit: export: %w", err)
	}
	return &Segment{
		Originator: originator,
		FromSeq:    selected[0].Seq,
		ToSeq:      selected[len(selected)-1].Seq,
		Sealed:     sealed,
	}, nil
}

// OpenSegment decrypts a segment with the shared key and returns its records.
func OpenSegment(s *Segment, key crypto.SymmetricKey) ([]Record, error) {
	plain, ad, err := crypto.Open(key, s.Sealed)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSegment, err)
	}
	if string(ad) != "audit-segment:"+s.Originator {
		return nil, fmt.Errorf("%w: segment bound to a different originator", ErrBadSegment)
	}
	var records []Record
	if err := json.Unmarshal(plain, &records); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSegment, err)
	}
	return records, nil
}
