package audit

import (
	"testing"
	"time"

	"trustedcells/internal/crypto"
)

var now = time.Date(2013, 4, 1, 9, 0, 0, 0, time.UTC)

func sampleRecord(i int, actor string, outcome Outcome) Record {
	return Record{
		Time:     now.Add(time.Duration(i) * time.Minute),
		Actor:    actor,
		Action:   "read",
		Resource: "doc-1",
		Outcome:  outcome,
		Reason:   "rule household-aggregates",
	}
}

func TestAppendAssignsSequenceAndHead(t *testing.T) {
	l := NewLog()
	r1 := l.Append(sampleRecord(1, "bob", OutcomeAllowed))
	r2 := l.Append(sampleRecord(2, "carol", OutcomeDenied))
	if r1.Seq != 1 || r2.Seq != 2 {
		t.Fatalf("sequence numbers %d %d", r1.Seq, r2.Seq)
	}
	if len(r1.ChainHead) == 0 || string(r1.ChainHead) == string(r2.ChainHead) {
		t.Fatal("chain heads missing or not advancing")
	}
	if l.Len() != 2 {
		t.Fatalf("Len = %d", l.Len())
	}
	if string(l.Head()) != string(r2.ChainHead) {
		t.Fatal("log head does not match last record head")
	}
}

func TestVerifyDetectsTampering(t *testing.T) {
	l := NewLog()
	for i := 0; i < 10; i++ {
		actor := "bob"
		if i%2 == 0 {
			actor = "carol"
		}
		l.Append(sampleRecord(i, actor, OutcomeAllowed))
	}
	if err := l.Verify(); err != nil {
		t.Fatalf("Verify clean log: %v", err)
	}
	// Tamper with a record in place.
	l.records[4].Outcome = OutcomeDenied
	if err := l.Verify(); err == nil {
		t.Fatal("in-place tampering not detected")
	}
	l.records[4].Outcome = OutcomeAllowed
	if err := l.Verify(); err != nil {
		t.Fatalf("restore failed: %v", err)
	}
	// Truncation is detected because the chain object is ahead.
	l.records = l.records[:5]
	if err := l.Verify(); err == nil {
		t.Fatal("truncation not detected")
	}
}

func TestQueryFilters(t *testing.T) {
	l := NewLog()
	l.Append(sampleRecord(0, "bob", OutcomeAllowed))
	l.Append(sampleRecord(1, "carol", OutcomeDenied))
	r := sampleRecord(2, "bob", OutcomeDenied)
	r.Resource = "doc-2"
	l.Append(r)

	if got := l.Query("bob", "", ""); len(got) != 2 {
		t.Fatalf("actor filter: %d", len(got))
	}
	if got := l.Query("", "doc-2", ""); len(got) != 1 {
		t.Fatalf("resource filter: %d", len(got))
	}
	if got := l.Query("", "", OutcomeDenied); len(got) != 2 {
		t.Fatalf("outcome filter: %d", len(got))
	}
	if got := l.Query("bob", "doc-2", OutcomeDenied); len(got) != 1 {
		t.Fatalf("combined filter: %d", len(got))
	}
	if got := l.Query("nobody", "", ""); len(got) != 0 {
		t.Fatalf("no-match filter: %d", len(got))
	}
}

func TestRecordsReturnsCopy(t *testing.T) {
	l := NewLog()
	l.Append(sampleRecord(0, "bob", OutcomeAllowed))
	recs := l.Records()
	recs[0].Actor = "mallory"
	if l.Records()[0].Actor != "bob" {
		t.Fatal("Records exposes internal state")
	}
}

func TestExportOpenSegment(t *testing.T) {
	l := NewLog()
	r := sampleRecord(0, "bob", OutcomeAllowed)
	r.Originator = "alice"
	l.Append(r)
	r2 := sampleRecord(1, "bob", OutcomeAllowed)
	r2.Originator = "dave"
	l.Append(r2)
	r3 := sampleRecord(2, "carol", OutcomeDenied)
	r3.Originator = "alice"
	l.Append(r3)

	key, _ := crypto.NewSymmetricKey()
	seg, err := l.Export("alice", key)
	if err != nil {
		t.Fatalf("Export: %v", err)
	}
	if seg.FromSeq != 1 || seg.ToSeq != 3 {
		t.Fatalf("segment bounds %d..%d", seg.FromSeq, seg.ToSeq)
	}
	records, err := OpenSegment(seg, key)
	if err != nil {
		t.Fatalf("OpenSegment: %v", err)
	}
	if len(records) != 2 {
		t.Fatalf("segment contains %d records, want 2", len(records))
	}
	for _, rec := range records {
		if rec.Originator != "alice" {
			t.Fatalf("foreign record leaked into segment: %+v", rec)
		}
	}
	// Wrong key fails.
	other, _ := crypto.NewSymmetricKey()
	if _, err := OpenSegment(seg, other); err == nil {
		t.Fatal("segment opened with wrong key")
	}
	// Re-addressed segment fails (associated data binds the originator).
	seg.Originator = "dave"
	if _, err := OpenSegment(seg, key); err == nil {
		t.Fatal("re-addressed segment accepted")
	}
	// No records for unknown originator.
	if _, err := l.Export("nobody", key); err == nil {
		t.Fatal("Export for unknown originator succeeded")
	}
}

func BenchmarkAppend(b *testing.B) {
	l := NewLog()
	r := sampleRecord(0, "bob", OutcomeAllowed)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Append(r)
	}
}

func BenchmarkVerify1000(b *testing.B) {
	l := NewLog()
	for i := 0; i < 1000; i++ {
		l.Append(sampleRecord(i, "bob", OutcomeAllowed))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Verify(); err != nil {
			b.Fatal(err)
		}
	}
}
