package commons

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"strings"
)

// Errors returned by the anonymization helpers.
var (
	ErrBadK       = errors.New("commons: k must be at least 2")
	ErrBadEpsilon = errors.New("commons: epsilon must be positive")
)

// QuasiRecord is the quasi-identifier view of an individual's record released
// to the commons: age band, coarse location and a sensitive attribute that is
// kept as-is (the release is protected by generalizing the quasi-identifiers
// until every combination is shared by at least k individuals).
type QuasiRecord struct {
	AgeBand   string
	ZIP3      string
	Sensitive string
}

// ageBandOrder lists age bands from finest to the fully generalized "*".
var ageBandGeneralization = map[string]string{
	"18-30": "18-45", "31-45": "18-45",
	"46-60": "46+", "61-75": "46+", "76+": "46+",
	"18-45": "*", "46+": "*", "*": "*",
}

// generalizeAge coarsens an age band by one level.
func generalizeAge(band string) string {
	if g, ok := ageBandGeneralization[band]; ok {
		return g
	}
	return "*"
}

// generalizeZIP drops the last significant digit of the ZIP prefix; after all
// digits are gone it becomes "*".
func generalizeZIP(zip string) string {
	trimmed := strings.TrimRight(zip, "*")
	if len(trimmed) <= 1 {
		return "*"
	}
	return trimmed[:len(trimmed)-1] + strings.Repeat("*", len(zip)-len(trimmed)+1)
}

// KAnonymityResult is the outcome of Anonymize.
type KAnonymityResult struct {
	Records []QuasiRecord
	// GeneralizationSteps is how many rounds of generalization were applied.
	GeneralizationSteps int
	// InformationLoss is a [0,1] measure: 0 = nothing generalized,
	// 1 = everything fully suppressed.
	InformationLoss float64
	// SmallestClass is the size of the smallest equivalence class in the
	// release (>= k on success).
	SmallestClass int
}

// Anonymize generalizes the quasi-identifiers of the records until every
// (AgeBand, ZIP3) combination appears at least k times, then returns the
// generalized release and its information loss. Sensitive values are never
// modified.
func Anonymize(records []QuasiRecord, k int) (*KAnonymityResult, error) {
	if k < 2 {
		return nil, ErrBadK
	}
	if len(records) == 0 {
		return &KAnonymityResult{}, nil
	}
	out := make([]QuasiRecord, len(records))
	copy(out, records)

	steps := 0
	for ; steps <= 8; steps++ {
		if smallestClass(out) >= k {
			break
		}
		// Alternate generalizing ZIP and age for a simple global-recoding
		// lattice walk.
		for i := range out {
			if steps%2 == 0 {
				out[i].ZIP3 = generalizeZIP(out[i].ZIP3)
			} else {
				out[i].AgeBand = generalizeAge(out[i].AgeBand)
			}
		}
	}
	smallest := smallestClass(out)
	if smallest < k {
		// Fully suppress quasi-identifiers as a last resort.
		for i := range out {
			out[i].AgeBand = "*"
			out[i].ZIP3 = "*"
		}
		steps++
		smallest = len(out)
	}
	return &KAnonymityResult{
		Records:             out,
		GeneralizationSteps: steps,
		InformationLoss:     informationLoss(records, out),
		SmallestClass:       smallest,
	}, nil
}

func smallestClass(records []QuasiRecord) int {
	classes := make(map[string]int)
	for _, r := range records {
		classes[r.AgeBand+"|"+r.ZIP3]++
	}
	smallest := math.MaxInt
	for _, n := range classes {
		if n < smallest {
			smallest = n
		}
	}
	if smallest == math.MaxInt {
		return 0
	}
	return smallest
}

// informationLoss compares the released quasi-identifiers to the originals:
// each generalized attribute contributes proportionally to how much of its
// precision was lost.
func informationLoss(original, released []QuasiRecord) float64 {
	if len(original) == 0 {
		return 0
	}
	var loss float64
	for i := range original {
		loss += attributeLoss(original[i].AgeBand, released[i].AgeBand, ageLevels)
		loss += attributeLoss(original[i].ZIP3, released[i].ZIP3, zipLevels)
	}
	return loss / float64(2*len(original))
}

func ageLevels(band string) int {
	switch band {
	case "*":
		return 2
	case "18-45", "46+":
		return 1
	default:
		return 0
	}
}

func zipLevels(zip string) int {
	return strings.Count(zip, "*")
}

func attributeLoss(orig, released string, level func(string) int) float64 {
	lo, lr := level(orig), level(released)
	maxLevel := 3.0
	if lr <= lo {
		return 0
	}
	return float64(lr-lo) / maxLevel
}

// GroupCount is one cell of a histogram release.
type GroupCount struct {
	Group string
	Count float64
}

// LaplaceMechanism perturbs per-group counts with Laplace noise of scale
// sensitivity/epsilon, providing epsilon-differential privacy for counting
// queries. The rng is injected so experiments are reproducible.
func LaplaceMechanism(counts map[string]int, epsilon float64, rng *rand.Rand) ([]GroupCount, error) {
	if epsilon <= 0 {
		return nil, ErrBadEpsilon
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	groups := make([]string, 0, len(counts))
	for g := range counts {
		groups = append(groups, g)
	}
	sort.Strings(groups)
	out := make([]GroupCount, 0, len(groups))
	scale := 1.0 / epsilon // sensitivity of a count query is 1
	for _, g := range groups {
		noisy := float64(counts[g]) + laplace(rng, scale)
		if noisy < 0 {
			noisy = 0
		}
		out = append(out, GroupCount{Group: g, Count: noisy})
	}
	return out, nil
}

func laplace(rng *rand.Rand, scale float64) float64 {
	u := rng.Float64() - 0.5
	if u == 0 {
		return 0
	}
	sign := 1.0
	if u < 0 {
		sign = -1.0
	}
	return -scale * sign * math.Log(1-2*math.Abs(u))
}

// MeanAbsoluteError compares a noisy release with the true counts; the
// utility metric of experiment E8.
func MeanAbsoluteError(truth map[string]int, release []GroupCount) float64 {
	if len(release) == 0 {
		return 0
	}
	var total float64
	for _, gc := range release {
		total += math.Abs(gc.Count - float64(truth[gc.Group]))
	}
	return total / float64(len(release))
}

// HistogramFromSensitive builds the exact histogram of sensitive values; the
// commons query whose releases E8 perturbs.
func HistogramFromSensitive(records []QuasiRecord) map[string]int {
	out := make(map[string]int)
	for _, r := range records {
		out[r.Sensitive]++
	}
	return out
}

// CrossHistogram counts records per (sensitive, attribute) pair; used by the
// epidemiological example ("cross-analyzing diseases and alimentation").
func CrossHistogram(records []QuasiRecord, attr func(QuasiRecord) string) map[string]int {
	out := make(map[string]int)
	for _, r := range records {
		out[r.Sensitive+"|"+attr(r)]++
	}
	return out
}
