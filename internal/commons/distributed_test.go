package commons

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"trustedcells/internal/cloud"
	"trustedcells/internal/core"
	"trustedcells/internal/crypto"
	"trustedcells/internal/policy"
	"trustedcells/internal/tamper"
	"trustedcells/internal/timeseries"
)

func testCommunity(t *testing.T) *Community {
	t.Helper()
	return NewCommunity("grid", crypto.DeriveKey(crypto.SymmetricKey{1}, "test", "commons"))
}

func testSpec(id string, aggs ...string) Spec {
	if len(aggs) == 0 {
		aggs = []string{"agg-0", "agg-1", "agg-2"}
	}
	return Spec{
		ID:              id,
		Filter:          Filter{Type: core.SeriesDocType},
		Granularity:     timeseries.GranularityDay,
		Kind:            timeseries.AggregateSum,
		K:               2,
		Epsilon:         1.0,
		MaxContribution: 10_000,
		Deadline:        2 * time.Second,
		Aggregators:     aggs,
	}
}

// fixedEval returns an evaluator contributing a constant value.
func fixedEval(v uint64) EvalFunc {
	return func(*Spec) (uint64, bool, error) { return v, true, nil }
}

func newHarness(t *testing.T, svc cloud.Service, values []uint64) (*Coordinator, []*Responder, []*Aggregator) {
	t.Helper()
	comm := testCommunity(t)
	responders := make([]*Responder, len(values))
	for i, v := range values {
		responders[i] = NewResponder(fmt.Sprintf("c%03d", i), comm, svc, fixedEval(v))
	}
	aggs := []*Aggregator{
		NewAggregator("agg-0", comm, svc),
		NewAggregator("agg-1", comm, svc),
		NewAggregator("agg-2", comm, svc),
	}
	co, err := NewCoordinator(CoordinatorConfig{
		ID: "census", Community: comm, Cloud: svc,
		Rand: rand.New(rand.NewSource(7)),
	})
	if err != nil {
		t.Fatalf("new coordinator: %v", err)
	}
	return co, responders, aggs
}

func TestSpecCodecRoundTrip(t *testing.T) {
	spec := Spec{
		ID:      "q-1",
		ReplyTo: "census",
		Filter: Filter{
			Type: core.SeriesDocType, Keyword: "power",
			TagKey: "region", TagValue: "south",
		},
		Granularity:     timeseries.GranularityHour,
		Kind:            timeseries.AggregateMean,
		K:               10,
		Epsilon:         0.5,
		MaxContribution: 42_000,
		Deadline:        750 * time.Millisecond,
		Aggregators:     []string{"a", "b"},
	}
	got, err := DecodeSpec(spec.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.ID != spec.ID || got.ReplyTo != spec.ReplyTo || got.Filter != spec.Filter ||
		got.Granularity != spec.Granularity || got.Kind != spec.Kind || got.K != spec.K ||
		got.Epsilon != spec.Epsilon || got.MaxContribution != spec.MaxContribution ||
		got.Deadline != spec.Deadline || len(got.Aggregators) != 2 ||
		got.Aggregators[0] != "a" || got.Aggregators[1] != "b" {
		t.Fatalf("round trip mismatch: %+v != %+v", got, spec)
	}
}

func TestSpecCodecRejectsMalformed(t *testing.T) {
	good := testSpec("q-codec")
	good.ReplyTo = "census"
	enc := good.Encode()
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   append([]byte{0xD0}, enc[1:]...),
		"bad version": append([]byte{specMagic, 99}, enc[2:]...),
		"truncated":   enc[:len(enc)/2],
		"trailing":    append(append([]byte{}, enc...), 0xFF),
	}
	for name, b := range cases {
		if _, err := DecodeSpec(b); !errors.Is(err, ErrBadSpec) {
			t.Errorf("%s: got %v, want ErrBadSpec", name, err)
		}
	}
}

func TestSpecValidate(t *testing.T) {
	base := testSpec("q-val")
	base.ReplyTo = "census"
	mut := func(f func(*Spec)) Spec {
		s := base
		s.Aggregators = append([]string(nil), base.Aggregators...)
		f(&s)
		return s
	}
	cases := []struct {
		name string
		spec Spec
		want error
	}{
		{"ok", base, nil},
		{"no id", mut(func(s *Spec) { s.ID = "" }), ErrBadSpec},
		{"one aggregator", mut(func(s *Spec) { s.Aggregators = s.Aggregators[:1] }), ErrBadAggregators},
		{"k too small", mut(func(s *Spec) { s.K = 1 }), ErrBadK},
		{"bad epsilon", mut(func(s *Spec) { s.Epsilon = 0 }), ErrBadEpsilon},
		{"zero clamp", mut(func(s *Spec) { s.MaxContribution = 0 }), ErrBadSpec},
		{"no deadline", mut(func(s *Spec) { s.Deadline = 0 }), ErrBadSpec},
	}
	for _, tc := range cases {
		err := tc.spec.Validate()
		if tc.want == nil && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if tc.want != nil && !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestQueryEndToEnd(t *testing.T) {
	values := []uint64{10, 20, 30, 40, 50, 60, 70, 80}
	co, responders, aggs := newHarness(t, cloud.NewMemory(), values)
	res, err := co.Query(testSpec("q-e2e"), responders, aggs)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if res.Responded != len(values) || res.Total != len(values) || res.Suppressed != 0 {
		t.Fatalf("accounting: responded=%d total=%d suppressed=%d", res.Responded, res.Total, res.Suppressed)
	}
	if res.Sum != 360 {
		t.Fatalf("sum: got %d, want 360", res.Sum)
	}
	if !res.Released || res.Epsilon != 1.0 {
		t.Fatalf("release: released=%v epsilon=%v", res.Released, res.Epsilon)
	}
	if res.NoisySum == float64(res.Sum) {
		t.Fatalf("noisy sum should be perturbed, got exactly %v", res.NoisySum)
	}
	if got := co.EpsilonSpent(); got != 1.0 {
		t.Fatalf("epsilon spent: got %v, want 1.0", got)
	}
	if len(res.Contributors) != len(values) {
		t.Fatalf("contributors: %d", len(res.Contributors))
	}
}

func TestKAnonymitySuppression(t *testing.T) {
	co, responders, aggs := newHarness(t, cloud.NewMemory(), []uint64{5, 7, 9})
	spec := testSpec("q-small")
	spec.K = 5 // more than the 3 cells that will respond
	res, err := co.Query(spec, responders, aggs)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if res.Released || res.NoisySum != 0 || res.Epsilon != 0 {
		t.Fatalf("suppressed release leaked: %+v", res)
	}
	if res.Responded != 3 {
		t.Fatalf("responded: got %d, want 3", res.Responded)
	}
	if got := co.EpsilonSpent(); got != 0 {
		t.Fatalf("suppressed query spent budget: %v", got)
	}
}

func TestStragglerDeadline(t *testing.T) {
	values := []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	co, responders, aggs := newHarness(t, cloud.NewMemory(), values)
	spec := testSpec("q-straggler")
	spec.Deadline = 150 * time.Millisecond
	p, err := co.Scatter(spec, cellIDs(responders))
	if err != nil {
		t.Fatalf("scatter: %v", err)
	}
	// Two cells are dead: they never poll their mailbox.
	for _, r := range responders[:8] {
		if _, err := r.Poll(4); err != nil {
			t.Fatalf("poll: %v", err)
		}
	}
	res, err := co.Gather(p, aggs)
	if err != nil {
		t.Fatalf("gather: %v", err)
	}
	if res.Responded != 8 || res.Total != 10 {
		t.Fatalf("accounting: responded=%d total=%d", res.Responded, res.Total)
	}
	if res.Sum != 36 { // 1+...+8
		t.Fatalf("sum: got %d, want 36", res.Sum)
	}
	if !res.Released {
		t.Fatal("aggregate should release at 80% coverage with K=2")
	}
}

func cellIDs(rs []*Responder) []string {
	ids := make([]string, len(rs))
	for i, r := range rs {
		ids[i] = r.id
	}
	return ids
}

func TestDuplicateResponseSuppressed(t *testing.T) {
	svc := cloud.NewMemory()
	co, responders, aggs := newHarness(t, svc, []uint64{11, 22, 33})
	comm := responders[0].comm
	spec := testSpec("q-dup")
	p, err := co.Scatter(spec, cellIDs(responders))
	if err != nil {
		t.Fatalf("scatter: %v", err)
	}
	// A replaying provider delivers the query to cell 0 twice; the cell
	// answers both, and the querier must count it once.
	dup, err := crypto.Seal(comm.memberKey("c000"), p.Spec.Encode(), comm.adSpec("c000"))
	if err != nil {
		t.Fatalf("seal: %v", err)
	}
	if err := svc.Send(cloud.Message{From: "census", To: comm.Mailbox("c000"), Kind: KindQuery, Body: dup}); err != nil {
		t.Fatalf("send: %v", err)
	}
	for _, r := range responders {
		if _, err := r.Poll(8); err != nil {
			t.Fatalf("poll: %v", err)
		}
	}
	res, err := co.Gather(p, aggs)
	if err != nil {
		t.Fatalf("gather: %v", err)
	}
	if res.Responded != 3 || res.Suppressed != 1 {
		t.Fatalf("accounting: responded=%d suppressed=%d", res.Responded, res.Suppressed)
	}
	if res.Sum != 66 {
		t.Fatalf("sum: got %d, want 66", res.Sum)
	}
}

func TestTamperedShareExcludedEverywhere(t *testing.T) {
	svc := cloud.NewMemory()
	co, responders, aggs := newHarness(t, svc, []uint64{100, 200})
	comm := responders[0].comm
	spec := testSpec("q-tamper")
	p, err := co.Scatter(spec, cellIDs(responders))
	if err != nil {
		t.Fatalf("scatter: %v", err)
	}
	for _, r := range responders {
		if _, err := r.Poll(4); err != nil {
			t.Fatalf("poll: %v", err)
		}
	}
	// A malicious member posts a response whose share for agg-1 is garbage:
	// the committee intersection must drop the whole contribution instead of
	// letting inconsistent partials corrupt the sum.
	bad := &response{queryID: spec.ID, cellID: "c001", shares: make([][]byte, 3)}
	for i, aggID := range spec.Aggregators {
		field := make([]byte, shareFieldBytes)
		field[shareFieldBytes-1] = 9
		sealed, err := crypto.Seal(comm.aggregatorKey(aggID), field, comm.adShare(spec.ID, "c001", aggID))
		if err != nil {
			t.Fatalf("seal share: %v", err)
		}
		bad.shares[i] = sealed
	}
	bad.shares[1] = []byte("not an envelope")
	// Deliver it ahead of the honest responses by draining and re-ordering.
	msgs, err := svc.Receive(comm.Mailbox("census"), 16)
	if err != nil {
		t.Fatalf("receive: %v", err)
	}
	body, err := crypto.Seal(comm.querierKey("census"), bad.encode(), comm.adResponse(spec.ID, "c001"))
	if err != nil {
		t.Fatalf("seal response: %v", err)
	}
	if err := svc.Send(cloud.Message{From: "c001", To: comm.Mailbox("census"), Kind: KindResponse, Body: body}); err != nil {
		t.Fatalf("send: %v", err)
	}
	for _, m := range msgs {
		if m.From == "c001" {
			continue // the honest duplicate would be flagged; keep the test focused
		}
		if err := svc.Send(m); err != nil {
			t.Fatalf("resend: %v", err)
		}
	}
	res, err := co.Gather(p, aggs)
	if err != nil {
		t.Fatalf("gather: %v", err)
	}
	if res.Responded != 1 || res.Suppressed != 1 {
		t.Fatalf("accounting: responded=%d suppressed=%d", res.Responded, res.Suppressed)
	}
	if res.Sum != 100 {
		t.Fatalf("sum: got %d, want 100 (tampered contribution excluded)", res.Sum)
	}
}

func TestDroppingProviderOnlyReducesCoverage(t *testing.T) {
	mem := cloud.NewMemory()
	adv := cloud.NewAdversary(mem, cloud.AdversaryConfig{Mode: cloud.Dropping, DropRate: 0.25, Seed: 42})
	values := make([]uint64, 40)
	for i := range values {
		values[i] = uint64(i + 1)
	}
	co, responders, aggs := newHarness(t, adv, values)
	spec := testSpec("q-drop")
	spec.Deadline = 400 * time.Millisecond
	p, err := co.Scatter(spec, cellIDs(responders))
	if err != nil {
		t.Fatalf("scatter: %v", err)
	}
	for _, r := range responders {
		if _, err := r.Poll(4); err != nil {
			t.Fatalf("poll: %v", err)
		}
	}
	res, err := co.Gather(p, aggs)
	if err != nil {
		t.Fatalf("gather: %v", err)
	}
	if res.Responded >= res.Total {
		t.Fatalf("dropping provider lost nothing? responded=%d total=%d", res.Responded, res.Total)
	}
	// The sum must be exactly the sum of the contributors' true values:
	// coverage shrinks, correctness never does.
	var want uint64
	for _, id := range res.Contributors {
		var idx int
		fmt.Sscanf(id, "c%03d", &idx)
		want += values[idx]
	}
	if res.Sum != want {
		t.Fatalf("sum corrupted: got %d, want %d over %d contributors", res.Sum, want, res.Responded)
	}
}

func TestPrivacyBudget(t *testing.T) {
	comm := testCommunity(t)
	svc := cloud.NewMemory()
	responders := []*Responder{
		NewResponder("c000", comm, svc, fixedEval(3)),
		NewResponder("c001", comm, svc, fixedEval(4)),
	}
	aggs := []*Aggregator{NewAggregator("agg-0", comm, svc), NewAggregator("agg-1", comm, svc), NewAggregator("agg-2", comm, svc)}
	co, err := NewCoordinator(CoordinatorConfig{
		ID: "census", Community: comm, Cloud: svc, PrivacyBudget: 1.5,
	})
	if err != nil {
		t.Fatalf("new coordinator: %v", err)
	}
	if _, err := co.Query(testSpec("q-budget-1"), responders, aggs); err != nil {
		t.Fatalf("first query: %v", err)
	}
	if _, err := co.Scatter(testSpec("q-budget-2"), cellIDs(responders)); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("second query: got %v, want ErrBudgetExhausted", err)
	}
}

// TestCellResponderPolicyGate runs the full path on real cells: series
// documents behind the reference monitor, the spec's filter through the
// planner, and a cell whose policy refuses aggregation declining without
// erroring.
func TestCellResponderPolicyGate(t *testing.T) {
	svc := cloud.NewMemory()
	comm := testCommunity(t)
	day := time.Date(2013, 1, 7, 0, 0, 0, 0, time.UTC)

	newCell := func(id string, allowAggregate bool, watts float64) *Responder {
		cell, err := core.New(core.Config{ID: id, Class: tamper.ClassHomeGateway, Cloud: svc, Seed: []byte(id)})
		if err != nil {
			t.Fatalf("new cell: %v", err)
		}
		if allowAggregate {
			if err := cell.AddRule(policy.Rule{
				ID: "commons", Effect: policy.EffectAllow,
				SubjectIDs: []string{"census"},
				Actions:    []policy.Action{policy.ActionAggregate},
			}); err != nil {
				t.Fatalf("add rule: %v", err)
			}
		}
		s := timeseries.NewSeries("power", "W")
		for h := 0; h < 24; h++ {
			if err := s.AppendValue(day.Add(time.Duration(h)*time.Hour), watts); err != nil {
				t.Fatalf("append: %v", err)
			}
		}
		if _, err := cell.IngestSeries(s, "meter", []string{"power"}, nil); err != nil {
			t.Fatalf("ingest series: %v", err)
		}
		return NewResponder(id, comm, svc, CellEvaluator(cell, "census", core.AccessContext{}))
	}

	responders := []*Responder{
		newCell("home-a", true, 100), // sums to 2400
		newCell("home-b", true, 50),  // sums to 1200
		newCell("home-c", false, 75), // policy refuses: declines
	}
	aggs := []*Aggregator{NewAggregator("agg-0", comm, svc), NewAggregator("agg-1", comm, svc), NewAggregator("agg-2", comm, svc)}
	co, err := NewCoordinator(CoordinatorConfig{ID: "census", Community: comm, Cloud: svc})
	if err != nil {
		t.Fatalf("new coordinator: %v", err)
	}
	res, err := co.Query(testSpec("q-cells"), responders, aggs)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if res.Responded != 2 || res.Declined != 1 {
		t.Fatalf("accounting: responded=%d declined=%d", res.Responded, res.Declined)
	}
	if res.Sum != 3600 {
		t.Fatalf("sum: got %d, want 3600", res.Sum)
	}
	if res.Released {
		t.Logf("released at k=%d with %d contributors", res.K, res.Responded)
	}
}

// TestBackendsUnchanged proves the protocol runs against the durable and
// replicated providers through the same Send/Receive plane, with no
// backend-specific code.
func TestBackendsUnchanged(t *testing.T) {
	t.Run("durable", func(t *testing.T) {
		dur, err := cloud.OpenDurable(t.TempDir(), cloud.DurableOptions{Shards: 2})
		if err != nil {
			t.Fatalf("open durable: %v", err)
		}
		defer dur.Close()
		runBackend(t, dur)
	})
	t.Run("replicated", func(t *testing.T) {
		members := []cloud.Service{cloud.NewMemory(), cloud.NewMemory(), cloud.NewMemory()}
		rep, err := cloud.NewReplicated(members, cloud.ReplicatedOptions{})
		if err != nil {
			t.Fatalf("new replicated: %v", err)
		}
		runBackend(t, rep)
	})
}

func runBackend(t *testing.T, svc cloud.Service) {
	t.Helper()
	co, responders, aggs := newHarness(t, svc, []uint64{7, 8, 9})
	res, err := co.Query(testSpec("q-backend"), responders, aggs)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if res.Sum != 24 || res.Responded != 3 {
		t.Fatalf("got sum=%d responded=%d, want 24/3", res.Sum, res.Responded)
	}
}
