package commons

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func makeParticipants(n int) ([]Participant, uint64) {
	parts := make([]Participant, n)
	var sum uint64
	for i := range parts {
		v := uint64(i%97 + 1)
		parts[i] = Participant{ID: fmt.Sprintf("cell-%04d", i), Value: v}
		sum += v
	}
	return parts, sum
}

func TestSecureSumPureSMC(t *testing.T) {
	for _, n := range []int{1, 2, 5, 50} {
		parts, want := makeParticipants(n)
		res, err := SecureSum(parts, PureSMC, 0)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if res.Sum != want {
			t.Fatalf("n=%d: sum=%d want %d", n, res.Sum, want)
		}
		if res.Aggregators != n || res.Participants != n {
			t.Fatalf("topology %+v", res)
		}
		// All-to-all: messages grow quadratically.
		if n > 1 && res.Messages < n*n {
			t.Fatalf("n=%d messages=%d, expected at least n^2", n, res.Messages)
		}
	}
}

func TestSecureSumCloudAssisted(t *testing.T) {
	parts, want := makeParticipants(100)
	res, err := SecureSum(parts, CloudAssisted, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sum != want {
		t.Fatalf("sum=%d want %d", res.Sum, want)
	}
	if res.Aggregators != 3 {
		t.Fatalf("aggregators = %d", res.Aggregators)
	}
	// Linear message cost: ~n*m + m.
	if res.Messages != 100*3+3 {
		t.Fatalf("messages = %d", res.Messages)
	}
	// Per-participant upload must not depend on n.
	if res.BytesPerParticipant != float64(3*shareBytes) {
		t.Fatalf("bytes per participant = %v", res.BytesPerParticipant)
	}
}

func TestSecureSumScalability(t *testing.T) {
	small, _ := makeParticipants(20)
	large, _ := makeParticipants(200)
	smcSmall, _ := SecureSum(small, PureSMC, 0)
	smcLarge, _ := SecureSum(large, PureSMC, 0)
	cloudSmall, _ := SecureSum(small, CloudAssisted, 3)
	cloudLarge, _ := SecureSum(large, CloudAssisted, 3)
	// The per-participant upload grows with n for pure SMC but stays flat for
	// the cloud-assisted protocol — the asymmetry argument of the paper.
	if smcLarge.BytesPerParticipant <= smcSmall.BytesPerParticipant {
		t.Fatal("pure SMC upload should grow with n")
	}
	if cloudLarge.BytesPerParticipant != cloudSmall.BytesPerParticipant {
		t.Fatal("cloud-assisted upload should be independent of n")
	}
}

func TestSecureSumValidation(t *testing.T) {
	if _, err := SecureSum(nil, PureSMC, 0); err != ErrNoParticipants {
		t.Fatalf("no participants: %v", err)
	}
	parts, _ := makeParticipants(5)
	if _, err := SecureSum(parts, CloudAssisted, 1); err != ErrBadAggregators {
		t.Fatalf("1 aggregator: %v", err)
	}
	if _, err := SecureSum(parts, CloudAssisted, 6); err != ErrBadAggregators {
		t.Fatalf("too many aggregators: %v", err)
	}
	if _, err := SecureSum(parts, Protocol(42), 0); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	if PureSMC.String() != "pure-smc" || CloudAssisted.String() != "cloud-assisted" {
		t.Fatal("protocol names wrong")
	}
}

func TestSecureSumProperty(t *testing.T) {
	f := func(values []uint16, mRaw uint8) bool {
		if len(values) == 0 {
			return true
		}
		if len(values) > 64 {
			values = values[:64]
		}
		parts := make([]Participant, len(values))
		var want uint64
		for i, v := range values {
			parts[i] = Participant{ID: fmt.Sprintf("p%d", i), Value: uint64(v)}
			want += uint64(v)
		}
		smc, err := SecureSum(parts, PureSMC, 0)
		if err != nil || smc.Sum != want {
			return false
		}
		m := int(mRaw%3) + 2
		if m > len(parts) {
			m = len(parts)
		}
		if m >= 2 {
			cloud, err := SecureSum(parts, CloudAssisted, m)
			if err != nil || cloud.Sum != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func makeQuasiRecords(n int, seed int64) []QuasiRecord {
	rng := rand.New(rand.NewSource(seed))
	bands := []string{"18-30", "31-45", "46-60", "61-75", "76+"}
	conditions := []string{"diabetes", "hypertension", "asthma", "none"}
	out := make([]QuasiRecord, n)
	for i := range out {
		out[i] = QuasiRecord{
			AgeBand:   bands[rng.Intn(len(bands))],
			ZIP3:      fmt.Sprintf("%03d", 750+rng.Intn(20)),
			Sensitive: conditions[rng.Intn(len(conditions))],
		}
	}
	return out
}

func TestAnonymizeReachesK(t *testing.T) {
	records := makeQuasiRecords(500, 1)
	for _, k := range []int{2, 5, 10, 50} {
		res, err := Anonymize(records, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if res.SmallestClass < k {
			t.Fatalf("k=%d: smallest class %d", k, res.SmallestClass)
		}
		if len(res.Records) != len(records) {
			t.Fatalf("k=%d: record count changed", k)
		}
		if res.InformationLoss < 0 || res.InformationLoss > 1 {
			t.Fatalf("k=%d: information loss %v out of range", k, res.InformationLoss)
		}
		// Sensitive values must be untouched.
		for i := range records {
			if res.Records[i].Sensitive != records[i].Sensitive {
				t.Fatalf("k=%d: sensitive value modified", k)
			}
		}
	}
}

func TestAnonymizeLossGrowsWithK(t *testing.T) {
	records := makeQuasiRecords(300, 2)
	res2, _ := Anonymize(records, 2)
	res50, _ := Anonymize(records, 50)
	if res50.InformationLoss < res2.InformationLoss {
		t.Fatalf("loss should not decrease with k: k=2 %.3f, k=50 %.3f",
			res2.InformationLoss, res50.InformationLoss)
	}
}

func TestAnonymizeSmallDatasetSuppresses(t *testing.T) {
	records := makeQuasiRecords(3, 3)
	res, err := Anonymize(records, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.SmallestClass < 3 {
		t.Fatalf("smallest class %d", res.SmallestClass)
	}
}

func TestAnonymizeValidation(t *testing.T) {
	if _, err := Anonymize(nil, 1); err != ErrBadK {
		t.Fatalf("k=1: %v", err)
	}
	res, err := Anonymize(nil, 2)
	if err != nil || len(res.Records) != 0 {
		t.Fatalf("empty input: %+v %v", res, err)
	}
}

func TestGeneralizeHelpers(t *testing.T) {
	if generalizeZIP("757") != "75*" || generalizeZIP("75*") != "7**" || generalizeZIP("7**") != "*" || generalizeZIP("*") != "*" {
		t.Fatal("zip generalization ladder wrong")
	}
	if generalizeAge("18-30") != "18-45" || generalizeAge("18-45") != "*" || generalizeAge("weird") != "*" {
		t.Fatal("age generalization ladder wrong")
	}
}

func TestLaplaceMechanism(t *testing.T) {
	truth := map[string]int{"diabetes": 120, "asthma": 45, "none": 800}
	rng := rand.New(rand.NewSource(5))
	release, err := LaplaceMechanism(truth, 1.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(release) != 3 {
		t.Fatalf("release size %d", len(release))
	}
	for _, gc := range release {
		if gc.Count < 0 {
			t.Fatalf("negative released count %v", gc)
		}
	}
	mae := MeanAbsoluteError(truth, release)
	if mae <= 0 || mae > 50 {
		t.Fatalf("implausible MAE %v for epsilon=1", mae)
	}
	if _, err := LaplaceMechanism(truth, 0, rng); err != ErrBadEpsilon {
		t.Fatalf("epsilon=0: %v", err)
	}
	if _, err := LaplaceMechanism(truth, 1, nil); err != nil {
		t.Fatalf("nil rng should default: %v", err)
	}
}

func TestLaplaceErrorDecreasesWithEpsilon(t *testing.T) {
	truth := map[string]int{}
	for i := 0; i < 50; i++ {
		truth[fmt.Sprintf("g%02d", i)] = 100 + i
	}
	mae := func(eps float64) float64 {
		var total float64
		const trials = 40
		for trial := 0; trial < trials; trial++ {
			rng := rand.New(rand.NewSource(int64(trial)))
			rel, err := LaplaceMechanism(truth, eps, rng)
			if err != nil {
				t.Fatal(err)
			}
			total += MeanAbsoluteError(truth, rel)
		}
		return total / trials
	}
	loose := mae(0.1)
	tight := mae(2.0)
	if tight >= loose {
		t.Fatalf("MAE should shrink as epsilon grows: eps=0.1 %.2f, eps=2 %.2f", loose, tight)
	}
	// Sanity check against theory: expected |Laplace(1/eps)| = 1/eps.
	if math.Abs(tight-0.5) > 0.5 {
		t.Fatalf("MAE at eps=2 = %.2f, expected around 0.5", tight)
	}
}

func TestHistograms(t *testing.T) {
	records := []QuasiRecord{
		{Sensitive: "diabetes", AgeBand: "46-60"},
		{Sensitive: "diabetes", AgeBand: "18-30"},
		{Sensitive: "none", AgeBand: "18-30"},
	}
	h := HistogramFromSensitive(records)
	if h["diabetes"] != 2 || h["none"] != 1 {
		t.Fatalf("histogram %v", h)
	}
	cross := CrossHistogram(records, func(r QuasiRecord) string { return r.AgeBand })
	if cross["diabetes|46-60"] != 1 || cross["diabetes|18-30"] != 1 {
		t.Fatalf("cross histogram %v", cross)
	}
}

func BenchmarkSecureSumCloudAssisted1000(b *testing.B) {
	parts, _ := makeParticipants(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SecureSum(parts, CloudAssisted, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnonymize1000K10(b *testing.B) {
	records := makeQuasiRecords(1000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Anonymize(records, 10); err != nil {
			b.Fatal(err)
		}
	}
}
