// Package commons implements the "shared commons" requirement: privacy-
// preserving computations over many trusted cells so that individual privacy
// does not hinder societal benefits (census, epidemiological releases, global
// queries).
//
// Three mechanisms are provided:
//
//   - Secure aggregation of per-cell values using additive secret sharing,
//     either in a pure SMC fashion (every participant also acts as an
//     aggregator, all-to-all shares) or cloud-assisted (a small number of
//     aggregator cells, with the untrusted infrastructure relaying the sealed
//     shares and storing intermediate results) — the asymmetric setting the
//     paper highlights.
//   - k-anonymity generalization of record releases.
//   - Differentially-private perturbation (Laplace mechanism) of counts.
//
// distributed.go composes the three into the distributed query plane
// (DESIGN.md §13): a Coordinator scatters sealed query Specs into per-cell
// cloud mailboxes, each cell's Responder evaluates them locally under its
// own policy gate and answers with per-aggregator additive secret shares,
// and an Aggregator committee produces the total — released only past the
// k-anonymity threshold, Laplace-noised, and charged against a cumulative
// epsilon budget. Experiment E16 measures it at fleet scale.
package commons

import (
	"errors"
	"fmt"
	"math/big"

	"trustedcells/internal/crypto"
)

// Errors returned by the aggregation protocols.
var (
	ErrNoParticipants = errors.New("commons: no participants")
	ErrBadAggregators = errors.New("commons: aggregator count must be at least 2 and at most the participant count")
)

// Participant is one cell contributing a bounded non-negative value (e.g. its
// daily energy consumption in watt-hours, or a 0/1 disease indicator).
type Participant struct {
	ID    string
	Value uint64
}

// Protocol selects how the secure sum is computed.
type Protocol int

// Protocols.
const (
	// PureSMC: every participant sends one share to every other participant;
	// each participant publishes the sum of the shares it received. No cloud
	// involvement beyond message transport.
	PureSMC Protocol = iota
	// CloudAssisted: participants split their value into one share per
	// aggregator cell (a small committee); the cloud relays shares and stores
	// the aggregators' partial sums as intermediate results.
	CloudAssisted
)

// String names the protocol.
func (p Protocol) String() string {
	switch p {
	case PureSMC:
		return "pure-smc"
	case CloudAssisted:
		return "cloud-assisted"
	default:
		return fmt.Sprintf("protocol(%d)", int(p))
	}
}

// AggregationResult reports the outcome and cost of a secure-sum run.
type AggregationResult struct {
	Sum uint64
	// Participants and Aggregators record the topology.
	Participants int
	Aggregators  int
	// Messages is the total number of point-to-point messages exchanged.
	Messages int
	// BytesPerParticipant is the average number of bytes each participant
	// uploaded.
	BytesPerParticipant float64
	// Rounds is the number of communication rounds.
	Rounds int
	// MaxSharesHeld is the largest number of foreign shares any single party
	// held — the privacy exposure if that party is compromised.
	MaxSharesHeld int
}

// shareBytes is the wire size of one share (16-byte field element plus
// envelope overhead when sealed to its recipient).
const shareBytes = 16 + 45

// SecureSum runs the selected protocol over the participants and returns the
// exact sum together with cost counters. numAggregators is only used by the
// cloud-assisted protocol.
func SecureSum(participants []Participant, protocol Protocol, numAggregators int) (*AggregationResult, error) {
	if len(participants) == 0 {
		return nil, ErrNoParticipants
	}
	switch protocol {
	case PureSMC:
		return pureSMCSum(participants)
	case CloudAssisted:
		return cloudAssistedSum(participants, numAggregators)
	default:
		return nil, fmt.Errorf("commons: unknown protocol %d", int(protocol))
	}
}

func pureSMCSum(participants []Participant) (*AggregationResult, error) {
	n := len(participants)
	// received[j] collects the shares participant j received.
	received := make([][]*big.Int, n)
	messages := 0
	for _, p := range participants {
		shares, err := crypto.AdditiveShares(p.Value, n)
		if err != nil {
			return nil, err
		}
		for j, s := range shares {
			received[j] = append(received[j], s)
			messages++ // includes the share a participant "sends to itself" locally; cheap and simple
		}
	}
	// Each participant publishes its partial sum; combining them yields the
	// global sum.
	partials := make([]*big.Int, n)
	for j := range received {
		partials[j] = crypto.SumShares(received[j])
		messages++ // publication of the partial sum
	}
	sum := crypto.CombineAggregates(partials)
	return &AggregationResult{
		Sum:                 sum,
		Participants:        n,
		Aggregators:         n,
		Messages:            messages,
		BytesPerParticipant: float64(n*shareBytes + shareBytes),
		Rounds:              2,
		MaxSharesHeld:       n,
	}, nil
}

func cloudAssistedSum(participants []Participant, numAggregators int) (*AggregationResult, error) {
	n := len(participants)
	if numAggregators < 2 || numAggregators > n {
		return nil, ErrBadAggregators
	}
	totals := make([]*big.Int, numAggregators)
	for i := range totals {
		totals[i] = new(big.Int)
	}
	messages := 0
	for _, p := range participants {
		shares, err := crypto.AdditiveShares(p.Value, numAggregators)
		if err != nil {
			return nil, err
		}
		for i, s := range shares {
			totals[i].Add(totals[i], s)
			totals[i].Mod(totals[i], crypto.ShareModulus())
			messages++ // one sealed share uploaded to the cloud per aggregator
		}
	}
	// Each aggregator publishes its partial total (stored as an intermediate
	// result on the cloud), then the querier combines them.
	messages += numAggregators
	sum := crypto.CombineAggregates(totals)
	return &AggregationResult{
		Sum:                 sum,
		Participants:        n,
		Aggregators:         numAggregators,
		Messages:            messages,
		BytesPerParticipant: float64(numAggregators * shareBytes),
		Rounds:              2,
		MaxSharesHeld:       n, // one aggregator sees one share from every participant
	}, nil
}
