// Distributed commons queries: the scatter/gather protocol that turns the
// in-memory secure-aggregation primitives of this package into a fleet-wide
// workload running over the untrusted cloud's mailbox plane.
//
// A Coordinator seals a versioned query spec into per-cell mailboxes; each
// cell's Responder evaluates the spec locally (for real cells, through the
// query planner and the reference monitor's aggregate gate) and posts back a
// sealed partial aggregate as additive secret shares, one per aggregator
// cell, so no single aggregator ever learns a cell's value. The Coordinator
// forwards the shares to the Aggregator committee, intersects the committees'
// valid sets so every partial total covers the exact same contributor set,
// combines the partials, and releases the aggregate only after k-anonymity
// suppression and calibrated Laplace noise. A partial-response deadline
// tolerates stragglers: the release carries an explicit
// (responded, total, suppressed) accounting instead of blocking on dead
// cells. See DESIGN.md §13 for the wire format and the threat model.
package commons

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/big"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"trustedcells/internal/cloud"
	"trustedcells/internal/core"
	"trustedcells/internal/crypto"
	"trustedcells/internal/datamodel"
	"trustedcells/internal/query"
	"trustedcells/internal/timeseries"
)

// Errors of the distributed query plane.
var (
	// ErrBadSpec reports a query spec that fails validation or a commons
	// payload whose bytes do not decode (wrong magic, wrong version,
	// truncation).
	ErrBadSpec = errors.New("commons: malformed commons payload")
	// ErrBudgetExhausted reports a query refused because releasing it would
	// exceed the coordinator's cumulative differential-privacy budget.
	ErrBudgetExhausted = errors.New("commons: privacy budget exhausted")
	// ErrGatherIncomplete reports a gather that could not assemble partial
	// totals from every aggregator before its response window closed.
	ErrGatherIncomplete = errors.New("commons: aggregator committee incomplete")
)

// Wire magics of the commons codecs. Every commons payload starts with one
// of these bytes followed by a version byte, so a truncated or foreign
// payload fails fast instead of mis-parsing.
const (
	specMagic     = 0xC6
	responseMagic = 0xC7
	controlMagic  = 0xC5
	codecVersion  = 1
)

// Mailbox message kinds of the scatter/gather protocol.
const (
	// KindQuery carries a sealed query spec from the querier to a cell.
	KindQuery = "commons-query"
	// KindResponse carries a cell's sealed partial aggregate (its share
	// vector) back to the querier.
	KindResponse = "commons-response"
	// KindShares carries the batched sealed shares of one aggregator from
	// the querier to that aggregator.
	KindShares = "commons-shares"
	// KindValid carries an aggregator's set of validated contributors back
	// to the querier.
	KindValid = "commons-valid"
	// KindFinalize carries the intersected contributor set from the querier
	// to an aggregator.
	KindFinalize = "commons-finalize"
	// KindPartial carries an aggregator's partial total (over exactly the
	// finalized contributor set) back to the querier.
	KindPartial = "commons-partial"
)

// shareFieldBytes is the fixed wire width of one additive share: a field
// element of the 127-bit share modulus, big-endian, zero-padded.
const shareFieldBytes = 16

// Community is a named group of cells provisioned with a shared symmetric
// group key (out of band, cell-to-cell — the cloud never holds it). All
// commons envelopes of the community are sealed under keys derived from the
// group key, with associated data binding community, query, cell and role so
// the untrusted cloud can neither read nor redirect them.
type Community struct {
	name string
	key  crypto.SymmetricKey
}

// NewCommunity wraps a community name and its provisioned group key.
func NewCommunity(name string, key crypto.SymmetricKey) *Community {
	return &Community{name: name, key: key}
}

// Name returns the community name.
func (c *Community) Name() string { return c.name }

// Mailbox returns the commons mailbox of a member, kept separate from the
// cell's document-sharing mailbox so a Responder poll never consumes
// unrelated messages.
func (c *Community) Mailbox(memberID string) string {
	return "commons/" + c.name + "/" + memberID
}

// memberKey seals specs to one member cell.
func (c *Community) memberKey(cellID string) crypto.SymmetricKey {
	return crypto.DeriveKey(c.key, "commons-member", c.name+"|"+cellID)
}

// aggregatorKey seals shares and control messages to one aggregator.
func (c *Community) aggregatorKey(aggID string) crypto.SymmetricKey {
	return crypto.DeriveKey(c.key, "commons-aggregator", c.name+"|"+aggID)
}

// querierKey seals responses and aggregator replies to the querier.
func (c *Community) querierKey(querierID string) crypto.SymmetricKey {
	return crypto.DeriveKey(c.key, "commons-querier", c.name+"|"+querierID)
}

// Associated-data strings binding every envelope to its protocol position.
// Opens verify the returned associated data against these, so the untrusted
// provider cannot replay an envelope into a different query, cell or role.
func (c *Community) adSpec(cellID string) []byte {
	return []byte("tc-commons-spec|" + c.name + "|" + cellID)
}
func (c *Community) adResponse(queryID, cellID string) []byte {
	return []byte("tc-commons-resp|" + c.name + "|" + queryID + "|" + cellID)
}
func (c *Community) adShare(queryID, cellID, aggID string) []byte {
	return []byte("tc-commons-share|" + c.name + "|" + queryID + "|" + cellID + "|" + aggID)
}
func (c *Community) adControl(queryID, aggID, kind string) []byte {
	return []byte("tc-commons-ctl|" + c.name + "|" + queryID + "|" + aggID + "|" + kind)
}

// openBound opens a sealed envelope and enforces the associated-data binding.
func openBound(key crypto.SymmetricKey, sealed, wantAD []byte) ([]byte, error) {
	plain, ad, err := crypto.Open(key, sealed)
	if err != nil {
		return nil, err
	}
	if string(ad) != string(wantAD) {
		return nil, fmt.Errorf("%w: envelope bound to %q", ErrBadSpec, ad)
	}
	return plain, nil
}

// Filter is the predicate of a query spec: the subset of the catalog query
// language that travels on the wire. Zero fields match everything.
type Filter struct {
	// Type restricts candidate documents to one document type (typically
	// core.SeriesDocType for time-series aggregates).
	Type string
	// Keyword restricts candidates to documents carrying the keyword.
	Keyword string
	// TagKey and TagValue restrict candidates to documents tagged key=value
	// (TagValue may be empty to match any value of TagKey).
	TagKey   string
	TagValue string
}

// Spec is one commons query: the predicate, the aggregate, the privacy
// parameters and the response window, all of which travel sealed to every
// cell of the community.
type Spec struct {
	// ID names the query; every protocol envelope binds to it.
	ID string
	// ReplyTo is the querier identity whose mailbox collects responses. The
	// Coordinator fills it from its own ID when empty.
	ReplyTo string
	// Filter selects the documents each cell aggregates locally.
	Filter Filter
	// Granularity is the bucket width of the local series aggregation; the
	// cell's policy gate still caps it per subject.
	Granularity timeseries.Granularity
	// Kind is the local aggregate a cell computes over its matching series
	// before contributing the resulting scalar to the global sum.
	Kind timeseries.AggregateKind
	// K is the k-anonymity threshold: the release is suppressed unless at
	// least K cells contributed.
	K int
	// Epsilon is the differential-privacy budget of the release: the
	// combined sum is perturbed with Laplace noise of scale
	// MaxContribution/Epsilon before leaving the querier.
	Epsilon float64
	// MaxContribution clamps each cell's contribution and is the global
	// sensitivity the Laplace noise is calibrated against.
	MaxContribution uint64
	// Deadline is the response window of each gather round: the query
	// releases with whatever contributions arrived once it elapses, so
	// stragglers cost coverage, never liveness.
	Deadline time.Duration
	// Aggregators names the committee (at least 2) the additive shares are
	// split across; no single member learns any cell's value.
	Aggregators []string
}

// Validate checks the spec's protocol invariants.
func (s *Spec) Validate() error {
	if s.ID == "" {
		return fmt.Errorf("%w: empty query ID", ErrBadSpec)
	}
	if s.ReplyTo == "" {
		return fmt.Errorf("%w: empty reply-to", ErrBadSpec)
	}
	if len(s.Aggregators) < 2 {
		return ErrBadAggregators
	}
	if s.K < 2 {
		return ErrBadK
	}
	if s.Epsilon <= 0 {
		return ErrBadEpsilon
	}
	if s.MaxContribution == 0 {
		return fmt.Errorf("%w: zero max contribution", ErrBadSpec)
	}
	if s.Deadline <= 0 {
		return fmt.Errorf("%w: non-positive deadline", ErrBadSpec)
	}
	return nil
}

// appendString appends a uvarint-length-prefixed string.
func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// appendBytes appends a uvarint-length-prefixed byte slice.
func appendBytes(b []byte, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

// reader is a cursor over a binary payload whose helpers latch the first
// error, so decoders read fields linearly and check once at the end.
type reader struct {
	b   []byte
	err error
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.err = ErrBadSpec
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *reader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if uint64(len(r.b)) < n {
		r.err = ErrBadSpec
		return ""
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s
}

func (r *reader) bytes() []byte {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if uint64(len(r.b)) < n {
		r.err = ErrBadSpec
		return nil
	}
	p := r.b[:n:n]
	r.b = r.b[n:]
	return p
}

func (r *reader) byte1() byte {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 1 {
		r.err = ErrBadSpec
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

// Encode renders the spec in its versioned binary wire format: a magic byte,
// a codec version, then uvarint-length-prefixed fields.
func (s *Spec) Encode() []byte {
	b := make([]byte, 0, 128)
	b = append(b, specMagic, codecVersion)
	b = appendString(b, s.ID)
	b = appendString(b, s.ReplyTo)
	b = appendString(b, s.Filter.Type)
	b = appendString(b, s.Filter.Keyword)
	b = appendString(b, s.Filter.TagKey)
	b = appendString(b, s.Filter.TagValue)
	b = binary.AppendUvarint(b, uint64(s.Granularity))
	b = binary.AppendUvarint(b, uint64(s.Kind))
	b = binary.AppendUvarint(b, uint64(s.K))
	b = binary.AppendUvarint(b, math.Float64bits(s.Epsilon))
	b = binary.AppendUvarint(b, s.MaxContribution)
	b = binary.AppendUvarint(b, uint64(s.Deadline))
	b = binary.AppendUvarint(b, uint64(len(s.Aggregators)))
	for _, a := range s.Aggregators {
		b = appendString(b, a)
	}
	return b
}

// DecodeSpec parses the binary wire format produced by Encode.
func DecodeSpec(b []byte) (*Spec, error) {
	if len(b) < 2 || b[0] != specMagic {
		return nil, fmt.Errorf("%w: bad spec magic", ErrBadSpec)
	}
	if b[1] != codecVersion {
		return nil, fmt.Errorf("%w: unsupported spec version %d", ErrBadSpec, b[1])
	}
	r := &reader{b: b[2:]}
	s := &Spec{}
	s.ID = r.str()
	s.ReplyTo = r.str()
	s.Filter.Type = r.str()
	s.Filter.Keyword = r.str()
	s.Filter.TagKey = r.str()
	s.Filter.TagValue = r.str()
	s.Granularity = timeseries.Granularity(r.uvarint())
	s.Kind = timeseries.AggregateKind(r.uvarint())
	s.K = int(r.uvarint())
	s.Epsilon = math.Float64frombits(r.uvarint())
	s.MaxContribution = r.uvarint()
	s.Deadline = time.Duration(r.uvarint())
	n := r.uvarint()
	if r.err == nil && n > uint64(len(r.b)) {
		r.err = ErrBadSpec // each aggregator name costs at least one byte
	}
	for i := uint64(0); i < n && r.err == nil; i++ {
		s.Aggregators = append(s.Aggregators, r.str())
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(r.b) != 0 {
		return nil, fmt.Errorf("%w: trailing bytes", ErrBadSpec)
	}
	return s, nil
}

// response is a cell's reply: either a decline or one sealed share per
// aggregator, in committee order.
type response struct {
	queryID  string
	cellID   string
	declined bool
	shares   [][]byte
}

func (p *response) encode() []byte {
	b := make([]byte, 0, 64+len(p.shares)*(shareFieldBytes+64))
	b = append(b, responseMagic, codecVersion)
	b = appendString(b, p.queryID)
	b = appendString(b, p.cellID)
	if p.declined {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = binary.AppendUvarint(b, uint64(len(p.shares)))
	for _, s := range p.shares {
		b = appendBytes(b, s)
	}
	return b
}

func decodeResponse(b []byte) (*response, error) {
	if len(b) < 2 || b[0] != responseMagic || b[1] != codecVersion {
		return nil, fmt.Errorf("%w: bad response envelope", ErrBadSpec)
	}
	r := &reader{b: b[2:]}
	p := &response{}
	p.queryID = r.str()
	p.cellID = r.str()
	p.declined = r.byte1() == 1
	n := r.uvarint()
	if r.err == nil && n > uint64(len(r.b)) {
		r.err = ErrBadSpec
	}
	for i := uint64(0); i < n && r.err == nil; i++ {
		p.shares = append(p.shares, r.bytes())
	}
	if r.err != nil {
		return nil, r.err
	}
	return p, nil
}

// control is one coordinator<->aggregator message: a share batch, a valid
// set, a finalize set, or a partial total, distinguished by the mailbox kind.
type control struct {
	queryID string
	aggID   string
	replyTo string   // querier identity the aggregator answers to
	cells   []string // contributors of a shares batch / valid set / finalize set
	shares  [][]byte // parallel to cells in a KindShares batch
	partial []byte   // field element in a KindPartial reply
}

func (c *control) encode() []byte {
	b := make([]byte, 0, 64)
	b = append(b, controlMagic, codecVersion)
	b = appendString(b, c.queryID)
	b = appendString(b, c.aggID)
	b = appendString(b, c.replyTo)
	b = binary.AppendUvarint(b, uint64(len(c.cells)))
	hasShares := byte(0)
	if c.shares != nil {
		hasShares = 1
	}
	b = append(b, hasShares)
	for i, id := range c.cells {
		b = appendString(b, id)
		if hasShares == 1 {
			b = appendBytes(b, c.shares[i])
		}
	}
	b = appendBytes(b, c.partial)
	return b
}

func decodeControl(b []byte) (*control, error) {
	if len(b) < 2 || b[0] != controlMagic || b[1] != codecVersion {
		return nil, fmt.Errorf("%w: bad control envelope", ErrBadSpec)
	}
	r := &reader{b: b[2:]}
	c := &control{}
	c.queryID = r.str()
	c.aggID = r.str()
	c.replyTo = r.str()
	n := r.uvarint()
	hasShares := r.byte1() == 1
	if r.err == nil && n > uint64(len(r.b)) {
		r.err = ErrBadSpec
	}
	for i := uint64(0); i < n && r.err == nil; i++ {
		c.cells = append(c.cells, r.str())
		if hasShares {
			c.shares = append(c.shares, r.bytes())
		}
	}
	c.partial = r.bytes()
	if r.err != nil {
		return nil, r.err
	}
	return c, nil
}

// EvalFunc evaluates a query spec against one cell's local data. It returns
// the cell's clamped scalar contribution and whether the cell participates;
// ok=false declines (no matching documents, or the cell's policy refuses the
// aggregate) without revealing which. Errors abort the responder's poll.
type EvalFunc func(spec *Spec) (value uint64, ok bool, err error)

// CellEvaluator adapts a real cell to the commons plane: the spec's filter
// runs through the query planner, per-document aggregation goes through
// AggregateBatch behind the reference monitor's aggregate gate (policy
// action and granularity cap, audited), and the merged series folds to the
// scalar the cell contributes. Denied or empty results decline rather than
// error, so a refusing policy is indistinguishable from absent data.
func CellEvaluator(cell *core.Cell, subject string, actx core.AccessContext) EvalFunc {
	return func(spec *Spec) (uint64, bool, error) {
		eng := query.NewEngine(cell, subject, actx)
		res, err := eng.RunSeriesAggregate(query.SeriesAggregate{
			Filter: datamodel.Query{
				Type:     spec.Filter.Type,
				Keyword:  spec.Filter.Keyword,
				TagKey:   spec.Filter.TagKey,
				TagValue: spec.Filter.TagValue,
			},
			Granularity: spec.Granularity,
			Kind:        spec.Kind,
		})
		if err != nil {
			// No matching documents and an all-denied policy decision both
			// decline: the querier cannot tell refusal from absence.
			if errors.Is(err, query.ErrNoDocuments) || errors.Is(err, core.ErrAccessDenied) {
				return 0, false, nil
			}
			return 0, false, err
		}
		if res.Merged == nil || res.Merged.Len() == 0 {
			return 0, false, nil
		}
		total := 0.0
		for _, pt := range res.Merged.Points() {
			total += pt.Value
		}
		if spec.Kind == timeseries.AggregateMean {
			total /= float64(res.Merged.Len())
		}
		if total < 0 {
			total = 0
		}
		v := uint64(math.Round(total))
		if v > spec.MaxContribution {
			v = spec.MaxContribution
		}
		return v, true, nil
	}
}

// Responder is one cell's half of the scatter/gather protocol: it drains the
// cell's commons mailbox, evaluates each sealed spec through its evaluator,
// splits the contribution into additive shares (one per aggregator, each
// sealed so only that aggregator can open it), and posts the sealed response
// back to the querier's mailbox.
type Responder struct {
	id   string
	comm *Community
	svc  cloud.Service
	eval EvalFunc
}

// NewResponder builds a responder for member cell id, answering with eval.
func NewResponder(id string, comm *Community, svc cloud.Service, eval EvalFunc) *Responder {
	return &Responder{id: id, comm: comm, svc: svc, eval: eval}
}

// Mailbox returns the commons mailbox this responder drains.
func (r *Responder) Mailbox() string { return r.comm.Mailbox(r.id) }

// Poll receives up to max pending query messages and answers each one,
// returning how many queries it answered (declines included). Messages that
// fail to open or decode are dropped: on an untrusted transport a tampered
// query is indistinguishable from a lost one, and costs only coverage.
func (r *Responder) Poll(max int) (answered int, err error) {
	msgs, err := r.svc.Receive(r.Mailbox(), max)
	if err != nil {
		return 0, err
	}
	key := r.comm.memberKey(r.id)
	wantAD := r.comm.adSpec(r.id)
	for _, m := range msgs {
		if m.Kind != KindQuery {
			continue
		}
		plain, err := openBound(key, m.Body, wantAD)
		if err != nil {
			continue
		}
		spec, err := DecodeSpec(plain)
		if err != nil || spec.Validate() != nil {
			continue
		}
		if err := r.answer(spec); err != nil {
			return answered, err
		}
		answered++
	}
	return answered, nil
}

// answer evaluates one spec and posts the sealed response.
func (r *Responder) answer(spec *Spec) error {
	value, ok, err := r.eval(spec)
	if err != nil {
		return err
	}
	resp := &response{queryID: spec.ID, cellID: r.id, declined: !ok}
	if ok {
		if value > spec.MaxContribution {
			value = spec.MaxContribution
		}
		shares, err := crypto.AdditiveShares(value, len(spec.Aggregators))
		if err != nil {
			return err
		}
		resp.shares = make([][]byte, len(shares))
		for i, s := range shares {
			field := make([]byte, shareFieldBytes)
			s.FillBytes(field)
			sealed, err := crypto.Seal(r.comm.aggregatorKey(spec.Aggregators[i]), field,
				r.comm.adShare(spec.ID, r.id, spec.Aggregators[i]))
			if err != nil {
				return err
			}
			resp.shares[i] = sealed
		}
	}
	body, err := crypto.Seal(r.comm.querierKey(spec.ReplyTo), resp.encode(),
		r.comm.adResponse(spec.ID, r.id))
	if err != nil {
		return err
	}
	return r.svc.Send(cloud.Message{
		From: r.id,
		To:   r.comm.Mailbox(spec.ReplyTo),
		Kind: KindResponse,
		Body: body,
	})
}

// aggSession is an aggregator's per-query state: the opened share values of
// every contributor whose share authenticated, and the querier to answer.
type aggSession struct {
	replyTo string
	values  map[string]*big.Int
}

// Aggregator is one committee member: it opens the shares addressed to it,
// reports which contributors validated, and — once the querier finalizes the
// common contributor set — returns its partial total over exactly that set.
// It only ever holds one share of each cell's value, so a single compromised
// committee member learns nothing about any individual contribution.
type Aggregator struct {
	id   string
	comm *Community
	svc  cloud.Service

	mu       sync.Mutex
	sessions map[string]*aggSession
}

// NewAggregator builds a committee member with identity id.
func NewAggregator(id string, comm *Community, svc cloud.Service) *Aggregator {
	return &Aggregator{id: id, comm: comm, svc: svc, sessions: make(map[string]*aggSession)}
}

// Mailbox returns the commons mailbox this aggregator drains.
func (a *Aggregator) Mailbox() string { return a.comm.Mailbox(a.id) }

// Poll receives up to max pending protocol messages and processes each one,
// returning how many it handled. Share batches and finalize requests are
// idempotent, so the querier can re-send them through a lossy provider.
func (a *Aggregator) Poll(max int) (processed int, err error) {
	msgs, err := a.svc.Receive(a.Mailbox(), max)
	if err != nil {
		return 0, err
	}
	key := a.comm.aggregatorKey(a.id)
	for _, m := range msgs {
		var kindAD string
		switch m.Kind {
		case KindShares:
			kindAD = KindShares
		case KindFinalize:
			kindAD = KindFinalize
		default:
			continue
		}
		plain, _, err := crypto.Open(key, m.Body)
		if err != nil {
			continue
		}
		ctl, err := decodeControl(plain)
		if err != nil || ctl.aggID != a.id {
			continue
		}
		// The control wrapper's binding is re-checked against the decoded
		// query ID so a provider cannot splice one query's batch into
		// another.
		if _, err := openBound(key, m.Body, a.comm.adControl(ctl.queryID, a.id, kindAD)); err != nil {
			continue
		}
		switch m.Kind {
		case KindShares:
			err = a.handleShares(ctl)
		case KindFinalize:
			err = a.handleFinalize(ctl)
		}
		if err != nil {
			return processed, err
		}
		processed++
	}
	return processed, nil
}

// handleShares opens the batch, records the contributors whose share
// authenticated and decoded, and reports the valid set back to the querier.
// A share the provider tampered with simply fails authentication and drops
// its cell from this aggregator's valid set — the intersection step then
// drops it from the release entirely, keeping every partial consistent.
func (a *Aggregator) handleShares(ctl *control) error {
	if len(ctl.shares) != len(ctl.cells) {
		return nil // malformed batch: ignore, the querier will retry
	}
	key := a.comm.aggregatorKey(a.id)
	sess := &aggSession{replyTo: ctl.replyTo, values: make(map[string]*big.Int, len(ctl.cells))}
	for i, cellID := range ctl.cells {
		field, err := openBound(key, ctl.shares[i], a.comm.adShare(ctl.queryID, cellID, a.id))
		if err != nil || len(field) != shareFieldBytes {
			continue
		}
		v := new(big.Int).SetBytes(field)
		if v.Cmp(crypto.ShareModulus()) >= 0 {
			continue
		}
		sess.values[cellID] = v
	}
	a.mu.Lock()
	a.sessions[ctl.queryID] = sess
	a.mu.Unlock()
	valid := make([]string, 0, len(sess.values))
	for id := range sess.values {
		valid = append(valid, id)
	}
	sort.Strings(valid)
	return a.reply(ctl.queryID, sess.replyTo, KindValid, &control{
		queryID: ctl.queryID, aggID: a.id, replyTo: sess.replyTo, cells: valid,
	})
}

// handleFinalize sums the session's share values over exactly the finalized
// contributor set and replies with the sealed partial total. Re-finalizing
// recomputes the same partial, so retries through a lossy provider are safe.
func (a *Aggregator) handleFinalize(ctl *control) error {
	a.mu.Lock()
	sess := a.sessions[ctl.queryID]
	a.mu.Unlock()
	if sess == nil {
		return nil // shares batch lost: the querier's retry resends it first
	}
	total := new(big.Int)
	for _, cellID := range ctl.cells {
		v, ok := sess.values[cellID]
		if !ok {
			return nil // inconsistent finalize set: refuse to answer
		}
		total.Add(total, v)
		total.Mod(total, crypto.ShareModulus())
	}
	partial := make([]byte, shareFieldBytes)
	total.FillBytes(partial)
	return a.reply(ctl.queryID, sess.replyTo, KindPartial, &control{
		queryID: ctl.queryID, aggID: a.id, replyTo: sess.replyTo, partial: partial,
	})
}

// reply seals a control message to the querier and posts it.
func (a *Aggregator) reply(queryID, replyTo, kind string, ctl *control) error {
	body, err := crypto.Seal(a.comm.querierKey(replyTo), ctl.encode(),
		a.comm.adControl(queryID, a.id, kind))
	if err != nil {
		return err
	}
	return a.svc.Send(cloud.Message{
		From: a.id,
		To:   a.comm.Mailbox(replyTo),
		Kind: kind,
		Body: body,
	})
}

// CoordinatorConfig parameterises a Coordinator.
type CoordinatorConfig struct {
	// ID is the querier identity; responses arrive at its commons mailbox.
	ID string
	// Community is the group the coordinator queries.
	Community *Community
	// Cloud is any mailbox-capable backend (memory, durable, replicated,
	// TCP): the protocol uses only Send and Receive.
	Cloud cloud.Service
	// Clock supplies the time for deadlines; nil means time.Now.
	Clock func() time.Time
	// Rand drives the Laplace release noise; nil seeds a deterministic
	// source (fine for reproducible experiments, override in production).
	Rand *rand.Rand
	// PrivacyBudget caps the cumulative epsilon this coordinator may spend
	// across released queries; 0 means unlimited.
	PrivacyBudget float64
	// Workers bounds the scatter fan-out concurrency; 0 picks NumCPU.
	Workers int
}

// Coordinator is the querier's half of the protocol: it scatters sealed
// query specs, gathers sealed responses until the deadline, drives the
// aggregator committee to a consistent partial-total set, and releases the
// combined aggregate under k-anonymity suppression and Laplace noise while
// tracking the cumulative privacy budget.
type Coordinator struct {
	cfg   CoordinatorConfig
	clock func() time.Time

	mu    sync.Mutex
	rng   *rand.Rand
	spent float64
}

// NewCoordinator validates the config and builds a coordinator.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("%w: empty coordinator ID", ErrBadSpec)
	}
	if cfg.Community == nil {
		return nil, fmt.Errorf("%w: nil community", ErrBadSpec)
	}
	if cfg.Cloud == nil {
		return nil, fmt.Errorf("%w: nil cloud service", ErrBadSpec)
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.Rand == nil {
		cfg.Rand = rand.New(rand.NewSource(1))
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	return &Coordinator{cfg: cfg, clock: cfg.Clock, rng: cfg.Rand}, nil
}

// Mailbox returns the commons mailbox responses arrive at.
func (co *Coordinator) Mailbox() string { return co.cfg.Community.Mailbox(co.cfg.ID) }

// EpsilonSpent returns the cumulative privacy budget consumed by released
// queries (suppressed queries release nothing and spend nothing).
func (co *Coordinator) EpsilonSpent() float64 {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.spent
}

// Pending is an in-flight query: the sealed specs have been scattered and
// Gather can be called to collect the release.
type Pending struct {
	// Spec is the validated spec as scattered (ReplyTo filled in).
	Spec Spec
	// Cells are the member cells the query was scattered to.
	Cells []string
	// BytesScattered is the total mailbox payload fanned out.
	BytesScattered int64
	// Messages counts protocol messages sent so far.
	Messages int

	start    time.Time
	deadline time.Time
}

// Scatter validates and seals the spec into every listed cell's commons
// mailbox (one sealed envelope per cell, fanned out across a worker pool)
// and returns the pending query. If the coordinator has a privacy budget,
// a query whose release would exceed it is refused up front.
func (co *Coordinator) Scatter(spec Spec, cells []string) (*Pending, error) {
	if spec.ReplyTo == "" {
		spec.ReplyTo = co.cfg.ID
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(cells) == 0 {
		return nil, ErrNoParticipants
	}
	co.mu.Lock()
	budget := co.cfg.PrivacyBudget
	over := budget > 0 && co.spent+spec.Epsilon > budget
	co.mu.Unlock()
	if over {
		return nil, ErrBudgetExhausted
	}
	comm := co.cfg.Community
	plain := spec.Encode()
	var bytesOut int64
	var sendErr error
	var errOnce sync.Once
	var wg sync.WaitGroup
	var scattered int64
	next := make(chan string, co.cfg.Workers)
	var mu sync.Mutex
	for w := 0; w < co.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for cellID := range next {
				body, err := crypto.Seal(comm.memberKey(cellID), plain, comm.adSpec(cellID))
				if err == nil {
					err = co.cfg.Cloud.Send(cloud.Message{
						From: co.cfg.ID,
						To:   comm.Mailbox(cellID),
						Kind: KindQuery,
						Body: body,
					})
				}
				if err != nil {
					errOnce.Do(func() { sendErr = err })
					continue
				}
				mu.Lock()
				bytesOut += int64(len(body))
				scattered++
				mu.Unlock()
			}
		}()
	}
	for _, cellID := range cells {
		next <- cellID
	}
	close(next)
	wg.Wait()
	if sendErr != nil {
		return nil, sendErr
	}
	start := co.clock()
	return &Pending{
		Spec:           spec,
		Cells:          append([]string(nil), cells...),
		BytesScattered: bytesOut,
		Messages:       int(scattered),
		start:          start,
		deadline:       start.Add(spec.Deadline),
	}, nil
}

// Result is the outcome of one commons query, with the explicit
// (responded, total, suppressed) accounting the deadline semantics require.
type Result struct {
	// QueryID echoes the spec.
	QueryID string
	// Total is how many cells the query was scattered to.
	Total int
	// Responded is how many cells' contributions entered the released
	// aggregate: valid, deduplicated, consistent across the whole committee.
	Responded int
	// Declined counts cells that answered but contributed nothing (policy
	// refusal or no matching data — indistinguishable by design).
	Declined int
	// Suppressed counts responses that arrived but were excluded from the
	// aggregate: duplicates, envelopes that failed authentication, or
	// contributions whose shares did not validate at the whole committee.
	Suppressed int
	// Released reports whether the aggregate cleared the k-anonymity
	// threshold; when false the noisy fields are zero and only the
	// accounting above is published.
	Released bool
	// Sum is the exact combined sum. It exists only inside the querier's
	// enclave; publish the noisy fields, not this one.
	Sum uint64
	// NoisySum is Sum perturbed with Laplace noise of scale
	// MaxContribution/Epsilon — the releasable value.
	NoisySum float64
	// NoisyMean is NoisySum divided by the contributor count.
	NoisyMean float64
	// Epsilon is the privacy budget this release consumed (0 if suppressed).
	Epsilon float64
	// K echoes the suppression threshold the release was checked against.
	K int
	// Contributors lists the cells whose values entered the sum, sorted.
	Contributors []string
	// BytesScattered and BytesGathered measure the mailbox payload fanned
	// out to cells and collected back (responses plus committee traffic).
	BytesScattered int64
	BytesGathered  int64
	// Messages counts all protocol messages sent by any party.
	Messages int
	// Elapsed is the wall-clock time from scatter to release.
	Elapsed time.Duration
}

// gatherPoll sleeps briefly between mailbox polls when no progress was made.
const gatherPoll = 500 * time.Microsecond

// Gather collects responses for the pending query until every cell answered
// or the deadline fires, drives the aggregator committee (pumping the given
// in-process aggregators; pass the committee that the spec names), and
// returns the release. Committee traffic is retried through lossy providers;
// only ErrGatherIncomplete is returned if the committee itself cannot be
// assembled within one extra deadline window.
func (co *Coordinator) Gather(p *Pending, aggs []*Aggregator) (*Result, error) {
	comm := co.cfg.Community
	spec := &p.Spec
	res := &Result{
		QueryID:        spec.ID,
		Total:          len(p.Cells),
		K:              spec.K,
		BytesScattered: p.BytesScattered,
		Messages:       p.Messages,
	}
	qKey := comm.querierKey(co.cfg.ID)
	member := make(map[string]bool, len(p.Cells))
	for _, c := range p.Cells {
		member[c] = true
	}

	// Round 1: collect cell responses until all answered or deadline.
	responses := make(map[string]*response)
	declined := make(map[string]bool)
	for {
		msgs, err := co.cfg.Cloud.Receive(co.Mailbox(), 1024)
		if err != nil {
			return nil, err
		}
		progress := false
		for _, m := range msgs {
			if m.Kind != KindResponse {
				continue // committee replies from an earlier query: stale, drop
			}
			plain, ad, err := crypto.Open(qKey, m.Body)
			if err != nil {
				res.Suppressed++
				continue
			}
			resp, err := decodeResponse(plain)
			if err != nil || resp.queryID != spec.ID || !member[resp.cellID] ||
				string(ad) != string(comm.adResponse(spec.ID, resp.cellID)) {
				res.Suppressed++
				continue
			}
			if responses[resp.cellID] != nil || declined[resp.cellID] {
				res.Suppressed++ // duplicate (replayed) response
				continue
			}
			res.BytesGathered += int64(len(m.Body))
			progress = true
			if resp.declined || len(resp.shares) != len(spec.Aggregators) {
				declined[resp.cellID] = true
				continue
			}
			responses[resp.cellID] = resp
		}
		if len(responses)+len(declined) >= len(p.Cells) {
			break
		}
		if co.clock().After(p.deadline) {
			break
		}
		if !progress {
			time.Sleep(gatherPoll)
		}
	}
	res.Declined = len(declined)

	// Rounds 2-3: drive the committee to a consistent partial-total set.
	// The whole committee exchange gets one more deadline window and is
	// retried through message loss (share batches and finalizes are
	// idempotent on the aggregator side).
	contributors := make([]string, 0, len(responses))
	for id := range responses {
		contributors = append(contributors, id)
	}
	sort.Strings(contributors)

	if len(contributors) > 0 {
		final, partials, bytesCommittee, msgs, err := co.runCommittee(spec, responses, contributors, aggs)
		if err != nil {
			return nil, err
		}
		res.BytesGathered += bytesCommittee
		res.Messages += msgs
		res.Suppressed += len(contributors) - len(final)
		contributors = final
		if len(final) > 0 {
			res.Sum = crypto.CombineAggregates(partials)
		}
	}
	res.Responded = len(contributors)
	res.Contributors = contributors
	res.Messages += len(responses) + len(declined)

	// Release: k-anonymity suppression, then calibrated Laplace noise.
	if res.Responded >= spec.K {
		res.Released = true
		res.Epsilon = spec.Epsilon
		co.mu.Lock()
		noise := laplace(co.rng, float64(spec.MaxContribution)/spec.Epsilon)
		co.spent += spec.Epsilon
		co.mu.Unlock()
		res.NoisySum = float64(res.Sum) + noise
		res.NoisyMean = res.NoisySum / float64(res.Responded)
	}
	res.Elapsed = co.clock().Sub(p.start)
	return res, nil
}

// runCommittee distributes each aggregator's share batch, collects the valid
// sets, intersects them, finalizes, and collects the partial totals. The
// given in-process aggregators are pumped between polls; message loss is
// handled by periodic re-sends of the idempotent batches.
func (co *Coordinator) runCommittee(spec *Spec, responses map[string]*response,
	contributors []string, aggs []*Aggregator) (final []string, partials []*big.Int, bytes int64, msgs int, err error) {

	comm := co.cfg.Community
	qKey := comm.querierKey(co.cfg.ID)
	deadline := co.clock().Add(spec.Deadline)

	sendTo := func(aggIdx int, kind string, ctl *control) error {
		body, err := crypto.Seal(comm.aggregatorKey(spec.Aggregators[aggIdx]), ctl.encode(),
			comm.adControl(spec.ID, spec.Aggregators[aggIdx], kind))
		if err != nil {
			return err
		}
		msgs++
		bytes += int64(len(body))
		return co.cfg.Cloud.Send(cloud.Message{
			From: co.cfg.ID,
			To:   comm.Mailbox(spec.Aggregators[aggIdx]),
			Kind: kind,
			Body: body,
		})
	}
	shareBatch := func(aggIdx int) *control {
		ctl := &control{
			queryID: spec.ID, aggID: spec.Aggregators[aggIdx], replyTo: co.cfg.ID,
			cells: contributors, shares: make([][]byte, len(contributors)),
		}
		for i, cellID := range contributors {
			ctl.shares[i] = responses[cellID].shares[aggIdx]
		}
		return ctl
	}
	pump := func() {
		for _, a := range aggs {
			_, _ = a.Poll(16)
		}
	}
	// Retry cadence for silent aggregators: a fraction of the deadline so a
	// short drill window still fits several attempts, clamped so a long
	// window doesn't re-seal large share batches needlessly.
	retryEvery := spec.Deadline / 8
	if retryEvery < 20*time.Millisecond {
		retryEvery = 20 * time.Millisecond
	}
	if retryEvery > 100*time.Millisecond {
		retryEvery = 100 * time.Millisecond
	}
	// collect polls the querier mailbox for committee replies of the wanted
	// kind until every aggregator answered or the window closes, re-sending
	// the request to silent aggregators along the way.
	collect := func(kind string, resend func(aggIdx int) error) (map[string]*control, error) {
		got := make(map[string]*control, len(spec.Aggregators))
		retryAt := co.clock().Add(retryEvery)
		for {
			pump()
			replies, err := co.cfg.Cloud.Receive(co.Mailbox(), 64)
			if err != nil {
				return nil, err
			}
			progress := false
			for _, m := range replies {
				if m.Kind != kind {
					continue
				}
				plain, ad, err := crypto.Open(qKey, m.Body)
				if err != nil {
					continue
				}
				ctl, err := decodeControl(plain)
				if err != nil || ctl.queryID != spec.ID {
					continue
				}
				if string(ad) != string(comm.adControl(spec.ID, ctl.aggID, kind)) {
					continue
				}
				if _, dup := got[ctl.aggID]; dup {
					continue
				}
				bytes += int64(len(m.Body))
				got[ctl.aggID] = ctl
				progress = true
			}
			if len(got) >= len(spec.Aggregators) {
				return got, nil
			}
			now := co.clock()
			if now.After(deadline) {
				return nil, ErrGatherIncomplete
			}
			if now.After(retryAt) {
				for i, aggID := range spec.Aggregators {
					if _, ok := got[aggID]; !ok {
						if err := resend(i); err != nil {
							return nil, err
						}
					}
				}
				retryAt = now.Add(retryEvery)
			}
			if !progress {
				time.Sleep(gatherPoll)
			}
		}
	}

	// Round 2: shares out, valid sets back, intersect.
	sendShares := func(i int) error {
		return sendTo(i, KindShares, shareBatch(i))
	}
	for i := range spec.Aggregators {
		if err := sendShares(i); err != nil {
			return nil, nil, 0, msgs, err
		}
	}
	valids, err := collect(KindValid, sendShares)
	if err != nil {
		return nil, nil, bytes, msgs, err
	}
	inAll := make(map[string]int, len(contributors))
	for _, ctl := range valids {
		for _, cellID := range ctl.cells {
			inAll[cellID]++
		}
	}
	final = final[:0]
	for _, cellID := range contributors {
		if inAll[cellID] == len(spec.Aggregators) {
			final = append(final, cellID)
		}
	}
	if len(final) == 0 {
		return final, nil, bytes, msgs, nil
	}

	// Round 3: finalize the common set, partial totals back, combine.
	sendFinalize := func(i int) error {
		return sendTo(i, KindFinalize, &control{
			queryID: spec.ID, aggID: spec.Aggregators[i], replyTo: co.cfg.ID, cells: final,
		})
	}
	for i := range spec.Aggregators {
		if err := sendFinalize(i); err != nil {
			return nil, nil, bytes, msgs, err
		}
	}
	resendBoth := func(i int) error {
		// A lost shares batch surfaces here as a silent aggregator: resend
		// both idempotent requests so it can catch up within the window.
		if err := sendShares(i); err != nil {
			return err
		}
		return sendFinalize(i)
	}
	parts, err := collect(KindPartial, resendBoth)
	if err != nil {
		return nil, nil, bytes, msgs, err
	}
	partials = make([]*big.Int, 0, len(spec.Aggregators))
	for _, aggID := range spec.Aggregators {
		ctl := parts[aggID]
		if ctl == nil || len(ctl.partial) != shareFieldBytes {
			return nil, nil, bytes, msgs, ErrGatherIncomplete
		}
		partials = append(partials, new(big.Int).SetBytes(ctl.partial))
	}
	return final, partials, bytes, msgs, nil
}

// Query scatters the spec, pumps the given responders and aggregators, and
// gathers the release — the one-call path for in-process fleets (tests, the
// tccell demo). Distributed deployments call Scatter and Gather directly and
// let remote cells poll on their own schedule.
func (co *Coordinator) Query(spec Spec, responders []*Responder, aggs []*Aggregator) (*Result, error) {
	cells := make([]string, len(responders))
	for i, r := range responders {
		cells[i] = r.id
	}
	p, err := co.Scatter(spec, cells)
	if err != nil {
		return nil, err
	}
	for _, r := range responders {
		if _, err := r.Poll(16); err != nil {
			return nil, err
		}
	}
	return co.Gather(p, aggs)
}
