package core

import (
	"fmt"
	"time"

	"trustedcells/internal/audit"
	"trustedcells/internal/cloud"
	"trustedcells/internal/crypto"
	"trustedcells/internal/datamodel"
)

// IngestItem is one document of a batched ingest.
type IngestItem struct {
	Payload []byte
	Opts    IngestOptions
}

// sealedItem is the output of the sealing stage for one item. sealed lives in
// a pooled buffer (buf) until the batch has flushed it to the cloud and the
// local cache — both copy on put — after which IngestBatch recycles it.
type sealedItem struct {
	doc    *datamodel.Document
	sealed []byte
	buf    *[]byte
}

// IngestBatch acquires many payloads in one operation. Sealing — the AES
// envelope over each payload, the CPU hot path of ingestion — fans out across
// a bounded worker pool, and the resulting ciphertexts are flushed to the
// cloud through the batch API (one round-trip for the whole batch when the
// service supports it, see cloud.BatchService). The local cache, catalog and
// audit updates then apply in item order, so a batch is observationally
// equivalent to a sequence of Ingest calls.
//
// The batch fails as a unit before any upload: an error while sealing, or
// two items hashing to the same document ID, leaves the cell and the cloud
// untouched. Errors after that point mirror a sequence of Ingest calls: the
// documents committed before the failure are returned alongside the error,
// and already-uploaded blobs of uncommitted items are harmless (sealed,
// unreferenced) and garbage-collected by the next vault sync.
//
// IngestBatch is an owner operation.
func (c *Cell) IngestBatch(items []IngestItem) ([]*datamodel.Document, error) {
	if c.tee.Locked() {
		return nil, ErrNotOwner
	}
	if len(items) == 0 {
		return nil, nil
	}
	sealed, err := c.sealAll(items)
	// Recycle every pooled envelope once the batch settles: by then the cloud
	// and the cache hold their own copies of each committed item, and
	// uncommitted envelopes are no longer referenced.
	defer func() {
		for i := range sealed {
			sealBufs.Put(sealed[i].buf)
		}
	}()
	if err != nil {
		return nil, err
	}
	ids := make(map[string]int, len(sealed))
	for i, s := range sealed {
		if j, dup := ids[s.doc.ID]; dup {
			return nil, fmt.Errorf("core: ingest batch: items %d and %d are identical (document %s)", j, i, s.doc.ID)
		}
		ids[s.doc.ID] = i
	}

	if c.cloud != nil {
		puts := make([]cloud.BlobPut, len(sealed))
		for i, s := range sealed {
			puts[i] = cloud.BlobPut{Name: s.doc.BlobRef, Data: s.sealed}
		}
		if _, err := cloud.PutBlobsVia(c.cloud, puts); err != nil {
			return nil, fmt.Errorf("core: ingest batch: cloud put: %w", err)
		}
	}

	docs := make([]*datamodel.Document, 0, len(sealed))
	kb := keyBufs.Get()
	defer keyBufs.Put(kb)
	for _, s := range sealed {
		if err := c.cache.Put(appendPayloadKey((*kb)[:0], s.doc.ID), s.sealed); err != nil {
			return docs, fmt.Errorf("core: ingest batch: cache: %w", err)
		}
		if err := c.catalog.Add(s.doc); err != nil {
			return docs, fmt.Errorf("core: ingest batch: catalog: %w", err)
		}
		c.mirrorToReplica(s.doc)
		c.appendAudit(c.id, "ingest", s.doc.ID, audit.OutcomeAllowed, "owner ingest (batch)", "")
		docs = append(docs, s.doc.Clone())
	}
	return docs, nil
}

// sealAll runs the CPU-bound stage of IngestBatch: metadata construction, key
// derivation and envelope encryption for every item, spread over the shared
// bounded worker pool.
func (c *Cell) sealAll(items []IngestItem) ([]sealedItem, error) {
	now := c.clock() // one timestamp for the whole batch
	out := make([]sealedItem, len(items))
	errs := make([]error, len(items))
	parallelDo(len(items), maxCryptoWorkers, func(i int) {
		out[i], errs[i] = c.sealOne(items[i], now)
	})
	for _, err := range errs {
		if err != nil {
			for i := range out {
				sealBufs.Put(out[i].buf)
			}
			return nil, err
		}
	}
	return out, nil
}

// sealOne builds the document metadata and seals the payload of one item.
// It only reads immutable cell state (id, key hierarchy, clock value), so it
// is safe to run from many workers at once.
func (c *Cell) sealOne(item IngestItem, now time.Time) (sealedItem, error) {
	contentHash := crypto.HashString(item.Payload)
	doc := &datamodel.Document{
		ID:          datamodel.NewDocumentID(c.id, item.Opts.Type, contentHash),
		Owner:       c.id,
		Class:       item.Opts.Class,
		Type:        item.Opts.Type,
		Title:       item.Opts.Title,
		Keywords:    item.Opts.Keywords,
		Tags:        item.Opts.Tags,
		CreatedAt:   now,
		Size:        int64(len(item.Payload)),
		ContentHash: contentHash,
	}
	key := c.keys.DocumentKey(doc.ID)
	doc.KeyFingerprint = key.Fingerprint()
	scratch := keyBufs.Get()
	*scratch = appendAssociatedData(*scratch, c.id, doc.ID)
	sb := sealBufs.Get()
	sealed, err := crypto.SealTo(*sb, key, item.Payload, *scratch)
	keyBufs.Put(scratch)
	if err != nil {
		sealBufs.Put(sb)
		return sealedItem{}, fmt.Errorf("core: ingest batch: %w", err)
	}
	*sb = sealed
	doc.BlobRef = c.blobName(doc.ID)
	return sealedItem{doc: doc, sealed: sealed, buf: sb}, nil
}
