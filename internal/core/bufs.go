package core

// Pooled buffers of the cell's envelope hot paths. Every ingest and read
// historically allocated a fresh cache key ("payload/"+docID), a fresh
// associated-data string and a fresh envelope buffer per document; the pools
// below make those steady-state costs allocation-free. Safety rests on the
// stores' copy-on-write contract: cloud.Memory duplicates blob data on put
// and the KV memtable duplicates both key and value, so a pooled buffer may
// be recycled as soon as the call that shipped it returns (DESIGN.md §7).

import "trustedcells/internal/crypto"

// sealBufs recycles envelope-sized buffers: sealed output on ingest, decrypted
// plaintext on batch aggregates.
var sealBufs crypto.BufPool

// keyBufs recycles the small scratch buffers of cache keys and associated
// data.
var keyBufs crypto.BufPool

// appendPayloadKey appends the local-cache key of a document payload.
func appendPayloadKey(dst []byte, docID string) []byte {
	return append(append(dst, "payload/"...), docID...)
}

// appendAssociatedData appends the associated data binding a sealed payload
// to its owner and document — the append-style twin of the seed's
// associatedData helper.
func appendAssociatedData(dst []byte, owner, docID string) []byte {
	dst = append(dst, "doc:"...)
	dst = append(dst, owner...)
	dst = append(dst, ':')
	return append(dst, docID...)
}

// matchesAssociatedData reports whether ad equals the associated data of
// (owner, docID) without materializing it.
func matchesAssociatedData(ad []byte, owner, docID string) bool {
	if len(ad) != len("doc:")+len(owner)+1+len(docID) {
		return false
	}
	if string(ad[:4]) != "doc:" {
		return false
	}
	if string(ad[4:4+len(owner)]) != owner {
		return false
	}
	if ad[4+len(owner)] != ':' {
		return false
	}
	return string(ad[4+len(owner)+1:]) == docID
}
