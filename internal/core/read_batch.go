package core

// This file is the read-side counterpart of ingest_batch.go. The seed read
// path paid one cloud round-trip per document whose payload was not cached
// locally — the exact asymmetry IngestBatch removed from the write side.
// ReadBatch and AggregateBatch gate every document through the reference
// monitor individually, fetch all missing sealed payloads in ONE batched
// cloud exchange (cloud.GetBlobsVia), warm the local cache with what came
// back, and spread decryption over the shared bounded worker pool.

import (
	"fmt"
	"time"

	"trustedcells/internal/audit"
	"trustedcells/internal/cloud"
	"trustedcells/internal/datamodel"
	"trustedcells/internal/policy"
	"trustedcells/internal/timeseries"
)

// ReadResult is the outcome for one document of a ReadBatch call.
type ReadResult struct {
	DocID   string
	Payload []byte
	// Err mirrors what the equivalent Cell.Read call would have returned
	// (access denial, integrity failure, missing payload, ...).
	Err error
}

// AggregateResult is the outcome for one document of an AggregateBatch call.
type AggregateResult struct {
	DocID  string
	Series *timeseries.Series
	Err    error
}

// ReadBatch reads many documents for one subject through a staged pipeline:
// policy and usage control are evaluated per document (exactly as Cell.Read,
// every attempt audited), the sealed payloads missing from the local cache
// are fetched from the cloud in a single batched round-trip, and decryption
// fans out across the bounded worker pool. Results come back in argument
// order, one per requested document; a per-document failure never aborts its
// siblings.
func (c *Cell) ReadBatch(subjectID string, docIDs []string, ctx AccessContext) []ReadResult {
	results := make([]ReadResult, len(docIDs))
	gates := make([]*readGate, len(docIDs))
	fetch := make([]*datamodel.Document, 0, len(docIDs))
	// Repeated IDs are deferred to the sequential path after the batch
	// settles: gating a duplicate before the first occurrence's session has
	// closed would let it slip past usage caps like MaxUses. The batch warms
	// the cache, so the deferred reads cost no extra round-trip.
	var dups []int
	seen := make(map[string]bool, len(docIDs))
	for i, id := range docIDs {
		results[i].DocID = id
		if seen[id] {
			dups = append(dups, i)
			continue
		}
		seen[id] = true
		g, err := c.gateRead(subjectID, id, ctx)
		if err != nil {
			results[i].Err = err
			continue
		}
		gates[i] = g
		fetch = append(fetch, g.doc)
	}

	sealed, fromCloud, fetchErrs := c.fetchSealedBatch(fetch)

	plains := make([][]byte, len(docIDs))
	openErrs := make([]error, len(docIDs))
	parallelDo(len(docIDs), maxCryptoWorkers, func(i int) {
		g := gates[i]
		if g == nil {
			return
		}
		if err := fetchErrs[g.doc.ID]; err != nil {
			openErrs[i] = err
			return
		}
		plains[i], openErrs[i] = c.openSealed(g.doc, g.key, g.owner, sealed[g.doc.ID])
		if openErrs[i] == nil && fromCloud[g.doc.ID] {
			c.warmCache(g.doc.ID, sealed[g.doc.ID])
		}
	})

	// Settle in argument order so obligations and audit records appear as if
	// the documents had been read one after the other.
	for i := range docIDs {
		if gates[i] == nil {
			continue
		}
		results[i].Payload, results[i].Err = c.settleRead(subjectID, gates[i], plains[i], openErrs[i])
	}
	for _, i := range dups {
		results[i].Payload, results[i].Err = c.Read(subjectID, docIDs[i], ctx)
	}
	return results
}

// AggregateBatch evaluates the same aggregate over many series documents:
// per-document policy and granularity-cap checks (exactly as Cell.Aggregate),
// one batched cloud exchange for every payload missing from the cache, then
// decrypt + decode + downsample across the worker pool. Results come back in
// argument order.
func (c *Cell) AggregateBatch(subjectID string, docIDs []string, g timeseries.Granularity, kind timeseries.AggregateKind, ctx AccessContext) []AggregateResult {
	results := make([]AggregateResult, len(docIDs))
	gates := make([]*readGate, len(docIDs))
	fetch := make([]*datamodel.Document, 0, len(docIDs))
	for i, id := range docIDs {
		results[i].DocID = id
		gate, err := c.gateAggregate(subjectID, id, g, ctx)
		if err != nil {
			results[i].Err = err
			continue
		}
		gates[i] = gate
		fetch = append(fetch, gate.doc)
	}

	sealed, fromCloud, fetchErrs := c.fetchSealedBatch(fetch)

	type outcome struct {
		series  *timeseries.Series
		openErr error // fetch/decrypt failures, audited as errors
		err     error // decode/downsample failures, returned unaudited as in Aggregate
	}
	outs := make([]outcome, len(docIDs))
	parallelDo(len(docIDs), maxCryptoWorkers, func(i int) {
		gate := gates[i]
		if gate == nil {
			return
		}
		if err := fetchErrs[gate.doc.ID]; err != nil {
			outs[i].openErr = err
			return
		}
		// The plaintext only lives until decodeSeries copies the points out,
		// so it decrypts into a pooled buffer and costs no allocation.
		pb := sealBufs.Get()
		defer sealBufs.Put(pb)
		plain, err := c.openSealedTo(*pb, gate.doc, gate.key, gate.owner, sealed[gate.doc.ID])
		if err != nil {
			outs[i].openErr = err
			return
		}
		*pb = plain
		if fromCloud[gate.doc.ID] {
			c.warmCache(gate.doc.ID, sealed[gate.doc.ID])
		}
		series, err := decodeSeries(plain)
		if err != nil {
			outs[i].err = err
			return
		}
		down, err := series.DownsampleSeries(g, kind)
		if err != nil {
			outs[i].err = fmt.Errorf("core: aggregate: %w", err)
			return
		}
		outs[i].series = down
	})

	for i := range docIDs {
		gate := gates[i]
		if gate == nil {
			continue
		}
		switch {
		case outs[i].openErr != nil:
			c.appendAudit(subjectID, string(policy.ActionAggregate), gate.doc.ID, audit.OutcomeError,
				outs[i].openErr.Error(), gate.originator)
			results[i].Err = outs[i].openErr
		case outs[i].err != nil:
			results[i].Err = outs[i].err
		default:
			c.appendAudit(subjectID, string(policy.ActionAggregate), gate.doc.ID, audit.OutcomeAllowed,
				fmt.Sprintf("granularity=%v rule=%s", time.Duration(g), gate.decision.RuleID), gate.originator)
			results[i].Series = outs[i].series
		}
	}
	return results
}

// fetchSealedBatch returns the sealed payloads of docs keyed by document ID,
// looking in the local cache first and fetching every miss from the cloud in
// a single batched round-trip. fromCloud marks the IDs the cloud served, so
// the open stage can warm the cache once each envelope verifies — an
// unverified payload is never cached, keeping a tampering provider from
// poisoning the local copy. Per-document failures land in the errs map; a
// document appears in exactly one of sealed and errs.
func (c *Cell) fetchSealedBatch(docs []*datamodel.Document) (sealed map[string][]byte, fromCloud map[string]bool, errs map[string]error) {
	sealed = make(map[string][]byte, len(docs))
	fromCloud = make(map[string]bool)
	errs = make(map[string]error)
	var missing []*datamodel.Document
	queued := make(map[string]bool)
	kb := keyBufs.Get()
	defer keyBufs.Put(kb)
	for _, d := range docs {
		if _, done := sealed[d.ID]; done || queued[d.ID] {
			continue
		}
		if b, err := c.cache.Get(appendPayloadKey((*kb)[:0], d.ID)); err == nil {
			sealed[d.ID] = b
			continue
		}
		queued[d.ID] = true
		missing = append(missing, d)
	}
	if len(missing) == 0 {
		return sealed, fromCloud, errs
	}
	if c.cloud == nil {
		for _, d := range missing {
			errs[d.ID] = fmt.Errorf("core: payload of %s unavailable: no cloud and no cache", d.ID)
		}
		return sealed, fromCloud, errs
	}
	names := make([]string, len(missing))
	for i, d := range missing {
		names[i] = d.BlobRef
	}
	blobs, err := cloud.GetBlobsVia(c.cloud, names)
	if err != nil {
		for _, d := range missing {
			errs[d.ID] = fmt.Errorf("core: fetching %s: %w", d.ID, err)
		}
		return sealed, fromCloud, errs
	}
	for i, d := range missing {
		if blobs[i].Version == 0 {
			errs[d.ID] = fmt.Errorf("core: fetching %s: %w", d.ID, cloud.ErrBlobNotFound)
			continue
		}
		sealed[d.ID] = blobs[i].Data
		fromCloud[d.ID] = true
	}
	return sealed, fromCloud, errs
}
