package core

import (
	"encoding/json"
	"errors"
	"fmt"

	"trustedcells/internal/audit"
	"trustedcells/internal/cloud"
	"trustedcells/internal/crypto"
	"trustedcells/internal/datamodel"
)

// The usage-control challenges of the paper sketch a distinctive inter-cell
// workflow: "trusted cells could be parameterized so that any personal data
// produced by a trusted source linked to an individual A and referencing
// individual B be submitted for approbation to B's trusted cell before being
// integrated to A's digital space" (the photo-blurring scenario of the
// introduction is the same mechanism). This file implements that approbation
// protocol: A's cell sends an approval request describing the data to B's
// cell through the cloud; B's owner (or an automatic policy on B's cell)
// answers; A's cell refuses to integrate the data until the approval arrived.

// Errors returned by the approval workflow.
var (
	ErrApprovalRequired = errors.New("core: referenced party has not approved this data")
	ErrApprovalRejected = errors.New("core: referenced party rejected this data")
	ErrUnknownApproval  = errors.New("core: unknown approval request")
)

// ApprovalStatus is the state of an approval request.
type ApprovalStatus int

// Approval states.
const (
	ApprovalPending ApprovalStatus = iota
	ApprovalGranted
	ApprovalRejected
)

// String names the status.
func (s ApprovalStatus) String() string {
	switch s {
	case ApprovalPending:
		return "pending"
	case ApprovalGranted:
		return "granted"
	case ApprovalRejected:
		return "rejected"
	default:
		return fmt.Sprintf("approval(%d)", int(s))
	}
}

// ApprovalRequest describes data referencing another individual, awaiting
// that individual's approbation.
type ApprovalRequest struct {
	ID          string `json:"id"`
	From        string `json:"from"`
	To          string `json:"to"`
	Description string `json:"description"`
	DocType     string `json:"doc_type"`
	ContentHash string `json:"content_hash"`
}

// approvalResponse is the wire answer.
type approvalResponse struct {
	RequestID string `json:"request_id"`
	Approved  bool   `json:"approved"`
	Reason    string `json:"reason"`
}

// approvalKey derives the symmetric key protecting approval traffic between
// the two paired cells.
func approvalKey(pairing crypto.SymmetricKey, a, b string) crypto.SymmetricKey {
	// Canonical ordering so both sides derive the same key.
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	return crypto.DeriveKey(pairing, "approval", lo+"|"+hi)
}

// RequestApproval asks the referenced party's cell to approve data described
// by (description, docType, contentHash) before it is integrated. The request
// travels sealed under the pairing key. It returns the request ID to pass to
// IngestReferencing later.
func (c *Cell) RequestApproval(referencedParty, description, docType string, payload []byte) (string, error) {
	if c.tee.Locked() {
		return "", ErrNotOwner
	}
	if c.cloud == nil {
		return "", ErrNoCloud
	}
	contentHash := crypto.HashString(payload)
	req := ApprovalRequest{
		ID:          "appr-" + crypto.HashString([]byte(c.id + referencedParty + contentHash))[:16],
		From:        c.id,
		To:          referencedParty,
		Description: description,
		DocType:     docType,
		ContentHash: contentHash,
	}
	plain, err := json.Marshal(req)
	if err != nil {
		return "", err
	}
	var sealed []byte
	err = c.pairingKey(referencedParty, func(pk crypto.SymmetricKey) error {
		var serr error
		sealed, serr = crypto.Seal(approvalKey(pk, c.id, referencedParty), plain, []byte("approval-request"))
		return serr
	})
	if err != nil {
		return "", err
	}
	if err := c.cloud.Send(cloud.Message{From: c.id, To: referencedParty, Kind: "approval-request", Body: sealed}); err != nil {
		return "", fmt.Errorf("core: approval request: %w", err)
	}
	c.mu.Lock()
	if c.approvalStatus == nil {
		c.approvalStatus = make(map[string]ApprovalStatus)
	}
	c.approvalStatus[req.ID] = ApprovalPending
	if c.approvalHash == nil {
		c.approvalHash = make(map[string]string)
	}
	c.approvalHash[req.ID] = contentHash
	c.mu.Unlock()
	c.appendAudit(c.id, "request-approval", req.ID, audit.OutcomeAllowed,
		fmt.Sprintf("awaiting approbation from %s", referencedParty), referencedParty)
	return req.ID, nil
}

// handleApprovalRequest processes an incoming approbation request on the
// referenced party's cell.
func (c *Cell) handleApprovalRequest(from string, body []byte) error {
	var req ApprovalRequest
	err := c.pairingKey(from, func(pk crypto.SymmetricKey) error {
		plain, ad, oerr := crypto.Open(approvalKey(pk, from, c.id), body)
		if oerr != nil {
			return oerr
		}
		if string(ad) != "approval-request" {
			return fmt.Errorf("core: unexpected approval envelope")
		}
		return json.Unmarshal(plain, &req)
	})
	if err != nil {
		return err
	}
	if req.To != c.id {
		return fmt.Errorf("core: approval request addressed to %s", req.To)
	}
	c.mu.Lock()
	if c.incomingApprovals == nil {
		c.incomingApprovals = make(map[string]ApprovalRequest)
	}
	c.incomingApprovals[req.ID] = req
	c.mu.Unlock()
	c.appendAudit(from, "approval-request", req.ID, audit.OutcomeAllowed, req.Description, "")
	return nil
}

// PendingApprovals lists approbation requests awaiting this owner's decision.
func (c *Cell) PendingApprovals() []ApprovalRequest {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]ApprovalRequest, 0, len(c.incomingApprovals))
	for _, r := range c.incomingApprovals {
		out = append(out, r)
	}
	return out
}

// RespondApproval answers an incoming approbation request (owner operation on
// the referenced party's cell) and notifies the requesting cell.
func (c *Cell) RespondApproval(requestID string, approve bool, reason string) error {
	if c.tee.Locked() {
		return ErrNotOwner
	}
	if c.cloud == nil {
		return ErrNoCloud
	}
	c.mu.Lock()
	req, ok := c.incomingApprovals[requestID]
	if ok {
		delete(c.incomingApprovals, requestID)
	}
	c.mu.Unlock()
	if !ok {
		return ErrUnknownApproval
	}
	resp := approvalResponse{RequestID: requestID, Approved: approve, Reason: reason}
	plain, err := json.Marshal(resp)
	if err != nil {
		return err
	}
	var sealed []byte
	err = c.pairingKey(req.From, func(pk crypto.SymmetricKey) error {
		var serr error
		sealed, serr = crypto.Seal(approvalKey(pk, c.id, req.From), plain, []byte("approval-response"))
		return serr
	})
	if err != nil {
		return err
	}
	if err := c.cloud.Send(cloud.Message{From: c.id, To: req.From, Kind: "approval-response", Body: sealed}); err != nil {
		return fmt.Errorf("core: approval response: %w", err)
	}
	outcome := audit.OutcomeAllowed
	if !approve {
		outcome = audit.OutcomeDenied
	}
	c.appendAudit(c.id, "respond-approval", requestID, outcome, reason, req.From)
	return nil
}

// handleApprovalResponse records the referenced party's decision on the
// requesting cell.
func (c *Cell) handleApprovalResponse(from string, body []byte) error {
	var resp approvalResponse
	err := c.pairingKey(from, func(pk crypto.SymmetricKey) error {
		plain, ad, oerr := crypto.Open(approvalKey(pk, from, c.id), body)
		if oerr != nil {
			return oerr
		}
		if string(ad) != "approval-response" {
			return fmt.Errorf("core: unexpected approval envelope")
		}
		return json.Unmarshal(plain, &resp)
	})
	if err != nil {
		return err
	}
	c.mu.Lock()
	if c.approvalStatus == nil {
		c.approvalStatus = make(map[string]ApprovalStatus)
	}
	if _, known := c.approvalStatus[resp.RequestID]; !known {
		c.mu.Unlock()
		return ErrUnknownApproval
	}
	if resp.Approved {
		c.approvalStatus[resp.RequestID] = ApprovalGranted
	} else {
		c.approvalStatus[resp.RequestID] = ApprovalRejected
	}
	c.mu.Unlock()
	outcome := audit.OutcomeAllowed
	if !resp.Approved {
		outcome = audit.OutcomeDenied
	}
	c.appendAudit(from, "approval-response", resp.RequestID, outcome, resp.Reason, "")
	return nil
}

// ApprovalStatusOf reports the current state of an outgoing approval request.
func (c *Cell) ApprovalStatusOf(requestID string) (ApprovalStatus, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.approvalStatus[requestID]
	if !ok {
		return ApprovalPending, ErrUnknownApproval
	}
	return st, nil
}

// IngestReferencing integrates data that references another individual. It
// refuses to do so until that individual's cell granted the corresponding
// approval request (matched by request ID and content hash).
func (c *Cell) IngestReferencing(payload []byte, opts IngestOptions, approvalID string) (*datamodel.Document, error) {
	c.mu.Lock()
	status, known := c.approvalStatus[approvalID]
	expectedHash := c.approvalHash[approvalID]
	c.mu.Unlock()
	if !known {
		return nil, ErrUnknownApproval
	}
	if expectedHash != crypto.HashString(payload) {
		return nil, fmt.Errorf("%w: payload differs from the approved content", ErrApprovalRequired)
	}
	switch status {
	case ApprovalGranted:
		return c.Ingest(payload, opts)
	case ApprovalRejected:
		return nil, ErrApprovalRejected
	default:
		return nil, ErrApprovalRequired
	}
}
