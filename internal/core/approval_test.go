package core

import (
	"errors"
	"testing"

	"trustedcells/internal/cloud"
	"trustedcells/internal/datamodel"
)

// setupApprovalPeers returns Alice's and Bob's paired cells on a shared cloud.
func setupApprovalPeers(t *testing.T) (*Cell, *Cell) {
	t.Helper()
	svc := cloud.NewMemory()
	alice := newTestCell(t, "alice-phone", svc)
	bob := newTestCell(t, "bob-phone", svc)
	pairCells(t, alice, bob)
	return alice, bob
}

func TestApprovalGrantedFlow(t *testing.T) {
	alice, bob := setupApprovalPeers(t)
	photo := []byte("group photo with Bob in the frame")

	// Alice's camera cell asks Bob's cell before integrating the photo.
	reqID, err := alice.RequestApproval("bob-phone", "photo taken at the park, Bob in frame", "photo", photo)
	if err != nil {
		t.Fatalf("RequestApproval: %v", err)
	}
	if st, _ := alice.ApprovalStatusOf(reqID); st != ApprovalPending {
		t.Fatalf("status = %v", st)
	}
	// Cannot integrate before Bob answers.
	if _, err := alice.IngestReferencing(photo, IngestOptions{Type: "photo", Class: datamodel.ClassAuthored}, reqID); !errors.Is(err, ErrApprovalRequired) {
		t.Fatalf("ingest before approval: %v", err)
	}

	// Bob receives the request and approves it.
	sum, err := bob.ProcessInbox()
	if err != nil || sum.ApprovalRequests != 1 {
		t.Fatalf("bob inbox: %+v %v", sum, err)
	}
	pending := bob.PendingApprovals()
	if len(pending) != 1 || pending[0].From != "alice-phone" || pending[0].DocType != "photo" {
		t.Fatalf("pending approvals %+v", pending)
	}
	if err := bob.RespondApproval(pending[0].ID, true, "fine by me"); err != nil {
		t.Fatalf("RespondApproval: %v", err)
	}

	// Alice learns of the decision and can now integrate the photo.
	sum, err = alice.ProcessInbox()
	if err != nil || sum.ApprovalResponses != 1 {
		t.Fatalf("alice inbox: %+v %v", sum, err)
	}
	if st, _ := alice.ApprovalStatusOf(reqID); st != ApprovalGranted {
		t.Fatalf("status after grant = %v", st)
	}
	doc, err := alice.IngestReferencing(photo, IngestOptions{Type: "photo", Class: datamodel.ClassAuthored, Title: "park"}, reqID)
	if err != nil {
		t.Fatalf("IngestReferencing: %v", err)
	}
	if doc.Owner != "alice-phone" {
		t.Fatalf("doc %+v", doc)
	}
}

func TestApprovalRejectedFlow(t *testing.T) {
	alice, bob := setupApprovalPeers(t)
	payload := []byte("embarrassing karaoke video")
	reqID, err := alice.RequestApproval("bob-phone", "karaoke video", "video", payload)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bob.ProcessInbox(); err != nil {
		t.Fatal(err)
	}
	pending := bob.PendingApprovals()
	if err := bob.RespondApproval(pending[0].ID, false, "please delete this"); err != nil {
		t.Fatal(err)
	}
	if _, err := alice.ProcessInbox(); err != nil {
		t.Fatal(err)
	}
	if st, _ := alice.ApprovalStatusOf(reqID); st != ApprovalRejected {
		t.Fatalf("status = %v", st)
	}
	if _, err := alice.IngestReferencing(payload, IngestOptions{Type: "video", Class: datamodel.ClassAuthored}, reqID); !errors.Is(err, ErrApprovalRejected) {
		t.Fatalf("ingest after rejection: %v", err)
	}
	if ApprovalRejected.String() != "rejected" || ApprovalGranted.String() != "granted" || ApprovalPending.String() != "pending" {
		t.Fatal("approval status names wrong")
	}
}

func TestApprovalPayloadSubstitutionBlocked(t *testing.T) {
	alice, bob := setupApprovalPeers(t)
	approved := []byte("innocent photo")
	reqID, _ := alice.RequestApproval("bob-phone", "photo", "photo", approved)
	_, _ = bob.ProcessInbox()
	pending := bob.PendingApprovals()
	_ = bob.RespondApproval(pending[0].ID, true, "ok")
	_, _ = alice.ProcessInbox()
	// Alice tries to integrate a different payload under the same approval.
	if _, err := alice.IngestReferencing([]byte("different content"), IngestOptions{Type: "photo", Class: datamodel.ClassAuthored}, reqID); !errors.Is(err, ErrApprovalRequired) {
		t.Fatalf("substituted payload accepted: %v", err)
	}
}

func TestApprovalErrorsAndGuards(t *testing.T) {
	alice, bob := setupApprovalPeers(t)
	// Unknown request IDs.
	if _, err := alice.ApprovalStatusOf("nope"); !errors.Is(err, ErrUnknownApproval) {
		t.Fatalf("ApprovalStatusOf: %v", err)
	}
	if err := bob.RespondApproval("nope", true, ""); !errors.Is(err, ErrUnknownApproval) {
		t.Fatalf("RespondApproval unknown: %v", err)
	}
	if _, err := alice.IngestReferencing([]byte("x"), IngestOptions{Type: "t", Class: datamodel.ClassAuthored}, "nope"); !errors.Is(err, ErrUnknownApproval) {
		t.Fatalf("IngestReferencing unknown: %v", err)
	}
	// Requests to unpaired parties fail.
	if _, err := alice.RequestApproval("stranger", "d", "t", []byte("x")); !errors.Is(err, ErrNotPaired) {
		t.Fatalf("RequestApproval unpaired: %v", err)
	}
	// Owner operations require an unlocked TEE.
	alice.TEE().Lock()
	if _, err := alice.RequestApproval("bob-phone", "d", "t", []byte("x")); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("RequestApproval locked: %v", err)
	}
	if err := alice.RespondApproval("id", true, ""); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("RespondApproval locked: %v", err)
	}
}
