package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"trustedcells/internal/cloud"
	"trustedcells/internal/datamodel"
	"trustedcells/internal/policy"
	"trustedcells/internal/tamper"
)

func newBatchTestCell(t *testing.T, svc cloud.Service) *Cell {
	t.Helper()
	cell, err := New(Config{ID: "batch-cell", Class: tamper.ClassHomeGateway,
		Cloud: svc, Seed: []byte("batch-cell")})
	if err != nil {
		t.Fatal(err)
	}
	if err := cell.AddRule(policy.Rule{ID: "owner", Effect: policy.EffectAllow,
		SubjectIDs: []string{"owner"}, Actions: []policy.Action{policy.ActionRead}}); err != nil {
		t.Fatal(err)
	}
	return cell
}

func TestIngestBatchMatchesIngest(t *testing.T) {
	svc := cloud.NewMemory()
	cell := newBatchTestCell(t, svc)

	items := make([]IngestItem, 10)
	for i := range items {
		items[i] = IngestItem{
			Payload: []byte(fmt.Sprintf("payload-%02d", i)),
			Opts:    IngestOptions{Class: datamodel.ClassAuthored, Type: "note", Title: fmt.Sprintf("n%d", i)},
		}
	}
	docs, err := cell.IngestBatch(items)
	if err != nil {
		t.Fatalf("IngestBatch: %v", err)
	}
	if len(docs) != len(items) {
		t.Fatalf("docs = %d", len(docs))
	}
	if cell.Catalog().Len() != len(items) {
		t.Fatalf("catalog = %d", cell.Catalog().Len())
	}
	for i, doc := range docs {
		// Batched documents read back through the reference monitor exactly
		// like individually ingested ones.
		plain, err := cell.Read("owner", doc.ID, AccessContext{})
		if err != nil {
			t.Fatalf("read %s: %v", doc.ID, err)
		}
		if !bytes.Equal(plain, items[i].Payload) {
			t.Fatalf("payload %d round-trip: %q", i, plain)
		}
		// The sealed blob reached the cloud vault under the document's ref.
		if _, err := svc.GetBlob(doc.BlobRef); err != nil {
			t.Fatalf("cloud blob %s: %v", doc.BlobRef, err)
		}
	}
	if got := int64(len(items)); svc.Stats().Puts != got {
		t.Fatalf("cloud puts = %d, want %d", svc.Stats().Puts, got)
	}
	// Every item is individually audited.
	records := cell.AuditLog().Records()
	ingests := 0
	for _, r := range records {
		if r.Action == "ingest" {
			ingests++
		}
	}
	if ingests < len(items) {
		t.Fatalf("audit records = %d", ingests)
	}
}

func TestIngestBatchRejectsDuplicateItems(t *testing.T) {
	svc := cloud.NewMemory()
	cell := newBatchTestCell(t, svc)
	same := IngestItem{Payload: []byte("twin"), Opts: IngestOptions{Class: datamodel.ClassAuthored, Type: "note"}}
	docs, err := cell.IngestBatch([]IngestItem{same, same})
	if err == nil {
		t.Fatal("identical items must fail the batch")
	}
	if len(docs) != 0 {
		t.Fatalf("no documents should commit: %v", docs)
	}
	// The failure happened before any upload or local commit.
	if cell.Catalog().Len() != 0 || svc.Stats().Puts != 0 {
		t.Fatalf("batch was partially applied: catalog=%d puts=%d", cell.Catalog().Len(), svc.Stats().Puts)
	}
}

func TestIngestBatchEmptyAndLocked(t *testing.T) {
	cell := newBatchTestCell(t, cloud.NewMemory())
	docs, err := cell.IngestBatch(nil)
	if err != nil || docs != nil {
		t.Fatalf("empty batch: %v %v", docs, err)
	}
	cell.TEE().Lock()
	if _, err := cell.IngestBatch([]IngestItem{{Payload: []byte("x")}}); err != ErrNotOwner {
		t.Fatalf("locked cell must refuse batched ingest: %v", err)
	}
}

// countingBatchService records how many batch uploads it served, proving the
// cell prefers the batch API when the cloud offers it.
type countingBatchService struct {
	*cloud.Memory
	mu         sync.Mutex
	batchCalls int
}

func (c *countingBatchService) PutBlobs(puts []cloud.BlobPut) ([]int, error) {
	c.mu.Lock()
	c.batchCalls++
	c.mu.Unlock()
	return c.Memory.PutBlobs(puts)
}

func TestIngestBatchUsesBatchAPI(t *testing.T) {
	svc := &countingBatchService{Memory: cloud.NewMemory()}
	cell, err := New(Config{ID: "batch-cell", Class: tamper.ClassHomeGateway,
		Cloud: svc, Seed: []byte("batch-cell")})
	if err != nil {
		t.Fatal(err)
	}
	items := make([]IngestItem, 6)
	for i := range items {
		items[i] = IngestItem{Payload: []byte(fmt.Sprintf("p%d", i)),
			Opts: IngestOptions{Class: datamodel.ClassAuthored, Type: "note"}}
	}
	if _, err := cell.IngestBatch(items); err != nil {
		t.Fatal(err)
	}
	if svc.batchCalls != 1 {
		t.Fatalf("batch uploads = %d, want 1", svc.batchCalls)
	}
}

// TestIngestBatchConcurrentStress runs batched and individual ingests on the
// same cell from many goroutines; under -race it is the regression test for
// the parallel sealing pool sharing the cell's substrates.
func TestIngestBatchConcurrentStress(t *testing.T) {
	svc := cloud.NewMemory()
	cell := newBatchTestCell(t, svc)
	const (
		workers  = 8
		perBatch = 8
		batches  = 3
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				items := make([]IngestItem, perBatch)
				for i := range items {
					items[i] = IngestItem{
						Payload: []byte(fmt.Sprintf("w%02d-b%02d-i%02d", w, b, i)),
						Opts:    IngestOptions{Class: datamodel.ClassSensed, Type: "reading"},
					}
				}
				if _, err := cell.IngestBatch(items); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				// Interleave a single ingest to mix both paths.
				if _, err := cell.Ingest([]byte(fmt.Sprintf("solo-w%02d-b%02d", w, b)),
					IngestOptions{Class: datamodel.ClassAuthored, Type: "note"}); err != nil {
					t.Errorf("worker %d solo: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	want := workers * batches * (perBatch + 1)
	if got := cell.Catalog().Len(); got != want {
		t.Fatalf("catalog = %d, want %d", got, want)
	}
	// Spot-check a few documents end to end.
	docs, err := cell.Search(datamodel.Query{})
	if err != nil {
		t.Fatal(err)
	}
	for _, doc := range docs[:10] {
		if _, err := cell.Read("owner", doc.ID, AccessContext{}); err != nil {
			t.Fatalf("read-back %s: %v", doc.ID, err)
		}
	}
}
