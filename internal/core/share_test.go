package core

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"trustedcells/internal/audit"
	"trustedcells/internal/cloud"
	"trustedcells/internal/datamodel"
	"trustedcells/internal/policy"
	"trustedcells/internal/tamper"
)

// pairCells installs a fresh pairing secret on both cells.
func pairCells(t *testing.T, a, b *Cell) {
	t.Helper()
	secret, err := NewPairingSecret()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Pair(b.ID(), secret); err != nil {
		t.Fatalf("Pair %s->%s: %v", a.ID(), b.ID(), err)
	}
	if err := b.Pair(a.ID(), secret); err != nil {
		t.Fatalf("Pair %s->%s: %v", b.ID(), a.ID(), err)
	}
}

func TestShareEndToEnd(t *testing.T) {
	svc := cloud.NewMemory()
	alice := newTestCell(t, "alice-gw", svc)
	bob := newTestCell(t, "bob-phone", svc)
	pairCells(t, alice, bob)

	payload := []byte("holiday photo (3 MB of pixels, abridged)")
	doc, err := alice.Ingest(payload, IngestOptions{Type: "photo", Class: datamodel.ClassAuthored,
		Title: "Holiday photo", Keywords: []string{"holiday"}})
	if err != nil {
		t.Fatal(err)
	}
	err = alice.Share(doc.ID, "bob-phone", ShareOptions{
		MaxUses:     2,
		NotAfter:    testTime.Add(30 * 24 * time.Hour),
		NotifyOwner: true,
	})
	if err != nil {
		t.Fatalf("Share: %v", err)
	}
	summary, err := bob.ProcessInbox()
	if err != nil {
		t.Fatalf("ProcessInbox: %v", err)
	}
	if summary.OffersAccepted != 1 || summary.OffersRejected != 0 {
		t.Fatalf("inbox summary %+v", summary)
	}
	if got := bob.SharedWithMe(); len(got) != 1 || got[0] != doc.ID {
		t.Fatalf("SharedWithMe = %v", got)
	}
	// Bob (the recipient cell's owner) reads the shared document; the sticky
	// policy installed the allow rule for subject "bob-phone".
	got, err := bob.Read("bob-phone", doc.ID, AccessContext{})
	if err != nil {
		t.Fatalf("Read shared: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("shared payload differs")
	}
	// Carol, unknown to the sticky policy, is denied on Bob's cell.
	if _, err := bob.Read("carol", doc.ID, AccessContext{}); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("carol read on recipient cell: %v", err)
	}
	// Second read allowed, third exhausts MaxUses=2.
	if _, err := bob.Read("bob-phone", doc.ID, AccessContext{}); err != nil {
		t.Fatalf("second read: %v", err)
	}
	if _, err := bob.Read("bob-phone", doc.ID, AccessContext{}); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("third read should be denied: %v", err)
	}
	// Accountability: Alice receives audit segments describing Bob's usage.
	aliceSummary, err := alice.ProcessInbox()
	if err != nil {
		t.Fatalf("alice ProcessInbox: %v", err)
	}
	if aliceSummary.AuditSegments == 0 || len(aliceSummary.AuditRecords) == 0 {
		t.Fatalf("no accountability records reached the originator: %+v", aliceSummary)
	}
	foundRead := false
	for _, r := range aliceSummary.AuditRecords {
		if r.Resource == doc.ID && r.Outcome == audit.OutcomeAllowed {
			foundRead = true
		}
	}
	if !foundRead {
		t.Fatal("audit segment does not mention the shared document access")
	}
}

func TestShareRequiresPairingAndCloud(t *testing.T) {
	svc := cloud.NewMemory()
	alice := newTestCell(t, "alice-gw", svc)
	doc, _ := alice.Ingest([]byte("x"), IngestOptions{Type: "note", Class: datamodel.ClassAuthored})
	if err := alice.Share(doc.ID, "bob-phone", ShareOptions{}); !errors.Is(err, ErrNotPaired) {
		t.Fatalf("share without pairing: %v", err)
	}
	if err := alice.Share("missing-doc", "bob-phone", ShareOptions{}); !errors.Is(err, ErrUnknownDocument) {
		t.Fatalf("share of unknown doc: %v", err)
	}
	offline, _ := New(Config{ID: "offline", Class: tamper.ClassSecureToken, Seed: []byte("s"), Clock: fixedClock()})
	if err := offline.Share("any", "peer", ShareOptions{}); !errors.Is(err, ErrNoCloud) {
		t.Fatalf("share without cloud: %v", err)
	}
	if _, err := offline.ProcessInbox(); !errors.Is(err, ErrNoCloud) {
		t.Fatalf("inbox without cloud: %v", err)
	}
	alice.TEE().Lock()
	if err := alice.Share(doc.ID, "bob-phone", ShareOptions{}); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("share while locked: %v", err)
	}
}

func TestShareDenyRuleBlocksSharing(t *testing.T) {
	svc := cloud.NewMemory()
	alice := newTestCell(t, "alice-gw", svc)
	bob := newTestCell(t, "bob-phone", svc)
	pairCells(t, alice, bob)
	doc, _ := alice.Ingest([]byte("raw 1Hz feed"), IngestOptions{Type: SeriesDocType,
		Class: datamodel.ClassSensed, Tags: map[string]string{"raw": "true"}})
	_ = alice.AddRule(policy.Rule{ID: "never-share-raw", Effect: policy.EffectDeny,
		Actions:  []policy.Action{policy.ActionShare},
		Resource: policy.Resource{Tags: map[string]string{"raw": "true"}}})
	if err := alice.Share(doc.ID, "bob-phone", ShareOptions{}); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("deny rule did not block sharing: %v", err)
	}
}

func TestTamperedOfferRejected(t *testing.T) {
	svc := cloud.NewMemory()
	alice := newTestCell(t, "alice-gw", svc)
	bob := newTestCell(t, "bob-phone", svc)
	pairCells(t, alice, bob)
	doc, _ := alice.Ingest([]byte("payload"), IngestOptions{Type: "photo", Class: datamodel.ClassAuthored})
	if err := alice.Share(doc.ID, "bob-phone", ShareOptions{MaxUses: 1}); err != nil {
		t.Fatal(err)
	}
	// A malicious cloud rewrites the offer body (e.g. to weaken MaxUses).
	msgs, _ := svc.Receive("bob-phone", 0)
	if len(msgs) != 1 {
		t.Fatalf("expected 1 offer in mailbox, got %d", len(msgs))
	}
	tampered := bytes.Replace(msgs[0].Body, []byte(`"max_uses":1`), []byte(`"max_uses":100000`), 1)
	if bytes.Equal(tampered, msgs[0].Body) {
		t.Fatal("test setup: max_uses field not found in offer body")
	}
	msgs[0].Body = tampered
	if err := svc.Send(msgs[0]); err != nil {
		t.Fatal(err)
	}
	summary, err := bob.ProcessInbox()
	if err != nil {
		t.Fatal(err)
	}
	if summary.OffersAccepted != 0 || summary.OffersRejected != 1 {
		t.Fatalf("tampered offer was accepted: %+v", summary)
	}
}

func TestOfferFromUnpairedCellRejected(t *testing.T) {
	svc := cloud.NewMemory()
	alice := newTestCell(t, "alice-gw", svc)
	bob := newTestCell(t, "bob-phone", svc)
	// Only Alice pairs (Bob never did): bob must reject.
	secret, _ := NewPairingSecret()
	_ = alice.Pair("bob-phone", secret)
	doc, _ := alice.Ingest([]byte("x"), IngestOptions{Type: "note", Class: datamodel.ClassAuthored})
	if err := alice.Share(doc.ID, "bob-phone", ShareOptions{}); err != nil {
		t.Fatal(err)
	}
	summary, _ := bob.ProcessInbox()
	if summary.OffersAccepted != 0 || summary.OffersRejected != 1 {
		t.Fatalf("offer from unpaired cell accepted: %+v", summary)
	}
}

func TestUnknownInboxMessageKind(t *testing.T) {
	svc := cloud.NewMemory()
	bob := newTestCell(t, "bob-phone", svc)
	_ = svc.Send(cloud.Message{From: "x", To: "bob-phone", Kind: "mystery", Body: []byte("?")})
	summary, err := bob.ProcessInbox()
	if err != nil {
		t.Fatal(err)
	}
	if summary.OffersAccepted != 0 && summary.OffersRejected != 0 {
		t.Fatalf("unexpected summary %+v", summary)
	}
	if len(bob.AuditLog().Query("x", "mystery", audit.OutcomeError)) != 1 {
		t.Fatal("unknown message kind not audited")
	}
}
