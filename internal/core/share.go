package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"trustedcells/internal/audit"
	"trustedcells/internal/cloud"
	"trustedcells/internal/crypto"
	"trustedcells/internal/policy"
	"trustedcells/internal/sharing"
	"trustedcells/internal/ucon"
)

// Errors specific to sharing.
var (
	ErrNotPaired = errors.New("core: cells are not paired")
	ErrNoCloud   = errors.New("core: cell has no cloud service attached")
)

// pairingSecretName is the TEE secret slot used for the pairing key with a
// given peer.
func pairingSecretName(peerID string) string { return "pairing/" + peerID }

// Pair establishes a shared pairing secret with a peer cell. The secret is
// produced by one side (typically during a physical pairing ceremony, QR code
// or NFC touch — the "proof of legitimacy" step) and installed on both cells
// with this method. It is sealed inside the TEE; only its existence is
// tracked outside.
func (c *Cell) Pair(peerID string, secret crypto.SymmetricKey) error {
	if c.tee.Locked() {
		return ErrNotOwner
	}
	if err := c.tee.SealSecret(pairingSecretName(peerID), secret); err != nil {
		return fmt.Errorf("core: pairing with %s: %w", peerID, err)
	}
	c.mu.Lock()
	c.pairings[peerID] = true
	c.mu.Unlock()
	c.appendAudit(c.id, "pair", peerID, audit.OutcomeAllowed, "pairing established", "")
	return nil
}

// NewPairingSecret generates a pairing secret to be installed on this cell
// and handed to the peer (out of band).
func NewPairingSecret() (crypto.SymmetricKey, error) { return crypto.NewSymmetricKey() }

// Paired reports whether a pairing exists with the peer.
func (c *Cell) Paired(peerID string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pairings[peerID]
}

// pairingKey runs fn with the pairing key for peerID inside the TEE boundary.
func (c *Cell) pairingKey(peerID string, fn func(crypto.SymmetricKey) error) error {
	if !c.Paired(peerID) {
		return ErrNotPaired
	}
	return c.tee.UseSecret(pairingSecretName(peerID), fn)
}

// ShareOptions describe the terms under which a document is shared.
type ShareOptions struct {
	// Recipients lists the subject IDs allowed to read the shared copy on the
	// recipient cell (empty = only the recipient cell's owner, i.e. peerID).
	Recipients []string
	// MaxUses caps the number of accesses on the recipient side (0 = unlimited).
	MaxUses int
	// NotAfter is an absolute expiry for the shared right.
	NotAfter time.Time
	// NotifyOwner requires the recipient cell to push audit records back.
	NotifyOwner bool
	// MaxGranularity caps time-series granularity on the recipient side.
	MaxGranularity time.Duration
}

// Share builds a signed share offer for a document and sends it to the peer
// cell's mailbox through the cloud. Sharing is an owner operation and is
// audited.
func (c *Cell) Share(docID, peerID string, opts ShareOptions) error {
	if c.tee.Locked() {
		return ErrNotOwner
	}
	if c.cloud == nil {
		return ErrNoCloud
	}
	doc, err := c.catalog.Get(docID)
	if err != nil {
		return ErrUnknownDocument
	}
	// Policy check: the owner shares, but an explicit deny rule on sharing
	// (e.g. "never share raw data") still applies.
	decision := c.access.Evaluate(policy.Request{
		Subject:  policy.Subject{ID: c.id, Groups: []string{"owner"}},
		Action:   policy.ActionShare,
		Resource: policy.Resource{DocumentID: doc.ID, Type: doc.Type, Class: doc.Class.String(), Tags: doc.Tags},
		Context:  policy.Context{Time: c.clock()},
	})
	// The owner is implicitly allowed unless an explicit deny matched.
	if !decision.Allowed && decision.RuleID != "" {
		c.appendAudit(c.id, string(policy.ActionShare), docID, audit.OutcomeDenied, decision.Reason, "")
		return fmt.Errorf("%w: %s", ErrAccessDenied, decision.Reason)
	}

	recipients := opts.Recipients
	if len(recipients) == 0 {
		recipients = []string{peerID}
	}
	accessSet := policy.Set{Owner: c.id}
	accessSet.Rules = append(accessSet.Rules, policy.Rule{
		ID:             "shared-read",
		Effect:         policy.EffectAllow,
		SubjectIDs:     recipients,
		Actions:        []policy.Action{policy.ActionRead, policy.ActionAggregate},
		Resource:       policy.Resource{DocumentID: doc.ID},
		Condition:      policy.Condition{NotAfter: opts.NotAfter},
		MaxGranularity: opts.MaxGranularity,
	})
	identity, err := c.Identity()
	if err != nil {
		return err
	}
	sticky, err := policy.SealSticky(policy.StickyPolicy{
		DocumentID:       doc.ID,
		ContentHash:      doc.ContentHash,
		OriginatorID:     c.id,
		Access:           accessSet,
		MaxUses:          opts.MaxUses,
		NotAfter:         opts.NotAfter,
		ObligationNotify: opts.NotifyOwner,
	}, identity, c.tee.Sign)
	if err != nil {
		return fmt.Errorf("core: share: sealing sticky policy: %w", err)
	}

	var offer *sharing.Offer
	err = c.pairingKey(peerID, func(pk crypto.SymmetricKey) error {
		var berr error
		offer, berr = sharing.BuildOffer(c.id, peerID, doc, c.keys.DocumentKey(doc.ID), pk,
			sticky, c.clock(), identity, c.tee.Sign)
		return berr
	})
	if err != nil {
		c.appendAudit(c.id, string(policy.ActionShare), docID, audit.OutcomeError, err.Error(), "")
		return err
	}
	body, err := offer.Encode()
	if err != nil {
		return err
	}
	if err := c.cloud.Send(cloud.Message{From: c.id, To: peerID, Kind: "share-offer", Body: body}); err != nil {
		c.appendAudit(c.id, string(policy.ActionShare), docID, audit.OutcomeError, err.Error(), "")
		return fmt.Errorf("core: share: %w", err)
	}
	c.appendAudit(c.id, string(policy.ActionShare), docID, audit.OutcomeAllowed,
		fmt.Sprintf("shared with %s", peerID), "")
	return nil
}

// InboxSummary reports what ProcessInbox handled.
type InboxSummary struct {
	OffersAccepted    int
	OffersRejected    int
	AuditSegments     int
	AuditRecords      []audit.Record
	ApprovalRequests  int
	ApprovalResponses int
}

// ProcessInbox fetches pending messages from the cloud mailbox and handles
// them: share offers are verified and installed, audit segments from
// recipient cells are decrypted and returned for the owner's inspection.
func (c *Cell) ProcessInbox() (InboxSummary, error) {
	var summary InboxSummary
	if c.cloud == nil {
		return summary, ErrNoCloud
	}
	msgs, err := c.cloud.Receive(c.id, 0)
	if err != nil {
		return summary, fmt.Errorf("core: inbox: %w", err)
	}
	for _, m := range msgs {
		switch m.Kind {
		case "share-offer":
			if err := c.acceptOffer(m.Body); err != nil {
				summary.OffersRejected++
				c.appendAudit(m.From, "accept-share", "", audit.OutcomeDenied, err.Error(), "")
			} else {
				summary.OffersAccepted++
			}
		case "audit-segment":
			records, err := c.openAuditSegment(m.From, m.Body)
			if err != nil {
				c.appendAudit(m.From, "audit-segment", "", audit.OutcomeError, err.Error(), "")
				continue
			}
			summary.AuditSegments++
			summary.AuditRecords = append(summary.AuditRecords, records...)
		case "approval-request":
			if err := c.handleApprovalRequest(m.From, m.Body); err != nil {
				c.appendAudit(m.From, "approval-request", "", audit.OutcomeError, err.Error(), "")
				continue
			}
			summary.ApprovalRequests++
		case "approval-response":
			if err := c.handleApprovalResponse(m.From, m.Body); err != nil {
				c.appendAudit(m.From, "approval-response", "", audit.OutcomeError, err.Error(), "")
				continue
			}
			summary.ApprovalResponses++
		default:
			c.appendAudit(m.From, "inbox", m.Kind, audit.OutcomeError, "unknown message kind", "")
		}
	}
	return summary, nil
}

// acceptOffer verifies a share offer and installs the shared document.
func (c *Cell) acceptOffer(body []byte) error {
	offer, err := sharing.DecodeOffer(body)
	if err != nil {
		return err
	}
	if err := offer.Verify(c.id, nil); err != nil {
		return err
	}
	if !c.Paired(offer.From) {
		return ErrNotPaired
	}
	var docKey crypto.SymmetricKey
	err = c.pairingKey(offer.From, func(pk crypto.SymmetricKey) error {
		var uerr error
		docKey, uerr = offer.UnwrapKey(pk)
		return uerr
	})
	if err != nil {
		return fmt.Errorf("core: accept offer: unwrapping key: %w", err)
	}
	// Seal the received document key in the TEE under a per-document slot.
	if err := c.tee.SealSecret("dockey/"+offer.Document.ID, docKey); err != nil {
		return err
	}
	doc := offer.Document.Clone()
	if err := c.catalog.Add(doc); err != nil {
		return fmt.Errorf("core: accept offer: %w", err)
	}
	c.mu.Lock()
	c.remoteDocs[doc.ID] = offer.Sticky
	c.mu.Unlock()

	// Install the originator's access rules and usage limits locally so this
	// cell enforces them.
	for _, r := range offer.Sticky.Access.Rules {
		if err := c.access.Add(r); err != nil {
			return err
		}
	}
	up := ucon.Policy{ObjectID: doc.ID, MaxUses: offer.Sticky.MaxUses, NotAfter: offer.Sticky.NotAfter}
	if offer.Sticky.ObligationNotify {
		up.Obligations = append(up.Obligations, ucon.Obligation{Kind: ucon.ObligationNotifyOwner})
	}
	if err := c.usage.Attach(up); err != nil {
		return err
	}
	c.appendAudit(offer.From, "accept-share", doc.ID, audit.OutcomeAllowed, "offer verified", offer.From)
	return nil
}

// remoteKey returns the sealed key of a shared document.
func (c *Cell) remoteKey(docID string) (crypto.SymmetricKey, error) {
	var key crypto.SymmetricKey
	err := c.tee.UseSecret("dockey/"+docID, func(k crypto.SymmetricKey) error {
		key = k
		return nil
	})
	if err != nil {
		return crypto.SymmetricKey{}, fmt.Errorf("core: key of shared document %s: %w", docID, err)
	}
	return key, nil
}

// openAuditSegment decrypts an accountability segment pushed by a recipient
// cell.
func (c *Cell) openAuditSegment(from string, body []byte) ([]audit.Record, error) {
	var seg audit.Segment
	if err := json.Unmarshal(body, &seg); err != nil {
		return nil, fmt.Errorf("core: audit segment: %w", err)
	}
	// The recipient sealed the segment under its sharing key for us; we
	// derive the mirror key from our pairing with that cell. The recipient
	// derives SharingKey(originator) from *its* hierarchy, so the key must be
	// communicated: by convention it is wrapped under the pairing key at
	// share time. For simplicity the segment key is the recipient's
	// SharingKey; we recover it via the pairing-derived convention below.
	var records []audit.Record
	err := c.pairingKey(from, func(pk crypto.SymmetricKey) error {
		segKey := crypto.DeriveKey(pk, "audit-segment", from+"->"+c.id)
		var oerr error
		records, oerr = audit.OpenSegment(&seg, segKey)
		return oerr
	})
	if err != nil {
		return nil, err
	}
	return records, nil
}

// SharedWithMe lists the documents this cell received from other cells.
func (c *Cell) SharedWithMe() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.remoteDocs))
	for id := range c.remoteDocs {
		out = append(out, id)
	}
	return out
}
