package core

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"trustedcells/internal/audit"
	"trustedcells/internal/cloud"
	"trustedcells/internal/crypto"
	"trustedcells/internal/datamodel"
	"trustedcells/internal/policy"
	"trustedcells/internal/tamper"
	"trustedcells/internal/timeseries"
	"trustedcells/internal/ucon"
)

var testTime = time.Date(2013, 1, 20, 8, 0, 0, 0, time.UTC)

func fixedClock() func() time.Time {
	t := testTime
	return func() time.Time { return t }
}

func newTestCell(t *testing.T, id string, svc cloud.Service) *Cell {
	t.Helper()
	c, err := New(Config{
		ID:    id,
		Class: tamper.ClassHomeGateway,
		PIN:   "1234",
		Cloud: svc,
		Seed:  []byte("seed-" + id),
		Clock: fixedClock(),
	})
	if err != nil {
		t.Fatalf("New(%s): %v", id, err)
	}
	return c
}

func TestNewCellValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("cell without ID accepted")
	}
	c, err := New(Config{ID: "alice-gw", Class: tamper.ClassSecureToken})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if c.ID() != "alice-gw" {
		t.Fatalf("ID = %q", c.ID())
	}
	if _, err := c.Identity(); err != nil {
		t.Fatalf("Identity: %v", err)
	}
}

func TestIngestAndOwnerRead(t *testing.T) {
	svc := cloud.NewMemory()
	c := newTestCell(t, "alice-gw", svc)
	payload := []byte("pay slip for January 2013")
	doc, err := c.Ingest(payload, IngestOptions{
		Class: datamodel.ClassExternal, Type: "pay-slip", Title: "January pay slip",
		Keywords: []string{"salary", "2013"},
	})
	if err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if doc.Owner != "alice-gw" || doc.Size != int64(len(payload)) || doc.BlobRef == "" {
		t.Fatalf("document metadata %+v", doc)
	}
	// The blob stored in the cloud must be sealed, not plaintext.
	blob, err := svc.GetBlob(doc.BlobRef)
	if err != nil {
		t.Fatalf("cloud blob missing: %v", err)
	}
	if bytes.Contains(blob.Data, []byte("pay slip")) {
		t.Fatal("plaintext leaked to the cloud")
	}
	// Owner reads through the reference monitor after granting itself a rule.
	if err := c.AddRule(policy.Rule{ID: "owner-all", Effect: policy.EffectAllow, SubjectIDs: []string{"alice"}}); err != nil {
		t.Fatalf("AddRule: %v", err)
	}
	got, err := c.Read("alice", doc.ID, AccessContext{})
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("Read returned %q", got)
	}
	// Metadata search stays local.
	docs, err := c.Search(datamodel.Query{Keyword: "salary"})
	if err != nil || len(docs) != 1 {
		t.Fatalf("Search: %v %v", docs, err)
	}
}

func TestReadDeniedByDefaultAndAudited(t *testing.T) {
	c := newTestCell(t, "alice-gw", cloud.NewMemory())
	doc, _ := c.Ingest([]byte("secret"), IngestOptions{Class: datamodel.ClassAuthored, Type: "note", Title: "n"})
	if _, err := c.Read("stranger", doc.ID, AccessContext{}); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("stranger read: %v", err)
	}
	denied := c.AuditLog().Query("stranger", doc.ID, audit.OutcomeDenied)
	if len(denied) != 1 {
		t.Fatalf("denied access not audited: %d records", len(denied))
	}
	if _, err := c.Read("x", "no-such-doc", AccessContext{}); !errors.Is(err, ErrUnknownDocument) {
		t.Fatalf("unknown doc: %v", err)
	}
	if err := c.AuditLog().Verify(); err != nil {
		t.Fatalf("audit chain: %v", err)
	}
}

func TestOwnerOperationsRequireUnlockedTEE(t *testing.T) {
	c := newTestCell(t, "alice-gw", cloud.NewMemory())
	c.TEE().Lock()
	if _, err := c.Ingest([]byte("x"), IngestOptions{Type: "note", Class: datamodel.ClassAuthored}); err != ErrNotOwner {
		t.Fatalf("Ingest while locked: %v", err)
	}
	if err := c.AddRule(policy.Rule{ID: "r", Effect: policy.EffectAllow}); err != ErrNotOwner {
		t.Fatalf("AddRule while locked: %v", err)
	}
	if _, err := c.Search(datamodel.Query{}); err != ErrNotOwner {
		t.Fatalf("Search while locked: %v", err)
	}
	if err := c.AttachUsagePolicy(ucon.Policy{ObjectID: "x"}); err != ErrNotOwner {
		t.Fatalf("AttachUsagePolicy while locked: %v", err)
	}
	if _, err := c.SyncVault(); err != ErrNotOwner {
		t.Fatalf("SyncVault while locked: %v", err)
	}
}

func TestAggregateGranularityEnforcement(t *testing.T) {
	c := newTestCell(t, "alice-gw", cloud.NewMemory())
	// One day of synthetic 1-minute readings.
	s := timeseries.NewSeries("power", "W")
	for i := 0; i < 24*60; i++ {
		_ = s.AppendValue(testTime.Add(time.Duration(i)*time.Minute), float64(100+i%50))
	}
	doc, err := c.IngestSeries(s, "day of power", []string{"energy"}, map[string]string{"device": "linky"})
	if err != nil {
		t.Fatalf("IngestSeries: %v", err)
	}
	_ = c.AddRule(policy.Rule{
		ID: "household-15min", Effect: policy.EffectAllow,
		SubjectGroups:  []string{"household"},
		Actions:        []policy.Action{policy.ActionAggregate},
		Resource:       policy.Resource{Type: SeriesDocType},
		MaxGranularity: 15 * time.Minute,
	})
	ctx := AccessContext{Groups: []string{"household"}}
	// 15-minute aggregates are fine.
	agg, err := c.Aggregate("bob", doc.ID, timeseries.Granularity15Min, timeseries.AggregateMean, ctx)
	if err != nil {
		t.Fatalf("Aggregate 15min: %v", err)
	}
	if agg.Len() != 24*4 {
		t.Fatalf("expected 96 buckets, got %d", agg.Len())
	}
	// 1-minute data is finer than allowed.
	if _, err := c.Aggregate("bob", doc.ID, timeseries.GranularityMinute, timeseries.AggregateMean, ctx); err != ErrGranularity {
		t.Fatalf("fine-grained aggregate: %v", err)
	}
	// Raw read denied (no read rule).
	if _, err := c.Read("bob", doc.ID, AccessContext{Groups: []string{"household"}}); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("raw read: %v", err)
	}
	// Aggregate on a non-series document fails.
	note, _ := c.Ingest([]byte("hello"), IngestOptions{Type: "note", Class: datamodel.ClassAuthored})
	if _, err := c.Aggregate("bob", note.ID, timeseries.GranularityHour, timeseries.AggregateMean, ctx); err != ErrNotSeries {
		t.Fatalf("aggregate over note: %v", err)
	}
}

func TestUsageControlIntegration(t *testing.T) {
	c := newTestCell(t, "alice-gw", cloud.NewMemory())
	doc, _ := c.Ingest([]byte("family photo"), IngestOptions{Type: "photo", Class: datamodel.ClassAuthored})
	_ = c.AddRule(policy.Rule{ID: "friends-read", Effect: policy.EffectAllow,
		SubjectIDs: []string{"carol"}, Actions: []policy.Action{policy.ActionRead}})
	_ = c.AttachUsagePolicy(ucon.Policy{ObjectID: doc.ID, MaxUses: 2})
	for i := 0; i < 2; i++ {
		if _, err := c.Read("carol", doc.ID, AccessContext{}); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
	if _, err := c.Read("carol", doc.ID, AccessContext{}); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("third read should exhaust uses: %v", err)
	}
	if c.Usage().UseCount(doc.ID, "carol") != 2 {
		t.Fatalf("use count = %d", c.Usage().UseCount(doc.ID, "carol"))
	}
}

func TestCredentialGatedAccess(t *testing.T) {
	c := newTestCell(t, "alice-gw", cloud.NewMemory())
	doc, _ := c.Ingest([]byte("blood test results"), IngestOptions{Type: "medical-record", Class: datamodel.ClassExternal})
	_ = c.AddRule(policy.Rule{
		ID: "physicians-only", Effect: policy.EffectAllow,
		Actions:   []policy.Action{policy.ActionRead},
		Resource:  policy.Resource{Type: "medical-record"},
		Condition: policy.Condition{RequiredAttributes: map[string]string{"role": "physician"}},
	})
	issuer, _ := crypto.NewSigningKey()
	c.TrustIssuer("hospital", issuer.Public())
	cred := policy.IssueCredential("hospital", issuer, "dr-dupont", "role", "physician", testTime, testTime.Add(24*time.Hour))

	// Without the credential: denied.
	if _, err := c.Read("dr-dupont", doc.ID, AccessContext{}); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("read without credential: %v", err)
	}
	// With the certified credential: allowed.
	if _, err := c.Read("dr-dupont", doc.ID, AccessContext{Credentials: []*policy.Credential{cred}}); err != nil {
		t.Fatalf("read with credential: %v", err)
	}
	// A credential from an untrusted issuer does not help.
	rogue, _ := crypto.NewSigningKey()
	fake := policy.IssueCredential("rogue", rogue, "mallory", "role", "physician", testTime, testTime.Add(24*time.Hour))
	if _, err := c.Read("mallory", doc.ID, AccessContext{Credentials: []*policy.Credential{fake}}); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("read with rogue credential: %v", err)
	}
}

func TestTamperedCloudBlobDetected(t *testing.T) {
	svc := cloud.NewMemory()
	c := newTestCell(t, "alice-gw", svc)
	doc, err := c.Ingest([]byte("sensitive reading"), IngestOptions{Type: "note", Class: datamodel.ClassSensed})
	if err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if _, err := c.SyncVault(); err != nil {
		t.Fatalf("SyncVault: %v", err)
	}
	// The weakly-malicious provider flips one byte of the stored payload.
	blob, err := svc.GetBlob(doc.BlobRef)
	if err != nil {
		t.Fatal(err)
	}
	blob.Data[len(blob.Data)/2] ^= 0x01
	if _, err := svc.PutBlob(doc.BlobRef, blob.Data); err != nil {
		t.Fatal(err)
	}
	// A fresh cell of the same user (same seed, no local cache) must detect
	// the modification when it fetches the payload from the cloud.
	reader, err := New(Config{ID: "alice-gw", Class: tamper.ClassHomeGateway, PIN: "x",
		Cloud: svc, Seed: []byte("seed-alice-gw"), Clock: fixedClock()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reader.RestoreVault(); err != nil {
		t.Fatalf("RestoreVault: %v", err)
	}
	_ = reader.AddRule(policy.Rule{ID: "owner", Effect: policy.EffectAllow, SubjectIDs: []string{"alice"}})
	if _, err := reader.Read("alice", doc.ID, AccessContext{}); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("tampered blob not detected: %v", err)
	}
}

func TestVaultSyncRestoreAndRollbackDetection(t *testing.T) {
	svc := cloud.NewMemory()
	c := newTestCell(t, "charlie", svc)
	_, _ = c.Ingest([]byte("doc one"), IngestOptions{Type: "note", Class: datamodel.ClassAuthored, Title: "one"})
	v1, err := c.SyncVault()
	if err != nil || v1 != 1 {
		t.Fatalf("SyncVault v1: %d %v", v1, err)
	}
	_, _ = c.Ingest([]byte("doc two"), IngestOptions{Type: "note", Class: datamodel.ClassAuthored, Title: "two"})
	v2, err := c.SyncVault()
	if err != nil || v2 != 2 {
		t.Fatalf("SyncVault v2: %d %v", v2, err)
	}

	// Charlie at the internet café: a fresh portable cell with the same seed
	// restores the whole space.
	portable, err := New(Config{ID: "charlie", Class: tamper.ClassSecureToken, PIN: "p",
		Cloud: svc, Seed: []byte("seed-charlie"), Clock: fixedClock()})
	if err != nil {
		t.Fatal(err)
	}
	version, err := portable.RestoreVault()
	if err != nil {
		t.Fatalf("RestoreVault: %v", err)
	}
	if version != 2 || portable.Catalog().Len() != 2 {
		t.Fatalf("restored version %d with %d docs", version, portable.Catalog().Len())
	}

	// Rollback attack: the cloud serves the old vault to the original cell,
	// whose monotonic counter is already at 2.
	old := snapshotBlob(t, svc, vaultBlobName("charlie"), v1, c)
	if _, err := svc.PutBlob(vaultBlobName("charlie"), old); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RestoreVault(); !errors.Is(err, ErrVaultRollback) && !errors.Is(err, ErrIntegrity) {
		t.Fatalf("rollback not detected: %v", err)
	}
}

// snapshotBlob rebuilds the version-1 vault blob by re-syncing a separate
// cell at version 1; it simply returns the version-1 bytes captured before
// the second sync. To keep the test simple we re-seal the old catalog using a
// twin cell with the same seed whose counter is still at 1.
func snapshotBlob(t *testing.T, svc cloud.Service, name string, version uint64, original *Cell) []byte {
	t.Helper()
	twin, err := New(Config{ID: original.ID(), Class: tamper.ClassHomeGateway, PIN: "p",
		Cloud: cloud.NewMemory(), Seed: []byte("seed-" + original.ID()), Clock: fixedClock()})
	if err != nil {
		t.Fatal(err)
	}
	// One document, one sync → version 1 blob in the twin's private cloud.
	_, _ = twin.Ingest([]byte("doc one"), IngestOptions{Type: "note", Class: datamodel.ClassAuthored, Title: "one"})
	if _, err := twin.SyncVault(); err != nil {
		t.Fatal(err)
	}
	blob, err := twin.CloudService().GetBlob(vaultBlobName(original.ID()))
	if err != nil {
		t.Fatal(err)
	}
	return blob.Data
}

func TestCacheStatsAndVerify(t *testing.T) {
	c := newTestCell(t, "alice-gw", cloud.NewMemory())
	for i := 0; i < 50; i++ {
		if _, err := c.Ingest(bytes.Repeat([]byte{byte(i)}, 256), IngestOptions{
			Type: "note", Class: datamodel.ClassAuthored, Title: "n"}); err != nil {
			t.Fatal(err)
		}
	}
	if c.CacheStats().Puts != 50 {
		t.Fatalf("cache puts = %d", c.CacheStats().Puts)
	}
	if err := c.VerifyCache(); err != nil {
		t.Fatalf("VerifyCache: %v", err)
	}
}
