package core

import (
	"bytes"
	"errors"
	"testing"

	"trustedcells/internal/cloud"
	"trustedcells/internal/datamodel"
	"trustedcells/internal/policy"
	"trustedcells/internal/tamper"
)

func TestIssueRecoverySharesValidation(t *testing.T) {
	if _, err := IssueRecoveryShares("alice", nil, []string{"a", "b", "c"}, 2); err == nil {
		t.Fatal("empty seed accepted")
	}
	if _, err := IssueRecoveryShares("alice", []byte("seed"), []string{"a"}, 2); err == nil {
		t.Fatal("fewer trustees than threshold accepted")
	}
	shares, err := IssueRecoveryShares("alice", []byte("seed-alice"), []string{"bob", "mum", "notary"}, 2)
	if err != nil {
		t.Fatalf("IssueRecoveryShares: %v", err)
	}
	if len(shares) != 3 {
		t.Fatalf("shares = %d", len(shares))
	}
	for i, s := range shares {
		if s.CellID != "alice" || s.Threshold != 2 || s.TrusteeID == "" {
			t.Fatalf("share %d: %+v", i, s)
		}
	}
}

func TestRecoverCellRebuildsVaultAccess(t *testing.T) {
	svc := cloud.NewMemory()
	seed := []byte("seed-alice-gw")
	original, err := New(Config{ID: "alice-gw", Class: tamper.ClassHomeGateway, PIN: "p",
		Cloud: svc, Seed: seed, Clock: fixedClock()})
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("irreplaceable family photo")
	doc, err := original.Ingest(payload, IngestOptions{Type: "photo", Class: datamodel.ClassAuthored, Title: "photo"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := original.SyncVault(); err != nil {
		t.Fatal(err)
	}
	shares, err := IssueRecoveryShares("alice-gw", seed, []string{"bob", "mum", "notary", "bank"}, 3)
	if err != nil {
		t.Fatal(err)
	}

	// The gateway burns down. Three trustees contribute their shares.
	recovered, err := RecoverCell([]RecoveryShare{shares[0], shares[2], shares[3]},
		Config{Class: tamper.ClassTrustZonePhone, PIN: "new-pin", Cloud: svc, Clock: fixedClock()})
	if err != nil {
		t.Fatalf("RecoverCell: %v", err)
	}
	if recovered.ID() != "alice-gw" {
		t.Fatalf("recovered cell ID %q", recovered.ID())
	}
	if HardwareClassOf(recovered) != tamper.ClassTrustZonePhone {
		t.Fatal("recovered cell should use the new hardware class")
	}
	// Identity is preserved (same seed → same attestation key).
	origID, _ := original.Identity()
	recID, _ := recovered.Identity()
	if !origID.Equal(recID) {
		t.Fatal("recovered cell has a different identity")
	}
	// The vault was restored and the payload is readable again.
	if recovered.Catalog().Len() != 1 {
		t.Fatalf("recovered catalog has %d docs", recovered.Catalog().Len())
	}
	_ = recovered.AddRule(policy.Rule{ID: "owner", Effect: policy.EffectAllow, SubjectIDs: []string{"alice"}})
	got, err := recovered.Read("alice", doc.ID, AccessContext{})
	if err != nil {
		t.Fatalf("Read on recovered cell: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("recovered payload differs")
	}
}

func TestRecoverCellBelowThreshold(t *testing.T) {
	shares, _ := IssueRecoveryShares("alice-gw", []byte("seed"), []string{"a", "b", "c"}, 3)
	if _, err := RecoverCell(shares[:2], Config{Class: tamper.ClassSecureToken, Clock: fixedClock()}); !errors.Is(err, ErrRecoveryShares) {
		t.Fatalf("below-threshold recovery: %v", err)
	}
	if _, err := RecoverCell(nil, Config{}); !errors.Is(err, ErrRecoveryShares) {
		t.Fatalf("empty shares: %v", err)
	}
}

func TestRecoverCellMixedShares(t *testing.T) {
	a, _ := IssueRecoveryShares("alice-gw", []byte("seed-a"), []string{"x", "y"}, 2)
	b, _ := IssueRecoveryShares("bob-phone", []byte("seed-b"), []string{"x", "y"}, 2)
	if _, err := RecoverCell([]RecoveryShare{a[0], b[1]}, Config{Class: tamper.ClassSecureToken, Clock: fixedClock()}); err == nil {
		t.Fatal("shares from different cells accepted")
	}
}

func TestRecoverCellWithoutCloud(t *testing.T) {
	seed := []byte("seed-standalone")
	shares, _ := IssueRecoveryShares("standalone", seed, []string{"a", "b", "c"}, 2)
	cell, err := RecoverCell(shares[:2], Config{Class: tamper.ClassSecureMCU, Clock: fixedClock()})
	if err != nil {
		t.Fatalf("RecoverCell without cloud: %v", err)
	}
	if cell.Catalog().Len() != 0 {
		t.Fatal("fresh recovered cell should have an empty catalog")
	}
}
