// Package core implements the trusted cell itself: a personal data server
// acting as a client-side reference monitor on top of simulated secure
// hardware. It combines the substrates — TEE, embedded storage, metadata
// catalog, access-control policies, usage control, audit — and the untrusted
// cloud into the six capabilities the paper lists for a full-fledged trusted
// cell: (1) acquire and synchronize data, (2) extract and query metadata,
// (3) cryptographically protect data, (4) enforce access and usage control,
// (5) make all actions accountable, (6) participate in distributed
// computations.
package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"trustedcells/internal/audit"
	"trustedcells/internal/cloud"
	"trustedcells/internal/crypto"
	"trustedcells/internal/datamodel"
	"trustedcells/internal/policy"
	"trustedcells/internal/storage"
	syncpkg "trustedcells/internal/sync"
	"trustedcells/internal/tamper"
	"trustedcells/internal/timeseries"
	"trustedcells/internal/ucon"
)

// Errors returned by the cell.
var (
	ErrAccessDenied    = errors.New("core: access denied")
	ErrIntegrity       = errors.New("core: integrity verification failed")
	ErrNotOwner        = errors.New("core: operation reserved to the authenticated owner")
	ErrUnknownDocument = errors.New("core: unknown document")
	ErrGranularity     = errors.New("core: requested granularity finer than the policy allows")
	ErrNotSeries       = errors.New("core: document is not a time series")
)

// SeriesDocType is the document type used for time-series payloads; aggregate
// queries are only valid on documents of this type.
const SeriesDocType = "power-series"

// Config describes a new cell.
type Config struct {
	// ID is the cell identifier (also the cloud namespace prefix).
	ID string
	// Class selects the hardware profile.
	Class tamper.HardwareClass
	// PIN protects owner operations.
	PIN string
	// Cloud is the untrusted infrastructure the cell uses. It may be nil for
	// a fully disconnected cell (e.g. a sensor-side cell).
	Cloud cloud.Service
	// Seed, when non-empty, provisions the TEE deterministically (used by the
	// simulator for reproducible populations).
	Seed []byte
	// Clock overrides time.Now (simulations).
	Clock func() time.Time
	// CacheBytes bounds the local encrypted cache memtable; zero selects a
	// default adapted to the hardware class.
	CacheBytes int
}

// Cell is a trusted cell: the user's personal data server.
type Cell struct {
	mu sync.Mutex

	id      string
	tee     *tamper.TEE
	keys    *crypto.KeyHierarchy
	catalog *datamodel.Catalog
	cache   *storage.KV
	access  *policy.Set
	usage   *ucon.Monitor
	log     *audit.Log
	cloud   cloud.Service
	clock   func() time.Time

	// trustedIssuers are the credential issuers this cell accepts.
	trustedIssuers map[string]crypto.VerifyKey
	// pairings are shared secrets with peer cells, sealed in the TEE and
	// referenced here by peer ID.
	pairings map[string]bool
	// remoteDocs tracks documents received from other cells: docID ->
	// originator ID, plus the sticky policy that travels with them.
	remoteDocs map[string]*policy.StickyPolicy
	// approvalStatus / approvalHash track outgoing approbation requests
	// (IngestReferencing); incomingApprovals holds requests awaiting this
	// owner's decision.
	approvalStatus    map[string]ApprovalStatus
	approvalHash      map[string]string
	incomingApprovals map[string]ApprovalRequest
	// replica, when attached, mirrors every owner ingest into the sharded
	// anti-entropy synchronizer so the user's other cells converge on the
	// same metadata catalog (see AttachReplica). Documents received from
	// *other* users via the sharing protocol are deliberately not mirrored:
	// their keys are wrapped for this cell alone, so replicating their
	// metadata would hand sibling cells entries they cannot open.
	replica *syncpkg.Replica
}

// New creates, provisions and unlocks a cell.
func New(cfg Config) (*Cell, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("core: cell requires an ID")
	}
	if cfg.PIN == "" {
		cfg.PIN = "0000"
	}
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	profile := tamper.DefaultProfile(cfg.Class)
	tee := tamper.New(profile)
	var err error
	if len(cfg.Seed) > 0 {
		err = tee.ProvisionDeterministic(cfg.Seed, cfg.PIN)
	} else {
		err = tee.Provision(cfg.PIN)
	}
	if err != nil {
		return nil, fmt.Errorf("core: provisioning %s: %w", cfg.ID, err)
	}
	if err := tee.Unlock(cfg.PIN); err != nil {
		return nil, fmt.Errorf("core: unlocking %s: %w", cfg.ID, err)
	}
	keys, err := tee.KeyHierarchy()
	if err != nil {
		return nil, fmt.Errorf("core: key hierarchy: %w", err)
	}
	cacheBytes := cfg.CacheBytes
	if cacheBytes <= 0 {
		cacheBytes = profile.RAMBudget / 4
		if cacheBytes > 1<<20 {
			cacheBytes = 1 << 20
		}
	}
	dev := storage.NewMeteredDevice(storage.NewMemDevice(0), tee.Meter())
	cell := &Cell{
		id:             cfg.ID,
		tee:            tee,
		keys:           keys,
		catalog:        datamodel.NewCatalog(),
		cache:          storage.NewKV(dev, storage.Options{MemtableBytes: cacheBytes, MaxRuns: 8}),
		access:         policy.NewSet(cfg.ID),
		usage:          ucon.NewMonitor(),
		log:            audit.NewLog(),
		cloud:          cfg.Cloud,
		clock:          clock,
		trustedIssuers: make(map[string]crypto.VerifyKey),
		pairings:       make(map[string]bool),
		remoteDocs:     make(map[string]*policy.StickyPolicy),
	}
	return cell, nil
}

// ID returns the cell identifier.
func (c *Cell) ID() string { return c.id }

// Identity returns the cell's attestation public key.
func (c *Cell) Identity() (crypto.VerifyKey, error) { return c.tee.Identity() }

// TEE exposes the underlying secure hardware (for attestation, cost metering
// and lock/unlock flows).
func (c *Cell) TEE() *tamper.TEE { return c.tee }

// Clock returns the cell's current time.
func (c *Cell) Clock() time.Time { return c.clock() }

// AuditLog returns the cell's audit log.
func (c *Cell) AuditLog() *audit.Log { return c.log }

// Catalog returns the metadata catalog (owner-side use and tests).
func (c *Cell) Catalog() *datamodel.Catalog { return c.catalog }

// AccessPolicy returns the cell's access-control policy set.
func (c *Cell) AccessPolicy() *policy.Set { return c.access }

// Usage returns the usage-control monitor.
func (c *Cell) Usage() *ucon.Monitor { return c.usage }

// CloudService returns the attached infrastructure service (may be nil).
func (c *Cell) CloudService() cloud.Service { return c.cloud }

// TrustIssuer registers a credential issuer the cell accepts.
func (c *Cell) TrustIssuer(id string, key crypto.VerifyKey) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.trustedIssuers[id] = key
}

// TrustedIssuers returns a copy of the trusted issuer registry.
func (c *Cell) TrustedIssuers() map[string]crypto.VerifyKey {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]crypto.VerifyKey, len(c.trustedIssuers))
	for k, v := range c.trustedIssuers {
		out[k] = v
	}
	return out
}

// AddRule appends an access-control rule (owner operation).
func (c *Cell) AddRule(r policy.Rule) error {
	if c.tee.Locked() {
		return ErrNotOwner
	}
	return c.access.Add(r)
}

// AttachUsagePolicy attaches a usage-control policy (owner operation).
func (c *Cell) AttachUsagePolicy(p ucon.Policy) error {
	if c.tee.Locked() {
		return ErrNotOwner
	}
	return c.usage.Attach(p)
}

// AttachReplica connects a catalog replica to the cell: from now on every
// ingested document is mirrored into the replica (marking its shard dirty),
// so a later SyncCatalog pushes exactly the changed shards to the user's
// other cells. Documents received through the sharing protocol stay
// cell-local (their wrapped keys only open here). The replica should be
// built over the same cloud service and user ID as the cell.
//
// Attaching also backs the replica's attestation epochs with the TEE's
// tamper-resistant monotonic counters (one per shard), so the freshness
// frontier the rollback/fork audit relies on survives cell restarts the way
// the paper's secure microcontroller state does.
func (c *Cell) AttachReplica(r *syncpkg.Replica) {
	tee := c.tee
	r.SetEpochSource(func(shard int) (uint64, error) {
		return tee.CounterIncrement(fmt.Sprintf("sync-epoch/%04d", shard))
	})
	c.mu.Lock()
	c.replica = r
	c.mu.Unlock()
}

// Replica returns the attached catalog replica (nil when none is attached).
func (c *Cell) Replica() *syncpkg.Replica {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.replica
}

// mirrorToReplica records a catalog mutation in the attached replica, if any.
func (c *Cell) mirrorToReplica(doc *datamodel.Document) {
	if r := c.Replica(); r != nil {
		r.Upsert(doc)
	}
}

// SyncCatalog runs one anti-entropy round of the attached replica: pull the
// shards that advanced remotely, fold every replicated change — additions,
// metadata updates and deletions — into the catalog, then push the locally
// dirty shards. It is how a weakly connected cell catches up after an
// offline stretch.
func (c *Cell) SyncCatalog() error {
	r := c.Replica()
	if r == nil {
		return fmt.Errorf("core: no replica attached to %s", c.id)
	}
	if err := r.Sync(); err != nil {
		return err
	}
	changes := r.DrainChanges()
	for i, ch := range changes {
		if err := c.foldChange(ch); err != nil {
			// Put the unapplied tail back so the next round retries it
			// instead of silently diverging catalog and replica.
			r.RequeueChanges(changes[i:])
			return fmt.Errorf("core: sync catalog: %w", err)
		}
	}
	return nil
}

// foldChange applies one replicated change to the catalog. It tolerates the
// races the narrow replica locking allows (a concurrent Ingest adding the
// same document between the membership probe and the write) by trying the
// update and insert paths in turn rather than trusting a single probe.
func (c *Cell) foldChange(ch syncpkg.Change) error {
	if ch.Deleted {
		if _, err := c.catalog.Get(ch.DocID); err != nil {
			return nil // already absent
		}
		return c.catalog.Remove(ch.DocID)
	}
	if ch.Doc == nil {
		return nil // a live entry without metadata cannot be indexed
	}
	if err := c.catalog.Update(ch.Doc); err == nil {
		return nil
	}
	if err := c.catalog.Add(ch.Doc); err == nil {
		return nil
	}
	// Added concurrently since the Update attempt; one more update settles it.
	return c.catalog.Update(ch.Doc)
}

// blobName is the cloud name of a document payload.
func (c *Cell) blobName(docID string) string {
	return c.id + "/vault/" + docID
}

// IngestOptions describe a document being ingested into the cell.
type IngestOptions struct {
	Class    datamodel.DataClass
	Type     string
	Title    string
	Keywords []string
	Tags     map[string]string
}

// Ingest acquires a payload into the personal data space: the payload is
// sealed under a per-document key, the ciphertext is cached locally and
// pushed to the cloud vault, and the metadata is indexed in the catalog.
// Ingest is an owner operation.
func (c *Cell) Ingest(payload []byte, opts IngestOptions) (*datamodel.Document, error) {
	if c.tee.Locked() {
		return nil, ErrNotOwner
	}
	contentHash := crypto.HashString(payload)
	doc := &datamodel.Document{
		ID:          datamodel.NewDocumentID(c.id, opts.Type, contentHash),
		Owner:       c.id,
		Class:       opts.Class,
		Type:        opts.Type,
		Title:       opts.Title,
		Keywords:    opts.Keywords,
		Tags:        opts.Tags,
		CreatedAt:   c.clock(),
		Size:        int64(len(payload)),
		ContentHash: contentHash,
	}
	key := c.keys.DocumentKey(doc.ID)
	doc.KeyFingerprint = key.Fingerprint()
	// The envelope and its key/AD scratch live in pooled buffers: both the
	// cloud store and the local cache copy on put, so once the writes settle
	// the buffers are recycled and a steady-state ingest allocates nothing
	// for sealing.
	scratch, sb := keyBufs.Get(), sealBufs.Get()
	defer func() { keyBufs.Put(scratch); sealBufs.Put(sb) }()
	*scratch = appendAssociatedData(*scratch, c.id, doc.ID)
	sealed, err := crypto.SealTo(*sb, key, payload, *scratch)
	if err != nil {
		return nil, fmt.Errorf("core: ingest: %w", err)
	}
	*sb = sealed
	doc.BlobRef = c.blobName(doc.ID)
	if c.cloud != nil {
		if _, err := c.cloud.PutBlob(doc.BlobRef, sealed); err != nil {
			return nil, fmt.Errorf("core: ingest: cloud put: %w", err)
		}
	}
	if err := c.cache.Put(appendPayloadKey((*scratch)[:0], doc.ID), sealed); err != nil {
		return nil, fmt.Errorf("core: ingest: cache: %w", err)
	}
	if err := c.catalog.Add(doc); err != nil {
		return nil, fmt.Errorf("core: ingest: catalog: %w", err)
	}
	c.mirrorToReplica(doc)
	c.appendAudit(c.id, "ingest", doc.ID, audit.OutcomeAllowed, "owner ingest", "")
	return doc.Clone(), nil
}

// IngestSeries serialises a time series and ingests it as a SeriesDocType
// document.
func (c *Cell) IngestSeries(s *timeseries.Series, title string, keywords []string, tags map[string]string) (*datamodel.Document, error) {
	payload, err := encodeSeries(s)
	if err != nil {
		return nil, err
	}
	return c.Ingest(payload, IngestOptions{
		Class:    datamodel.ClassSensed,
		Type:     SeriesDocType,
		Title:    title,
		Keywords: keywords,
		Tags:     tags,
	})
}

// seriesPayload is the JSON encoding of a series document payload.
type seriesPayload struct {
	Name   string             `json:"name"`
	Unit   string             `json:"unit"`
	Points []timeseries.Point `json:"points"`
}

func encodeSeries(s *timeseries.Series) ([]byte, error) {
	return json.Marshal(seriesPayload{Name: s.Name(), Unit: s.Unit(), Points: s.Points()})
}

func decodeSeries(data []byte) (*timeseries.Series, error) {
	var p seriesPayload
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotSeries, err)
	}
	s := timeseries.NewSeries(p.Name, p.Unit)
	for _, pt := range p.Points {
		if err := s.Append(pt); err != nil {
			return nil, fmt.Errorf("core: decode series: %w", err)
		}
	}
	return s, nil
}

// fetchSealed returns the sealed payload of a document, preferring the local
// cache and falling back to the cloud; fromCloud reports which one served
// it, so callers can warm the cache once the envelope verifies.
func (c *Cell) fetchSealed(doc *datamodel.Document) (sealed []byte, fromCloud bool, err error) {
	kb := keyBufs.Get()
	cached, cacheErr := c.cache.Get(appendPayloadKey(*kb, doc.ID))
	keyBufs.Put(kb)
	if cacheErr == nil {
		return cached, false, nil
	}
	if c.cloud == nil {
		return nil, false, fmt.Errorf("core: payload of %s unavailable: no cloud and no cache", doc.ID)
	}
	blob, err := c.cloud.GetBlob(doc.BlobRef)
	if err != nil {
		return nil, false, fmt.Errorf("core: fetching %s: %w", doc.ID, err)
	}
	return blob.Data, true, nil
}

// openDocument fetches, decrypts and integrity-checks a document payload.
// A verified cloud fetch warms the local cache so the next read of the same
// document stays local (read-your-reads); a payload that fails verification
// is never cached, so recovery retries the cloud.
func (c *Cell) openDocument(doc *datamodel.Document, key crypto.SymmetricKey, owner string) ([]byte, error) {
	sealed, fromCloud, err := c.fetchSealed(doc)
	if err != nil {
		return nil, err
	}
	plain, err := c.openSealed(doc, key, owner, sealed)
	if err == nil && fromCloud {
		c.warmCache(doc.ID, sealed)
	}
	return plain, err
}

// warmCache writes a verified sealed payload back to the local cache. Best
// effort: the read already has the bytes even if caching them fails. The
// cache key lives in pooled scratch (the KV copies it on put).
func (c *Cell) warmCache(docID string, sealed []byte) {
	kb := keyBufs.Get()
	_ = c.cache.Put(appendPayloadKey(*kb, docID), sealed)
	keyBufs.Put(kb)
}

// openSealed decrypts and integrity-checks an already-fetched sealed payload.
// It only reads immutable cell state, so it is safe from many workers at once.
func (c *Cell) openSealed(doc *datamodel.Document, key crypto.SymmetricKey, owner string, sealed []byte) ([]byte, error) {
	return c.openSealedTo(nil, doc, key, owner, sealed)
}

// openSealedTo is openSealed appending the plaintext to dst: decryption in
// one pass (the associated data is verified in place, never copied), the
// content hash compared without materializing its hex form. With a pooled
// dst the only allocation left on the open path is whatever the caller keeps.
func (c *Cell) openSealedTo(dst []byte, doc *datamodel.Document, key crypto.SymmetricKey, owner string, sealed []byte) ([]byte, error) {
	plain, ad, err := crypto.OpenTo(dst, key, sealed)
	if err != nil {
		return nil, fmt.Errorf("%w: envelope of %s", ErrIntegrity, doc.ID)
	}
	if !matchesAssociatedData(ad, owner, doc.ID) {
		return nil, fmt.Errorf("%w: associated data of %s", ErrIntegrity, doc.ID)
	}
	if doc.ContentHash != "" && !crypto.HashMatchesHex(plain, doc.ContentHash) {
		return nil, fmt.Errorf("%w: content hash of %s", ErrIntegrity, doc.ID)
	}
	return plain, nil
}

// AccessContext carries the requester-side context of a read request.
type AccessContext struct {
	Location string
	Purpose  string
	// Credentials are presented by the requester; only those verifying
	// against the cell's trusted issuers contribute attributes.
	Credentials []*policy.Credential
	// Groups declared by the owner for this subject (e.g. "household").
	Groups []string
	// FulfilledObligations lists pre-obligations the requester has fulfilled.
	FulfilledObligations []ucon.ObligationKind
}

func (c *Cell) subject(subjectID string, ctx AccessContext) policy.Subject {
	return policy.SubjectFromCredentials(subjectID, ctx.Groups, ctx.Credentials, c.clock(), c.TrustedIssuers())
}

func (c *Cell) appendAudit(actor, action, resource string, outcome audit.Outcome, reason, originator string) {
	c.log.Append(audit.Record{
		Time:       c.clock(),
		Actor:      actor,
		Action:     action,
		Resource:   resource,
		Outcome:    outcome,
		Reason:     reason,
		Originator: originator,
	})
}

// readGate is the outcome of the reference-monitor gate for one document of a
// read or aggregate: everything needed to open the payload and settle the
// access afterwards.
type readGate struct {
	doc        *datamodel.Document
	key        crypto.SymmetricKey
	owner      string
	session    *ucon.Session
	decision   policy.Decision
	originator string
}

// gateRead runs the reference-monitor checks of a read — catalog lookup,
// access-control evaluation, usage-control session admission, key selection —
// auditing every refusal. It performs no payload I/O, so batches can gate
// every document before a single cloud exchange.
func (c *Cell) gateRead(subjectID, docID string, ctx AccessContext) (*readGate, error) {
	doc, err := c.catalog.Get(docID)
	if err != nil {
		c.appendAudit(subjectID, string(policy.ActionRead), docID, audit.OutcomeError, "unknown document", "")
		return nil, ErrUnknownDocument
	}
	subj := c.subject(subjectID, ctx)
	req := policy.Request{
		Subject: subj,
		Action:  policy.ActionRead,
		Resource: policy.Resource{
			DocumentID: doc.ID, Type: doc.Type, Class: doc.Class.String(), Tags: doc.Tags,
		},
		Context: policy.Context{Time: c.clock(), Location: ctx.Location, Purpose: ctx.Purpose},
	}
	decision := c.access.Evaluate(req)
	originator := c.originatorOf(docID)
	if !decision.Allowed {
		c.appendAudit(subjectID, string(policy.ActionRead), docID, audit.OutcomeDenied, decision.Reason, originator)
		return nil, fmt.Errorf("%w: %s", ErrAccessDenied, decision.Reason)
	}
	// Usage control (sessions opened only when a usage policy is attached).
	var session *ucon.Session
	if len(c.usage.Policies(docID)) > 0 {
		session, err = c.usage.TryAccess(ucon.Request{
			ObjectID:     docID,
			SubjectID:    subjectID,
			Attributes:   subj.Attributes,
			Now:          c.clock(),
			FulfilledPre: ctx.FulfilledObligations,
		})
		if err != nil {
			c.appendAudit(subjectID, string(policy.ActionRead), docID, audit.OutcomeDenied, err.Error(), originator)
			return nil, fmt.Errorf("%w: %v", ErrAccessDenied, err)
		}
	}
	key := c.keys.DocumentKey(docID)
	owner := c.id
	if sticky, ok := c.remoteDocs[docID]; ok {
		owner = sticky.OriginatorID
		var kerr error
		key, kerr = c.remoteKey(docID)
		if kerr != nil {
			c.appendAudit(subjectID, string(policy.ActionRead), docID, audit.OutcomeError, kerr.Error(), originator)
			return nil, kerr
		}
	}
	return &readGate{doc: doc, key: key, owner: owner, session: session,
		decision: decision, originator: originator}, nil
}

// settleRead finishes a gated read whose payload has been fetched and
// decrypted: it fulfils usage obligations, closes the session, and audits the
// outcome. openErr carries the fetch or decryption failure, if any; a failed
// read revokes the session rather than leaving it active (and the subject
// never saw the payload, so no use is counted).
func (c *Cell) settleRead(subjectID string, g *readGate, plain []byte, openErr error) ([]byte, error) {
	if openErr != nil {
		if g.session != nil {
			_ = c.usage.Revoke(g.session.ID)
		}
		c.appendAudit(subjectID, string(policy.ActionRead), g.doc.ID, audit.OutcomeError, openErr.Error(), g.originator)
		return nil, openErr
	}
	if g.session != nil {
		// Fulfil the notify-owner obligation by exporting an audit segment to
		// the originator mailbox, then close the session.
		pending, _ := c.usage.PendingObligations(g.session.ID)
		for _, ob := range pending {
			if ob == ucon.ObligationNotifyOwner {
				if err := c.notifyOriginator(g.doc.ID, subjectID); err == nil {
					_ = c.usage.FulfillObligation(g.session.ID, ucon.ObligationNotifyOwner)
				}
			}
		}
		if err := c.usage.EndAccess(g.session.ID); err != nil {
			c.appendAudit(subjectID, string(policy.ActionRead), g.doc.ID, audit.OutcomeError, err.Error(), g.originator)
			return nil, fmt.Errorf("%w: %v", ErrAccessDenied, err)
		}
	}
	c.appendAudit(subjectID, string(policy.ActionRead), g.doc.ID, audit.OutcomeAllowed,
		g.decision.Reason+" rule="+g.decision.RuleID, g.originator)
	return plain, nil
}

// Read returns the plaintext payload of a document if the access-control
// policy and the usage-control monitor both allow it. Every attempt is
// audited. Many documents at once go through ReadBatch, which fetches all
// cache misses in one cloud round-trip.
func (c *Cell) Read(subjectID, docID string, ctx AccessContext) ([]byte, error) {
	g, err := c.gateRead(subjectID, docID, ctx)
	if err != nil {
		return nil, err
	}
	plain, err := c.openDocument(g.doc, g.key, g.owner)
	return c.settleRead(subjectID, g, plain, err)
}

// gateAggregate runs the reference-monitor checks of an aggregate query over
// one series document, including the policy's MaxGranularity cap, auditing
// every refusal. Like gateRead it performs no payload I/O.
func (c *Cell) gateAggregate(subjectID, docID string, g timeseries.Granularity, ctx AccessContext) (*readGate, error) {
	doc, err := c.catalog.Get(docID)
	if err != nil {
		c.appendAudit(subjectID, string(policy.ActionAggregate), docID, audit.OutcomeError, "unknown document", "")
		return nil, ErrUnknownDocument
	}
	if doc.Type != SeriesDocType {
		return nil, ErrNotSeries
	}
	subj := c.subject(subjectID, ctx)
	req := policy.Request{
		Subject: subj,
		Action:  policy.ActionAggregate,
		Resource: policy.Resource{
			DocumentID: doc.ID, Type: doc.Type, Class: doc.Class.String(), Tags: doc.Tags,
		},
		Context: policy.Context{Time: c.clock(), Location: ctx.Location, Purpose: ctx.Purpose},
	}
	decision := c.access.Evaluate(req)
	originator := c.originatorOf(docID)
	if !decision.Allowed {
		c.appendAudit(subjectID, string(policy.ActionAggregate), docID, audit.OutcomeDenied, decision.Reason, originator)
		return nil, fmt.Errorf("%w: %s", ErrAccessDenied, decision.Reason)
	}
	if decision.MaxGranularity > 0 && time.Duration(g) < decision.MaxGranularity {
		c.appendAudit(subjectID, string(policy.ActionAggregate), docID, audit.OutcomeDenied,
			fmt.Sprintf("requested %v finer than allowed %v", time.Duration(g), decision.MaxGranularity), originator)
		return nil, ErrGranularity
	}
	return &readGate{doc: doc, key: c.keys.DocumentKey(docID), owner: c.id,
		decision: decision, originator: originator}, nil
}

// Aggregate evaluates an aggregate query over a time-series document at the
// requested granularity. The policy's MaxGranularity cap is enforced: a
// requester entitled to 15-minute aggregates cannot obtain 1-second data.
// Many documents at once go through AggregateBatch.
func (c *Cell) Aggregate(subjectID, docID string, g timeseries.Granularity, kind timeseries.AggregateKind, ctx AccessContext) (*timeseries.Series, error) {
	gate, err := c.gateAggregate(subjectID, docID, g, ctx)
	if err != nil {
		return nil, err
	}
	plain, err := c.openDocument(gate.doc, gate.key, gate.owner)
	if err != nil {
		c.appendAudit(subjectID, string(policy.ActionAggregate), docID, audit.OutcomeError, err.Error(), gate.originator)
		return nil, err
	}
	series, err := decodeSeries(plain)
	if err != nil {
		return nil, err
	}
	out, err := series.DownsampleSeries(g, kind)
	if err != nil {
		return nil, fmt.Errorf("core: aggregate: %w", err)
	}
	c.appendAudit(subjectID, string(policy.ActionAggregate), docID, audit.OutcomeAllowed,
		fmt.Sprintf("granularity=%v rule=%s", time.Duration(g), gate.decision.RuleID), gate.originator)
	return out, nil
}

// Search runs a metadata query over the catalog. Searching is an owner
// operation: the catalog itself never leaves the cell.
func (c *Cell) Search(q datamodel.Query) ([]*datamodel.Document, error) {
	if c.tee.Locked() {
		return nil, ErrNotOwner
	}
	return c.catalog.Search(q), nil
}

// SearchPlan runs a metadata query and additionally returns the execution
// plan the catalog chose for it (owner operation).
func (c *Cell) SearchPlan(q datamodel.Query) ([]*datamodel.Document, datamodel.PlanInfo, error) {
	if c.tee.Locked() {
		return nil, datamodel.PlanInfo{}, ErrNotOwner
	}
	docs, plan := c.catalog.SearchPlan(q)
	return docs, plan, nil
}

// SearchScan runs a metadata query on the pre-index full-scan path — the
// seed baseline experiment E10 measures the planner against (owner
// operation).
func (c *Cell) SearchScan(q datamodel.Query) ([]*datamodel.Document, error) {
	if c.tee.Locked() {
		return nil, ErrNotOwner
	}
	return c.catalog.SearchScan(q), nil
}

// KeywordCounts counts catalog documents per keyword in a single pass over
// the keyword index (owner operation).
func (c *Cell) KeywordCounts(keywords []string) (map[string]int, error) {
	if c.tee.Locked() {
		return nil, ErrNotOwner
	}
	return c.catalog.KeywordCounts(keywords), nil
}

// notifyOriginator pushes the audit records concerning docID to the
// originator cell's mailbox, sealed under the pairing key.
func (c *Cell) notifyOriginator(docID, subjectID string) error {
	sticky, ok := c.remoteDocs[docID]
	if !ok || c.cloud == nil {
		return fmt.Errorf("core: no originator to notify for %s", docID)
	}
	// Record the access being notified before exporting.
	c.appendAudit(subjectID, "notify-originator", docID, audit.OutcomeAllowed, "usage obligation", sticky.OriginatorID)
	var body []byte
	err := c.pairingKey(sticky.OriginatorID, func(pk crypto.SymmetricKey) error {
		segKey := crypto.DeriveKey(pk, "audit-segment", c.id+"->"+sticky.OriginatorID)
		seg, err := c.log.Export(sticky.OriginatorID, segKey)
		if err != nil {
			return err
		}
		body, err = json.Marshal(seg)
		return err
	})
	if err != nil {
		return err
	}
	return c.cloud.Send(cloud.Message{
		From: c.id,
		To:   sticky.OriginatorID,
		Kind: "audit-segment",
		Body: body,
	})
}

// originatorOf returns the originator cell ID for shared documents.
func (c *Cell) originatorOf(docID string) string {
	if sticky, ok := c.remoteDocs[docID]; ok {
		return sticky.OriginatorID
	}
	return ""
}

// CacheStats exposes the embedded engine statistics (experiments E2).
func (c *Cell) CacheStats() storage.Stats { return c.cache.Stats() }

// VerifyCache re-checks the integrity of the local encrypted cache.
func (c *Cell) VerifyCache() error { return c.cache.VerifyRuns() }
