package core

import (
	"fmt"
	"testing"

	"trustedcells/internal/cloud"
	"trustedcells/internal/crypto"
	"trustedcells/internal/datamodel"
	syncpkg "trustedcells/internal/sync"
	"trustedcells/internal/tamper"
)

// TestCellReplicaWiring verifies the ingest → replica → anti-entropy →
// catalog loop between two cells of one user: documents ingested on the
// gateway become visible in the phone's catalog after one sync round each,
// and the exchange moves only dirty shards.
func TestCellReplicaWiring(t *testing.T) {
	svc := cloud.NewMemory()
	key, err := crypto.NewSymmetricKey()
	if err != nil {
		t.Fatal(err)
	}
	gateway, err := New(Config{ID: "alice-gw", Class: tamper.ClassHomeGateway,
		Cloud: svc, Seed: []byte("alice-gw")})
	if err != nil {
		t.Fatal(err)
	}
	phone, err := New(Config{ID: "alice-phone", Class: tamper.ClassTrustZonePhone,
		Cloud: svc, Seed: []byte("alice-phone")})
	if err != nil {
		t.Fatal(err)
	}
	gateway.AttachReplica(syncpkg.NewReplica("alice/gw", "alice", key, svc, nil))
	phone.AttachReplica(syncpkg.NewReplica("alice/phone", "alice", key, svc, nil))

	if gateway.Replica() == nil || phone.Replica() == nil {
		t.Fatal("replica not attached")
	}

	var items []IngestItem
	for i := 0; i < 24; i++ {
		items = append(items, IngestItem{
			Payload: []byte(fmt.Sprintf("note-%02d", i)),
			Opts:    IngestOptions{Class: datamodel.ClassAuthored, Type: "note", Title: "n"},
		})
	}
	docs, err := gateway.IngestBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	if gateway.Replica().DirtyShards() == 0 {
		t.Fatal("ingest did not mark replica shards dirty")
	}
	if err := gateway.SyncCatalog(); err != nil {
		t.Fatalf("gateway sync: %v", err)
	}
	if err := phone.SyncCatalog(); err != nil {
		t.Fatalf("phone sync: %v", err)
	}
	for _, d := range docs {
		got, err := phone.Catalog().Get(d.ID)
		if err != nil {
			t.Fatalf("document %s did not reach the phone catalog: %v", d.ID, err)
		}
		if got.Owner != "alice-gw" {
			t.Fatalf("replicated document lost its owner: %+v", got)
		}
	}
	// A second round with nothing new must not move any shard.
	before := gateway.Replica().TransferStats()
	if err := gateway.SyncCatalog(); err != nil {
		t.Fatal(err)
	}
	after := gateway.Replica().TransferStats()
	if after.ShardsPushed != before.ShardsPushed {
		t.Fatalf("idle sync pushed shards: %+v -> %+v", before, after)
	}

	// A remote metadata update and a remote deletion must fold into the
	// catalog, not just brand-new documents.
	updated := docs[0].Clone()
	updated.Title = "retitled on the phone"
	phone.Replica().Upsert(updated)
	phone.Replica().Delete(docs[1].ID)
	if err := phone.SyncCatalog(); err != nil {
		t.Fatal(err)
	}
	if err := gateway.SyncCatalog(); err != nil {
		t.Fatal(err)
	}
	got, err := gateway.Catalog().Get(docs[0].ID)
	if err != nil || got.Title != "retitled on the phone" {
		t.Fatalf("remote update did not fold into the catalog: %+v %v", got, err)
	}
	if _, err := gateway.Catalog().Get(docs[1].ID); err == nil {
		t.Fatalf("remote deletion did not fold into the catalog")
	}
}
