package core

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"trustedcells/internal/cloud"
	"trustedcells/internal/datamodel"
	"trustedcells/internal/policy"
	"trustedcells/internal/tamper"
	"trustedcells/internal/timeseries"
	"trustedcells/internal/ucon"
)

// coldReadCell ingests n notes on a builder cell, syncs the vault, and
// returns a fresh cell of the same user restored from the cloud: its catalog
// is full but its payload cache is empty, so every read must go to the cloud.
func coldReadCell(t *testing.T, svc cloud.Service, n int) (*Cell, []string, [][]byte) {
	t.Helper()
	builder, err := New(Config{ID: "reader-cell", Class: tamper.ClassHomeGateway,
		Cloud: svc, Seed: []byte("reader-cell")})
	if err != nil {
		t.Fatal(err)
	}
	items := make([]IngestItem, n)
	payloads := make([][]byte, n)
	for i := range items {
		payloads[i] = []byte(fmt.Sprintf("payload-%03d", i))
		items[i] = IngestItem{Payload: payloads[i],
			Opts: IngestOptions{Class: datamodel.ClassAuthored, Type: "note", Title: fmt.Sprintf("n%d", i)}}
	}
	docs, err := builder.IngestBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := builder.SyncVault(); err != nil {
		t.Fatal(err)
	}
	cold, err := New(Config{ID: "reader-cell", Class: tamper.ClassHomeGateway,
		Cloud: svc, Seed: []byte("reader-cell")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cold.RestoreVault(); err != nil {
		t.Fatal(err)
	}
	if err := cold.AddRule(policy.Rule{ID: "owner", Effect: policy.EffectAllow,
		SubjectIDs: []string{"owner"}, Actions: []policy.Action{policy.ActionRead}}); err != nil {
		t.Fatal(err)
	}
	ids := make([]string, n)
	for i, d := range docs {
		ids[i] = d.ID
	}
	return cold, ids, payloads
}

func TestReadBatchMatchesRead(t *testing.T) {
	svc := cloud.NewMemory()
	cell, ids, payloads := coldReadCell(t, svc, 8)

	req := append(append([]string{}, ids...), "doc-missing")
	results := cell.ReadBatch("owner", req, AccessContext{})
	if len(results) != len(req) {
		t.Fatalf("results = %d, want %d", len(results), len(req))
	}
	for i := range ids {
		if results[i].Err != nil {
			t.Fatalf("doc %d: %v", i, results[i].Err)
		}
		if !bytes.Equal(results[i].Payload, payloads[i]) {
			t.Fatalf("doc %d payload %q", i, results[i].Payload)
		}
	}
	if !errors.Is(results[len(req)-1].Err, ErrUnknownDocument) {
		t.Fatalf("unknown doc error = %v", results[len(req)-1].Err)
	}

	// A stranger is denied per document, and the denials are audited.
	denied := cell.ReadBatch("stranger", ids[:3], AccessContext{})
	for _, r := range denied {
		if !errors.Is(r.Err, ErrAccessDenied) {
			t.Fatalf("stranger result %v", r.Err)
		}
	}
	deniedAudits := 0
	for _, r := range cell.AuditLog().Records() {
		if r.Actor == "stranger" && r.Outcome == "denied" {
			deniedAudits++
		}
	}
	if deniedAudits != 3 {
		t.Fatalf("denied audit records = %d", deniedAudits)
	}
}

// countingGetBatchService records how many batched downloads it served.
type countingGetBatchService struct {
	*cloud.Memory
	mu         sync.Mutex
	getBatches int
}

func (c *countingGetBatchService) GetBlobs(names []string) ([]cloud.Blob, error) {
	c.mu.Lock()
	c.getBatches++
	c.mu.Unlock()
	return c.Memory.GetBlobs(names)
}

func TestReadBatchSingleCloudExchangeAndCacheWarming(t *testing.T) {
	svc := &countingGetBatchService{Memory: cloud.NewMemory()}
	cell, ids, _ := coldReadCell(t, svc, 12)

	gets0 := svc.Stats().Gets
	results := cell.ReadBatch("owner", ids, AccessContext{})
	for _, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	if svc.getBatches != 1 {
		t.Fatalf("batched downloads = %d, want 1", svc.getBatches)
	}
	if d := svc.Stats().Gets - gets0; d != int64(len(ids)) {
		t.Fatalf("blob gets = %d, want %d", d, len(ids))
	}

	// Second batch: the first one warmed the cache, nothing touches the cloud.
	gets1 := svc.Stats().Gets
	results = cell.ReadBatch("owner", ids, AccessContext{})
	for _, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	if svc.getBatches != 1 || svc.Stats().Gets != gets1 {
		t.Fatalf("second batch hit the cloud: batches=%d gets=%d", svc.getBatches, svc.Stats().Gets-gets1)
	}
}

// TestReadWarmsCacheAfterCloudFetch proves the single-document path also
// writes a cloud-fetched payload back to the local cache: the second read of
// the same document does not touch the cloud.
func TestReadWarmsCacheAfterCloudFetch(t *testing.T) {
	svc := cloud.NewMemory()
	cell, ids, _ := coldReadCell(t, svc, 1)

	gets0 := svc.Stats().Gets
	if _, err := cell.Read("owner", ids[0], AccessContext{}); err != nil {
		t.Fatal(err)
	}
	if d := svc.Stats().Gets - gets0; d != 1 {
		t.Fatalf("first read gets = %d, want 1", d)
	}
	gets1 := svc.Stats().Gets
	if _, err := cell.Read("owner", ids[0], AccessContext{}); err != nil {
		t.Fatal(err)
	}
	if d := svc.Stats().Gets - gets1; d != 0 {
		t.Fatalf("second read still hit the cloud (%d gets)", d)
	}
}

func TestAggregateBatchMatchesAggregate(t *testing.T) {
	start := time.Date(2013, 1, 7, 0, 0, 0, 0, time.UTC)
	cell, err := New(Config{ID: "agg-cell", Class: tamper.ClassHomeGateway,
		Cloud: cloud.NewMemory(), Seed: []byte("agg-cell"),
		Clock: func() time.Time { return start }})
	if err != nil {
		t.Fatal(err)
	}
	if err := cell.AddRule(policy.Rule{ID: "household", Effect: policy.EffectAllow,
		SubjectGroups: []string{"household"}, Actions: []policy.Action{policy.ActionAggregate},
		Resource: policy.Resource{Type: SeriesDocType}, MaxGranularity: time.Hour}); err != nil {
		t.Fatal(err)
	}
	var ids []string
	for d := 0; d < 3; d++ {
		s := timeseries.NewSeries("power", "W")
		for i := 0; i < 24; i++ {
			_ = s.AppendValue(start.Add(time.Duration(i)*time.Hour), float64(100*(d+1)))
		}
		doc, err := cell.IngestSeries(s, "day", nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, doc.ID)
	}
	ctx := AccessContext{Groups: []string{"household"}}

	results := cell.AggregateBatch("bob", ids, timeseries.GranularityHour, timeseries.AggregateMean, ctx)
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("doc %d: %v", i, r.Err)
		}
		want, err := cell.Aggregate("bob", ids[i], timeseries.GranularityHour, timeseries.AggregateMean, ctx)
		if err != nil {
			t.Fatal(err)
		}
		if r.Series.Len() != want.Len() || r.Series.At(0).Value != want.At(0).Value {
			t.Fatalf("doc %d batch/single mismatch", i)
		}
	}

	// The granularity cap applies per document inside the batch too.
	capped := cell.AggregateBatch("bob", ids, timeseries.GranularityMinute, timeseries.AggregateMean, ctx)
	for _, r := range capped {
		if !errors.Is(r.Err, ErrGranularity) {
			t.Fatalf("cap not enforced in batch: %v", r.Err)
		}
	}

	// Non-series documents are rejected per document.
	note, err := cell.Ingest([]byte("note"), IngestOptions{Class: datamodel.ClassAuthored, Type: "note"})
	if err != nil {
		t.Fatal(err)
	}
	mixed := cell.AggregateBatch("bob", []string{ids[0], note.ID}, timeseries.GranularityHour, timeseries.AggregateMean, ctx)
	if mixed[0].Err != nil || !errors.Is(mixed[1].Err, ErrNotSeries) {
		t.Fatalf("mixed batch = %v / %v", mixed[0].Err, mixed[1].Err)
	}
}

// TestConcurrentReadSearchIngestStress interleaves concurrent Read, Search,
// SearchPlan, ReadBatch and IngestBatch traffic on one cell; under -race it
// is the regression test for the planned catalog indexes and the batched
// read pipeline sharing the cell's substrates with writers.
func TestConcurrentReadSearchIngestStress(t *testing.T) {
	svc := cloud.NewMemory()
	cell := newBatchTestCell(t, svc)

	// A first wave of documents gives the readers something to chew on.
	seedItems := make([]IngestItem, 16)
	for i := range seedItems {
		seedItems[i] = IngestItem{Payload: []byte(fmt.Sprintf("seed-%02d", i)),
			Opts: IngestOptions{Class: datamodel.ClassSensed, Type: "reading",
				Keywords: []string{"seed"}, Tags: map[string]string{"wave": "0"}}}
	}
	seeded, err := cell.IngestBatch(seedItems)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, len(seeded))
	for i, d := range seeded {
		ids[i] = d.ID
	}

	const loops = 30
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) { // ingestors
			defer wg.Done()
			for b := 0; b < loops/3; b++ {
				items := make([]IngestItem, 4)
				for i := range items {
					items[i] = IngestItem{Payload: []byte(fmt.Sprintf("w%d-b%d-i%d", w, b, i)),
						Opts: IngestOptions{Class: datamodel.ClassSensed, Type: "reading",
							Keywords: []string{"stress"}, Tags: map[string]string{"wave": "1"}}}
				}
				if _, err := cell.IngestBatch(items); err != nil {
					t.Errorf("ingest: %v", err)
					return
				}
			}
		}(w)
	}
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) { // single readers
			defer wg.Done()
			for i := 0; i < loops; i++ {
				if _, err := cell.Read("owner", ids[(w+i)%len(ids)], AccessContext{}); err != nil {
					t.Errorf("read: %v", err)
					return
				}
			}
		}(w)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() { // batch readers
			defer wg.Done()
			for i := 0; i < loops/2; i++ {
				for _, r := range cell.ReadBatch("owner", ids, AccessContext{}) {
					if r.Err != nil {
						t.Errorf("read batch: %v", r.Err)
						return
					}
				}
			}
		}()
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() { // searchers exercising every index
			defer wg.Done()
			for i := 0; i < loops; i++ {
				if _, err := cell.Search(datamodel.Query{Type: "reading"}); err != nil {
					t.Errorf("search: %v", err)
					return
				}
				if _, _, err := cell.SearchPlan(datamodel.Query{Keyword: "stress", TagKey: "wave"}); err != nil {
					t.Errorf("search plan: %v", err)
					return
				}
				if _, err := cell.Search(datamodel.Query{Before: cell.Clock().Add(time.Hour)}); err != nil {
					t.Errorf("time search: %v", err)
					return
				}
				if _, err := cell.KeywordCounts([]string{"seed", "stress"}); err != nil {
					t.Errorf("keyword counts: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	want := len(seedItems) + 3*(loops/3)*4
	if got := cell.Catalog().Len(); got != want {
		t.Fatalf("catalog = %d, want %d", got, want)
	}
}

// TestReadBatchDuplicateIDsRespectUsageCap proves a batch repeating the same
// document ID cannot slip past a MaxUses usage cap: the duplicates settle
// through the sequential path after the batch, exactly as two Read calls.
func TestReadBatchDuplicateIDsRespectUsageCap(t *testing.T) {
	svc := cloud.NewMemory()
	cell := newBatchTestCell(t, svc)
	doc, err := cell.Ingest([]byte("rationed"), IngestOptions{Class: datamodel.ClassAuthored, Type: "note"})
	if err != nil {
		t.Fatal(err)
	}
	if err := cell.AttachUsagePolicy(ucon.Policy{ObjectID: doc.ID, MaxUses: 1}); err != nil {
		t.Fatal(err)
	}
	results := cell.ReadBatch("owner", []string{doc.ID, doc.ID}, AccessContext{})
	if results[0].Err != nil {
		t.Fatalf("first use: %v", results[0].Err)
	}
	if !errors.Is(results[1].Err, ErrAccessDenied) {
		t.Fatalf("second use of a MaxUses=1 document must be denied, got %v", results[1].Err)
	}
	if n := cell.Usage().UseCount(doc.ID, "owner"); n != 1 {
		t.Fatalf("use count = %d, want 1", n)
	}
}

// TestFailedReadRevokesUsageSession proves a read that passes the gate but
// fails to open (integrity violation on the cloud payload) does not leave a
// usage session active forever, and does not count as a completed use.
func TestFailedReadRevokesUsageSession(t *testing.T) {
	svc := cloud.NewMemory()
	cell, ids, _ := coldReadCell(t, svc, 2)
	for _, id := range ids {
		if err := cell.AttachUsagePolicy(ucon.Policy{ObjectID: id, MaxUses: 5}); err != nil {
			t.Fatal(err)
		}
	}
	// The weakly-malicious provider corrupts every stored payload.
	for _, id := range ids {
		blob, err := svc.GetBlob("reader-cell/vault/" + id)
		if err != nil {
			t.Fatal(err)
		}
		blob.Data[len(blob.Data)/2] ^= 0x01
		if _, err := svc.PutBlob("reader-cell/vault/"+id, blob.Data); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range cell.ReadBatch("owner", ids, AccessContext{}) {
		if !errors.Is(r.Err, ErrIntegrity) {
			t.Fatalf("corrupted payload not detected: %v", r.Err)
		}
	}
	if n := cell.Usage().ActiveSessions(); n != 0 {
		t.Fatalf("failed batch leaked %d active usage sessions", n)
	}
	for _, id := range ids {
		if n := cell.Usage().UseCount(id, "owner"); n != 0 {
			t.Fatalf("failed read counted as a use (%d)", n)
		}
	}
}

// TestCorruptCloudPayloadNotCached proves a payload that fails verification
// is never written to the local cache: once the provider serves honest bytes
// again, the next read succeeds instead of replaying the poisoned copy.
func TestCorruptCloudPayloadNotCached(t *testing.T) {
	svc := cloud.NewMemory()
	cell, ids, payloads := coldReadCell(t, svc, 1)
	name := "reader-cell/vault/" + ids[0]
	honest, err := svc.GetBlob(name)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := append([]byte(nil), honest.Data...)
	corrupt[len(corrupt)/2] ^= 0x01
	if _, err := svc.PutBlob(name, corrupt); err != nil {
		t.Fatal(err)
	}
	if _, err := cell.Read("owner", ids[0], AccessContext{}); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("corruption not detected: %v", err)
	}
	if r := cell.ReadBatch("owner", ids, AccessContext{}); !errors.Is(r[0].Err, ErrIntegrity) {
		t.Fatalf("batch corruption not detected: %v", r[0].Err)
	}
	// The provider repents; the cell must fetch fresh bytes, not a cached
	// poisoned copy.
	if _, err := svc.PutBlob(name, honest.Data); err != nil {
		t.Fatal(err)
	}
	got, err := cell.Read("owner", ids[0], AccessContext{})
	if err != nil || !bytes.Equal(got, payloads[0]) {
		t.Fatalf("recovery read: %q %v", got, err)
	}
}
