package core

import (
	"errors"
	"fmt"

	"trustedcells/internal/audit"
	"trustedcells/internal/crypto"
	"trustedcells/internal/tamper"
)

// The paper's secure-sharing challenge notes that "master secrets must be
// restorable in case of crash/loss of a trusted cell". This file implements
// that recovery path: the master secret is split into Shamir shares handed to
// trustees (family members' cells, a notary, a citizen association); any
// threshold-sized subset of shares rebuilds a replacement cell that derives
// the same key hierarchy and can therefore re-open the encrypted vault, while
// fewer shares reveal nothing.

// Errors returned by the recovery flow.
var (
	ErrRecoveryShares = errors.New("core: not enough recovery shares")
)

// RecoveryShare is one trustee's share of a cell's master secret.
type RecoveryShare struct {
	// CellID names the cell the share belongs to.
	CellID string
	// TrusteeID names the trustee the share was issued to.
	TrusteeID string
	// Share is the Shamir share of the provisioning seed.
	Share crypto.ShamirShare
	// Threshold is the number of shares needed for recovery.
	Threshold int
}

// IssueRecoveryShares splits the provisioning seed of a deterministic cell
// into n shares with reconstruction threshold k, one per trustee. It is an
// owner operation. The seed (not the derived master key) is shared so that a
// recovered cell is byte-for-byte equivalent to the lost one, including its
// attestation identity.
//
// Cells provisioned non-deterministically have no externalizable seed; they
// must be created with a Seed to be recoverable (the simulator and the CLI
// always do).
func IssueRecoveryShares(cellID string, seed []byte, trustees []string, k int) ([]RecoveryShare, error) {
	if len(seed) == 0 {
		return nil, fmt.Errorf("core: recovery shares require a provisioning seed")
	}
	if len(trustees) < k {
		return nil, fmt.Errorf("core: %d trustees cannot satisfy a threshold of %d", len(trustees), k)
	}
	shares, err := crypto.SplitSecret(seed, len(trustees), k)
	if err != nil {
		return nil, fmt.Errorf("core: issuing recovery shares: %w", err)
	}
	out := make([]RecoveryShare, len(trustees))
	for i, trustee := range trustees {
		out[i] = RecoveryShare{CellID: cellID, TrusteeID: trustee, Share: shares[i], Threshold: k}
	}
	return out, nil
}

// RecoverCell rebuilds a replacement cell from at least Threshold recovery
// shares. The replacement derives the same master secret and identity as the
// lost cell, restores the encrypted vault from the cloud (when one exists)
// and is ready to use.
func RecoverCell(shares []RecoveryShare, cfg Config) (*Cell, error) {
	if len(shares) == 0 {
		return nil, ErrRecoveryShares
	}
	threshold := shares[0].Threshold
	cellID := shares[0].CellID
	for _, s := range shares {
		if s.CellID != cellID {
			return nil, fmt.Errorf("core: recovery shares belong to different cells (%s vs %s)", s.CellID, cellID)
		}
	}
	if len(shares) < threshold {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrRecoveryShares, len(shares), threshold)
	}
	raw := make([]crypto.ShamirShare, len(shares))
	for i, s := range shares {
		raw[i] = s.Share
	}
	seed, err := crypto.RecoverSecret(raw, threshold)
	if err != nil {
		return nil, fmt.Errorf("core: recovering master seed: %w", err)
	}
	if cfg.ID == "" {
		cfg.ID = cellID
	}
	cfg.Seed = seed
	cell, err := New(cfg)
	if err != nil {
		return nil, err
	}
	cell.appendAudit(cfg.ID, "recover-cell", cfg.ID, audit.OutcomeAllowed,
		fmt.Sprintf("master secret rebuilt from %d shares", len(shares)), "")
	if cell.cloud != nil {
		if _, err := cell.RestoreVault(); err != nil && !errors.Is(err, ErrVaultMissing) {
			return nil, fmt.Errorf("core: recovered cell cannot restore its vault: %w", err)
		}
	}
	return cell, nil
}

// HardwareClassOf is a small helper so callers recovering a cell on new
// hardware can keep the previous class explicit in their code.
func HardwareClassOf(c *Cell) tamper.HardwareClass { return c.tee.Profile().Class }
