package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"trustedcells/internal/audit"
	"trustedcells/internal/crypto"
	"trustedcells/internal/datamodel"
)

// Errors returned by vault synchronization.
var (
	ErrVaultRollback = errors.New("core: cloud returned an older vault version (rollback attack)")
	ErrVaultMissing  = errors.New("core: no vault found in the cloud")
)

// vaultCounter is the TEE monotonic counter tracking the vault version.
const vaultCounter = "vault-version"

// vaultBlobName is the cloud blob holding a user's encrypted catalog.
func vaultBlobName(userID string) string { return userID + "/catalog" }

// SyncVault seals the metadata catalog under the cell's metadata key and
// pushes it to the cloud. The version number comes from a TEE monotonic
// counter and is embedded in the sealed payload so that a replaying cloud
// cannot serve an older vault without detection.
func (c *Cell) SyncVault() (uint64, error) {
	if c.tee.Locked() {
		return 0, ErrNotOwner
	}
	if c.cloud == nil {
		return 0, ErrNoCloud
	}
	version, err := c.tee.CounterIncrement(vaultCounter)
	if err != nil {
		return 0, err
	}
	payload, err := c.catalog.EncodeCatalog()
	if err != nil {
		return 0, fmt.Errorf("core: sync vault: %w", err)
	}
	var versioned []byte
	var vbuf [8]byte
	binary.BigEndian.PutUint64(vbuf[:], version)
	versioned = append(versioned, vbuf[:]...)
	versioned = append(versioned, payload...)
	sealed, err := crypto.Seal(c.keys.MetadataKey(), versioned, []byte("vault:"+c.id))
	if err != nil {
		return 0, fmt.Errorf("core: sync vault: %w", err)
	}
	if _, err := c.cloud.PutBlob(vaultBlobName(c.id), sealed); err != nil {
		return 0, fmt.Errorf("core: sync vault: %w", err)
	}
	c.appendAudit(c.id, "sync-vault", vaultBlobName(c.id), audit.OutcomeAllowed,
		fmt.Sprintf("version %d", version), "")
	return version, nil
}

// RestoreVault fetches the encrypted catalog from the cloud, verifies its
// integrity and freshness (the embedded version must not be older than the
// TEE counter) and replaces the in-cell catalog. This is how Charlie, at an
// internet café with only his portable cell, recovers access to his whole
// digital space from any terminal without leaving a trace.
func (c *Cell) RestoreVault() (uint64, error) {
	if c.tee.Locked() {
		return 0, ErrNotOwner
	}
	if c.cloud == nil {
		return 0, ErrNoCloud
	}
	blob, err := c.cloud.GetBlob(vaultBlobName(c.id))
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrVaultMissing, err)
	}
	plain, ad, err := crypto.Open(c.keys.MetadataKey(), blob.Data)
	if err != nil {
		c.appendAudit(c.id, "restore-vault", vaultBlobName(c.id), audit.OutcomeError, "integrity failure", "")
		return 0, fmt.Errorf("%w: vault envelope", ErrIntegrity)
	}
	if string(ad) != "vault:"+c.id {
		return 0, fmt.Errorf("%w: vault bound to another cell", ErrIntegrity)
	}
	if len(plain) < 8 {
		return 0, fmt.Errorf("%w: truncated vault", ErrIntegrity)
	}
	version := binary.BigEndian.Uint64(plain[:8])
	current, err := c.tee.CounterValue(vaultCounter)
	if err != nil {
		return 0, err
	}
	if version < current {
		c.appendAudit(c.id, "restore-vault", vaultBlobName(c.id), audit.OutcomeError, "rollback detected", "")
		return 0, ErrVaultRollback
	}
	catalog, err := datamodel.LoadCatalog(plain[8:])
	if err != nil {
		return 0, fmt.Errorf("core: restore vault: %w", err)
	}
	if err := c.tee.CounterAdvanceTo(vaultCounter, version); err != nil {
		return 0, err
	}
	c.mu.Lock()
	c.catalog = catalog
	c.mu.Unlock()
	c.appendAudit(c.id, "restore-vault", vaultBlobName(c.id), audit.OutcomeAllowed,
		fmt.Sprintf("version %d, %d documents", version, catalog.Len()), "")
	return version, nil
}
