package core

import (
	"runtime"
	"sync"
)

// maxCryptoWorkers bounds the per-call worker pool of batched seal and open
// operations, so one huge batch on a large host does not starve the rest of
// the cell. IngestBatch, ReadBatch and AggregateBatch all share this cap.
const maxCryptoWorkers = 8

// parallelDo runs fn(i) for every i in [0, n) across a bounded pool of at
// most workers goroutines — never more than GOMAXPROCS, since the batch
// workloads are pure CPU and extra goroutines would only add scheduling
// noise. Small inputs degrade to a plain loop on the calling goroutine.
func parallelDo(n, workers int, fn func(int)) {
	if w := runtime.GOMAXPROCS(0); workers > w {
		workers = w
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
