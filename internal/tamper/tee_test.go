package tamper

import (
	"strings"
	"testing"
	"time"

	"trustedcells/internal/crypto"
)

func newUnlockedTEE(t *testing.T, class HardwareClass) *TEE {
	t.Helper()
	tee := New(DefaultProfile(class))
	if err := tee.Provision("1234"); err != nil {
		t.Fatalf("Provision: %v", err)
	}
	if err := tee.Unlock("1234"); err != nil {
		t.Fatalf("Unlock: %v", err)
	}
	return tee
}

func TestHardwareClassString(t *testing.T) {
	classes := []HardwareClass{ClassSecureToken, ClassSecureMCU, ClassTrustZonePhone, ClassHomeGateway, ClassCloudServer}
	seen := make(map[string]bool)
	for _, c := range classes {
		s := c.String()
		if s == "" || strings.Contains(s, "hardware-class(") {
			t.Fatalf("missing name for class %d: %q", c, s)
		}
		if seen[s] {
			t.Fatalf("duplicate class name %q", s)
		}
		seen[s] = true
	}
	if !strings.Contains(HardwareClass(99).String(), "99") {
		t.Fatal("unknown class should include its numeric value")
	}
}

func TestDefaultProfilesOrdering(t *testing.T) {
	token := DefaultProfile(ClassSecureToken)
	phone := DefaultProfile(ClassTrustZonePhone)
	cloud := DefaultProfile(ClassCloudServer)
	if !(token.RAMBudget < phone.RAMBudget && phone.RAMBudget < cloud.RAMBudget) {
		t.Fatal("RAM budgets should grow from token to cloud")
	}
	if !(token.CPUFactor > phone.CPUFactor && phone.CPUFactor > cloud.CPUFactor) {
		t.Fatal("CPU factor should shrink from token to cloud")
	}
}

func TestProvisionAndUnlock(t *testing.T) {
	tee := New(DefaultProfile(ClassSecureMCU))
	if !tee.Locked() {
		t.Fatal("unprovisioned TEE should report locked")
	}
	if _, err := tee.KeyHierarchy(); err != ErrNotProvisioned {
		t.Fatalf("expected ErrNotProvisioned, got %v", err)
	}
	if err := tee.Provision("pin"); err != nil {
		t.Fatalf("Provision: %v", err)
	}
	if err := tee.Provision("pin"); err == nil {
		t.Fatal("double provisioning accepted")
	}
	if _, err := tee.KeyHierarchy(); err != ErrLocked {
		t.Fatalf("expected ErrLocked, got %v", err)
	}
	if err := tee.Unlock("wrong"); err != ErrBadPIN {
		t.Fatalf("expected ErrBadPIN, got %v", err)
	}
	if err := tee.Unlock("pin"); err != nil {
		t.Fatalf("Unlock: %v", err)
	}
	if tee.Locked() {
		t.Fatal("TEE should be unlocked")
	}
	if _, err := tee.KeyHierarchy(); err != nil {
		t.Fatalf("KeyHierarchy after unlock: %v", err)
	}
	tee.Lock()
	if !tee.Locked() {
		t.Fatal("Lock did not relock the TEE")
	}
}

func TestBrickAfterRepeatedFailures(t *testing.T) {
	tee := New(DefaultProfile(ClassSecureToken))
	if err := tee.Provision("secret"); err != nil {
		t.Fatal(err)
	}
	var lastErr error
	for i := 0; i < MaxPINFailures; i++ {
		lastErr = tee.Unlock("nope")
	}
	if lastErr != ErrBricked {
		t.Fatalf("expected ErrBricked on failure %d, got %v", MaxPINFailures, lastErr)
	}
	if !tee.Bricked() {
		t.Fatal("TEE should be bricked")
	}
	if err := tee.Unlock("secret"); err != ErrBricked {
		t.Fatalf("bricked TEE accepted correct PIN: %v", err)
	}
}

func TestUnlockResetsFailureCount(t *testing.T) {
	tee := New(DefaultProfile(ClassSecureToken))
	_ = tee.Provision("secret")
	_ = tee.Unlock("bad")
	if err := tee.Unlock("secret"); err != nil {
		t.Fatalf("Unlock after one failure: %v", err)
	}
	_ = tee.Unlock("bad")
	_ = tee.Unlock("bad")
	if tee.Bricked() {
		t.Fatal("TEE bricked although failures were interleaved with success")
	}
}

func TestProvisionDeterministic(t *testing.T) {
	a := New(DefaultProfile(ClassHomeGateway))
	b := New(DefaultProfile(ClassHomeGateway))
	if err := a.ProvisionDeterministic([]byte("alice"), "p"); err != nil {
		t.Fatal(err)
	}
	if err := b.ProvisionDeterministic([]byte("alice"), "p"); err != nil {
		t.Fatal(err)
	}
	_ = a.Unlock("p")
	_ = b.Unlock("p")
	ia, _ := a.Identity()
	ib, _ := b.Identity()
	if !ia.Equal(ib) {
		t.Fatal("same seed produced different identities")
	}
	c := New(DefaultProfile(ClassHomeGateway))
	if err := c.ProvisionDeterministic(nil, "p"); err == nil {
		t.Fatal("empty seed accepted")
	}
}

func TestSealAndUseSecret(t *testing.T) {
	tee := newUnlockedTEE(t, ClassSecureMCU)
	key, _ := crypto.NewSymmetricKey()
	if err := tee.SealSecret("doc-key", key); err != nil {
		t.Fatalf("SealSecret: %v", err)
	}
	if !tee.HasSecret("doc-key") {
		t.Fatal("HasSecret did not find sealed secret")
	}
	var used bool
	err := tee.UseSecret("doc-key", func(k crypto.SymmetricKey) error {
		used = true
		if k != key {
			t.Fatal("sealed key differs from the one sealed")
		}
		return nil
	})
	if err != nil || !used {
		t.Fatalf("UseSecret: err=%v used=%v", err, used)
	}
	if err := tee.UseSecret("missing", func(crypto.SymmetricKey) error { return nil }); err != ErrNoSuchSecret {
		t.Fatalf("expected ErrNoSuchSecret, got %v", err)
	}
	tee.Lock()
	if err := tee.UseSecret("doc-key", func(crypto.SymmetricKey) error { return nil }); err != ErrLocked {
		t.Fatalf("locked TEE allowed secret use: %v", err)
	}
}

func TestMonotonicCounters(t *testing.T) {
	tee := newUnlockedTEE(t, ClassSecureMCU)
	v1, err := tee.CounterIncrement("vault-version")
	if err != nil || v1 != 1 {
		t.Fatalf("first increment = %d, %v", v1, err)
	}
	v2, _ := tee.CounterIncrement("vault-version")
	if v2 != 2 {
		t.Fatalf("second increment = %d", v2)
	}
	if v, _ := tee.CounterValue("vault-version"); v != 2 {
		t.Fatalf("CounterValue = %d, want 2", v)
	}
	if err := tee.CounterAdvanceTo("vault-version", 10); err != nil {
		t.Fatalf("CounterAdvanceTo forward: %v", err)
	}
	if err := tee.CounterAdvanceTo("vault-version", 5); err != ErrCounterRewind {
		t.Fatalf("rewind accepted: %v", err)
	}
	if v, _ := tee.CounterValue("other"); v != 0 {
		t.Fatalf("fresh counter = %d", v)
	}
}

func TestSignAndIdentity(t *testing.T) {
	tee := newUnlockedTEE(t, ClassTrustZonePhone)
	msg := []byte("monthly statistics for the distribution company")
	sig, err := tee.Sign(msg)
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	id, err := tee.Identity()
	if err != nil {
		t.Fatalf("Identity: %v", err)
	}
	if err := id.Verify(msg, sig); err != nil {
		t.Fatalf("signature does not verify: %v", err)
	}
}

func TestAttestation(t *testing.T) {
	tee := newUnlockedTEE(t, ClassTrustZonePhone)
	nonce := []byte("verifier-nonce-1")
	att, err := tee.Attest(nonce)
	if err != nil {
		t.Fatalf("Attest: %v", err)
	}
	vk, err := VerifyAttestation(att, nonce)
	if err != nil {
		t.Fatalf("VerifyAttestation: %v", err)
	}
	id, _ := tee.Identity()
	if !vk.Equal(id) {
		t.Fatal("attested key differs from identity")
	}
	if _, err := VerifyAttestation(att, []byte("other-nonce")); err == nil {
		t.Fatal("replayed attestation accepted with different nonce")
	}
	att.Class = ClassCloudServer
	if _, err := VerifyAttestation(att, nonce); err == nil {
		t.Fatal("attestation with modified class accepted")
	}
}

func TestCheckRAM(t *testing.T) {
	tee := New(DefaultProfile(ClassSecureToken))
	if err := tee.CheckRAM(32 << 10); err != nil {
		t.Fatalf("32 KiB should fit a 64 KiB token: %v", err)
	}
	if err := tee.CheckRAM(1 << 20); err == nil {
		t.Fatal("1 MiB accepted on a 64 KiB token")
	}
}

func TestCostMeter(t *testing.T) {
	var m CostMeter
	m.ChargeCPU(100)
	m.ChargeRead(3)
	m.ChargeWrite(2)
	m.ChargeNet(1500)
	cpu, r, w, nb, nr := m.Snapshot()
	if cpu != 100 || r != 3 || w != 2 || nb != 1500 || nr != 1 {
		t.Fatalf("unexpected snapshot %v %v %v %v %v", cpu, r, w, nb, nr)
	}
	token := DefaultProfile(ClassSecureToken)
	cloud := DefaultProfile(ClassCloudServer)
	if m.SimulatedTime(token) <= m.SimulatedTime(cloud) {
		t.Fatal("the same work should take longer on a token than in the cloud")
	}
	if m.Energy(token) <= m.Energy(cloud) {
		t.Fatal("the same writes should cost more energy on a token")
	}
	m.Reset()
	if d := m.SimulatedTime(token); d != 0 {
		t.Fatalf("after Reset simulated time = %v", d)
	}
}

func TestSimulatedTimeComponents(t *testing.T) {
	p := Profile{CPUFactor: 1, ReadLatency: time.Millisecond, WriteLatency: 2 * time.Millisecond,
		NetLatency: 10 * time.Millisecond, NetBandwidth: 1000}
	var m CostMeter
	m.ChargeRead(1)
	m.ChargeWrite(1)
	m.ChargeNet(1000) // 1 second at 1000 B/s
	want := time.Millisecond + 2*time.Millisecond + 10*time.Millisecond + time.Second
	if got := m.SimulatedTime(p); got != want {
		t.Fatalf("SimulatedTime = %v, want %v", got, want)
	}
}
