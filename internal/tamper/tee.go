// Package tamper simulates the secure-hardware substrate that the trusted
// cells vision assumes: a tamper-resistant execution environment (TEE) with a
// sealed key store, monotonic counters, attestation, and hard resource limits
// that model the spectrum of devices the paper enumerates (secure tokens,
// smart cards, set-top boxes, TrustZone smartphones).
//
// The simulation enforces the same *interface* guarantees the paper relies
// on: secrets sealed into the TEE can only be used, never exported; state
// updates go through monotonic counters so rollback is detectable; and every
// operation is charged against the profile's CPU/RAM/IO budget so that the
// experiments can contrast a 64 KiB secure token with a home gateway.
package tamper

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"trustedcells/internal/crypto"
)

// Errors returned by the TEE.
var (
	ErrSealed         = errors.New("tamper: secret is sealed and cannot be exported")
	ErrNoSuchSecret   = errors.New("tamper: no such sealed secret")
	ErrCounterRewind  = errors.New("tamper: monotonic counter cannot move backwards")
	ErrBudgetExceeded = errors.New("tamper: operation exceeds the hardware RAM budget")
	ErrNotProvisioned = errors.New("tamper: TEE has not been provisioned with a master secret")
	ErrLocked         = errors.New("tamper: TEE is locked; authenticate first")
	ErrBadPIN         = errors.New("tamper: authentication failed")
	ErrBricked        = errors.New("tamper: too many failed authentications, TEE is bricked")
)

// HardwareClass enumerates the device classes discussed in the paper.
type HardwareClass int

const (
	// ClassSecureToken is a smart-card-grade secure portable token: tiny RAM,
	// slow CPU, NAND flash behind a narrow bus (the PDS-style device).
	ClassSecureToken HardwareClass = iota
	// ClassSecureMCU is a secure microcontroller such as a power-meter or
	// home-gateway co-processor.
	ClassSecureMCU
	// ClassTrustZonePhone is an ARM TrustZone smartphone.
	ClassTrustZonePhone
	// ClassHomeGateway is a set-top-box / home-gateway class device.
	ClassHomeGateway
	// ClassCloudServer is an untrusted cloud server, included so the cost
	// model can also be applied to infrastructure-side computation.
	ClassCloudServer
)

// String returns the human-readable name of the class.
func (c HardwareClass) String() string {
	switch c {
	case ClassSecureToken:
		return "secure-token"
	case ClassSecureMCU:
		return "secure-mcu"
	case ClassTrustZonePhone:
		return "trustzone-phone"
	case ClassHomeGateway:
		return "home-gateway"
	case ClassCloudServer:
		return "cloud-server"
	default:
		return fmt.Sprintf("hardware-class(%d)", int(c))
	}
}

// Profile captures the resource envelope of a hardware class. The simulator
// and the embedded storage engine use it to bound RAM and to convert abstract
// work units into simulated time.
type Profile struct {
	Class HardwareClass
	// RAMBudget is the usable secure RAM in bytes.
	RAMBudget int
	// CPUFactor scales compute cost: simulated nanoseconds per work unit.
	CPUFactor float64
	// ReadLatency and WriteLatency model stable-storage (flash) access for a
	// 512-byte page.
	ReadLatency  time.Duration
	WriteLatency time.Duration
	// NetLatency and NetBandwidth model the link between the device and the
	// untrusted infrastructure.
	NetLatency   time.Duration
	NetBandwidth float64 // bytes per second
	// EnergyPerPage is an abstract energy unit charged per flash page write,
	// used by the co-design experiments.
	EnergyPerPage float64
}

// DefaultProfile returns the canonical profile for a hardware class. The
// numbers are calibrated to the orders of magnitude reported for smart-card
// microcontrollers, Cortex-M class MCUs and application processors.
func DefaultProfile(c HardwareClass) Profile {
	switch c {
	case ClassSecureToken:
		return Profile{
			Class: c, RAMBudget: 64 << 10, CPUFactor: 40,
			ReadLatency: 120 * time.Microsecond, WriteLatency: 450 * time.Microsecond,
			NetLatency: 30 * time.Millisecond, NetBandwidth: 100 << 10,
			EnergyPerPage: 8,
		}
	case ClassSecureMCU:
		return Profile{
			Class: c, RAMBudget: 1 << 20, CPUFactor: 10,
			ReadLatency: 60 * time.Microsecond, WriteLatency: 250 * time.Microsecond,
			NetLatency: 20 * time.Millisecond, NetBandwidth: 1 << 20,
			EnergyPerPage: 4,
		}
	case ClassTrustZonePhone:
		return Profile{
			Class: c, RAMBudget: 64 << 20, CPUFactor: 2,
			ReadLatency: 25 * time.Microsecond, WriteLatency: 90 * time.Microsecond,
			NetLatency: 40 * time.Millisecond, NetBandwidth: 5 << 20,
			EnergyPerPage: 2,
		}
	case ClassHomeGateway:
		return Profile{
			Class: c, RAMBudget: 256 << 20, CPUFactor: 1.5,
			ReadLatency: 20 * time.Microsecond, WriteLatency: 70 * time.Microsecond,
			NetLatency: 15 * time.Millisecond, NetBandwidth: 10 << 20,
			EnergyPerPage: 1.5,
		}
	case ClassCloudServer:
		return Profile{
			Class: c, RAMBudget: 8 << 30, CPUFactor: 1,
			ReadLatency: 10 * time.Microsecond, WriteLatency: 30 * time.Microsecond,
			NetLatency: 5 * time.Millisecond, NetBandwidth: 100 << 20,
			EnergyPerPage: 1,
		}
	default:
		return Profile{Class: c, RAMBudget: 1 << 20, CPUFactor: 1,
			ReadLatency: time.Microsecond, WriteLatency: time.Microsecond,
			NetLatency: time.Millisecond, NetBandwidth: 1 << 20, EnergyPerPage: 1}
	}
}

// CostMeter accumulates the simulated cost of operations executed inside a
// TEE. It is the measurement hook for the hardware-profile experiments.
type CostMeter struct {
	mu          sync.Mutex
	cpuUnits    float64
	pageReads   int64
	pageWrites  int64
	netBytes    int64
	netRequests int64
}

// ChargeCPU adds work units of compute.
func (m *CostMeter) ChargeCPU(units float64) {
	m.mu.Lock()
	m.cpuUnits += units
	m.mu.Unlock()
}

// ChargeRead adds n page reads.
func (m *CostMeter) ChargeRead(n int) {
	m.mu.Lock()
	m.pageReads += int64(n)
	m.mu.Unlock()
}

// ChargeWrite adds n page writes.
func (m *CostMeter) ChargeWrite(n int) {
	m.mu.Lock()
	m.pageWrites += int64(n)
	m.mu.Unlock()
}

// ChargeNet adds one network request of the given size.
func (m *CostMeter) ChargeNet(bytes int) {
	m.mu.Lock()
	m.netBytes += int64(bytes)
	m.netRequests++
	m.mu.Unlock()
}

// Snapshot returns the accumulated raw counters.
func (m *CostMeter) Snapshot() (cpuUnits float64, pageReads, pageWrites, netBytes, netRequests int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cpuUnits, m.pageReads, m.pageWrites, m.netBytes, m.netRequests
}

// Reset zeroes all counters.
func (m *CostMeter) Reset() {
	m.mu.Lock()
	m.cpuUnits = 0
	m.pageReads = 0
	m.pageWrites = 0
	m.netBytes = 0
	m.netRequests = 0
	m.mu.Unlock()
}

// SimulatedTime converts the accumulated counters into simulated wall time
// under the given profile.
func (m *CostMeter) SimulatedTime(p Profile) time.Duration {
	cpu, reads, writes, netBytes, netReqs := m.Snapshot()
	d := time.Duration(cpu*p.CPUFactor) * time.Nanosecond
	d += time.Duration(reads) * p.ReadLatency
	d += time.Duration(writes) * p.WriteLatency
	d += time.Duration(netReqs) * p.NetLatency
	if p.NetBandwidth > 0 {
		d += time.Duration(float64(netBytes) / p.NetBandwidth * float64(time.Second))
	}
	return d
}

// Energy converts page writes into abstract energy units under the profile.
func (m *CostMeter) Energy(p Profile) float64 {
	_, _, writes, _, _ := m.Snapshot()
	return float64(writes) * p.EnergyPerPage
}

// TEE is a simulated trusted execution environment. It holds sealed secrets
// that can be used through the TEE API but never exported, plus monotonic
// counters and the device's attestation identity.
type TEE struct {
	mu       sync.Mutex
	profile  Profile
	master   crypto.SymmetricKey
	identity *crypto.SigningKey
	sealed   map[string]crypto.SymmetricKey
	counters map[string]uint64
	meter    *CostMeter

	provisioned bool
	locked      bool
	pinHash     []byte
	pinFailures int
	maxFailures int
	bricked     bool
}

// MaxPINFailures is the number of consecutive authentication failures after
// which the TEE bricks itself (smart-card behaviour).
const MaxPINFailures = 3

// New creates a TEE with the given profile. The TEE starts unprovisioned and
// unlocked; Provision installs the master secret and the owner PIN.
func New(p Profile) *TEE {
	return &TEE{
		profile:     p,
		sealed:      make(map[string]crypto.SymmetricKey),
		counters:    make(map[string]uint64),
		meter:       &CostMeter{},
		maxFailures: MaxPINFailures,
	}
}

// Profile returns the hardware profile of the device.
func (t *TEE) Profile() Profile { return t.profile }

// Meter returns the device cost meter.
func (t *TEE) Meter() *CostMeter { return t.meter }

// Provision installs a fresh master secret and identity key, protected by the
// owner PIN. It can only be called once.
func (t *TEE) Provision(pin string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.provisioned {
		return errors.New("tamper: TEE already provisioned")
	}
	master, err := crypto.NewSymmetricKey()
	if err != nil {
		return fmt.Errorf("tamper: provisioning: %w", err)
	}
	identity, err := crypto.NewSigningKey()
	if err != nil {
		return fmt.Errorf("tamper: provisioning: %w", err)
	}
	t.master = master
	t.identity = identity
	t.pinHash = crypto.Hash([]byte("pin:" + pin))
	t.provisioned = true
	t.locked = true
	return nil
}

// ProvisionDeterministic installs a master secret and identity derived from a
// seed. Used by the simulator to build reproducible cell populations; real
// deployments use Provision.
func (t *TEE) ProvisionDeterministic(seed []byte, pin string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.provisioned {
		return errors.New("tamper: TEE already provisioned")
	}
	if len(seed) == 0 {
		return errors.New("tamper: empty provisioning seed")
	}
	h := crypto.Hash(append([]byte("tee-master:"), seed...))
	master, err := crypto.SymmetricKeyFromBytes(h)
	if err != nil {
		return err
	}
	idSeed := crypto.Hash(append([]byte("tee-identity:"), seed...))
	identity, err := crypto.SigningKeyFromSeed(idSeed)
	if err != nil {
		return err
	}
	t.master = master
	t.identity = identity
	t.pinHash = crypto.Hash([]byte("pin:" + pin))
	t.provisioned = true
	t.locked = true
	return nil
}

// Unlock authenticates the owner. The paper notes that even the owner cannot
// read raw cell state; Unlock only enables use of the TEE API, it never
// exports secrets.
func (t *TEE) Unlock(pin string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.provisioned {
		return ErrNotProvisioned
	}
	if t.bricked {
		return ErrBricked
	}
	if string(t.pinHash) != string(crypto.Hash([]byte("pin:"+pin))) {
		t.pinFailures++
		if t.pinFailures >= t.maxFailures {
			t.bricked = true
			return ErrBricked
		}
		return ErrBadPIN
	}
	t.pinFailures = 0
	t.locked = false
	return nil
}

// Lock relocks the TEE (e.g. when the device is put away).
func (t *TEE) Lock() {
	t.mu.Lock()
	t.locked = true
	t.mu.Unlock()
}

// Locked reports whether the TEE currently requires authentication.
func (t *TEE) Locked() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.locked || !t.provisioned
}

// Bricked reports whether the TEE destroyed its secrets after repeated
// authentication failures.
func (t *TEE) Bricked() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.bricked
}

func (t *TEE) usable() error {
	if !t.provisioned {
		return ErrNotProvisioned
	}
	if t.bricked {
		return ErrBricked
	}
	if t.locked {
		return ErrLocked
	}
	return nil
}

// KeyHierarchy returns the key hierarchy rooted at the sealed master secret.
// The hierarchy object performs derivations inside the TEE boundary.
func (t *TEE) KeyHierarchy() (*crypto.KeyHierarchy, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.usable(); err != nil {
		return nil, err
	}
	t.meter.ChargeCPU(5)
	return crypto.NewKeyHierarchy(t.master), nil
}

// Identity returns the device's attestation public key.
func (t *TEE) Identity() (crypto.VerifyKey, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.provisioned {
		return crypto.VerifyKey{}, ErrNotProvisioned
	}
	return t.identity.Public(), nil
}

// Sign signs msg with the device identity key (certified data, protocol
// messages). Available only when unlocked.
func (t *TEE) Sign(msg []byte) ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.usable(); err != nil {
		return nil, err
	}
	t.meter.ChargeCPU(float64(50 + len(msg)/64))
	return t.identity.Sign(msg), nil
}

// SealSecret stores a named symmetric key inside the TEE. The key can later
// be used via UseSecret but never read back.
func (t *TEE) SealSecret(name string, key crypto.SymmetricKey) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.usable(); err != nil {
		return err
	}
	t.sealed[name] = key
	return nil
}

// UseSecret runs fn with the named sealed secret without exposing it outside
// the TEE boundary. fn must not retain the key.
func (t *TEE) UseSecret(name string, fn func(crypto.SymmetricKey) error) error {
	t.mu.Lock()
	key, ok := t.sealed[name]
	err := t.usable()
	t.mu.Unlock()
	if err != nil {
		return err
	}
	if !ok {
		return ErrNoSuchSecret
	}
	return fn(key)
}

// HasSecret reports whether a named secret is sealed in the TEE.
func (t *TEE) HasSecret(name string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	_, ok := t.sealed[name]
	return ok
}

// CounterIncrement advances a named monotonic counter and returns its new
// value. Monotonic counters let cells detect rollback of cloud state.
func (t *TEE) CounterIncrement(name string) (uint64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.usable(); err != nil {
		return 0, err
	}
	t.counters[name]++
	return t.counters[name], nil
}

// CounterValue returns the current value of a named counter.
func (t *TEE) CounterValue(name string) (uint64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.usable(); err != nil {
		return 0, err
	}
	return t.counters[name], nil
}

// CounterAdvanceTo sets a counter to v, which must not be lower than the
// current value. Used when restoring state from a trusted backup.
func (t *TEE) CounterAdvanceTo(name string, v uint64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.usable(); err != nil {
		return err
	}
	if v < t.counters[name] {
		return ErrCounterRewind
	}
	t.counters[name] = v
	return nil
}

// Attestation is a signed statement of the device class and identity that a
// peer cell can verify before exchanging data ("proof of legitimacy for the
// credentials exposed by the participants").
type Attestation struct {
	Class     HardwareClass
	PublicKey []byte
	Nonce     []byte
	Signature []byte
}

// Attest produces an attestation bound to the caller-supplied nonce.
func (t *TEE) Attest(nonce []byte) (Attestation, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.usable(); err != nil {
		return Attestation{}, err
	}
	pub := t.identity.Public().Bytes()
	msg := attestationMessage(t.profile.Class, pub, nonce)
	t.meter.ChargeCPU(60)
	return Attestation{
		Class:     t.profile.Class,
		PublicKey: pub,
		Nonce:     append([]byte(nil), nonce...),
		Signature: t.identity.Sign(msg),
	}, nil
}

// VerifyAttestation checks an attestation against the nonce the verifier
// issued. It returns the attested identity key on success.
func VerifyAttestation(a Attestation, nonce []byte) (crypto.VerifyKey, error) {
	if string(a.Nonce) != string(nonce) {
		return crypto.VerifyKey{}, errors.New("tamper: attestation nonce mismatch")
	}
	vk, err := crypto.VerifyKeyFromBytes(a.PublicKey)
	if err != nil {
		return crypto.VerifyKey{}, fmt.Errorf("tamper: attestation key: %w", err)
	}
	msg := attestationMessage(a.Class, a.PublicKey, a.Nonce)
	if err := vk.Verify(msg, a.Signature); err != nil {
		return crypto.VerifyKey{}, fmt.Errorf("tamper: attestation: %w", err)
	}
	return vk, nil
}

func attestationMessage(class HardwareClass, pub, nonce []byte) []byte {
	msg := make([]byte, 0, 16+len(pub)+len(nonce))
	msg = append(msg, []byte(fmt.Sprintf("attest:%d:", int(class)))...)
	msg = append(msg, pub...)
	msg = append(msg, ':')
	msg = append(msg, nonce...)
	return msg
}

// CheckRAM verifies that a requested working-set size fits the profile's RAM
// budget. The embedded storage engine calls it before allocating buffers.
func (t *TEE) CheckRAM(bytes int) error {
	if bytes > t.profile.RAMBudget {
		return fmt.Errorf("%w: need %d bytes, budget %d", ErrBudgetExceeded, bytes, t.profile.RAMBudget)
	}
	return nil
}
