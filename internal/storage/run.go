package storage

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
	"sync/atomic"
)

// A run is an immutable sorted block of entries written sequentially to the
// device. Runs are the on-flash representation of flushed memtables and of
// compaction outputs.
//
// On-device layout of a run (current format, "footered"):
//
//	[4] crc32 over the body
//	[4] bit 31: footer-present flag; bits 0..30: body length
//	body: repeated prefix-compressed entries
//	  [uvarint] shared key prefix length (0 at restart points)
//	  [uvarint] unshared key suffix length
//	  [uvarint] value length (0 for tombstones)
//	  [1]       flags (bit 0 = tombstone)
//	  [suffix]  unshared key bytes
//	  [v]       value
//	footer:
//	  [4] crc32 over the footer payload
//	  [4] footer payload length
//	  payload: entry count, first/last key, bloom filter, sparse index
//
// Keys share their prefix with the previous entry except at restart points —
// every sparseEvery-th entry, exactly where the sparse index points — so any
// indexed segment can be decoded standalone. The footer carries everything
// openRun needs to rebuild the in-RAM descriptor (count, key range, bloom
// filter, sparse index) without re-parsing the body: recovery reads the body
// once to verify its checksum and never decodes an entry.
//
// Runs written before the footer format — bit 31 of the length word clear —
// remain readable: their plain-encoded bodies are parsed entry by entry on
// open (rebuilding the descriptor the old way) and a bloom filter is built
// from the parsed keys, so even legacy runs get the negative-lookup fast
// path. The next compaction rewrites them in the current format.
//
// Each run keeps a sparse index in RAM: every sparseEvery-th key and its byte
// offset inside the body, so a point lookup reads only a bounded slice of the
// body. The sparse index is tiny (a few entries per run) which is what makes
// the engine viable on a 64 KiB token.
type run struct {
	id     uint64 // process-unique id, keys the block cache
	offset int64  // device offset of the body
	length int    // body length in bytes
	tail   int    // footer bytes following the body (0 for legacy runs)
	// prefixed marks a prefix-compressed body; legacy bodies are plain.
	prefixed bool
	count    int
	filter   *bloomFilter
	// sparse index: sorted by key.
	indexKeys    [][]byte
	indexOffsets []int
	first, last  []byte
}

// extent is the total on-device size of the run including its 8-byte header.
func (r *run) extent() int64 { return 8 + int64(r.length) + int64(r.tail) }

// sparseEvery controls the sparse index granularity and the prefix
// compression restart interval (they must coincide: an indexed segment starts
// at a restart point so it can be decoded without earlier context).
const sparseEvery = 16

// runFlagTombstone marks deleted entries.
const runFlagTombstone = 0x01

// runFooterFlag is set in the header length word of footered runs.
const runFooterFlag = 1 << 31

// runIDs allocates process-unique run ids; ids are never reused, so block
// cache entries of a replaced run can simply be dropped by id.
var runIDs atomic.Uint64

// encodeEntry appends the legacy plain encoding of (key, value, tombstone) to
// buf. Kept for reading (and, in tests, writing) pre-footer runs.
func encodeEntry(buf []byte, key, value []byte, tombstone bool) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(key)))
	buf = append(buf, tmp[:n]...)
	n = binary.PutUvarint(tmp[:], uint64(len(value)))
	buf = append(buf, tmp[:n]...)
	var flags byte
	if tombstone {
		flags |= runFlagTombstone
	}
	buf = append(buf, flags)
	buf = append(buf, key...)
	buf = append(buf, value...)
	return buf
}

// decodeEntry decodes one legacy plain entry from b, returning the entry and
// the number of bytes consumed. The returned key and value are copies.
func decodeEntry(b []byte) (memEntry, int, error) {
	klen, n1 := binary.Uvarint(b)
	if n1 <= 0 {
		return memEntry{}, 0, ErrCorrupt
	}
	vlen, n2 := binary.Uvarint(b[n1:])
	if n2 <= 0 {
		return memEntry{}, 0, ErrCorrupt
	}
	pos := n1 + n2
	if pos >= len(b) {
		return memEntry{}, 0, ErrCorrupt
	}
	flags := b[pos]
	pos++
	end := pos + int(klen) + int(vlen)
	if end > len(b) || int(klen) < 0 || int(vlen) < 0 {
		return memEntry{}, 0, ErrCorrupt
	}
	e := memEntry{
		key:       append([]byte(nil), b[pos:pos+int(klen)]...),
		value:     append([]byte(nil), b[pos+int(klen):end]...),
		tombstone: flags&runFlagTombstone != 0,
	}
	return e, end, nil
}

// encodePrefixedEntry appends the prefix-compressed encoding of an entry
// whose key shares `shared` leading bytes with the previous entry's key.
func encodePrefixedEntry(buf []byte, shared int, key, value []byte, tombstone bool) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(shared))
	buf = append(buf, tmp[:n]...)
	n = binary.PutUvarint(tmp[:], uint64(len(key)-shared))
	buf = append(buf, tmp[:n]...)
	n = binary.PutUvarint(tmp[:], uint64(len(value)))
	buf = append(buf, tmp[:n]...)
	var flags byte
	if tombstone {
		flags |= runFlagTombstone
	}
	buf = append(buf, flags)
	buf = append(buf, key[shared:]...)
	buf = append(buf, value...)
	return buf
}

// decodePrefixedEntry decodes one prefix-compressed entry from b. The
// reconstructed key is appended into *prev (which must hold the previous
// entry's key and is reused as scratch); the returned value aliases b, so
// callers that retain it past the buffer's lifetime must copy. Returns the
// value, the flags byte, and the bytes consumed.
func decodePrefixedEntry(b []byte, prev *[]byte) (value []byte, flags byte, n int, err error) {
	shared, n1 := binary.Uvarint(b)
	if n1 <= 0 {
		return nil, 0, 0, ErrCorrupt
	}
	unshared, n2 := binary.Uvarint(b[n1:])
	if n2 <= 0 {
		return nil, 0, 0, ErrCorrupt
	}
	vlen, n3 := binary.Uvarint(b[n1+n2:])
	if n3 <= 0 {
		return nil, 0, 0, ErrCorrupt
	}
	pos := n1 + n2 + n3
	if pos >= len(b) {
		return nil, 0, 0, ErrCorrupt
	}
	flags = b[pos]
	pos++
	end := pos + int(unshared) + int(vlen)
	if end > len(b) || shared > uint64(len(*prev)) {
		return nil, 0, 0, ErrCorrupt
	}
	*prev = append((*prev)[:shared], b[pos:pos+int(unshared)]...)
	return b[pos+int(unshared) : end], flags, end, nil
}

// sharedPrefixLen returns the length of the common prefix of a and b.
func sharedPrefixLen(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// writeRun writes the sorted entries as a new run at the end of the device —
// header, prefix-compressed body, and footer in one write — and returns its
// descriptor. bloomBitsPerKey sizes the per-run bloom filter (0 = default
// sizing, negative = no filter).
func writeRun(dev Device, entries []memEntry, bloomBitsPerKey int) (*run, error) {
	if len(entries) == 0 {
		return nil, fmt.Errorf("storage: cannot write an empty run")
	}
	r := &run{id: runIDs.Add(1), count: len(entries), prefixed: true}
	var filter *bloomFilter
	if bloomBitsPerKey >= 0 {
		filter = newBloomFilter(len(entries), bloomBitsPerKey)
	}
	body := make([]byte, 0, 64*len(entries))
	var prevKey []byte
	for i, e := range entries {
		shared := 0
		if i%sparseEvery == 0 {
			// Restart point: full key, and a sparse index entry.
			r.indexKeys = append(r.indexKeys, append([]byte(nil), e.key...))
			r.indexOffsets = append(r.indexOffsets, len(body))
		} else {
			shared = sharedPrefixLen(prevKey, e.key)
		}
		body = encodePrefixedEntry(body, shared, e.key, e.value, e.tombstone)
		prevKey = e.key
		if filter != nil {
			filter.add(e.key)
		}
	}
	r.filter = filter
	r.first = append([]byte(nil), entries[0].key...)
	r.last = append([]byte(nil), entries[len(entries)-1].key...)
	r.length = len(body)

	footer := r.encodeFooter()
	r.tail = len(footer)

	buf := make([]byte, 8, 8+len(body)+len(footer))
	binary.BigEndian.PutUint32(buf[0:4], crc32.ChecksumIEEE(body))
	binary.BigEndian.PutUint32(buf[4:8], uint32(len(body))|runFooterFlag)
	buf = append(buf, body...)
	buf = append(buf, footer...)
	off := dev.Size()
	n, err := dev.WriteAt(buf, off)
	if err := fullWrite(n, len(buf), err); err != nil {
		return nil, fmt.Errorf("storage: write run: %w", err)
	}
	r.offset = off + 8
	return r, nil
}

// encodeFooter serializes the descriptor — count, key range, bloom filter,
// sparse index — framed as [4]crc [4]len payload.
func (r *run) encodeFooter() []byte {
	var tmp [binary.MaxVarintLen64]byte
	capHint := 64 + 16*len(r.indexKeys)
	if r.filter != nil {
		capHint += len(r.filter.bits)
	}
	payload := make([]byte, 0, capHint)
	putBytes := func(b []byte) {
		payload = append(payload, tmp[:binary.PutUvarint(tmp[:], uint64(len(b)))]...)
		payload = append(payload, b...)
	}
	payload = append(payload, tmp[:binary.PutUvarint(tmp[:], uint64(r.count))]...)
	putBytes(r.first)
	putBytes(r.last)
	payload = r.filter.marshal(payload)
	payload = append(payload, tmp[:binary.PutUvarint(tmp[:], uint64(len(r.indexKeys)))]...)
	for i, k := range r.indexKeys {
		putBytes(k)
		payload = append(payload, tmp[:binary.PutUvarint(tmp[:], uint64(r.indexOffsets[i]))]...)
	}
	footer := make([]byte, 8, 8+len(payload))
	binary.BigEndian.PutUint32(footer[0:4], crc32.ChecksumIEEE(payload))
	binary.BigEndian.PutUint32(footer[4:8], uint32(len(payload)))
	return append(footer, payload...)
}

// decodeFooter parses a footer payload into the descriptor fields.
func (r *run) decodeFooter(payload []byte) error {
	bad := func(what string) error {
		return fmt.Errorf("storage: run footer %s: %w", what, ErrCorrupt)
	}
	getBytes := func(b []byte) ([]byte, []byte, bool) {
		l, n := binary.Uvarint(b)
		if n <= 0 || l > uint64(len(b)-n) {
			return nil, nil, false
		}
		return append([]byte(nil), b[n:n+int(l)]...), b[n+int(l):], true
	}
	count, n := binary.Uvarint(payload)
	if n <= 0 || count == 0 {
		return bad("count")
	}
	r.count = int(count)
	b := payload[n:]
	var ok bool
	if r.first, b, ok = getBytes(b); !ok {
		return bad("first key")
	}
	if r.last, b, ok = getBytes(b); !ok {
		return bad("last key")
	}
	filter, n, err := unmarshalBloom(b)
	if err != nil {
		return err
	}
	r.filter = filter
	b = b[n:]
	nIndex, n := binary.Uvarint(b)
	if n <= 0 {
		return bad("index count")
	}
	b = b[n:]
	r.indexKeys = make([][]byte, 0, nIndex)
	r.indexOffsets = make([]int, 0, nIndex)
	for i := uint64(0); i < nIndex; i++ {
		var k []byte
		if k, b, ok = getBytes(b); !ok {
			return bad("index key")
		}
		off, n := binary.Uvarint(b)
		if n <= 0 || off > uint64(r.length) {
			return bad("index offset")
		}
		b = b[n:]
		r.indexKeys = append(r.indexKeys, k)
		r.indexOffsets = append(r.indexOffsets, int(off))
	}
	if len(b) != 0 {
		return bad("trailing bytes")
	}
	return nil
}

// openRun rebuilds the in-RAM descriptor (sparse index, key range, bloom
// filter, count) of the run stored at offset off. It is the recovery-path
// inverse of writeRun: the descriptor it returns is identical to the one
// writeRun produced before the crash. For footered runs the descriptor comes
// from the footer and the body is only checksummed, never decoded; legacy
// runs are re-parsed entry by entry and get a bloom filter rebuilt from their
// keys. Torn or corrupted runs (body or footer extending past the device,
// CRC mismatch, undecodable entries) come back as ErrCorrupt-wrapped errors
// so the caller can truncate the tail.
func openRun(dev Device, off int64) (*run, error) {
	size := dev.Size()
	if off+8 > size {
		return nil, fmt.Errorf("storage: run header at %d past device end %d: %w", off, size, ErrCorrupt)
	}
	header := make([]byte, 8)
	n, err := dev.ReadAt(header, off)
	if err := fullRead(n, len(header), err); err != nil {
		return nil, fmt.Errorf("storage: open run header: %w", err)
	}
	want := binary.BigEndian.Uint32(header[0:4])
	word := binary.BigEndian.Uint32(header[4:8])
	footered := word&runFooterFlag != 0
	length := int64(word &^ runFooterFlag)
	if length == 0 || off+8+length > size {
		return nil, fmt.Errorf("storage: run body of %d bytes at %d exceeds device end %d: %w",
			length, off, size, ErrCorrupt)
	}
	body := make([]byte, length)
	n, err = dev.ReadAt(body, off+8)
	if err := fullRead(n, int(length), err); err != nil {
		return nil, fmt.Errorf("storage: open run body: %w", err)
	}
	if crc32.ChecksumIEEE(body) != want {
		return nil, fmt.Errorf("storage: run body checksum mismatch: %w", ErrCorrupt)
	}
	r := &run{id: runIDs.Add(1), offset: off + 8, length: int(length)}

	if footered {
		footerOff := off + 8 + length
		if footerOff+8 > size {
			return nil, fmt.Errorf("storage: run footer header at %d past device end %d: %w", footerOff, size, ErrCorrupt)
		}
		fh := make([]byte, 8)
		n, err := dev.ReadAt(fh, footerOff)
		if err := fullRead(n, len(fh), err); err != nil {
			return nil, fmt.Errorf("storage: open run footer header: %w", err)
		}
		fwant := binary.BigEndian.Uint32(fh[0:4])
		flen := int64(binary.BigEndian.Uint32(fh[4:8]))
		if flen == 0 || footerOff+8+flen > size {
			return nil, fmt.Errorf("storage: run footer of %d bytes at %d exceeds device end %d: %w",
				flen, footerOff, size, ErrCorrupt)
		}
		payload := make([]byte, flen)
		n, err = dev.ReadAt(payload, footerOff+8)
		if err := fullRead(n, int(flen), err); err != nil {
			return nil, fmt.Errorf("storage: open run footer: %w", err)
		}
		if crc32.ChecksumIEEE(payload) != fwant {
			return nil, fmt.Errorf("storage: run footer checksum mismatch: %w", ErrCorrupt)
		}
		r.prefixed = true
		r.tail = 8 + int(flen)
		if err := r.decodeFooter(payload); err != nil {
			return nil, err
		}
		return r, nil
	}

	// Legacy footer-less run: rebuild the descriptor by parsing the plain
	// body, collecting key hashes along the way to build the bloom filter the
	// old format never stored.
	var hashes []uint64
	pos := 0
	for pos < len(body) {
		e, n, err := decodeEntry(body[pos:])
		if err != nil {
			return nil, fmt.Errorf("storage: run entry at body offset %d: %w", pos, err)
		}
		if r.count%sparseEvery == 0 {
			r.indexKeys = append(r.indexKeys, e.key)
			r.indexOffsets = append(r.indexOffsets, pos)
		}
		if r.count == 0 {
			r.first = e.key
		}
		r.last = e.key
		r.count++
		hashes = append(hashes, bloomHash(e.key))
		pos += n
	}
	if r.count == 0 {
		return nil, fmt.Errorf("storage: run with no entries: %w", ErrCorrupt)
	}
	filter := newBloomFilter(r.count, 0)
	for _, h := range hashes {
		filter.addHash(h)
	}
	r.filter = filter
	return r, nil
}

// addHash inserts a pre-computed bloomHash (used when rebuilding filters for
// legacy runs, where keys were already hashed during the body parse).
func (f *bloomFilter) addHash(h uint64) {
	delta := h>>17 | h<<47
	nbits := uint64(len(f.bits)) * 8
	for i := uint8(0); i < f.k; i++ {
		pos := h % nbits
		f.bits[pos/8] |= 1 << (pos % 8)
		h += delta
	}
}

// scanRuns walks the device from offset zero and rebuilds the descriptor of
// every complete run, in write order. It stops at the first torn or corrupt
// run — the signature a crash leaves mid-flush — and returns the byte extent
// of the valid prefix so the caller can truncate the tail away; data past the
// first damage is unreachable anyway because runs are parsed sequentially.
func scanRuns(dev Device) (runs []*run, valid int64) {
	off := int64(0)
	for off+8 <= dev.Size() {
		r, err := openRun(dev, off)
		if err != nil {
			break
		}
		runs = append(runs, r)
		off += r.extent()
	}
	return runs, off
}

// verify re-reads the run body and checks its CRC.
func (r *run) verify(dev Device) error {
	header := make([]byte, 8)
	if _, err := dev.ReadAt(header, r.offset-8); err != nil {
		return fmt.Errorf("storage: run verify: %w", err)
	}
	want := binary.BigEndian.Uint32(header[0:4])
	body := make([]byte, r.length)
	if _, err := dev.ReadAt(body, r.offset); err != nil {
		return fmt.Errorf("storage: run verify: %w", err)
	}
	if crc32.ChecksumIEEE(body) != want {
		return ErrCorrupt
	}
	return nil
}

// mayContain is a cheap range check used to skip runs during lookups.
func (r *run) mayContain(key []byte) bool {
	return bytes.Compare(key, r.first) >= 0 && bytes.Compare(key, r.last) <= 0
}

// segmentFor returns the byte range [from, to) of the body that must be read
// to find key, based on the sparse index.
func (r *run) segmentFor(key []byte) (from, to int) {
	i := sort.Search(len(r.indexKeys), func(i int) bool {
		return bytes.Compare(r.indexKeys[i], key) > 0
	})
	// The segment starts at the previous index entry.
	if i == 0 {
		from = 0
	} else {
		from = r.indexOffsets[i-1]
	}
	if i < len(r.indexOffsets) {
		to = r.indexOffsets[i]
	} else {
		to = r.length
	}
	return from, to
}

// get looks up key in the run. The bool reports whether the key was found
// (possibly as a tombstone). The filter and range checks reject most misses
// without touching the device; on a hit path the indexed segment is served
// from the block cache when present and admitted to it after a device read.
// The returned entry's value may alias a cache-resident buffer — callers
// that hand it out must copy. Counter increments go to c (nil = uncounted).
func (r *run) get(dev Device, cache *BlockCache, key []byte, c *kvCounters) (memEntry, bool, error) {
	if !r.mayContain(key) {
		return memEntry{}, false, nil
	}
	if !r.filter.mayContain(key) {
		if c != nil {
			c.bloomSkips.Add(1)
		}
		return memEntry{}, false, nil
	}
	from, to := r.segmentFor(key)
	seg := cache.get(r.id, int64(from))
	if seg != nil {
		if c != nil {
			c.cacheHits.Add(1)
		}
	} else {
		if cache != nil && c != nil {
			c.cacheMisses.Add(1)
		}
		seg = make([]byte, to-from)
		if _, err := dev.ReadAt(seg, r.offset+int64(from)); err != nil {
			return memEntry{}, false, fmt.Errorf("storage: run get: %w", err)
		}
		if c != nil {
			c.runReads.Add(1)
		}
		cache.put(r.id, int64(from), seg)
	}
	return r.searchSegment(seg, key)
}

// searchSegment scans one indexed segment for key. seg must start at a
// restart point (segments returned by segmentFor always do).
func (r *run) searchSegment(seg, key []byte) (memEntry, bool, error) {
	if !r.prefixed {
		pos := 0
		for pos < len(seg) {
			e, n, err := decodeEntry(seg[pos:])
			if err != nil {
				return memEntry{}, false, err
			}
			cmp := bytes.Compare(e.key, key)
			if cmp == 0 {
				return e, true, nil
			}
			if cmp > 0 {
				return memEntry{}, false, nil
			}
			pos += n
		}
		return memEntry{}, false, nil
	}
	var scratch []byte
	pos := 0
	for pos < len(seg) {
		value, flags, n, err := decodePrefixedEntry(seg[pos:], &scratch)
		if err != nil {
			return memEntry{}, false, err
		}
		cmp := bytes.Compare(scratch, key)
		if cmp == 0 {
			return memEntry{
				key:       scratch,
				value:     value,
				tombstone: flags&runFlagTombstone != 0,
			}, true, nil
		}
		if cmp > 0 {
			return memEntry{}, false, nil
		}
		pos += n
	}
	return memEntry{}, false, nil
}

// scan iterates over all entries of the run in key order with key in
// [start, end) (nil end = unbounded), calling fn until it returns false.
// Keys are fresh copies; values alias the body buffer read for this scan
// (never mutated afterwards, so retaining them is safe).
func (r *run) scan(dev Device, start, end []byte, fn func(memEntry) bool) error {
	body := make([]byte, r.length)
	if _, err := dev.ReadAt(body, r.offset); err != nil {
		return fmt.Errorf("storage: run scan: %w", err)
	}
	emit := func(e memEntry) bool { // reports whether to keep going
		if start != nil && bytes.Compare(e.key, start) < 0 {
			return true
		}
		if end != nil && bytes.Compare(e.key, end) >= 0 {
			return false
		}
		return fn(e)
	}
	pos := 0
	if !r.prefixed {
		for pos < len(body) {
			e, n, err := decodeEntry(body[pos:])
			if err != nil {
				return err
			}
			pos += n
			if !emit(e) {
				return nil
			}
		}
		return nil
	}
	var scratch []byte
	for pos < len(body) {
		value, flags, n, err := decodePrefixedEntry(body[pos:], &scratch)
		if err != nil {
			return err
		}
		pos += n
		e := memEntry{
			key:       append([]byte(nil), scratch...),
			value:     value,
			tombstone: flags&runFlagTombstone != 0,
		}
		if !emit(e) {
			return nil
		}
	}
	return nil
}

// allEntries loads the full run into memory; used by compaction.
func (r *run) allEntries(dev Device) ([]memEntry, error) {
	out := make([]memEntry, 0, r.count)
	err := r.scan(dev, nil, nil, func(e memEntry) bool {
		out = append(out, e)
		return true
	})
	return out, err
}
