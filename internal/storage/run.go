package storage

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
)

// A run is an immutable sorted block of entries written sequentially to the
// device. Runs are the on-flash representation of flushed memtables and of
// compaction outputs.
//
// On-device layout of a run:
//
//	[4] crc32 over the body
//	[4] body length
//	body: repeated entries
//	  [uvarint] key length
//	  [uvarint] value length (0 for tombstones)
//	  [1]       flags (bit 0 = tombstone)
//	  [k]       key
//	  [v]       value
//
// Each run keeps a sparse index in RAM: every sparseEvery-th key and its byte
// offset inside the body, so a point lookup reads only a bounded slice of the
// body. The sparse index is tiny (a few entries per run) which is what makes
// the engine viable on a 64 KiB token.
type run struct {
	offset int64 // device offset of the body
	length int   // body length in bytes
	count  int   // number of entries
	// sparse index: sorted by key.
	indexKeys    [][]byte
	indexOffsets []int
	first, last  []byte
}

// sparseEvery controls the sparse index granularity.
const sparseEvery = 16

// runFlagTombstone marks deleted entries.
const runFlagTombstone = 0x01

// encodeEntry appends the encoding of (key, value, tombstone) to buf.
func encodeEntry(buf []byte, key, value []byte, tombstone bool) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(key)))
	buf = append(buf, tmp[:n]...)
	n = binary.PutUvarint(tmp[:], uint64(len(value)))
	buf = append(buf, tmp[:n]...)
	var flags byte
	if tombstone {
		flags |= runFlagTombstone
	}
	buf = append(buf, flags)
	buf = append(buf, key...)
	buf = append(buf, value...)
	return buf
}

// decodeEntry decodes one entry from b, returning the entry and the number of
// bytes consumed.
func decodeEntry(b []byte) (memEntry, int, error) {
	klen, n1 := binary.Uvarint(b)
	if n1 <= 0 {
		return memEntry{}, 0, ErrCorrupt
	}
	vlen, n2 := binary.Uvarint(b[n1:])
	if n2 <= 0 {
		return memEntry{}, 0, ErrCorrupt
	}
	pos := n1 + n2
	if pos >= len(b) {
		return memEntry{}, 0, ErrCorrupt
	}
	flags := b[pos]
	pos++
	end := pos + int(klen) + int(vlen)
	if end > len(b) {
		return memEntry{}, 0, ErrCorrupt
	}
	e := memEntry{
		key:       append([]byte(nil), b[pos:pos+int(klen)]...),
		value:     append([]byte(nil), b[pos+int(klen):end]...),
		tombstone: flags&runFlagTombstone != 0,
	}
	return e, end, nil
}

// writeRun writes the sorted entries as a new run at the end of the device
// and returns its descriptor.
func writeRun(dev Device, entries []memEntry) (*run, error) {
	if len(entries) == 0 {
		return nil, fmt.Errorf("storage: cannot write an empty run")
	}
	body := make([]byte, 0, 64*len(entries))
	r := &run{count: len(entries)}
	for i, e := range entries {
		if i%sparseEvery == 0 {
			r.indexKeys = append(r.indexKeys, append([]byte(nil), e.key...))
			r.indexOffsets = append(r.indexOffsets, len(body))
		}
		body = encodeEntry(body, e.key, e.value, e.tombstone)
	}
	r.first = append([]byte(nil), entries[0].key...)
	r.last = append([]byte(nil), entries[len(entries)-1].key...)
	header := make([]byte, 8)
	binary.BigEndian.PutUint32(header[0:4], crc32.ChecksumIEEE(body))
	binary.BigEndian.PutUint32(header[4:8], uint32(len(body)))
	off := dev.Size()
	n, err := dev.WriteAt(header, off)
	if err := fullWrite(n, len(header), err); err != nil {
		return nil, fmt.Errorf("storage: write run header: %w", err)
	}
	n, err = dev.WriteAt(body, off+8)
	if err := fullWrite(n, len(body), err); err != nil {
		return nil, fmt.Errorf("storage: write run body: %w", err)
	}
	r.offset = off + 8
	r.length = len(body)
	return r, nil
}

// openRun rebuilds the in-RAM descriptor (sparse index, key range, count) of
// the run stored at offset off by re-reading and re-parsing its body. It is
// the recovery-path inverse of writeRun: the descriptor it returns is
// identical to the one writeRun produced before the crash. Torn or corrupted
// runs (body extending past the device, CRC mismatch, undecodable entries)
// come back as ErrCorrupt-wrapped errors so the caller can truncate the tail.
func openRun(dev Device, off int64) (*run, error) {
	size := dev.Size()
	if off+8 > size {
		return nil, fmt.Errorf("storage: run header at %d past device end %d: %w", off, size, ErrCorrupt)
	}
	header := make([]byte, 8)
	n, err := dev.ReadAt(header, off)
	if err := fullRead(n, len(header), err); err != nil {
		return nil, fmt.Errorf("storage: open run header: %w", err)
	}
	want := binary.BigEndian.Uint32(header[0:4])
	length := int64(binary.BigEndian.Uint32(header[4:8]))
	if length == 0 || off+8+length > size {
		return nil, fmt.Errorf("storage: run body of %d bytes at %d exceeds device end %d: %w",
			length, off, size, ErrCorrupt)
	}
	body := make([]byte, length)
	n, err = dev.ReadAt(body, off+8)
	if err := fullRead(n, int(length), err); err != nil {
		return nil, fmt.Errorf("storage: open run body: %w", err)
	}
	if crc32.ChecksumIEEE(body) != want {
		return nil, fmt.Errorf("storage: run body checksum mismatch: %w", ErrCorrupt)
	}
	r := &run{offset: off + 8, length: int(length)}
	pos := 0
	for pos < len(body) {
		e, n, err := decodeEntry(body[pos:])
		if err != nil {
			return nil, fmt.Errorf("storage: run entry at body offset %d: %w", pos, err)
		}
		if r.count%sparseEvery == 0 {
			r.indexKeys = append(r.indexKeys, e.key)
			r.indexOffsets = append(r.indexOffsets, pos)
		}
		if r.count == 0 {
			r.first = e.key
		}
		r.last = e.key
		r.count++
		pos += n
	}
	if r.count == 0 {
		return nil, fmt.Errorf("storage: run with no entries: %w", ErrCorrupt)
	}
	return r, nil
}

// scanRuns walks the device from offset zero and rebuilds the descriptor of
// every complete run, in write order. It stops at the first torn or corrupt
// run — the signature a crash leaves mid-flush — and returns the byte extent
// of the valid prefix so the caller can truncate the tail away; data past the
// first damage is unreachable anyway because runs are parsed sequentially.
func scanRuns(dev Device) (runs []*run, valid int64) {
	off := int64(0)
	for off+8 <= dev.Size() {
		r, err := openRun(dev, off)
		if err != nil {
			break
		}
		runs = append(runs, r)
		off = r.offset + int64(r.length)
	}
	return runs, off
}

// verify re-reads the run body and checks its CRC.
func (r *run) verify(dev Device) error {
	header := make([]byte, 8)
	if _, err := dev.ReadAt(header, r.offset-8); err != nil {
		return fmt.Errorf("storage: run verify: %w", err)
	}
	want := binary.BigEndian.Uint32(header[0:4])
	body := make([]byte, r.length)
	if _, err := dev.ReadAt(body, r.offset); err != nil {
		return fmt.Errorf("storage: run verify: %w", err)
	}
	if crc32.ChecksumIEEE(body) != want {
		return ErrCorrupt
	}
	return nil
}

// mayContain is a cheap range check used to skip runs during lookups.
func (r *run) mayContain(key []byte) bool {
	return bytes.Compare(key, r.first) >= 0 && bytes.Compare(key, r.last) <= 0
}

// segmentFor returns the byte range [from, to) of the body that must be read
// to find key, based on the sparse index.
func (r *run) segmentFor(key []byte) (from, to int) {
	i := sort.Search(len(r.indexKeys), func(i int) bool {
		return bytes.Compare(r.indexKeys[i], key) > 0
	})
	// The segment starts at the previous index entry.
	if i == 0 {
		from = 0
	} else {
		from = r.indexOffsets[i-1]
	}
	if i < len(r.indexOffsets) {
		to = r.indexOffsets[i]
	} else {
		to = r.length
	}
	return from, to
}

// get looks up key in the run. The bool reports whether the key was found
// (possibly as a tombstone).
func (r *run) get(dev Device, key []byte) (memEntry, bool, error) {
	if !r.mayContain(key) {
		return memEntry{}, false, nil
	}
	from, to := r.segmentFor(key)
	seg := make([]byte, to-from)
	if _, err := dev.ReadAt(seg, r.offset+int64(from)); err != nil {
		return memEntry{}, false, fmt.Errorf("storage: run get: %w", err)
	}
	pos := 0
	for pos < len(seg) {
		e, n, err := decodeEntry(seg[pos:])
		if err != nil {
			return memEntry{}, false, err
		}
		cmp := bytes.Compare(e.key, key)
		if cmp == 0 {
			return e, true, nil
		}
		if cmp > 0 {
			return memEntry{}, false, nil
		}
		pos += n
	}
	return memEntry{}, false, nil
}

// scan iterates over all entries of the run in key order with key in
// [start, end) (nil end = unbounded), calling fn until it returns false.
func (r *run) scan(dev Device, start, end []byte, fn func(memEntry) bool) error {
	body := make([]byte, r.length)
	if _, err := dev.ReadAt(body, r.offset); err != nil {
		return fmt.Errorf("storage: run scan: %w", err)
	}
	pos := 0
	for pos < len(body) {
		e, n, err := decodeEntry(body[pos:])
		if err != nil {
			return err
		}
		pos += n
		if start != nil && bytes.Compare(e.key, start) < 0 {
			continue
		}
		if end != nil && bytes.Compare(e.key, end) >= 0 {
			return nil
		}
		if !fn(e) {
			return nil
		}
	}
	return nil
}

// allEntries loads the full run into memory; used by compaction.
func (r *run) allEntries(dev Device) ([]memEntry, error) {
	out := make([]memEntry, 0, r.count)
	err := r.scan(dev, nil, nil, func(e memEntry) bool {
		out = append(out, e)
		return true
	})
	return out, err
}
