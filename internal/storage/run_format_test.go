package storage

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// writeLegacyRun writes entries in the pre-footer format — plain encoding,
// bit 31 of the length word clear, no footer — exactly as earlier releases
// did, so compatibility tests exercise the real on-device bytes.
func writeLegacyRun(t testing.TB, dev Device, entries []memEntry) *run {
	t.Helper()
	var body []byte
	for _, e := range entries {
		body = encodeEntry(body, e.key, e.value, e.tombstone)
	}
	buf := make([]byte, 8, 8+len(body))
	binary.BigEndian.PutUint32(buf[0:4], crc32.ChecksumIEEE(body))
	binary.BigEndian.PutUint32(buf[4:8], uint32(len(body)))
	buf = append(buf, body...)
	off := dev.Size()
	if _, err := dev.WriteAt(buf, off); err != nil {
		t.Fatalf("write legacy run: %v", err)
	}
	r, err := openRun(dev, off)
	if err != nil {
		t.Fatalf("open legacy run: %v", err)
	}
	return r
}

func runTestEntries(n int) []memEntry {
	entries := make([]memEntry, n)
	for i := range entries {
		entries[i] = memEntry{
			key:       []byte(fmt.Sprintf("key-%05d", i*3)),
			value:     []byte(fmt.Sprintf("value-%d", i)),
			tombstone: i%7 == 3,
		}
	}
	return entries
}

// TestRunFooterRoundTrip writes a footered run and checks that openRun
// rebuilds the descriptor writeRun produced — count, key range, sparse index
// and bloom filter — from the footer alone.
func TestRunFooterRoundTrip(t *testing.T) {
	dev := NewMemDevice(0)
	entries := runTestEntries(100)
	w, err := writeRun(dev, entries, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w.tail == 0 || !w.prefixed {
		t.Fatalf("writeRun produced a footer-less run: %+v", w)
	}
	r, err := openRun(dev, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.count != w.count || !bytes.Equal(r.first, w.first) || !bytes.Equal(r.last, w.last) {
		t.Fatalf("descriptor mismatch: wrote %+v, reopened %+v", w, r)
	}
	if !reflect.DeepEqual(r.indexKeys, w.indexKeys) || !reflect.DeepEqual(r.indexOffsets, w.indexOffsets) {
		t.Fatalf("sparse index mismatch:\nwrote    %v %v\nreopened %v %v",
			w.indexKeys, w.indexOffsets, r.indexKeys, r.indexOffsets)
	}
	if r.filter == nil || r.filter.k != w.filter.k || !bytes.Equal(r.filter.bits, w.filter.bits) {
		t.Fatal("bloom filter did not survive the footer round trip")
	}
	if r.extent() != w.extent() {
		t.Fatalf("extent mismatch: %d vs %d", r.extent(), w.extent())
	}
}

func TestWriteRunWithoutBloom(t *testing.T) {
	dev := NewMemDevice(0)
	w, err := writeRun(dev, runTestEntries(20), -1)
	if err != nil {
		t.Fatal(err)
	}
	if w.filter != nil {
		t.Fatal("negative bitsPerKey still built a filter")
	}
	r, err := openRun(dev, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.filter != nil {
		t.Fatal("footer resurrected a disabled filter")
	}
	// Lookups still work, they just can't skip.
	e, ok, err := r.get(dev, nil, []byte("key-00003"), nil)
	if err != nil || !ok || string(e.value) != "value-1" {
		t.Fatalf("get without filter: %v %v %v", e, ok, err)
	}
}

// TestRunSparseIndexBoundaries probes every alignment the sparse index can
// produce — entry counts exactly at, one below and one above a restart
// multiple — in both the footered and the legacy format. The probes cover
// every present key, the gaps between keys, both ends of the range, and the
// keys sitting exactly on restart points.
func TestRunSparseIndexBoundaries(t *testing.T) {
	counts := []int{1, sparseEvery - 1, sparseEvery, sparseEvery + 1, 3*sparseEvery - 1, 3 * sparseEvery, 3*sparseEvery + 1}
	for _, n := range counts {
		for _, legacy := range []bool{false, true} {
			name := fmt.Sprintf("n=%d/legacy=%v", n, legacy)
			dev := NewMemDevice(0)
			entries := runTestEntries(n)
			var r *run
			if legacy {
				r = writeLegacyRun(t, dev, entries)
			} else {
				var err error
				if r, err = writeRun(dev, entries, 0); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
			}
			wantIndex := (n + sparseEvery - 1) / sparseEvery
			if len(r.indexKeys) != wantIndex {
				t.Fatalf("%s: %d index entries, want %d", name, len(r.indexKeys), wantIndex)
			}
			for i, e := range entries {
				got, ok, err := r.get(dev, nil, e.key, nil)
				if err != nil || !ok {
					t.Fatalf("%s: present key %q missing: %v", name, e.key, err)
				}
				if !bytes.Equal(got.value, e.value) || got.tombstone != e.tombstone {
					t.Fatalf("%s: key %q = %q/%v, want %q/%v", name, e.key, got.value, got.tombstone, e.value, e.tombstone)
				}
				// The key just after entry i (inside the gap keys i*3 leaves).
				gap := []byte(fmt.Sprintf("key-%05d", i*3+1))
				if _, ok, _ := r.get(dev, nil, gap, nil); ok {
					t.Fatalf("%s: gap key %q found", name, gap)
				}
			}
			if _, ok, _ := r.get(dev, nil, []byte("key-"), nil); ok {
				t.Fatalf("%s: key below range found", name)
			}
			if _, ok, _ := r.get(dev, nil, []byte("key-99999"), nil); ok {
				t.Fatalf("%s: key above range found", name)
			}
		}
	}
}

// TestRunDifferentialAgainstOracle drives randomized keys/values/tombstones
// through both run formats and cross-checks every lookup and a full scan
// against a plain map oracle.
func TestRunDifferentialAgainstOracle(t *testing.T) {
	for _, legacy := range []bool{false, true} {
		rng := rand.New(rand.NewSource(99))
		oracle := make(map[string]memEntry)
		for i := 0; i < 700; i++ {
			k := fmt.Sprintf("k%04d-%02d", rng.Intn(5000), rng.Intn(10))
			oracle[k] = memEntry{
				key:       []byte(k),
				value:     []byte(fmt.Sprintf("v-%d-%d", i, rng.Intn(1000))),
				tombstone: rng.Intn(6) == 0,
			}
		}
		keys := make([]string, 0, len(oracle))
		for k := range oracle {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		entries := make([]memEntry, 0, len(keys))
		for _, k := range keys {
			entries = append(entries, oracle[k])
		}

		dev := NewMemDevice(0)
		var r *run
		if legacy {
			r = writeLegacyRun(t, dev, entries)
		} else {
			var err error
			if r, err = writeRun(dev, entries, 0); err != nil {
				t.Fatal(err)
			}
		}
		cache := NewBlockCache(64 << 10) // small: exercises hits, misses and eviction
		for trial := 0; trial < 3000; trial++ {
			k := fmt.Sprintf("k%04d-%02d", rng.Intn(5000), rng.Intn(10))
			want, present := oracle[k]
			got, ok, err := r.get(dev, cache, []byte(k), nil)
			if err != nil {
				t.Fatalf("legacy=%v get %q: %v", legacy, k, err)
			}
			if ok != present {
				t.Fatalf("legacy=%v key %q: found=%v, oracle=%v", legacy, k, ok, present)
			}
			if present && (!bytes.Equal(got.value, want.value) || got.tombstone != want.tombstone) {
				t.Fatalf("legacy=%v key %q = %q/%v, want %q/%v", legacy, k, got.value, got.tombstone, want.value, want.tombstone)
			}
		}
		var scanned []memEntry
		if err := r.scan(dev, nil, nil, func(e memEntry) bool {
			scanned = append(scanned, e)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if len(scanned) != len(entries) {
			t.Fatalf("legacy=%v scan returned %d entries, want %d", legacy, len(scanned), len(entries))
		}
		for i, e := range scanned {
			w := entries[i]
			if !bytes.Equal(e.key, w.key) || !bytes.Equal(e.value, w.value) || e.tombstone != w.tombstone {
				t.Fatalf("legacy=%v scan[%d] = %q/%q/%v, want %q/%q/%v",
					legacy, i, e.key, e.value, e.tombstone, w.key, w.value, w.tombstone)
			}
		}
	}
}

// FuzzRunRoundTrip feeds arbitrary bytes through a deterministic
// entry-builder, writes the run (footer included) and checks that the
// reopened descriptor serves every entry back intact — and that a corrupted
// copy is rejected rather than misread.
func FuzzRunRoundTrip(f *testing.F) {
	f.Add([]byte("seed"), uint8(3))
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 250, 251, 252}, uint8(40))
	f.Add(bytes.Repeat([]byte{0xAB}, 64), uint8(17))
	f.Fuzz(func(t *testing.T, data []byte, n uint8) {
		if n == 0 || len(data) == 0 {
			return
		}
		// Derive n strictly increasing keys and arbitrary values from data.
		entries := make([]memEntry, 0, n)
		for i := 0; i < int(n); i++ {
			chunk := data[i*len(data)/int(n) : (i+1)*len(data)/int(n)]
			entries = append(entries, memEntry{
				key:       []byte(fmt.Sprintf("%06d-%x", i, chunk)),
				value:     chunk,
				tombstone: len(chunk)%3 == 0,
			})
		}
		dev := NewMemDevice(0)
		w, err := writeRun(dev, entries, 0)
		if err != nil {
			t.Fatal(err)
		}
		r, err := openRun(dev, 0)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		if r.count != len(entries) || !bytes.Equal(r.first, entries[0].key) || !bytes.Equal(r.last, entries[len(entries)-1].key) {
			t.Fatalf("descriptor mismatch: %+v", r)
		}
		for _, e := range entries {
			got, ok, err := r.get(dev, nil, e.key, nil)
			if err != nil || !ok {
				t.Fatalf("key %q missing: %v", e.key, err)
			}
			if !bytes.Equal(got.value, e.value) || got.tombstone != e.tombstone {
				t.Fatalf("key %q = %q/%v, want %q/%v", e.key, got.value, got.tombstone, e.value, e.tombstone)
			}
		}
		// Flip one body byte on a copy: openRun must reject, never misread.
		if w.length > 0 {
			tampered := NewMemDevice(0)
			raw := make([]byte, dev.Size())
			if _, err := dev.ReadAt(raw, 0); err != nil {
				t.Fatal(err)
			}
			raw[8+int(uint32(len(data))%uint32(w.length))] ^= 0xFF
			if _, err := tampered.WriteAt(raw, 0); err != nil {
				t.Fatal(err)
			}
			if _, err := openRun(tampered, 0); err == nil {
				t.Fatal("tampered body accepted")
			}
		}
	})
}
