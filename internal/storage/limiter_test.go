package storage

import (
	"testing"
	"time"
)

func TestCompactionLimiterNilIsUnlimited(t *testing.T) {
	if NewCompactionLimiter(0, 0) != nil || NewCompactionLimiter(-1, -1) != nil {
		t.Fatal("unbounded limiter must be nil")
	}
	var l *CompactionLimiter
	release := l.acquire() // must not block or panic
	release()
	l.throttle(1 << 30) // must not sleep
}

func TestCompactionLimiterBoundsConcurrency(t *testing.T) {
	l := NewCompactionLimiter(0, 1)
	release := l.acquire()
	acquired := make(chan struct{})
	go func() {
		r := l.acquire()
		close(acquired)
		r()
	}()
	select {
	case <-acquired:
		t.Fatal("second acquire succeeded while the slot was held")
	case <-time.After(20 * time.Millisecond):
	}
	release()
	select {
	case <-acquired:
	case <-time.After(2 * time.Second):
		t.Fatal("second acquire never unblocked after release")
	}
}

func TestCompactionLimiterThrottlePacesIO(t *testing.T) {
	// 1 MiB/s budget with a 1 MiB burst: the first 1 MiB is free, the next
	// 256 KiB must cost ~250ms. Assert loosely to stay robust on slow CI.
	l := NewCompactionLimiter(1<<20, 0)
	start := time.Now()
	l.throttle(1 << 20) // consumes the burst, no sleep
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("burst-sized throttle slept %v", d)
	}
	start = time.Now()
	l.throttle(256 << 10)
	if d := time.Since(start); d < 100*time.Millisecond {
		t.Fatalf("over-budget throttle returned after %v, want >=100ms of pacing", d)
	}
}

func TestCompactionLimiterZeroAndNegativeCharges(t *testing.T) {
	l := NewCompactionLimiter(1024, 2)
	start := time.Now()
	l.throttle(0)
	l.throttle(-5)
	if d := time.Since(start); d > 50*time.Millisecond {
		t.Fatalf("no-op throttles slept %v", d)
	}
}
