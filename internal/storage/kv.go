package storage

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Options configure a KV engine instance.
type Options struct {
	// MemtableBytes bounds the RAM-resident write buffer. When the memtable
	// exceeds this size it is flushed to a new run on the device. This is the
	// knob that adapts the engine to the hardware profile's RAM budget.
	MemtableBytes int
	// MaxRuns is the number of on-device runs tolerated before a compaction
	// is triggered automatically. Zero disables automatic compaction.
	MaxRuns int
}

// DefaultOptions are sized for a secure-MCU class device.
func DefaultOptions() Options {
	return Options{MemtableBytes: 256 << 10, MaxRuns: 8}
}

// Stats exposes engine counters for the experiments.
type Stats struct {
	Puts        int64
	Gets        int64
	Deletes     int64
	Flushes     int64
	Compactions int64
	// BloomSkips counts run lookups answered "definitely absent" by the
	// per-run bloom filter — each one is a device read that never happened.
	BloomSkips int64
	// CacheHits / CacheMisses count block-cache lookups on the read path
	// (only engines configured with a cache record them).
	CacheHits   int64
	CacheMisses int64
	// RunReads counts device reads issued by point lookups: the residue the
	// bloom filters and the block cache failed to absorb.
	RunReads    int64
	Runs        int
	MemtableLen int
	MemtableB   int
}

// KV is the embedded key/value engine. All methods are safe for concurrent
// use.
type KV struct {
	mu     sync.RWMutex
	dev    Device
	opts   Options
	mem    *memtable
	runs   []*run // oldest first; newer runs shadow older ones
	closed bool
	stats  kvCounters
}

// kvCounters backs Stats with atomics: Get counts itself under the engine's
// read lock, so many readers may increment concurrently.
type kvCounters struct {
	puts, gets, deletes    atomic.Int64
	flushes, compactions   atomic.Int64
	bloomSkips             atomic.Int64
	cacheHits, cacheMisses atomic.Int64
	runReads               atomic.Int64
}

// NewKV creates an engine over dev with the given options.
func NewKV(dev Device, opts Options) *KV {
	if opts.MemtableBytes <= 0 {
		opts.MemtableBytes = DefaultOptions().MemtableBytes
	}
	return &KV{dev: dev, opts: opts, mem: newMemtable()}
}

// Put stores value under key.
func (kv *KV) Put(key, value []byte) error {
	if len(key) == 0 {
		return fmt.Errorf("storage: empty key")
	}
	kv.mu.Lock()
	defer kv.mu.Unlock()
	if kv.closed {
		return ErrClosed
	}
	kv.stats.puts.Add(1)
	kv.mem.put(key, value, false)
	return kv.maybeFlushLocked()
}

// Delete removes key. Deleting a missing key is not an error.
func (kv *KV) Delete(key []byte) error {
	if len(key) == 0 {
		return fmt.Errorf("storage: empty key")
	}
	kv.mu.Lock()
	defer kv.mu.Unlock()
	if kv.closed {
		return ErrClosed
	}
	kv.stats.deletes.Add(1)
	kv.mem.put(key, nil, true)
	return kv.maybeFlushLocked()
}

// Get returns the value stored under key, or ErrNotFound.
func (kv *KV) Get(key []byte) ([]byte, error) {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	if kv.closed {
		return nil, ErrClosed
	}
	kv.stats.gets.Add(1)
	if e, ok := kv.mem.get(key); ok {
		if e.tombstone {
			return nil, ErrNotFound
		}
		return append([]byte(nil), e.value...), nil
	}
	// Newest run first: later runs shadow earlier ones.
	for i := len(kv.runs) - 1; i >= 0; i-- {
		e, ok, err := kv.runs[i].get(kv.dev, nil, key, &kv.stats)
		if err != nil {
			return nil, err
		}
		if ok {
			if e.tombstone {
				return nil, ErrNotFound
			}
			// Copy on return: the entry's value may alias a shared buffer.
			return append([]byte(nil), e.value...), nil
		}
	}
	return nil, ErrNotFound
}

// Has reports whether key currently has a live value.
func (kv *KV) Has(key []byte) (bool, error) {
	_, err := kv.Get(key)
	if err == ErrNotFound {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

// Scan calls fn for every live key/value pair with key in [start, end) in
// ascending key order. A nil end scans to the last key. fn returning false
// stops the scan.
func (kv *KV) Scan(start, end []byte, fn func(key, value []byte) bool) error {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	if kv.closed {
		return ErrClosed
	}
	merged, err := kv.mergedEntriesLocked(start, end)
	if err != nil {
		return err
	}
	for _, e := range merged {
		if e.tombstone {
			continue
		}
		if !fn(e.key, e.value) {
			return nil
		}
	}
	return nil
}

// Count returns the number of live keys (scans the whole store).
func (kv *KV) Count() (int, error) {
	n := 0
	err := kv.Scan(nil, nil, func(_, _ []byte) bool { n++; return true })
	return n, err
}

// Flush forces the memtable to be written as a run on the device.
func (kv *KV) Flush() error {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	if kv.closed {
		return ErrClosed
	}
	return kv.flushLocked()
}

// Compact merges all runs (and the memtable) into a single run, dropping
// tombstones and shadowed versions. It bounds read amplification and reclaims
// space logically (old runs are simply forgotten; a real flash device would
// erase their blocks).
func (kv *KV) Compact() error {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	if kv.closed {
		return ErrClosed
	}
	return kv.compactLocked()
}

// Stats returns a snapshot of engine counters.
func (kv *KV) Stats() Stats {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	return Stats{
		Puts:        kv.stats.puts.Load(),
		Gets:        kv.stats.gets.Load(),
		Deletes:     kv.stats.deletes.Load(),
		Flushes:     kv.stats.flushes.Load(),
		Compactions: kv.stats.compactions.Load(),
		BloomSkips:  kv.stats.bloomSkips.Load(),
		CacheHits:   kv.stats.cacheHits.Load(),
		CacheMisses: kv.stats.cacheMisses.Load(),
		RunReads:    kv.stats.runReads.Load(),
		Runs:        len(kv.runs),
		MemtableLen: kv.mem.count(),
		MemtableB:   kv.mem.size(),
	}
}

// Close flushes and closes the engine.
func (kv *KV) Close() error {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	if kv.closed {
		return nil
	}
	if kv.mem.count() > 0 {
		if err := kv.flushLocked(); err != nil {
			return err
		}
	}
	kv.closed = true
	return kv.dev.Sync()
}

// VerifyRuns re-reads every run and checks its checksum; used by the
// integrity experiments when the device is an untrusted cache.
func (kv *KV) VerifyRuns() error {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	for i, r := range kv.runs {
		if err := r.verify(kv.dev); err != nil {
			return fmt.Errorf("storage: run %d: %w", i, err)
		}
	}
	return nil
}

func (kv *KV) maybeFlushLocked() error {
	if kv.mem.size() < kv.opts.MemtableBytes {
		return nil
	}
	if err := kv.flushLocked(); err != nil {
		return err
	}
	if kv.opts.MaxRuns > 0 && len(kv.runs) > kv.opts.MaxRuns {
		return kv.compactLocked()
	}
	return nil
}

func (kv *KV) flushLocked() error {
	if kv.mem.count() == 0 {
		return nil
	}
	r, err := writeRun(kv.dev, kv.mem.all(), 0)
	if err != nil {
		return err
	}
	kv.runs = append(kv.runs, r)
	kv.mem = newMemtable()
	kv.stats.flushes.Add(1)
	return nil
}

func (kv *KV) compactLocked() error {
	merged, err := kv.mergedEntriesLocked(nil, nil)
	if err != nil {
		return err
	}
	live := merged[:0]
	for _, e := range merged {
		if !e.tombstone {
			live = append(live, e)
		}
	}
	kv.stats.compactions.Add(1)
	if len(live) == 0 {
		kv.runs = nil
		kv.mem = newMemtable()
		return nil
	}
	r, err := writeRun(kv.dev, live, 0)
	if err != nil {
		return err
	}
	kv.runs = []*run{r}
	kv.mem = newMemtable()
	return nil
}

// mergedEntriesLocked merges the memtable and all runs into a single sorted
// slice where newer versions shadow older ones. Tombstones are retained so
// callers can decide whether to drop them.
func (kv *KV) mergedEntriesLocked(start, end []byte) ([]memEntry, error) {
	return mergeEntries(kv.dev, kv.runs, kv.mem.snapshot(start, end), start, end)
}

// mergeEntries merges a run stack (oldest first) and a slice of memtable
// entries (already restricted to [start, end)) into a single sorted slice
// where newer versions shadow older ones. Tombstones are retained so callers
// can decide whether to drop them. It is shared by the volatile KV and the
// crash-safe PersistentKV; the latter passes a memtable snapshot so the merge
// can run outside the engine lock.
func mergeEntries(dev Device, runs []*run, mem []memEntry, start, end []byte) ([]memEntry, error) {
	// Collect sources oldest → newest so that later inserts overwrite.
	byKey := make(map[string]memEntry)
	var order [][]byte
	add := func(e memEntry) {
		k := string(e.key)
		if _, seen := byKey[k]; !seen {
			order = append(order, e.key)
		}
		byKey[k] = e
	}
	for _, r := range runs {
		if err := r.scan(dev, start, end, func(e memEntry) bool { add(e); return true }); err != nil {
			return nil, err
		}
	}
	for _, e := range mem {
		add(e)
	}
	out := make([]memEntry, 0, len(order))
	for _, k := range order {
		out = append(out, byKey[string(k)])
	}
	sortEntries(out)
	return out, nil
}

func sortEntries(entries []memEntry) {
	sort.Slice(entries, func(i, j int) bool { return bytes.Compare(entries[i].key, entries[j].key) < 0 })
}
