package storage

import (
	"errors"
	"fmt"
	"hash/fnv"
	"testing"
)

func TestBloomFilterNoFalseNegatives(t *testing.T) {
	f := newBloomFilter(500, defaultBloomBitsPerKey)
	for i := 0; i < 500; i++ {
		f.add([]byte(fmt.Sprintf("key-%05d", i)))
	}
	for i := 0; i < 500; i++ {
		if !f.mayContain([]byte(fmt.Sprintf("key-%05d", i))) {
			t.Fatalf("false negative for key-%05d", i)
		}
	}
}

func TestBloomFilterNilAnswersTrue(t *testing.T) {
	var f *bloomFilter
	if !f.mayContain([]byte("anything")) {
		t.Fatal("nil filter must conservatively answer true")
	}
}

func TestBloomProbesClamp(t *testing.T) {
	if k := bloomProbes(1); k != 1 {
		t.Fatalf("bloomProbes(1) = %d, want 1", k)
	}
	if k := bloomProbes(10); k < 5 || k > 8 {
		t.Fatalf("bloomProbes(10) = %d, want ~7", k)
	}
	if k := bloomProbes(1000); k != 30 {
		t.Fatalf("bloomProbes(1000) = %d, want clamp at 30", k)
	}
}

func TestBloomFilterFalsePositiveRate(t *testing.T) {
	const n = 1000
	f := newBloomFilter(n, defaultBloomBitsPerKey)
	for i := 0; i < n; i++ {
		f.add([]byte(fmt.Sprintf("present-%05d", i)))
	}
	fp, probes := 0, 20000
	for i := 0; i < probes; i++ {
		if f.mayContain([]byte(fmt.Sprintf("absent-%05d", i))) {
			fp++
		}
	}
	if rate := float64(fp) / float64(probes); rate > 0.03 {
		t.Fatalf("false positive rate %.2f%% exceeds 3%% at %d bits/key", 100*rate, defaultBloomBitsPerKey)
	}
}

// TestBloomFilterShardConditionedFPRate is the regression test for the
// FNV/FNV correlation: the cloud layer stripes keys over shards by FNV-32a,
// so the keys sharing an engine — and the misses probing it — are exactly
// those agreeing on FNV mod the shard count. Before bloomHash gained its
// avalanche finalizer, that conditioning leaked into the probe positions and
// inflated same-shard false positives to ~5.7% (vs ~0.7% unconditioned).
func TestBloomFilterShardConditionedFPRate(t *testing.T) {
	const shards = 32
	shardOf := func(key string) int {
		h := fnv.New32a()
		_, _ = h.Write([]byte(key))
		return int(h.Sum32() % uint32(shards))
	}
	var keys [][]byte
	for i := 0; i < 2000; i++ {
		name := fmt.Sprintf("e18/blob-%07d", i)
		if shardOf(name) == 7 {
			keys = append(keys, []byte("b:"+name))
		}
	}
	f := newBloomFilter(len(keys), defaultBloomBitsPerKey)
	for _, k := range keys {
		f.add(k)
	}
	fp, probes := 0, 0
	for i := 0; i < 400000 && probes < 10000; i++ {
		name := fmt.Sprintf("e18/blob-%07d.miss", i)
		if shardOf(name) != 7 {
			continue
		}
		probes++
		if f.mayContain([]byte("b:" + name)) {
			fp++
		}
	}
	if probes < 1000 {
		t.Fatalf("only %d same-shard probes generated", probes)
	}
	if rate := float64(fp) / float64(probes); rate > 0.03 {
		t.Fatalf("same-shard false positive rate %.2f%% exceeds 3%% — the bloom hash correlates with the shard hash", 100*rate)
	}
}

func TestBloomMarshalRoundTrip(t *testing.T) {
	f := newBloomFilter(100, defaultBloomBitsPerKey)
	for i := 0; i < 100; i++ {
		f.add([]byte(fmt.Sprintf("key-%d", i)))
	}
	wire := f.marshal(nil)
	got, n, err := unmarshalBloom(wire)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if n != len(wire) {
		t.Fatalf("consumed %d of %d bytes", n, len(wire))
	}
	if got.k != f.k || len(got.bits) != len(f.bits) {
		t.Fatalf("round trip changed shape: k %d→%d bits %d→%d", f.k, got.k, len(f.bits), len(got.bits))
	}
	for i := range f.bits {
		if f.bits[i] != got.bits[i] {
			t.Fatalf("bit array differs at byte %d", i)
		}
	}
}

func TestBloomMarshalNilFilter(t *testing.T) {
	var f *bloomFilter
	wire := f.marshal(nil)
	got, n, err := unmarshalBloom(wire)
	if err != nil || got != nil || n != len(wire) {
		t.Fatalf("nil round trip: filter=%v n=%d err=%v", got, n, err)
	}
}

func TestBloomUnmarshalRejectsCorrupt(t *testing.T) {
	if _, _, err := unmarshalBloom(nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("empty input accepted: %v", err)
	}
	// k=0 with a non-empty bit array is contradictory.
	if _, _, err := unmarshalBloom([]byte{0, 2, 0xAA, 0xBB}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("zero-probe filter accepted: %v", err)
	}
	// Truncated bit array.
	f := newBloomFilter(100, 10)
	f.add([]byte("x"))
	wire := f.marshal(nil)
	if _, _, err := unmarshalBloom(wire[:len(wire)-3]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated filter accepted: %v", err)
	}
}
