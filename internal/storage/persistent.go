package storage

// This file implements the durable engine variant behind the disk-backed
// cloud store (cloud.Durable): a PersistentKV is the crash-safe sibling of KV.
// Where KV keeps its run descriptors only in RAM (fine for the in-cell cache,
// whose content can be re-fetched from the provider), a PersistentKV must
// come back from a kill -9 with every acknowledged write intact. It layers
// the existing LSM pieces onto two files in a directory:
//
//	<dir>/runs-<gen>.dat   immutable sorted runs, appended by flushes
//	<dir>/wal.dat          write-ahead log of operations since the last flush
//
// Write path: an operation batch is encoded as one WAL record (sequence
// number + ops), appended, applied to the memtable, and acknowledged only
// after the WAL is fsync'd. Concurrent writers share fsyncs through a group
// committer: whoever grabs the sync slot flushes the log head for everyone
// appended so far, and the rest just wait — one disk barrier amortized over
// the whole group.
//
// Checkpoint: when the memtable exceeds its budget it is written as a run,
// the runs device is fsync'd, and the WAL is truncated to zero — every WAL
// record is now redundant with the run. A crash between those two steps is
// harmless because replaying the WAL re-applies values that are already in
// the run (records carry absolute values, not increments, so replay is
// idempotent).
//
// Recovery: Open rebuilds the run descriptors by re-parsing the runs device
// (truncating a torn tail left by a mid-flush crash), then replays the WAL
// into a fresh memtable, skipping duplicate sequence numbers and truncating
// the first torn or corrupt record and everything after it. The result is
// exactly the state covered by the last acknowledged group commit.
//
// Compaction: when the run count exceeds MaxRuns after a flush, a background
// goroutine merges every run into a new generation file. The merged file is
// written to a .tmp path, fsync'd, and atomically renamed before the old
// generation is deleted, so a crash at any point leaves either the old or the
// new generation fully intact; Open always picks the highest complete
// generation and deletes the rest.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// PersistentOptions configure a PersistentKV. The zero value is usable: every
// field falls back to the DefaultPersistentOptions value, and writes are
// durable (fsync'd) unless NoSync is set.
type PersistentOptions struct {
	// MemtableBytes bounds the RAM-resident write buffer; exceeding it
	// checkpoints the memtable into a run and resets the WAL.
	MemtableBytes int
	// MaxRuns is the run count tolerated before a background compaction is
	// scheduled. Zero falls back to the default; negative disables automatic
	// compaction.
	MaxRuns int
	// NoSync skips the WAL fsync on commit. Acknowledged writes then survive
	// a process crash only if the OS flushed them — the ablation knob for
	// measuring what durability itself costs.
	NoSync bool
	// DisableWAL skips the write-ahead log entirely: batches go straight to
	// the memtable and a crash loses everything since the last Flush. For
	// engines embedded under an external commit log (the cloud.Durable
	// journal) that replays acknowledged writes itself, the per-engine WAL is
	// a redundant second copy of every value; disabling it removes that
	// write amplification. WaitDurable degrades to a no-op — only Flush makes
	// state durable.
	DisableWAL bool
	// BloomBitsPerKey sizes the per-run bloom filters written into run
	// footers. Zero uses the default sizing (~10 bits/key, ~1% false
	// positives); negative disables the filters — the ablation knob for
	// measuring what the negative-lookup fast path is worth.
	BloomBitsPerKey int
	// Cache, when non-nil, serves point lookups from RAM: run segments are
	// admitted on read and dropped when a compaction replaces their run. One
	// cache is typically shared by many engines (the shards of a
	// cloud.Durable store) under a single capacity budget.
	Cache *BlockCache
	// Limiter, when non-nil, paces compactions: concurrent compactions are
	// bounded and their combined I/O is held to a bytes/sec budget. Shared
	// across engines so background maintenance of a whole shard fleet cannot
	// saturate the device.
	Limiter *CompactionLimiter
}

// DefaultPersistentOptions mirror DefaultOptions with durable commits.
func DefaultPersistentOptions() PersistentOptions {
	return PersistentOptions{MemtableBytes: 256 << 10, MaxRuns: 8}
}

// Op is one operation of an atomic, durable batch applied via Apply.
type Op struct {
	Key    []byte
	Value  []byte
	Delete bool
}

// RecoveryInfo reports what Open had to do to restore the store.
type RecoveryInfo struct {
	// RecoveredRuns is the number of run descriptors rebuilt from the runs
	// device; RunBytes their total body size.
	RecoveredRuns int
	RunBytes      int64
	// DiscardedRunBytes is the torn tail truncated from the runs device (a
	// crash mid-flush).
	DiscardedRunBytes int64
	// WALRecords / WALOps are the group-commit records and individual
	// operations replayed into the memtable.
	WALRecords int
	WALOps     int
	// WALDuplicates counts records skipped because their sequence number had
	// already been applied (a torn rewrite or a doubled record).
	WALDuplicates int
	// DiscardedWALBytes is the torn tail truncated from the WAL (a crash
	// mid-append, before the group commit that would have acknowledged it).
	DiscardedWALBytes int64
	// Elapsed is the wall-clock duration of Open.
	Elapsed time.Duration
}

// walFile and the runs-file naming scheme of a PersistentKV directory.
const (
	walFile    = "wal.dat"
	runsPrefix = "runs-"
	runsSuffix = ".dat"
)

// PersistentKV is a crash-safe LSM key/value store rooted at a directory.
// All methods are safe for concurrent use.
type PersistentKV struct {
	dir  string
	opts PersistentOptions

	mu     sync.RWMutex
	runsH  *runsHandle
	gen    uint64
	wal    *AppendLog
	walDev *FileDevice
	mem    *memtable
	runs   []*run // oldest first; newer runs shadow older ones
	seq    uint64 // last WAL sequence number assigned
	closed bool

	compacting bool
	compactErr error
	wg         sync.WaitGroup

	gc       groupCommitter
	stats    kvCounters
	recovery RecoveryInfo
}

// runsHandle reference-counts the runs device so readers can finish against
// a generation file that a concurrent compaction install has already
// replaced. The handle is created with one owner reference; readers acquire
// under p.mu and release when done, the owner reference is dropped when the
// generation is swapped out (or the store closes), and whoever drops the
// count to zero closes the file. Acquire always happens under p.mu while the
// handle is still the current one, so the count can never resurrect from
// zero.
type runsHandle struct {
	dev  *FileDevice
	refs atomic.Int64
}

func newRunsHandle(dev *FileDevice) *runsHandle {
	h := &runsHandle{dev: dev}
	h.refs.Store(1)
	return h
}

func (h *runsHandle) acquire() { h.refs.Add(1) }

func (h *runsHandle) release() error {
	if h.refs.Add(-1) == 0 {
		return h.dev.Close()
	}
	return nil
}

// groupCommitter amortizes WAL fsyncs across concurrent writers: one writer
// syncs the log head on behalf of everyone appended so far, the rest wait on
// the condition variable until their sequence number is covered.
type groupCommitter struct {
	mu       sync.Mutex
	cond     *sync.Cond
	appended uint64 // highest sequence number appended to the WAL
	synced   uint64 // highest sequence number known durable
	syncing  bool
}

func (g *groupCommitter) init(seq uint64) {
	g.cond = sync.NewCond(&g.mu)
	g.appended = seq
	g.synced = seq
}

func (g *groupCommitter) noteAppend(seq uint64) {
	g.mu.Lock()
	if seq > g.appended {
		g.appended = seq
	}
	g.mu.Unlock()
}

// markSynced records that everything up to seq is durable through some other
// barrier (a checkpoint fsync'd the runs device and reset the WAL).
func (g *groupCommitter) markSynced(seq uint64) {
	g.mu.Lock()
	if seq > g.synced {
		g.synced = seq
	}
	g.cond.Broadcast()
	g.mu.Unlock()
}

// wait blocks until seq is durable, performing the shared fsync when no other
// writer currently holds the sync slot.
func (g *groupCommitter) wait(seq uint64, sync func() error) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	for g.synced < seq {
		if g.syncing {
			g.cond.Wait()
			continue
		}
		g.syncing = true
		target := g.appended
		g.mu.Unlock()
		err := sync()
		g.mu.Lock()
		g.syncing = false
		if err == nil && target > g.synced {
			g.synced = target
		}
		g.cond.Broadcast()
		if err != nil {
			return fmt.Errorf("storage: wal sync: %w", err)
		}
	}
	return nil
}

// OpenPersistentKV opens (creating if needed) a persistent store rooted at
// dir and recovers its state: pick the newest complete runs generation,
// rebuild its run descriptors, truncate any torn tail, then replay the WAL.
func OpenPersistentKV(dir string, opts PersistentOptions) (*PersistentKV, error) {
	start := time.Now()
	def := DefaultPersistentOptions()
	if opts.MemtableBytes <= 0 {
		opts.MemtableBytes = def.MemtableBytes
	}
	if opts.MaxRuns == 0 {
		opts.MaxRuns = def.MaxRuns
	}
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, fmt.Errorf("storage: open persistent store: %w", err)
	}
	p := &PersistentKV{dir: dir, opts: opts, mem: newMemtable()}

	if err := p.recoverRuns(); err != nil {
		return nil, err
	}
	if err := p.recoverWAL(); err != nil {
		_ = p.runsH.release()
		return nil, err
	}
	p.gc.init(p.seq)

	// A replayed memtable past its budget is checkpointed immediately so a
	// reopened store starts within its RAM envelope.
	if p.mem.size() >= p.opts.MemtableBytes {
		if err := p.flushLocked(); err != nil {
			p.walDev.Close()
			_ = p.runsH.release()
			return nil, err
		}
	}
	// Make the directory entries of freshly created files (and recovery's
	// truncations/removals) durable before the store accepts writes.
	syncDir(p.dir)
	p.recovery.Elapsed = time.Since(start)
	return p, nil
}

// recoverRuns selects the newest complete runs generation, rebuilds its run
// descriptors and truncates any torn tail. Stale generations (the leftovers
// of a compaction interrupted between rename and delete) and abandoned .tmp
// files are removed.
func (p *PersistentKV) recoverRuns() error {
	entries, err := os.ReadDir(p.dir)
	if err != nil {
		return fmt.Errorf("storage: scan %s: %w", p.dir, err)
	}
	var gens []uint64
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			_ = os.Remove(filepath.Join(p.dir, name))
			continue
		}
		if !strings.HasPrefix(name, runsPrefix) || !strings.HasSuffix(name, runsSuffix) {
			continue
		}
		g, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, runsPrefix), runsSuffix), 10, 64)
		if err != nil {
			continue
		}
		gens = append(gens, g)
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	if len(gens) > 0 {
		p.gen = gens[len(gens)-1]
		// Older generations are fully superseded: the newest .dat file is
		// complete by construction (compaction renames it into place only
		// after its content is fsync'd).
		for _, g := range gens[:len(gens)-1] {
			_ = os.Remove(filepath.Join(p.dir, p.runsFileName(g)))
		}
	}
	dev, err := OpenFileDevice(filepath.Join(p.dir, p.runsFileName(p.gen)))
	if err != nil {
		return err
	}
	runs, valid := scanRuns(dev)
	if valid < dev.Size() {
		p.recovery.DiscardedRunBytes = dev.Size() - valid
		if err := dev.Truncate(valid); err != nil {
			dev.Close()
			return err
		}
	}
	p.runsH = newRunsHandle(dev)
	p.runs = runs
	p.recovery.RecoveredRuns = len(runs)
	for _, r := range runs {
		p.recovery.RunBytes += int64(r.length)
	}
	return nil
}

// recoverWAL replays the write-ahead log into the memtable: records are
// applied in order, duplicate sequence numbers are skipped, and the first
// torn or corrupt record truncates the log — everything before it was
// acknowledged (or checkpointed), everything after it never was.
func (p *PersistentKV) recoverWAL() error {
	dev, err := OpenFileDevice(filepath.Join(p.dir, walFile))
	if err != nil {
		return err
	}
	size := dev.Size()
	off := int64(0)
	header := make([]byte, logHeaderSize)
	for off+logHeaderSize <= size {
		n, err := dev.ReadAt(header, off)
		if fullRead(n, logHeaderSize, err) != nil {
			break
		}
		want := binary.BigEndian.Uint32(header[0:4])
		length := int64(binary.BigEndian.Uint32(header[4:8]))
		if off+logHeaderSize+length > size {
			break // torn append: the record never finished
		}
		payload := make([]byte, length)
		n, err = dev.ReadAt(payload, off+logHeaderSize)
		if fullRead(n, int(length), err) != nil {
			break
		}
		if crc32.ChecksumIEEE(payload) != want {
			break
		}
		seq, ops, err := decodeWALRecord(payload)
		if err != nil {
			break
		}
		off += logHeaderSize + length
		if seq <= p.seq && p.seq > 0 {
			p.recovery.WALDuplicates++
			continue
		}
		for _, e := range ops {
			p.mem.put(e.key, e.value, e.tombstone)
		}
		p.seq = seq
		p.recovery.WALRecords++
		p.recovery.WALOps += len(ops)
	}
	if off < size {
		p.recovery.DiscardedWALBytes = size - off
		if err := dev.Truncate(off); err != nil {
			dev.Close()
			return err
		}
	}
	p.walDev = dev
	p.wal = NewAppendLog(dev)
	return nil
}

func (p *PersistentKV) runsFileName(gen uint64) string {
	return fmt.Sprintf("%s%06d%s", runsPrefix, gen, runsSuffix)
}

// Recovery returns what Open had to replay and repair.
func (p *PersistentKV) Recovery() RecoveryInfo {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.recovery
}

// encodeWALRecord serializes one group-commit record:
//
//	[8] sequence number (big endian)
//	[uvarint] operation count
//	per op: [1] flags (bit 0 = tombstone) [uvarint] klen [uvarint] vlen [k] [v]
func encodeWALRecord(seq uint64, ops []Op) []byte {
	size := 8 + binary.MaxVarintLen64
	for _, op := range ops {
		size += 1 + 2*binary.MaxVarintLen64 + len(op.Key) + len(op.Value)
	}
	buf := make([]byte, 8, size)
	binary.BigEndian.PutUint64(buf[:8], seq)
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(ops)))
	buf = append(buf, tmp[:n]...)
	for _, op := range ops {
		var flags byte
		if op.Delete {
			flags |= runFlagTombstone
		}
		buf = append(buf, flags)
		n = binary.PutUvarint(tmp[:], uint64(len(op.Key)))
		buf = append(buf, tmp[:n]...)
		n = binary.PutUvarint(tmp[:], uint64(len(op.Value)))
		buf = append(buf, tmp[:n]...)
		buf = append(buf, op.Key...)
		buf = append(buf, op.Value...)
	}
	return buf
}

// decodeWALRecord is the inverse of encodeWALRecord.
func decodeWALRecord(b []byte) (uint64, []memEntry, error) {
	if len(b) < 8 {
		return 0, nil, ErrCorrupt
	}
	seq := binary.BigEndian.Uint64(b[:8])
	b = b[8:]
	nops, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, ErrCorrupt
	}
	b = b[n:]
	ops := make([]memEntry, 0, nops)
	for i := uint64(0); i < nops; i++ {
		if len(b) < 1 {
			return 0, nil, ErrCorrupt
		}
		flags := b[0]
		b = b[1:]
		klen, n1 := binary.Uvarint(b)
		if n1 <= 0 {
			return 0, nil, ErrCorrupt
		}
		vlen, n2 := binary.Uvarint(b[n1:])
		if n2 <= 0 {
			return 0, nil, ErrCorrupt
		}
		b = b[n1+n2:]
		if uint64(len(b)) < klen+vlen {
			return 0, nil, ErrCorrupt
		}
		ops = append(ops, memEntry{
			key:       append([]byte(nil), b[:klen]...),
			value:     append([]byte(nil), b[klen:klen+vlen]...),
			tombstone: flags&runFlagTombstone != 0,
		})
		b = b[klen+vlen:]
	}
	if len(b) != 0 {
		return 0, nil, ErrCorrupt
	}
	return seq, ops, nil
}

// Apply atomically applies a batch of operations and blocks until the batch
// is durable (one WAL record, one shared group-commit fsync).
func (p *PersistentKV) Apply(ops []Op) error {
	seq, err := p.ApplyNoSync(ops)
	if err != nil {
		return err
	}
	return p.WaitDurable(seq)
}

// ApplyNoSync appends the batch to the WAL and applies it to the memtable but
// does not wait for the fsync. The returned sequence number can be handed to
// WaitDurable before acknowledging the write to a client; releasing any
// caller-side lock between the two lets concurrent writers share one fsync.
func (p *PersistentKV) ApplyNoSync(ops []Op) (uint64, error) {
	if len(ops) == 0 {
		return 0, nil
	}
	for _, op := range ops {
		if len(op.Key) == 0 {
			return 0, fmt.Errorf("storage: empty key")
		}
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return 0, ErrClosed
	}
	seq := p.seq + 1
	if !p.opts.DisableWAL {
		if _, err := p.wal.Append(encodeWALRecord(seq, ops)); err != nil {
			p.mu.Unlock()
			return 0, err
		}
	}
	p.seq = seq
	for _, op := range ops {
		if op.Delete {
			p.stats.deletes.Add(1)
		} else {
			p.stats.puts.Add(1)
		}
		p.mem.put(op.Key, op.Value, op.Delete)
	}
	p.gc.noteAppend(seq)
	needFlush := p.mem.size() >= p.opts.MemtableBytes
	p.mu.Unlock()
	if needFlush {
		if err := p.Flush(); err != nil {
			return 0, err
		}
	}
	return seq, nil
}

// WaitDurable blocks until the WAL record with the given sequence number is
// on stable storage (or was checkpointed into a run). A zero sequence — the
// result of an empty batch — returns immediately, as does a NoSync store.
func (p *PersistentKV) WaitDurable(seq uint64) error {
	if seq == 0 || p.opts.NoSync || p.opts.DisableWAL {
		return nil
	}
	return p.gc.wait(seq, p.walDev.Sync)
}

// Get returns the value stored under key, or ErrNotFound.
//
// Device I/O happens outside p.mu: the run stack is snapshotted under the
// read lock (runs are immutable and the slice is only ever swapped or
// appended), the runs device is pinned through its reference count, and the
// lock is released before any run is consulted — so flushes, writers, and
// compaction installs never stall behind a reader's disk access. Both hit
// paths copy on return: memtable entries are replaced in place by writers,
// and run lookups may alias block-cache buffers shared with other readers.
func (p *PersistentKV) Get(key []byte) ([]byte, error) {
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return nil, ErrClosed
	}
	p.stats.gets.Add(1)
	if e, ok := p.mem.get(key); ok {
		tombstone := e.tombstone
		value := append([]byte(nil), e.value...)
		p.mu.RUnlock()
		if tombstone {
			return nil, ErrNotFound
		}
		return value, nil
	}
	runs := p.runs
	h := p.runsH
	h.acquire()
	p.mu.RUnlock()
	defer h.release()
	for i := len(runs) - 1; i >= 0; i-- {
		e, ok, err := runs[i].get(h.dev, p.opts.Cache, key, &p.stats)
		if err != nil {
			return nil, err
		}
		if ok {
			if e.tombstone {
				return nil, ErrNotFound
			}
			return append([]byte(nil), e.value...), nil
		}
	}
	return nil, ErrNotFound
}

// Scan calls fn for every live key/value pair with key in [start, end) in
// ascending key order (nil end scans to the last key) until fn returns false.
// Like Get, the merge reads the devices outside p.mu against a snapshot of
// the run stack and the memtable.
func (p *PersistentKV) Scan(start, end []byte, fn func(key, value []byte) bool) error {
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return ErrClosed
	}
	runs := p.runs
	mem := p.mem.snapshot(start, end)
	h := p.runsH
	h.acquire()
	p.mu.RUnlock()
	defer h.release()
	merged, err := mergeEntries(h.dev, runs, mem, start, end)
	if err != nil {
		return err
	}
	for _, e := range merged {
		if e.tombstone {
			continue
		}
		if !fn(e.key, e.value) {
			return nil
		}
	}
	return nil
}

// Flush checkpoints the memtable into a run and resets the WAL.
func (p *PersistentKV) Flush() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	return p.flushLocked()
}

// flushLocked writes the memtable as a run, fsyncs the runs device, then
// resets the WAL — in that order, so a crash in between merely replays
// records whose values are already in the run (replay is idempotent).
func (p *PersistentKV) flushLocked() error {
	if p.mem.count() == 0 {
		return nil
	}
	r, err := writeRun(p.runsH.dev, p.mem.all(), p.opts.BloomBitsPerKey)
	if err != nil {
		return err
	}
	if err := p.runsH.dev.Sync(); err != nil {
		return fmt.Errorf("storage: sync runs: %w", err)
	}
	p.runs = append(p.runs, r)
	p.mem = newMemtable()
	p.stats.flushes.Add(1)
	if !p.opts.DisableWAL {
		if err := p.wal.Reset(); err != nil {
			return err
		}
	}
	// Everything appended so far is covered by the run the device just
	// fsync'd, so pending group commits can be released without touching the
	// (now empty) WAL.
	p.gc.markSynced(p.seq)
	if p.opts.MaxRuns > 0 && len(p.runs) > p.opts.MaxRuns {
		p.scheduleCompactionLocked()
	}
	return nil
}

// scheduleCompactionLocked starts at most one background compaction.
func (p *PersistentKV) scheduleCompactionLocked() {
	if p.compacting || p.closed {
		return
	}
	p.compacting = true
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		if err := p.compact(); err != nil && err != ErrClosed {
			p.mu.Lock()
			p.compactErr = err
			p.mu.Unlock()
		}
	}()
}

// Compact merges every run into a single run in a new generation file,
// dropping tombstones and shadowed versions; see compact for the protocol.
// At most one compaction runs at a time — a call overlapping an in-flight
// (background or direct) compaction is a no-op.
func (p *PersistentKV) Compact() error {
	p.mu.Lock()
	if p.compacting || p.closed {
		closed := p.closed
		p.mu.Unlock()
		if closed {
			return ErrClosed
		}
		return nil
	}
	p.compacting = true
	p.mu.Unlock()
	return p.compact()
}

// compact does the work of a claimed compaction (p.compacting is true and
// owned by this call). The heavy part — reading and merging the run stack,
// writing and fsyncing the new generation — happens outside the engine lock
// against an immutable snapshot of the run list (runs only ever get appended
// by flushes), so reads and writes keep flowing during a compaction. The
// lock is retaken only to fold in any runs flushed meanwhile and swap the
// generation. When a Limiter is configured the compaction first queues for a
// concurrency slot and then paces its reads and writes against the shared
// bytes/sec budget (only outside the lock — the fold-in under the lock is
// never throttled). Crash-safety ordering: the new file's content is fsync'd
// before the rename, the rename is made durable by a directory fsync before
// the old generation is unlinked, so at every instant one complete
// generation is on disk. The memtable and WAL are untouched — they hold
// strictly newer data. Readers that snapshotted the old generation keep it
// alive through the runs handle's reference count; the replaced runs' cached
// segments are dropped from the block cache after the install (ids are never
// reused, so a stale segment can never be served for a new run — the drop
// just reclaims the RAM promptly).
func (p *PersistentKV) compact() error {
	defer func() {
		p.mu.Lock()
		p.compacting = false
		p.mu.Unlock()
	}()

	release := p.opts.Limiter.acquire()
	defer release()

	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return ErrClosed
	}
	snapshot := append([]*run(nil), p.runs...)
	if len(snapshot) <= 1 {
		p.mu.RUnlock()
		return nil
	}
	h := p.runsH
	h.acquire()
	newGen := p.gen + 1
	p.mu.RUnlock()
	defer h.release()
	dev := h.dev

	readBytes := 0
	for _, r := range snapshot {
		readBytes += r.length
	}
	merged, err := mergeEntries(dev, snapshot, nil, nil, nil)
	if err != nil {
		return err
	}
	p.opts.Limiter.throttle(readBytes)
	live := merged[:0]
	for _, e := range merged {
		if !e.tombstone {
			live = append(live, e)
		}
	}
	tmpPath := filepath.Join(p.dir, fmt.Sprintf("%s%06d.tmp", runsPrefix, newGen))
	finalPath := filepath.Join(p.dir, p.runsFileName(newGen))
	newDev, err := OpenFileDevice(tmpPath)
	if err != nil {
		return err
	}
	abort := func(err error) error {
		newDev.Close()
		_ = os.Remove(tmpPath)
		return err
	}
	var newRuns []*run
	if len(live) > 0 {
		r, err := writeRun(newDev, live, p.opts.BloomBitsPerKey)
		if err != nil {
			return abort(err)
		}
		p.opts.Limiter.throttle(int(r.extent()))
		newRuns = []*run{r}
	}
	if err := newDev.Sync(); err != nil {
		return abort(fmt.Errorf("storage: sync compacted runs: %w", err))
	}

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return abort(ErrClosed)
	}
	// Flushes may have appended runs behind the snapshot; carry them into
	// the new generation verbatim (they are newer, so they go after the
	// merged run). Usually this suffix is empty and no re-sync is needed.
	suffix := p.runs[len(snapshot):]
	for _, r := range suffix {
		entries, err := r.allEntries(dev)
		if err != nil {
			p.mu.Unlock()
			return abort(err)
		}
		nr, err := writeRun(newDev, entries, p.opts.BloomBitsPerKey)
		if err != nil {
			p.mu.Unlock()
			return abort(err)
		}
		newRuns = append(newRuns, nr)
	}
	if len(suffix) > 0 {
		if err := newDev.Sync(); err != nil {
			p.mu.Unlock()
			return abort(fmt.Errorf("storage: sync compacted runs: %w", err))
		}
	}
	if err := os.Rename(tmpPath, finalPath); err != nil {
		p.mu.Unlock()
		return abort(fmt.Errorf("storage: install compacted runs: %w", err))
	}
	// Make the rename durable before unlinking the old generation: a crash
	// must never find the directory with the old file gone and the new file
	// not yet persisted.
	syncDir(p.dir)
	oldPath := filepath.Join(p.dir, p.runsFileName(p.gen))
	oldIDs := make([]uint64, 0, len(snapshot)+len(suffix))
	for _, r := range snapshot {
		oldIDs = append(oldIDs, r.id)
	}
	for _, r := range suffix {
		oldIDs = append(oldIDs, r.id)
	}
	oldH := p.runsH
	p.runsH = newRunsHandle(newDev)
	p.runs = newRuns
	p.gen = newGen
	p.stats.compactions.Add(1)
	p.mu.Unlock()

	// Drop the owner reference of the replaced generation; in-flight readers
	// that pinned it finish their lookups and the last one closes the file
	// (already unlinked below — the kernel keeps it alive until then).
	_ = oldH.release()
	_ = os.Remove(oldPath)
	syncDir(p.dir)
	p.opts.Cache.invalidateRuns(oldIDs)
	return nil
}

// syncDir best-effort fsyncs a directory so renames and removals are durable.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// Stats returns a snapshot of engine counters.
func (p *PersistentKV) Stats() Stats {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return Stats{
		Puts:        p.stats.puts.Load(),
		Gets:        p.stats.gets.Load(),
		Deletes:     p.stats.deletes.Load(),
		Flushes:     p.stats.flushes.Load(),
		Compactions: p.stats.compactions.Load(),
		BloomSkips:  p.stats.bloomSkips.Load(),
		CacheHits:   p.stats.cacheHits.Load(),
		CacheMisses: p.stats.cacheMisses.Load(),
		RunReads:    p.stats.runReads.Load(),
		Runs:        len(p.runs),
		MemtableLen: p.mem.count(),
		MemtableB:   p.mem.size(),
	}
}

// Close checkpoints the memtable, waits for any background compaction, and
// closes the underlying files. Closing twice is a no-op.
func (p *PersistentKV) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	err := p.flushLocked()
	p.closed = true
	if err == nil && p.compactErr != nil {
		err = p.compactErr
	}
	p.mu.Unlock()
	p.wg.Wait()
	if e := p.walDev.Close(); err == nil && e != nil {
		err = e
	}
	// Drop the owner reference; a reader still in flight closes the device
	// when it finishes.
	if e := p.runsH.release(); err == nil && e != nil {
		err = e
	}
	return err
}

// Crash simulates a process kill for recovery tests and experiments: the
// store is abandoned without the flush, WAL reset, or final fsync a graceful
// Close performs. On-disk state is left exactly as the workload's own group
// commits and checkpoints wrote it.
func (p *PersistentKV) Crash() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.wg.Wait()
	_ = p.walDev.Close()
	_ = p.runsH.release()
}
