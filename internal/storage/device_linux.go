//go:build linux

package storage

import "syscall"

// Datasync flushes the file's data — and the metadata required to read it
// back, such as a grown size — without forcing unrelated metadata like
// timestamps through the filesystem journal. On a file whose blocks are
// already allocated (the commit journal preallocates for exactly this
// reason) a data-only barrier is measurably cheaper than a full fsync.
func (d *FileDevice) Datasync() error {
	for {
		err := syscall.Fdatasync(int(d.f.Fd()))
		if err != syscall.EINTR {
			return err
		}
	}
}
