package storage

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func testOpts() PersistentOptions {
	return PersistentOptions{MemtableBytes: 1 << 20, MaxRuns: 4}
}

func mustOpen(t *testing.T, dir string, opts PersistentOptions) *PersistentKV {
	t.Helper()
	p, err := OpenPersistentKV(dir, opts)
	if err != nil {
		t.Fatalf("OpenPersistentKV: %v", err)
	}
	return p
}

func put(t *testing.T, p *PersistentKV, key, value string) {
	t.Helper()
	if err := p.Apply([]Op{{Key: []byte(key), Value: []byte(value)}}); err != nil {
		t.Fatalf("Apply(%s): %v", key, err)
	}
}

// collect returns the full live state as a map.
func collect(t *testing.T, p *PersistentKV) map[string]string {
	t.Helper()
	state := make(map[string]string)
	if err := p.Scan(nil, nil, func(k, v []byte) bool {
		state[string(k)] = string(v)
		return true
	}); err != nil {
		t.Fatalf("Scan: %v", err)
	}
	return state
}

func TestPersistentKVRoundTripAndReopen(t *testing.T) {
	dir := t.TempDir()
	p := mustOpen(t, dir, testOpts())
	put(t, p, "a", "1")
	put(t, p, "b", "2")
	if err := p.Apply([]Op{{Key: []byte("c"), Value: []byte("3")}, {Key: []byte("a"), Delete: true}}); err != nil {
		t.Fatalf("batch: %v", err)
	}
	if _, err := p.Get([]byte("a")); err != ErrNotFound {
		t.Fatalf("deleted key: %v", err)
	}
	v, err := p.Get([]byte("b"))
	if err != nil || string(v) != "2" {
		t.Fatalf("Get(b) = %q, %v", v, err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := p.Get([]byte("b")); err != ErrClosed {
		t.Fatalf("Get after close: %v", err)
	}

	p2 := mustOpen(t, dir, testOpts())
	defer p2.Close()
	want := map[string]string{"b": "2", "c": "3"}
	if got := collect(t, p2); len(got) != len(want) || got["b"] != "2" || got["c"] != "3" {
		t.Fatalf("reopened state = %v, want %v", got, want)
	}
	// Close flushed, so the reopened store recovered from a run, not the WAL.
	rec := p2.Recovery()
	if rec.RecoveredRuns == 0 || rec.WALRecords != 0 {
		t.Fatalf("recovery after graceful close: %+v", rec)
	}
}

func TestPersistentKVWALReplayAfterCrash(t *testing.T) {
	dir := t.TempDir()
	p := mustOpen(t, dir, testOpts())
	for i := 0; i < 20; i++ {
		put(t, p, fmt.Sprintf("key-%03d", i), fmt.Sprintf("val-%03d", i))
	}
	p.Crash()

	p2 := mustOpen(t, dir, testOpts())
	defer p2.Close()
	rec := p2.Recovery()
	if rec.WALRecords != 20 || rec.WALOps != 20 {
		t.Fatalf("expected 20 WAL records replayed, got %+v", rec)
	}
	for i := 0; i < 20; i++ {
		v, err := p2.Get([]byte(fmt.Sprintf("key-%03d", i)))
		if err != nil || string(v) != fmt.Sprintf("val-%03d", i) {
			t.Fatalf("key-%03d after crash: %q, %v", i, v, err)
		}
	}
}

func TestPersistentKVFlushResetsWAL(t *testing.T) {
	dir := t.TempDir()
	p := mustOpen(t, dir, testOpts())
	put(t, p, "k", "v")
	if err := p.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	wal, err := os.Stat(filepath.Join(dir, "wal.dat"))
	if err != nil {
		t.Fatalf("stat wal: %v", err)
	}
	if wal.Size() != 0 {
		t.Fatalf("WAL not reset after flush: %d bytes", wal.Size())
	}
	st := p.Stats()
	if st.Flushes != 1 || st.Runs != 1 || st.MemtableLen != 0 {
		t.Fatalf("stats after flush: %+v", st)
	}
	p.Crash()
	// The flushed value must come back from the run with nothing to replay.
	p2 := mustOpen(t, dir, testOpts())
	defer p2.Close()
	if rec := p2.Recovery(); rec.RecoveredRuns != 1 || rec.WALRecords != 0 {
		t.Fatalf("recovery: %+v", rec)
	}
	if v, err := p2.Get([]byte("k")); err != nil || string(v) != "v" {
		t.Fatalf("Get after flush+crash: %q, %v", v, err)
	}
}

// TestPersistentKVWALCrashPoints damages the WAL the way real crashes do —
// truncation mid-record, a torn header, a doubled record, a corrupted
// payload, a length field pointing past the file — and verifies recovery is
// lossless up to the damage and idempotent (a second reopen sees the same
// state as the first).
func TestPersistentKVWALCrashPoints(t *testing.T) {
	const records = 8
	// lastRecord returns the byte range of the final WAL record by writing
	// the same workload twice and diffing the sizes — kept deterministic by
	// the fixed key/value shapes below.
	type wantState func(t *testing.T, state map[string]string, rec RecoveryInfo)
	allBut := func(missing int) map[string]string {
		want := make(map[string]string)
		for i := 0; i < records-missing; i++ {
			want[fmt.Sprintf("key-%03d", i)] = fmt.Sprintf("val-%03d", i)
		}
		return want
	}
	cases := []struct {
		name   string
		damage func(t *testing.T, walPath string)
		want   wantState
	}{
		{
			name: "truncate-mid-record",
			damage: func(t *testing.T, walPath string) {
				info, err := os.Stat(walPath)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.Truncate(walPath, info.Size()-3); err != nil {
					t.Fatal(err)
				}
			},
			want: func(t *testing.T, state map[string]string, rec RecoveryInfo) {
				if len(state) != records-1 {
					t.Fatalf("state = %v", state)
				}
				for k, v := range allBut(1) {
					if state[k] != v {
						t.Fatalf("missing %s: %v", k, state)
					}
				}
				if rec.DiscardedWALBytes == 0 {
					t.Fatalf("no WAL bytes discarded: %+v", rec)
				}
			},
		},
		{
			name: "torn-header",
			damage: func(t *testing.T, walPath string) {
				f, err := os.OpenFile(walPath, os.O_APPEND|os.O_WRONLY, 0o600)
				if err != nil {
					t.Fatal(err)
				}
				// 5 of the 8 header bytes of a record that never finished.
				if _, err := f.Write([]byte{0xDE, 0xAD, 0xBE, 0xEF, 0x99}); err != nil {
					t.Fatal(err)
				}
				f.Close()
			},
			want: func(t *testing.T, state map[string]string, rec RecoveryInfo) {
				if len(state) != records {
					t.Fatalf("complete records must all survive: %v", state)
				}
				if rec.DiscardedWALBytes != 5 {
					t.Fatalf("expected the 5 torn bytes discarded: %+v", rec)
				}
			},
		},
		{
			name: "duplicate-sequence",
			damage: func(t *testing.T, walPath string) {
				raw, err := os.ReadFile(walPath)
				if err != nil {
					t.Fatal(err)
				}
				// Every record has the same size (fixed-width keys/values), so
				// the last record is the last len/records slice.
				recSize := len(raw) / records
				f, err := os.OpenFile(walPath, os.O_APPEND|os.O_WRONLY, 0o600)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := f.Write(raw[len(raw)-recSize:]); err != nil {
					t.Fatal(err)
				}
				f.Close()
			},
			want: func(t *testing.T, state map[string]string, rec RecoveryInfo) {
				if len(state) != records {
					t.Fatalf("state = %v", state)
				}
				if rec.WALDuplicates != 1 {
					t.Fatalf("expected 1 duplicate skipped: %+v", rec)
				}
				if rec.WALRecords != records {
					t.Fatalf("expected %d records applied once: %+v", records, rec)
				}
			},
		},
		{
			name: "corrupt-payload",
			damage: func(t *testing.T, walPath string) {
				raw, err := os.ReadFile(walPath)
				if err != nil {
					t.Fatal(err)
				}
				raw[len(raw)-2] ^= 0xFF
				if err := os.WriteFile(walPath, raw, 0o600); err != nil {
					t.Fatal(err)
				}
			},
			want: func(t *testing.T, state map[string]string, rec RecoveryInfo) {
				if len(state) != records-1 {
					t.Fatalf("corrupted record must be dropped: %v", state)
				}
				if rec.DiscardedWALBytes == 0 {
					t.Fatalf("no WAL bytes discarded: %+v", rec)
				}
			},
		},
		{
			name: "huge-length-header",
			damage: func(t *testing.T, walPath string) {
				raw, err := os.ReadFile(walPath)
				if err != nil {
					t.Fatal(err)
				}
				recSize := len(raw) / records
				off := len(raw) - recSize
				// The length field (bytes 4..8 of the header) claims 4 GiB; a
				// recovery without bounds checks would try to allocate it.
				raw[off+4], raw[off+5], raw[off+6], raw[off+7] = 0xFF, 0xFF, 0xFF, 0xFF
				if err := os.WriteFile(walPath, raw, 0o600); err != nil {
					t.Fatal(err)
				}
			},
			want: func(t *testing.T, state map[string]string, rec RecoveryInfo) {
				if len(state) != records-1 {
					t.Fatalf("oversized record must be dropped: %v", state)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			p := mustOpen(t, dir, testOpts())
			for i := 0; i < records; i++ {
				put(t, p, fmt.Sprintf("key-%03d", i), fmt.Sprintf("val-%03d", i))
			}
			p.Crash()
			tc.damage(t, filepath.Join(dir, "wal.dat"))

			p2 := mustOpen(t, dir, testOpts())
			first := collect(t, p2)
			tc.want(t, first, p2.Recovery())
			p2.Crash()

			// Idempotence: recovering the recovered store changes nothing.
			p3 := mustOpen(t, dir, testOpts())
			defer p3.Close()
			second := collect(t, p3)
			if len(first) != len(second) {
				t.Fatalf("second recovery diverged: %v vs %v", first, second)
			}
			for k, v := range first {
				if second[k] != v {
					t.Fatalf("second recovery diverged at %s: %q vs %q", k, v, second[k])
				}
			}
		})
	}
}

func TestPersistentKVTornRunTailTruncated(t *testing.T) {
	dir := t.TempDir()
	p := mustOpen(t, dir, testOpts())
	put(t, p, "flushed", "yes")
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	p.Crash()
	// A crash mid-flush leaves a torn run at the end of the runs device.
	runsPath := filepath.Join(dir, "runs-000000.dat")
	f, err := os.OpenFile(runsPath, os.O_APPEND|os.O_WRONLY, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	p2 := mustOpen(t, dir, testOpts())
	defer p2.Close()
	rec := p2.Recovery()
	if rec.RecoveredRuns != 1 || rec.DiscardedRunBytes != 12 {
		t.Fatalf("recovery: %+v", rec)
	}
	if v, err := p2.Get([]byte("flushed")); err != nil || string(v) != "yes" {
		t.Fatalf("flushed data lost: %q, %v", v, err)
	}
}

func TestPersistentKVBackgroundCompaction(t *testing.T) {
	dir := t.TempDir()
	opts := PersistentOptions{MemtableBytes: 512, MaxRuns: 2}
	p := mustOpen(t, dir, opts)
	val := bytes.Repeat([]byte("x"), 64)
	for i := 0; i < 200; i++ {
		if err := p.Apply([]Op{{Key: []byte(fmt.Sprintf("key-%04d", i)), Value: val}}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := p.Stats()
		if st.Compactions >= 1 && st.Runs <= opts.MaxRuns {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no compaction observed: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%04d", i)
		if v, err := p.Get([]byte(key)); err != nil || !bytes.Equal(v, val) {
			t.Fatalf("%s after compaction: %v", key, err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Exactly one generation file survives, and it reopens cleanly.
	matches, err := filepath.Glob(filepath.Join(dir, "runs-*.dat"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("generation files = %v (%v)", matches, err)
	}
	p2 := mustOpen(t, dir, opts)
	defer p2.Close()
	if n := len(collect(t, p2)); n != 200 {
		t.Fatalf("reopened after compaction: %d keys", n)
	}
}

func TestPersistentKVStaleGenerationRemoved(t *testing.T) {
	dir := t.TempDir()
	p := mustOpen(t, dir, testOpts())
	put(t, p, "current", "gen")
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a compaction interrupted between rename and delete: the old
	// generation is still on disk next to the new one. Rename the real file
	// to generation 1 and plant a stale generation 0.
	if err := os.Rename(filepath.Join(dir, "runs-000000.dat"), filepath.Join(dir, "runs-000001.dat")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "runs-000000.dat"), []byte("stale"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "runs-000002.tmp"), []byte("tmp junk"), 0o600); err != nil {
		t.Fatal(err)
	}

	p2 := mustOpen(t, dir, testOpts())
	defer p2.Close()
	if v, err := p2.Get([]byte("current")); err != nil || string(v) != "gen" {
		t.Fatalf("newest generation not used: %q, %v", v, err)
	}
	if _, err := os.Stat(filepath.Join(dir, "runs-000000.dat")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("stale generation not removed: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "runs-000002.tmp")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("tmp file not removed: %v", err)
	}
}

func TestPersistentKVConcurrentGroupCommit(t *testing.T) {
	dir := t.TempDir()
	p := mustOpen(t, dir, PersistentOptions{MemtableBytes: 64 << 10, MaxRuns: 4})
	const workers = 8
	const perWorker = 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				key := []byte(fmt.Sprintf("w%02d-k%03d", w, i))
				if err := p.Apply([]Op{{Key: key, Value: key}}); err != nil {
					t.Errorf("apply: %v", err)
					return
				}
				if v, err := p.Get(key); err != nil || !bytes.Equal(v, key) {
					t.Errorf("read own write %s: %v", key, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	p.Crash()
	p2 := mustOpen(t, dir, testOpts())
	defer p2.Close()
	if n := len(collect(t, p2)); n != workers*perWorker {
		t.Fatalf("recovered %d keys, want %d", n, workers*perWorker)
	}
}

func TestPersistentKVEmptyKeyRejected(t *testing.T) {
	p := mustOpen(t, t.TempDir(), testOpts())
	defer p.Close()
	if err := p.Apply([]Op{{Key: nil, Value: []byte("x")}}); err == nil {
		t.Fatal("empty key accepted")
	}
	if err := p.Apply(nil); err != nil {
		t.Fatalf("empty batch should be a no-op: %v", err)
	}
}
