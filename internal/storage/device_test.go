package storage

import (
	"bytes"
	"io"
	"path/filepath"
	"testing"

	"trustedcells/internal/tamper"
)

func TestMemDeviceReadWrite(t *testing.T) {
	d := NewMemDevice(0)
	if d.Size() != 0 {
		t.Fatalf("fresh device size = %d", d.Size())
	}
	data := []byte("hello flash")
	if _, err := d.WriteAt(data, 0); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	if d.Size() != int64(len(data)) {
		t.Fatalf("size = %d, want %d", d.Size(), len(data))
	}
	buf := make([]byte, len(data))
	if _, err := d.ReadAt(buf, 0); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatalf("read %q, want %q", buf, data)
	}
	// Sparse write extends the device.
	if _, err := d.WriteAt([]byte("x"), 100); err != nil {
		t.Fatalf("sparse WriteAt: %v", err)
	}
	if d.Size() != 101 {
		t.Fatalf("size after sparse write = %d", d.Size())
	}
}

func TestMemDeviceReadPastEnd(t *testing.T) {
	d := NewMemDevice(0)
	_, _ = d.WriteAt([]byte("abc"), 0)
	buf := make([]byte, 10)
	n, err := d.ReadAt(buf, 0)
	if err != io.EOF || n != 3 {
		t.Fatalf("short read: n=%d err=%v", n, err)
	}
	if _, err := d.ReadAt(buf, 50); err != io.EOF {
		t.Fatalf("read past end should be EOF, got %v", err)
	}
}

func TestMemDeviceCapacity(t *testing.T) {
	d := NewMemDevice(10)
	if _, err := d.WriteAt(make([]byte, 10), 0); err != nil {
		t.Fatalf("write within capacity: %v", err)
	}
	if _, err := d.WriteAt([]byte("x"), 10); err != ErrOutOfSpace {
		t.Fatalf("expected ErrOutOfSpace, got %v", err)
	}
}

func TestFileDevice(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cell.dat")
	d, err := OpenFileDevice(path)
	if err != nil {
		t.Fatalf("OpenFileDevice: %v", err)
	}
	defer d.Close()
	if _, err := d.WriteAt([]byte("persisted"), 0); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	if err := d.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if d.Size() != 9 {
		t.Fatalf("Size = %d, want 9", d.Size())
	}
	buf := make([]byte, 9)
	if _, err := d.ReadAt(buf, 0); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if string(buf) != "persisted" {
		t.Fatalf("read %q", buf)
	}
	// Reopen picks up the existing size.
	d.Close()
	d2, err := OpenFileDevice(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer d2.Close()
	if d2.Size() != 9 {
		t.Fatalf("reopened size = %d", d2.Size())
	}
}

func TestMeteredDeviceCharges(t *testing.T) {
	var meter tamper.CostMeter
	d := NewMeteredDevice(NewMemDevice(0), &meter)
	payload := make([]byte, PageSize*2+1) // 3 pages
	if _, err := d.WriteAt(payload, 0); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	buf := make([]byte, PageSize) // 1 page
	if _, err := d.ReadAt(buf, 0); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	_, reads, writes, _, _ := meter.Snapshot()
	if writes != 3 {
		t.Fatalf("page writes = %d, want 3", writes)
	}
	if reads != 1 {
		t.Fatalf("page reads = %d, want 1", reads)
	}
	if d.Size() != int64(len(payload)) {
		t.Fatalf("Size = %d", d.Size())
	}
	if err := d.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
}

func TestMeteredDeviceNilMeter(t *testing.T) {
	d := NewMeteredDevice(NewMemDevice(0), nil)
	if _, err := d.WriteAt([]byte("ok"), 0); err != nil {
		t.Fatalf("WriteAt with nil meter: %v", err)
	}
}

func TestPagesHelper(t *testing.T) {
	cases := []struct{ n, want int }{{0, 0}, {-5, 0}, {1, 1}, {PageSize, 1}, {PageSize + 1, 2}, {3 * PageSize, 3}}
	for _, c := range cases {
		if got := pages(c.n); got != c.want {
			t.Fatalf("pages(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestAppendLogRoundTrip(t *testing.T) {
	log := NewAppendLog(NewMemDevice(0))
	records := [][]byte{[]byte("first"), []byte("second record"), {}, []byte("fourth")}
	var offsets []int64
	for _, r := range records {
		off, err := log.Append(r)
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		offsets = append(offsets, off)
	}
	for i, off := range offsets {
		got, err := log.ReadAt(off)
		if err != nil {
			t.Fatalf("ReadAt(%d): %v", off, err)
		}
		if !bytes.Equal(got, records[i]) {
			t.Fatalf("record %d = %q, want %q", i, got, records[i])
		}
	}
}

func TestAppendLogScan(t *testing.T) {
	log := NewAppendLog(NewMemDevice(0))
	want := [][]byte{[]byte("a"), []byte("bb"), []byte("ccc")}
	for _, r := range want {
		if _, err := log.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	var got [][]byte
	if err := log.Scan(func(_ int64, p []byte) bool { got = append(got, p); return true }); err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("scanned %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
	// Early stop.
	count := 0
	_ = log.Scan(func(_ int64, _ []byte) bool { count++; return false })
	if count != 1 {
		t.Fatalf("early stop visited %d records", count)
	}
}

func TestAppendLogDetectsCorruption(t *testing.T) {
	dev := NewMemDevice(0)
	log := NewAppendLog(dev)
	off, _ := log.Append([]byte("important data"))
	// Flip a byte of the payload directly on the device.
	if _, err := dev.WriteAt([]byte{0xFF}, off+logHeaderSize+2); err != nil {
		t.Fatal(err)
	}
	if _, err := log.ReadAt(off); err != ErrCorrupt {
		t.Fatalf("expected ErrCorrupt, got %v", err)
	}
}

func TestAppendLogResume(t *testing.T) {
	dev := NewMemDevice(0)
	log := NewAppendLog(dev)
	_, _ = log.Append([]byte("one"))
	head := log.Head()
	// A new AppendLog over the same device resumes at the end.
	log2 := NewAppendLog(dev)
	if log2.Head() != head {
		t.Fatalf("resumed head = %d, want %d", log2.Head(), head)
	}
	off, _ := log2.Append([]byte("two"))
	if off != head {
		t.Fatalf("append after resume at %d, want %d", off, head)
	}
	if err := log2.Sync(); err != nil {
		t.Fatal(err)
	}
}
