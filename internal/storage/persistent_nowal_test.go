package storage

import (
	"os"
	"path/filepath"
	"testing"
)

// TestPersistentKVDisableWAL pins the contract of the WAL-less mode used by
// the cloud commit journal: writes are invisible to recovery until Flush, the
// WAL file stays empty (no double write), and flushed state survives a crash.
func TestPersistentKVDisableWAL(t *testing.T) {
	dir := t.TempDir()
	opts := PersistentOptions{MemtableBytes: 1 << 20, DisableWAL: true}
	p, err := OpenPersistentKV(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Apply([]Op{{Key: []byte("flushed"), Value: []byte("yes")}}); err != nil {
		t.Fatal(err)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := p.Apply([]Op{{Key: []byte("unflushed"), Value: []byte("gone")}}); err != nil {
		t.Fatal(err)
	}
	if info, err := os.Stat(filepath.Join(dir, walFile)); err != nil || info.Size() != 0 {
		t.Fatalf("WAL file written despite DisableWAL: size=%v err=%v", info, err)
	}
	p.Crash()

	p, err = OpenPersistentKV(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if rec := p.Recovery(); rec.WALRecords != 0 || rec.RecoveredRuns == 0 {
		t.Fatalf("recovery = %+v, want runs and no WAL records", rec)
	}
	if v, err := p.Get([]byte("flushed")); err != nil || string(v) != "yes" {
		t.Fatalf("flushed key: %q %v", v, err)
	}
	if _, err := p.Get([]byte("unflushed")); err != ErrNotFound {
		t.Fatalf("unflushed key survived without a WAL: %v", err)
	}
}
