package storage

import (
	"sync"
	"time"
)

// A CompactionLimiter bounds how hard background maintenance can hit the
// device: at most maxConcurrent compactions run at once (across every engine
// sharing the limiter — typically all shards of a cloud.Durable store), and
// together they consume at most bytesPerSec of combined read+write bandwidth.
// Foreground traffic keeps its p99 because compactions queue on the slot
// semaphore and pace their I/O through the token bucket instead of saturating
// the device all at once.
//
// A nil *CompactionLimiter imposes no limits; every method is nil-safe.
type CompactionLimiter struct {
	sem chan struct{}

	mu     sync.Mutex
	rate   float64 // bytes per second; 0 = unlimited
	burst  float64
	tokens float64
	last   time.Time
}

// NewCompactionLimiter builds a limiter allowing maxConcurrent simultaneous
// compactions (<=0 means unbounded) with a shared bytesPerSec I/O budget
// (<=0 means unmetered). If both are unbounded the limiter is nil.
func NewCompactionLimiter(bytesPerSec int64, maxConcurrent int) *CompactionLimiter {
	if bytesPerSec <= 0 && maxConcurrent <= 0 {
		return nil
	}
	l := &CompactionLimiter{}
	if maxConcurrent > 0 {
		l.sem = make(chan struct{}, maxConcurrent)
	}
	if bytesPerSec > 0 {
		l.rate = float64(bytesPerSec)
		// A one-second burst keeps small compactions from sleeping at all
		// while still capping the sustained rate.
		l.burst = l.rate
		l.tokens = l.burst
		l.last = time.Now()
	}
	return l
}

// acquire claims a compaction slot, blocking while maxConcurrent others are
// in flight, and returns the release function. On a nil limiter (or one
// without a concurrency bound) it returns a no-op release immediately.
func (l *CompactionLimiter) acquire() (release func()) {
	if l == nil || l.sem == nil {
		return func() {}
	}
	l.sem <- struct{}{}
	return func() { <-l.sem }
}

// throttle charges n bytes of compaction I/O against the shared budget and
// sleeps long enough to keep the sustained rate at or under bytesPerSec.
func (l *CompactionLimiter) throttle(n int) {
	if l == nil || l.rate == 0 || n <= 0 {
		return
	}
	l.mu.Lock()
	now := time.Now()
	l.tokens += now.Sub(l.last).Seconds() * l.rate
	if l.tokens > l.burst {
		l.tokens = l.burst
	}
	l.last = now
	l.tokens -= float64(n)
	var wait time.Duration
	if l.tokens < 0 {
		wait = time.Duration(-l.tokens / l.rate * float64(time.Second))
	}
	l.mu.Unlock()
	if wait > 0 {
		time.Sleep(wait)
	}
}
