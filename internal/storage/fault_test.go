package storage

// Fault-injection tests for the Device error paths: a misbehaving device —
// partial writes or short reads reported with a nil error, or outright I/O
// failures — must surface as errors from the log and run layers, never as a
// panic or as silently torn records.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"
)

// faultDevice wraps a MemDevice and misbehaves on demand.
type faultDevice struct {
	inner *MemDevice
	// shortWriteBy makes WriteAt report n-shortWriteBy bytes with a nil
	// error; shortReadBy does the same for ReadAt.
	shortWriteBy int
	shortReadBy  int
	writeErr     error
	readErr      error
}

func (d *faultDevice) WriteAt(p []byte, off int64) (int, error) {
	if d.writeErr != nil {
		return 0, d.writeErr
	}
	n, err := d.inner.WriteAt(p, off)
	if d.shortWriteBy > 0 && err == nil {
		n -= d.shortWriteBy
		if n < 0 {
			n = 0
		}
	}
	return n, err
}

func (d *faultDevice) ReadAt(p []byte, off int64) (int, error) {
	if d.readErr != nil {
		return 0, d.readErr
	}
	n, err := d.inner.ReadAt(p, off)
	if d.shortReadBy > 0 && err == nil {
		n -= d.shortReadBy
		if n < 0 {
			n = 0
		}
	}
	return n, err
}

func (d *faultDevice) Size() int64            { return d.inner.Size() }
func (d *faultDevice) Sync() error            { return nil }
func (d *faultDevice) Truncate(n int64) error { return d.inner.Truncate(n) }

func TestAppendLogSurfacesPartialWrite(t *testing.T) {
	dev := &faultDevice{inner: NewMemDevice(0), shortWriteBy: 2}
	log := NewAppendLog(dev)
	if _, err := log.Append([]byte("payload")); !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("partial write not surfaced: %v", err)
	}
	if log.Head() != 0 {
		t.Fatalf("head advanced past a partial write: %d", log.Head())
	}
	// Once the fault clears, the log overwrites the torn bytes and recovers.
	dev.shortWriteBy = 0
	off, err := log.Append([]byte("payload"))
	if err != nil || off != 0 {
		t.Fatalf("append after fault: off=%d err=%v", off, err)
	}
	got, err := log.ReadAt(0)
	if err != nil || string(got) != "payload" {
		t.Fatalf("read back: %q, %v", got, err)
	}
}

func TestAppendLogSurfacesWriteError(t *testing.T) {
	wantErr := errors.New("flash controller timeout")
	dev := &faultDevice{inner: NewMemDevice(0), writeErr: wantErr}
	log := NewAppendLog(dev)
	if _, err := log.Append([]byte("x")); !errors.Is(err, wantErr) {
		t.Fatalf("write error not surfaced: %v", err)
	}
}

func TestAppendLogSurfacesShortRead(t *testing.T) {
	dev := &faultDevice{inner: NewMemDevice(0)}
	log := NewAppendLog(dev)
	off, err := log.Append([]byte("important"))
	if err != nil {
		t.Fatal(err)
	}
	dev.shortReadBy = 3
	if _, err := log.ReadAt(off); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("short read not surfaced: %v", err)
	}
	dev.shortReadBy = 0
	dev.readErr = errors.New("bad sector")
	if _, err := log.ReadAt(off); !errors.Is(err, dev.readErr) {
		t.Fatalf("read error not surfaced: %v", err)
	}
}

// TestAppendLogBoundsCorruptLength plants a header whose length field points
// far past the device: ReadAt must reject it as corruption instead of trying
// to allocate gigabytes (the panic path this guards against).
func TestAppendLogBoundsCorruptLength(t *testing.T) {
	dev := NewMemDevice(0)
	log := NewAppendLog(dev)
	off, err := log.Append([]byte("record"))
	if err != nil {
		t.Fatal(err)
	}
	header := make([]byte, logHeaderSize)
	binary.BigEndian.PutUint32(header[0:4], 0xBAD)
	binary.BigEndian.PutUint32(header[4:8], 0xFFFFFFF0)
	if _, err := dev.WriteAt(header, off); err != nil {
		t.Fatal(err)
	}
	if _, err := log.ReadAt(off); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized length accepted: %v", err)
	}
	// Reads past the device end are corruption too, not a crash.
	if _, err := log.ReadAt(dev.Size() + 100); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("read past end: %v", err)
	}
}

func TestWriteRunSurfacesPartialWrite(t *testing.T) {
	dev := &faultDevice{inner: NewMemDevice(0), shortWriteBy: 1}
	_, err := writeRun(dev, []memEntry{{key: []byte("k"), value: []byte("v")}}, 0)
	if !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("partial run write not surfaced: %v", err)
	}
}

func TestOpenRunRejectsDamage(t *testing.T) {
	dev := NewMemDevice(0)
	r, err := writeRun(dev, []memEntry{
		{key: []byte("alpha"), value: []byte("1")},
		{key: []byte("beta"), value: []byte("2")},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A clean open rebuilds the descriptor identically.
	reopened, err := openRun(dev, r.offset-8)
	if err != nil {
		t.Fatalf("openRun: %v", err)
	}
	if reopened.count != 2 || !bytes.Equal(reopened.first, []byte("alpha")) || !bytes.Equal(reopened.last, []byte("beta")) {
		t.Fatalf("rebuilt descriptor: %+v", reopened)
	}
	e, ok, err := reopened.get(dev, nil, []byte("beta"), nil)
	if err != nil || !ok || string(e.value) != "2" {
		t.Fatalf("get through rebuilt index: %v %v %v", e, ok, err)
	}
	// Flip a body byte: the CRC must reject the run.
	if _, err := dev.WriteAt([]byte{0xFF}, r.offset+1); err != nil {
		t.Fatal(err)
	}
	if _, err := openRun(dev, r.offset-8); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt body accepted: %v", err)
	}
	// A header past the device end is torn, not fatal.
	if _, err := openRun(dev, dev.Size()-2); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn header accepted: %v", err)
	}
}

func TestFullReadFullWriteHelpers(t *testing.T) {
	if err := fullWrite(5, 5, nil); err != nil {
		t.Fatalf("complete write flagged: %v", err)
	}
	if err := fullWrite(3, 5, nil); !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("partial write missed: %v", err)
	}
	if err := fullRead(5, 5, io.EOF); err != nil {
		t.Fatalf("EOF exactly at the end flagged: %v", err)
	}
	if err := fullRead(3, 5, nil); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("short read missed: %v", err)
	}
	if err := fullRead(3, 5, io.EOF); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("short EOF read missed: %v", err)
	}
	custom := errors.New("custom")
	if err := fullRead(0, 5, custom); !errors.Is(err, custom) || strings.Contains(err.Error(), "short read") {
		t.Fatalf("device error rewritten: %v", err)
	}
}
