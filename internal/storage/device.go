// Package storage implements the embedded storage engine that runs inside a
// trusted cell. The paper's challenge section singles out "low-end hardware
// devices like secure tokens (a microcontroller with tiny RAM, connected to
// NAND Flash chips or SD cards, possibly with energy consumption
// constraints)"; the engine is therefore designed as a log-structured
// merge store:
//
//   - all writes are sequential appends (NAND-flash friendly, no in-place
//     updates);
//   - the RAM-resident write buffer (memtable) is bounded by the hardware
//     profile's RAM budget;
//   - reads consult the memtable, then immutable sorted runs through a sparse
//     in-RAM index, touching a bounded number of flash pages;
//   - compaction merges runs to bound read amplification.
//
// Every page touched is charged to a tamper.CostMeter so that experiments can
// convert engine work into simulated device time and energy.
package storage

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"trustedcells/internal/tamper"
)

// PageSize is the flash page granularity used for cost accounting.
const PageSize = 512

// Errors returned by devices and the engine.
var (
	ErrNotFound   = errors.New("storage: key not found")
	ErrClosed     = errors.New("storage: store is closed")
	ErrCorrupt    = errors.New("storage: corrupted record")
	ErrReadOnly   = errors.New("storage: device is read-only")
	ErrOutOfSpace = errors.New("storage: device capacity exceeded")
)

// Device abstracts the stable storage behind the engine: a NAND flash chip,
// an SD card, or (for the untrusted-cache case) a plain file. Offsets are
// byte offsets; implementations must be safe for concurrent use.
type Device interface {
	io.ReaderAt
	io.WriterAt
	// Size returns the current device size in bytes (the end of the
	// highest-written byte).
	Size() int64
	// Sync flushes buffered writes to stable storage.
	Sync() error
}

// Truncater is the optional truncation extension of Device. The persistent
// engine uses it to discard a torn tail detected during recovery and to reset
// the write-ahead log after a checkpoint; every device in this package
// implements it.
type Truncater interface {
	// Truncate discards everything past size bytes.
	Truncate(size int64) error
}

// fullWrite verifies a WriteAt result: a device that reports fewer bytes than
// requested without an error (a misbehaving flash controller, a full
// filesystem that lies) must still surface a partial-write error to the
// engine instead of letting a half-written record masquerade as committed.
func fullWrite(n, want int, err error) error {
	if err != nil {
		return err
	}
	if n < want {
		return fmt.Errorf("storage: partial write (%d of %d bytes): %w", n, want, io.ErrShortWrite)
	}
	return nil
}

// fullRead verifies a ReadAt result the same way: short reads with a nil
// error become ErrUnexpectedEOF rather than leaving stale buffer bytes to be
// parsed as record content.
func fullRead(n, want int, err error) error {
	if n >= want {
		return nil // the requested bytes arrived; EOF exactly at the end is fine
	}
	if err == nil || err == io.EOF {
		return fmt.Errorf("storage: short read (%d of %d bytes): %w", n, want, io.ErrUnexpectedEOF)
	}
	return err
}

// MemDevice is an in-memory Device used for tests, simulations and volatile
// caches. A capacity of zero means unbounded.
type MemDevice struct {
	mu       sync.RWMutex
	data     []byte
	capacity int64
}

// NewMemDevice creates a memory device with the given capacity in bytes
// (0 = unbounded).
func NewMemDevice(capacity int64) *MemDevice {
	return &MemDevice{capacity: capacity}
}

// ReadAt implements io.ReaderAt.
func (d *MemDevice) ReadAt(p []byte, off int64) (int, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if off >= int64(len(d.data)) {
		return 0, io.EOF
	}
	n := copy(p, d.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// WriteAt implements io.WriterAt.
func (d *MemDevice) WriteAt(p []byte, off int64) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	end := off + int64(len(p))
	if d.capacity > 0 && end > d.capacity {
		return 0, ErrOutOfSpace
	}
	if end > int64(len(d.data)) {
		grown := make([]byte, end)
		copy(grown, d.data)
		d.data = grown
	}
	copy(d.data[off:end], p)
	return len(p), nil
}

// Size returns the written extent of the device.
func (d *MemDevice) Size() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return int64(len(d.data))
}

// Sync is a no-op for the memory device.
func (d *MemDevice) Sync() error { return nil }

// Truncate discards everything past size bytes.
func (d *MemDevice) Truncate(size int64) error {
	if size < 0 {
		return fmt.Errorf("storage: truncate to negative size %d", size)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if size < int64(len(d.data)) {
		d.data = d.data[:size]
	}
	return nil
}

// FileDevice is a Device backed by an operating-system file. It is used when
// a cell persists its encrypted local cache on an SD card or disk.
type FileDevice struct {
	mu   sync.Mutex
	f    *os.File
	size int64
}

// OpenFileDevice opens (creating if needed) the file at path.
func OpenFileDevice(path string) (*FileDevice, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o600)
	if err != nil {
		return nil, fmt.Errorf("storage: open device: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: stat device: %w", err)
	}
	return &FileDevice{f: f, size: info.Size()}, nil
}

// ReadAt implements io.ReaderAt.
func (d *FileDevice) ReadAt(p []byte, off int64) (int, error) { return d.f.ReadAt(p, off) }

// WriteAt implements io.WriterAt.
func (d *FileDevice) WriteAt(p []byte, off int64) (int, error) {
	n, err := d.f.WriteAt(p, off)
	d.mu.Lock()
	if end := off + int64(n); end > d.size {
		d.size = end
	}
	d.mu.Unlock()
	return n, err
}

// Size returns the file size.
func (d *FileDevice) Size() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.size
}

// Sync flushes the file.
func (d *FileDevice) Sync() error { return d.f.Sync() }

// Truncate discards everything past size bytes.
func (d *FileDevice) Truncate(size int64) error {
	if size < 0 {
		return fmt.Errorf("storage: truncate to negative size %d", size)
	}
	if err := d.f.Truncate(size); err != nil {
		return fmt.Errorf("storage: truncate device: %w", err)
	}
	d.mu.Lock()
	if size < d.size {
		d.size = size
	}
	d.mu.Unlock()
	return nil
}

// Close closes the underlying file.
func (d *FileDevice) Close() error { return d.f.Close() }

// MeteredDevice wraps a Device and charges every access to a cost meter in
// units of flash pages. It is how the engine's work becomes visible to the
// hardware-profile experiments.
type MeteredDevice struct {
	inner Device
	meter *tamper.CostMeter
}

// NewMeteredDevice wraps inner so accesses are charged to meter. A nil meter
// disables accounting.
func NewMeteredDevice(inner Device, meter *tamper.CostMeter) *MeteredDevice {
	return &MeteredDevice{inner: inner, meter: meter}
}

func pages(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + PageSize - 1) / PageSize
}

// ReadAt reads and charges page reads.
func (d *MeteredDevice) ReadAt(p []byte, off int64) (int, error) {
	n, err := d.inner.ReadAt(p, off)
	if d.meter != nil {
		d.meter.ChargeRead(pages(n))
	}
	return n, err
}

// WriteAt writes and charges page writes.
func (d *MeteredDevice) WriteAt(p []byte, off int64) (int, error) {
	n, err := d.inner.WriteAt(p, off)
	if d.meter != nil {
		d.meter.ChargeWrite(pages(n))
	}
	return n, err
}

// Size returns the inner device size.
func (d *MeteredDevice) Size() int64 { return d.inner.Size() }

// Sync syncs the inner device.
func (d *MeteredDevice) Sync() error { return d.inner.Sync() }

// Truncate truncates the inner device when it supports truncation.
func (d *MeteredDevice) Truncate(size int64) error {
	if t, ok := d.inner.(Truncater); ok {
		return t.Truncate(size)
	}
	return fmt.Errorf("storage: device does not support truncation")
}
