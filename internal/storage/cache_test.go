package storage

import (
	"bytes"
	"testing"
)

func TestBlockCacheHitMissCounters(t *testing.T) {
	c := NewBlockCache(1 << 20)
	if got := c.get(1, 0); got != nil {
		t.Fatalf("empty cache returned %v", got)
	}
	c.put(1, 0, []byte("segment-a"))
	if got := c.get(1, 0); !bytes.Equal(got, []byte("segment-a")) {
		t.Fatalf("get after put = %q", got)
	}
	if got := c.get(1, 64); got != nil {
		t.Fatalf("different offset hit: %q", got)
	}
	if got := c.get(2, 0); got != nil {
		t.Fatalf("different run hit: %q", got)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 3 {
		t.Fatalf("hits=%d misses=%d, want 1/3", hits, misses)
	}
	if c.Bytes() != int64(len("segment-a")) {
		t.Fatalf("resident bytes = %d", c.Bytes())
	}
}

func TestBlockCacheEvictsLRUUnderBudget(t *testing.T) {
	// All keys below share runID so they land in predictable stripes; use a
	// capacity small enough that a stripe holds ~2 segments.
	c := NewBlockCache(cacheStripes * 100)
	seg := func(i int) []byte { return bytes.Repeat([]byte{byte(i)}, 60) }
	for i := 0; i < 64; i++ {
		c.put(uint64(i), 0, seg(i))
	}
	if got := c.Bytes(); got > cacheStripes*100 {
		t.Fatalf("resident bytes %d exceed capacity %d", got, cacheStripes*100)
	}
	// At 60 bytes per segment and a 100-byte stripe budget, each stripe keeps
	// exactly its most recent entry — some early segments must be gone.
	resident := 0
	for i := 0; i < 64; i++ {
		if c.get(uint64(i), 0) != nil {
			resident++
		}
	}
	if resident == 0 || resident == 64 {
		t.Fatalf("resident = %d of 64, want eviction of some but not all", resident)
	}
}

func TestBlockCacheOversizedSegmentNotAdmitted(t *testing.T) {
	c := NewBlockCache(cacheStripes * 16)
	c.put(1, 0, make([]byte, 64)) // 64 > 16-byte stripe budget
	if c.Bytes() != 0 {
		t.Fatalf("oversized segment admitted: %d bytes resident", c.Bytes())
	}
}

func TestBlockCachePutKeepsIncumbent(t *testing.T) {
	c := NewBlockCache(1 << 20)
	c.put(1, 0, []byte("first"))
	incumbent := c.get(1, 0)
	c.put(1, 0, []byte("racer"))
	if got := c.get(1, 0); !bytes.Equal(got, incumbent) {
		t.Fatalf("racing put replaced the incumbent buffer: %q", got)
	}
	if c.Bytes() != int64(len("first")) {
		t.Fatalf("double admission counted twice: %d bytes", c.Bytes())
	}
}

func TestBlockCacheInvalidateRuns(t *testing.T) {
	c := NewBlockCache(1 << 20)
	for off := int64(0); off < 4; off++ {
		c.put(7, off*128, []byte("run7"))
		c.put(8, off*128, []byte("run8"))
	}
	c.invalidateRuns([]uint64{7})
	for off := int64(0); off < 4; off++ {
		if c.get(7, off*128) != nil {
			t.Fatalf("segment of invalidated run 7 still cached at %d", off*128)
		}
		if c.get(8, off*128) == nil {
			t.Fatalf("segment of surviving run 8 dropped at %d", off*128)
		}
	}
	if c.Bytes() != 4*int64(len("run8")) {
		t.Fatalf("resident bytes after invalidation = %d", c.Bytes())
	}
}

func TestBlockCacheNilIsSafe(t *testing.T) {
	if NewBlockCache(0) != nil || NewBlockCache(-5) != nil {
		t.Fatal("non-positive capacity must return nil")
	}
	var c *BlockCache
	c.put(1, 0, []byte("x"))
	if c.get(1, 0) != nil {
		t.Fatal("nil cache returned data")
	}
	c.invalidateRuns([]uint64{1})
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Fatalf("nil stats = %d/%d", h, m)
	}
	if c.Bytes() != 0 {
		t.Fatal("nil cache has resident bytes")
	}
}
