package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"trustedcells/internal/tamper"
)

func newTestKV() *KV {
	return NewKV(NewMemDevice(0), Options{MemtableBytes: 4 << 10, MaxRuns: 4})
}

func TestKVPutGet(t *testing.T) {
	kv := newTestKV()
	if err := kv.Put([]byte("alice/doc1"), []byte("payload-1")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := kv.Get([]byte("alice/doc1"))
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if string(got) != "payload-1" {
		t.Fatalf("Get = %q", got)
	}
	if _, err := kv.Get([]byte("missing")); err != ErrNotFound {
		t.Fatalf("expected ErrNotFound, got %v", err)
	}
	if err := kv.Put(nil, []byte("x")); err == nil {
		t.Fatal("empty key accepted")
	}
}

func TestKVOverwrite(t *testing.T) {
	kv := newTestKV()
	_ = kv.Put([]byte("k"), []byte("v1"))
	_ = kv.Put([]byte("k"), []byte("v2"))
	got, err := kv.Get([]byte("k"))
	if err != nil || string(got) != "v2" {
		t.Fatalf("Get after overwrite = %q, %v", got, err)
	}
	// Overwrite across a flush boundary.
	if err := kv.Flush(); err != nil {
		t.Fatal(err)
	}
	_ = kv.Put([]byte("k"), []byte("v3"))
	got, _ = kv.Get([]byte("k"))
	if string(got) != "v3" {
		t.Fatalf("Get after flush+overwrite = %q", got)
	}
}

func TestKVDelete(t *testing.T) {
	kv := newTestKV()
	_ = kv.Put([]byte("k"), []byte("v"))
	if err := kv.Delete([]byte("k")); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := kv.Get([]byte("k")); err != ErrNotFound {
		t.Fatalf("deleted key still readable: %v", err)
	}
	// Delete survives a flush (tombstone shadowing an older run).
	_ = kv.Put([]byte("persistent"), []byte("v"))
	_ = kv.Flush()
	_ = kv.Delete([]byte("persistent"))
	_ = kv.Flush()
	if _, err := kv.Get([]byte("persistent")); err != ErrNotFound {
		t.Fatalf("tombstone not honoured after flush: %v", err)
	}
	// Deleting a missing key is fine.
	if err := kv.Delete([]byte("never-existed")); err != nil {
		t.Fatalf("Delete missing: %v", err)
	}
	ok, err := kv.Has([]byte("persistent"))
	if err != nil || ok {
		t.Fatalf("Has deleted key = %v, %v", ok, err)
	}
}

func TestKVFlushAndReadBack(t *testing.T) {
	kv := newTestKV()
	for i := 0; i < 200; i++ {
		key := []byte(fmt.Sprintf("key-%04d", i))
		if err := kv.Put(key, []byte(fmt.Sprintf("value-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := kv.Flush(); err != nil {
		t.Fatal(err)
	}
	st := kv.Stats()
	if st.Runs == 0 {
		t.Fatal("expected at least one run after flush")
	}
	for i := 0; i < 200; i++ {
		key := []byte(fmt.Sprintf("key-%04d", i))
		got, err := kv.Get(key)
		if err != nil {
			t.Fatalf("Get %s: %v", key, err)
		}
		if string(got) != fmt.Sprintf("value-%d", i) {
			t.Fatalf("key %s = %q", key, got)
		}
	}
}

func TestKVAutomaticFlushOnBudget(t *testing.T) {
	kv := NewKV(NewMemDevice(0), Options{MemtableBytes: 1 << 10, MaxRuns: 100})
	big := bytes.Repeat([]byte("x"), 300)
	for i := 0; i < 20; i++ {
		if err := kv.Put([]byte(fmt.Sprintf("k%02d", i)), big); err != nil {
			t.Fatal(err)
		}
	}
	st := kv.Stats()
	if st.Flushes == 0 {
		t.Fatal("memtable never flushed despite exceeding its budget")
	}
	if st.MemtableB > 2<<10 {
		t.Fatalf("memtable footprint %d exceeds budget substantially", st.MemtableB)
	}
}

func TestKVAutomaticCompaction(t *testing.T) {
	kv := NewKV(NewMemDevice(0), Options{MemtableBytes: 512, MaxRuns: 2})
	big := bytes.Repeat([]byte("y"), 200)
	for i := 0; i < 40; i++ {
		if err := kv.Put([]byte(fmt.Sprintf("k%03d", i)), big); err != nil {
			t.Fatal(err)
		}
	}
	st := kv.Stats()
	if st.Compactions == 0 {
		t.Fatal("no compaction although MaxRuns=2")
	}
	if st.Runs > 3 {
		t.Fatalf("too many runs after compaction: %d", st.Runs)
	}
	// Data still intact.
	for i := 0; i < 40; i++ {
		if _, err := kv.Get([]byte(fmt.Sprintf("k%03d", i))); err != nil {
			t.Fatalf("key %d lost after compaction: %v", i, err)
		}
	}
}

func TestKVScanRange(t *testing.T) {
	kv := newTestKV()
	keys := []string{"a", "b", "c", "d", "e", "f"}
	for _, k := range keys {
		_ = kv.Put([]byte(k), []byte("v-"+k))
	}
	_ = kv.Flush()
	_ = kv.Put([]byte("b"), []byte("v-b2")) // newer version in memtable
	_ = kv.Delete([]byte("d"))

	var got []string
	err := kv.Scan([]byte("b"), []byte("f"), func(k, v []byte) bool {
		got = append(got, string(k)+"="+string(v))
		return true
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	want := []string{"b=v-b2", "c=v-c", "e=v-e"}
	if len(got) != len(want) {
		t.Fatalf("scan returned %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	// Full scan and count.
	n, err := kv.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 { // six keys minus one deleted
		t.Fatalf("Count = %d, want 5", n)
	}
	// Early termination.
	visits := 0
	_ = kv.Scan(nil, nil, func(_, _ []byte) bool { visits++; return false })
	if visits != 1 {
		t.Fatalf("early-stop scan visited %d", visits)
	}
}

func TestKVCompactDropsTombstones(t *testing.T) {
	kv := newTestKV()
	for i := 0; i < 50; i++ {
		_ = kv.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("v"))
	}
	_ = kv.Flush()
	for i := 0; i < 50; i += 2 {
		_ = kv.Delete([]byte(fmt.Sprintf("k%02d", i)))
	}
	if err := kv.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	n, _ := kv.Count()
	if n != 25 {
		t.Fatalf("Count after compact = %d, want 25", n)
	}
	st := kv.Stats()
	if st.Runs != 1 {
		t.Fatalf("runs after compact = %d, want 1", st.Runs)
	}
}

func TestKVCompactEverythingDeleted(t *testing.T) {
	kv := newTestKV()
	_ = kv.Put([]byte("only"), []byte("v"))
	_ = kv.Flush()
	_ = kv.Delete([]byte("only"))
	if err := kv.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if n, _ := kv.Count(); n != 0 {
		t.Fatalf("Count = %d, want 0", n)
	}
	if kv.Stats().Runs != 0 {
		t.Fatalf("runs = %d, want 0", kv.Stats().Runs)
	}
}

func TestKVClose(t *testing.T) {
	kv := newTestKV()
	_ = kv.Put([]byte("k"), []byte("v"))
	if err := kv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := kv.Put([]byte("k2"), []byte("v")); err != ErrClosed {
		t.Fatalf("Put after close: %v", err)
	}
	if _, err := kv.Get([]byte("k")); err != ErrClosed {
		t.Fatalf("Get after close: %v", err)
	}
	if err := kv.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

func TestKVVerifyRunsDetectsTampering(t *testing.T) {
	dev := NewMemDevice(0)
	kv := NewKV(dev, Options{MemtableBytes: 1 << 20})
	for i := 0; i < 100; i++ {
		_ = kv.Put([]byte(fmt.Sprintf("key-%03d", i)), bytes.Repeat([]byte("v"), 50))
	}
	_ = kv.Flush()
	if err := kv.VerifyRuns(); err != nil {
		t.Fatalf("VerifyRuns on clean store: %v", err)
	}
	// Corrupt a byte in the middle of the device (inside the run body).
	if _, err := dev.WriteAt([]byte{0xAA}, dev.Size()/2); err != nil {
		t.Fatal(err)
	}
	if err := kv.VerifyRuns(); err == nil {
		t.Fatal("tampered run not detected")
	}
}

func TestKVMeteredWorkload(t *testing.T) {
	var meter tamper.CostMeter
	dev := NewMeteredDevice(NewMemDevice(0), &meter)
	kv := NewKV(dev, Options{MemtableBytes: 2 << 10, MaxRuns: 4})
	for i := 0; i < 500; i++ {
		_ = kv.Put([]byte(fmt.Sprintf("sensor/%06d", i)), []byte("reading=1234"))
	}
	_, _, writes, _, _ := meter.Snapshot()
	if writes == 0 {
		t.Fatal("metered device recorded no page writes")
	}
	token := tamper.DefaultProfile(tamper.ClassSecureToken)
	gateway := tamper.DefaultProfile(tamper.ClassHomeGateway)
	if meter.SimulatedTime(token) <= meter.SimulatedTime(gateway) {
		t.Fatal("token should be slower than gateway for the same workload")
	}
}

func TestKVRandomizedAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	kv := NewKV(NewMemDevice(0), Options{MemtableBytes: 1 << 10, MaxRuns: 3})
	oracle := make(map[string]string)
	for i := 0; i < 3000; i++ {
		k := fmt.Sprintf("key-%03d", rng.Intn(300))
		switch rng.Intn(10) {
		case 0:
			_ = kv.Delete([]byte(k))
			delete(oracle, k)
		case 1:
			if err := kv.Flush(); err != nil {
				t.Fatal(err)
			}
		case 2:
			if rng.Intn(5) == 0 {
				if err := kv.Compact(); err != nil {
					t.Fatal(err)
				}
			}
		default:
			v := fmt.Sprintf("val-%d", i)
			_ = kv.Put([]byte(k), []byte(v))
			oracle[k] = v
		}
	}
	for k, v := range oracle {
		got, err := kv.Get([]byte(k))
		if err != nil {
			t.Fatalf("key %s missing: %v", k, err)
		}
		if string(got) != v {
			t.Fatalf("key %s = %q, want %q", k, got, v)
		}
	}
	n, _ := kv.Count()
	if n != len(oracle) {
		t.Fatalf("Count = %d, oracle has %d", n, len(oracle))
	}
}

// Property: what you put is what you get, for arbitrary binary keys/values.
func TestKVPutGetProperty(t *testing.T) {
	kv := newTestKV()
	f := func(key, value []byte) bool {
		if len(key) == 0 {
			return true
		}
		if err := kv.Put(key, value); err != nil {
			return false
		}
		got, err := kv.Get(key)
		if err != nil {
			return false
		}
		return bytes.Equal(got, value)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMemtableOrderingAndSize(t *testing.T) {
	m := newMemtable()
	m.put([]byte("b"), []byte("2"), false)
	m.put([]byte("a"), []byte("1"), false)
	m.put([]byte("c"), []byte("3"), false)
	var keys []string
	m.scan(nil, nil, func(e memEntry) bool { keys = append(keys, string(e.key)); return true })
	if fmt.Sprint(keys) != "[a b c]" {
		t.Fatalf("memtable order %v", keys)
	}
	before := m.size()
	m.put([]byte("b"), []byte("a much longer replacement value"), false)
	if m.size() <= before {
		t.Fatal("size did not grow after replacing with a larger value")
	}
	if m.count() != 3 {
		t.Fatalf("count = %d, want 3", m.count())
	}
}

func TestRunSparseIndexLookups(t *testing.T) {
	dev := NewMemDevice(0)
	var entries []memEntry
	for i := 0; i < 100; i++ {
		entries = append(entries, memEntry{
			key:   []byte(fmt.Sprintf("key-%04d", i*2)), // even keys only
			value: []byte(fmt.Sprintf("val-%d", i)),
		})
	}
	r, err := writeRun(dev, entries, 0)
	if err != nil {
		t.Fatalf("writeRun: %v", err)
	}
	if err := r.verify(dev); err != nil {
		t.Fatalf("verify: %v", err)
	}
	// Every present key is found, absent (odd) keys are not.
	for i := 0; i < 100; i++ {
		e, ok, err := r.get(dev, nil, []byte(fmt.Sprintf("key-%04d", i*2)), nil)
		if err != nil || !ok {
			t.Fatalf("present key %d not found: %v", i, err)
		}
		if string(e.value) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("value mismatch for %d", i)
		}
		if _, ok, _ := r.get(dev, nil, []byte(fmt.Sprintf("key-%04d", i*2+1)), nil); ok {
			t.Fatalf("absent key %d reported found", i*2+1)
		}
	}
	// Out-of-range keys short-circuit.
	if _, ok, _ := r.get(dev, nil, []byte("aaa"), nil); ok {
		t.Fatal("key below range found")
	}
	if _, ok, _ := r.get(dev, nil, []byte("zzz"), nil); ok {
		t.Fatal("key above range found")
	}
}

func TestWriteRunEmpty(t *testing.T) {
	if _, err := writeRun(NewMemDevice(0), nil, 0); err == nil {
		t.Fatal("empty run accepted")
	}
}

func BenchmarkKVPut(b *testing.B) {
	kv := NewKV(NewMemDevice(0), Options{MemtableBytes: 1 << 20, MaxRuns: 8})
	value := bytes.Repeat([]byte("v"), 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := kv.Put([]byte(fmt.Sprintf("key-%09d", i)), value); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKVGet(b *testing.B) {
	kv := NewKV(NewMemDevice(0), Options{MemtableBytes: 1 << 20, MaxRuns: 8})
	value := bytes.Repeat([]byte("v"), 100)
	const n = 10000
	for i := 0; i < n; i++ {
		_ = kv.Put([]byte(fmt.Sprintf("key-%09d", i)), value)
	}
	_ = kv.Flush()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kv.Get([]byte(fmt.Sprintf("key-%09d", i%n))); err != nil {
			b.Fatal(err)
		}
	}
}
