package storage

import (
	"encoding/binary"
	"fmt"
)

// A bloomFilter answers "is key definitely absent from this run?" without
// touching the device. Each run built by writeRun carries one, sized at
// bloomBitsPerKey bits per entry and serialized into the run footer so
// recovery reloads it instead of rebuilding it from the body.
//
// The filter uses double hashing (Kirsch–Mitzenmacher): two 64-bit hashes are
// derived from one FNV-1a pass and combined as h1 + i*h2 for the i-th probe.
// At the default 10 bits/key and k=7 probes the false-positive rate is ~1%,
// so a negative lookup skips the device read ~99% of the time.
type bloomFilter struct {
	bits []byte
	k    uint8
}

// defaultBloomBitsPerKey is the sizing used when options leave it zero:
// 10 bits/key ≈ 1% false positives at k = ln2 * 10 ≈ 7 probes.
const defaultBloomBitsPerKey = 10

// bloomProbes returns the optimal probe count for a bits-per-key budget,
// k = bitsPerKey * ln2, clamped to [1, 30].
func bloomProbes(bitsPerKey int) uint8 {
	k := int(float64(bitsPerKey) * 0.69)
	if k < 1 {
		k = 1
	}
	if k > 30 {
		k = 30
	}
	return uint8(k)
}

// bloomHash is FNV-1a over the key, pushed through a murmur3-style avalanche
// finalizer; the second hash of the double-hashing scheme is derived from it
// by rotation so one pass over the key suffices.
//
// The finalizer is not optional: the cloud layer stripes keys over shards by
// FNV-32a, so the keys that share an engine — and therefore a filter — are
// exactly those agreeing on FNV mod the shard count. Raw FNV-64a is
// algebraically close enough to FNV-32a that this conditioning bleeds into
// the probe positions: measured false positives on same-shard misses were
// ~5.7% against ~0.7% unconditioned. The avalanche step scatters the
// structured hash set and restores the unconditioned rate.
func bloomHash(key []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// newBloomFilter sizes a filter for n keys at bitsPerKey bits each (zero
// falls back to the default sizing).
func newBloomFilter(n, bitsPerKey int) *bloomFilter {
	if bitsPerKey <= 0 {
		bitsPerKey = defaultBloomBitsPerKey
	}
	nbits := n * bitsPerKey
	if nbits < 64 {
		nbits = 64
	}
	return &bloomFilter{
		bits: make([]byte, (nbits+7)/8),
		k:    bloomProbes(bitsPerKey),
	}
}

func (f *bloomFilter) add(key []byte) {
	h := bloomHash(key)
	delta := h>>17 | h<<47
	nbits := uint64(len(f.bits)) * 8
	for i := uint8(0); i < f.k; i++ {
		pos := h % nbits
		f.bits[pos/8] |= 1 << (pos % 8)
		h += delta
	}
}

// mayContain reports whether key might be in the set. A nil filter (a run
// written with blooms disabled) conservatively answers true.
func (f *bloomFilter) mayContain(key []byte) bool {
	if f == nil {
		return true
	}
	h := bloomHash(key)
	delta := h>>17 | h<<47
	nbits := uint64(len(f.bits)) * 8
	for i := uint8(0); i < f.k; i++ {
		pos := h % nbits
		if f.bits[pos/8]&(1<<(pos%8)) == 0 {
			return false
		}
		h += delta
	}
	return true
}

// marshal appends the wire form — [1] probe count, [uvarint] bit-array
// length, bits — to buf. A nil filter marshals as a zero-length bit array.
func (f *bloomFilter) marshal(buf []byte) []byte {
	var tmp [binary.MaxVarintLen64]byte
	if f == nil {
		buf = append(buf, 0)
		buf = append(buf, tmp[:binary.PutUvarint(tmp[:], 0)]...)
		return buf
	}
	buf = append(buf, f.k)
	buf = append(buf, tmp[:binary.PutUvarint(tmp[:], uint64(len(f.bits)))]...)
	buf = append(buf, f.bits...)
	return buf
}

// unmarshalBloom decodes a filter written by marshal, returning the filter
// (nil for the zero-length form), the bytes consumed, and an error for a
// truncated or overlong encoding.
func unmarshalBloom(b []byte) (*bloomFilter, int, error) {
	if len(b) < 1 {
		return nil, 0, fmt.Errorf("storage: bloom header: %w", ErrCorrupt)
	}
	k := b[0]
	nbits, n := binary.Uvarint(b[1:])
	if n <= 0 || nbits > uint64(len(b)) {
		return nil, 0, fmt.Errorf("storage: bloom length: %w", ErrCorrupt)
	}
	pos := 1 + n
	end := pos + int(nbits)
	if end > len(b) {
		return nil, 0, fmt.Errorf("storage: bloom bits truncated: %w", ErrCorrupt)
	}
	if nbits == 0 {
		return nil, end, nil
	}
	if k == 0 {
		return nil, 0, fmt.Errorf("storage: bloom with zero probes: %w", ErrCorrupt)
	}
	return &bloomFilter{
		bits: append([]byte(nil), b[pos:end]...),
		k:    k,
	}, end, nil
}
