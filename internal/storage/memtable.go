package storage

import (
	"bytes"
	"sort"
)

// memEntry is one key/value pair in the write buffer. A nil value (with
// tombstone set) marks a deletion.
type memEntry struct {
	key       []byte
	value     []byte
	tombstone bool
}

// memtable is the RAM-resident write buffer of the LSM engine. It keeps
// entries sorted by key and tracks its approximate memory footprint so the
// engine can respect the hardware RAM budget.
type memtable struct {
	entries []memEntry
	bytes   int
}

func newMemtable() *memtable {
	return &memtable{}
}

// approxEntryOverhead accounts for slice headers and bookkeeping per entry.
const approxEntryOverhead = 48

// find returns the index at which key is or would be stored, and whether it
// is present.
func (m *memtable) find(key []byte) (int, bool) {
	i := sort.Search(len(m.entries), func(i int) bool {
		return bytes.Compare(m.entries[i].key, key) >= 0
	})
	if i < len(m.entries) && bytes.Equal(m.entries[i].key, key) {
		return i, true
	}
	return i, false
}

// put inserts or replaces key with value (tombstone if delete).
func (m *memtable) put(key, value []byte, tombstone bool) {
	i, found := m.find(key)
	e := memEntry{
		key:       append([]byte(nil), key...),
		value:     append([]byte(nil), value...),
		tombstone: tombstone,
	}
	if found {
		m.bytes -= len(m.entries[i].key) + len(m.entries[i].value) + approxEntryOverhead
		m.entries[i] = e
	} else {
		m.entries = append(m.entries, memEntry{})
		copy(m.entries[i+1:], m.entries[i:])
		m.entries[i] = e
	}
	m.bytes += len(e.key) + len(e.value) + approxEntryOverhead
}

// get looks up key. The second result reports whether the key is present in
// the memtable at all (possibly as a tombstone).
func (m *memtable) get(key []byte) (memEntry, bool) {
	i, found := m.find(key)
	if !found {
		return memEntry{}, false
	}
	return m.entries[i], true
}

// size returns the approximate RAM footprint in bytes.
func (m *memtable) size() int { return m.bytes }

// count returns the number of entries (including tombstones).
func (m *memtable) count() int { return len(m.entries) }

// scan calls fn for each entry with key in [start, end) in key order. A nil
// end means "until the last key". Iteration stops when fn returns false.
func (m *memtable) scan(start, end []byte, fn func(memEntry) bool) {
	i := sort.Search(len(m.entries), func(i int) bool {
		return bytes.Compare(m.entries[i].key, start) >= 0
	})
	for ; i < len(m.entries); i++ {
		if end != nil && bytes.Compare(m.entries[i].key, end) >= 0 {
			return
		}
		if !fn(m.entries[i]) {
			return
		}
	}
}

// all returns the sorted entries; the caller must not modify them.
func (m *memtable) all() []memEntry { return m.entries }

// snapshot returns a copy of the entry headers with key in [start, end).
// The copied headers stay valid after the lock protecting the memtable is
// released: put replaces entries wholesale with freshly allocated key/value
// slices, so the bytes a snapshot references are never mutated.
func (m *memtable) snapshot(start, end []byte) []memEntry {
	var out []memEntry
	m.scan(start, end, func(e memEntry) bool {
		out = append(out, e)
		return true
	})
	return out
}
