//go:build !linux

package storage

// Datasync falls back to a full fsync on platforms without fdatasync.
func (d *FileDevice) Datasync() error { return d.f.Sync() }
