package storage

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// A BlockCache keeps recently read run segments in RAM so hot point lookups
// never touch the device. It sits above the runs device: run.get consults it
// before issuing a ReadAt and admits the segment it loaded on a miss.
//
// Keys are (run id, segment offset). Run ids are process-unique (allocated by
// writeRun/openRun, never reused), so a compaction that replaces the run
// stack only needs to drop the replaced ids — freshly written runs can never
// collide with stale cached segments.
//
// The cache is striped: each stripe is an independent LRU list under its own
// mutex, so concurrent readers on different keys rarely contend. One cache is
// typically shared by every shard of a cloud.Durable store, which is why the
// capacity is a single global budget rather than per-engine.
type BlockCache struct {
	stripes   [cacheStripes]cacheStripe
	perStripe int64
	hits      atomic.Int64
	misses    atomic.Int64
}

const cacheStripes = 16

type cacheKey struct {
	runID uint64
	off   int64
}

type cacheItem struct {
	key  cacheKey
	data []byte
}

type cacheStripe struct {
	mu    sync.Mutex
	items map[cacheKey]*list.Element
	lru   *list.List // front = most recently used
	bytes int64
}

// NewBlockCache creates a cache holding at most capacity bytes of segment
// data (split evenly across the stripes). A non-positive capacity returns
// nil, and a nil *BlockCache is a valid always-miss cache — every method is
// nil-safe — so callers can pass options through unconditionally.
func NewBlockCache(capacity int64) *BlockCache {
	if capacity <= 0 {
		return nil
	}
	c := &BlockCache{perStripe: capacity / cacheStripes}
	if c.perStripe < 1 {
		c.perStripe = 1
	}
	for i := range c.stripes {
		c.stripes[i].items = make(map[cacheKey]*list.Element)
		c.stripes[i].lru = list.New()
	}
	return c
}

func (c *BlockCache) stripeFor(k cacheKey) *cacheStripe {
	// Fibonacci hashing over the id/offset pair spreads sequential segment
	// offsets of one run across stripes.
	h := (k.runID*0x9e3779b97f4a7c15 + uint64(k.off)) * 0x9e3779b97f4a7c15
	return &c.stripes[h>>59&(cacheStripes-1)]
}

// get returns the cached segment for (runID, off), or nil. The returned
// buffer is shared with other readers and with the cache itself: callers must
// treat it as read-only and copy anything they hand out.
func (c *BlockCache) get(runID uint64, off int64) []byte {
	if c == nil {
		return nil
	}
	k := cacheKey{runID: runID, off: off}
	s := c.stripeFor(k)
	s.mu.Lock()
	el, ok := s.items[k]
	if ok {
		s.lru.MoveToFront(el)
	}
	s.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil
	}
	c.hits.Add(1)
	return el.Value.(*cacheItem).data
}

// put admits a freshly read segment, evicting least-recently-used segments
// from its stripe until the stripe is back under budget. The cache takes
// ownership of data — the caller must not write to it afterwards. Segments
// larger than a stripe's whole budget are not admitted.
func (c *BlockCache) put(runID uint64, off int64, data []byte) {
	if c == nil || int64(len(data)) > c.perStripe {
		return
	}
	k := cacheKey{runID: runID, off: off}
	s := c.stripeFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[k]; ok {
		// Raced with another reader admitting the same segment; keep the
		// incumbent so earlier get() callers still share a live buffer.
		s.lru.MoveToFront(el)
		return
	}
	s.items[k] = s.lru.PushFront(&cacheItem{key: k, data: data})
	s.bytes += int64(len(data))
	for s.bytes > c.perStripe {
		oldest := s.lru.Back()
		if oldest == nil {
			break
		}
		it := oldest.Value.(*cacheItem)
		s.lru.Remove(oldest)
		delete(s.items, it.key)
		s.bytes -= int64(len(it.data))
	}
}

// invalidateRuns drops every cached segment belonging to the given run ids.
// Compaction calls this after installing a new generation, so readers can
// never see segments of a run that is no longer in the stack.
func (c *BlockCache) invalidateRuns(ids []uint64) {
	if c == nil || len(ids) == 0 {
		return
	}
	drop := make(map[uint64]bool, len(ids))
	for _, id := range ids {
		drop[id] = true
	}
	for i := range c.stripes {
		s := &c.stripes[i]
		s.mu.Lock()
		for el := s.lru.Front(); el != nil; {
			next := el.Next()
			it := el.Value.(*cacheItem)
			if drop[it.key.runID] {
				s.lru.Remove(el)
				delete(s.items, it.key)
				s.bytes -= int64(len(it.data))
			}
			el = next
		}
		s.mu.Unlock()
	}
}

// Stats returns the cumulative hit/miss counters of the cache.
func (c *BlockCache) Stats() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.misses.Load()
}

// Bytes returns the resident segment bytes (used by tests and diagnostics).
func (c *BlockCache) Bytes() int64 {
	if c == nil {
		return 0
	}
	var total int64
	for i := range c.stripes {
		c.stripes[i].mu.Lock()
		total += c.stripes[i].bytes
		c.stripes[i].mu.Unlock()
	}
	return total
}
