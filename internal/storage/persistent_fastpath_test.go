package storage

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestPersistentKVGetCopyOnReturn pins down the copy-on-return contract on
// both lookup paths: a value served from the memtable and one served from an
// on-device run (possibly via a cache-resident buffer shared with other
// readers). Mutating what Get returned must never corrupt the store.
func TestPersistentKVGetCopyOnReturn(t *testing.T) {
	p, err := OpenPersistentKV(t.TempDir(), PersistentOptions{Cache: NewBlockCache(1 << 20)})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.Apply([]Op{{Key: []byte("k"), Value: []byte("original")}}); err != nil {
		t.Fatal(err)
	}
	// Memtable path.
	v, err := p.Get([]byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	copy(v, "GARBAGE!")
	if v2, _ := p.Get([]byte("k")); string(v2) != "original" {
		t.Fatalf("memtable value corrupted through returned slice: %q", v2)
	}
	// Run path (flush, then read twice so the second hit is cache-served).
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		v, err := p.Get([]byte("k"))
		if err != nil {
			t.Fatal(err)
		}
		copy(v, "GARBAGE!")
	}
	if v3, _ := p.Get([]byte("k")); string(v3) != "original" {
		t.Fatalf("run/cache value corrupted through returned slice: %q", v3)
	}
}

// TestPersistentKVEmptyValueIsNotATombstone guards the distinction between a
// live empty value and a deletion on every path (memtable, run, reopened).
func TestPersistentKVEmptyValueIsNotATombstone(t *testing.T) {
	dir := t.TempDir()
	p, err := OpenPersistentKV(dir, PersistentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Apply([]Op{{Key: []byte("empty"), Value: nil}}); err != nil {
		t.Fatal(err)
	}
	check := func(stage string) {
		t.Helper()
		v, err := p.Get([]byte("empty"))
		if err != nil {
			t.Fatalf("%s: empty value read as missing: %v", stage, err)
		}
		if len(v) != 0 {
			t.Fatalf("%s: value = %q", stage, v)
		}
	}
	check("memtable")
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	check("run")
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if p, err = OpenPersistentKV(dir, PersistentOptions{}); err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	check("reopened")
}

// TestPersistentKVBloomSkipsNegativeLookups checks that missing keys inside
// the stored key range are answered by the per-run bloom filters without
// device reads, and that the counters expose it.
func TestPersistentKVBloomSkipsNegativeLookups(t *testing.T) {
	p, err := OpenPersistentKV(t.TempDir(), PersistentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ops := make([]Op, 0, 500)
	for i := 0; i < 500; i++ {
		ops = append(ops, Op{Key: []byte(fmt.Sprintf("key-%05d", i)), Value: []byte("v")})
	}
	if err := p.Apply(ops); err != nil {
		t.Fatal(err)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		// "key-00042x" sorts inside [key-00000, key-00499]: only the filter
		// can reject it without a device read.
		if _, err := p.Get([]byte(fmt.Sprintf("key-%05dx", i))); err != ErrNotFound {
			t.Fatalf("miss %d: %v", i, err)
		}
	}
	st := p.Stats()
	if st.BloomSkips < 450 {
		t.Fatalf("BloomSkips = %d of 500 in-range misses", st.BloomSkips)
	}
	if st.RunReads > 50 {
		t.Fatalf("RunReads = %d, filters should have absorbed the misses", st.RunReads)
	}
}

// TestPersistentKVCacheServesRepeatReads checks admission-on-read and the
// hit/miss accounting of a store-attached block cache.
func TestPersistentKVCacheServesRepeatReads(t *testing.T) {
	cache := NewBlockCache(1 << 20)
	p, err := OpenPersistentKV(t.TempDir(), PersistentOptions{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ops := make([]Op, 0, 100)
	for i := 0; i < 100; i++ {
		ops = append(ops, Op{Key: []byte(fmt.Sprintf("key-%05d", i)), Value: []byte(fmt.Sprintf("val-%d", i))})
	}
	if err := p.Apply(ops); err != nil {
		t.Fatal(err)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < 100; i++ {
			v, err := p.Get([]byte(fmt.Sprintf("key-%05d", i)))
			if err != nil || string(v) != fmt.Sprintf("val-%d", i) {
				t.Fatalf("pass %d key %d: %q %v", pass, i, v, err)
			}
		}
	}
	st := p.Stats()
	if st.CacheMisses == 0 || st.CacheHits == 0 {
		t.Fatalf("cache counters: hits=%d misses=%d, want both nonzero", st.CacheHits, st.CacheMisses)
	}
	// The second pass must have been served from RAM: every segment was
	// admitted during the first.
	if st.CacheHits < 100 {
		t.Fatalf("CacheHits = %d, the warm pass alone should contribute 100", st.CacheHits)
	}
	if cache.Bytes() == 0 {
		t.Fatal("no segments resident after reads")
	}
}

// TestPersistentKVCacheInvalidatedAfterCompact checks the invalidation
// protocol: installing a compacted generation drops the replaced runs'
// segments (reclaiming RAM), and reads against the new generation are
// re-admitted and correct.
func TestPersistentKVCacheInvalidatedAfterCompact(t *testing.T) {
	cache := NewBlockCache(1 << 20)
	p, err := OpenPersistentKV(t.TempDir(), PersistentOptions{Cache: cache, MaxRuns: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for g := 0; g < 3; g++ { // three runs so compaction has work
		ops := make([]Op, 0, 50)
		for i := 0; i < 50; i++ {
			ops = append(ops, Op{Key: []byte(fmt.Sprintf("key-%03d-%d", i, g)), Value: []byte(fmt.Sprintf("val-%d-%d", i, g))})
		}
		if err := p.Apply(ops); err != nil {
			t.Fatal(err)
		}
		if err := p.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		if _, err := p.Get([]byte(fmt.Sprintf("key-%03d-1", i))); err != nil {
			t.Fatal(err)
		}
	}
	if cache.Bytes() == 0 {
		t.Fatal("no segments resident before compaction")
	}
	if err := p.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := cache.Bytes(); got != 0 {
		t.Fatalf("%d bytes of replaced-run segments still resident after install", got)
	}
	for g := 0; g < 3; g++ {
		for i := 0; i < 50; i++ {
			v, err := p.Get([]byte(fmt.Sprintf("key-%03d-%d", i, g)))
			if err != nil || string(v) != fmt.Sprintf("val-%d-%d", i, g) {
				t.Fatalf("after compact key %d-%d: %q %v", i, g, v, err)
			}
		}
	}
}

// TestPersistentKVGetCompletesDuringCompactionInstall is the deterministic
// reader-vs-install test: a reader snapshots the run stack and pins the
// generation file through the runs handle, a full compaction then installs a
// new generation and unlinks the old file — and the pinned reader still
// finishes its lookup against the replaced generation.
func TestPersistentKVGetCompletesDuringCompactionInstall(t *testing.T) {
	p, err := OpenPersistentKV(t.TempDir(), PersistentOptions{MaxRuns: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for g := 0; g < 2; g++ {
		if err := p.Apply([]Op{{Key: []byte(fmt.Sprintf("key-%d", g)), Value: []byte(fmt.Sprintf("val-%d", g))}}); err != nil {
			t.Fatal(err)
		}
		if err := p.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	// Snapshot exactly as Get does, without releasing yet: this models a
	// reader paused between dropping p.mu and issuing its device read.
	p.mu.RLock()
	runs := p.runs
	h := p.runsH
	h.acquire()
	oldGen := p.gen
	p.mu.RUnlock()

	if err := p.Compact(); err != nil {
		t.Fatal(err)
	}
	p.mu.RLock()
	installed := p.gen > oldGen && p.runsH != h
	p.mu.RUnlock()
	if !installed {
		t.Fatal("compaction did not install a new generation")
	}
	if _, err := os.Stat(filepath.Join(p.dir, p.runsFileName(oldGen))); !os.IsNotExist(err) {
		t.Fatalf("old generation file not unlinked: %v", err)
	}
	// The paused reader resumes: its lookup against the unlinked generation
	// must still succeed, served by the pinned file handle.
	found := false
	for i := len(runs) - 1; i >= 0 && !found; i-- {
		e, ok, err := runs[i].get(h.dev, nil, []byte("key-1"), nil)
		if err != nil {
			t.Fatalf("read through pinned handle: %v", err)
		}
		if ok {
			if string(e.value) != "val-1" {
				t.Fatalf("pinned read = %q", e.value)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("key missing from the pinned snapshot")
	}
	if err := h.release(); err != nil {
		t.Fatalf("releasing the last reference (closing the unlinked file): %v", err)
	}
}

// TestPersistentKVConcurrentGetsAndCompactions stress-tests the lock-free
// read path: readers sweep every key while compactions install generation
// after generation and a writer keeps flushing fresh runs under them. Run
// with -race this covers the snapshot/acquire/release protocol end to end.
func TestPersistentKVConcurrentGetsAndCompactions(t *testing.T) {
	cache := NewBlockCache(256 << 10)
	p, err := OpenPersistentKV(t.TempDir(), PersistentOptions{Cache: cache, MaxRuns: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	const keys = 120
	ops := make([]Op, 0, keys)
	for i := 0; i < keys; i++ {
		ops = append(ops, Op{Key: []byte(fmt.Sprintf("key-%04d", i)), Value: []byte(fmt.Sprintf("val-%d", i))})
	}
	if err := p.Apply(ops); err != nil {
		t.Fatal(err)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	done := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				for i := 0; i < keys; i++ {
					v, err := p.Get([]byte(fmt.Sprintf("key-%04d", i)))
					if err != nil || string(v) != fmt.Sprintf("val-%d", i) {
						errs <- fmt.Errorf("key %d = %q: %v", i, v, err)
						return
					}
				}
			}
		}()
	}
	for cycle := 0; cycle < 5; cycle++ {
		// A fresh overwrite run gives each compaction real work and exercises
		// the fold-in of runs flushed behind the snapshot.
		if err := p.Apply([]Op{{Key: []byte("key-0000"), Value: []byte("val-0")}}); err != nil {
			t.Fatal(err)
		}
		if err := p.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := p.Compact(); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

// TestPersistentKVRecoversLegacyFooterlessRuns writes a generation file in
// the pre-footer format by hand and opens a store over it: the legacy runs
// must come back readable, with their descriptors re-parsed from the bodies
// and bloom filters rebuilt so even old data gets the negative-lookup skip.
func TestPersistentKVRecoversLegacyFooterlessRuns(t *testing.T) {
	dir := t.TempDir()
	dev, err := OpenFileDevice(filepath.Join(dir, fmt.Sprintf("%s%06d%s", runsPrefix, 0, runsSuffix)))
	if err != nil {
		t.Fatal(err)
	}
	var entries []memEntry
	for i := 0; i < 40; i++ {
		entries = append(entries, memEntry{
			key:   []byte(fmt.Sprintf("legacy-%04d", i)),
			value: []byte(fmt.Sprintf("old-val-%d", i)),
		})
	}
	writeLegacyRun(t, dev, entries[:20])
	writeLegacyRun(t, dev, entries[20:])
	if err := dev.Close(); err != nil {
		t.Fatal(err)
	}

	p, err := OpenPersistentKV(dir, PersistentOptions{MaxRuns: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if got := p.Recovery().RecoveredRuns; got != 2 {
		t.Fatalf("recovered %d runs, want 2", got)
	}
	for _, e := range entries {
		v, err := p.Get(e.key)
		if err != nil || !bytes.Equal(v, e.value) {
			t.Fatalf("legacy key %q = %q, %v", e.key, v, err)
		}
	}
	// In-range misses are bloom-skipped even though the legacy format never
	// stored a filter: recovery rebuilt one from the parsed keys.
	for i := 0; i < 40; i++ {
		if _, err := p.Get([]byte(fmt.Sprintf("legacy-%04dx", i))); err != ErrNotFound {
			t.Fatalf("legacy miss %d: %v", i, err)
		}
	}
	if st := p.Stats(); st.BloomSkips < 30 {
		t.Fatalf("BloomSkips = %d, rebuilt filters not consulted", st.BloomSkips)
	}
	// The first compaction rewrites legacy runs in the footered format.
	if err := p.Compact(); err != nil {
		t.Fatal(err)
	}
	p.mu.RLock()
	rewritten := len(p.runs) == 1 && p.runs[0].prefixed && p.runs[0].tail > 0
	p.mu.RUnlock()
	if !rewritten {
		t.Fatal("compaction did not rewrite legacy runs in the footered format")
	}
	for _, e := range entries {
		v, err := p.Get(e.key)
		if err != nil || !bytes.Equal(v, e.value) {
			t.Fatalf("post-compaction key %q = %q, %v", e.key, v, err)
		}
	}
}

// TestPersistentKVLegacyTornTailTruncated: a legacy generation with a torn
// final run recovers its valid prefix, same as the footered format.
func TestPersistentKVLegacyTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, fmt.Sprintf("%s%06d%s", runsPrefix, 0, runsSuffix))
	dev, err := OpenFileDevice(path)
	if err != nil {
		t.Fatal(err)
	}
	writeLegacyRun(t, dev, []memEntry{{key: []byte("safe"), value: []byte("yes")}})
	// A torn second run: header promising more bytes than exist.
	torn := make([]byte, 8)
	binary.BigEndian.PutUint32(torn[0:4], crc32.ChecksumIEEE([]byte("x")))
	binary.BigEndian.PutUint32(torn[4:8], 500)
	if _, err := dev.WriteAt(torn, dev.Size()); err != nil {
		t.Fatal(err)
	}
	if err := dev.Close(); err != nil {
		t.Fatal(err)
	}
	p, err := OpenPersistentKV(dir, PersistentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Recovery().DiscardedRunBytes != 8 {
		t.Fatalf("DiscardedRunBytes = %d, want 8", p.Recovery().DiscardedRunBytes)
	}
	if v, err := p.Get([]byte("safe")); err != nil || string(v) != "yes" {
		t.Fatalf("intact run lost: %q %v", v, err)
	}
}
