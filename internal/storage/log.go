package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"
)

// AppendLog is an append-only record log on a Device. Records carry a CRC so
// torn writes and bit rot are detected on read. The log is the persistence
// primitive for both the LSM runs and the audit trail.
type AppendLog struct {
	mu   sync.Mutex
	dev  Device
	head int64 // next append offset
}

// logRecordHeader is: [4]crc32 [4]length.
const logHeaderSize = 8

// NewAppendLog creates a log over dev starting at the device's current size
// (so an existing log is resumed, not truncated).
func NewAppendLog(dev Device) *AppendLog {
	return &AppendLog{dev: dev, head: dev.Size()}
}

// Append writes one record and returns its offset. A partial write (the
// device storing fewer bytes than the record without reporting an error) is
// surfaced as an error: the head does not advance, so the torn bytes are
// overwritten by the next append instead of being parsed as a record.
func (l *AppendLog) Append(payload []byte) (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	buf := make([]byte, logHeaderSize+len(payload))
	binary.BigEndian.PutUint32(buf[0:4], crc32.ChecksumIEEE(payload))
	binary.BigEndian.PutUint32(buf[4:8], uint32(len(payload)))
	copy(buf[logHeaderSize:], payload)
	off := l.head
	n, err := l.dev.WriteAt(buf, off)
	if err := fullWrite(n, len(buf), err); err != nil {
		return 0, fmt.Errorf("storage: log append: %w", err)
	}
	l.head += int64(len(buf))
	return off, nil
}

// ReadAt reads the record stored at offset off. The declared length is
// validated against the device extent before the payload is allocated, so a
// corrupted header cannot demand a multi-gigabyte buffer; short reads and
// checksum mismatches both come back as ErrCorrupt-wrapped errors.
func (l *AppendLog) ReadAt(off int64) ([]byte, error) {
	size := l.dev.Size()
	if off < 0 || off+logHeaderSize > size {
		return nil, fmt.Errorf("storage: log read header at %d past device end %d: %w", off, size, ErrCorrupt)
	}
	header := make([]byte, logHeaderSize)
	n, err := l.dev.ReadAt(header, off)
	if err := fullRead(n, logHeaderSize, err); err != nil {
		return nil, fmt.Errorf("storage: log read header: %w", err)
	}
	want := binary.BigEndian.Uint32(header[0:4])
	length := int64(binary.BigEndian.Uint32(header[4:8]))
	if off+logHeaderSize+length > size {
		return nil, fmt.Errorf("storage: log record of %d bytes at %d exceeds device end %d: %w",
			length, off, size, ErrCorrupt)
	}
	payload := make([]byte, length)
	n, err = l.dev.ReadAt(payload, off+logHeaderSize)
	if err := fullRead(n, int(length), err); err != nil {
		return nil, fmt.Errorf("storage: log read payload: %w", err)
	}
	if crc32.ChecksumIEEE(payload) != want {
		return nil, ErrCorrupt
	}
	return payload, nil
}

// Head returns the current append position (the log's logical size).
func (l *AppendLog) Head() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.head
}

// Scan iterates over all records from the beginning, calling fn with each
// record's offset and payload. Iteration stops at the first error or when fn
// returns false.
func (l *AppendLog) Scan(fn func(off int64, payload []byte) bool) error {
	end := l.Head()
	var off int64
	for off < end {
		payload, err := l.ReadAt(off)
		if err != nil {
			return fmt.Errorf("storage: log scan at %d: %w", off, err)
		}
		if !fn(off, payload) {
			return nil
		}
		off += logHeaderSize + int64(len(payload))
	}
	return nil
}

// Sync flushes the underlying device.
func (l *AppendLog) Sync() error { return l.dev.Sync() }

// SeekHead repositions the append head. Recovery uses it on logs whose device
// extent is preallocated past the last record (the cloud commit journal):
// resuming at the device size would leave a gap of zeros between the last
// record and the next append.
func (l *AppendLog) SeekHead(off int64) {
	l.mu.Lock()
	l.head = off
	l.mu.Unlock()
}

// Reset discards every record and rewinds the head to zero. It is how the
// persistent engine retires a write-ahead log whose content has been
// checkpointed into a durable run. The device must support truncation.
func (l *AppendLog) Reset() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	t, ok := l.dev.(Truncater)
	if !ok {
		return fmt.Errorf("storage: log device does not support truncation")
	}
	if err := t.Truncate(0); err != nil {
		return fmt.Errorf("storage: log reset: %w", err)
	}
	l.head = 0
	return nil
}
