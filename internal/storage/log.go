package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"
)

// AppendLog is an append-only record log on a Device. Records carry a CRC so
// torn writes and bit rot are detected on read. The log is the persistence
// primitive for both the LSM runs and the audit trail.
type AppendLog struct {
	mu   sync.Mutex
	dev  Device
	head int64 // next append offset
}

// logRecordHeader is: [4]crc32 [4]length.
const logHeaderSize = 8

// NewAppendLog creates a log over dev starting at the device's current size
// (so an existing log is resumed, not truncated).
func NewAppendLog(dev Device) *AppendLog {
	return &AppendLog{dev: dev, head: dev.Size()}
}

// Append writes one record and returns its offset.
func (l *AppendLog) Append(payload []byte) (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	buf := make([]byte, logHeaderSize+len(payload))
	binary.BigEndian.PutUint32(buf[0:4], crc32.ChecksumIEEE(payload))
	binary.BigEndian.PutUint32(buf[4:8], uint32(len(payload)))
	copy(buf[logHeaderSize:], payload)
	off := l.head
	if _, err := l.dev.WriteAt(buf, off); err != nil {
		return 0, fmt.Errorf("storage: log append: %w", err)
	}
	l.head += int64(len(buf))
	return off, nil
}

// ReadAt reads the record stored at offset off.
func (l *AppendLog) ReadAt(off int64) ([]byte, error) {
	header := make([]byte, logHeaderSize)
	if _, err := l.dev.ReadAt(header, off); err != nil {
		return nil, fmt.Errorf("storage: log read header: %w", err)
	}
	want := binary.BigEndian.Uint32(header[0:4])
	length := binary.BigEndian.Uint32(header[4:8])
	payload := make([]byte, length)
	if _, err := l.dev.ReadAt(payload, off+logHeaderSize); err != nil {
		return nil, fmt.Errorf("storage: log read payload: %w", err)
	}
	if crc32.ChecksumIEEE(payload) != want {
		return nil, ErrCorrupt
	}
	return payload, nil
}

// Head returns the current append position (the log's logical size).
func (l *AppendLog) Head() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.head
}

// Scan iterates over all records from the beginning, calling fn with each
// record's offset and payload. Iteration stops at the first error or when fn
// returns false.
func (l *AppendLog) Scan(fn func(off int64, payload []byte) bool) error {
	end := l.Head()
	var off int64
	for off < end {
		payload, err := l.ReadAt(off)
		if err != nil {
			return fmt.Errorf("storage: log scan at %d: %w", off, err)
		}
		if !fn(off, payload) {
			return nil
		}
		off += logHeaderSize + int64(len(payload))
	}
	return nil
}

// Sync flushes the underlying device.
func (l *AppendLog) Sync() error { return l.dev.Sync() }
