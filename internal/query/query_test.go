package query

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"trustedcells/internal/cloud"
	"trustedcells/internal/core"
	"trustedcells/internal/datamodel"
	"trustedcells/internal/policy"
	"trustedcells/internal/tamper"
	"trustedcells/internal/timeseries"
)

var start = time.Date(2013, 1, 21, 0, 0, 0, 0, time.UTC)

func newCellWithSeries(t *testing.T, nDocs int) *core.Cell {
	t.Helper()
	cell, err := core.New(core.Config{
		ID: "alice-gw", Class: tamper.ClassHomeGateway, Cloud: cloud.NewMemory(),
		Seed: []byte("seed"), Clock: func() time.Time { return start },
	})
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < nDocs; d++ {
		s := timeseries.NewSeries("power", "W")
		for i := 0; i < 24; i++ {
			_ = s.AppendValue(start.Add(time.Duration(i)*time.Hour), float64(100*(d+1)))
		}
		if _, err := cell.IngestSeries(s, "day", []string{"energy"}, map[string]string{"meter": "linky"}); err != nil {
			t.Fatal(err)
		}
	}
	// A non-series document that must not pollute series queries.
	if _, err := cell.Ingest([]byte("note"), core.IngestOptions{Type: "note",
		Class: datamodel.ClassAuthored, Keywords: []string{"energy", "todo"}}); err != nil {
		t.Fatal(err)
	}
	_ = cell.AddRule(policy.Rule{ID: "household-agg", Effect: policy.EffectAllow,
		SubjectGroups:  []string{"household"},
		Actions:        []policy.Action{policy.ActionAggregate},
		Resource:       policy.Resource{Type: core.SeriesDocType},
		MaxGranularity: time.Hour,
	})
	return cell
}

func TestRunSeriesAggregateMergesDocuments(t *testing.T) {
	cell := newCellWithSeries(t, 3)
	eng := NewEngine(cell, "bob", core.AccessContext{Groups: []string{"household"}})
	res, err := eng.RunSeriesAggregate(SeriesAggregate{
		Granularity: timeseries.GranularityHour,
		Kind:        timeseries.AggregateSum,
	})
	if err != nil {
		t.Fatalf("RunSeriesAggregate: %v", err)
	}
	if len(res.Documents) != 3 || res.Denied != 0 {
		t.Fatalf("result %+v", res)
	}
	if res.Merged.Len() != 24 {
		t.Fatalf("merged buckets = %d", res.Merged.Len())
	}
	// Each hour: 100 + 200 + 300 = 600.
	if v := res.Merged.At(0).Value; v != 600 {
		t.Fatalf("merged value = %v, want 600", v)
	}
	// Mean across documents.
	res, err = eng.RunSeriesAggregate(SeriesAggregate{
		Granularity: timeseries.GranularityHour,
		Kind:        timeseries.AggregateMean,
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := res.Merged.At(0).Value; v != 200 {
		t.Fatalf("merged mean = %v, want 200", v)
	}
}

func TestRunSeriesAggregateDeniedForStrangers(t *testing.T) {
	cell := newCellWithSeries(t, 2)
	eng := NewEngine(cell, "stranger", core.AccessContext{})
	res, err := eng.RunSeriesAggregate(SeriesAggregate{
		Granularity: timeseries.GranularityHour,
		Kind:        timeseries.AggregateSum,
	})
	if !errors.Is(err, core.ErrAccessDenied) {
		t.Fatalf("expected access denied, got %v (res=%+v)", err, res)
	}
	if res == nil || res.Denied != 2 {
		t.Fatalf("denied count %+v", res)
	}
}

func TestRunSeriesAggregateGranularityCap(t *testing.T) {
	cell := newCellWithSeries(t, 1)
	eng := NewEngine(cell, "bob", core.AccessContext{Groups: []string{"household"}})
	// 1-minute granularity is finer than the 1-hour cap → every doc denied.
	if _, err := eng.RunSeriesAggregate(SeriesAggregate{
		Granularity: timeseries.GranularityMinute,
		Kind:        timeseries.AggregateMean,
	}); !errors.Is(err, core.ErrAccessDenied) {
		t.Fatalf("granularity cap not enforced: %v", err)
	}
}

func TestRunSeriesAggregateNoMatch(t *testing.T) {
	cell := newCellWithSeries(t, 1)
	eng := NewEngine(cell, "bob", core.AccessContext{Groups: []string{"household"}})
	_, err := eng.RunSeriesAggregate(SeriesAggregate{
		Filter:      datamodel.Query{TagKey: "meter", TagValue: "nonexistent"},
		Granularity: timeseries.GranularityHour,
		Kind:        timeseries.AggregateSum,
	})
	if err != ErrNoDocuments {
		t.Fatalf("expected ErrNoDocuments, got %v", err)
	}
}

func TestMetadataAndKeywordCount(t *testing.T) {
	cell := newCellWithSeries(t, 2)
	eng := NewEngine(cell, "alice", core.AccessContext{})
	docs, err := eng.Metadata(datamodel.Query{Keyword: "energy"})
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 3 { // 2 series + 1 note
		t.Fatalf("metadata matches = %d", len(docs))
	}
	counts, err := eng.KeywordCount([]string{"energy", "todo", "missing"})
	if err != nil {
		t.Fatal(err)
	}
	if counts["energy"] != 3 || counts["todo"] != 1 || counts["missing"] != 0 {
		t.Fatalf("keyword counts %v", counts)
	}
}

// coldQueryCell builds a cell with nSeries series documents plus filler
// notes, syncs its vault, and returns a restored twin whose payload cache is
// empty — every payload must come from the cloud, which is where the batched
// pipeline pays one exchange and the sequential baseline pays one per
// document.
func coldQueryCell(t *testing.T, svc cloud.Service, nSeries, nNotes int) *core.Cell {
	t.Helper()
	builder, err := core.New(core.Config{
		ID: "cold-gw", Class: tamper.ClassHomeGateway, Cloud: svc,
		Seed: []byte("cold-seed"), Clock: func() time.Time { return start },
	})
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < nSeries; d++ {
		s := timeseries.NewSeries("power", "W")
		for i := 0; i < 24; i++ {
			_ = s.AppendValue(start.Add(time.Duration(i)*time.Hour), float64(100*(d+1)))
		}
		if _, err := builder.IngestSeries(s, "day", []string{"energy"}, map[string]string{"meter": "linky"}); err != nil {
			t.Fatal(err)
		}
	}
	items := make([]core.IngestItem, nNotes)
	for i := range items {
		items[i] = core.IngestItem{Payload: []byte(fmt.Sprintf("note-%03d", i)),
			Opts: core.IngestOptions{Class: datamodel.ClassAuthored, Type: "note"}}
	}
	if nNotes > 0 {
		if _, err := builder.IngestBatch(items); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := builder.SyncVault(); err != nil {
		t.Fatal(err)
	}
	cold, err := core.New(core.Config{
		ID: "cold-gw", Class: tamper.ClassHomeGateway, Cloud: svc,
		Seed: []byte("cold-seed"), Clock: func() time.Time { return start },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cold.RestoreVault(); err != nil {
		t.Fatal(err)
	}
	_ = cold.AddRule(policy.Rule{ID: "household-agg", Effect: policy.EffectAllow,
		SubjectGroups:  []string{"household"},
		Actions:        []policy.Action{policy.ActionAggregate},
		Resource:       policy.Resource{Type: core.SeriesDocType},
		MaxGranularity: time.Hour,
	})
	return cold
}

// TestBatchedPipelineMatchesSequentialBaseline runs the same aggregate on
// the batched pipeline and on the seed per-document path and requires
// identical merged results — while the batched path does all its cloud
// fetching in one exchange.
func TestBatchedPipelineMatchesSequentialBaseline(t *testing.T) {
	svc := cloud.NewMemory()
	cell := coldQueryCell(t, svc, 4, 20)
	eng := NewEngine(cell, "bob", core.AccessContext{Groups: []string{"household"}})
	q := SeriesAggregate{Granularity: timeseries.GranularityHour, Kind: timeseries.AggregateSum}

	gets0 := svc.Stats().Gets
	batched, err := eng.RunSeriesAggregate(q)
	if err != nil {
		t.Fatalf("batched: %v", err)
	}
	batchedGets := svc.Stats().Gets - gets0

	// A second, fresh cold cell for the sequential baseline.
	svc2 := cloud.NewMemory()
	cell2 := coldQueryCell(t, svc2, 4, 20)
	eng2 := NewEngine(cell2, "bob", core.AccessContext{Groups: []string{"household"}})
	gets0 = svc2.Stats().Gets
	sequential, err := eng2.RunSeriesAggregateSequential(q)
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	seqGets := svc2.Stats().Gets - gets0

	if len(batched.Documents) != 4 || len(sequential.Documents) != 4 {
		t.Fatalf("documents: batched %d sequential %d", len(batched.Documents), len(sequential.Documents))
	}
	if batched.Merged.Len() != sequential.Merged.Len() {
		t.Fatalf("merged length: %d vs %d", batched.Merged.Len(), sequential.Merged.Len())
	}
	for i := 0; i < batched.Merged.Len(); i++ {
		if batched.Merged.At(i).Value != sequential.Merged.At(i).Value {
			t.Fatalf("bucket %d: %v vs %v", i, batched.Merged.At(i).Value, sequential.Merged.At(i).Value)
		}
	}
	// Both paths fetched 4 payloads, but the plans differ: the batched path
	// used the type index, the baseline scanned the whole catalog.
	if batchedGets != seqGets {
		t.Fatalf("blob gets: batched %d sequential %d", batchedGets, seqGets)
	}
	if batched.Plan.Index != "type" || batched.Plan.Scanned >= cell.Catalog().Len() {
		t.Fatalf("batched plan %+v", batched.Plan)
	}
	if sequential.Plan.Index != "scan" {
		t.Fatalf("sequential plan %+v", sequential.Plan)
	}
}

func TestExplainExposesThePlan(t *testing.T) {
	cell := newCellWithSeries(t, 3)
	eng := NewEngine(cell, "alice", core.AccessContext{})
	docs, plan, err := eng.Explain(datamodel.Query{TagKey: "meter", TagValue: "linky"})
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 3 || plan.Index != "tag" {
		t.Fatalf("explain: %d docs, plan %+v", len(docs), plan)
	}
}

// TestKeywordCountSinglePass proves KeywordCount no longer runs one search
// per keyword: the catalog search counters stay untouched.
func TestKeywordCountSinglePass(t *testing.T) {
	cell := newCellWithSeries(t, 2)
	eng := NewEngine(cell, "alice", core.AccessContext{})
	cell.Catalog().ResetIndexStats()
	counts, err := eng.KeywordCount([]string{"energy", "todo", "missing"})
	if err != nil {
		t.Fatal(err)
	}
	if counts["energy"] != 3 || counts["todo"] != 1 || counts["missing"] != 0 {
		t.Fatalf("keyword counts %v", counts)
	}
	if st := cell.Catalog().IndexStats(); st.Searches != 0 || st.DocsScanned != 0 {
		t.Fatalf("KeywordCount ran searches: %+v", st)
	}
}
