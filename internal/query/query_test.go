package query

import (
	"errors"
	"testing"
	"time"

	"trustedcells/internal/cloud"
	"trustedcells/internal/core"
	"trustedcells/internal/datamodel"
	"trustedcells/internal/policy"
	"trustedcells/internal/tamper"
	"trustedcells/internal/timeseries"
)

var start = time.Date(2013, 1, 21, 0, 0, 0, 0, time.UTC)

func newCellWithSeries(t *testing.T, nDocs int) *core.Cell {
	t.Helper()
	cell, err := core.New(core.Config{
		ID: "alice-gw", Class: tamper.ClassHomeGateway, Cloud: cloud.NewMemory(),
		Seed: []byte("seed"), Clock: func() time.Time { return start },
	})
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < nDocs; d++ {
		s := timeseries.NewSeries("power", "W")
		for i := 0; i < 24; i++ {
			_ = s.AppendValue(start.Add(time.Duration(i)*time.Hour), float64(100*(d+1)))
		}
		if _, err := cell.IngestSeries(s, "day", []string{"energy"}, map[string]string{"meter": "linky"}); err != nil {
			t.Fatal(err)
		}
	}
	// A non-series document that must not pollute series queries.
	if _, err := cell.Ingest([]byte("note"), core.IngestOptions{Type: "note",
		Class: datamodel.ClassAuthored, Keywords: []string{"energy", "todo"}}); err != nil {
		t.Fatal(err)
	}
	_ = cell.AddRule(policy.Rule{ID: "household-agg", Effect: policy.EffectAllow,
		SubjectGroups:  []string{"household"},
		Actions:        []policy.Action{policy.ActionAggregate},
		Resource:       policy.Resource{Type: core.SeriesDocType},
		MaxGranularity: time.Hour,
	})
	return cell
}

func TestRunSeriesAggregateMergesDocuments(t *testing.T) {
	cell := newCellWithSeries(t, 3)
	eng := NewEngine(cell, "bob", core.AccessContext{Groups: []string{"household"}})
	res, err := eng.RunSeriesAggregate(SeriesAggregate{
		Granularity: timeseries.GranularityHour,
		Kind:        timeseries.AggregateSum,
	})
	if err != nil {
		t.Fatalf("RunSeriesAggregate: %v", err)
	}
	if len(res.Documents) != 3 || res.Denied != 0 {
		t.Fatalf("result %+v", res)
	}
	if res.Merged.Len() != 24 {
		t.Fatalf("merged buckets = %d", res.Merged.Len())
	}
	// Each hour: 100 + 200 + 300 = 600.
	if v := res.Merged.At(0).Value; v != 600 {
		t.Fatalf("merged value = %v, want 600", v)
	}
	// Mean across documents.
	res, err = eng.RunSeriesAggregate(SeriesAggregate{
		Granularity: timeseries.GranularityHour,
		Kind:        timeseries.AggregateMean,
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := res.Merged.At(0).Value; v != 200 {
		t.Fatalf("merged mean = %v, want 200", v)
	}
}

func TestRunSeriesAggregateDeniedForStrangers(t *testing.T) {
	cell := newCellWithSeries(t, 2)
	eng := NewEngine(cell, "stranger", core.AccessContext{})
	res, err := eng.RunSeriesAggregate(SeriesAggregate{
		Granularity: timeseries.GranularityHour,
		Kind:        timeseries.AggregateSum,
	})
	if !errors.Is(err, core.ErrAccessDenied) {
		t.Fatalf("expected access denied, got %v (res=%+v)", err, res)
	}
	if res == nil || res.Denied != 2 {
		t.Fatalf("denied count %+v", res)
	}
}

func TestRunSeriesAggregateGranularityCap(t *testing.T) {
	cell := newCellWithSeries(t, 1)
	eng := NewEngine(cell, "bob", core.AccessContext{Groups: []string{"household"}})
	// 1-minute granularity is finer than the 1-hour cap → every doc denied.
	if _, err := eng.RunSeriesAggregate(SeriesAggregate{
		Granularity: timeseries.GranularityMinute,
		Kind:        timeseries.AggregateMean,
	}); !errors.Is(err, core.ErrAccessDenied) {
		t.Fatalf("granularity cap not enforced: %v", err)
	}
}

func TestRunSeriesAggregateNoMatch(t *testing.T) {
	cell := newCellWithSeries(t, 1)
	eng := NewEngine(cell, "bob", core.AccessContext{Groups: []string{"household"}})
	_, err := eng.RunSeriesAggregate(SeriesAggregate{
		Filter:      datamodel.Query{TagKey: "meter", TagValue: "nonexistent"},
		Granularity: timeseries.GranularityHour,
		Kind:        timeseries.AggregateSum,
	})
	if err != ErrNoDocuments {
		t.Fatalf("expected ErrNoDocuments, got %v", err)
	}
}

func TestMetadataAndKeywordCount(t *testing.T) {
	cell := newCellWithSeries(t, 2)
	eng := NewEngine(cell, "alice", core.AccessContext{})
	docs, err := eng.Metadata(datamodel.Query{Keyword: "energy"})
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 3 { // 2 series + 1 note
		t.Fatalf("metadata matches = %d", len(docs))
	}
	counts, err := eng.KeywordCount([]string{"energy", "todo", "missing"})
	if err != nil {
		t.Fatal(err)
	}
	if counts["energy"] != 3 || counts["todo"] != 1 || counts["missing"] != 0 {
		t.Fatalf("keyword counts %v", counts)
	}
}
