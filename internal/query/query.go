// Package query provides the cross-document query facility the paper
// motivates when it argues for "organizing all these data in a common
// personal digital space, providing a consistent view, facilitating querying
// and cross-analysis". It plans metadata-first queries over a trusted cell:
// the catalog is consulted locally to select documents, and only then are the
// (policy-checked) payload operations executed.
package query

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"trustedcells/internal/core"
	"trustedcells/internal/datamodel"
	"trustedcells/internal/timeseries"
)

// ErrNoDocuments indicates an aggregate query that matched nothing.
var ErrNoDocuments = errors.New("query: no documents match the filter")

// Engine executes queries against a single cell on behalf of a subject.
type Engine struct {
	cell    *core.Cell
	subject string
	ctx     core.AccessContext
}

// NewEngine builds an engine for subject with the given access context.
func NewEngine(cell *core.Cell, subject string, ctx core.AccessContext) *Engine {
	return &Engine{cell: cell, subject: subject, ctx: ctx}
}

// Metadata runs a catalog query (owner-side operation).
func (e *Engine) Metadata(q datamodel.Query) ([]*datamodel.Document, error) {
	return e.cell.Search(q)
}

// SeriesAggregate describes an aggregate query over all time-series documents
// matching a metadata filter.
type SeriesAggregate struct {
	Filter      datamodel.Query
	Granularity timeseries.Granularity
	Kind        timeseries.AggregateKind
}

// SeriesResult is the merged result of a SeriesAggregate query.
type SeriesResult struct {
	// Documents lists the document IDs that contributed.
	Documents []string
	// Merged is the bucket-wise combination of the per-document aggregates
	// (sums are added, means are averaged over documents).
	Merged *timeseries.Series
	// Denied counts documents the policy refused to open for this subject.
	Denied int
}

// RunSeriesAggregate plans and executes the aggregate: metadata filtering is
// local, then each matching document goes through the cell's reference
// monitor (so per-document policies and granularity caps apply).
func (e *Engine) RunSeriesAggregate(q SeriesAggregate) (*SeriesResult, error) {
	filter := q.Filter
	filter.Type = core.SeriesDocType
	docs, err := e.cell.Search(filter)
	if err != nil {
		return nil, err
	}
	if len(docs) == 0 {
		return nil, ErrNoDocuments
	}
	res := &SeriesResult{}
	type bucket struct {
		sum   float64
		count int
	}
	merged := make(map[time.Time]*bucket)
	for _, d := range docs {
		agg, err := e.cell.Aggregate(e.subject, d.ID, q.Granularity, q.Kind, e.ctx)
		if err != nil {
			res.Denied++
			continue
		}
		res.Documents = append(res.Documents, d.ID)
		for _, p := range agg.Points() {
			b := merged[p.Time]
			if b == nil {
				b = &bucket{}
				merged[p.Time] = b
			}
			b.sum += p.Value
			b.count++
		}
	}
	if len(res.Documents) == 0 {
		return res, fmt.Errorf("%w for subject %s", core.ErrAccessDenied, e.subject)
	}
	times := make([]time.Time, 0, len(merged))
	for ts := range merged {
		times = append(times, ts)
	}
	sort.Slice(times, func(i, j int) bool { return times[i].Before(times[j]) })
	out := timeseries.NewSeries(fmt.Sprintf("merged-%s", q.Kind), "")
	for _, ts := range times {
		b := merged[ts]
		v := b.sum
		if q.Kind == timeseries.AggregateMean && b.count > 0 {
			v = b.sum / float64(b.count)
		}
		if err := out.AppendValue(ts, v); err != nil {
			return nil, err
		}
	}
	res.Merged = out
	return res, nil
}

// KeywordCount returns, for each keyword, the number of catalog documents
// carrying it — a cheap metadata-only cross-analysis.
func (e *Engine) KeywordCount(keywords []string) (map[string]int, error) {
	out := make(map[string]int, len(keywords))
	for _, kw := range keywords {
		docs, err := e.cell.Search(datamodel.Query{Keyword: kw})
		if err != nil {
			return nil, err
		}
		out[kw] = len(docs)
	}
	return out, nil
}
