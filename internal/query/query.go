// Package query provides the cross-document query facility the paper
// motivates when it argues for "organizing all these data in a common
// personal digital space, providing a consistent view, facilitating querying
// and cross-analysis".
//
// The engine executes a query in four stages: PLAN (the catalog's indexed
// planner selects the matching documents without touching payloads),
// BATCH-FETCH (all sealed payloads missing from the local cache come back in
// one cloud round-trip), PARALLEL-OPEN (decryption and per-document
// aggregation fan out across the cell's bounded worker pool), and
// STREAMING-MERGE (per-document results fold into the merged answer one at a
// time). The seed per-document path is kept as RunSeriesAggregateSequential,
// the baseline experiment E10 measures the pipeline against.
package query

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"trustedcells/internal/core"
	"trustedcells/internal/datamodel"
	"trustedcells/internal/timeseries"
)

// ErrNoDocuments indicates an aggregate query that matched nothing.
var ErrNoDocuments = errors.New("query: no documents match the filter")

// Engine executes queries against a single cell on behalf of a subject.
type Engine struct {
	cell    *core.Cell
	subject string
	ctx     core.AccessContext
}

// NewEngine builds an engine for subject with the given access context.
func NewEngine(cell *core.Cell, subject string, ctx core.AccessContext) *Engine {
	return &Engine{cell: cell, subject: subject, ctx: ctx}
}

// Metadata runs a catalog query (owner-side operation).
func (e *Engine) Metadata(q datamodel.Query) ([]*datamodel.Document, error) {
	return e.cell.Search(q)
}

// Explain runs a catalog query and returns the plan the catalog chose
// alongside the results, without touching any payload.
func (e *Engine) Explain(q datamodel.Query) ([]*datamodel.Document, datamodel.PlanInfo, error) {
	return e.cell.SearchPlan(q)
}

// SeriesAggregate describes an aggregate query over all time-series documents
// matching a metadata filter.
type SeriesAggregate struct {
	Filter      datamodel.Query
	Granularity timeseries.Granularity
	Kind        timeseries.AggregateKind
}

// SeriesResult is the merged result of a SeriesAggregate query.
type SeriesResult struct {
	// Documents lists the document IDs that contributed.
	Documents []string
	// Merged is the bucket-wise combination of the per-document aggregates
	// (sums are added, means are averaged over documents).
	Merged *timeseries.Series
	// Denied counts documents the policy refused to open for this subject.
	Denied int
	// Plan explains how the catalog selected the candidate documents.
	Plan datamodel.PlanInfo
}

// seriesMerger folds per-document aggregates into time buckets one document
// at a time (the streaming-merge stage).
type seriesMerger struct {
	buckets map[time.Time]*mergeBucket
}

type mergeBucket struct {
	sum   float64
	count int
}

func newSeriesMerger() *seriesMerger {
	return &seriesMerger{buckets: make(map[time.Time]*mergeBucket)}
}

func (m *seriesMerger) add(s *timeseries.Series) {
	for _, p := range s.Points() {
		b := m.buckets[p.Time]
		if b == nil {
			b = &mergeBucket{}
			m.buckets[p.Time] = b
		}
		b.sum += p.Value
		b.count++
	}
}

func (m *seriesMerger) result(kind timeseries.AggregateKind) (*timeseries.Series, error) {
	times := make([]time.Time, 0, len(m.buckets))
	for ts := range m.buckets {
		times = append(times, ts)
	}
	sort.Slice(times, func(i, j int) bool { return times[i].Before(times[j]) })
	out := timeseries.NewSeries(fmt.Sprintf("merged-%s", kind), "")
	for _, ts := range times {
		b := m.buckets[ts]
		v := b.sum
		if kind == timeseries.AggregateMean && b.count > 0 {
			v = b.sum / float64(b.count)
		}
		if err := out.AppendValue(ts, v); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// RunSeriesAggregate plans and executes the aggregate through the batched
// pipeline: the indexed catalog selects the documents, every payload missing
// from the local cache arrives in ONE cloud exchange, decryption and
// downsampling fan out across the cell's worker pool, and the per-document
// aggregates stream into the merged series. Per-document policies and
// granularity caps apply exactly as on the sequential path.
func (e *Engine) RunSeriesAggregate(q SeriesAggregate) (*SeriesResult, error) {
	filter := q.Filter
	filter.Type = core.SeriesDocType
	docs, plan, err := e.cell.SearchPlan(filter)
	if err != nil {
		return nil, err
	}
	if len(docs) == 0 {
		return nil, ErrNoDocuments
	}
	ids := make([]string, len(docs))
	for i, d := range docs {
		ids[i] = d.ID
	}
	res := &SeriesResult{Plan: plan}
	merger := newSeriesMerger()
	for _, r := range e.cell.AggregateBatch(e.subject, ids, q.Granularity, q.Kind, e.ctx) {
		if r.Err != nil {
			res.Denied++
			continue
		}
		res.Documents = append(res.Documents, r.DocID)
		merger.add(r.Series)
	}
	return e.finishSeries(res, q.Kind, merger)
}

// RunSeriesAggregateSequential is the seed read path kept as the E10
// baseline: a full catalog scan selects the documents, then each one goes
// through an individual policy-checked Aggregate — and thus up to one cloud
// round-trip per document whose payload is not cached locally.
func (e *Engine) RunSeriesAggregateSequential(q SeriesAggregate) (*SeriesResult, error) {
	filter := q.Filter
	filter.Type = core.SeriesDocType
	docs, err := e.cell.SearchScan(filter)
	if err != nil {
		return nil, err
	}
	if len(docs) == 0 {
		return nil, ErrNoDocuments
	}
	res := &SeriesResult{Plan: datamodel.PlanInfo{Index: "scan", Candidates: e.cell.Catalog().Len(), Matched: len(docs)}}
	merger := newSeriesMerger()
	for _, d := range docs {
		agg, err := e.cell.Aggregate(e.subject, d.ID, q.Granularity, q.Kind, e.ctx)
		if err != nil {
			res.Denied++
			continue
		}
		res.Documents = append(res.Documents, d.ID)
		merger.add(agg)
	}
	return e.finishSeries(res, q.Kind, merger)
}

// finishSeries materialises the merged series and applies the shared
// all-denied error semantics.
func (e *Engine) finishSeries(res *SeriesResult, kind timeseries.AggregateKind, merger *seriesMerger) (*SeriesResult, error) {
	if len(res.Documents) == 0 {
		return res, fmt.Errorf("%w for subject %s", core.ErrAccessDenied, e.subject)
	}
	merged, err := merger.result(kind)
	if err != nil {
		return nil, err
	}
	res.Merged = merged
	return res, nil
}

// KeywordCount returns, for each keyword, the number of catalog documents
// carrying it — a single pass over the catalog's keyword index; no document
// metadata is cloned and no payload is touched.
func (e *Engine) KeywordCount(keywords []string) (map[string]int, error) {
	return e.cell.KeywordCounts(keywords)
}
