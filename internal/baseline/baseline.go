// Package baseline implements the centralized comparator the introduction of
// the paper argues against: a cloud-hosted personal data vault where one
// provider stores every user's data and enforces privacy policies in server
// code. It exists so experiments can quantify the two intrinsic weaknesses
// the paper attributes to centralized solutions: exposure to sophisticated
// attacks whose cost-benefit is high on a centralized database (one breach
// exposes everyone), and exposure to unilateral privacy-policy changes by the
// provider.
package baseline

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"trustedcells/internal/crypto"
	"trustedcells/internal/policy"
)

// Errors returned by the server.
var (
	ErrDenied     = errors.New("baseline: access denied")
	ErrNoSuchUser = errors.New("baseline: unknown user")
	ErrNoSuchDoc  = errors.New("baseline: unknown document")
)

// Record is one stored personal document.
type Record struct {
	DocID   string
	Owner   string
	Type    string
	Payload []byte
	Created time.Time
}

// CentralVault is the centralized personal data service. Data is encrypted at
// rest under a single provider-held master key (the standard server-side
// encryption model): enough against a stolen disk, useless against a
// compromise of the provider itself, which is exactly the asymmetry the
// trusted-cells architecture removes.
type CentralVault struct {
	mu        sync.Mutex
	masterKey crypto.SymmetricKey
	records   map[string]map[string]Record // owner -> docID -> record (sealed payloads)
	policies  map[string]*policy.Set       // owner -> policy enforced in server code
	// marketingOverride models a unilateral provider policy change: when set,
	// the provider grants itself read access to every record for "service
	// improvement" regardless of user policies.
	marketingOverride bool
	accesses          int64
}

// NewCentralVault creates an empty centralized vault.
func NewCentralVault() (*CentralVault, error) {
	key, err := crypto.NewSymmetricKey()
	if err != nil {
		return nil, err
	}
	return &CentralVault{
		masterKey: key,
		records:   make(map[string]map[string]Record),
		policies:  make(map[string]*policy.Set),
	}, nil
}

// Store saves a user's document. The provider seals it under its own master
// key.
func (v *CentralVault) Store(owner, docID, docType string, payload []byte, created time.Time) error {
	sealed, err := crypto.Seal(v.masterKey, payload, []byte("central:"+owner+":"+docID))
	if err != nil {
		return fmt.Errorf("baseline: store: %w", err)
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.records[owner] == nil {
		v.records[owner] = make(map[string]Record)
	}
	v.records[owner][docID] = Record{DocID: docID, Owner: owner, Type: docType, Payload: sealed, Created: created}
	return nil
}

// SetPolicy installs the user's access policy, enforced by provider code.
func (v *CentralVault) SetPolicy(owner string, set *policy.Set) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.policies[owner] = set
}

// EnableMarketingOverride flips the provider-side policy change.
func (v *CentralVault) EnableMarketingOverride() {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.marketingOverride = true
}

// Read returns a document if the user's policy (or the provider override)
// allows it.
func (v *CentralVault) Read(owner, docID, subjectID string, now time.Time) ([]byte, error) {
	v.mu.Lock()
	rec, ok := v.records[owner][docID]
	set := v.policies[owner]
	override := v.marketingOverride
	v.accesses++
	v.mu.Unlock()
	if !ok {
		return nil, ErrNoSuchDoc
	}
	allowed := override && subjectID == "provider-analytics"
	if !allowed && set != nil {
		d := set.Evaluate(policy.Request{
			Subject:  policy.Subject{ID: subjectID},
			Action:   policy.ActionRead,
			Resource: policy.Resource{DocumentID: docID, Type: rec.Type},
			Context:  policy.Context{Time: now},
		})
		allowed = d.Allowed
	}
	if !allowed {
		return nil, ErrDenied
	}
	plain, _, err := crypto.Open(v.masterKey, rec.Payload)
	if err != nil {
		return nil, fmt.Errorf("baseline: read: %w", err)
	}
	return plain, nil
}

// UserCount returns the number of users with stored data.
func (v *CentralVault) UserCount() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.records)
}

// RecordCount returns the total number of stored records.
func (v *CentralVault) RecordCount() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	n := 0
	for _, docs := range v.records {
		n += len(docs)
	}
	return n
}

// Accesses returns how many reads were attempted.
func (v *CentralVault) Accesses() int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.accesses
}

// BreachResult summarises what an attacker obtains from a compromise.
type BreachResult struct {
	UsersExposed   int
	RecordsExposed int
	// PlaintextRecovered reports whether the attacker could actually decrypt
	// what it exfiltrated.
	PlaintextRecovered bool
}

// SimulateServerBreach models a full compromise of the provider: the attacker
// obtains the stored ciphertexts and the provider's master key (it lives in
// the same administrative domain), so every user's data is exposed. This is
// the "class attack" the paper's threat analysis highlights for centralized
// designs.
func (v *CentralVault) SimulateServerBreach() BreachResult {
	v.mu.Lock()
	defer v.mu.Unlock()
	res := BreachResult{UsersExposed: len(v.records), PlaintextRecovered: true}
	for _, docs := range v.records {
		res.RecordsExposed += len(docs)
	}
	return res
}

// SimulateCellBreach models the decentralized counterpart: breaking the
// secure hardware of one cell exposes only that user's records, and — thanks
// to per-cell key diversification — no other cell's keys. usersRecords maps a
// user to her record count; compromisedUser names the broken cell.
func SimulateCellBreach(usersRecords map[string]int, compromisedUser string) BreachResult {
	n, ok := usersRecords[compromisedUser]
	if !ok {
		return BreachResult{}
	}
	return BreachResult{UsersExposed: 1, RecordsExposed: n, PlaintextRecovered: true}
}
