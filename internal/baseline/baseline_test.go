package baseline

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"trustedcells/internal/policy"
)

var now = time.Date(2013, 8, 1, 10, 0, 0, 0, time.UTC)

func populatedVault(t *testing.T, users, docsPerUser int) *CentralVault {
	t.Helper()
	v, err := NewCentralVault()
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < users; u++ {
		owner := fmt.Sprintf("user-%04d", u)
		set := policy.NewSet(owner)
		_ = set.Add(policy.Rule{ID: "self-read", Effect: policy.EffectAllow, SubjectIDs: []string{owner},
			Actions: []policy.Action{policy.ActionRead}})
		v.SetPolicy(owner, set)
		for d := 0; d < docsPerUser; d++ {
			docID := fmt.Sprintf("doc-%02d", d)
			if err := v.Store(owner, docID, "note", []byte(owner+"/"+docID), now); err != nil {
				t.Fatal(err)
			}
		}
	}
	return v
}

func TestStoreReadWithPolicy(t *testing.T) {
	v := populatedVault(t, 3, 2)
	got, err := v.Read("user-0001", "doc-00", "user-0001", now)
	if err != nil {
		t.Fatalf("owner read: %v", err)
	}
	if !bytes.Equal(got, []byte("user-0001/doc-00")) {
		t.Fatalf("payload %q", got)
	}
	// Another user is denied by the server-side policy.
	if _, err := v.Read("user-0001", "doc-00", "user-0002", now); err != ErrDenied {
		t.Fatalf("foreign read: %v", err)
	}
	if _, err := v.Read("user-0001", "missing", "user-0001", now); err != ErrNoSuchDoc {
		t.Fatalf("missing doc: %v", err)
	}
	if _, err := v.Read("ghost", "doc-00", "ghost", now); err != ErrNoSuchDoc {
		t.Fatalf("unknown user: %v", err)
	}
	if v.Accesses() != 4 {
		t.Fatalf("accesses = %d", v.Accesses())
	}
}

func TestMarketingOverrideBypassesUserPolicy(t *testing.T) {
	v := populatedVault(t, 2, 1)
	// Before the provider policy change, analytics is denied.
	if _, err := v.Read("user-0000", "doc-00", "provider-analytics", now); err != ErrDenied {
		t.Fatalf("analytics before override: %v", err)
	}
	v.EnableMarketingOverride()
	// After the unilateral change, the provider reads everything — nothing in
	// the architecture prevents it.
	got, err := v.Read("user-0000", "doc-00", "provider-analytics", now)
	if err != nil || len(got) == 0 {
		t.Fatalf("analytics after override: %v", err)
	}
}

func TestServerBreachExposesEveryone(t *testing.T) {
	const users, docs = 100, 5
	v := populatedVault(t, users, docs)
	if v.UserCount() != users || v.RecordCount() != users*docs {
		t.Fatalf("counts %d/%d", v.UserCount(), v.RecordCount())
	}
	breach := v.SimulateServerBreach()
	if breach.UsersExposed != users || breach.RecordsExposed != users*docs || !breach.PlaintextRecovered {
		t.Fatalf("breach %+v", breach)
	}
}

func TestCellBreachExposesOneUser(t *testing.T) {
	population := map[string]int{}
	for u := 0; u < 100; u++ {
		population[fmt.Sprintf("user-%04d", u)] = 5
	}
	breach := SimulateCellBreach(population, "user-0042")
	if breach.UsersExposed != 1 || breach.RecordsExposed != 5 {
		t.Fatalf("cell breach %+v", breach)
	}
	if none := SimulateCellBreach(population, "nobody"); none.UsersExposed != 0 || none.RecordsExposed != 0 {
		t.Fatalf("breach of unknown cell %+v", none)
	}
}

func BenchmarkCentralVaultRead(b *testing.B) {
	v, _ := NewCentralVault()
	set := policy.NewSet("u")
	_ = set.Add(policy.Rule{ID: "self", Effect: policy.EffectAllow, SubjectIDs: []string{"u"}})
	v.SetPolicy("u", set)
	_ = v.Store("u", "d", "note", bytes.Repeat([]byte("x"), 1024), now)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.Read("u", "d", "u", now); err != nil {
			b.Fatal(err)
		}
	}
}
