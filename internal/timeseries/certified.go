package timeseries

import (
	"encoding/json"
	"fmt"
	"time"

	"trustedcells/internal/crypto"
)

// CertifiedSeries is a downsampled series signed by the trusted source that
// produced it. The paper requires that the power meter send "a certified time
// series of readings for verification, billing and network operation": the
// recipient (the utility, the insurer) verifies the signature and therefore
// trusts the aggregate without seeing the raw feed.
type CertifiedSeries struct {
	// SourceID names the trusted source (e.g. "linky-meter-42").
	SourceID string `json:"source_id"`
	// Name and Unit describe the measurement.
	Name string `json:"name"`
	Unit string `json:"unit"`
	// Granularity of the reported points.
	Granularity time.Duration `json:"granularity"`
	// Aggregate describes which statistic each point carries.
	Aggregate string `json:"aggregate"`
	// Points are the reported values.
	Points []Point `json:"points"`
	// IssuedAt is the certification timestamp.
	IssuedAt time.Time `json:"issued_at"`
	// SourceKey is the trusted source's public verification key.
	SourceKey []byte `json:"source_key"`
	// Signature is the Ed25519 signature over the canonical encoding.
	Signature []byte `json:"signature"`
}

// canonicalBytes returns the byte string that is signed: every field except
// the signature, in a fixed JSON encoding.
func (c *CertifiedSeries) canonicalBytes() ([]byte, error) {
	clone := *c
	clone.Signature = nil
	return json.Marshal(&clone)
}

// Certify builds a certified series from a downsampled series, signing it
// with the source's signing function (typically tamper.TEE.Sign).
func Certify(sourceID string, s *Series, g Granularity, kind AggregateKind,
	issuedAt time.Time, sourceKey crypto.VerifyKey, sign func([]byte) ([]byte, error)) (*CertifiedSeries, error) {

	down, err := s.DownsampleSeries(g, kind)
	if err != nil {
		return nil, fmt.Errorf("timeseries: certify: %w", err)
	}
	c := &CertifiedSeries{
		SourceID:    sourceID,
		Name:        s.Name(),
		Unit:        s.Unit(),
		Granularity: time.Duration(g),
		Aggregate:   kind.String(),
		Points:      down.Points(),
		IssuedAt:    issuedAt,
		SourceKey:   sourceKey.Bytes(),
	}
	msg, err := c.canonicalBytes()
	if err != nil {
		return nil, fmt.Errorf("timeseries: certify: %w", err)
	}
	sig, err := sign(msg)
	if err != nil {
		return nil, fmt.Errorf("timeseries: certify: %w", err)
	}
	c.Signature = sig
	return c, nil
}

// Verify checks the certification signature and that the series was signed by
// expectedSource (if non-zero).
func (c *CertifiedSeries) Verify(expectedSource *crypto.VerifyKey) error {
	vk, err := crypto.VerifyKeyFromBytes(c.SourceKey)
	if err != nil {
		return fmt.Errorf("timeseries: verify: %w", err)
	}
	if expectedSource != nil && !vk.Equal(*expectedSource) {
		return fmt.Errorf("timeseries: verify: series signed by an unexpected source")
	}
	msg, err := c.canonicalBytes()
	if err != nil {
		return fmt.Errorf("timeseries: verify: %w", err)
	}
	if err := vk.Verify(msg, c.Signature); err != nil {
		return fmt.Errorf("timeseries: verify: %w", err)
	}
	return nil
}

// Encode serialises the certified series for transport or storage.
func (c *CertifiedSeries) Encode() ([]byte, error) { return json.Marshal(c) }

// DecodeCertifiedSeries parses a certified series produced by Encode.
func DecodeCertifiedSeries(data []byte) (*CertifiedSeries, error) {
	var c CertifiedSeries
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("timeseries: decode certified series: %w", err)
	}
	return &c, nil
}
